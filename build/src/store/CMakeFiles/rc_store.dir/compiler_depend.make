# Empty compiler generated dependencies file for rc_store.
# This may be replaced when dependencies are built.
