// rc_trace_gen: generates a calibrated synthetic Azure-like VM trace and
// writes it as CSV (AzurePublicDataset-style vmtable). Optionally also dumps
// per-slot utilization readings for selected VMs.
//
//   rc_trace_gen --vms 50000 --days 90 --seed 42 --out trace.csv
//   rc_trace_gen --vms 1000 --readings-for 17 --out trace.csv
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/trace/trace_io.h"
#include "src/trace/workload_model.h"

namespace {

void Usage() {
  std::cerr <<
      "usage: rc_trace_gen [options]\n"
      "  --vms N            target VM count (default 50000)\n"
      "  --days D           observation window in days (default 90)\n"
      "  --subs N           subscription count (default vms/25)\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --first-party F    fraction of first-party VMs (default 0.55)\n"
      "  --out PATH         vmtable CSV output (default rc_trace.csv)\n"
      "  --readings-for ID  also write <out>.readings.<ID>.csv with the\n"
      "                     5-minute telemetry of that VM\n";
}

}  // namespace

int main(int argc, char** argv) {
  rc::trace::WorkloadConfig config;
  config.target_vm_count = 50'000;
  std::string out = "rc_trace.csv";
  int subs = -1;
  uint64_t readings_for = 0;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--vms") == 0) {
      config.target_vm_count = std::atoll(need("--vms"));
    } else if (std::strcmp(argv[i], "--days") == 0) {
      config.duration = std::atoll(need("--days")) * rc::kDay;
    } else if (std::strcmp(argv[i], "--subs") == 0) {
      subs = std::atoi(need("--subs"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--first-party") == 0) {
      config.frac_first_party = std::atof(need("--first-party"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = need("--out");
    } else if (std::strcmp(argv[i], "--readings-for") == 0) {
      readings_for = std::strtoull(need("--readings-for"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n";
      Usage();
      return 2;
    }
  }
  config.num_subscriptions =
      subs > 0 ? subs : std::max<int>(100, static_cast<int>(config.target_vm_count / 25));

  std::cerr << "generating " << config.target_vm_count << " VMs / "
            << config.num_subscriptions << " subscriptions over "
            << config.duration / rc::kDay << " days (seed " << config.seed << ")...\n";
  rc::trace::Trace trace = rc::trace::WorkloadModel(config).Generate();
  rc::trace::WriteVmTableFile(trace, out);
  std::cerr << "wrote " << trace.vm_count() << " rows to " << out << "\n";

  if (readings_for != 0) {
    for (const auto& vm : trace.vms()) {
      if (vm.vm_id != readings_for) continue;
      std::string rpath = out + ".readings." + std::to_string(readings_for) + ".csv";
      std::ofstream rout(rpath);
      rc::trace::WriteReadings(vm, rout);
      std::cerr << "wrote telemetry of VM " << readings_for << " to " << rpath << "\n";
      return 0;
    }
    std::cerr << "VM " << readings_for << " not found in the trace\n";
    return 1;
  }
  return 0;
}
