// rc_predict: trains Resource Central on a trace CSV (produced by
// rc_trace_gen) and serves predictions for VMs of a chosen window,
// printing prediction vs ground truth — a command-line tour of the
// offline + online halves of the system.
//
//   rc_trace_gen --vms 20000 --out trace.csv
//   rc_predict --trace trace.csv --days 90 --train-days 60 --count 10
#include <cstring>
#include <iostream>
#include <string>

#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/store/kv_store.h"
#include "src/trace/trace_io.h"

namespace {

void Usage() {
  std::cerr <<
      "usage: rc_predict --trace PATH [options]\n"
      "  --days D        observation window of the trace in days (default 90)\n"
      "  --train-days T  training window in days (default 2/3 of --days)\n"
      "  --count N       number of test VMs to predict (default 10)\n"
      "  --model NAME    model to query (default all six)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, model_filter;
  int days = 90, train_days = -1, count = 10;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need("--trace");
    } else if (std::strcmp(argv[i], "--days") == 0) {
      days = std::atoi(need("--days"));
    } else if (std::strcmp(argv[i], "--train-days") == 0) {
      train_days = std::atoi(need("--train-days"));
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count = std::atoi(need("--count"));
    } else if (std::strcmp(argv[i], "--model") == 0) {
      model_filter = need("--model");
    } else {
      Usage();
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  if (trace_path.empty()) {
    Usage();
    return 2;
  }
  if (train_days < 0) train_days = days * 2 / 3;

  std::cerr << "loading " << trace_path << "...\n";
  rc::trace::Trace trace =
      rc::trace::ReadVmTableFile(trace_path, static_cast<rc::SimDuration>(days) * rc::kDay);
  std::cerr << "training on days 0-" << train_days << " (" << trace.vm_count()
            << " VMs total)...\n";

  rc::core::PipelineConfig config;
  config.train_end = static_cast<rc::SimTime>(train_days) * rc::kDay;
  rc::core::OfflinePipeline pipeline(config);
  rc::core::TrainedModels trained = pipeline.Run(trace);
  rc::store::KvStore store;
  rc::core::OfflinePipeline::Publish(trained, store);
  rc::core::Client client(&store, rc::core::ClientConfig{});
  if (!client.Initialize()) {
    std::cerr << "client initialization failed\n";
    return 1;
  }

  static const rc::trace::VmSizeCatalog catalog;
  auto test_vms = trace.VmsCreatedIn(static_cast<rc::SimTime>(train_days) * rc::kDay,
                                     static_cast<rc::SimTime>(days) * rc::kDay);
  rc::TablePrinter table({"vm", "model", "prediction", "score", "ground truth"});
  int shown = 0;
  for (const auto* vm : test_vms) {
    if (shown >= count) break;
    bool any = false;
    for (rc::Metric metric : rc::kAllMetrics) {
      std::string name = MetricModelName(metric);
      if (!model_filter.empty() && name != model_filter) continue;
      rc::core::Prediction p =
          client.PredictSingle(name, rc::core::InputsFromVm(*vm, catalog));
      std::string truth = "-";
      switch (metric) {
        case rc::Metric::kAvgCpu:
          truth = BucketLabel(metric, rc::UtilizationBucket(vm->avg_cpu));
          break;
        case rc::Metric::kP95Cpu:
          truth = BucketLabel(metric, rc::UtilizationBucket(vm->p95_max_cpu));
          break;
        case rc::Metric::kLifetime:
          truth = BucketLabel(metric, rc::LifetimeBucket(vm->lifetime()));
          break;
        default:
          break;  // deployment/class ground truth needs group context
      }
      table.AddRow({std::to_string(vm->vm_id), name,
                    p.valid ? BucketLabel(metric, p.bucket) : "no-prediction",
                    p.valid ? rc::TablePrinter::Fmt(p.score, 2) : "-", truth});
      any = true;
    }
    if (any) ++shown;
  }
  table.Print(std::cout);
  return 0;
}
