#!/usr/bin/env bash
# Builds the test binaries under AddressSanitizer + UndefinedBehaviorSanitizer
# and runs them. Any report fails the script (halt_on_error below). The
# corruption/fuzz suites in particular are only meaningful under ASan: they
# assert that corrupt bytes are *rejected*, and ASan proves the reject paths
# never read out of bounds while deciding.
#
# Usage: tools/check_asan.sh [extra gtest args...]
#   e.g. tools/check_asan.sh --gtest_filter='BytesFuzzTest.*'
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${RC_ASAN_BUILD_DIR:-${REPO_ROOT}/build-asan}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRC_SANITIZE=address
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target rc_common_tests rc_obs_tests rc_ml_tests rc_cache_tests rc_store_tests rc_core_tests rc_net_tests

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

for t in rc_common_tests rc_obs_tests rc_ml_tests rc_cache_tests rc_store_tests rc_core_tests rc_net_tests; do
  echo "== ${t} (ASan+UBSan) =="
  "${BUILD_DIR}/tests/${t}" "$@"
done
# Combiner stress runs regardless of any caller filter: the slot lifetime
# (stack-allocated, shared across parked threads) is exactly what ASan vets.
echo "== rc_core_tests (ASan+UBSan, combiner park/flush races) =="
"${BUILD_DIR}/tests/rc_core_tests" --gtest_filter='BatchCombiner*'
# The exec-engine suites always run too: the walks index gathered/selected
# node links into pool arrays, and the batched kernels read whole SIMD blocks
# — exactly the out-of-bounds shapes ASan exists to vet.
echo "== rc_ml_tests (ASan+UBSan, exec-engine parity) =="
"${BUILD_DIR}/tests/rc_ml_tests" --gtest_filter='ExecEngine*'
# The admin endpoint parses hostile HTTP (dribbled, oversized, malformed)
# and the v2 header decoder reads optional trace blocks from untrusted
# frames — exactly the bounds-handling shapes ASan exists to vet.
echo "== rc_net_tests (ASan+UBSan, admin endpoint + wire tracing) =="
"${BUILD_DIR}/tests/rc_net_tests" --gtest_filter='AdminServer*:TracePropagation*:NetProtocol*'
# The open-addressed cache indexes raw slot/ctrl arrays under concurrent
# eviction, tombstone reuse, and in-place rebuild — exactly the off-by-one
# shapes ASan vets. The shard-stress suite vets listener lifetime (the
# Unsubscribe drain) against use-after-free.
echo "== rc_cache_tests (ASan+UBSan, open addressing + rebuild) =="
"${BUILD_DIR}/tests/rc_cache_tests" --gtest_filter='Word2Cache*:FrequencySketch*'
echo "== rc_store_tests (ASan+UBSan, sharded KvStore listener lifetime) =="
"${BUILD_DIR}/tests/rc_store_tests" --gtest_filter='KvStoreShardStress*'
echo "ASan+UBSan check passed: no memory or UB reports."
