// rc_server: the Resource Central prediction service as a runnable daemon.
// Trains the six models (from a synthetic workload by default, or a trace
// CSV produced by rc_trace_gen), publishes them to the in-process store,
// and serves PredictSingle / PredictMany / Health over the rc::net framed
// TCP protocol until SIGINT/SIGTERM.
//
//   rc_server --port 7071 --workers 4
//   rc_server --trace trace.csv --train-days 60
//   rc_server --smoke        # self-drive a few requests, dump metrics, exit
//
// The server's rc_net_* instruments and the embedded client's rc_client_*
// instruments share one registry; the full Prometheus exposition is dumped
// on exit (and in --smoke mode this is the primary output, which
// tools/check_all.sh greps for the required metric families).
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/net/admin_server.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/export.h"
#include "src/obs/process_metrics.h"
#include "src/obs/trace_context.h"
#include "src/store/kv_store.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_model.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

void Usage() {
  std::cerr <<
      "usage: rc_server [options]\n"
      "  --port P        listen port (default 7071; 0 = ephemeral)\n"
      "  --workers N     epoll worker threads (default 4)\n"
      "  --combiner M    cross-request batching: off | shared | worker\n"
      "                  (default shared; see DESIGN.md \"Cross-request batching\")\n"
      "  --combiner-wait-us W  coalescing window in microseconds (default 40)\n"
      "  --engine-mode M ExecEngine walk: auto | scalar | avx2 | quantized\n"
      "                  (default auto; see DESIGN.md \"Execution engine\")\n"
      "  --vms N         synthetic workload size when no trace given (default 20000)\n"
      "  --trace PATH    train from a trace CSV instead of the synthetic workload\n"
      "  --days D        trace observation window in days (default 90)\n"
      "  --train-days T  training window in days (default 2/3 of --days)\n"
      "  --admin-port P  HTTP introspection endpoint (/metrics /healthz /varz\n"
      "                  /tracez) on 127.0.0.1:P (0 = ephemeral; off by default)\n"
      "  --trace-sample N  trace one request in N end to end (default 0 = off;\n"
      "                  sampled traces appear on /tracez)\n"
      "  --probe N       self-issue N PredictSingle requests through a pooled\n"
      "                  TCP client after startup (populates /tracez)\n"
      "  --smoke         serve, self-issue a few requests, dump metrics, exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  int port = 7071;
  int admin_port = -1;  // <0 = no admin endpoint
  long long trace_sample = 0;
  int probe = 0;
  int workers = 4;
  int64_t vms = 20'000;
  int days = 90, train_days = -1;
  std::string trace_path;
  bool smoke = false;
  rc::net::CombinerMode combiner_mode = rc::net::CombinerMode::kShared;
  int64_t combiner_wait_us = 40;
  rc::ml::ExecEngine::Mode engine_mode = rc::ml::ExecEngine::Mode::kAuto;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(need("--port"));
    } else if (std::strcmp(argv[i], "--admin-port") == 0) {
      admin_port = std::atoi(need("--admin-port"));
    } else if (std::strcmp(argv[i], "--trace-sample") == 0) {
      trace_sample = std::atoll(need("--trace-sample"));
    } else if (std::strcmp(argv[i], "--probe") == 0) {
      probe = std::atoi(need("--probe"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = std::atoi(need("--workers"));
    } else if (std::strcmp(argv[i], "--vms") == 0) {
      vms = std::atoll(need("--vms"));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need("--trace");
    } else if (std::strcmp(argv[i], "--days") == 0) {
      days = std::atoi(need("--days"));
    } else if (std::strcmp(argv[i], "--train-days") == 0) {
      train_days = std::atoi(need("--train-days"));
    } else if (std::strcmp(argv[i], "--combiner") == 0) {
      std::string mode = need("--combiner");
      if (mode == "off") {
        combiner_mode = rc::net::CombinerMode::kOff;
      } else if (mode == "shared") {
        combiner_mode = rc::net::CombinerMode::kShared;
      } else if (mode == "worker") {
        combiner_mode = rc::net::CombinerMode::kPerWorker;
      } else {
        std::cerr << "--combiner must be off, shared, or worker\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--combiner-wait-us") == 0) {
      combiner_wait_us = std::atoll(need("--combiner-wait-us"));
    } else if (std::strcmp(argv[i], "--engine-mode") == 0) {
      auto parsed = rc::ml::ExecEngine::ParseMode(need("--engine-mode"));
      if (!parsed) {
        std::cerr << "--engine-mode must be auto, scalar, avx2, or quantized\n";
        return 2;
      }
      engine_mode = *parsed;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      Usage();
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  if (train_days < 0) train_days = days * 2 / 3;

  rc::trace::Trace trace = [&] {
    if (!trace_path.empty()) {
      std::cerr << "loading " << trace_path << "...\n";
      return rc::trace::ReadVmTableFile(trace_path,
                                        static_cast<rc::SimDuration>(days) * rc::kDay);
    }
    rc::trace::WorkloadConfig workload;
    workload.target_vm_count = vms;
    workload.num_subscriptions = std::max<int64_t>(vms / 25, 10);
    workload.seed = 7;
    return rc::trace::WorkloadModel(workload).Generate();
  }();
  std::cerr << "training on " << trace.vm_count() << " VMs (days 0-" << train_days << ")...\n";

  rc::core::PipelineConfig pipeline_config;
  pipeline_config.train_end = static_cast<rc::SimTime>(train_days) * rc::kDay;
  if (smoke) {  // smoke mode favours startup time over model quality
    pipeline_config.rf.num_trees = 8;
    pipeline_config.gbt.num_rounds = 8;
  }
  rc::core::OfflinePipeline pipeline(pipeline_config);
  rc::core::TrainedModels trained = pipeline.Run(trace);
  rc::store::KvStore store;
  rc::core::OfflinePipeline::Publish(trained, store);

  // One registry for the whole process: rc_client_* (embedded prediction
  // client) and rc_net_* (server) families in a single exposition.
  rc::obs::MetricsRegistry registry;
  rc::core::ClientConfig client_config;
  client_config.metrics = &registry;
  client_config.engine_mode = engine_mode;
  rc::core::Client client(&store, client_config);
  if (!client.Initialize()) {
    std::cerr << "client initialization failed\n";
    return 1;
  }

  rc::net::ServerConfig server_config;
  server_config.port = static_cast<uint16_t>(smoke ? 0 : port);
  server_config.num_workers = workers;
  server_config.metrics = &registry;
  server_config.combiner_mode = combiner_mode;
  server_config.combiner_max_wait_us = combiner_wait_us;
  rc::net::Server server(&client, server_config);
  if (!server.Start()) {
    std::cerr << "failed to bind 127.0.0.1:" << port << "\n";
    return 1;
  }
  std::cerr << "rc_server listening on 127.0.0.1:" << server.port() << " with " << workers
            << " workers, " << trained.models.size() << " models\n";

  if (trace_sample > 0) {
    rc::obs::Tracer::Global().SetSampleEvery(static_cast<uint64_t>(trace_sample));
  }

  std::unique_ptr<rc::net::AdminServer> admin;
  if (admin_port >= 0) {
    rc::obs::RegisterBuildInfo(registry);
    rc::net::AdminServerConfig admin_config;
    admin_config.port = static_cast<uint16_t>(admin_port);
    admin = std::make_unique<rc::net::AdminServer>(admin_config);
    admin->Handle("/metrics", [&registry] {
      rc::obs::UpdateProcessGauges(registry);
      return rc::net::AdminServer::Response{
          200, "text/plain; version=0.0.4; charset=utf-8",
          rc::obs::PrometheusText(registry)};
    });
    admin->Handle("/healthz", [&client] {
      rc::core::HealthSnapshot h = client.Health();
      const uint64_t now_ns = rc::obs::NowNs();
      std::string body;
      body += std::string("status: ") + (h.healthy() ? "ok" : "degraded") + "\n";
      body += std::string("degraded_reason: ") + rc::core::ToString(h.degraded) + "\n";
      body += std::string("breaker: ") + (h.breaker_open ? "open" : "closed") + "\n";
      body += "consecutive_store_failures: " +
              std::to_string(h.consecutive_store_failures) + "\n";
      for (const auto& m : h.models) {
        double age_s = m.loaded_at_ns != 0 && now_ns > m.loaded_at_ns
                           ? static_cast<double>(now_ns - m.loaded_at_ns) / 1e9
                           : 0.0;
        body += "model " + m.name + " spec_version=" + std::to_string(m.spec_version) +
                " blob_version=" + std::to_string(m.blob_version) +
                " age_s=" + std::to_string(age_s) +
                " ready=" + (m.ready ? "1" : "0") + "\n";
      }
      return rc::net::AdminServer::Response{h.healthy() ? 200 : 503,
                                            "text/plain; charset=utf-8", body};
    });
    admin->Handle("/varz", [&registry, &client] {
      rc::obs::UpdateProcessGauges(registry);
      rc::core::HealthSnapshot h = client.Health();
      std::string body = "{\n";
      body += std::string("\"build\":{\"version\":\"") + rc::obs::BuildVersion() +
              "\",\"git_sha\":\"" + rc::obs::BuildGitSha() + "\",\"compiler\":\"" +
              rc::obs::BuildCompiler() + "\",\"type\":\"" + rc::obs::BuildType() +
              "\"},\n";
      body += std::string("\"health\":{\"status\":\"") +
              (h.healthy() ? "ok" : "degraded") + "\",\"degraded_reason\":\"" +
              rc::core::ToString(h.degraded) + "\",\"breaker_open\":" +
              (h.breaker_open ? "true" : "false") + "},\n";
      // JsonText renders {\n  "metrics": {...}\n}\n — splice its body in so
      // /varz is one flat object (process gauges ride along as rc_process_*).
      std::string metrics_json = rc::obs::JsonText(registry);
      body += metrics_json.substr(2, metrics_json.size() - 4);
      body += "}\n";
      return rc::net::AdminServer::Response{200, "application/json", body};
    });
    admin->Handle("/tracez", [] {
      return rc::net::AdminServer::Response{200, "application/json",
                                            rc::obs::TraceStore::Global().TracezJson()};
    });
    if (!admin->Start()) {
      std::cerr << "failed to bind admin endpoint 127.0.0.1:" << admin_port << "\n";
      return 1;
    }
    std::cerr << "admin endpoint on http://127.0.0.1:" << admin->port()
              << " (/metrics /healthz /varz /tracez)\n";
  }

  if (probe > 0) {
    // Self-issued traffic through a real pooled TCP client: exercises the
    // full client -> server -> combiner -> engine path so /tracez has span
    // trees to show right after startup.
    rc::net::ClientConfig probe_config;
    probe_config.port = server.port();
    probe_config.pool_size = 2;
    rc::net::Client probe_client(probe_config);
    static const rc::trace::VmSizeCatalog probe_catalog;
    rc::core::ClientInputs probe_inputs;
    for (const auto& vm : trace.vms()) {
      if (trained.feature_data.contains(vm.subscription_id)) {
        probe_inputs = rc::core::InputsFromVm(vm, probe_catalog);
        break;
      }
    }
    int probe_ok = 0;
    for (int i = 0; i < probe; ++i) {
      rc::core::ClientInputs inputs = probe_inputs;
      inputs.deploy_hour = i % 24;
      rc::core::Prediction p;
      if (probe_client.PredictSingle("VM_AVGUTIL", inputs, &p) == rc::net::Status::kOk) {
        ++probe_ok;
      }
    }
    std::cerr << "probe: " << probe_ok << "/" << probe << " requests ok\n";
  }

  if (smoke) {
    // Self-drive: one of every opcode through the pooled client, then dump
    // the exposition for the CI grep.
    rc::net::ClientConfig pool_config;
    pool_config.port = server.port();
    pool_config.pool_size = 2;
    pool_config.metrics = &registry;
    rc::net::Client pool(pool_config);
    static const rc::trace::VmSizeCatalog catalog;
    rc::core::ClientInputs inputs;
    for (const auto& vm : trace.vms()) {
      if (trained.feature_data.contains(vm.subscription_id)) {
        inputs = rc::core::InputsFromVm(vm, catalog);
        break;
      }
    }
    rc::core::Prediction p;
    if (pool.PredictSingle("VM_AVGUTIL", inputs, &p) != rc::net::Status::kOk) {
      std::cerr << "smoke PredictSingle failed\n";
      return 1;
    }
    std::vector<rc::core::ClientInputs> batch(8, inputs);
    for (int i = 0; i < 8; ++i) batch[static_cast<size_t>(i)].deploy_hour = i;
    std::vector<rc::core::Prediction> many;
    if (pool.PredictMany("VM_P95UTIL", batch, &many) != rc::net::Status::kOk ||
        many.size() != batch.size()) {
      std::cerr << "smoke PredictMany failed\n";
      return 1;
    }
    rc::net::HealthResponse health;
    if (pool.Health(&health) != rc::net::Status::kOk || health.num_models != 6) {
      std::cerr << "smoke Health failed\n";
      return 1;
    }
    server.Stop();
    std::cout << rc::obs::PrometheusText(registry);
    std::cerr << "smoke ok: " << health.requests << " requests, " << health.predictions
              << " predictions\n";
    return 0;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::cerr << "shutting down...\n";
  server.Stop();
  std::cout << rc::obs::PrometheusText(registry);
  return 0;
}
