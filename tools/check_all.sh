#!/usr/bin/env bash
# One-shot gate: plain build + full ctest, a metrics-exposition smoke check
# (quickstart with RC_METRICS_DUMP=1 must emit every required metric family),
# then the TSan and ASan/UBSan suites. Any failure stops the script.
#
# Usage: tools/check_all.sh
#   RC_SKIP_SANITIZERS=1 tools/check_all.sh   # plain build + ctest + smoke only
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${RC_BUILD_DIR:-${REPO_ROOT}/build}"

echo "== plain build =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
cmake --build "${BUILD_DIR}" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" -j"$(nproc)" --output-on-failure

echo "== exec-engine parity (scalar / avx2 / quantized walks) =="
"${BUILD_DIR}/bench/perf_exec_engine" --dispatch
"${BUILD_DIR}/tests/rc_ml_tests" --gtest_filter='ExecEngine*'
# Rerun with the AVX2 kill-switch set so CI exercises the portable scalar
# fallback even on AVX2 hardware (on non-AVX2 hosts both runs are scalar).
echo "-- scalar fallback (RC_DISABLE_AVX2=1) --"
RC_DISABLE_AVX2=1 "${BUILD_DIR}/tests/rc_ml_tests" --gtest_filter='ExecEngine*'

echo "== SIMD flag isolation lint =="
# exec_engine_avx2.cc must stay the ONLY translation unit built with AVX2
# flags: if -mavx2 leaks into any other target, the compiler may
# auto-vectorize portable code and crash pre-AVX2 hosts before the runtime
# dispatch ever runs (see exec_engine_simd.h).
MAVX2_CMAKE="$(grep -rl --include='CMakeLists.txt' --exclude-dir='build*' \
  -e '-mavx2' "${REPO_ROOT}" || true)"
if [[ "${MAVX2_CMAKE}" != "${REPO_ROOT}/src/ml/CMakeLists.txt" ]]; then
  echo "FAIL: -mavx2 must appear only in src/ml/CMakeLists.txt; found:" >&2
  echo "${MAVX2_CMAKE}" >&2
  exit 1
fi
if [[ -f "${BUILD_DIR}/compile_commands.json" ]]; then
  if grep -e '-mavx2' "${BUILD_DIR}/compile_commands.json" \
      | grep -v 'exec_engine_avx2.cc'; then
    echo "FAIL: -mavx2 leaked beyond exec_engine_avx2.cc (see above)" >&2
    exit 1
  fi
fi
echo "-mavx2 is confined to the exec_engine_avx2.cc kernel TU."

echo "== metrics exposition smoke check =="
EXPO="$(RC_METRICS_DUMP=1 "${BUILD_DIR}/examples/quickstart")"
REQUIRED_FAMILIES=(
  rc_client_result_hits
  rc_client_result_misses
  rc_client_model_executions
  rc_client_batch_size
  rc_client_predict_latency_us
  rc_client_store_read_latency_us
  rc_client_degraded_reason
  rc_client_breaker_trips
  rc_client_model_bytes
  rc_store_puts
  rc_store_gets
  rc_store_get_latency_us
  rc_pipeline_stage_duration_us
  rc_pipeline_published_records
  rc_cache_entries
  rc_cache_admit_rejects
  rc_cache_evictions
  rc_cache_sketch_resets
  rc_cache_probe_retries
  rc_cache_rebuilds
)
for family in "${REQUIRED_FAMILIES[@]}"; do
  if ! grep -q "^${family}" <<<"${EXPO}"; then
    echo "FAIL: metric family '${family}' missing from quickstart exposition" >&2
    exit 1
  fi
done
echo "all ${#REQUIRED_FAMILIES[@]} required metric families present."

echo "== network service smoke check =="
NET_EXPO="$("${BUILD_DIR}/tools/rc_server" --smoke --vms 3000 2>/dev/null)"
NET_FAMILIES=(
  rc_net_connections_accepted
  rc_net_connections_active
  rc_net_requests
  rc_net_predictions
  rc_net_protocol_errors
  rc_net_bytes_read
  rc_net_bytes_written
  rc_net_request_latency_us
  rc_net_client_requests
  rc_net_client_request_latency_us
  rc_combiner_requests
  rc_combiner_fast_path
  rc_combiner_flushes
  rc_combiner_batch_size
  rc_combiner_wait_us
  rc_combiner_pending
)
for family in "${NET_FAMILIES[@]}"; do
  if ! grep -q "^${family}" <<<"${NET_EXPO}"; then
    echo "FAIL: metric family '${family}' missing from rc_server --smoke exposition" >&2
    exit 1
  fi
done
echo "all ${#NET_FAMILIES[@]} required rc_net_*/rc_combiner_* metric families present."

echo "== admin introspection endpoint check =="
# Boot a real server with the admin endpoint, 1-in-1 trace sampling, and
# self-issued probe traffic, then drive all four routes over HTTP the way an
# operator would. The /tracez check is the end-to-end acceptance: the probe
# requests must leave at least one connected span tree behind.
ADMIN_LOG="$(mktemp)"
"${BUILD_DIR}/tools/rc_server" --vms 3000 --admin-port 0 --trace-sample 1 \
  --probe 8 >/dev/null 2>"${ADMIN_LOG}" &
ADMIN_PID=$!
trap 'kill "${ADMIN_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 120); do
  grep -q '^probe:' "${ADMIN_LOG}" && break
  sleep 0.5
done
ADMIN_PORT="$(sed -n 's#.*admin endpoint on http://127.0.0.1:\([0-9]*\).*#\1#p' "${ADMIN_LOG}")"
if [[ -z "${ADMIN_PORT}" ]]; then
  echo "FAIL: rc_server did not report an admin endpoint" >&2
  cat "${ADMIN_LOG}" >&2
  exit 1
fi
ADMIN_BASE="http://127.0.0.1:${ADMIN_PORT}"
METRICS="$(curl -sf "${ADMIN_BASE}/metrics")"
for family in rc_build_info rc_process_uptime_seconds rc_process_resident_memory_bytes \
              rc_net_requests rc_net_request_latency_us_window_p99; do
  if ! grep -q "^${family}" <<<"${METRICS}"; then
    echo "FAIL: metric family '${family}' missing from /metrics" >&2
    exit 1
  fi
done
HEALTHZ="$(curl -sf "${ADMIN_BASE}/healthz")" && grep -q '^status: ok' <<<"${HEALTHZ}" || {
  echo "FAIL: /healthz did not report ok" >&2; echo "${HEALTHZ}" >&2; exit 1; }
VARZ="$(curl -sf "${ADMIN_BASE}/varz")" && grep -q '"build"' <<<"${VARZ}" || {
  echo "FAIL: /varz missing the build section" >&2; echo "${VARZ}" >&2; exit 1; }
TRACEZ="$(curl -sf "${ADMIN_BASE}/tracez")"
for span in netclient/call net/read_frame net/predict net/write_frame; do
  if ! grep -q "${span}" <<<"${TRACEZ}"; then
    echo "FAIL: /tracez missing span '${span}' (no connected trace tree)" >&2
    echo "${TRACEZ}" >&2
    exit 1
  fi
done
curl -s -o /dev/null -w '%{http_code}' "${ADMIN_BASE}/nope" | grep -q 404 || {
  echo "FAIL: unknown admin path did not 404" >&2; exit 1; }
kill "${ADMIN_PID}" 2>/dev/null || true
wait "${ADMIN_PID}" 2>/dev/null || true
trap - EXIT
rm -f "${ADMIN_LOG}"
echo "admin endpoint serves /metrics /healthz /varz /tracez with a live span tree."

echo "== cache layering lint =="
# rc::cache sits BELOW rc::core (the client embeds a ShardedCache), so a
# src/cache -> src/core dependency would be a cycle. Keep the cache layer
# reusable: it may depend only on src/common and src/obs.
if grep -rn '#include "src/core' "${REPO_ROOT}/src/cache/"; then
  echo "FAIL: src/cache must not include src/core headers (layering)" >&2
  exit 1
fi
if grep -vE '^\s*#' "${REPO_ROOT}/src/cache/CMakeLists.txt" | grep -n 'rc_core'; then
  echo "FAIL: rc_cache must not link rc_core (layering)" >&2
  exit 1
fi
echo "src/cache has no dependency on src/core."

echo "== combiner determinism lint =="
# The combiner unit suites must stay on VirtualClock: a real sleep in them
# reintroduces exactly the timing flake the clock injection removed. (The
# stress file coordinates with atomics/latches and is checked too.)
COMBINER_TESTS=(
  "${REPO_ROOT}/tests/core/batch_combiner_test.cc"
  "${REPO_ROOT}/tests/core/batch_combiner_stress_test.cc"
  "${REPO_ROOT}/tests/common/clock_test.cc"
)
for f in "${COMBINER_TESTS[@]}"; do
  if grep -n 'sleep_for\|sleep_until\|usleep\|nanosleep' "$f"; then
    echo "FAIL: real sleep in deterministic combiner test ${f#${REPO_ROOT}/}" >&2
    exit 1
  fi
done
echo "combiner test suites are sleep-free (VirtualClock only)."

if [[ "${RC_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "== TSan =="
  "${REPO_ROOT}/tools/check_tsan.sh"
  echo "== ASan+UBSan =="
  "${REPO_ROOT}/tools/check_asan.sh"
fi

echo "check_all passed."
