#!/usr/bin/env bash
# Builds the core + store test binaries under ThreadSanitizer and runs them.
# Any reported race fails the script (TSAN_OPTIONS halt_on_error below).
#
# Usage: tools/check_tsan.sh [extra gtest args...]
#   e.g. tools/check_tsan.sh --gtest_filter='ClientConcurrencyTest.*'
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${RC_TSAN_BUILD_DIR:-${REPO_ROOT}/build-tsan}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRC_SANITIZE=thread
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target rc_common_tests rc_obs_tests rc_ml_tests rc_cache_tests rc_store_tests rc_core_tests rc_net_tests

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

echo "== rc_common_tests (TSan) =="
"${BUILD_DIR}/tests/rc_common_tests" "$@"
echo "== rc_obs_tests (TSan) =="
"${BUILD_DIR}/tests/rc_obs_tests" "$@"
echo "== rc_ml_tests (TSan) =="
"${BUILD_DIR}/tests/rc_ml_tests" "$@"
echo "== rc_cache_tests (TSan) =="
"${BUILD_DIR}/tests/rc_cache_tests" "$@"
echo "== rc_store_tests (TSan) =="
"${BUILD_DIR}/tests/rc_store_tests" "$@"
echo "== rc_core_tests (TSan) =="
"${BUILD_DIR}/tests/rc_core_tests" "$@"
echo "== rc_net_tests (TSan) =="
"${BUILD_DIR}/tests/rc_net_tests" "$@"
# The combiner park/flush/shutdown races run regardless of any caller filter:
# they are the TSan targets the batching combiner was written against.
echo "== rc_core_tests (TSan, combiner park/flush races) =="
"${BUILD_DIR}/tests/rc_core_tests" --gtest_filter='BatchCombiner*'
# The exec-engine walks (scalar, AVX2 kernel, quantized) likewise always run:
# the engine is shared read-only across prediction threads, so any mutation
# the sanitizer can see is a real bug.
echo "== rc_ml_tests (TSan, exec-engine parity) =="
"${BUILD_DIR}/tests/rc_ml_tests" --gtest_filter='ExecEngine*'
# Tracing + admin endpoint always run under TSan: the span tree is assembled
# across client threads, epoll workers, and the combiner's dispatcher, and
# the admin thread scrapes registries the workers are writing — both are
# cross-thread by construction.
echo "== rc_net_tests (TSan, tracing + admin endpoint) =="
"${BUILD_DIR}/tests/rc_net_tests" --gtest_filter='TracePropagation*:AdminServer*'
echo "== rc_obs_tests (TSan, trace store + window rotation) =="
"${BUILD_DIR}/tests/rc_obs_tests" --gtest_filter='TraceContext*:HistogramWindow*'
# The seqlock probe is the load-bearing lock-free structure in the serving
# path: readers revalidate atomics the shard writer is stamping, so these
# suites run under TSan regardless of any caller filter. The sharded-store
# stress and the client parity storm exercise the same protocol end to end.
echo "== rc_cache_tests (TSan, seqlock readers vs writer + admission) =="
"${BUILD_DIR}/tests/rc_cache_tests" --gtest_filter='Word2Cache*:ShardedCache*:AdmissionQuality*'
echo "== rc_store_tests (TSan, sharded KvStore stress) =="
"${BUILD_DIR}/tests/rc_store_tests" --gtest_filter='KvStoreShardStress*'
echo "== rc_core_tests (TSan, client cache parity storm) =="
"${BUILD_DIR}/tests/rc_core_tests" --gtest_filter='ClientCacheParity*'
echo "TSan check passed: no data races reported."
