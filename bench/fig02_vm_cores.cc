// Figure 2: number of virtual CPU cores per VM (stacked breakdown).
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 2: virtual CPU cores per VM", "Fig. 2");
  trace::Trace t = bench::CharacterizationTrace();

  TablePrinter table({"cores", "first-party", "third-party", "all"});
  auto first = CoreBreakdown(t, PartyFilter::kFirst);
  auto third = CoreBreakdown(t, PartyFilter::kThird);
  auto all = CoreBreakdown(t, PartyFilter::kAll);
  for (const char* cores : {"1", "2", "4", "8", "16"}) {
    table.AddRow({cores, TablePrinter::Pct(first.Fraction(cores)),
                  TablePrinter::Pct(third.Fraction(cores)),
                  TablePrinter::Pct(all.Fraction(cores))});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchor: ~80% of VMs use 1-2 cores -> measured "
            << TablePrinter::Pct(all.Fraction("1") + all.Fraction("2")) << "\n";
  return 0;
}
