// Figure 1: CDFs of average and P95-of-max CPU utilization, split by party.
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 1: CDF of avg and P95-max CPU utilization", "Fig. 1");
  trace::Trace t = bench::CharacterizationTrace();

  TablePrinter table({"util <=", "avg all", "avg 1st", "avg 3rd", "p95 all", "p95 1st",
                      "p95 3rd"});
  UtilizationCdfs all = BuildUtilizationCdfs(t, PartyFilter::kAll);
  UtilizationCdfs first = BuildUtilizationCdfs(t, PartyFilter::kFirst);
  UtilizationCdfs third = BuildUtilizationCdfs(t, PartyFilter::kThird);
  for (int pct = 10; pct <= 100; pct += 10) {
    double x = pct / 100.0;
    table.AddRow({std::to_string(pct) + "%", TablePrinter::Pct(all.avg.Eval(x)),
                  TablePrinter::Pct(first.avg.Eval(x)), TablePrinter::Pct(third.avg.Eval(x)),
                  TablePrinter::Pct(all.p95_max.Eval(x)),
                  TablePrinter::Pct(first.p95_max.Eval(x)),
                  TablePrinter::Pct(third.p95_max.Eval(x))});
  }
  table.Print(std::cout);

  std::cout << "\npaper anchors: ~60% of VMs below 20% avg utilization -> measured "
            << TablePrinter::Pct(all.avg.Eval(0.20)) << "\n"
            << "               ~40% of VMs below 50% P95 utilization -> measured "
            << TablePrinter::Pct(all.p95_max.Eval(0.50)) << "\n"
            << "               first-party curves sit above third-party (lower util)\n";
  return 0;
}
