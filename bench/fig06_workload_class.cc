// Figure 6: workload classes (FFT-derived) and their share of core hours.
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 6: workload classes and their core-hours", "Fig. 6");
  // The FFT classifier runs over every long-lived VM's telemetry; keep the
  // trace moderate.
  trace::Trace t = bench::CharacterizationTrace(40'000);

  TablePrinter table({"population", "delay-insensitive", "interactive", "unknown"});
  for (PartyFilter filter : {PartyFilter::kAll, PartyFilter::kFirst, PartyFilter::kThird}) {
    auto shares = CoreHoursByClass(t, filter, /*use_fft=*/true);
    double total = shares.total();
    table.AddRow({ToString(filter), TablePrinter::Pct(shares.delay_insensitive / total),
                  TablePrinter::Pct(shares.interactive / total),
                  TablePrinter::Pct(shares.unknown / total)});
  }
  table.Print(std::cout);

  auto truth = CoreHoursByClass(t, PartyFilter::kAll, /*use_fft=*/false);
  auto fft = CoreHoursByClass(t, PartyFilter::kAll, /*use_fft=*/true);
  std::cout << "\npaper anchors: delay-insensitive ~68% of core-hours, interactive ~28%\n"
            << "FFT vs generative ground truth (interactive share): "
            << TablePrinter::Pct(fft.interactive / fft.total()) << " vs "
            << TablePrinter::Pct(truth.interactive / truth.total()) << "\n";
  return 0;
}
