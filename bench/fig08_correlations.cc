// Figure 8: Spearman's correlations between the VM metrics (heat map,
// rendered as a matrix table).
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 8: Spearman correlations between metrics", "Fig. 8");
  trace::Trace t = bench::CharacterizationTrace(40'000);

  auto m = MetricCorrelations(t, PartyFilter::kAll);
  std::vector<std::string> header = {""};
  header.insert(header.end(), m.names.begin(), m.names.end());
  TablePrinter table(header);
  for (size_t i = 0; i < m.names.size(); ++i) {
    std::vector<std::string> row = {m.names[i]};
    for (size_t j = 0; j < m.names.size(); ++j) {
      row.push_back(TablePrinter::Fmt(m.at(i, j), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\npaper anchors: avg/p95 utilization strongly positive; cores/memory\n"
            << "strongly positive; utilization slightly negative vs cores & memory;\n"
            << "class slightly positive vs lifetime (interactive VMs live longer)\n";
  return 0;
}
