#include "bench/bench_common.h"

namespace rc::bench {

rc::trace::WorkloadConfig CharacterizationConfig(int64_t vms, uint64_t seed) {
  rc::trace::WorkloadConfig config;
  config.target_vm_count = vms;
  config.num_subscriptions = std::max<int>(500, static_cast<int>(vms / 25));
  config.duration = 90 * kDay;
  config.seed = seed;
  return config;
}

rc::trace::Trace CharacterizationTrace(int64_t vms, uint64_t seed) {
  return rc::trace::WorkloadModel(CharacterizationConfig(vms, seed)).Generate();
}

rc::trace::WorkloadConfig SchedulerWorkloadConfig(int64_t vms, SimDuration duration,
                                                  uint64_t seed) {
  rc::trace::WorkloadConfig config;
  config.target_vm_count = vms;
  config.duration = duration;
  config.num_subscriptions = 4000;
  config.seed = seed;
  config.frac_first_party = 1.0;
  config.first_party_production_prob = 0.71;  // paper: 71% production VMs
  config.lifetime_cap_days = 15.0;
  config.lifetime_tail_alpha = 1.0;
  config.popularity_cap = 0.0015;
  config.resident_interactive_vm_frac = 0.002;
  config.deploy_vms_marginal = {0.49, 0.41, 0.10, 0.0};
  config.arrivals.weibull_shape = 0.9;
  config.arrivals.night_level = 0.6;
  config.arrivals.weekend_level = 0.8;
  return config;
}

rc::core::PipelineConfig DefaultPipelineConfig(SimTime train_end) {
  rc::core::PipelineConfig config;
  config.train_begin = 0;
  config.train_end = train_end;
  // Sized for the Table 1 regime: accuracy saturates near here (see
  // bench/ablation_model_size) while models stay in the hundreds of KB.
  config.rf.num_trees = 16;
  config.rf.tree.max_depth = 10;
  config.rf.tree.min_samples_leaf = 16;
  config.gbt.num_rounds = 40;
  return config;
}

void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(reproduces " << paper_ref << " of Cortez et al., SOSP'17)\n\n";
}

}  // namespace rc::bench
