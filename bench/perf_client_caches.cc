// Section 6.1 "Performance": result-cache hit rates when replaying the test
// month through the client (paper: 18-68 hits per model execution depending
// on the metric), plus cache-management micro-benchmarks.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"

using namespace rc;
using namespace rc::core;

namespace {

struct Harness {
  trace::Trace trace;
  rc::store::KvStore store;
  std::vector<ClientInputs> replay;

  Harness() : trace(bench::CharacterizationTrace(30'000)) {
    OfflinePipeline pipeline(bench::DefaultPipelineConfig());
    TrainedModels trained = pipeline.Run(trace);
    OfflinePipeline::Publish(trained, store);
    static const trace::VmSizeCatalog catalog;
    for (const auto* vm : trace.VmsCreatedIn(60 * kDay, 90 * kDay)) {
      replay.push_back(InputsFromVm(*vm, catalog));
    }
  }
};

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

void PrintHitRateTable() {
  bench::Banner("Section 6.1 performance: result-cache effectiveness", "Sec. 6.1");
  Harness& h = SharedHarness();
  TablePrinter table({"Model", "requests", "hits", "executions", "hits/execution",
                      "no-predictions"});
  for (Metric m : kAllMetrics) {
    Client client(&h.store, ClientConfig{});
    client.Initialize();
    std::string model = MetricModelName(m);
    for (const auto& inputs : h.replay) client.PredictSingle(model, inputs);
    auto stats = client.stats();
    double per_exec = stats.model_executions > 0
                          ? static_cast<double>(stats.result_hits) /
                                static_cast<double>(stats.model_executions)
                          : 0.0;
    table.AddRow({model, std::to_string(h.replay.size()), std::to_string(stats.result_hits),
                  std::to_string(stats.model_executions), TablePrinter::Fmt(per_exec, 1),
                  std::to_string(stats.no_predictions)});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchor: an entry is reused 18-68 times per model execution\n"
            << "(reuse grows with trace length; a month-long replay is the lower end)\n\n";
}

void BM_PredictWarm(benchmark::State& state) {
  Harness& h = SharedHarness();
  Client client(&h.store, ClientConfig{});
  client.Initialize();
  size_t i = 0;
  for (auto _ : state) {
    auto p = client.PredictSingle("VM_P95UTIL", h.replay[i++ % h.replay.size()]);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PredictWarm)->Unit(benchmark::kMicrosecond);

void BM_ForceReloadCache(benchmark::State& state) {
  Harness& h = SharedHarness();
  Client client(&h.store, ClientConfig{});
  client.Initialize();
  for (auto _ : state) {
    client.ForceReloadCache();
  }
}
BENCHMARK(BM_ForceReloadCache)->Unit(benchmark::kMillisecond);

void BM_ClientInitialize(benchmark::State& state) {
  Harness& h = SharedHarness();
  for (auto _ : state) {
    Client client(&h.store, ClientConfig{});
    bool ok = client.Initialize();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ClientInitialize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintHitRateTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
