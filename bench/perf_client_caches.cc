// Section 6.1 "Performance": result-cache hit rates when replaying the test
// month through the client (paper: 18-68 hits per model execution depending
// on the metric), cache-management micro-benchmarks, and a multi-threaded
// throughput mode exercising the lock-free snapshot hot path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <latch>
#include <thread>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/obs/export.h"

using namespace rc;
using namespace rc::core;

namespace {

// Shared with fig10_latency: series are merged into the same file.
constexpr const char* kBenchJson = "BENCH_client_latency.json";

rc::obs::MetricsRegistry& BenchRegistry() {
  static rc::obs::MetricsRegistry* registry = new rc::obs::MetricsRegistry();
  return *registry;
}

struct Harness {
  trace::Trace trace;
  rc::store::KvStore store;
  std::vector<ClientInputs> replay;

  Harness() : trace(bench::CharacterizationTrace(30'000)) {
    OfflinePipeline pipeline(bench::DefaultPipelineConfig());
    TrainedModels trained = pipeline.Run(trace);
    OfflinePipeline::Publish(trained, store);
    static const trace::VmSizeCatalog catalog;
    for (const auto* vm : trace.VmsCreatedIn(60 * kDay, 90 * kDay)) {
      replay.push_back(InputsFromVm(*vm, catalog));
    }
  }
};

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

void PrintHitRateTable() {
  bench::Banner("Section 6.1 performance: result-cache effectiveness", "Sec. 6.1");
  Harness& h = SharedHarness();
  TablePrinter table({"Model", "requests", "hits", "executions", "hits/execution",
                      "no-predictions"});
  for (Metric m : kAllMetrics) {
    Client client(&h.store, ClientConfig{});
    client.Initialize();
    std::string model = MetricModelName(m);
    for (const auto& inputs : h.replay) client.PredictSingle(model, inputs);
    auto stats = client.stats();
    double per_exec = stats.model_executions > 0
                          ? static_cast<double>(stats.result_hits) /
                                static_cast<double>(stats.model_executions)
                          : 0.0;
    table.AddRow({model, std::to_string(h.replay.size()), std::to_string(stats.result_hits),
                  std::to_string(stats.model_executions), TablePrinter::Fmt(per_exec, 1),
                  std::to_string(stats.no_predictions)});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchor: an entry is reused 18-68 times per model execution\n"
            << "(reuse grows with trace length; a month-long replay is the lower end)\n\n";
}

// Predictions/sec at 1/2/4/8 threads over a warm result cache, with and
// without a concurrent pusher republishing feature data (push-listener state
// swaps + result-cache invalidations). The client serializes on no global
// lock on this path, so throughput should scale with the thread count.
void PrintThreadScalingTable() {
  bench::Banner("Client concurrency: prediction throughput vs threads",
                "Sec. 4 / Table 2 (thread-safe client DLL)");
  Harness& h = SharedHarness();
  // A working set small enough to stay result-cache resident.
  std::vector<ClientInputs> working_set(h.replay.begin(),
                                        h.replay.begin() + std::min<size_t>(256, h.replay.size()));
  constexpr int kItersPerThread = 200'000;

  auto run = [&](int num_threads, bool with_pusher) {
    Client client(&h.store, ClientConfig{});
    client.Initialize();
    // Warm the result cache once so the measured path is the sharded-cache hit.
    for (const auto& inputs : working_set) client.PredictSingle("VM_P95UTIL", inputs);

    std::latch start(num_threads + 1 + (with_pusher ? 1 : 0));
    std::atomic<bool> stop{false};
    std::thread pusher;
    if (with_pusher) {
      pusher = std::thread([&] {
        uint64_t subscription = working_set[0].subscription_id;
        auto blob = h.store.Get(rc::core::FeatureKey(subscription));
        start.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          if (blob) h.store.Put(rc::core::FeatureKey(subscription), blob->data);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        start.arrive_and_wait();
        size_t i = static_cast<size_t>(t) * 37;  // decorrelate thread walks
        for (int iter = 0; iter < kItersPerThread; ++iter) {
          auto p = client.PredictSingle("VM_P95UTIL", working_set[i++ % working_set.size()]);
          benchmark::DoNotOptimize(p);
        }
      });
    }
    start.arrive_and_wait();
    auto begin = std::chrono::steady_clock::now();
    for (auto& w : workers) w.join();
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    stop = true;
    if (pusher.joinable()) pusher.join();
    return static_cast<double>(num_threads) * kItersPerThread / elapsed.count();
  };

  TablePrinter table({"threads", "preds/sec (warm)", "speedup", "preds/sec (w/ pusher)"});
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double warm = run(threads, /*with_pusher=*/false);
    double pushed = run(threads, /*with_pusher=*/true);
    if (threads == 1) base = warm;
    std::string threads_label = std::to_string(threads);
    BenchRegistry()
        .GetGauge("rc_bench_predict_throughput_per_sec",
                  {{"threads", threads_label}, {"pusher", "no"}},
                  "warm result-cache hit throughput")
        .Set(warm);
    BenchRegistry()
        .GetGauge("rc_bench_predict_throughput_per_sec",
                  {{"threads", threads_label}, {"pusher", "yes"}})
        .Set(pushed);
    table.AddRow({threads_label, TablePrinter::Fmt(warm, 0),
                  TablePrinter::Fmt(warm / base, 2) + "x", TablePrinter::Fmt(pushed, 0)});
  }
  table.Print(std::cout);
  unsigned hw = std::thread::hardware_concurrency();
  std::cout << "\nhot path: sharded result-cache hit; no global lock taken.\n"
            << "pusher column: a concurrent writer republishes feature data\n"
            << "(snapshot swap + cache invalidation) every 500us.\n"
            << "hardware threads: " << hw
            << (hw < 4 ? "  (scaling is core-bound on this machine; flat\n"
                         "throughput under oversubscription still indicates a\n"
                         "contention-free hot path)"
                       : "")
            << "\n\n";
}

// Hot-path instrumentation cost (the ISSUE's <5% criterion): single-thread
// warm-cache throughput with latency sampling off (counters only), at the
// default 1-in-64 sampling, and timing every call. The 0 -> 64 delta is the
// shipped configuration's overhead; 0 -> 1 bounds the cost of the two clock
// reads.
void PrintInstrumentationOverheadTable() {
  bench::Banner("Observability: hot-path instrumentation overhead",
                "DESIGN.md Observability (cost model)");
  Harness& h = SharedHarness();
  std::vector<ClientInputs> working_set(
      h.replay.begin(), h.replay.begin() + std::min<size_t>(256, h.replay.size()));

  auto run = [&](uint32_t sample_every) {
    ClientConfig config;
    config.predict_latency_sample_every = sample_every;
    Client client(&h.store, config);
    client.Initialize();
    for (const auto& inputs : working_set) client.PredictSingle("VM_P95UTIL", inputs);
    constexpr int kIters = 400'000;
    auto begin = std::chrono::steady_clock::now();
    size_t i = 0;
    for (int iter = 0; iter < kIters; ++iter) {
      auto p = client.PredictSingle("VM_P95UTIL", working_set[i++ % working_set.size()]);
      benchmark::DoNotOptimize(p);
    }
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    return kIters / elapsed.count();
  };

  TablePrinter table({"sample_every", "preds/sec", "vs unarmed"});
  double unarmed = 0.0;
  for (uint32_t every : {0u, 64u, 1u}) {
    double rate = run(every);
    if (every == 0) unarmed = rate;
    BenchRegistry()
        .GetGauge("rc_bench_instrumented_throughput_per_sec",
                  {{"sample_every", std::to_string(every)}},
                  "warm-hit throughput under latency sampling")
        .Set(rate);
    table.AddRow({every == 0 ? "0 (off)" : std::to_string(every),
                  TablePrinter::Fmt(rate, 0),
                  TablePrinter::Fmt(100.0 * rate / unarmed, 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nacceptance bar: sample_every=64 (the default) within 5% of off.\n"
            << "counters (relaxed sharded fetch_add) are on in every column.\n\n";
}

void BM_PredictWarm(benchmark::State& state) {
  Harness& h = SharedHarness();
  Client client(&h.store, ClientConfig{});
  client.Initialize();
  size_t i = 0;
  for (auto _ : state) {
    auto p = client.PredictSingle("VM_P95UTIL", h.replay[i++ % h.replay.size()]);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PredictWarm)->Unit(benchmark::kMicrosecond);

void BM_ForceReloadCache(benchmark::State& state) {
  Harness& h = SharedHarness();
  Client client(&h.store, ClientConfig{});
  client.Initialize();
  for (auto _ : state) {
    client.ForceReloadCache();
  }
}
BENCHMARK(BM_ForceReloadCache)->Unit(benchmark::kMillisecond);

void BM_ClientInitialize(benchmark::State& state) {
  Harness& h = SharedHarness();
  for (auto _ : state) {
    Client client(&h.store, ClientConfig{});
    bool ok = client.Initialize();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ClientInitialize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintHitRateTable();
  PrintThreadScalingTable();
  PrintInstrumentationOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rc::obs::MergeJsonMetricsFile(kBenchJson, BenchRegistry());
  std::cout << "metrics written to " << kBenchJson << "\n";
  return 0;
}
