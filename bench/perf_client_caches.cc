// Section 6.1 "Performance": result-cache hit rates when replaying the test
// month through the client (paper: 18-68 hits per model execution depending
// on the metric), cache-management micro-benchmarks, and a multi-threaded
// throughput mode exercising the lock-free snapshot hot path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <latch>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/sharded_cache.h"
#include "src/common/hashing.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/obs/export.h"

using namespace rc;
using namespace rc::core;

namespace {

// Shared with fig10_latency: series are merged into the same file.
constexpr const char* kBenchJson = "BENCH_client_latency.json";

rc::obs::MetricsRegistry& BenchRegistry() {
  static rc::obs::MetricsRegistry* registry = new rc::obs::MetricsRegistry();
  return *registry;
}

// rc::cache arms (policy / probe / store sharding) land in their own file.
constexpr const char* kCacheBenchJson = "BENCH_cache.json";

rc::obs::MetricsRegistry& CacheBenchRegistry() {
  static rc::obs::MetricsRegistry* registry = new rc::obs::MetricsRegistry();
  return *registry;
}

struct Harness {
  trace::Trace trace;
  rc::store::KvStore store;
  std::vector<ClientInputs> replay;

  Harness() : trace(bench::CharacterizationTrace(30'000)) {
    OfflinePipeline pipeline(bench::DefaultPipelineConfig());
    TrainedModels trained = pipeline.Run(trace);
    OfflinePipeline::Publish(trained, store);
    static const trace::VmSizeCatalog catalog;
    for (const auto* vm : trace.VmsCreatedIn(60 * kDay, 90 * kDay)) {
      replay.push_back(InputsFromVm(*vm, catalog));
    }
  }
};

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

void PrintHitRateTable() {
  bench::Banner("Section 6.1 performance: result-cache effectiveness", "Sec. 6.1");
  Harness& h = SharedHarness();
  TablePrinter table({"Model", "requests", "hits", "executions", "hits/execution",
                      "no-predictions"});
  for (Metric m : kAllMetrics) {
    Client client(&h.store, ClientConfig{});
    client.Initialize();
    std::string model = MetricModelName(m);
    for (const auto& inputs : h.replay) client.PredictSingle(model, inputs);
    auto stats = client.stats();
    double per_exec = stats.model_executions > 0
                          ? static_cast<double>(stats.result_hits) /
                                static_cast<double>(stats.model_executions)
                          : 0.0;
    table.AddRow({model, std::to_string(h.replay.size()), std::to_string(stats.result_hits),
                  std::to_string(stats.model_executions), TablePrinter::Fmt(per_exec, 1),
                  std::to_string(stats.no_predictions)});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchor: an entry is reused 18-68 times per model execution\n"
            << "(reuse grows with trace length; a month-long replay is the lower end)\n\n";
}

// Predictions/sec at 1/2/4/8 threads over a warm result cache, with and
// without a concurrent pusher republishing feature data (push-listener state
// swaps + result-cache invalidations). The client serializes on no global
// lock on this path, so throughput should scale with the thread count.
void PrintThreadScalingTable() {
  bench::Banner("Client concurrency: prediction throughput vs threads",
                "Sec. 4 / Table 2 (thread-safe client DLL)");
  Harness& h = SharedHarness();
  // A working set small enough to stay result-cache resident.
  std::vector<ClientInputs> working_set(h.replay.begin(),
                                        h.replay.begin() + std::min<size_t>(256, h.replay.size()));
  constexpr int kItersPerThread = 200'000;

  auto run = [&](int num_threads, bool with_pusher) {
    Client client(&h.store, ClientConfig{});
    client.Initialize();
    // Warm the result cache once so the measured path is the sharded-cache hit.
    for (const auto& inputs : working_set) client.PredictSingle("VM_P95UTIL", inputs);

    std::latch start(num_threads + 1 + (with_pusher ? 1 : 0));
    std::atomic<bool> stop{false};
    std::thread pusher;
    if (with_pusher) {
      pusher = std::thread([&] {
        uint64_t subscription = working_set[0].subscription_id;
        auto blob = h.store.Get(rc::core::FeatureKey(subscription));
        start.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          if (blob) h.store.Put(rc::core::FeatureKey(subscription), blob->data);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        start.arrive_and_wait();
        size_t i = static_cast<size_t>(t) * 37;  // decorrelate thread walks
        for (int iter = 0; iter < kItersPerThread; ++iter) {
          auto p = client.PredictSingle("VM_P95UTIL", working_set[i++ % working_set.size()]);
          benchmark::DoNotOptimize(p);
        }
      });
    }
    start.arrive_and_wait();
    auto begin = std::chrono::steady_clock::now();
    for (auto& w : workers) w.join();
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    stop = true;
    if (pusher.joinable()) pusher.join();
    return static_cast<double>(num_threads) * kItersPerThread / elapsed.count();
  };

  TablePrinter table({"threads", "preds/sec (warm)", "speedup", "preds/sec (w/ pusher)"});
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double warm = run(threads, /*with_pusher=*/false);
    double pushed = run(threads, /*with_pusher=*/true);
    if (threads == 1) base = warm;
    std::string threads_label = std::to_string(threads);
    BenchRegistry()
        .GetGauge("rc_bench_predict_throughput_per_sec",
                  {{"threads", threads_label}, {"pusher", "no"}},
                  "warm result-cache hit throughput")
        .Set(warm);
    BenchRegistry()
        .GetGauge("rc_bench_predict_throughput_per_sec",
                  {{"threads", threads_label}, {"pusher", "yes"}})
        .Set(pushed);
    table.AddRow({threads_label, TablePrinter::Fmt(warm, 0),
                  TablePrinter::Fmt(warm / base, 2) + "x", TablePrinter::Fmt(pushed, 0)});
  }
  table.Print(std::cout);
  unsigned hw = std::thread::hardware_concurrency();
  std::cout << "\nhot path: sharded result-cache hit; no global lock taken.\n"
            << "pusher column: a concurrent writer republishes feature data\n"
            << "(snapshot swap + cache invalidation) every 500us.\n"
            << "hardware threads: " << hw
            << (hw < 4 ? "  (scaling is core-bound on this machine; flat\n"
                         "throughput under oversubscription still indicates a\n"
                         "contention-free hot path)"
                       : "")
            << "\n\n";
}

// Hot-path instrumentation cost (the ISSUE's <5% criterion): single-thread
// warm-cache throughput with latency sampling off (counters only), at the
// default 1-in-64 sampling, and timing every call. The 0 -> 64 delta is the
// shipped configuration's overhead; 0 -> 1 bounds the cost of the two clock
// reads.
void PrintInstrumentationOverheadTable() {
  bench::Banner("Observability: hot-path instrumentation overhead",
                "DESIGN.md Observability (cost model)");
  Harness& h = SharedHarness();
  std::vector<ClientInputs> working_set(
      h.replay.begin(), h.replay.begin() + std::min<size_t>(256, h.replay.size()));

  auto run = [&](uint32_t sample_every) {
    ClientConfig config;
    config.predict_latency_sample_every = sample_every;
    Client client(&h.store, config);
    client.Initialize();
    for (const auto& inputs : working_set) client.PredictSingle("VM_P95UTIL", inputs);
    constexpr int kIters = 400'000;
    auto begin = std::chrono::steady_clock::now();
    size_t i = 0;
    for (int iter = 0; iter < kIters; ++iter) {
      auto p = client.PredictSingle("VM_P95UTIL", working_set[i++ % working_set.size()]);
      benchmark::DoNotOptimize(p);
    }
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    return kIters / elapsed.count();
  };

  TablePrinter table({"sample_every", "preds/sec", "vs unarmed"});
  double unarmed = 0.0;
  for (uint32_t every : {0u, 64u, 1u}) {
    double rate = run(every);
    if (every == 0) unarmed = rate;
    BenchRegistry()
        .GetGauge("rc_bench_instrumented_throughput_per_sec",
                  {{"sample_every", std::to_string(every)}},
                  "warm-hit throughput under latency sampling")
        .Set(rate);
    table.AddRow({every == 0 ? "0 (off)" : std::to_string(every),
                  TablePrinter::Fmt(rate, 0),
                  TablePrinter::Fmt(100.0 * rate / unarmed, 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nacceptance bar: sample_every=64 (the default) within 5% of off.\n"
            << "counters (relaxed sharded fetch_add) are on in every column.\n\n";
}

// ===========================================================================
// rc::cache arms (ISSUE 10): admission policy quality, locked vs lock-free
// probe latency, global vs sharded store throughput. Everything below writes
// into CacheBenchRegistry() -> BENCH_cache.json.
// ===========================================================================

// Replica of the pre-rc::cache result cache: 16 mutex-guarded unordered_map
// shards, each FLUSHED when it reaches capacity. Kept here (not in src/) as
// the historical control arm.
class LegacyFlushCache {
 public:
  explicit LegacyFlushCache(size_t capacity)
      : shard_capacity_(std::max<size_t>(1, capacity / kShards)) {}

  bool Lookup(uint64_t key, uint64_t* out) {
    Shard& s = shards_[HashU64(key) & (kShards - 1)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    *out = it->second;
    return true;
  }

  void Insert(uint64_t key, uint64_t value) {
    Shard& s = shards_[HashU64(key) & (kShards - 1)];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.map.size() >= shard_capacity_) s.map.clear();  // the old behavior
    s.map.emplace(key, value);
  }

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, uint64_t> map;
  };
  size_t shard_capacity_;
  std::array<Shard, kShards> shards_;
};

// Zipf(s) sampler over [0, n): precomputed CDF + binary search (same shape
// as perf_net.cc's and the admission test's).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += 1.0 / std::pow(double(i + 1), s);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(double(i + 1), s) / sum;
      cdf_[i] = acc;
    }
  }

  uint64_t Sample(std::mt19937_64& rng) const {
    const double u = double(rng() >> 11) * 0x1.0p-53;
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

// The adversarial replay: Zipf(1.0) bursts alternating with a sequential
// scan over a fixed region slightly larger than the cache (LRU's worst
// case; see tests/cache/admission_test.cc for the full rationale).
std::vector<uint64_t> CacheZipfScanTrace() {
  std::mt19937_64 rng(42);
  ZipfSampler zipf(16384, 1.0);
  std::vector<uint64_t> trace;
  trace.reserve(120'000);
  for (int i = 0; i < 10'000; ++i) trace.push_back(zipf.Sample(rng));
  for (int block = 0; block < 25; ++block) {
    for (int i = 0; i < 2'000; ++i) trace.push_back(zipf.Sample(rng));
    for (uint64_t i = 0; i < 2'200; ++i) trace.push_back(1'000'000 + i);
  }
  return trace;
}

// Hit rate + single-thread ns/op per admission-policy arm on the Zipf+scan
// replay. The acceptance bar: W-TinyLFU >= legacy flush + 10 points.
void PrintCachePolicyTable() {
  bench::Banner("rc::cache admission policy: Zipf(1.0)+scan replay",
                "ISSUE 10 (W-TinyLFU vs LRU vs legacy flush-on-overflow)");
  const std::vector<uint64_t> trace = CacheZipfScanTrace();
  constexpr size_t kCapacity = 2048;

  auto record = [&](const char* policy, double hit_rate, double ns_per_op) {
    CacheBenchRegistry()
        .GetGauge("rc_bench_cache_hit_rate", {{"policy", policy}},
                  "Zipf+scan replay hit rate by admission policy")
        .Set(hit_rate);
    CacheBenchRegistry()
        .GetGauge("rc_bench_cache_ns_per_op", {{"policy", policy}},
                  "single-thread lookup+insert cost on the replay")
        .Set(ns_per_op);
  };

  TablePrinter table({"policy", "hit rate", "ns/op", "vs legacy"});
  double legacy_rate = 0.0;
  // Arm 1: the old flush-on-overflow cache.
  {
    LegacyFlushCache cache(kCapacity);
    uint64_t hits = 0;
    auto begin = std::chrono::steady_clock::now();
    for (uint64_t key : trace) {
      uint64_t out;
      if (cache.Lookup(key, &out)) ++hits; else cache.Insert(key, key);
    }
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    legacy_rate = double(hits) / double(trace.size());
    const double ns = elapsed.count() * 1e9 / double(trace.size());
    record("legacy_flush", legacy_rate, ns);
    table.AddRow({"legacy flush", TablePrinter::Fmt(100 * legacy_rate, 1) + "%",
                  TablePrinter::Fmt(ns, 0), "--"});
  }
  // Arms 2+3: rc::cache with admission off (plain LRU) and on (W-TinyLFU).
  for (bool admission : {false, true}) {
    rc::cache::CacheOptions options;
    options.capacity = kCapacity;
    options.shards = 16;
    options.admission = admission;
    rc::cache::Word2Cache cache(options);
    uint64_t hits = 0;
    auto begin = std::chrono::steady_clock::now();
    for (uint64_t key : trace) {
      uint64_t out[2];
      if (cache.Lookup(key, out)) {
        ++hits;
      } else {
        const uint64_t value[2] = {key, ~key};
        cache.Insert(key, value, cache.epoch());
      }
    }
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    const double rate = double(hits) / double(trace.size());
    const double ns = elapsed.count() * 1e9 / double(trace.size());
    record(admission ? "wtinylfu" : "lru", rate, ns);
    table.AddRow({admission ? "W-TinyLFU" : "LRU (admission off)",
                  TablePrinter::Fmt(100 * rate, 1) + "%", TablePrinter::Fmt(ns, 0),
                  TablePrinter::Fmt(100 * (rate - legacy_rate), 1) + " pts"});
  }
  table.Print(std::cout);
  std::cout << "\nacceptance bar: W-TinyLFU >= legacy flush + 10 points.\n\n";
}

// Locked vs lock-free probe: 4 reader threads over a warm cache, per-op cost
// sampled in 64-op batches; p50/p99 of the batch means. The acceptance bar:
// lock-free p99 no worse than the locked baseline.
void PrintProbeLatencyTable() {
  bench::Banner("rc::cache probe path: locked vs lock-free (seqlock)",
                "ISSUE 10 (zero mutex acquisitions on hit)");
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1 << 20;
  constexpr int kBatch = 64;

  auto run = [&](bool locked_probe) {
    rc::cache::CacheOptions options;
    options.capacity = 4096;
    options.shards = 16;
    options.locked_probe = locked_probe;
    rc::cache::Word2Cache cache(options);
    for (uint64_t k = 0; k < 1024; ++k) {
      const uint64_t value[2] = {k, ~k};
      cache.Insert(k, value, cache.epoch());
    }
    std::vector<std::vector<double>> samples(kThreads);
    std::latch start(kThreads + 1);
    std::vector<std::thread> readers;
    readers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      readers.emplace_back([&, t] {
        samples[t].reserve(kOpsPerThread / kBatch);
        std::mt19937_64 rng(1000 + t);
        start.arrive_and_wait();
        uint64_t out[2];
        for (int i = 0; i < kOpsPerThread / kBatch; ++i) {
          auto begin = std::chrono::steady_clock::now();
          for (int b = 0; b < kBatch; ++b) {
            bool hit = cache.Lookup(rng() % 1024, out);
            benchmark::DoNotOptimize(hit);
            benchmark::DoNotOptimize(out);
          }
          auto elapsed = std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - begin);
          samples[t].push_back(elapsed.count() / kBatch);
        }
      });
    }
    start.arrive_and_wait();
    auto begin = std::chrono::steady_clock::now();
    for (auto& th : readers) th.join();
    auto wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    std::vector<double> all;
    for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
    std::sort(all.begin(), all.end());
    struct Result { double p50, p99, mops; };
    return Result{all[all.size() / 2], all[all.size() * 99 / 100],
                  double(kThreads) * kOpsPerThread / wall.count() / 1e6};
  };

  TablePrinter table({"probe arm", "p50 ns", "p99 ns", "lookups/sec (4 thr)"});
  for (bool locked : {true, false}) {
    auto r = run(locked);
    const char* arm = locked ? "locked" : "lockfree";
    CacheBenchRegistry().GetGauge("rc_bench_cache_probe_ns",
                                  {{"arm", arm}, {"stat", "p50"}},
                                  "warm-hit probe latency (batch-mean ns)")
        .Set(r.p50);
    CacheBenchRegistry()
        .GetGauge("rc_bench_cache_probe_ns", {{"arm", arm}, {"stat", "p99"}})
        .Set(r.p99);
    CacheBenchRegistry().GetGauge("rc_bench_cache_probe_mops", {{"arm", arm}},
                                  "aggregate warm-hit lookup throughput (M ops/s)")
        .Set(r.mops);
    table.AddRow({locked ? "locked (old layout)" : "lock-free (seqlock)",
                  TablePrinter::Fmt(r.p50, 1), TablePrinter::Fmt(r.p99, 1),
                  TablePrinter::Fmt(r.mops * 1e6, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nacceptance bar: lock-free p99 <= locked p99.\n\n";
}

// Global-mutex (shards=1) vs sharded (shards=16) KvStore under concurrent
// multi-model load: 8 threads each re-reading its own model blobs, the
// publish-heavy-window pattern from the ISSUE. Bar: sharded >= 1.5x.
void PrintStoreShardingTable() {
  bench::Banner("KvStore sharding: concurrent multi-model load",
                "ISSUE 10 (global mutex vs hash-sharded store)");
  constexpr int kThreads = 8;
  constexpr int kGetsPerThread = 30'000;
  constexpr int kModels = 16;

  auto run = [&](size_t shards) {
    rc::store::KvStore::Options options;
    options.shards = shards;
    rc::store::KvStore store(options);
    // 850-byte records: the paper's measured median model/feature blob.
    for (int i = 0; i < kModels; ++i) {
      store.Put("model/" + std::to_string(i), std::vector<uint8_t>(850, uint8_t(i)));
    }
    std::vector<std::string> keys;
    keys.reserve(kModels);
    for (int i = 0; i < kModels; ++i) keys.push_back("model/" + std::to_string(i));
    std::latch start(kThreads + 1);
    std::vector<std::thread> loaders;
    loaders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      loaders.emplace_back([&, t] {
        start.arrive_and_wait();
        for (int i = 0; i < kGetsPerThread; ++i) {
          auto blob = store.Get(keys[(t * 7 + i) % kModels]);
          benchmark::DoNotOptimize(blob);
        }
      });
    }
    start.arrive_and_wait();
    auto begin = std::chrono::steady_clock::now();
    for (auto& th : loaders) th.join();
    auto wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin);
    return double(kThreads) * kGetsPerThread / wall.count();
  };

  TablePrinter table({"store arm", "loads/sec (8 thr)", "speedup"});
  const double global = run(1);
  const double sharded = run(16);
  CacheBenchRegistry().GetGauge("rc_bench_store_mload_per_sec", {{"shards", "1"}},
                                "concurrent multi-model Get throughput")
      .Set(global);
  CacheBenchRegistry()
      .GetGauge("rc_bench_store_mload_per_sec", {{"shards", "16"}})
      .Set(sharded);
  CacheBenchRegistry().GetGauge("rc_bench_store_mload_speedup", {},
                                "sharded vs global-mutex store")
      .Set(sharded / global);
  const unsigned cores = std::thread::hardware_concurrency();
  CacheBenchRegistry().GetGauge("rc_bench_store_hw_threads", {},
                                "hardware threads during the store benchmark")
      .Set(double(cores));
  table.AddRow({"global mutex (shards=1)", TablePrinter::Fmt(global, 0), "--"});
  table.AddRow({"sharded (shards=16)", TablePrinter::Fmt(sharded, 0),
                TablePrinter::Fmt(sharded / global, 2) + "x"});
  table.Print(std::cout);
  std::cout << "\nacceptance bar: sharded >= 1.5x the global-mutex arm"
            << " (multi-core hosts).\nhardware threads: " << cores << "\n";
  if (cores < 2) {
    std::cout << "NOTE: single-core host -- threads time-slice, so sharding\n"
              << "cannot exceed 1x here; parity (no regression) is the\n"
              << "single-core expectation. Re-run on a multi-core host for\n"
              << "the speedup bar.\n";
  }
  std::cout << "\n";
}

void BM_PredictWarm(benchmark::State& state) {
  Harness& h = SharedHarness();
  Client client(&h.store, ClientConfig{});
  client.Initialize();
  size_t i = 0;
  for (auto _ : state) {
    auto p = client.PredictSingle("VM_P95UTIL", h.replay[i++ % h.replay.size()]);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PredictWarm)->Unit(benchmark::kMicrosecond);

void BM_ForceReloadCache(benchmark::State& state) {
  Harness& h = SharedHarness();
  Client client(&h.store, ClientConfig{});
  client.Initialize();
  for (auto _ : state) {
    client.ForceReloadCache();
  }
}
BENCHMARK(BM_ForceReloadCache)->Unit(benchmark::kMillisecond);

void BM_ClientInitialize(benchmark::State& state) {
  Harness& h = SharedHarness();
  for (auto _ : state) {
    Client client(&h.store, ClientConfig{});
    bool ok = client.Initialize();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ClientInitialize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintHitRateTable();
  PrintThreadScalingTable();
  PrintInstrumentationOverheadTable();
  PrintCachePolicyTable();
  PrintProbeLatencyTable();
  PrintStoreShardingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rc::obs::MergeJsonMetricsFile(kBenchJson, BenchRegistry());
  rc::obs::MergeJsonMetricsFile(kCacheBenchJson, CacheBenchRegistry());
  std::cout << "metrics written to " << kBenchJson << " and " << kCacheBenchJson
            << "\n";
  return 0;
}
