// Ablation: the confidence threshold theta. Table 4 reports one point
// (theta = 0.6); this sweep traces the whole precision/coverage frontier for
// every metric, generalizing the P^theta / R^theta columns.
#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/evaluation.h"

using namespace rc;
using namespace rc::core;

int main() {
  bench::Banner("Ablation: confidence threshold sweep (P^theta / R^theta frontier)",
                "Table 4 columns P^t, R^t");
  trace::Trace t = bench::CharacterizationTrace(60'000);
  OfflinePipeline pipeline(bench::DefaultPipelineConfig());
  TrainedModels trained = pipeline.Run(t);

  for (Metric m : {Metric::kP95Cpu, Metric::kLifetime}) {
    std::cout << MetricName(m) << ":\n";
    auto test = OfflinePipeline::BuildExamples(t, m, 60 * kDay, 90 * kDay, true);
    Featurizer featurizer(m, OfflinePipeline::EncodingFor(m));
    TablePrinter table({"theta", "precision (served)", "coverage (served/total)"});
    for (double theta : {0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
      MetricQuality q = EvaluateModel(*trained.models.at(MetricModelName(m)), featurizer,
                                      test, theta);
      table.AddRow({TablePrinter::Fmt(theta, 2), TablePrinter::Fmt(q.p_theta, 3),
                    TablePrinter::Pct(q.r_theta, 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "expected shape: precision rises monotonically with theta while\n"
            << "coverage falls; theta=0.6 (the paper's choice) buys most of the\n"
            << "precision gain while keeping coverage high\n";
  return 0;
}
