// Table 1: per-metric modeling approach, feature counts, serialized model
// size, and full feature-dataset size.
#include <numeric>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::core;

int main() {
  bench::Banner("Table 1: metrics, ML approaches, model and feature data sizes",
                "Table 1");
  trace::Trace t = bench::CharacterizationTrace(60'000);
  OfflinePipeline pipeline(bench::DefaultPipelineConfig());
  TrainedModels trained = pipeline.Run(t);

  size_t feature_bytes = 0;
  for (const auto& [id, features] : trained.feature_data) {
    feature_bytes += features.Serialize().size();
  }

  TablePrinter table({"Metric", "Approach", "#features", "Model size", "Feature data"});
  auto kb = [](size_t bytes) { return TablePrinter::Fmt(bytes / 1024.0, 0) + " KB"; };
  for (Metric m : kAllMetrics) {
    std::string name = MetricModelName(m);
    const auto& model = trained.models.at(name);
    const auto& spec = trained.specs.at(name);
    std::string approach = std::string(model->type_name()) == "random_forest"
                               ? "Random Forest"
                               : "Extreme Gradient Boosting Tree";
    if (m == Metric::kClass) approach = "FFT, " + approach;
    table.AddRow({MetricName(m), approach, std::to_string(spec.num_features),
                  kb(model->SerializeTagged().size()), kb(feature_bytes)});
  }
  table.Print(std::cout);
  std::cout << "\nfeature data: " << trained.feature_data.size() << " subscriptions, "
            << TablePrinter::Fmt(static_cast<double>(feature_bytes) /
                                     static_cast<double>(trained.feature_data.size()),
                                 0)
            << " bytes each (paper: ~850 B/subscription; dataset sizes scale with\n"
            << "subscription count — the paper's 376 MB covers its full population)\n"
            << "paper anchors: RF for the utilization metrics (127 features, ~312 KB),\n"
            << "boosted trees elsewhere (24-34 features, ~305-329 KB); all small\n"
            << "enough to execute client-side\n";
  return 0;
}
