// Shared machinery for the Section 6.2 scheduler benches: a two-month
// first-party trace (month 1 trains the P95 model, month 2 is replayed
// through the scheduler), the trained RC client, and a one-line runner per
// policy.
#ifndef RC_BENCH_SCHED_COMMON_H_
#define RC_BENCH_SCHED_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/sched/simulator.h"

namespace rc::bench {

class SchedStudy {
 public:
  // `monthly_vms` arrivals per month; the trace spans two months. When
  // `train_client` is false the (expensive) model training is skipped and
  // only oracle policies can run.
  explicit SchedStudy(int64_t monthly_vms = 368'000, bool train_client = true,
                      uint64_t seed = 42);

  // Placement requests for the simulated month (times rebased to 0).
  const std::vector<rc::sched::VmRequest>& requests() const { return requests_; }

  // Runs one policy over the simulated month and returns the results.
  rc::sched::SimResult Run(rc::sched::PolicyKind kind,
                           rc::sched::OversubParams oversub = {},
                           const rc::sched::SimConfig* override_config = nullptr,
                           int bucket_shift = 0);

  // Fraction of requests answered by the client with a confident
  // (score >= 0.6) prediction during the last RC-informed run.
  double last_served_fraction() const { return last_served_fraction_; }

  static rc::sched::SimConfig DefaultSimConfig();

  // Drops a fraction of the requests uniformly (load-reduction sensitivity).
  std::vector<rc::sched::VmRequest> ReducedLoad(double keep_fraction) const;

  rc::sched::SimResult RunOnRequests(std::vector<rc::sched::VmRequest> reqs,
                                     rc::sched::PolicyKind kind,
                                     rc::sched::OversubParams oversub,
                                     const rc::sched::SimConfig& sim_config,
                                     int bucket_shift = 0);

 private:
  rc::trace::Trace trace_;
  rc::store::KvStore store_;
  std::unique_ptr<rc::core::Client> client_;
  std::vector<rc::sched::VmRequest> requests_;
  double last_served_fraction_ = 0.0;
};

void PrintSimRow(rc::TablePrinter& table, const std::string& name,
                 const rc::sched::SimResult& result);
std::vector<std::string> SimHeader();

}  // namespace rc::bench

#endif  // RC_BENCH_SCHED_COMMON_H_
