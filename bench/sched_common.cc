#include "bench/sched_common.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/table_printer.h"

namespace rc::bench {

using rc::core::ClientConfig;
using rc::core::Featurizer;
using rc::core::InputsFromVm;
using rc::core::ModelSpec;
using rc::core::OfflinePipeline;
using rc::core::Prediction;
using rc::sched::PolicyConfig;
using rc::sched::PolicyKind;
using rc::sched::SimConfig;
using rc::sched::SimResult;
using rc::sched::VmRequest;

SimConfig SchedStudy::DefaultSimConfig() {
  SimConfig config;
  config.cluster = rc::sched::ClusterConfig{880, 16, 112.0};  // paper Section 6.2
  config.horizon = 30 * kDay;
  return config;
}

SchedStudy::SchedStudy(int64_t monthly_vms, bool train_client, uint64_t seed)
    : trace_(rc::trace::WorkloadModel(
                 SchedulerWorkloadConfig(2 * monthly_vms, 60 * kDay, seed))
                 .Generate()) {
  // Month-2 arrivals, rebased so the simulator clock starts at 0.
  for (VmRequest req : rc::sched::RequestsFromTrace(trace_, 60 * kDay)) {
    if (req.arrival < 30 * kDay) continue;
    req.arrival -= 30 * kDay;
    req.departure -= 30 * kDay;
    requests_.push_back(req);
  }

  if (!train_client) return;

  // Train only the P95 model (the one Algorithm 1 consumes), on month 1.
  std::cout << "[sched] training VM_P95UTIL on month 1 ("
            << trace_.VmsCreatedIn(0, 30 * kDay).size() << " VMs)...\n";
  auto examples =
      OfflinePipeline::BuildExamples(trace_, Metric::kP95Cpu, 0, 30 * kDay, false);
  // Subsample for training speed; the model quality plateau is well below
  // this count.
  constexpr size_t kMaxTrainRows = 100'000;
  if (examples.size() > kMaxTrainRows) {
    Rng rng(seed + 1);
    rng.Shuffle(examples);
    examples.resize(kMaxTrainRows);
  }
  Featurizer featurizer(Metric::kP95Cpu, OfflinePipeline::EncodingFor(Metric::kP95Cpu));
  rc::ml::Dataset data = OfflinePipeline::ToDataset(examples, featurizer);
  rc::ml::RandomForestConfig rf;
  rf.num_trees = 32;
  rf.tree.max_depth = 13;
  rf.seed = seed + 2;
  rc::ml::RandomForest model = rc::ml::RandomForest::Fit(data, rf);

  ModelSpec spec;
  spec.name = MetricModelName(Metric::kP95Cpu);
  spec.metric = Metric::kP95Cpu;
  spec.encoding = OfflinePipeline::EncodingFor(Metric::kP95Cpu);
  spec.model_family = model.type_name();
  spec.num_features = static_cast<uint32_t>(featurizer.num_features());
  spec.version = 1;
  store_.Put(rc::core::SpecKey(spec.name), spec.Serialize());
  store_.Put(rc::core::ModelKey(spec.name), model.SerializeTagged());
  for (const auto& [sub_id, features] :
       OfflinePipeline::BuildFeatureSnapshot(trace_, 30 * kDay, false)) {
    store_.Put(rc::core::FeatureKey(sub_id), features.Serialize());
  }
  client_ = std::make_unique<rc::core::Client>(&store_, ClientConfig{});
  client_->Initialize();
}

std::vector<VmRequest> SchedStudy::ReducedLoad(double keep_fraction) const {
  std::vector<VmRequest> reduced;
  Rng rng(777);
  for (const VmRequest& req : requests_) {
    if (rng.Bernoulli(keep_fraction)) reduced.push_back(req);
  }
  return reduced;
}

SimResult SchedStudy::RunOnRequests(std::vector<VmRequest> reqs, PolicyKind kind,
                                    rc::sched::OversubParams oversub,
                                    const SimConfig& sim_config, int bucket_shift) {
  rc::sched::Cluster cluster(sim_config.cluster);
  PolicyConfig policy_config;
  policy_config.kind = kind;
  policy_config.oversub = oversub;
  policy_config.bucket_shift = bucket_shift;

  int64_t asked = 0, served = 0;
  rc::sched::UtilPredictor predictor;
  rc::sched::BatchUtilPredictor batch_predictor;
  if (kind == PolicyKind::kRcInformedSoft || kind == PolicyKind::kRcInformedHard) {
    if (client_ != nullptr) {
      static const rc::trace::VmSizeCatalog catalog;
      predictor = [&](const VmRequest& vm) {
        ++asked;
        Prediction p =
            client_->PredictSingle("VM_P95UTIL", InputsFromVm(*vm.source, catalog));
        if (p.valid && p.score >= 0.6) ++served;
        return p;
      };
      // The simulator hands PrefetchUtil whole arrival waves; one
      // predict_many call featurizes and scores every cache miss in a single
      // engine walk.
      batch_predictor = [&](std::span<const VmRequest> vms) {
        std::vector<rc::core::ClientInputs> inputs;
        inputs.reserve(vms.size());
        for (const VmRequest& vm : vms) inputs.push_back(InputsFromVm(*vm.source, catalog));
        std::vector<Prediction> out = client_->PredictMany("VM_P95UTIL", inputs);
        asked += static_cast<int64_t>(out.size());
        for (const Prediction& p : out) {
          if (p.valid && p.score >= 0.6) ++served;
        }
        return out;
      };
    } else {
      // No trained client (sensitivity sweeps): perfect predictions, so the
      // RC-informed chains can still be exercised (paper: RC-soft-right
      // behaves like RC-informed-soft).
      predictor = [](const VmRequest& vm) {
        return Prediction::Of(
            UtilizationBucket(vm.source != nullptr ? vm.source->p95_max_cpu : 1.0), 1.0);
      };
    }
  }
  rc::sched::SchedulingPolicy policy(policy_config, &cluster, std::move(predictor),
                                     std::move(batch_predictor));
  rc::sched::ClusterSimulator simulator(sim_config);
  SimResult result = simulator.Run(std::move(reqs), policy);
  if (asked > 0) {
    last_served_fraction_ = static_cast<double>(served) / static_cast<double>(asked);
  }
  return result;
}

SimResult SchedStudy::Run(PolicyKind kind, rc::sched::OversubParams oversub,
                          const SimConfig* override_config, int bucket_shift) {
  SimConfig sim_config = override_config != nullptr ? *override_config : DefaultSimConfig();
  return RunOnRequests(requests_, kind, oversub, sim_config, bucket_shift);
}

std::vector<std::string> SimHeader() {
  return {"Policy",       "VMs",        "failures", "fail %", "readings>100%",
          "occupied rdgs", "mean util", "P99 util", "oversub placements"};
}

void PrintSimRow(rc::TablePrinter& table, const std::string& name,
                 const SimResult& result) {
  table.AddRow({name, std::to_string(result.total_vms), std::to_string(result.failures),
                rc::TablePrinter::Pct(result.failure_rate(), 3),
                std::to_string(result.overload_readings),
                std::to_string(result.occupied_readings),
                rc::TablePrinter::Pct(result.mean_occupied_utilization, 1),
                rc::TablePrinter::Pct(result.p99_utilization, 1),
                std::to_string(result.oversub_placements)});
}

}  // namespace rc::bench
