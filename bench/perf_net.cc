// perf_net: closed-loop multi-process load generator for the rc::net
// prediction service. The parent trains the six models once, forks a server
// process (epoll workers on an ephemeral loopback port), then forks L
// load-generator processes, each running T closed-loop threads over a
// connection-pooled rc::net::Client. Key popularity is Zipf-distributed over
// a fixed working set of real trace inputs, so the server-side result cache
// sees the skewed reuse the paper's Resource Central clients produce.
//
// Processes (not threads) on the load side keep client-side contention out
// of the measurement and exercise the server with independent pools, the
// way distinct fabric controllers would. Results are aggregated over pipes
// and written to BENCH_net.json.
//
// Acceptance (ISSUE): >= 50k predictions/s sustained on loopback with
// PredictSingle P99 within the Fig. 10 in-process budget (258 us) + 1 ms.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/export.h"
#include "src/store/kv_store.h"

namespace {

constexpr const char* kBenchJson = "BENCH_net.json";
// Fig. 10 paper anchor: in-process P99s top out at 258 us; the network hop
// is allowed one extra millisecond.
constexpr double kP99BudgetUs = 258.0 + 1000.0;

struct Options {
  int64_t vms = 30'000;
  int procs = 3;          // load-generator processes
  int threads = 4;        // closed-loop threads per process
  int workers = 4;        // server epoll workers
  int duration_s = 5;
  size_t keys = 4096;     // working-set size (distinct inputs)
  double zipf_s = 0.99;   // Zipf exponent for key popularity
  double many_ratio = 0.25;  // fraction of requests that are PredictMany
  size_t batch = 16;      // PredictMany batch size
};

// Zipf(s) over [0, n) via the precomputed CDF: fine for working sets up to
// a few hundred thousand keys, and exact (no rejection loop).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  template <typename Rng>
  size_t operator()(Rng& rng) {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Per-process result blob, written over a pipe to the parent. Latencies are
// microseconds; singles and batches are kept separate because a batch
// round-trip is not comparable to a single-prediction one.
struct LoadResult {
  uint64_t single_requests = 0;
  uint64_t many_requests = 0;
  uint64_t predictions = 0;
  uint64_t errors = 0;
  double elapsed_s = 0.0;
  std::vector<double> single_us;
  std::vector<double> many_us;
};

void WriteAll(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t w = write(fd, p, n);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) _exit(3);
    p += w;
    n -= static_cast<size_t>(w);
  }
}

bool ReadAll(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = read(fd, p, n);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

void SendResult(int fd, const LoadResult& r) {
  uint64_t header[4] = {r.single_requests, r.many_requests, r.predictions, r.errors};
  WriteAll(fd, header, sizeof(header));
  WriteAll(fd, &r.elapsed_s, sizeof(r.elapsed_s));
  for (const std::vector<double>* v : {&r.single_us, &r.many_us}) {
    uint64_t n = v->size();
    WriteAll(fd, &n, sizeof(n));
    WriteAll(fd, v->data(), n * sizeof(double));
  }
}

bool RecvResult(int fd, LoadResult* r) {
  uint64_t header[4];
  if (!ReadAll(fd, header, sizeof(header))) return false;
  r->single_requests = header[0];
  r->many_requests = header[1];
  r->predictions = header[2];
  r->errors = header[3];
  if (!ReadAll(fd, &r->elapsed_s, sizeof(r->elapsed_s))) return false;
  for (std::vector<double>* v : {&r->single_us, &r->many_us}) {
    uint64_t n = 0;
    if (!ReadAll(fd, &n, sizeof(n)) || n > (64u << 20)) return false;
    v->resize(n);
    if (!ReadAll(fd, v->data(), n * sizeof(double))) return false;
  }
  return true;
}

// Server child: owns the store, the in-process prediction client, and the
// epoll server. Reports the ephemeral port over `port_fd`, then idles until
// SIGTERM.
[[noreturn]] void RunServer(const rc::core::TrainedModels& trained, const Options& opt,
                            int port_fd) {
  rc::store::KvStore store;
  rc::core::OfflinePipeline::Publish(trained, store);
  rc::obs::MetricsRegistry registry;
  rc::core::ClientConfig client_config;
  client_config.metrics = &registry;
  rc::core::Client client(&store, client_config);
  if (!client.Initialize()) _exit(4);

  rc::net::ServerConfig server_config;
  server_config.port = 0;
  server_config.num_workers = opt.workers;
  server_config.metrics = &registry;
  rc::net::Server server(&client, server_config);
  if (!server.Start()) _exit(5);

  uint16_t port = server.port();
  WriteAll(port_fd, &port, sizeof(port));
  close(port_fd);

  static volatile std::sig_atomic_t stop = 0;
  std::signal(SIGTERM, [](int) { stop = 1; });
  while (stop == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  _exit(0);
}

// Load child: T closed-loop threads sharing one pooled client.
[[noreturn]] void RunLoad(uint16_t port, const Options& opt,
                          const std::vector<rc::core::ClientInputs>& keys, int proc_index,
                          int result_fd) {
  rc::net::ClientConfig config;
  config.port = port;
  config.pool_size = opt.threads;
  config.default_deadline_us = 2'000'000;
  rc::net::Client client(config);

  std::vector<LoadResult> per_thread(static_cast<size_t>(opt.threads));
  std::vector<std::thread> threads;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(opt.duration_s);
  for (int t = 0; t < opt.threads; ++t) {
    threads.emplace_back([&, t] {
      LoadResult& out = per_thread[static_cast<size_t>(t)];
      std::mt19937_64 rng(0x9E3779B9u + static_cast<uint64_t>(proc_index) * 1024 +
                          static_cast<uint64_t>(t));
      ZipfSampler zipf(keys.size(), opt.zipf_s);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      std::vector<rc::core::ClientInputs> batch(opt.batch);
      std::vector<rc::core::Prediction> many;
      const char* models[2] = {"VM_AVGUTIL", "VM_P95UTIL"};
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string model = models[rng() % 2];
        const auto t0 = std::chrono::steady_clock::now();
        rc::net::Status status;
        bool is_many = coin(rng) < opt.many_ratio;
        if (is_many) {
          for (auto& b : batch) b = keys[zipf(rng)];
          status = client.PredictMany(model, batch, &many);
        } else {
          rc::core::Prediction p;
          status = client.PredictSingle(model, keys[zipf(rng)], &p);
        }
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (status != rc::net::Status::kOk) {
          ++out.errors;
          continue;
        }
        if (is_many) {
          ++out.many_requests;
          out.predictions += batch.size();
          out.many_us.push_back(us);
        } else {
          ++out.single_requests;
          out.predictions += 1;
          out.single_us.push_back(us);
        }
      }
      out.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                          .count();
    });
  }
  for (auto& t : threads) t.join();

  LoadResult total;
  for (auto& r : per_thread) {
    total.single_requests += r.single_requests;
    total.many_requests += r.many_requests;
    total.predictions += r.predictions;
    total.errors += r.errors;
    total.elapsed_s = std::max(total.elapsed_s, r.elapsed_s);
    total.single_us.insert(total.single_us.end(), r.single_us.begin(), r.single_us.end());
    total.many_us.insert(total.many_us.end(), r.many_us.begin(), r.many_us.end());
  }
  SendResult(result_fd, total);
  close(result_fd);
  _exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[i] << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--vms") == 0) opt.vms = std::atoll(next());
    else if (std::strcmp(argv[i], "--procs") == 0) opt.procs = std::atoi(next());
    else if (std::strcmp(argv[i], "--threads") == 0) opt.threads = std::atoi(next());
    else if (std::strcmp(argv[i], "--workers") == 0) opt.workers = std::atoi(next());
    else if (std::strcmp(argv[i], "--duration-s") == 0) opt.duration_s = std::atoi(next());
    else if (std::strcmp(argv[i], "--keys") == 0) opt.keys = static_cast<size_t>(std::atoll(next()));
    else if (std::strcmp(argv[i], "--zipf") == 0) opt.zipf_s = std::atof(next());
    else if (std::strcmp(argv[i], "--many-ratio") == 0) opt.many_ratio = std::atof(next());
    else if (std::strcmp(argv[i], "--batch") == 0) opt.batch = static_cast<size_t>(std::atoll(next()));
    else {
      std::cerr << "usage: perf_net [--vms N] [--procs L] [--threads T] [--workers W]\n"
                   "                [--duration-s S] [--keys K] [--zipf S] [--many-ratio R]\n"
                   "                [--batch B]\n";
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  rc::bench::Banner("rc::net service: closed-loop loopback load",
                    "Fig. 10 budget + 1 ms over TCP");

  // Train once, single-threaded, BEFORE any fork: children inherit the
  // trained models and the working set by copy-on-write.
  std::cout << "training on " << opt.vms << " VMs...\n";
  rc::trace::Trace trace = rc::bench::CharacterizationTrace(opt.vms, /*seed=*/1234);
  rc::core::OfflinePipeline pipeline(rc::bench::DefaultPipelineConfig());
  rc::core::TrainedModels trained = pipeline.Run(trace);

  static const rc::trace::VmSizeCatalog catalog;
  std::vector<rc::core::ClientInputs> keys;
  keys.reserve(opt.keys);
  for (const auto& vm : trace.vms()) {
    if (keys.size() >= opt.keys) break;
    if (!trained.feature_data.contains(vm.subscription_id)) continue;
    keys.push_back(rc::core::InputsFromVm(vm, catalog));
  }
  if (keys.empty()) {
    std::cerr << "no usable inputs in the trace\n";
    return 1;
  }

  int port_pipe[2];
  if (pipe(port_pipe) != 0) return 1;
  pid_t server_pid = fork();
  if (server_pid == 0) {
    close(port_pipe[0]);
    RunServer(trained, opt, port_pipe[1]);
  }
  close(port_pipe[1]);
  uint16_t port = 0;
  if (!ReadAll(port_pipe[0], &port, sizeof(port))) {
    std::cerr << "server child failed to start\n";
    return 1;
  }
  close(port_pipe[0]);
  std::cout << "server up on 127.0.0.1:" << port << " (" << opt.workers << " workers); driving "
            << opt.procs << " procs x " << opt.threads << " threads, zipf(" << opt.zipf_s
            << ") over " << keys.size() << " keys, " << opt.duration_s << "s...\n";

  std::vector<pid_t> load_pids;
  std::vector<int> result_fds;
  for (int p = 0; p < opt.procs; ++p) {
    int result_pipe[2];
    if (pipe(result_pipe) != 0) return 1;
    pid_t pid = fork();
    if (pid == 0) {
      close(result_pipe[0]);
      for (int fd : result_fds) close(fd);
      RunLoad(port, opt, keys, p, result_pipe[1]);
    }
    close(result_pipe[1]);
    load_pids.push_back(pid);
    result_fds.push_back(result_pipe[0]);
  }

  LoadResult total;
  int failures = 0;
  for (size_t p = 0; p < result_fds.size(); ++p) {
    LoadResult r;
    if (!RecvResult(result_fds[p], &r)) {
      ++failures;
      close(result_fds[p]);
      continue;
    }
    close(result_fds[p]);
    total.single_requests += r.single_requests;
    total.many_requests += r.many_requests;
    total.predictions += r.predictions;
    total.errors += r.errors;
    total.elapsed_s = std::max(total.elapsed_s, r.elapsed_s);
    total.single_us.insert(total.single_us.end(), r.single_us.begin(), r.single_us.end());
    total.many_us.insert(total.many_us.end(), r.many_us.begin(), r.many_us.end());
  }
  for (pid_t pid : load_pids) waitpid(pid, nullptr, 0);
  kill(server_pid, SIGTERM);
  waitpid(server_pid, nullptr, 0);
  if (failures > 0 || total.elapsed_s <= 0.0) {
    std::cerr << failures << " load processes failed\n";
    return 1;
  }

  std::sort(total.single_us.begin(), total.single_us.end());
  std::sort(total.many_us.begin(), total.many_us.end());
  const double requests_per_s =
      static_cast<double>(total.single_requests + total.many_requests) / total.elapsed_s;
  const double predictions_per_s = static_cast<double>(total.predictions) / total.elapsed_s;
  const double p50_single = rc::PercentileSorted(total.single_us, 50.0);
  const double p99_single = rc::PercentileSorted(total.single_us, 99.0);
  const double p99_many = total.many_us.empty() ? 0.0 : rc::PercentileSorted(total.many_us, 99.0);

  rc::TablePrinter table({"metric", "value"});
  table.AddRow({"requests/s", rc::TablePrinter::Fmt(requests_per_s, 0)});
  table.AddRow({"predictions/s", rc::TablePrinter::Fmt(predictions_per_s, 0)});
  table.AddRow({"single p50", rc::TablePrinter::Fmt(p50_single, 1) + " us"});
  table.AddRow({"single p99", rc::TablePrinter::Fmt(p99_single, 1) + " us"});
  table.AddRow({"many(" + std::to_string(opt.batch) + ") p99",
                rc::TablePrinter::Fmt(p99_many, 1) + " us"});
  table.AddRow({"errors", std::to_string(total.errors)});
  table.Print(std::cout);

  const bool throughput_ok = predictions_per_s >= 50'000.0;
  const bool latency_ok = p99_single <= kP99BudgetUs;
  std::cout << "\nacceptance: >= 50k predictions/s -> " << (throughput_ok ? "PASS" : "FAIL")
            << "; single P99 <= " << rc::TablePrinter::Fmt(kP99BudgetUs, 0)
            << " us (Fig. 10 budget + 1 ms) -> " << (latency_ok ? "PASS" : "FAIL") << "\n";

  rc::obs::MetricsRegistry registry;
  auto gauge = [&](const char* name, const char* help, double v) {
    registry.GetGauge(name, {}, help).Set(v);
  };
  gauge("rc_bench_net_predictions_per_s", "loopback predictions per second", predictions_per_s);
  gauge("rc_bench_net_requests_per_s", "loopback requests per second", requests_per_s);
  gauge("rc_bench_net_single_p50_us", "PredictSingle round-trip p50", p50_single);
  gauge("rc_bench_net_single_p99_us", "PredictSingle round-trip p99", p99_single);
  gauge("rc_bench_net_many_p99_us", "PredictMany round-trip p99", p99_many);
  gauge("rc_bench_net_errors", "failed requests across the run",
        static_cast<double>(total.errors));
  gauge("rc_bench_net_load_procs", "load generator processes", opt.procs);
  gauge("rc_bench_net_load_threads", "threads per load process", opt.threads);
  rc::obs::MergeJsonMetricsFile(kBenchJson, registry);
  std::cout << "wrote " << kBenchJson << "\n";
  return (throughput_ok && latency_ok) ? 0 : 1;
}
