// perf_net: closed-loop multi-process load generator for the rc::net
// prediction service. The parent trains the six models once, forks a server
// process (epoll workers on an ephemeral loopback port), then forks L
// load-generator processes, each running T closed-loop threads over a
// connection-pooled rc::net::Client. Key popularity is Zipf-distributed over
// a fixed working set of real trace inputs, so the server-side result cache
// sees the skewed reuse the paper's Resource Central clients produce.
//
// Processes (not threads) on the load side keep client-side contention out
// of the measurement and exercise the server with independent pools, the
// way distinct fabric controllers would. Results are aggregated over pipes
// and written to BENCH_net.json.
//
// --combiner off|shared|worker selects the server's cross-request batching
// mode (DESIGN.md "Cross-request batching"); --compare runs the same load
// twice — combiner off, then the selected mode — against one trained model
// set and reports the throughput speedup. The combiner acceptance runs with
// --cache off --keys 1 --many-ratio 0: a single hot key, no result cache,
// all singles, so every request reaches the execution engine and coalescing
// is the only thing being measured.
//
// Acceptance (ISSUE): >= 50k predictions/s sustained on loopback with
// PredictSingle P99 within the Fig. 10 in-process budget (258 us) + 1 ms;
// in --compare mode additionally combiner-on >= 1.5x combiner-off
// predictions/s with the combiner-on P99 still inside that budget.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/net/admin_server.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/export.h"
#include "src/obs/trace_context.h"
#include "src/store/kv_store.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

namespace {

constexpr const char* kBenchJson = "BENCH_net.json";
// Fig. 10 paper anchor: in-process P99s top out at 258 us; the network hop
// is allowed one extra millisecond.
constexpr double kP99BudgetUs = 258.0 + 1000.0;
constexpr double kCombinerSpeedupFloor = 1.5;

struct Options {
  int64_t vms = 30'000;
  int procs = 3;          // load-generator processes
  int threads = 4;        // closed-loop threads per process
  int workers = 4;        // server epoll workers
  int duration_s = 5;
  size_t keys = 4096;     // working-set size (distinct inputs)
  double zipf_s = 0.99;   // Zipf exponent for key popularity
  double many_ratio = 0.25;  // fraction of requests that are PredictMany
  size_t batch = 16;      // PredictMany batch size
  int models = 2;         // distinct models driven by the load (1 or 2)
  rc::net::CombinerMode combiner = rc::net::CombinerMode::kOff;
  int64_t combiner_wait_us = 40;
  // Fast-path-when-idle serves a lone request immediately (best P50 when
  // arrivals rarely overlap). Off forces every request to park for the
  // window: on a single-CPU host the scheduler serializes workers, so this
  // is the only way coalescing opportunities accumulate (the acceptance
  // scenario runs with it off).
  bool combiner_fast_path = true;
  size_t combiner_max_batch = 64;  // flush-on-full threshold
  bool cache = true;      // server-side result cache (off isolates execution)
  bool compare = false;   // run combiner-off then --combiner mode, same load
  // ExecEngine walk serving the server's predictions (auto/scalar/avx2/
  // quantized); lets the net bench A/B the engine modes end-to-end.
  rc::ml::ExecEngine::Mode engine_mode = rc::ml::ExecEngine::Mode::kAuto;
  // Ensemble size overrides (0 = bench defaults). The combiner acceptance
  // uses large forests so execution dominates the request path — that is the
  // regime where coalescing duplicate work is supposed to pay.
  int trees = 0;
  int gbt_rounds = 0;
  // Arms the full observability surface under load: the server mounts the
  // admin endpoint, samples one request in 128 for /tracez, and the parent
  // scrapes /metrics + /tracez at ~1 Hz for the whole run. Lets
  // EXPERIMENTS.md quote the armed-vs-unarmed overhead from the same bench.
  bool admin_scrape = false;
};

// Zipf(s) over [0, n) via the precomputed CDF: fine for working sets up to
// a few hundred thousand keys, and exact (no rejection loop).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  template <typename Rng>
  size_t operator()(Rng& rng) {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Per-process result blob, written over a pipe to the parent. Latencies are
// microseconds; singles and batches are kept separate because a batch
// round-trip is not comparable to a single-prediction one.
struct LoadResult {
  uint64_t single_requests = 0;
  uint64_t many_requests = 0;
  uint64_t predictions = 0;
  uint64_t errors = 0;
  double elapsed_s = 0.0;
  std::vector<double> single_us;
  std::vector<double> many_us;
};

void WriteAll(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t w = write(fd, p, n);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) _exit(3);
    p += w;
    n -= static_cast<size_t>(w);
  }
}

bool ReadAll(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = read(fd, p, n);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

void SendResult(int fd, const LoadResult& r) {
  uint64_t header[4] = {r.single_requests, r.many_requests, r.predictions, r.errors};
  WriteAll(fd, header, sizeof(header));
  WriteAll(fd, &r.elapsed_s, sizeof(r.elapsed_s));
  for (const std::vector<double>* v : {&r.single_us, &r.many_us}) {
    uint64_t n = v->size();
    WriteAll(fd, &n, sizeof(n));
    WriteAll(fd, v->data(), n * sizeof(double));
  }
}

bool RecvResult(int fd, LoadResult* r) {
  uint64_t header[4];
  if (!ReadAll(fd, header, sizeof(header))) return false;
  r->single_requests = header[0];
  r->many_requests = header[1];
  r->predictions = header[2];
  r->errors = header[3];
  if (!ReadAll(fd, &r->elapsed_s, sizeof(r->elapsed_s))) return false;
  for (std::vector<double>* v : {&r->single_us, &r->many_us}) {
    uint64_t n = 0;
    if (!ReadAll(fd, &n, sizeof(n)) || n > (64u << 20)) return false;
    v->resize(n);
    if (!ReadAll(fd, v->data(), n * sizeof(double))) return false;
  }
  return true;
}

// Server child: owns the store, the in-process prediction client, and the
// epoll server. Reports the ephemeral port over `port_fd`, then idles until
// SIGTERM.
[[noreturn]] void RunServer(const rc::core::TrainedModels& trained, const Options& opt,
                            rc::net::CombinerMode mode, int port_fd) {
  rc::store::KvStore store;
  rc::core::OfflinePipeline::Publish(trained, store);
  rc::obs::MetricsRegistry registry;
  rc::core::ClientConfig client_config;
  client_config.metrics = &registry;
  client_config.engine_mode = opt.engine_mode;
  if (!opt.cache) client_config.result_cache_capacity = 0;
  rc::core::Client client(&store, client_config);
  if (!client.Initialize()) _exit(4);

  rc::net::ServerConfig server_config;
  server_config.port = 0;
  server_config.num_workers = opt.workers;
  server_config.metrics = &registry;
  server_config.combiner_mode = mode;
  server_config.combiner_max_wait_us = opt.combiner_wait_us;
  server_config.combiner_fast_path_when_idle = opt.combiner_fast_path;
  server_config.combiner_max_batch = opt.combiner_max_batch;
  rc::net::Server server(&client, server_config);
  if (!server.Start()) _exit(5);

  std::unique_ptr<rc::net::AdminServer> admin;
  if (opt.admin_scrape) {
    rc::obs::Tracer::Global().SetSampleEvery(128);
    admin = std::make_unique<rc::net::AdminServer>(rc::net::AdminServerConfig{});
    admin->Handle("/metrics", [&registry] {
      return rc::net::AdminServer::Response{200, "text/plain; version=0.0.4; charset=utf-8",
                                            rc::obs::PrometheusText(registry)};
    });
    admin->Handle("/tracez", [] {
      return rc::net::AdminServer::Response{200, "application/json",
                                            rc::obs::TraceStore::Global().TracezJson()};
    });
    if (!admin->Start()) _exit(6);
  }

  uint16_t ports[2] = {server.port(), admin ? admin->port() : uint16_t{0}};
  WriteAll(port_fd, ports, sizeof(ports));
  close(port_fd);

  static volatile std::sig_atomic_t stop = 0;
  std::signal(SIGTERM, [](int) { stop = 1; });
  while (stop == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  if (mode != rc::net::CombinerMode::kOff) {
    // Surface the coalescing instruments so a run's batch-size distribution
    // and flush reasons are inspectable without re-plumbing the registry.
    std::string text = rc::obs::PrometheusText(registry);
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("rc_combiner_") != std::string::npos) std::cerr << line << "\n";
    }
  }
  _exit(0);
}

// Load child: T closed-loop threads sharing one pooled client.
[[noreturn]] void RunLoad(uint16_t port, const Options& opt,
                          const std::vector<rc::core::ClientInputs>& keys, int proc_index,
                          int result_fd) {
  rc::net::ClientConfig config;
  config.port = port;
  config.pool_size = opt.threads;
  config.default_deadline_us = 2'000'000;
  rc::net::Client client(config);

  std::vector<LoadResult> per_thread(static_cast<size_t>(opt.threads));
  std::vector<std::thread> threads;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(opt.duration_s);
  for (int t = 0; t < opt.threads; ++t) {
    threads.emplace_back([&, t] {
      LoadResult& out = per_thread[static_cast<size_t>(t)];
      std::mt19937_64 rng(0x9E3779B9u + static_cast<uint64_t>(proc_index) * 1024 +
                          static_cast<uint64_t>(t));
      ZipfSampler zipf(keys.size(), opt.zipf_s);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      std::vector<rc::core::ClientInputs> batch(opt.batch);
      std::vector<rc::core::Prediction> many;
      const char* models[2] = {"VM_AVGUTIL", "VM_P95UTIL"};
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() < deadline) {
        // --models 1 drives every request at one model (the combiner queues
        // per model, so this is the maximally-coalescible single-key load);
        // --models 2 splits the stream across two models.
        const std::string model = models[opt.models == 1 ? 1 : rng() % 2];
        const auto t0 = std::chrono::steady_clock::now();
        rc::net::Status status;
        bool is_many = coin(rng) < opt.many_ratio;
        if (is_many) {
          for (auto& b : batch) b = keys[zipf(rng)];
          status = client.PredictMany(model, batch, &many);
        } else {
          rc::core::Prediction p;
          status = client.PredictSingle(model, keys[zipf(rng)], &p);
        }
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (status != rc::net::Status::kOk) {
          ++out.errors;
          continue;
        }
        if (is_many) {
          ++out.many_requests;
          out.predictions += batch.size();
          out.many_us.push_back(us);
        } else {
          ++out.single_requests;
          out.predictions += 1;
          out.single_us.push_back(us);
        }
      }
      out.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                          .count();
    });
  }
  for (auto& t : threads) t.join();

  LoadResult total;
  for (auto& r : per_thread) {
    total.single_requests += r.single_requests;
    total.many_requests += r.many_requests;
    total.predictions += r.predictions;
    total.errors += r.errors;
    total.elapsed_s = std::max(total.elapsed_s, r.elapsed_s);
    total.single_us.insert(total.single_us.end(), r.single_us.begin(), r.single_us.end());
    total.many_us.insert(total.many_us.end(), r.many_us.begin(), r.many_us.end());
  }
  SendResult(result_fd, total);
  close(result_fd);
  _exit(0);
}

// One blocking HTTP/1.0 GET against the server child's admin endpoint.
// Returns the bytes read (0 on any failure) — the scraper only needs to
// prove the endpoint answered under load, not parse the body.
size_t ScrapeOnce(uint16_t admin_port, const char* path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(admin_port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return 0;
  }
  std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  if (write(fd, request.data(), request.size()) != static_cast<ssize_t>(request.size())) {
    close(fd);
    return 0;
  }
  size_t total = 0;
  char buf[8192];
  for (;;) {
    ssize_t r = read(fd, buf, sizeof(buf));
    if (r <= 0) break;
    total += static_cast<size_t>(r);
  }
  close(fd);
  return total;
}

const char* ModeName(rc::net::CombinerMode mode) {
  switch (mode) {
    case rc::net::CombinerMode::kOff: return "off";
    case rc::net::CombinerMode::kShared: return "shared";
    case rc::net::CombinerMode::kPerWorker: return "worker";
  }
  return "?";
}

// One aggregated measurement: the end-of-run numbers from a full
// server + load-fleet lifecycle.
struct RunSummary {
  bool ok = false;
  double requests_per_s = 0.0;
  double predictions_per_s = 0.0;
  double p50_single = 0.0;
  double p99_single = 0.0;
  double p99_many = 0.0;
  uint64_t errors = 0;
};

// Forks the server (in `mode`) and the load fleet, drives the configured
// duration, and aggregates every process's results.
RunSummary RunOnce(const rc::core::TrainedModels& trained,
                   const std::vector<rc::core::ClientInputs>& keys, const Options& opt,
                   rc::net::CombinerMode mode) {
  RunSummary summary;
  int port_pipe[2];
  if (pipe(port_pipe) != 0) return summary;
  pid_t server_pid = fork();
  if (server_pid == 0) {
    close(port_pipe[0]);
    RunServer(trained, opt, mode, port_pipe[1]);
  }
  close(port_pipe[1]);
  uint16_t ports[2] = {0, 0};
  if (!ReadAll(port_pipe[0], ports, sizeof(ports))) {
    std::cerr << "server child failed to start\n";
    close(port_pipe[0]);
    return summary;
  }
  close(port_pipe[0]);
  const uint16_t port = ports[0];
  const uint16_t admin_port = ports[1];
  std::cout << "server up on 127.0.0.1:" << port << " (" << opt.workers
            << " workers, combiner " << ModeName(mode) << ", cache "
            << (opt.cache ? "on" : "off") << "); driving " << opt.procs << " procs x "
            << opt.threads << " threads, zipf(" << opt.zipf_s << ") over " << keys.size()
            << " keys, " << opt.duration_s << "s...\n";

  // Armed observability: scrape the admin endpoint at ~1 Hz for the whole
  // run, alternating /metrics and /tracez, the way a Prometheus scraper and
  // an operator tab would during an incident.
  std::atomic<bool> scrape_stop{false};
  std::thread scraper;
  uint64_t scrapes = 0, scrape_failures = 0;
  if (admin_port != 0) {
    scraper = std::thread([&] {
      bool tracez = false;
      while (!scrape_stop.load(std::memory_order_acquire)) {
        size_t n = ScrapeOnce(admin_port, tracez ? "/tracez" : "/metrics");
        tracez = !tracez;
        ++scrapes;
        if (n == 0) ++scrape_failures;
        for (int i = 0; i < 10 && !scrape_stop.load(std::memory_order_acquire); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
  }

  std::vector<pid_t> load_pids;
  std::vector<int> result_fds;
  for (int p = 0; p < opt.procs; ++p) {
    int result_pipe[2];
    if (pipe(result_pipe) != 0) {
      if (scraper.joinable()) {
        scrape_stop.store(true, std::memory_order_release);
        scraper.join();
      }
      return summary;
    }
    pid_t pid = fork();
    if (pid == 0) {
      close(result_pipe[0]);
      for (int fd : result_fds) close(fd);
      RunLoad(port, opt, keys, p, result_pipe[1]);
    }
    close(result_pipe[1]);
    load_pids.push_back(pid);
    result_fds.push_back(result_pipe[0]);
  }

  LoadResult total;
  int failures = 0;
  for (size_t p = 0; p < result_fds.size(); ++p) {
    LoadResult r;
    if (!RecvResult(result_fds[p], &r)) {
      ++failures;
      close(result_fds[p]);
      continue;
    }
    close(result_fds[p]);
    total.single_requests += r.single_requests;
    total.many_requests += r.many_requests;
    total.predictions += r.predictions;
    total.errors += r.errors;
    total.elapsed_s = std::max(total.elapsed_s, r.elapsed_s);
    total.single_us.insert(total.single_us.end(), r.single_us.begin(), r.single_us.end());
    total.many_us.insert(total.many_us.end(), r.many_us.begin(), r.many_us.end());
  }
  for (pid_t pid : load_pids) waitpid(pid, nullptr, 0);
  if (scraper.joinable()) {
    scrape_stop.store(true, std::memory_order_release);
    scraper.join();
    std::cout << "admin scraper: " << scrapes << " scrapes, " << scrape_failures
              << " failures\n";
    if (scrape_failures > 0) {
      std::cerr << "admin endpoint failed under load\n";
      return summary;  // summary.ok stays false: armed run must stay scrapable
    }
  }
  kill(server_pid, SIGTERM);
  waitpid(server_pid, nullptr, 0);
  if (failures > 0 || total.elapsed_s <= 0.0) {
    std::cerr << failures << " load processes failed\n";
    return summary;
  }

  std::sort(total.single_us.begin(), total.single_us.end());
  std::sort(total.many_us.begin(), total.many_us.end());
  summary.ok = true;
  summary.requests_per_s =
      static_cast<double>(total.single_requests + total.many_requests) / total.elapsed_s;
  summary.predictions_per_s = static_cast<double>(total.predictions) / total.elapsed_s;
  summary.p50_single = rc::PercentileSorted(total.single_us, 50.0);
  summary.p99_single = rc::PercentileSorted(total.single_us, 99.0);
  summary.p99_many = total.many_us.empty() ? 0.0 : rc::PercentileSorted(total.many_us, 99.0);
  summary.errors = total.errors;
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[i] << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--vms") == 0) opt.vms = std::atoll(next());
    else if (std::strcmp(argv[i], "--procs") == 0) opt.procs = std::atoi(next());
    else if (std::strcmp(argv[i], "--threads") == 0) opt.threads = std::atoi(next());
    else if (std::strcmp(argv[i], "--workers") == 0) opt.workers = std::atoi(next());
    else if (std::strcmp(argv[i], "--duration-s") == 0) opt.duration_s = std::atoi(next());
    else if (std::strcmp(argv[i], "--keys") == 0) opt.keys = static_cast<size_t>(std::atoll(next()));
    else if (std::strcmp(argv[i], "--zipf") == 0) opt.zipf_s = std::atof(next());
    else if (std::strcmp(argv[i], "--many-ratio") == 0) opt.many_ratio = std::atof(next());
    else if (std::strcmp(argv[i], "--batch") == 0) opt.batch = static_cast<size_t>(std::atoll(next()));
    else if (std::strcmp(argv[i], "--models") == 0) opt.models = std::atoi(next());
    else if (std::strcmp(argv[i], "--combiner") == 0) {
      std::string mode = next();
      if (mode == "off") opt.combiner = rc::net::CombinerMode::kOff;
      else if (mode == "shared") opt.combiner = rc::net::CombinerMode::kShared;
      else if (mode == "worker") opt.combiner = rc::net::CombinerMode::kPerWorker;
      else {
        std::cerr << "--combiner must be off, shared, or worker\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--combiner-wait-us") == 0) {
      opt.combiner_wait_us = std::atoll(next());
    } else if (std::strcmp(argv[i], "--combiner-max-batch") == 0) {
      opt.combiner_max_batch = static_cast<size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--combiner-fast-path") == 0) {
      std::string v = next();
      if (v == "on") opt.combiner_fast_path = true;
      else if (v == "off") opt.combiner_fast_path = false;
      else {
        std::cerr << "--combiner-fast-path must be on or off\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      std::string v = next();
      if (v == "on") opt.cache = true;
      else if (v == "off") opt.cache = false;
      else {
        std::cerr << "--cache must be on or off\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--engine-mode") == 0) {
      auto parsed = rc::ml::ExecEngine::ParseMode(next());
      if (!parsed) {
        std::cerr << "--engine-mode must be auto, scalar, avx2, or quantized\n";
        return 2;
      }
      opt.engine_mode = *parsed;
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      opt.compare = true;
    } else if (std::strcmp(argv[i], "--admin-scrape") == 0) {
      opt.admin_scrape = true;
    } else if (std::strcmp(argv[i], "--trees") == 0) {
      opt.trees = std::atoi(next());
    } else if (std::strcmp(argv[i], "--gbt-rounds") == 0) {
      opt.gbt_rounds = std::atoi(next());
    } else {
      std::cerr << "usage: perf_net [--vms N] [--procs L] [--threads T] [--workers W]\n"
                   "                [--duration-s S] [--keys K] [--zipf S] [--many-ratio R]\n"
                   "                [--batch B] [--models 1|2] [--combiner off|shared|worker]\n"
                   "                [--combiner-wait-us U] [--cache on|off] [--compare]\n"
                   "                [--trees N] [--gbt-rounds N] [--admin-scrape]\n"
                   "                [--engine-mode auto|scalar|avx2|quantized]\n";
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  if (opt.compare && opt.combiner == rc::net::CombinerMode::kOff) {
    opt.combiner = rc::net::CombinerMode::kShared;  // compare needs an "on" arm
  }

  rc::bench::Banner("rc::net service: closed-loop loopback load",
                    "Fig. 10 budget + 1 ms over TCP");

  // Train once, single-threaded, BEFORE any fork: children inherit the
  // trained models and the working set by copy-on-write.
  std::cout << "training on " << opt.vms << " VMs...\n";
  rc::trace::Trace trace = rc::bench::CharacterizationTrace(opt.vms, /*seed=*/1234);
  rc::core::PipelineConfig pipeline_config = rc::bench::DefaultPipelineConfig();
  if (opt.trees > 0) pipeline_config.rf.num_trees = opt.trees;
  if (opt.gbt_rounds > 0) pipeline_config.gbt.num_rounds = opt.gbt_rounds;
  rc::core::OfflinePipeline pipeline(pipeline_config);
  rc::core::TrainedModels trained = pipeline.Run(trace);

  static const rc::trace::VmSizeCatalog catalog;
  std::vector<rc::core::ClientInputs> keys;
  keys.reserve(opt.keys);
  for (const auto& vm : trace.vms()) {
    if (keys.size() >= opt.keys) break;
    if (!trained.feature_data.contains(vm.subscription_id)) continue;
    keys.push_back(rc::core::InputsFromVm(vm, catalog));
  }
  if (keys.empty()) {
    std::cerr << "no usable inputs in the trace\n";
    return 1;
  }

  rc::obs::MetricsRegistry registry;
  auto gauge = [&](const std::string& name, const char* help, double v) {
    registry.GetGauge(name, {}, help).Set(v);
  };

  if (opt.compare) {
    RunSummary off = RunOnce(trained, keys, opt, rc::net::CombinerMode::kOff);
    if (!off.ok) return 1;
    RunSummary on = RunOnce(trained, keys, opt, opt.combiner);
    if (!on.ok) return 1;
    const double speedup =
        off.predictions_per_s > 0.0 ? on.predictions_per_s / off.predictions_per_s : 0.0;

    rc::TablePrinter table({"metric", "combiner off", ModeName(opt.combiner)});
    table.AddRow({"predictions/s", rc::TablePrinter::Fmt(off.predictions_per_s, 0),
                  rc::TablePrinter::Fmt(on.predictions_per_s, 0)});
    table.AddRow({"single p50", rc::TablePrinter::Fmt(off.p50_single, 1) + " us",
                  rc::TablePrinter::Fmt(on.p50_single, 1) + " us"});
    table.AddRow({"single p99", rc::TablePrinter::Fmt(off.p99_single, 1) + " us",
                  rc::TablePrinter::Fmt(on.p99_single, 1) + " us"});
    table.AddRow({"errors", std::to_string(off.errors), std::to_string(on.errors)});
    table.Print(std::cout);

    const bool speedup_ok = speedup >= kCombinerSpeedupFloor;
    const bool latency_ok = on.p99_single <= kP99BudgetUs;
    std::cout << "\nspeedup: " << rc::TablePrinter::Fmt(speedup, 2) << "x\n"
              << "acceptance: combiner >= " << rc::TablePrinter::Fmt(kCombinerSpeedupFloor, 1)
              << "x predictions/s -> " << (speedup_ok ? "PASS" : "FAIL")
              << "; combiner-on single P99 <= " << rc::TablePrinter::Fmt(kP99BudgetUs, 0)
              << " us -> " << (latency_ok ? "PASS" : "FAIL") << "\n";

    gauge("rc_bench_net_combiner_off_predictions_per_s",
          "combiner-off loopback predictions per second", off.predictions_per_s);
    gauge(std::string("rc_bench_net_combiner_") + ModeName(opt.combiner) + "_predictions_per_s",
          "combiner-on loopback predictions per second", on.predictions_per_s);
    gauge("rc_bench_net_combiner_off_single_p99_us", "combiner-off PredictSingle p99",
          off.p99_single);
    gauge(std::string("rc_bench_net_combiner_") + ModeName(opt.combiner) + "_single_p99_us",
          "combiner-on PredictSingle p99", on.p99_single);
    gauge("rc_bench_net_combiner_speedup", "combiner-on / combiner-off predictions per second",
          speedup);
    rc::obs::MergeJsonMetricsFile(kBenchJson, registry);
    std::cout << "wrote " << kBenchJson << "\n";
    return (speedup_ok && latency_ok) ? 0 : 1;
  }

  RunSummary r = RunOnce(trained, keys, opt, opt.combiner);
  if (!r.ok) return 1;

  rc::TablePrinter table({"metric", "value"});
  table.AddRow({"requests/s", rc::TablePrinter::Fmt(r.requests_per_s, 0)});
  table.AddRow({"predictions/s", rc::TablePrinter::Fmt(r.predictions_per_s, 0)});
  table.AddRow({"single p50", rc::TablePrinter::Fmt(r.p50_single, 1) + " us"});
  table.AddRow({"single p99", rc::TablePrinter::Fmt(r.p99_single, 1) + " us"});
  table.AddRow({"many(" + std::to_string(opt.batch) + ") p99",
                rc::TablePrinter::Fmt(r.p99_many, 1) + " us"});
  table.AddRow({"errors", std::to_string(r.errors)});
  table.Print(std::cout);

  const bool throughput_ok = r.predictions_per_s >= 50'000.0;
  const bool latency_ok = r.p99_single <= kP99BudgetUs;
  std::cout << "\nacceptance: >= 50k predictions/s -> " << (throughput_ok ? "PASS" : "FAIL")
            << "; single P99 <= " << rc::TablePrinter::Fmt(kP99BudgetUs, 0)
            << " us (Fig. 10 budget + 1 ms) -> " << (latency_ok ? "PASS" : "FAIL") << "\n";

  gauge("rc_bench_net_predictions_per_s", "loopback predictions per second", r.predictions_per_s);
  gauge("rc_bench_net_requests_per_s", "loopback requests per second", r.requests_per_s);
  gauge("rc_bench_net_single_p50_us", "PredictSingle round-trip p50", r.p50_single);
  gauge("rc_bench_net_single_p99_us", "PredictSingle round-trip p99", r.p99_single);
  gauge("rc_bench_net_many_p99_us", "PredictMany round-trip p99", r.p99_many);
  gauge("rc_bench_net_errors", "failed requests across the run",
        static_cast<double>(r.errors));
  gauge("rc_bench_net_load_procs", "load generator processes", opt.procs);
  gauge("rc_bench_net_load_threads", "threads per load process", opt.threads);
  if (opt.admin_scrape) {
    // Armed runs publish under a distinct name so BENCH_net.json can hold
    // both arms and EXPERIMENTS.md can quote the delta.
    gauge("rc_bench_net_armed_predictions_per_s",
          "predictions per second with admin endpoint scraped + 1/128 tracing",
          r.predictions_per_s);
    gauge("rc_bench_net_armed_single_p99_us",
          "PredictSingle p99 with admin endpoint scraped + 1/128 tracing",
          r.p99_single);
  }
  rc::obs::MergeJsonMetricsFile(kBenchJson, registry);
  std::cout << "wrote " << kBenchJson << "\n";
  return (throughput_ok && latency_ok) ? 0 : 1;
}
