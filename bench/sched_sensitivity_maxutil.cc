// Section 6.2 sensitivity to MAX_UTIL: 100% -> 90% -> 80% of capacity at
// MAX_OVERSUB=125%, plus the paper's observation that an 80% target works
// under 20% less load.
#include "bench/sched_common.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::bench;
using rc::sched::PolicyKind;

int main() {
  Banner("Section 6.2: sensitivity to MAX_UTIL", "Sec. 6.2, 'Sensitivity to target max server utilization'");
  SchedStudy study(368'000, /*train_client=*/false);
  std::cout << "[sched] " << study.requests().size() << " arrivals; policy RC-soft-right\n\n";

  // The hard variant is the right probe here: under a tight utilization
  // target the *soft* rule simply gets disregarded whenever no compliant
  // candidate remains (inverting the knob), whereas the hard rule converts
  // reduced capacity into scheduling failures — the effect the paper
  // reports. Predictions are oracle (RC-soft-right equivalent).
  TablePrinter table(SimHeader());
  for (double max_util : {1.0, 0.9, 0.8}) {
    sched::OversubParams params;
    params.max_util = max_util;
    sched::SimResult result = study.Run(PolicyKind::kRcInformedHard, params);
    PrintSimRow(table, "MAX_UTIL " + TablePrinter::Pct(max_util, 0), result);
  }
  // 20% less load at the 80% target.
  {
    sched::OversubParams params;
    params.max_util = 0.8;
    sched::SimResult result = study.RunOnRequests(study.ReducedLoad(0.8),
                                                  PolicyKind::kRcInformedHard, params,
                                                  SchedStudy::DefaultSimConfig());
    PrintSimRow(table, "MAX_UTIL 80% @ -20% load", result);
  }
  table.Print(std::cout);

  std::cout << "\npaper anchors: lowering the target utilization reduces effective\n"
            << "capacity and increases scheduling failures (0.27% at 80%, beyond the\n"
            << "0.1% acceptable rate); with 20% less load the 80% target causes none.\n"
            << "reproduction note: part of our failure count at tight targets is\n"
            << "structural — a whole-server VM whose P95 bucket books 100% of its\n"
            << "allocation can never satisfy a <100% target on any server, so load\n"
            << "reduction does not remove those failures (Algorithm 1's bucket-high\n"
            << "booking interacts with MAX_UTIL for the largest VM sizes)\n";
  return 0;
}
