// Figure 10 + Section 6.1 performance: latency of client-side model
// execution for each metric (median and P99), result-cache hit latency, and
// simulated store access latency. google-benchmark drives steady-state
// timings; a percentile pass reproduces the figure's median/P99 series.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/core/evaluation.h"

using namespace rc;
using namespace rc::core;

namespace {

struct Harness {
  trace::Trace trace;
  TrainedModels trained;
  rc::store::KvStore store;
  std::unique_ptr<Client> client;
  std::vector<ClientInputs> test_inputs;

  Harness() : trace(bench::CharacterizationTrace(30'000)) {
    core::PipelineConfig config = bench::DefaultPipelineConfig();
    OfflinePipeline pipeline(config);
    trained = pipeline.Run(trace);
    OfflinePipeline::Publish(trained, store);
    client = std::make_unique<Client>(&store, ClientConfig{});
    client->Initialize();
    static const trace::VmSizeCatalog catalog;
    for (const auto* vm : trace.VmsCreatedIn(60 * kDay, 90 * kDay)) {
      if (trained.feature_data.contains(vm->subscription_id)) {
        test_inputs.push_back(InputsFromVm(*vm, catalog));
      }
      if (test_inputs.size() >= 20'000) break;
    }
  }
};

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

// Model execution on a result-cache miss (the Figure 10 series). The result
// cache is flushed every iteration batch via distinct deploy_hour rotation.
void BM_ModelExecution(benchmark::State& state) {
  Harness& h = SharedHarness();
  Metric metric = static_cast<Metric>(state.range(0));
  std::string model = MetricModelName(metric);
  Featurizer featurizer(metric, OfflinePipeline::EncodingFor(metric));
  size_t i = 0;
  for (auto _ : state) {
    const ClientInputs& inputs = h.test_inputs[i++ % h.test_inputs.size()];
    const auto& features = h.trained.feature_data.at(inputs.subscription_id);
    auto row = featurizer.Encode(inputs, features);
    auto scored = h.trained.models.at(model)->PredictScored(row);
    benchmark::DoNotOptimize(scored);
  }
  state.SetLabel(MetricName(metric));
}
BENCHMARK(BM_ModelExecution)->DenseRange(0, kNumMetrics - 1)->Unit(benchmark::kMicrosecond);

// Result-cache hit (paper: P99 ~1.3us — a key hash plus a table lookup).
void BM_ResultCacheHit(benchmark::State& state) {
  Harness& h = SharedHarness();
  const ClientInputs& inputs = h.test_inputs.front();
  h.client->PredictSingle("VM_AVGUTIL", inputs);  // prime
  for (auto _ : state) {
    auto p = h.client->PredictSingle("VM_AVGUTIL", inputs);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ResultCacheHit)->Unit(benchmark::kMicrosecond);

// Store access with the paper-calibrated latency profile (median 2.9 ms /
// P99 5.6 ms for an ~850-byte record).
void BM_StoreAccess(benchmark::State& state) {
  rc::store::KvStore::Options options;
  options.simulate_latency = true;
  rc::store::KvStore slow_store(options);
  slow_store.Put("features/1", std::vector<uint8_t>(850, 7));
  for (auto _ : state) {
    auto blob = slow_store.Get("features/1");
    benchmark::DoNotOptimize(blob);
  }
}
BENCHMARK(BM_StoreAccess)->Unit(benchmark::kMillisecond);

void PrintPercentileTable() {
  Harness& h = SharedHarness();
  bench::Banner("Figure 10: model execution latency percentiles", "Fig. 10");
  TablePrinter table({"Metric", "median", "P99"});
  constexpr int kCalls = 4000;
  for (Metric metric : kAllMetrics) {
    std::string model = MetricModelName(metric);
    Featurizer featurizer(metric, OfflinePipeline::EncodingFor(metric));
    std::vector<double> micros;
    micros.reserve(kCalls);
    std::vector<double> row(featurizer.num_features());
    for (int i = 0; i < kCalls; ++i) {
      const ClientInputs& inputs = h.test_inputs[static_cast<size_t>(i) % h.test_inputs.size()];
      auto start = std::chrono::steady_clock::now();
      featurizer.EncodeTo(inputs, h.trained.feature_data.at(inputs.subscription_id), row);
      auto scored = h.trained.models.at(model)->PredictScored(row);
      benchmark::DoNotOptimize(scored);
      auto end = std::chrono::steady_clock::now();
      micros.push_back(std::chrono::duration<double, std::micro>(end - start).count());
    }
    std::sort(micros.begin(), micros.end());
    table.AddRow({MetricName(metric),
                  TablePrinter::Fmt(PercentileSorted(micros, 50.0), 1) + " us",
                  TablePrinter::Fmt(PercentileSorted(micros, 99.0), 1) + " us"});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchors: medians 95-147 us, P99s 139-258 us; cache hits ~1.3 us\n"
            << "P99; store accesses 2.9 ms median / 5.6 ms P99 (simulated to match)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  PrintPercentileTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
