// Figure 10 + Section 6.1 performance: latency of client-side model
// execution for each metric (median and P99), result-cache hit latency, and
// simulated store access latency. google-benchmark drives steady-state
// timings; a percentile pass reproduces the figure's median/P99 series.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/core/client.h"
#include "src/core/evaluation.h"
#include "src/obs/export.h"

using namespace rc;
using namespace rc::core;

namespace {

// Samples recorded here are merged into BENCH_client_latency.json at exit
// (merged, not overwritten, so perf_client_caches can add its own series).
constexpr const char* kBenchJson = "BENCH_client_latency.json";

rc::obs::MetricsRegistry& BenchRegistry() {
  static rc::obs::MetricsRegistry* registry = new rc::obs::MetricsRegistry();
  return *registry;
}

struct Harness {
  trace::Trace trace;
  TrainedModels trained;
  rc::store::KvStore store;
  std::unique_ptr<Client> client;
  std::vector<ClientInputs> test_inputs;

  Harness() : trace(bench::CharacterizationTrace(30'000)) {
    core::PipelineConfig config = bench::DefaultPipelineConfig();
    OfflinePipeline pipeline(config);
    trained = pipeline.Run(trace);
    OfflinePipeline::Publish(trained, store);
    client = std::make_unique<Client>(&store, ClientConfig{});
    client->Initialize();
    static const trace::VmSizeCatalog catalog;
    for (const auto* vm : trace.VmsCreatedIn(60 * kDay, 90 * kDay)) {
      if (trained.feature_data.contains(vm->subscription_id)) {
        test_inputs.push_back(InputsFromVm(*vm, catalog));
      }
      if (test_inputs.size() >= 20'000) break;
    }
  }
};

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

// Model execution on a result-cache miss (the Figure 10 series). The result
// cache is flushed every iteration batch via distinct deploy_hour rotation.
void BM_ModelExecution(benchmark::State& state) {
  Harness& h = SharedHarness();
  Metric metric = static_cast<Metric>(state.range(0));
  std::string model = MetricModelName(metric);
  Featurizer featurizer(metric, OfflinePipeline::EncodingFor(metric));
  const rc::ml::Classifier& classifier = *h.trained.models.at(model);
  std::vector<double> row(featurizer.num_features());
  std::vector<double> proba(static_cast<size_t>(classifier.num_classes()));
  size_t i = 0;
  for (auto _ : state) {
    const ClientInputs& inputs = h.test_inputs[i++ % h.test_inputs.size()];
    const auto& features = h.trained.feature_data.at(inputs.subscription_id);
    featurizer.EncodeTo(inputs, features, row);
    auto scored = classifier.PredictScored(row, proba);
    benchmark::DoNotOptimize(scored);
  }
  state.SetLabel(MetricName(metric));
}
BENCHMARK(BM_ModelExecution)->DenseRange(0, kNumMetrics - 1)->Unit(benchmark::kMicrosecond);

// Result-cache hit (paper: P99 ~1.3us — a key hash plus a table lookup).
void BM_ResultCacheHit(benchmark::State& state) {
  Harness& h = SharedHarness();
  const ClientInputs& inputs = h.test_inputs.front();
  h.client->PredictSingle("VM_AVGUTIL", inputs);  // prime
  for (auto _ : state) {
    auto p = h.client->PredictSingle("VM_AVGUTIL", inputs);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ResultCacheHit)->Unit(benchmark::kMicrosecond);

// Store access with the paper-calibrated latency profile (median 2.9 ms /
// P99 5.6 ms for an ~850-byte record).
void BM_StoreAccess(benchmark::State& state) {
  rc::store::KvStore::Options options;
  options.simulate_latency = true;
  rc::store::KvStore slow_store(options);
  slow_store.Put("features/1", std::vector<uint8_t>(850, 7));
  for (auto _ : state) {
    auto blob = slow_store.Get("features/1");
    benchmark::DoNotOptimize(blob);
  }
}
BENCHMARK(BM_StoreAccess)->Unit(benchmark::kMillisecond);

void PrintPercentileTable() {
  Harness& h = SharedHarness();
  bench::Banner("Figure 10: model execution latency percentiles", "Fig. 10");
  TablePrinter table({"Metric", "median", "P99"});
  constexpr int kCalls = 4000;
  for (Metric metric : kAllMetrics) {
    std::string model = MetricModelName(metric);
    Featurizer featurizer(metric, OfflinePipeline::EncodingFor(metric));
    rc::obs::Histogram& hist = BenchRegistry().GetHistogram(
        "rc_bench_model_execution_us", {}, {{"metric", MetricName(metric)}},
        "featurize + model execute latency (us)");
    std::vector<double> micros;
    micros.reserve(kCalls);
    const rc::ml::Classifier& classifier = *h.trained.models.at(model);
    std::vector<double> row(featurizer.num_features());
    std::vector<double> proba(static_cast<size_t>(classifier.num_classes()));
    for (int i = 0; i < kCalls; ++i) {
      const ClientInputs& inputs = h.test_inputs[static_cast<size_t>(i) % h.test_inputs.size()];
      auto start = std::chrono::steady_clock::now();
      featurizer.EncodeTo(inputs, h.trained.feature_data.at(inputs.subscription_id), row);
      auto scored = classifier.PredictScored(row, proba);
      benchmark::DoNotOptimize(scored);
      auto end = std::chrono::steady_clock::now();
      double us = std::chrono::duration<double, std::micro>(end - start).count();
      hist.Record(us);
      micros.push_back(us);
    }
    std::sort(micros.begin(), micros.end());
    table.AddRow({MetricName(metric),
                  TablePrinter::Fmt(PercentileSorted(micros, 50.0), 1) + " us",
                  TablePrinter::Fmt(PercentileSorted(micros, 99.0), 1) + " us"});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchors: medians 95-147 us, P99s 139-258 us; cache hits ~1.3 us\n"
            << "P99; store accesses 2.9 ms median / 5.6 ms P99 (simulated to match)\n\n";
}

// Result-cache hit latency through the full client (the ~1.3us path),
// recorded into the bench registry so the JSON export carries its p50/p99.
void RecordResultCacheHitLatency() {
  Harness& h = SharedHarness();
  rc::obs::Histogram& hist = BenchRegistry().GetHistogram(
      "rc_bench_result_cache_hit_us", {}, {}, "PredictSingle result-cache hit (us)");
  const ClientInputs& inputs = h.test_inputs.front();
  h.client->PredictSingle("VM_AVGUTIL", inputs);  // prime
  for (int i = 0; i < 4000; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto p = h.client->PredictSingle("VM_AVGUTIL", inputs);
    benchmark::DoNotOptimize(p);
    auto end = std::chrono::steady_clock::now();
    hist.Record(std::chrono::duration<double, std::micro>(end - start).count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintPercentileTable();
  RecordResultCacheHitLatency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Machine-readable latency summary: bench series plus the harness client's
  // own rc_client_* instruments (sampled predict latency, store reads).
  rc::obs::MergeJsonMetricsFile(kBenchJson, BenchRegistry());
  rc::obs::MergeJsonMetricsFile(kBenchJson, SharedHarness().client->metrics());
  std::cout << "metrics written to " << kBenchJson << "\n";
  return 0;
}
