// Shared configuration for the reproduction harness: every bench binary
// builds its workload from these canonical configurations so results are
// comparable across figures/tables.
#ifndef RC_BENCH_BENCH_COMMON_H_
#define RC_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <string>

#include "src/core/offline_pipeline.h"
#include "src/trace/trace.h"
#include "src/trace/workload_model.h"

namespace rc::bench {

// The Section-3 characterization workload: three months, mixed first/third
// party, calibrated to the paper's published distributions.
rc::trace::WorkloadConfig CharacterizationConfig(int64_t vms = 60'000, uint64_t seed = 42);
rc::trace::Trace CharacterizationTrace(int64_t vms = 60'000, uint64_t seed = 42);

// The Section-6.2 scheduler-study workload: first-party only (the paper
// oversubscribes only first-party clusters), 71% production tags, lighter
// lifetime tail, no >100-VM deployments (policy-independent blast failures
// would mask the comparison), slightly flattened arrivals.
rc::trace::WorkloadConfig SchedulerWorkloadConfig(int64_t vms, SimDuration duration,
                                                  uint64_t seed = 42);

// Default pipeline configuration used by the quality/latency benches.
rc::core::PipelineConfig DefaultPipelineConfig(SimTime train_end = 60 * kDay);

// Prints a section banner so `for b in bench/*; do $b; done` output reads
// as a single report.
void Banner(const std::string& title, const std::string& paper_ref);

}  // namespace rc::bench

#endif  // RC_BENCH_BENCH_COMMON_H_
