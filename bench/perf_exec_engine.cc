// Execution-engine performance: single-example vs batched inference through
// the compiled SoA node pool, legacy AoS traversal as the baseline, on
// Table-1-sized models (RF: 48 trees x depth 14 on ~127 features; GBT: 60
// rounds on ~24 features). Reports per-call p50/p99 and examples/sec at
// batch sizes 1/8/64/512, verifies the engine hot loops allocate nothing,
// and writes the series to BENCH_exec_engine.json.
//
// --compare runs the walk-mode arms instead: scalar vs AVX2 vs quantized at
// batch 64 on identical inputs, reporting per-arm rows/s, per-model pool
// bytes (f64 vs quantized — the cache-residency claim), and speedup vs the
// scalar lockstep walk, all merged into BENCH_exec_engine.json. The AVX2
// arm is verified bit-exact against scalar and the quantized arm within
// tolerance before any timing is trusted.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/ml/exec_engine.h"
#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"
#include "src/obs/export.h"

// Global allocation counter: the engine's contract is that PredictInto /
// PredictBatch never allocate, and a benchmark is the right place to hold it
// to that — a regression here silently re-adds the per-call malloc the
// engine exists to remove.
static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using rc::PercentileSorted;
using rc::Rng;
using rc::TablePrinter;

constexpr const char* kBenchJson = "BENCH_exec_engine.json";

// Keep the compiler from discarding results without google-benchmark.
void benchmark_do_not_optimize(void* p) { asm volatile("" : : "g"(p) : "memory"); }

rc::ml::Dataset SyntheticDataset(size_t rows, size_t features, int classes, Rng& rng) {
  std::vector<std::string> names;
  for (size_t f = 0; f < features; ++f) names.push_back("f" + std::to_string(f));
  rc::ml::Dataset data(std::move(names));
  std::vector<double> row(features);
  for (size_t i = 0; i < rows; ++i) {
    double signal = 0.0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Uniform(-5.0, 5.0);
      if (f % 5 == 0) signal += row[f];
    }
    int label = static_cast<int>(std::fabs(signal)) % classes;
    if (rng.Bernoulli(0.1)) label = static_cast<int>(rng.UniformInt(0, classes - 1));
    data.AddRow(row, label);
  }
  for (int c = 0; c < classes; ++c) {
    for (size_t f = 0; f < features; ++f) row[f] = static_cast<double>(c);
    data.AddRow(row, c);
  }
  return data;
}

std::vector<double> RandomMatrix(size_t rows, size_t features, Rng& rng) {
  std::vector<double> X(rows * features);
  for (double& v : X) v = rng.Uniform(-6.0, 6.0);
  return X;
}

struct Series {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double examples_per_sec = 0.0;
};

// Times `calls` invocations of `fn`, each covering `examples_per_call`
// examples; asserts the timed region performed zero heap allocations when
// `expect_no_alloc` (the engine paths; the legacy baseline allocates by
// design).
template <typename Fn>
Series Measure(size_t calls, size_t examples_per_call, bool expect_no_alloc,
               const std::string& what, bool& alloc_check_ok, Fn&& fn) {
  for (size_t i = 0; i < 32; ++i) fn(i);  // warm caches and arenas
  std::vector<double> micros;
  micros.reserve(calls);
  uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  auto total_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < calls; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn(i);
    auto end = std::chrono::steady_clock::now();
    micros.push_back(std::chrono::duration<double, std::micro>(end - start).count());
  }
  auto total_end = std::chrono::steady_clock::now();
  // micros.push_back above allocates at most a handful of times if reserve
  // was insufficient; it was sized exactly, so the loop's only allocations
  // are fn's own.
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - allocs_before;
  if (expect_no_alloc && allocs != 0) {
    std::cerr << "ALLOCATION REGRESSION: " << what << " allocated " << allocs
              << " times in " << calls << " calls (expected 0)\n";
    alloc_check_ok = false;
  }
  std::sort(micros.begin(), micros.end());
  double total_s = std::chrono::duration<double>(total_end - total_start).count();
  Series s;
  s.p50_us = PercentileSorted(micros, 50.0);
  s.p99_us = PercentileSorted(micros, 99.0);
  s.examples_per_sec = static_cast<double>(calls * examples_per_call) / total_s;
  return s;
}

void Record(rc::obs::MetricsRegistry& reg, const std::string& model,
            const std::string& mode, const Series& s) {
  rc::obs::Labels labels{{"model", model}, {"mode", mode}};
  reg.GetHistogram("rc_bench_exec_engine_call_us", {}, labels,
                   "per-call latency (us)")
      .Record(s.p50_us);
  reg.GetGauge("rc_bench_exec_engine_call_p99_us", labels, "per-call p99 (us)")
      .Set(s.p99_us);
  reg.GetGauge("rc_bench_exec_engine_examples_per_sec", labels,
               "inference throughput (examples/sec)")
      .Set(s.examples_per_sec);
}

// Runs the full single/batched/legacy grid for one model; returns the
// batch-64 vs compiled-single throughput ratio (the acceptance criterion).
template <typename Model>
double RunModel(const std::string& name, const Model& model, size_t features,
                rc::obs::MetricsRegistry& reg, TablePrinter& table, Rng& rng,
                bool& alloc_check_ok) {
  const size_t k = static_cast<size_t>(model.num_classes());
  const rc::ml::ExecEngine& engine = *model.engine();
  constexpr size_t kPool = 4096;
  std::vector<double> X = RandomMatrix(kPool, features, rng);
  std::vector<double> proba(512 * k);

  auto add_row = [&](const std::string& mode, const Series& s) {
    Record(reg, name, mode, s);
    table.AddRow({name, mode, TablePrinter::Fmt(s.p50_us, 2) + " us",
                  TablePrinter::Fmt(s.p99_us, 2) + " us",
                  TablePrinter::Fmt(s.examples_per_sec / 1000.0, 0) + " k/s"});
  };

  Series legacy = Measure(
      4000, 1, /*expect_no_alloc=*/false, name + "/legacy", alloc_check_ok,
      [&](size_t i) {
        auto p = model.PredictProbaLegacy({&X[(i % kPool) * features], features});
        benchmark_do_not_optimize(p.data());
      });
  add_row("legacy-single", legacy);

  Series single = Measure(
      4000, 1, /*expect_no_alloc=*/true, name + "/compiled-single", alloc_check_ok,
      [&](size_t i) {
        engine.PredictInto({&X[(i % kPool) * features], features}, {proba.data(), k});
        benchmark_do_not_optimize(proba.data());
      });
  add_row("compiled-single", single);

  double ratio_at_64 = 0.0;
  for (size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{512}}) {
    size_t calls = std::max<size_t>(64, 4000 / batch);
    Series s = Measure(
        calls, batch, /*expect_no_alloc=*/true,
        name + "/batch" + std::to_string(batch), alloc_check_ok, [&](size_t i) {
          size_t offset = (i * batch) % (kPool - batch + 1);
          engine.PredictBatch(&X[offset * features], batch, features, proba.data());
          benchmark_do_not_optimize(proba.data());
        });
    add_row("batch-" + std::to_string(batch), s);
    if (batch == 64) ratio_at_64 = s.examples_per_sec / single.examples_per_sec;
  }
  return ratio_at_64;
}

// --compare: per-walk-mode arms at batch 64 on identical inputs. Returns the
// avx2-vs-scalar throughput ratio (the ISSUE 8 acceptance number).
template <typename Model>
double RunCompare(const std::string& name, const Model& model, size_t features,
                  rc::obs::MetricsRegistry& reg, TablePrinter& table, Rng& rng,
                  bool& alloc_check_ok, bool& parity_ok) {
  using rc::ml::ExecEngine;
  const size_t k = static_cast<size_t>(model.num_classes());
  const ExecEngine& engine = *model.engine();
  // Pool sized to stay L2-resident (512 rows x 127 features x 8B ~ 0.5 MiB):
  // in the serving path BatchCombiner writes the coalesced rows immediately
  // before PredictBatch, so inputs are cache-hot. A DRAM-sized pool would
  // make every arm memory-latency-bound and compress the ratios toward 1.0,
  // measuring the wrong regime. Distinct offsets still cycle so no single
  // batch gets pinned in L1.
  constexpr size_t kPool = 512;
  constexpr size_t kBatch = 64;
  std::vector<double> X = RandomMatrix(kPool, features, rng);
  std::vector<double> proba(kBatch * k);

  // Cross-arm parity on one deterministic batch before timing anything:
  // AVX2 must match scalar bit-for-bit, quantized within leaf-table
  // tolerance (the parity suites assert this exhaustively; the bench
  // re-checks so a reported speedup can never come from a wrong answer).
  {
    std::vector<double> scalar_out(kBatch * k), arm_out(kBatch * k);
    engine.PredictBatch(X.data(), kBatch, features, scalar_out.data(),
                        ExecEngine::Mode::kScalar);
    engine.PredictBatch(X.data(), kBatch, features, arm_out.data(),
                        ExecEngine::Mode::kAvx2);
    for (size_t i = 0; i < scalar_out.size(); ++i) {
      if (scalar_out[i] != arm_out[i]) {
        std::cerr << "PARITY FAILURE: avx2 arm diverged from scalar at " << i << "\n";
        parity_ok = false;
        break;
      }
    }
    engine.PredictBatch(X.data(), kBatch, features, arm_out.data(),
                        ExecEngine::Mode::kQuantized);
    for (size_t i = 0; i < scalar_out.size(); ++i) {
      if (!(std::fabs(scalar_out[i] - arm_out[i]) <= 1e-3)) {
        std::cerr << "PARITY FAILURE: quantized arm off by "
                  << std::fabs(scalar_out[i] - arm_out[i]) << " at " << i << "\n";
        parity_ok = false;
        break;
      }
    }
  }

  struct Arm {
    ExecEngine::Mode mode;
    const char* label;
  };
  const Arm arms[] = {{ExecEngine::Mode::kScalar, "scalar"},
                      {ExecEngine::Mode::kAvx2, "avx2"},
                      {ExecEngine::Mode::kQuantized, "quantized"}};
  double scalar_rows = 0.0;
  double avx2_ratio = 0.0;
  for (const Arm& arm : arms) {
    const size_t calls = 2000;
    Series s = Measure(
        calls, kBatch, /*expect_no_alloc=*/true,
        name + "/compare-" + arm.label, alloc_check_ok, [&](size_t i) {
          size_t offset = (i * kBatch) % (kPool - kBatch + 1);
          engine.PredictBatch(&X[offset * features], kBatch, features,
                              proba.data(), arm.mode);
          benchmark_do_not_optimize(proba.data());
        });
    if (arm.mode == ExecEngine::Mode::kScalar) scalar_rows = s.examples_per_sec;
    const double speedup =
        scalar_rows > 0.0 ? s.examples_per_sec / scalar_rows : 0.0;
    if (arm.mode == ExecEngine::Mode::kAvx2) avx2_ratio = speedup;
    const size_t pool_bytes = arm.mode == ExecEngine::Mode::kQuantized
                                  ? engine.quantized_bytes()
                                  : engine.bytes();
    rc::obs::Labels labels{{"model", name}, {"arm", arm.label}};
    reg.GetGauge("rc_bench_exec_engine_compare_rows_per_sec", labels,
                 "batch-64 rows/s per walk-mode arm")
        .Set(s.examples_per_sec);
    reg.GetGauge("rc_bench_exec_engine_compare_speedup", labels,
                 "throughput vs the scalar lockstep walk")
        .Set(speedup);
    reg.GetGauge("rc_bench_exec_engine_model_bytes",
                 {{"model", name},
                  {"pool", arm.mode == ExecEngine::Mode::kQuantized ? "quantized" : "f64"}},
                 "walked pool + leaf tables (bytes)")
        .Set(static_cast<double>(pool_bytes));
    table.AddRow({name, std::string(arm.label) + " (runs " +
                            ExecEngine::ModeName(engine.Resolve(arm.mode)) + ")",
                  TablePrinter::Fmt(s.examples_per_sec / 1000.0, 0) + " k rows/s",
                  TablePrinter::Fmt(static_cast<double>(pool_bytes) / 1024.0, 0) + " KiB",
                  TablePrinter::Fmt(speedup, 2) + "x"});
  }
  return avx2_ratio;
}

int RunCompareMain() {
  rc::bench::Banner("Execution engine: scalar vs AVX2 vs quantized walk",
                    "batch 64, identical inputs (DESIGN.md)");
  rc::obs::MetricsRegistry registry;
  Rng rng(42);
  bool alloc_check_ok = true;
  bool parity_ok = true;
  using rc::ml::ExecEngine;
  std::cout << "avx2 kernel available on this host: "
            << (ExecEngine::Avx2Available() ? "yes" : "no (arm runs scalar)")
            << "\n";

  constexpr size_t kRfFeatures = 127;
  rc::ml::RandomForestConfig rf_config;
  rf_config.num_trees = 48;
  rf_config.tree.max_depth = 14;
  std::cout << "training Table-1-size RF (48 trees, depth 14, " << kRfFeatures
            << " features)...\n";
  rc::ml::Dataset rf_data = SyntheticDataset(4000, kRfFeatures, 4, rng);
  rc::ml::RandomForest forest = rc::ml::RandomForest::Fit(rf_data, rf_config);

  constexpr size_t kGbtFeatures = 24;
  rc::ml::GbtConfig gbt_config;
  gbt_config.num_rounds = 60;
  std::cout << "training Table-1-size GBT (60 rounds, " << kGbtFeatures
            << " features)...\n";
  rc::ml::Dataset gbt_data = SyntheticDataset(4000, kGbtFeatures, 4, rng);
  rc::ml::GradientBoostedTrees gbt =
      rc::ml::GradientBoostedTrees::Fit(gbt_data, gbt_config);

  TablePrinter table({"model", "arm", "throughput", "pool bytes", "vs scalar"});
  double rf_ratio = RunCompare("rf", forest, kRfFeatures, registry, table, rng,
                               alloc_check_ok, parity_ok);
  double gbt_ratio = RunCompare("gbt", gbt, kGbtFeatures, registry, table, rng,
                                alloc_check_ok, parity_ok);
  table.Print(std::cout);

  auto pool_ratio = [](const ExecEngine& e) {
    return e.bytes() > 0 ? static_cast<double>(e.quantized_bytes()) /
                               static_cast<double>(e.bytes())
                         : 0.0;
  };
  std::cout << "\navx2 batch-64 vs scalar lockstep: rf "
            << TablePrinter::Fmt(rf_ratio, 2) << "x, gbt "
            << TablePrinter::Fmt(gbt_ratio, 2)
            << "x (acceptance: >= 1.5x)\n";
  std::cout << "quantized pool vs f64 pool bytes: rf "
            << TablePrinter::Fmt(pool_ratio(*forest.engine()), 2) << "x, gbt "
            << TablePrinter::Fmt(pool_ratio(*gbt.engine()), 2)
            << "x (acceptance: <= 0.5x); bin tables (off the per-node hot "
               "path): rf "
            << TablePrinter::Fmt(
                   static_cast<double>(forest.engine()->bin_table_bytes()) / 1024.0, 0)
            << " KiB, gbt "
            << TablePrinter::Fmt(
                   static_cast<double>(gbt.engine()->bin_table_bytes()) / 1024.0, 0)
            << " KiB\n";
  std::cout << "engine hot loops: "
            << (alloc_check_ok ? "0 allocations, as designed"
                               : "ALLOCATION CHECK FAILED")
            << "; cross-arm parity: " << (parity_ok ? "ok" : "FAILED") << "\n";
  rc::obs::MergeJsonMetricsFile(kBenchJson, registry);
  std::cout << "metrics written to " << kBenchJson << "\n";
  return alloc_check_ok && parity_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--compare") return RunCompareMain();
    if (std::string(argv[i]) == "--dispatch") {
      // For scripts (tools/check_all.sh): which walk kAuto resolves to here.
      std::printf("exec-engine dispatch: %s\n",
                  rc::ml::ExecEngine::Avx2Available() ? "avx2" : "scalar");
      return 0;
    }
  }
  rc::bench::Banner("Execution engine: single vs batched inference",
                    "compiled SoA node pool (DESIGN.md)");
  rc::obs::MetricsRegistry registry;
  Rng rng(42);
  bool alloc_check_ok = true;

  // Table-1-sized Random Forest: the P95 utilization model (48 trees, depth
  // 14, expanded ~127-feature encoding).
  constexpr size_t kRfFeatures = 127;
  rc::ml::RandomForestConfig rf_config;
  rf_config.num_trees = 48;
  rf_config.tree.max_depth = 14;
  std::cout << "training Table-1-size RF (48 trees, depth 14, " << kRfFeatures
            << " features)...\n";
  rc::ml::Dataset rf_data = SyntheticDataset(4000, kRfFeatures, 4, rng);
  rc::ml::RandomForest forest = rc::ml::RandomForest::Fit(rf_data, rf_config);

  // Table-1-sized GBT: 60 rounds on the compact ~24-feature encoding.
  constexpr size_t kGbtFeatures = 24;
  rc::ml::GbtConfig gbt_config;
  gbt_config.num_rounds = 60;
  std::cout << "training Table-1-size GBT (60 rounds, " << kGbtFeatures
            << " features)...\n";
  rc::ml::Dataset gbt_data = SyntheticDataset(4000, kGbtFeatures, 4, rng);
  rc::ml::GradientBoostedTrees gbt = rc::ml::GradientBoostedTrees::Fit(gbt_data, gbt_config);

  TablePrinter table({"model", "mode", "p50/call", "p99/call", "throughput"});
  double rf_ratio =
      RunModel("rf", forest, kRfFeatures, registry, table, rng, alloc_check_ok);
  double gbt_ratio =
      RunModel("gbt", gbt, kGbtFeatures, registry, table, rng, alloc_check_ok);
  table.Print(std::cout);

  std::cout << "\nbatch-64 vs compiled-single throughput: rf " << TablePrinter::Fmt(rf_ratio, 2)
            << "x, gbt " << TablePrinter::Fmt(gbt_ratio, 2) << "x (acceptance: >= 2x)\n";
  std::cout << "engine hot loops (PredictInto / PredictBatch): "
            << (alloc_check_ok ? "0 allocations, as designed"
                               : "ALLOCATION CHECK FAILED")
            << "\n";

  registry.GetGauge("rc_bench_exec_engine_batch64_speedup", {{"model", "rf"}},
                    "batch-64 / compiled-single throughput")
      .Set(rf_ratio);
  registry.GetGauge("rc_bench_exec_engine_batch64_speedup", {{"model", "gbt"}},
                    "batch-64 / compiled-single throughput")
      .Set(gbt_ratio);
  rc::obs::MergeJsonMetricsFile(kBenchJson, registry);
  std::cout << "metrics written to " << kBenchJson << "\n";
  return alloc_check_ok ? 0 : 1;
}
