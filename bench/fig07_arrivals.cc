// Figure 7: time series of VM arrivals per hour over a week. The paper plots
// one Azure region with thousands of arrivals per hour; at our synthetic
// scale a single region is sparse, so the weekly table aggregates all
// regions, and the hour-of-day / day-of-week profiles average over the full
// three months to expose the diurnal and weekly structure.
#include <cmath>

#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 7: VM arrivals per hour over a week", "Fig. 7");
  trace::Trace t = bench::CharacterizationTrace();

  // All-region hourly arrivals over a mid-trace week (day 0 is a Monday).
  std::vector<int64_t> week(7 * 24, 0);
  std::vector<double> hourly_all;
  std::vector<double> by_hour(24, 0.0), by_dow(7, 0.0);
  {
    std::vector<int64_t> full(static_cast<size_t>(t.observation_window() / kHour), 0);
    for (const auto& vm : t.vms()) {
      if (vm.created >= t.observation_window()) continue;
      full[static_cast<size_t>(vm.created / kHour)] += 1;
    }
    for (size_t h = 0; h < full.size(); ++h) {
      hourly_all.push_back(static_cast<double>(full[h]));
      by_hour[h % 24] += static_cast<double>(full[h]);
      by_dow[(h / 24) % 7] += static_cast<double>(full[h]);
      if (h >= 28 * 24 && h < 35 * 24) week[h - 28 * 24] = full[h];
    }
  }

  const char* kDays[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  TablePrinter table({"day", "00-05h", "06-11h", "12-17h", "18-23h", "total"});
  for (int day = 0; day < 7; ++day) {
    int64_t quarters[4] = {0, 0, 0, 0};
    int64_t total = 0;
    for (int hour = 0; hour < 24; ++hour) {
      int64_t n = week[static_cast<size_t>(day * 24 + hour)];
      quarters[hour / 6] += n;
      total += n;
    }
    table.AddRow({kDays[day], std::to_string(quarters[0]), std::to_string(quarters[1]),
                  std::to_string(quarters[2]), std::to_string(quarters[3]),
                  std::to_string(total)});
  }
  table.Print(std::cout);

  // Average profiles across the full trace (normalized to the mean hour).
  double hour_mean = Mean(by_hour);
  double dow_mean = Mean(by_dow);
  std::cout << "\nhour-of-day profile (x mean): ";
  for (int h = 0; h < 24; h += 3) {
    std::cout << h << "h=" << TablePrinter::Fmt(by_hour[h] / hour_mean, 2) << " ";
  }
  std::cout << "\nday-of-week profile (x mean): ";
  for (int d = 0; d < 7; ++d) {
    std::cout << kDays[d] << "=" << TablePrinter::Fmt(by_dow[d] / dow_mean, 2) << " ";
  }
  std::cout << "\nhourly-arrival CoV (burstiness): "
            << TablePrinter::Fmt(CoefficientOfVariation(hourly_all), 2)
            << "\npaper anchors: diurnal (peak in working hours), lower weekend load,\n"
            << "bursty and heavy-tailed inter-arrivals (Weibull fits)\n";
  return 0;
}
