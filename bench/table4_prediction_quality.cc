// Tables 3 and 4: bucket definitions and RC's prediction quality — train on
// two months, test on the third; report accuracy, per-bucket prevalence /
// precision / recall, and the confidence-thresholded P^theta / R^theta
// columns (theta = 0.6).
#include "bench/bench_common.h"
#include "src/core/evaluation.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::core;

int main() {
  bench::Banner("Table 4: RC prediction quality (train 2 months, test 1)",
                "Tables 3-4");

  // Table 3 (bucket boundaries) for reference.
  {
    TablePrinter buckets({"Metric", "Bucket 1", "Bucket 2", "Bucket 3", "Bucket 4"});
    for (Metric m : {Metric::kAvgCpu, Metric::kDeployVms, Metric::kLifetime,
                     Metric::kClass}) {
      std::vector<std::string> row = {m == Metric::kAvgCpu ? "Avg and P95 util"
                                      : m == Metric::kDeployVms
                                          ? "Deployment size (#VMs/#cores)"
                                          : MetricName(m)};
      for (int b = 0; b < NumBuckets(m); ++b) row.push_back(BucketLabel(m, b));
      buckets.AddRow(std::move(row));
    }
    buckets.Print(std::cout);
    std::cout << "\n";
  }

  trace::Trace t = bench::CharacterizationTrace(100'000, /*seed=*/42);
  OfflinePipeline pipeline(bench::DefaultPipelineConfig(60 * kDay));
  TrainedModels trained = pipeline.Run(t);

  TablePrinter table({"Metric", "Acc", "b1 %", "b1 P", "b1 R", "b2 %", "b2 P", "b2 R",
                      "b3 %", "b3 P", "b3 R", "b4 %", "b4 P", "b4 R", "P^t", "R^t", "n"});
  for (Metric m : kAllMetrics) {
    auto examples = OfflinePipeline::BuildExamples(t, m, 60 * kDay, 90 * kDay, true);
    Featurizer featurizer(m, OfflinePipeline::EncodingFor(m));
    MetricQuality q =
        EvaluateModel(*trained.models.at(MetricModelName(m)), featurizer, examples, 0.6);
    std::vector<std::string> row = {MetricName(m), TablePrinter::Fmt(q.accuracy, 2)};
    for (int b = 0; b < 4; ++b) {
      if (b < static_cast<int>(q.buckets.size())) {
        const BucketQuality& bq = q.buckets[static_cast<size_t>(b)];
        row.push_back(TablePrinter::Pct(bq.prevalence, 0));
        row.push_back(TablePrinter::Fmt(bq.precision, 2));
        row.push_back(TablePrinter::Fmt(bq.recall, 2));
      } else {
        row.insert(row.end(), {"NA", "NA", "NA"});
      }
    }
    row.push_back(TablePrinter::Fmt(q.p_theta, 2));
    row.push_back(TablePrinter::Fmt(q.r_theta, 2));
    row.push_back(std::to_string(q.examples));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\npaper anchors (Table 4): accuracy 0.79 (lifetime) .. 0.90 (class);\n"
            << "P^theta 0.85-0.94 at theta=0.6 without collapsing coverage; the class\n"
            << "metric is ~99% delay-insensitive with recall-first interactive handling\n"
            << "(P^t = precision over served predictions, R^t = fraction served)\n";
  return 0;
}
