// Figure 4: CDF of deployment sizes (deployments redefined per the paper as
// the VMs a subscription deploys to a region during a day).
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 4: max number of VMs per deployment", "Fig. 4");
  trace::Trace t = bench::CharacterizationTrace();

  auto all = DeploymentSizeCdf(t, PartyFilter::kAll);
  auto first = DeploymentSizeCdf(t, PartyFilter::kFirst);
  auto third = DeploymentSizeCdf(t, PartyFilter::kThird);
  TablePrinter table({"#VMs <=", "all", "first-party", "third-party"});
  for (double size : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 400.0}) {
    table.AddRow({TablePrinter::Fmt(size, 0), TablePrinter::Pct(all.Eval(size)),
                  TablePrinter::Pct(first.Eval(size)),
                  TablePrinter::Pct(third.Eval(size))});
  }
  table.Print(std::cout);
  std::cout << "\npaper anchors: ~40% single-VM deployments -> measured "
            << TablePrinter::Pct(all.Eval(1.0)) << "\n"
            << "               ~80% of deployments at most 5 VMs -> measured "
            << TablePrinter::Pct(all.Eval(5.0)) << "\n"
            << "               third-party deploys in smaller groups than first-party\n";
  return 0;
}
