// Ablation: "formulating these models as classifiers with buckets rather
// than regression algorithms makes the metrics easier to predict" (paper
// Section 4.2). We sweep the label granularity for the P95 metric — 4, 8,
// and 16 equal utilization buckets — train at each granularity, and measure
// accuracy after mapping predictions back to the paper's 4 buckets. Finer
// granularity approaches regression; coarse buckets should win.
#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/evaluation.h"
#include "src/ml/metrics.h"

using namespace rc;
using namespace rc::core;

namespace {

int FineBucket(double util, int granularity) {
  int b = static_cast<int>(util * granularity);
  return std::min(granularity - 1, std::max(0, b));
}

}  // namespace

int main() {
  bench::Banner("Ablation: bucketed classification vs near-regression granularity",
                "Sec. 4.2 design choice");
  trace::Trace t = bench::CharacterizationTrace(60'000);

  auto train = OfflinePipeline::BuildExamples(t, Metric::kP95Cpu, 0, 60 * kDay, false);
  auto test = OfflinePipeline::BuildExamples(t, Metric::kP95Cpu, 60 * kDay, 90 * kDay,
                                             false);
  Featurizer featurizer(Metric::kP95Cpu, FeatureEncoding::kExpanded);

  TablePrinter table({"label granularity", "fine-grained acc", "acc @ 4 buckets",
                      "model size"});
  for (int granularity : {4, 8, 16}) {
    // Re-label at this granularity. (BuildExamples labels at 4 buckets; the
    // raw P95 is recoverable from the trace via the example's inputs, so we
    // rebuild labels from the source VMs directly.)
    rc::ml::Dataset data(featurizer.feature_names());
    std::vector<double> row(featurizer.num_features());
    size_t i = 0;
    std::vector<const trace::VmRecord*> train_vms;
    for (const auto& vm : t.vms()) {
      if (vm.created < 60 * kDay) train_vms.push_back(&vm);
    }
    for (const auto& example : train) {
      featurizer.EncodeTo(example.inputs, example.history, row);
      data.AddRow(row, FineBucket(train_vms[i]->p95_max_cpu, granularity));
      ++i;
    }
    rc::ml::RandomForestConfig config;
    config.num_trees = 24;
    config.tree.max_depth = 13;
    rc::ml::RandomForest model = rc::ml::RandomForest::Fit(data, config);

    std::vector<const trace::VmRecord*> test_vms;
    for (const auto& vm : t.vms()) {
      if (vm.created >= 60 * kDay && vm.created < 90 * kDay) test_vms.push_back(&vm);
    }
    int64_t fine_correct = 0, coarse_correct = 0;
    std::vector<double> proba(static_cast<size_t>(model.num_classes()));
    for (size_t j = 0; j < test.size(); ++j) {
      featurizer.EncodeTo(test[j].inputs, test[j].history, row);
      int predicted = model.PredictScored(row, proba).label;
      double p95 = test_vms[j]->p95_max_cpu;
      if (predicted == FineBucket(p95, granularity)) ++fine_correct;
      // Map the fine prediction to the paper's 4 buckets via its midpoint.
      double mid = (predicted + 0.5) / granularity;
      if (UtilizationBucket(mid) == UtilizationBucket(p95)) ++coarse_correct;
    }
    double n = static_cast<double>(test.size());
    table.AddRow({std::to_string(granularity) + " buckets",
                  TablePrinter::Pct(fine_correct / n, 1),
                  TablePrinter::Pct(coarse_correct / n, 1),
                  TablePrinter::Fmt(model.SerializeTagged().size() / 1024.0, 0) + " KB"});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: fine-grained accuracy collapses as granularity grows\n"
            << "(regression is harder), while 4-bucket accuracy stays roughly flat —\n"
            << "the paper's bucketed formulation gets the benefit at lower model cost\n";
  return 0;
}
