// Section 6.2 sensitivity to MAX_OVERSUB: 125% -> 120% -> 115% of server CPU
// capacity. Uses the oracle predictor (RC-soft-right), which the paper shows
// behaves like RC-informed-soft, to keep the sweep independent of training.
#include "bench/sched_common.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::bench;
using rc::sched::PolicyKind;

int main() {
  Banner("Section 6.2: sensitivity to MAX_OVERSUB", "Sec. 6.2, 'Sensitivity to amount of oversubscription'");
  // Run at the hot-load point where Baseline fails ~0.3% of VMs, so the
  // failure column responds to the oversubscription headroom.
  SchedStudy study(500'000, /*train_client=*/false);
  std::cout << "[sched] " << study.requests().size() << " arrivals; policy RC-soft-right\n\n";

  TablePrinter table(SimHeader());
  sched::SimResult baseline = study.Run(PolicyKind::kBaseline);
  PrintSimRow(table, "Baseline (no oversub)", baseline);
  for (double oversub : {1.25, 1.20, 1.15}) {
    sched::OversubParams params;
    params.max_oversub = oversub;
    sched::SimResult result = study.Run(PolicyKind::kRcSoftRight, params);
    PrintSimRow(table, "RC @ " + TablePrinter::Pct(oversub, 0), result);
  }
  table.Print(std::cout);

  std::cout << "\npaper anchors: lowering MAX_OVERSUB raises failures (less capacity\n"
            << "for non-production) but lowers readings >100% (fewer concurrent\n"
            << "spikes); at 115% the paper still sees 65% fewer failures than Baseline\n";
  return 0;
}
