// Ablation: the Table 1 / Figure 10 tradeoff — ensemble size vs held-out
// accuracy vs serialized model bytes vs client-side execution latency.
#include <chrono>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"
#include "src/core/evaluation.h"

using namespace rc;
using namespace rc::core;

int main() {
  bench::Banner("Ablation: forest size vs accuracy vs size vs latency",
                "Table 1 / Fig. 10 tradeoff");
  trace::Trace t = bench::CharacterizationTrace(60'000);
  auto train = OfflinePipeline::BuildExamples(t, Metric::kP95Cpu, 0, 60 * kDay, false);
  auto test = OfflinePipeline::BuildExamples(t, Metric::kP95Cpu, 60 * kDay, 90 * kDay,
                                             false);
  Featurizer featurizer(Metric::kP95Cpu, FeatureEncoding::kExpanded);
  rc::ml::Dataset data = OfflinePipeline::ToDataset(train, featurizer);

  TablePrinter table({"trees", "depth", "accuracy", "model size", "median exec", "P99 exec"});
  for (int trees : {4, 8, 16, 32, 64}) {
    rc::ml::RandomForestConfig config;
    config.num_trees = trees;
    config.tree.max_depth = 13;
    rc::ml::RandomForest model = rc::ml::RandomForest::Fit(data, config);
    MetricQuality q = EvaluateModel(model, featurizer, test, 0.6);

    // Execution latency over a sample of the test set. Scratch-form scoring,
    // so the timed region measures the tree walk, not the allocator.
    std::vector<double> micros;
    std::vector<double> row(featurizer.num_features());
    std::vector<double> proba(static_cast<size_t>(model.num_classes()));
    for (size_t i = 0; i < test.size() && i < 2000; ++i) {
      featurizer.EncodeTo(test[i].inputs, test[i].history, row);
      auto start = std::chrono::steady_clock::now();
      auto scored = model.PredictScored(row, proba);
      auto end = std::chrono::steady_clock::now();
      (void)scored;
      micros.push_back(std::chrono::duration<double, std::micro>(end - start).count());
    }
    std::sort(micros.begin(), micros.end());
    table.AddRow({std::to_string(trees), std::to_string(config.tree.max_depth),
                  TablePrinter::Pct(q.accuracy, 1),
                  TablePrinter::Fmt(model.SerializeTagged().size() / 1024.0, 0) + " KB",
                  TablePrinter::Fmt(PercentileSorted(micros, 50.0), 1) + " us",
                  TablePrinter::Fmt(PercentileSorted(micros, 99.0), 1) + " us"});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: accuracy saturates quickly with ensemble size while\n"
            << "model bytes and execution latency keep growing linearly — why the\n"
            << "paper's client-side models can stay in the hundreds of KB\n";
  return 0;
}
