// Figure 3: amount of memory per VM (stacked breakdown).
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 3: memory per VM (GB)", "Fig. 3");
  trace::Trace t = bench::CharacterizationTrace();

  TablePrinter table({"memory GB", "first-party", "third-party", "all"});
  auto first = MemoryBreakdown(t, PartyFilter::kFirst);
  auto third = MemoryBreakdown(t, PartyFilter::kThird);
  auto all = MemoryBreakdown(t, PartyFilter::kAll);
  double small_all = 0.0;
  for (const char* mem : {"0.75", "1.75", "3.5", "7", "14", "28", "56", "112"}) {
    table.AddRow({mem, TablePrinter::Pct(first.Fraction(mem)),
                  TablePrinter::Pct(third.Fraction(mem)),
                  TablePrinter::Pct(all.Fraction(mem))});
  }
  small_all = all.Fraction("0.75") + all.Fraction("1.75") + all.Fraction("3.5");
  table.Print(std::cout);
  std::cout << "\npaper anchors: ~70% of VMs under 4 GB -> measured "
            << TablePrinter::Pct(small_all) << "\n"
            << "               third-party favours 0.75 GB and 3.5 GB sizes: "
            << TablePrinter::Pct(third.Fraction("0.75")) << " / "
            << TablePrinter::Pct(third.Fraction("3.5")) << " vs first-party "
            << TablePrinter::Pct(first.Fraction("0.75")) << " / "
            << TablePrinter::Pct(first.Fraction("3.5")) << "\n";
  return 0;
}
