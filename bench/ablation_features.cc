// Ablation: the paper reports that "the most important attributes are the
// percentage of VMs classified into each bucket to date in the subscription"
// (Section 6.1). We retrain the P95 model with (a) all features, (b) the
// subscription-history block zeroed out, and (c) only the history block, and
// report held-out accuracy plus the trained model's own gain-based feature
// importance split.
#include "bench/bench_common.h"
#include "src/common/table_printer.h"
#include "src/core/evaluation.h"

using namespace rc;
using namespace rc::core;

namespace {

enum class Variant { kAll, kNoHistory, kHistoryOnly };

bool IsHistoryFeature(const std::string& name) {
  return name.rfind("hist_", 0) == 0 || name.rfind("mean_", 0) == 0 ||
         name.rfind("log_", 0) == 0;
}

std::vector<LabeledExample> Mask(std::vector<LabeledExample> examples, Variant variant) {
  for (auto& example : examples) {
    if (variant == Variant::kNoHistory) {
      SubscriptionFeatures empty;
      empty.subscription_id = example.history.subscription_id;
      example.history = empty;
    } else if (variant == Variant::kHistoryOnly) {
      ClientInputs blank;
      blank.subscription_id = example.inputs.subscription_id;
      example.inputs = blank;
    }
  }
  return examples;
}

}  // namespace

int main() {
  bench::Banner("Ablation: per-subscription history features", "Sec. 6.1 finding");
  trace::Trace t = bench::CharacterizationTrace(60'000);
  auto train = OfflinePipeline::BuildExamples(t, Metric::kP95Cpu, 0, 60 * kDay, false);
  auto test = OfflinePipeline::BuildExamples(t, Metric::kP95Cpu, 60 * kDay, 90 * kDay,
                                             false);
  Featurizer featurizer(Metric::kP95Cpu, FeatureEncoding::kExpanded);

  TablePrinter table({"variant", "accuracy", "P^0.6", "coverage", "history importance"});
  for (Variant variant : {Variant::kAll, Variant::kNoHistory, Variant::kHistoryOnly}) {
    auto masked_train = Mask(train, variant);
    auto masked_test = Mask(test, variant);
    rc::ml::Dataset data = OfflinePipeline::ToDataset(masked_train, featurizer);
    rc::ml::RandomForestConfig config;
    config.num_trees = 24;
    config.tree.max_depth = 13;
    rc::ml::RandomForest model = rc::ml::RandomForest::Fit(data, config);
    MetricQuality q = EvaluateModel(model, featurizer, masked_test, 0.6);

    auto importance = model.FeatureImportance();
    double history_share = 0.0;
    for (size_t i = 0; i < importance.size(); ++i) {
      if (IsHistoryFeature(featurizer.feature_names()[i])) history_share += importance[i];
    }
    const char* names[] = {"all features", "no history", "history only"};
    table.AddRow({names[static_cast<int>(variant)], TablePrinter::Pct(q.accuracy, 1),
                  TablePrinter::Fmt(q.p_theta, 2), TablePrinter::Pct(q.r_theta, 1),
                  TablePrinter::Pct(history_share, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: dropping the subscription history costs most of the\n"
            << "accuracy; history alone recovers nearly all of it (the paper's 'most\n"
            << "important attributes' claim)\n";
  return 0;
}
