// Section 6.2 "Comparing schedulers": Baseline vs Naive vs RC-informed
// (soft and hard) vs the oracle (RC-soft-right) and adversary
// (RC-soft-wrong), on the paper's cluster (880 servers x 16 cores x 112 GB)
// with one month of first-party arrivals (71% production).
#include "bench/sched_common.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::bench;
using rc::sched::PolicyKind;

int main() {
  Banner("Section 6.2: comparing schedulers (MAX_OVERSUB=125%, MAX_UTIL=100%)",
         "Sec. 6.2, 'Comparing schedulers'");
  SchedStudy study(368'000, /*train_client=*/true);
  std::cout << "[sched] simulating " << study.requests().size()
            << " VM arrivals over 1 month on 880 x (16-core, 112 GB) servers\n\n";

  TablePrinter table(SimHeader());
  sched::SimResult rc_soft;
  for (PolicyKind kind :
       {PolicyKind::kBaseline, PolicyKind::kNaive, PolicyKind::kRcInformedSoft,
        PolicyKind::kRcInformedHard, PolicyKind::kRcSoftRight, PolicyKind::kRcSoftWrong}) {
    sched::SimResult result = study.Run(kind);
    if (kind == PolicyKind::kRcInformedSoft) {
      rc_soft = result;
      std::cout << "[sched] RC-informed confident-prediction coverage: "
                << TablePrinter::Pct(study.last_served_fraction(), 1) << "\n";
    }
    PrintSimRow(table, ToString(kind), result);
  }
  table.Print(std::cout);

  // A hotter month (the paper's cluster runs close to its failure point:
  // Baseline fails ~0.25% of VMs). Oracle predictions stand in for the
  // trained client here (the paper and the table above show RC-soft-right
  // and RC-informed-soft behave alike).
  std::cout << "\n-- hot load (failure regime) --\n";
  SchedStudy hot(500'000, /*train_client=*/false);
  std::cout << "[sched] " << hot.requests().size() << " arrivals\n\n";
  TablePrinter hot_table(SimHeader());
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kNaive,
                          PolicyKind::kRcInformedSoft, PolicyKind::kRcSoftWrong}) {
    PrintSimRow(hot_table, ToString(kind), hot.Run(kind));
  }
  hot_table.Print(std::cout);

  std::cout
      << "\npaper anchors: RC-informed-soft -> no failures and only 77 readings >100%\n"
      << "over the month; RC-informed-hard identical at this load; Naive -> 6x more\n"
      << "overloads; Baseline -> no overloads but scheduling failures; RC-soft-wrong\n"
      << "-> ~3x more overloads than accurate predictions\n";
  return 0;
}
