// Section 6.2 sensitivity to VM resource utilization: add 25% to every real
// utilization reading and +1 to every predicted bucket, then compare the
// soft and hard variants of the utilization rule.
#include "bench/sched_common.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::bench;
using rc::sched::PolicyKind;

int main() {
  Banner("Section 6.2: sensitivity to VM resource utilization (+25% util, +1 bucket)",
         "Sec. 6.2, 'Sensitivity to VM resource utilization'");
  SchedStudy study(368'000, /*train_client=*/false);

  sched::SimConfig inflated = SchedStudy::DefaultSimConfig();
  inflated.util_inflation = 0.25;

  TablePrinter table(SimHeader());
  // Both variants run on oracle predictions (+1 bucket shift), matching the
  // paper's setup of perturbing the real utilizations and the predictions.
  sched::SimResult soft = study.Run(PolicyKind::kRcInformedSoft, {}, &inflated,
                                    /*bucket_shift=*/1);
  PrintSimRow(table, "RC-informed-soft (+25%, +1b)", soft);
  sched::SimResult hard = study.Run(PolicyKind::kRcInformedHard, {}, &inflated,
                                    /*bucket_shift=*/1);
  PrintSimRow(table, "RC-informed-hard (+25%, +1b)", hard);
  // Unperturbed reference rows.
  sched::SimResult soft_ref = study.Run(PolicyKind::kRcInformedSoft);
  PrintSimRow(table, "RC-informed-soft (reference)", soft_ref);
  table.Print(std::cout);

  std::cout << "\npaper anchor: higher utilization makes the hard rule fail slightly\n"
            << "more VMs than the soft rule (the paper measures a difference of just\n"
            << "4 failures), because predictions must exceed capacity on all servers\n"
            << "for the hard rule to produce an extra failure\n";
  return 0;
}
