// Figure 5: VM lifetime CDF (VMs completing within the observation window).
#include "bench/bench_common.h"
#include "src/analysis/characterization.h"
#include "src/common/table_printer.h"

using namespace rc;
using namespace rc::analysis;

int main() {
  bench::Banner("Figure 5: VM lifetime", "Fig. 5");
  trace::Trace t = bench::CharacterizationTrace();

  auto all = LifetimeCdf(t, PartyFilter::kAll);
  auto first = LifetimeCdf(t, PartyFilter::kFirst);
  auto third = LifetimeCdf(t, PartyFilter::kThird);
  struct Point {
    const char* label;
    double seconds;
  };
  const Point kPoints[] = {
      {"5 min", 5.0 * kMinute},  {"15 min", 15.0 * kMinute}, {"1 hour", 1.0 * kHour},
      {"6 hours", 6.0 * kHour},  {"1 day", 1.0 * kDay},      {"3 days", 3.0 * kDay},
      {"1 week", 7.0 * kDay},    {"1 month", 30.0 * kDay},
  };
  TablePrinter table({"lifetime <=", "all", "first-party", "third-party"});
  for (const Point& p : kPoints) {
    table.AddRow({p.label, TablePrinter::Pct(all.Eval(p.seconds)),
                  TablePrinter::Pct(first.Eval(p.seconds)),
                  TablePrinter::Pct(third.Eval(p.seconds))});
  }
  table.Print(std::cout);

  // Long-runner core-hour share (paper: small % of long-running VMs hold
  // >95% of core hours; VMs >= 3 days hold 94%).
  double long_ch = 0.0, total_ch = 0.0;
  for (const auto& vm : t.vms()) {
    SimTime end = std::min(vm.deleted, t.observation_window());
    double ch = static_cast<double>(vm.cores) * static_cast<double>(end - vm.created) / kHour;
    total_ch += ch;
    if (vm.lifetime() >= 3 * kDay) long_ch += ch;
  }
  std::cout << "\npaper anchors: >90% of lifetimes below 1 day -> measured "
            << TablePrinter::Pct(all.Eval(static_cast<double>(kDay))) << "\n"
            << "               first-party shorter-lived than third-party (test VMs)\n"
            << "               VMs running >=3 days hold most core-hours (paper 94%): "
            << TablePrinter::Pct(long_ch / total_ch) << "\n";
  return 0;
}
