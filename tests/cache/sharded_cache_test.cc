#include "src/cache/sharded_cache.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rc::cache {
namespace {

CacheOptions SmallOptions(size_t capacity, size_t shards = 1) {
  CacheOptions options;
  options.capacity = capacity;
  options.shards = shards;
  return options;
}

uint64_t W0(uint64_t key) { return key * 3 + 1; }
uint64_t W1(uint64_t key) { return key ^ 0xdeadbeefcafef00dULL; }

void InsertKey(Word2Cache& cache, uint64_t key) {
  const uint64_t value[2] = {W0(key), W1(key)};
  cache.Insert(key, value, cache.epoch());
}

TEST(Word2CacheTest, InsertLookupRoundTrip) {
  Word2Cache cache(SmallOptions(64));
  uint64_t out[2];
  EXPECT_FALSE(cache.Lookup(7, out));
  InsertKey(cache, 7);
  ASSERT_TRUE(cache.Lookup(7, out));
  EXPECT_EQ(out[0], W0(7));
  EXPECT_EQ(out[1], W1(7));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Word2CacheTest, KeyZeroIsAValidKey) {
  Word2Cache cache(SmallOptions(64));
  InsertKey(cache, 0);
  uint64_t out[2];
  ASSERT_TRUE(cache.Lookup(0, out));
  EXPECT_EQ(out[0], W0(0));
}

TEST(Word2CacheTest, UpdateInPlaceReplacesValue) {
  Word2Cache cache(SmallOptions(64));
  InsertKey(cache, 5);
  const uint64_t updated[2] = {111, 222};
  cache.Insert(5, updated, cache.epoch());
  uint64_t out[2];
  ASSERT_TRUE(cache.Lookup(5, out));
  EXPECT_EQ(out[0], 111u);
  EXPECT_EQ(out[1], 222u);
  EXPECT_EQ(cache.size(), 1u);  // update, not a second entry
}

TEST(Word2CacheTest, CapacityZeroDisablesCache) {
  Word2Cache cache(SmallOptions(0));
  InsertKey(cache, 1);
  uint64_t out[2];
  EXPECT_FALSE(cache.Lookup(1, out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Word2CacheTest, OverflowEvictsOneEntryNotAShard) {
  // Regression for the old flush-on-overflow cache: crossing the capacity
  // boundary must evict exactly one entry per insert, so the entry count
  // stays pinned at capacity instead of sawtoothing to zero.
  Word2Cache cache(SmallOptions(64));
  for (uint64_t k = 0; k < 200; ++k) {
    InsertKey(cache, k);
    EXPECT_LE(cache.size(), 64u);
    if (k >= 64) EXPECT_EQ(cache.size(), 64u) << "insert " << k;
  }
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions_window + stats.evictions_probation +
                stats.evictions_protected,
            200 - 64u);
}

TEST(Word2CacheTest, SteadyStateHitRateSurvivesOverflow) {
  // The old cache flushed a whole shard at the capacity boundary, cratering
  // the hit rate right when the cache was most useful. Per-insert eviction +
  // admission must keep a promoted working set's hit rate within 5 points
  // across a sustained overflow event.
  Word2Cache cache(SmallOptions(1024));
  const uint64_t kHot = 256;
  // Warm the hot set: several rounds so every key is re-accessed, promoted
  // to the protected segment, and known to the frequency sketch.
  for (int round = 0; round < 8; ++round) {
    for (uint64_t k = 0; k < kHot; ++k) {
      uint64_t out[2];
      if (!cache.Lookup(k, out)) InsertKey(cache, k);
    }
  }
  auto hot_hit_rate = [&] {
    int hits = 0;
    for (uint64_t k = 0; k < kHot; ++k) {
      uint64_t out[2];
      if (cache.Lookup(k, out)) {
        ++hits;
      } else {
        InsertKey(cache, k);
      }
    }
    return static_cast<double>(hits) / static_cast<double>(kHot);
  };
  const double before = hot_hit_rate();
  EXPECT_GE(before, 0.99);
  // Overflow storm: 4x capacity of one-shot keys forced through the cache.
  for (uint64_t k = 0; k < 4096; ++k) InsertKey(cache, 1'000'000 + k);
  const double after = hot_hit_rate();
  EXPECT_GE(after, before - 0.05)
      << "hit rate cratered across the overflow event";
}

TEST(Word2CacheTest, InvalidateClearsEntriesAndBumpsEpoch) {
  Word2Cache cache(SmallOptions(64));
  InsertKey(cache, 1);
  InsertKey(cache, 2);
  const uint64_t epoch_before = cache.epoch();
  cache.Invalidate();
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  EXPECT_EQ(cache.size(), 0u);
  uint64_t out[2];
  EXPECT_FALSE(cache.Lookup(1, out));
  EXPECT_FALSE(cache.Lookup(2, out));
}

TEST(Word2CacheTest, InsertWithStaleEpochTokenIsDropped) {
  Word2Cache cache(SmallOptions(64));
  const uint64_t stale = cache.epoch();
  cache.Invalidate();
  const uint64_t value[2] = {1, 2};
  cache.Insert(9, value, stale);  // computed against pre-invalidation state
  uint64_t out[2];
  EXPECT_FALSE(cache.Lookup(9, out));
  cache.Insert(9, value, cache.epoch());  // fresh token is accepted
  EXPECT_TRUE(cache.Lookup(9, out));
}

TEST(Word2CacheTest, HitPathTakesZeroShardLocks) {
  Word2Cache cache(SmallOptions(1024, 16));
  for (uint64_t k = 0; k < 100; ++k) InsertKey(cache, k);
  const uint64_t locks_before = ShardLockAcquisitions();
  uint64_t out[2];
  for (int round = 0; round < 100; ++round) {
    for (uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(cache.Lookup(k, out));
    }
  }
  EXPECT_EQ(ShardLockAcquisitions(), locks_before)
      << "the lock-free probe acquired a shard mutex";
  // Misses are lock-free too.
  EXPECT_FALSE(cache.Lookup(1 << 30, out));
  EXPECT_EQ(ShardLockAcquisitions(), locks_before);
}

TEST(Word2CacheTest, LockedProbeArmCountsLocks) {
  // Sanity for the hook itself: the bench's locked_probe arm must register.
  CacheOptions options = SmallOptions(64);
  options.locked_probe = true;
  Word2Cache cache(options);
  InsertKey(cache, 1);
  const uint64_t locks_before = ShardLockAcquisitions();
  uint64_t out[2];
  ASSERT_TRUE(cache.Lookup(1, out));
  EXPECT_EQ(ShardLockAcquisitions(), locks_before + 1);
}

TEST(Word2CacheTest, TombstoneChurnTriggersRebuildAndKeepsValues) {
  // Keep evicting in a tiny single-shard cache until tombstones force an
  // in-place rebuild; every hit must still return the exact stored words.
  Word2Cache cache(SmallOptions(32));
  uint64_t rebuilds = 0;
  for (uint64_t k = 0; k < 5000; ++k) {
    InsertKey(cache, k);
    uint64_t out[2];
    if (cache.Lookup(k, out)) {
      ASSERT_EQ(out[0], W0(k));
      ASSERT_EQ(out[1], W1(k));
    }
    rebuilds = cache.Stats().rebuilds;
  }
  EXPECT_GE(rebuilds, 1u);
  EXPECT_LE(cache.size(), 32u);
}

TEST(Word2CacheTest, ConcurrentReadersNeverSeeTornValues) {
  // The seqlock pair-consistency oracle: every stored value is a (key,
  // derived) pair, so any torn read surfaces as a mismatched pair. Writers
  // churn inserts and periodic invalidations while readers hammer lookups.
  Word2Cache cache(SmallOptions(256, 4));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t out[2];
      uint64_t k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        k = (k + 7) % 512;
        if (cache.Lookup(k, out)) {
          if (out[0] != W0(k) || out[1] != W1(k)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 200; ++round) {
      for (uint64_t k = 0; k < 512; ++k) InsertKey(cache, k);
      if (round % 50 == 49) cache.Invalidate();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(torn.load(), 0u) << "a reader observed a torn or stale-keyed value";
}

TEST(ShardedCacheTest, TypedFacadeRoundTripsSmallStructs) {
  struct Payload {
    int bucket;
    float score;
    uint64_t tag;
  };
  static_assert(sizeof(Payload) == 16);
  ShardedCache<Payload> cache(SmallOptions(64));
  cache.Insert(11, Payload{3, 0.5f, 0xabcdef}, cache.epoch());
  auto got = cache.Lookup(11);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bucket, 3);
  EXPECT_EQ(got->score, 0.5f);
  EXPECT_EQ(got->tag, 0xabcdefu);
  EXPECT_FALSE(cache.Lookup(12).has_value());
}

TEST(ShardedCacheTest, StatsExposeAdmissionCounters) {
  CacheOptions options = SmallOptions(64);
  Word2Cache cache(options);
  // Far more distinct keys than capacity: admission must reject some
  // candidates (all frequencies equal, ties keep the incumbent).
  for (uint64_t k = 0; k < 1000; ++k) InsertKey(cache, k);
  const CacheStats stats = cache.Stats();
  EXPECT_GT(stats.admit_rejects, 0u);
  EXPECT_GT(stats.evictions_window, 0u);
}

}  // namespace
}  // namespace rc::cache
