// Admission-quality oracle (ISSUE satellite): on a Zipf(1.0) working set
// interleaved with sequential one-shot scans — the adversarial trace from
// the W-TinyLFU literature — the admission-controlled cache must beat a
// plain LRU of the same capacity by at least 10 hit-rate points, because
// scan keys never accumulate the sketch frequency needed to displace the
// hot set.
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/sharded_cache.h"

namespace rc::cache {
namespace {

// Zipf(s) sampler over [0, n): precomputed CDF + binary search (same shape
// as bench/perf_net.cc's). Deterministic given the caller's mt19937_64.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += 1.0 / std::pow(double(i + 1), s);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(double(i + 1), s) / sum;
      cdf_[i] = acc;
    }
  }

  uint64_t Sample(std::mt19937_64& rng) const {
    // 53-bit uniform in [0,1) built from raw bits, so the sequence is
    // identical on every platform (uniform_real_distribution is not).
    const double u = double(rng() >> 11) * 0x1.0p-53;
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

// The Zipf+scan trace: blocks of Zipf(1.0) draws over a hot universe,
// alternating with a sequential scan over a fixed region slightly larger
// than the cache. This is LRU's worst case twice over: each scan pass wipes
// the Zipf working set, and because the scan loop exceeds capacity every
// scan key is itself evicted before its next reuse (zero scan hits). An
// admission-controlled cache keeps the hot set resident through the scans
// and retains a stable subset of the scan region in probation, which hits
// on every subsequent pass.
std::vector<uint64_t> ZipfScanTrace() {
  std::mt19937_64 rng(42);
  ZipfSampler zipf(/*n=*/16384, /*s=*/1.0);
  std::vector<uint64_t> trace;
  trace.reserve(120'000);
  constexpr uint64_t kScanBase = 1'000'000;
  constexpr uint64_t kScanLen = 2'200;  // > capacity: an LRU never hits it
  for (int i = 0; i < 10'000; ++i) trace.push_back(zipf.Sample(rng));
  for (int block = 0; block < 25; ++block) {
    for (int i = 0; i < 2'000; ++i) trace.push_back(zipf.Sample(rng));
    for (uint64_t i = 0; i < kScanLen; ++i) trace.push_back(kScanBase + i);
  }
  return trace;
}

double HitRate(Word2Cache& cache, const std::vector<uint64_t>& trace) {
  uint64_t hits = 0;
  for (uint64_t key : trace) {
    uint64_t out[2];
    if (cache.Lookup(key, out)) {
      ++hits;
    } else {
      const uint64_t value[2] = {key, ~key};
      cache.Insert(key, value, cache.epoch());
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trace.size());
}

TEST(AdmissionQualityTest, TinyLfuBeatsLruByTenPointsOnZipfPlusScan) {
  const std::vector<uint64_t> trace = ZipfScanTrace();

  CacheOptions lru_options;
  lru_options.capacity = 2048;
  lru_options.shards = 1;  // single shard: the policy sees the whole trace
  lru_options.admission = false;
  Word2Cache lru(lru_options);

  CacheOptions tlfu_options = lru_options;
  tlfu_options.admission = true;
  Word2Cache tlfu(tlfu_options);

  const double lru_rate = HitRate(lru, trace);
  const double tlfu_rate = HitRate(tlfu, trace);
  RecordProperty("lru_hit_rate", std::to_string(lru_rate));
  RecordProperty("tinylfu_hit_rate", std::to_string(tlfu_rate));
  EXPECT_GE(tlfu_rate, lru_rate + 0.10)
      << "W-TinyLFU " << tlfu_rate << " vs LRU " << lru_rate;
}

TEST(AdmissionQualityTest, ShardedTinyLfuStillBeatsShardedLru) {
  // Same oracle at the client's default shard count: per-shard sketches see
  // a 1/16 slice of the trace and must still protect the hot set.
  const std::vector<uint64_t> trace = ZipfScanTrace();

  CacheOptions lru_options;
  lru_options.capacity = 2048;
  lru_options.shards = 16;
  lru_options.admission = false;
  Word2Cache lru(lru_options);

  CacheOptions tlfu_options = lru_options;
  tlfu_options.admission = true;
  Word2Cache tlfu(tlfu_options);

  const double lru_rate = HitRate(lru, trace);
  const double tlfu_rate = HitRate(tlfu, trace);
  EXPECT_GE(tlfu_rate, lru_rate + 0.10)
      << "W-TinyLFU " << tlfu_rate << " vs LRU " << lru_rate;
}

}  // namespace
}  // namespace rc::cache
