#include "src/cache/frequency_sketch.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/hashing.h"

namespace rc::cache {
namespace {

TEST(FrequencySketchTest, UninitializedIsInert) {
  FrequencySketch sketch;
  EXPECT_FALSE(sketch.initialized());
  sketch.Observe(42);  // no crash
  EXPECT_EQ(sketch.Frequency(42), 0);
  EXPECT_FALSE(sketch.ShouldReset());
}

TEST(FrequencySketchTest, FirstAccessOnlySetsDoorkeeper) {
  FrequencySketch sketch;
  sketch.Init(128);
  const uint64_t h = HashU64(7);
  EXPECT_EQ(sketch.Frequency(h), 0);
  sketch.Observe(h);
  // One observation: the doorkeeper remembers it but the count-min rows do
  // not — estimated frequency 1 (0 from the rows + 1 doorkeeper credit).
  EXPECT_EQ(sketch.Frequency(h), 1);
}

TEST(FrequencySketchTest, FrequencyTracksRepeatedAccess) {
  FrequencySketch sketch;
  sketch.Init(128);
  const uint64_t hot = HashU64(1);
  const uint64_t cold = HashU64(2);
  for (int i = 0; i < 10; ++i) sketch.Observe(hot);
  sketch.Observe(cold);
  EXPECT_GT(sketch.Frequency(hot), sketch.Frequency(cold));
  EXPECT_GE(sketch.Frequency(hot), 8);  // 10 observes, first only sets door
}

TEST(FrequencySketchTest, SaturatesAtSixteen) {
  FrequencySketch sketch;
  sketch.Init(128);
  const uint64_t h = HashU64(3);
  for (int i = 0; i < 1000; ++i) sketch.Observe(h);
  EXPECT_EQ(sketch.Frequency(h), 16);  // 15 nibble max + doorkeeper credit
}

TEST(FrequencySketchTest, ResetHalvesCounts) {
  FrequencySketch sketch;
  sketch.Init(16);
  const uint64_t h = HashU64(4);
  for (int i = 0; i < 13; ++i) sketch.Observe(h);
  const int before = sketch.Frequency(h);
  ASSERT_GE(before, 10);
  sketch.Reset();
  EXPECT_EQ(sketch.resets(), 1u);
  // Doorkeeper cleared (-1) and nibbles halved.
  const int after = sketch.Frequency(h);
  EXPECT_LE(after, before / 2 + 1);
  EXPECT_GE(after, before / 2 - 1);
}

TEST(FrequencySketchTest, ShouldResetAfterSampleWindow) {
  FrequencySketch sketch;
  sketch.Init(16);  // sample size = 160 additions
  // Repeated keys add to the counters; spread over enough distinct keys that
  // saturation does not stall the addition count.
  uint64_t additions_budget = 0;
  for (uint64_t k = 0; !sketch.ShouldReset() && additions_budget < 100'000;
       ++k, ++additions_budget) {
    sketch.Observe(HashU64(k % 64));
  }
  EXPECT_TRUE(sketch.ShouldReset());
  sketch.Reset();
  EXPECT_FALSE(sketch.ShouldReset());  // additions restart at half the window
}

TEST(FrequencySketchTest, ConcurrentObserveIsSafeAndRoughlyAccurate) {
  FrequencySketch sketch;
  sketch.Init(1024);
  const uint64_t hot = HashU64(99);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sketch, hot, t] {
      for (int i = 0; i < 5000; ++i) {
        sketch.Observe(hot);
        sketch.Observe(HashU64(1000 + t * 5000 + i));  // one-shot noise
      }
    });
  }
  for (auto& th : threads) th.join();
  // The hot key saw 20k accesses; the sketch is lossy under contention but
  // must still report it saturated (or near), far above any one-shot key.
  EXPECT_GE(sketch.Frequency(hot), 14);
}

}  // namespace
}  // namespace rc::cache
