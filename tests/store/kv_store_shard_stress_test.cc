// Concurrency oracles for the hash-sharded KvStore (DESIGN.md "Admission-
// controlled caching & sharded store"): per-key version monotonicity and
// global uniqueness of the store-wide version counter, per-key Subscribe
// delivery ordering under concurrent cross-shard Puts, and Unsubscribe's
// in-flight drain under a Put storm. These are the suites check_tsan pins.
#include "src/store/kv_store.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rc::store {
namespace {

TEST(KvStoreShardStressTest, VersionsAreGloballyUniqueAndPerKeyMonotonic) {
  KvStore store;
  constexpr int kThreads = 8;
  constexpr int kPutsPerThread = 400;
  const std::vector<std::string> keys = {"model/a", "model/b", "feat/1",
                                         "feat/2", "spec/x"};
  // Each thread records every (key, returned version) in order; writes to
  // one key serialize on its shard lock, so the versions a single thread
  // observes for a key must be strictly increasing.
  std::vector<std::vector<std::pair<int, uint64_t>>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kPutsPerThread);
      for (int i = 0; i < kPutsPerThread; ++i) {
        const int ki = (t + i) % static_cast<int>(keys.size());
        const uint64_t v =
            store.Put(keys[ki], std::vector<uint8_t>(8, uint8_t(i)));
        ASSERT_NE(v, 0u);
        seen[t].emplace_back(ki, v);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<uint64_t> all_versions;
  std::map<int, uint64_t> max_version;
  for (int t = 0; t < kThreads; ++t) {
    std::map<int, uint64_t> last;  // per-key monotonic within a thread
    for (const auto& [ki, v] : seen[t]) {
      EXPECT_TRUE(all_versions.insert(v).second) << "version " << v
                                                 << " returned twice";
      auto it = last.find(ki);
      if (it != last.end()) {
        EXPECT_GT(v, it->second) << "non-monotonic version for " << keys[ki];
      }
      last[ki] = v;
      max_version[ki] = std::max(max_version[ki], v);
    }
  }
  EXPECT_EQ(all_versions.size(), size_t(kThreads) * kPutsPerThread);
  // The stored version for each key is the largest one any writer was given.
  for (const auto& [ki, v] : max_version) {
    EXPECT_EQ(store.GetVersion(keys[ki]), v);
  }
}

TEST(KvStoreShardStressTest, ListenerSeesEachKeysVersionsInOrder) {
  KvStore store;
  std::mutex seen_mu;
  std::map<std::string, std::vector<uint64_t>> seen;
  const int id = store.Subscribe(
      [&](const std::string& key, const VersionedBlob& blob) {
        std::lock_guard<std::mutex> lock(seen_mu);
        seen[key].push_back(blob.version);
      });
  constexpr int kThreads = 6;
  constexpr int kPutsPerThread = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPutsPerThread; ++i) {
        // Every thread hammers every key, so same-key Puts race across
        // threads and shards stay busy concurrently.
        store.Put("key/" + std::to_string((t + i) % 4),
                  std::vector<uint8_t>(4, uint8_t(t)));
      }
    });
  }
  for (auto& th : threads) th.join();
  store.Unsubscribe(id);

  size_t total = 0;
  for (const auto& [key, versions] : seen) {
    total += versions.size();
    for (size_t i = 1; i < versions.size(); ++i) {
      EXPECT_GT(versions[i], versions[i - 1])
          << key << " delivered out of order at notification " << i;
    }
  }
  EXPECT_EQ(total, size_t(kThreads) * kPutsPerThread);
}

TEST(KvStoreShardStressTest, UnsubscribeDrainsUnderPutStorm) {
  KvStore store;
  std::atomic<bool> stop{false};
  std::vector<std::thread> putters;
  putters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    putters.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        store.Put("storm/" + std::to_string((t * 31 + i++) % 16),
                  std::vector<uint8_t>(4, 1));
      }
    });
  }
  // Repeatedly subscribe a listener that reads shared state, then
  // unsubscribe mid-storm: after Unsubscribe returns, the state may be
  // "destroyed" (flagged) and any further invocation is a use-after-free.
  for (int round = 0; round < 50; ++round) {
    auto destroyed = std::make_shared<std::atomic<bool>>(false);
    std::atomic<int> invocations{0};
    const int id = store.Subscribe(
        [destroyed, &invocations](const std::string&, const VersionedBlob&) {
          EXPECT_FALSE(destroyed->load()) << "listener ran after Unsubscribe";
          invocations.fetch_add(1, std::memory_order_relaxed);
        });
    while (invocations.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    store.Unsubscribe(id);
    destroyed->store(true);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : putters) th.join();
}

TEST(KvStoreShardStressTest, SingleShardOptionPreservesBehavior) {
  // shards = 1 reproduces the old global-mutex layout (the bench control
  // arm); the public semantics must be identical.
  KvStore::Options options;
  options.shards = 1;
  KvStore store(options);
  EXPECT_EQ(store.shard_count(), 1u);
  EXPECT_EQ(store.Put("a", {1}), 1u);
  EXPECT_EQ(store.Put("a", {2}), 2u);
  EXPECT_EQ(store.Put("b", {3}), 3u);  // global counter: unique across keys
  EXPECT_EQ(store.GetVersion("a"), 2u);
  EXPECT_EQ(store.key_count(), 2u);
}

TEST(KvStoreShardStressTest, ListKeysSortedAcrossShards) {
  KvStore store;
  EXPECT_GT(store.shard_count(), 1u);
  const std::vector<std::string> keys = {"m/delta", "m/alpha", "x/zulu",
                                         "m/bravo", "a/first"};
  for (const auto& k : keys) store.Put(k, {1});
  const std::vector<std::string> listed = store.ListKeys("");
  ASSERT_EQ(listed.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(listed.begin(), listed.end()));
  EXPECT_EQ(store.ListKeys("m/").size(), 3u);
}

TEST(KvStoreShardStressTest, OutageDropsWritesOnEveryShard) {
  KvStore store;
  store.Put("a", {1});
  store.SetAvailable(false);
  // Keys hashing to different shards must all observe the outage.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(store.Put("out/" + std::to_string(i), {1}), 0u);
  }
  store.SetAvailable(true);
  EXPECT_EQ(store.key_count(), 1u);
}

}  // namespace
}  // namespace rc::store
