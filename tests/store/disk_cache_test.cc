#include "src/store/disk_cache.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace rc::store {
namespace {

class DiskCacheTest : public ::testing::Test {
 protected:
  DiskCacheTest() : dir_(::testing::TempDir() + "/rc_disk_cache_test") {
    std::filesystem::remove_all(dir_);
  }
  ~DiskCacheTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

VersionedBlob Blob(uint64_t version, std::initializer_list<uint8_t> data) {
  return VersionedBlob{version, std::vector<uint8_t>{data}};
}

TEST_F(DiskCacheTest, PutGetRoundTrip) {
  DiskCache cache(dir_, /*expiry_seconds=*/3600);
  cache.Put("model/X", Blob(3, {1, 2, 3}), /*now_unix=*/1000);
  auto got = cache.Get("model/X", 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 3u);
  EXPECT_EQ(got->data, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(DiskCacheTest, MissingKey) {
  DiskCache cache(dir_, 3600);
  EXPECT_FALSE(cache.Get("absent").has_value());
}

TEST_F(DiskCacheTest, ExpiredEntriesIgnored) {
  DiskCache cache(dir_, /*expiry_seconds=*/100);
  cache.Put("k", Blob(1, {9}), /*now_unix=*/1000);
  EXPECT_TRUE(cache.Get("k", 1099).has_value());
  EXPECT_TRUE(cache.Get("k", 1100).has_value());  // exactly at expiry: valid
  EXPECT_FALSE(cache.Get("k", 1101).has_value());
}

TEST_F(DiskCacheTest, NegativeExpiryMeansNever) {
  DiskCache cache(dir_, /*expiry_seconds=*/-1);
  cache.Put("k", Blob(1, {9}), 0);
  EXPECT_TRUE(cache.Get("k", 1'000'000'000).has_value());
}

TEST_F(DiskCacheTest, OverwriteReplaces) {
  DiskCache cache(dir_, 3600);
  cache.Put("k", Blob(1, {1}), 10);
  cache.Put("k", Blob(2, {2, 2}), 20);
  auto got = cache.Get("k", 20);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 2u);
  EXPECT_EQ(got->data.size(), 2u);
}

TEST_F(DiskCacheTest, KeysWithSlashesAndCollisions) {
  DiskCache cache(dir_, 3600);
  // These sanitize to the same alnum skeleton; the hash suffix must keep
  // them distinct.
  cache.Put("model/a", Blob(1, {1}), 0);
  cache.Put("model.a", Blob(2, {2}), 0);
  EXPECT_EQ(cache.Get("model/a", 0)->version, 1u);
  EXPECT_EQ(cache.Get("model.a", 0)->version, 2u);
}

TEST_F(DiskCacheTest, RemoveAndClear) {
  DiskCache cache(dir_, 3600);
  cache.Put("a", Blob(1, {1}), 0);
  cache.Put("b", Blob(1, {1}), 0);
  cache.Remove("a");
  EXPECT_FALSE(cache.Get("a", 0).has_value());
  EXPECT_TRUE(cache.Get("b", 0).has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get("b", 0).has_value());
}

TEST_F(DiskCacheTest, CorruptFileRejected) {
  DiskCache cache(dir_, 3600);
  cache.Put("k", Blob(1, {1, 2, 3, 4}), 0);
  // Stomp the file contents.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  EXPECT_FALSE(cache.Get("k", 0).has_value());
}

TEST_F(DiskCacheTest, EmptyPayload) {
  DiskCache cache(dir_, 3600);
  cache.Put("k", VersionedBlob{5, {}}, 0);
  auto got = cache.Get("k", 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 5u);
  EXPECT_TRUE(got->data.empty());
}

TEST_F(DiskCacheTest, SurvivesReopen) {
  {
    DiskCache cache(dir_, 3600);
    cache.Put("persist", Blob(7, {7}), 100);
  }
  DiskCache reopened(dir_, 3600);
  auto got = reopened.Get("persist", 100);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 7u);
}

}  // namespace
}  // namespace rc::store
