// Fault injection at the store boundary: every failure mode the client must
// degrade around — I/O errors, torn writes, corrupt bytes in flight and at
// rest, injected latency — is simulated here via rc::faults and must be
// observable (status codes, checksum mismatches), deterministic, and
// strictly scoped to its arming window.
#include <chrono>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/common/faults.h"
#include "src/store/disk_cache.h"
#include "src/store/kv_store.h"

namespace rc::store {
namespace {

namespace faults = rc::faults;

std::vector<uint8_t> Payload(size_t n, uint8_t fill) { return std::vector<uint8_t>(n, fill); }

class StoreFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::Registry::Global().DisarmAll(); }
  void TearDown() override { faults::Registry::Global().DisarmAll(); }
};

TEST_F(StoreFaultsTest, TryGetReportsDistinctStatuses) {
  KvStore store;
  EXPECT_EQ(store.TryGet("absent").status, KvStore::GetStatus::kNotFound);

  ASSERT_NE(store.Put("key", Payload(64, 0x11)), 0u);
  auto hit = store.TryGet("key");
  EXPECT_EQ(hit.status, KvStore::GetStatus::kOk);
  EXPECT_TRUE(hit.ok());
  EXPECT_TRUE(VerifyBlob(hit.blob));

  store.SetAvailable(false);
  auto down = store.TryGet("key");
  EXPECT_EQ(down.status, KvStore::GetStatus::kUnavailable);
  EXPECT_TRUE(down.failed());

  store.SetAvailable(true);
  faults::FaultSpec err;
  err.kind = faults::FaultKind::kError;
  faults::ScopedFault fault("kv/get", err);
  auto failed = store.TryGet("key");
  EXPECT_EQ(failed.status, KvStore::GetStatus::kError);
  EXPECT_TRUE(failed.failed());
}

TEST_F(StoreFaultsTest, PutErrorDropsWriteAndSkipsListeners) {
  KvStore store;
  int notified = 0;
  store.Subscribe([&](const std::string&, const VersionedBlob&) { ++notified; });

  faults::FaultSpec err;
  err.kind = faults::FaultKind::kError;
  err.max_fires = 1;
  faults::Registry::Global().Arm("kv/put", err);

  EXPECT_EQ(store.Put("key", Payload(32, 0x22)), 0u);  // dropped
  EXPECT_EQ(notified, 0);
  EXPECT_EQ(store.TryGet("key").status, KvStore::GetStatus::kNotFound);

  EXPECT_NE(store.Put("key", Payload(32, 0x22)), 0u);  // one-shot expired
  EXPECT_EQ(notified, 1);
}

TEST_F(StoreFaultsTest, CorruptOnReadIsTransientAndChecksumDetected) {
  KvStore store;
  ASSERT_NE(store.Put("key", Payload(128, 0x33)), 0u);

  faults::FaultSpec corrupt;
  corrupt.kind = faults::FaultKind::kCorrupt;
  corrupt.max_fires = 1;
  faults::Registry::Global().Arm("kv/get", corrupt);

  auto bad = store.TryGet("key");
  ASSERT_TRUE(bad.ok());  // the read "succeeds" — only the checksum catches it
  EXPECT_FALSE(VerifyBlob(bad.blob));

  // Read-side corruption mangles the caller's copy, not the stored bytes:
  // the very next read is clean again.
  auto good = store.TryGet("key");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(VerifyBlob(good.blob));
  EXPECT_EQ(good.blob.data, Payload(128, 0x33));
}

TEST_F(StoreFaultsTest, CorruptOnWriteIsPersistentUntilRepublish) {
  KvStore store;
  faults::FaultSpec corrupt;
  corrupt.kind = faults::FaultKind::kCorrupt;
  corrupt.max_fires = 1;
  faults::Registry::Global().Arm("kv/put", corrupt);

  // The CRC is stamped before the corruption lands, so every subsequent read
  // of this version fails verification — corruption-at-rest.
  ASSERT_NE(store.Put("key", Payload(128, 0x44)), 0u);
  for (int i = 0; i < 3; ++i) {
    auto got = store.TryGet("key");
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(VerifyBlob(got.blob));
  }

  // A clean republish heals it.
  ASSERT_NE(store.Put("key", Payload(128, 0x44)), 0u);
  auto healed = store.TryGet("key");
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(VerifyBlob(healed.blob));
}

TEST_F(StoreFaultsTest, TornWriteShortensPayloadAndFailsChecksum) {
  KvStore store;
  faults::FaultSpec torn;
  torn.kind = faults::FaultKind::kTruncate;
  torn.truncate_to = 10;
  torn.max_fires = 1;
  faults::Registry::Global().Arm("kv/put", torn);

  ASSERT_NE(store.Put("key", Payload(100, 0x55)), 0u);
  auto got = store.TryGet("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.blob.data.size(), 10u);
  EXPECT_FALSE(VerifyBlob(got.blob));
}

TEST_F(StoreFaultsTest, InjectedLatencyDelaysReads) {
  KvStore store;  // simulate_latency off: only the injected latency applies
  ASSERT_NE(store.Put("key", Payload(16, 0x66)), 0u);

  faults::FaultSpec slow;
  slow.kind = faults::FaultKind::kLatency;
  slow.latency_us = 20'000;  // 20 ms, far above scheduling noise
  faults::ScopedFault fault("kv/get", slow);

  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(store.TryGet("key").ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(), 15'000);
}

class DiskCacheFaultsTest : public StoreFaultsTest {
 protected:
  DiskCacheFaultsTest()
      : dir_(std::filesystem::temp_directory_path() / "rc_disk_faults_test") {
    std::filesystem::remove_all(dir_);
  }
  ~DiskCacheFaultsTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DiskCacheFaultsTest, WriteErrorLeavesNoEntry) {
  DiskCache cache(dir_, 3600);
  faults::FaultSpec err;
  err.kind = faults::FaultKind::kError;
  err.max_fires = 1;
  faults::Registry::Global().Arm("disk/write", err);

  VersionedBlob blob{7, Payload(64, 0x77)};
  cache.Put("key", blob, 1000);
  EXPECT_FALSE(cache.Get("key", 1000).has_value());

  cache.Put("key", blob, 1000);  // fault expired
  auto got = cache.Get("key", 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 7u);
  EXPECT_EQ(got->data, blob.data);
  EXPECT_TRUE(VerifyBlob(*got));
}

TEST_F(DiskCacheFaultsTest, TornFrameOnDiskRejected) {
  DiskCache cache(dir_, 3600);
  faults::FaultSpec torn;
  torn.kind = faults::FaultKind::kTruncate;
  torn.truncate_to = 20;  // cuts into the 36-byte header
  torn.max_fires = 1;
  faults::Registry::Global().Arm("disk/write", torn);

  cache.Put("key", VersionedBlob{1, Payload(200, 0x88)}, 1000);
  EXPECT_FALSE(cache.Get("key", 1000).has_value());
}

TEST_F(DiskCacheFaultsTest, CorruptFrameOnDiskCaughtByCrc) {
  DiskCache cache(dir_, 3600);
  faults::FaultSpec corrupt;
  corrupt.kind = faults::FaultKind::kCorrupt;
  corrupt.max_fires = 1;
  faults::Registry::Global().Arm("disk/write", corrupt);

  cache.Put("key", VersionedBlob{1, Payload(200, 0x99)}, 1000);
  // The flips may land anywhere in the sealed frame; header damage (magic,
  // length) and payload damage (CRC) must both reject the entry.
  EXPECT_FALSE(cache.Get("key", 1000).has_value());

  // Clean rewrite recovers.
  cache.Put("key", VersionedBlob{2, Payload(200, 0x99)}, 1000);
  auto got = cache.Get("key", 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 2u);
}

TEST_F(DiskCacheFaultsTest, ReadFaultsAreTransient) {
  DiskCache cache(dir_, 3600);
  cache.Put("key", VersionedBlob{3, Payload(64, 0xAA)}, 1000);

  faults::FaultSpec err;
  err.kind = faults::FaultKind::kError;
  err.max_fires = 1;
  faults::Registry::Global().Arm("disk/read", err);
  EXPECT_FALSE(cache.Get("key", 1000).has_value());
  EXPECT_TRUE(cache.Get("key", 1000).has_value());  // file untouched

  faults::FaultSpec corrupt;
  corrupt.kind = faults::FaultKind::kCorrupt;
  corrupt.max_fires = 1;
  faults::Registry::Global().Arm("disk/read", corrupt);
  EXPECT_FALSE(cache.Get("key", 1000).has_value());  // in-flight corruption
  auto got = cache.Get("key", 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, Payload(64, 0xAA));
}

}  // namespace
}  // namespace rc::store
