#include "src/store/kv_store.h"

#include <atomic>
#include <chrono>
#include <latch>
#include <thread>

#include <gtest/gtest.h>

namespace rc::store {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return {b}; }

TEST(KvStoreTest, PutGetVersioning) {
  KvStore store;
  EXPECT_EQ(store.Put("k", Bytes({1})), 1u);
  EXPECT_EQ(store.Put("k", Bytes({2})), 2u);
  auto blob = store.Get("k");
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(blob->version, 2u);
  EXPECT_EQ(blob->data, Bytes({2}));
  EXPECT_EQ(store.GetVersion("k"), 2u);
}

TEST(KvStoreTest, MissingKey) {
  KvStore store;
  EXPECT_FALSE(store.Get("missing").has_value());
  EXPECT_FALSE(store.GetVersion("missing").has_value());
}

TEST(KvStoreTest, ListKeysByPrefix) {
  KvStore store;
  store.Put("model/a", Bytes({1}));
  store.Put("model/b", Bytes({1}));
  store.Put("spec/a", Bytes({1}));
  EXPECT_EQ(store.ListKeys("model/").size(), 2u);
  EXPECT_EQ(store.ListKeys("").size(), 3u);
  EXPECT_TRUE(store.ListKeys("zzz").empty());
  EXPECT_EQ(store.key_count(), 3u);
}

TEST(KvStoreTest, OutageHidesData) {
  KvStore store;
  store.Put("k", Bytes({1}));
  store.SetAvailable(false);
  EXPECT_FALSE(store.available());
  EXPECT_FALSE(store.Get("k").has_value());
  EXPECT_TRUE(store.ListKeys("").empty());
  store.SetAvailable(true);
  EXPECT_TRUE(store.Get("k").has_value());
}

TEST(KvStoreTest, PutFailsDuringOutage) {
  // Regression: Put used to ignore the availability switch — during a
  // simulated outage reads failed but writes silently succeeded and still
  // notified listeners.
  KvStore store;
  store.Put("k", Bytes({1}));
  int notifications = 0;
  store.Subscribe([&](const std::string&, const VersionedBlob&) { ++notifications; });
  store.SetAvailable(false);
  EXPECT_EQ(store.Put("k", Bytes({2})), 0u);      // dropped, no version bump
  EXPECT_EQ(store.Put("fresh", Bytes({3})), 0u);  // dropped, key not created
  EXPECT_EQ(notifications, 0);
  store.SetAvailable(true);
  auto blob = store.Get("k");
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(blob->version, 1u);
  EXPECT_EQ(blob->data, Bytes({1}));
  EXPECT_FALSE(store.Get("fresh").has_value());
  EXPECT_EQ(store.Put("k", Bytes({4})), 2u);  // writes resume after restore
  EXPECT_EQ(notifications, 1);
}

TEST(KvStoreTest, PushNotificationsOnPut) {
  KvStore store;
  std::vector<std::pair<std::string, uint64_t>> seen;
  int id = store.Subscribe([&](const std::string& key, const VersionedBlob& blob) {
    seen.emplace_back(key, blob.version);
  });
  store.Put("a", Bytes({1}));
  store.Put("a", Bytes({2}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, uint64_t>{"a", 1}));
  EXPECT_EQ(seen[1], (std::pair<std::string, uint64_t>{"a", 2}));
  store.Unsubscribe(id);
  store.Put("a", Bytes({3}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(KvStoreTest, ListenerMayCallBackIntoStore) {
  // Listeners run outside the store lock; re-entrant reads must not
  // deadlock (the RC client reads related keys when pushed).
  KvStore store;
  store.Put("other", Bytes({9}));
  std::optional<uint64_t> observed;
  store.Subscribe([&](const std::string& key, const VersionedBlob&) {
    if (key == "trigger") observed = store.GetVersion("other");
  });
  store.Put("trigger", Bytes({1}));
  EXPECT_EQ(observed, 1u);
}

TEST(KvStoreTest, ConcurrentPutsAndGets) {
  KvStore store;
  // Start the writer and reader together, and keep reading for a minimum
  // iteration count: the writer finishing all its Puts before the reader's
  // first loop iteration must not fail the test.
  std::latch start(2);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    start.arrive_and_wait();
    for (int i = 0; i < 2000; ++i) {
      store.Put("hot", std::vector<uint8_t>(16, static_cast<uint8_t>(i)));
    }
    stop = true;
  });
  constexpr int64_t kMinReads = 500;
  int64_t reads = 0;
  start.arrive_and_wait();
  while (!stop.load() || reads < kMinReads) {
    auto blob = store.Get("hot");
    if (blob) {
      ASSERT_EQ(blob->data.size(), 16u);
      ++reads;
    }
  }
  writer.join();
  EXPECT_EQ(store.GetVersion("hot"), 2000u);
  EXPECT_GE(reads, kMinReads);
}

TEST(KvStoreTest, UnsubscribeWaitsForInFlightListener) {
  KvStore store;
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  int id = store.Subscribe([&](const std::string&, const VersionedBlob&) {
    entered = true;
    while (!release) std::this_thread::yield();
  });
  std::thread putter([&] { store.Put("k", Bytes({1})); });
  while (!entered) std::this_thread::yield();
  // The listener is now running inside Put; Unsubscribe must not return
  // until it does.
  std::atomic<bool> unsubscribed{false};
  std::thread unsub([&] {
    store.Unsubscribe(id);
    unsubscribed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unsubscribed.load());
  release = true;
  unsub.join();
  putter.join();
  EXPECT_TRUE(unsubscribed.load());
  // The listener is gone: further Puts must not re-enter it.
  store.Put("k", Bytes({2}));
}

TEST(LatencyProfileTest, MedianAndTail) {
  LatencyProfile profile;  // defaults: 2.9ms median, 5.6ms p99 (paper)
  Rng rng(5);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = profile.SampleUs(rng);
  std::sort(samples.begin(), samples.end());
  double median = samples[samples.size() / 2];
  double p99 = samples[samples.size() * 99 / 100];
  EXPECT_NEAR(median, 2900.0, 150.0);
  EXPECT_NEAR(p99, 5600.0, 500.0);
}

TEST(KvStoreTest, SimulatedLatencySlowsAccess) {
  KvStore::Options options;
  options.simulate_latency = true;
  options.latency.median_us = 2000.0;
  options.latency.p99_us = 3000.0;
  KvStore store(options);
  store.Put("k", Bytes({1}));
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) store.Get("k");
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GT(elapsed, 10 * 1000);  // >= ~10 x 2ms median, loosely
}

}  // namespace
}  // namespace rc::store
