#include "src/store/kv_store.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace rc::store {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return {b}; }

TEST(KvStoreTest, PutGetVersioning) {
  KvStore store;
  EXPECT_EQ(store.Put("k", Bytes({1})), 1u);
  EXPECT_EQ(store.Put("k", Bytes({2})), 2u);
  auto blob = store.Get("k");
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(blob->version, 2u);
  EXPECT_EQ(blob->data, Bytes({2}));
  EXPECT_EQ(store.GetVersion("k"), 2u);
}

TEST(KvStoreTest, MissingKey) {
  KvStore store;
  EXPECT_FALSE(store.Get("missing").has_value());
  EXPECT_FALSE(store.GetVersion("missing").has_value());
}

TEST(KvStoreTest, ListKeysByPrefix) {
  KvStore store;
  store.Put("model/a", Bytes({1}));
  store.Put("model/b", Bytes({1}));
  store.Put("spec/a", Bytes({1}));
  EXPECT_EQ(store.ListKeys("model/").size(), 2u);
  EXPECT_EQ(store.ListKeys("").size(), 3u);
  EXPECT_TRUE(store.ListKeys("zzz").empty());
  EXPECT_EQ(store.key_count(), 3u);
}

TEST(KvStoreTest, OutageHidesData) {
  KvStore store;
  store.Put("k", Bytes({1}));
  store.SetAvailable(false);
  EXPECT_FALSE(store.available());
  EXPECT_FALSE(store.Get("k").has_value());
  EXPECT_TRUE(store.ListKeys("").empty());
  store.SetAvailable(true);
  EXPECT_TRUE(store.Get("k").has_value());
}

TEST(KvStoreTest, PushNotificationsOnPut) {
  KvStore store;
  std::vector<std::pair<std::string, uint64_t>> seen;
  int id = store.Subscribe([&](const std::string& key, const VersionedBlob& blob) {
    seen.emplace_back(key, blob.version);
  });
  store.Put("a", Bytes({1}));
  store.Put("a", Bytes({2}));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, uint64_t>{"a", 1}));
  EXPECT_EQ(seen[1], (std::pair<std::string, uint64_t>{"a", 2}));
  store.Unsubscribe(id);
  store.Put("a", Bytes({3}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(KvStoreTest, ListenerMayCallBackIntoStore) {
  // Listeners run outside the store lock; re-entrant reads must not
  // deadlock (the RC client reads related keys when pushed).
  KvStore store;
  store.Put("other", Bytes({9}));
  std::optional<uint64_t> observed;
  store.Subscribe([&](const std::string& key, const VersionedBlob&) {
    if (key == "trigger") observed = store.GetVersion("other");
  });
  store.Put("trigger", Bytes({1}));
  EXPECT_EQ(observed, 1u);
}

TEST(KvStoreTest, ConcurrentPutsAndGets) {
  KvStore store;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      store.Put("hot", std::vector<uint8_t>(16, static_cast<uint8_t>(i)));
    }
    stop = true;
  });
  int64_t reads = 0;
  while (!stop) {
    auto blob = store.Get("hot");
    if (blob) {
      ASSERT_EQ(blob->data.size(), 16u);
      ++reads;
    }
  }
  writer.join();
  EXPECT_EQ(store.GetVersion("hot"), 2000u);
  EXPECT_GT(reads, 0);
}

TEST(LatencyProfileTest, MedianAndTail) {
  LatencyProfile profile;  // defaults: 2.9ms median, 5.6ms p99 (paper)
  Rng rng(5);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = profile.SampleUs(rng);
  std::sort(samples.begin(), samples.end());
  double median = samples[samples.size() / 2];
  double p99 = samples[samples.size() * 99 / 100];
  EXPECT_NEAR(median, 2900.0, 150.0);
  EXPECT_NEAR(p99, 5600.0, 500.0);
}

TEST(KvStoreTest, SimulatedLatencySlowsAccess) {
  KvStore::Options options;
  options.simulate_latency = true;
  options.latency.median_us = 2000.0;
  options.latency.p99_us = 3000.0;
  KvStore store(options);
  store.Put("k", Bytes({1}));
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) store.Get("k");
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GT(elapsed, 10 * 1000);  // >= ~10 x 2ms median, loosely
}

}  // namespace
}  // namespace rc::store
