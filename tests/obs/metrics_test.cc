#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace rc::obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(CounterTest, ConcurrentHammeringIsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketBoundsAreLogSpaced) {
  HistogramOptions opts;
  opts.min = 1.0;
  opts.max = 100.0;
  opts.buckets_per_decade = 1;
  Histogram h(opts);
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_NEAR(h.bounds()[1], 10.0, 1e-9);
  EXPECT_NEAR(h.bounds()[2], 100.0, 1e-7);
}

TEST(HistogramTest, RecordPlacesValuesInExpectedBuckets) {
  HistogramOptions opts;
  opts.min = 1.0;
  opts.max = 100.0;
  opts.buckets_per_decade = 1;
  Histogram h(opts);
  h.Record(0.5);     // at/below min -> bucket 0
  h.Record(-3.0);    // negative -> bucket 0
  h.Record(5.0);     // (1, 10] -> bucket 1
  h.Record(10.0);    // boundary lands in its own bucket, not the next
  h.Record(1000.0);  // above max -> overflow
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 5u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 0u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_NEAR(snap.sum, 0.5 - 3.0 + 5.0 + 10.0 + 1000.0, 1e-9);
  EXPECT_NEAR(snap.Mean(), snap.sum / 5.0, 1e-12);
}

TEST(HistogramTest, ConcurrentRecordKeepsExactCount) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// The quantile must come out within one bucket width of the exact sorted
// oracle: at the default 8 buckets per decade the reported upper bound is at
// most 10^(1/8) = 1.334x the true sample and never below it.
TEST(HistogramTest, QuantilesMatchSortedOracleWithinOneBucket) {
  Histogram h;
  std::vector<double> samples;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / static_cast<double>(1ULL << 53);
  };
  constexpr int kSamples = 20000;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    double v = std::pow(10.0, next() * 6.0);  // log-uniform in [1, 1e6]
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  auto snap = h.TakeSnapshot();
  const double ratio = std::pow(10.0, 1.0 / 8.0);
  for (double q : {0.50, 0.95, 0.99, 0.999}) {
    uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(kSamples))));
    double oracle = samples[rank - 1];
    double reported = snap.Quantile(q);
    EXPECT_GE(reported, oracle * (1.0 - 1e-9)) << "q=" << q;
    EXPECT_LE(reported, oracle * ratio * (1.0 + 1e-9)) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileOnEmptySnapshotIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.TakeSnapshot().Quantile(0.5), 0.0);
}

TEST(RegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("rc_test_total", {{"k", "v"}}, "help");
  Counter& b = reg.GetCounter("rc_test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& c = reg.GetCounter("rc_test_total", {{"k", "other"}});
  EXPECT_NE(&a, &c);
  Counter& d = reg.GetCounter("rc_test_total");
  EXPECT_NE(&a, &d);
}

TEST(RegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("rc_test_total", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.GetCounter("rc_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(RegistryTest, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.GetCounter("rc_test_metric");
  EXPECT_THROW(reg.GetGauge("rc_test_metric"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("rc_test_metric"), std::logic_error);
}

TEST(RegistryTest, HistogramOptionsApplyOnFirstRegistrationOnly) {
  MetricsRegistry reg;
  HistogramOptions narrow;
  narrow.min = 1.0;
  narrow.max = 10.0;
  narrow.buckets_per_decade = 1;
  Histogram& a = reg.GetHistogram("rc_test_us", narrow);
  HistogramOptions wide;
  wide.min = 0.001;
  wide.max = 1e9;
  Histogram& b = reg.GetHistogram("rc_test_us", wide);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), a.bounds().size());
}

TEST(RegistryTest, CollectReturnsSortedSamples) {
  MetricsRegistry reg;
  reg.GetCounter("rc_b_total").Increment(2);
  reg.GetCounter("rc_a_total").Increment(1);
  reg.GetGauge("rc_g").Set(7.0);
  reg.GetHistogram("rc_h_us").Record(3.0);
  RegistrySnapshot snap = reg.Collect();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].info.name, "rc_a_total");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].info.name, "rc_b_total");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);
}

TEST(RegistryTest, ConcurrentGetOrCreateAndWrite) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("rc_shared_total").Increment();
        reg.GetHistogram("rc_shared_us").Record(1.0 + i % 100);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("rc_shared_total").Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("rc_shared_us").TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ScopedTimerTest, RecordsRoughlyElapsedTime) {
  Histogram h;
  {
    ScopedTimer timer(&h);
  }
  auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
  ScopedTimer noop(nullptr);  // null histogram must be a no-op
  EXPECT_EQ(h.TakeSnapshot().count, 1u);
}

// --- sliding-window view (epoch-ring rotation, virtualized time) ---

TEST(HistogramWindowTest, DisabledWindowIsEmptyAndFree) {
  HistogramOptions opts;
  opts.window_epochs = 0;
  Histogram h(opts);
  EXPECT_FALSE(h.has_window());
  h.Record(5.0);
  Histogram::Snapshot w = h.TakeWindowSnapshot(NowNs());
  EXPECT_EQ(w.count, 0u);
  EXPECT_EQ(h.TakeSnapshot().count, 1u);  // lifetime unaffected
}

TEST(HistogramWindowTest, WindowSeesRecentAndForgetsOld) {
  HistogramOptions opts;
  opts.window_epochs = 3;
  opts.window_epoch_ns = 1'000'000'000ull;  // 1s epochs, 3s window
  Histogram h(opts);
  const uint64_t t0 = 100'000'000'000ull;  // arbitrary virtual origin
  h.RecordAt(10.0, t0);
  h.RecordAt(20.0, t0 + 500'000'000ull);
  EXPECT_EQ(h.TakeWindowSnapshot(t0 + 600'000'000ull).count, 2u);
  // 4s later both records have aged past the 3s window...
  EXPECT_EQ(h.TakeWindowSnapshot(t0 + 4'000'000'000ull).count, 0u);
  // ...but the lifetime view keeps them forever.
  EXPECT_EQ(h.TakeSnapshot().count, 2u);
}

// A load change shows up in window quantiles within one window span while
// the lifetime quantile still remembers the old regime — the property the
// /metrics _window_p99 series exists for.
TEST(HistogramWindowTest, StepLoadConvergesWithinOneWindow) {
  HistogramOptions opts;
  opts.window_epochs = 6;
  opts.window_epoch_ns = 1'000'000'000ull;
  Histogram h(opts);
  uint64_t now = 50'000'000'000ull;
  // Regime A: 1000 fast samples (~10us) spread over 3s.
  for (int i = 0; i < 1000; ++i) {
    h.RecordAt(10.0, now + static_cast<uint64_t>(i) * 3'000'000ull);
  }
  now += 3'000'000'000ull;
  Histogram::Snapshot before = h.TakeWindowSnapshot(now);
  EXPECT_LE(before.Quantile(0.99), 20.0);
  // Regime B: latency jumps 100x. One full window later the window p99
  // reflects only the new regime.
  now += 6'000'000'000ull;  // old samples age out entirely
  for (int i = 0; i < 1000; ++i) {
    h.RecordAt(1000.0, now + static_cast<uint64_t>(i) * 3'000'000ull);
  }
  now += 3'000'000'000ull;
  Histogram::Snapshot after = h.TakeWindowSnapshot(now);
  EXPECT_EQ(after.count, 1000u);
  EXPECT_GE(after.Quantile(0.99), 1000.0);
  EXPECT_LE(after.Quantile(0.99), 1500.0);
  // Lifetime stays monotone and cumulative across both regimes.
  Histogram::Snapshot life = h.TakeSnapshot();
  EXPECT_EQ(life.count, 2000u);
  EXPECT_LE(life.Quantile(0.5), 20.0);  // half the samples are still fast
}

// Ring reuse: epochs far enough apart land in the same ring slot; the CAS
// claim must zero the stale contents rather than accumulate them.
TEST(HistogramWindowTest, SlotReclaimZeroesStaleEpoch) {
  HistogramOptions opts;
  opts.window_epochs = 2;
  opts.window_epoch_ns = 1'000'000'000ull;  // ring of 3 slots
  Histogram h(opts);
  const uint64_t t0 = 10'000'000'000ull;
  for (int i = 0; i < 100; ++i) h.RecordAt(1.0, t0);
  // Same slot (epoch multiple of ring size), much later.
  const uint64_t t1 = t0 + 9'000'000'000ull;
  h.RecordAt(2.0, t1);
  Histogram::Snapshot w = h.TakeWindowSnapshot(t1);
  EXPECT_EQ(w.count, 1u);  // the 100 stale samples did not leak in
  EXPECT_EQ(h.TakeSnapshot().count, 101u);
}

TEST(HistogramWindowTest, ConcurrentRotationNeverLosesLifetimeSamples) {
  HistogramOptions opts;
  opts.window_epochs = 2;
  opts.window_epoch_ns = 1'000'000ull;  // 1ms epochs force constant rotation
  Histogram h(opts);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(3.0);
    });
  }
  for (auto& t : threads) t.join();
  // Window counts may drop in-flight samples during a claim race; lifetime
  // counts must be exact.
  EXPECT_EQ(h.TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(h.TakeWindowSnapshot(NowNs()).count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace rc::obs
