#include "src/obs/export.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace rc::obs {
namespace {

// One instrument of each kind with fully determined values, so the
// exposition text can be matched verbatim.
void FillDemoRegistry(MetricsRegistry& reg) {
  reg.GetCounter("rc_demo_requests", {{"path", "/x"}}, "requests served").Increment(3);
  reg.GetGauge("rc_demo_queue", {}, "queue depth").Set(1.5);
  HistogramOptions opts;
  opts.min = 1.0;
  opts.max = 100.0;
  opts.buckets_per_decade = 1;
  Histogram& h = reg.GetHistogram("rc_demo_latency_us", opts, {}, "demo latency (us)");
  h.Record(0.5);     // bucket le=1
  h.Record(5.0);     // bucket le=10
  h.Record(1000.0);  // overflow
}

TEST(PrometheusTextTest, GoldenExposition) {
  MetricsRegistry reg;
  FillDemoRegistry(reg);
  const std::string expected =
      "# HELP rc_demo_requests requests served\n"
      "# TYPE rc_demo_requests counter\n"
      "rc_demo_requests{path=\"/x\"} 3\n"
      "# HELP rc_demo_queue queue depth\n"
      "# TYPE rc_demo_queue gauge\n"
      "rc_demo_queue 1.5\n"
      "# HELP rc_demo_latency_us demo latency (us)\n"
      "# TYPE rc_demo_latency_us histogram\n"
      "rc_demo_latency_us_bucket{le=\"1\"} 1\n"
      "rc_demo_latency_us_bucket{le=\"10\"} 2\n"
      "rc_demo_latency_us_bucket{le=\"+Inf\"} 3\n"
      "rc_demo_latency_us_sum 1005.5\n"
      "rc_demo_latency_us_count 3\n"
      "# TYPE rc_demo_latency_us_window_count gauge\n"
      "rc_demo_latency_us_window_count 3\n"
      "# TYPE rc_demo_latency_us_window_p50 gauge\n"
      "rc_demo_latency_us_window_p50 10\n"
      "# TYPE rc_demo_latency_us_window_p95 gauge\n"
      "rc_demo_latency_us_window_p95 100\n"
      "# TYPE rc_demo_latency_us_window_p99 gauge\n"
      "rc_demo_latency_us_window_p99 100\n";
  EXPECT_EQ(PrometheusText(reg), expected);
}

TEST(JsonTextTest, GoldenSnapshot) {
  MetricsRegistry reg;
  FillDemoRegistry(reg);
  const std::string expected =
      "{\n"
      "  \"metrics\": {\n"
      "    \"rc_demo_requests{path=\\\"/x\\\"}\": {\"type\":\"counter\",\"value\":3},\n"
      "    \"rc_demo_queue\": {\"type\":\"gauge\",\"value\":1.5},\n"
      "    \"rc_demo_latency_us\": {\"type\":\"histogram\",\"count\":3,\"sum\":1005.5,"
      "\"mean\":335.1666667,\"p50\":10,\"p95\":100,\"p99\":100,\"p999\":100,"
      "\"window_count\":3,\"window_p50\":10,\"window_p95\":100,\"window_p99\":100}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(JsonText(reg), expected);
}

TEST(JsonTextTest, EmptyRegistryRendersEmptyObject) {
  MetricsRegistry reg;
  EXPECT_EQ(JsonText(reg), "{\n  \"metrics\": {}\n}\n");
}

class TempFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "rc_obs_export_test.json";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadFile() const {
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string path_;
};

TEST_F(TempFileTest, WriteTextFileRoundTrips) {
  ASSERT_TRUE(WriteTextFile(path_, "hello\n"));
  EXPECT_EQ(ReadFile(), "hello\n");
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir-xyz/file", "x"));
}

TEST_F(TempFileTest, MergePreservesOtherSeriesAndUpdatesOwn) {
  MetricsRegistry first;
  first.GetCounter("rc_x_total").Increment(1);
  first.GetGauge("rc_keep").Set(5.0);
  ASSERT_TRUE(MergeJsonMetricsFile(path_, first));

  MetricsRegistry second;
  second.GetCounter("rc_x_total").Increment(7);
  ASSERT_TRUE(MergeJsonMetricsFile(path_, second));

  std::string text = ReadFile();
  // rc_x_total overwritten by the second registry; rc_keep untouched.
  EXPECT_NE(text.find("\"rc_x_total\": {\"type\":\"counter\",\"value\":7}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"rc_keep\": {\"type\":\"gauge\",\"value\":5}"), std::string::npos)
      << text;
}

TEST_F(TempFileTest, MergeOverwritesUnparseableFile) {
  ASSERT_TRUE(WriteTextFile(path_, "not json at all"));
  MetricsRegistry reg;
  reg.GetCounter("rc_x_total").Increment(2);
  ASSERT_TRUE(MergeJsonMetricsFile(path_, reg));
  EXPECT_NE(ReadFile().find("\"rc_x_total\""), std::string::npos);
}

TEST_F(TempFileTest, PeriodicDumperWritesFinalSnapshotOnStop) {
  MetricsRegistry reg;
  reg.GetCounter("rc_dumped_total").Increment(9);
  {
    PeriodicDumper dumper(reg, path_, PeriodicDumper::Format::kPrometheus,
                          std::chrono::milliseconds(60000));
    // Destructor stops the thread and writes a final snapshot even though
    // the interval never elapsed.
  }
  std::string text = ReadFile();
  EXPECT_NE(text.find("rc_dumped_total 9"), std::string::npos) << text;
}

}  // namespace
}  // namespace rc::obs
