#include "src/obs/trace_events.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rc::obs {
namespace {

// TraceLog::Global() is a process singleton, so every test disables it and
// drains leftovers on entry and exit.
class TraceEventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceLog::Global().Disable();
    TraceLog::Global().Drain();
  }
  void TearDown() override {
    TraceLog::Global().Disable();
    TraceLog::Global().Drain();
  }
};

TEST_F(TraceEventsTest, DisabledSpansRecordNothing) {
  {
    TraceSpan span("test/disabled");
  }
  EXPECT_TRUE(TraceLog::Global().Drain().empty());
}

TEST_F(TraceEventsTest, SpanRecordsNameAndDuration) {
  TraceLog::Global().Enable();
  {
    TraceSpan span("test/span");
  }
  std::vector<TraceEvent> events = TraceLog::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/span");
  EXPECT_GT(events[0].start_ns, 0u);
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(TraceEventsTest, SpanArmedAtConstructionOutlivesDisable) {
  TraceLog::Global().Enable();
  {
    TraceSpan span("test/late");
    TraceLog::Global().Disable();
    // The span was armed while tracing was on; it still records.
  }
  EXPECT_EQ(TraceLog::Global().Drain().size(), 1u);
}

TEST_F(TraceEventsTest, RingIsBoundedAndKeepsNewestEvents) {
  TraceLog::Global().Enable(/*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    TraceSpan span("test/bounded");
  }
  std::vector<TraceEvent> events = TraceLog::Global().Drain();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first within the ring.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST_F(TraceEventsTest, DrainClearsTheLog) {
  TraceLog::Global().Enable();
  {
    TraceSpan span("test/cleared");
  }
  EXPECT_EQ(TraceLog::Global().Drain().size(), 1u);
  EXPECT_TRUE(TraceLog::Global().Drain().empty());
}

TEST_F(TraceEventsTest, ThreadsGetDistinctTids) {
  TraceLog::Global().Enable();
  std::thread other([] { TraceSpan span("test/other-thread"); });
  other.join();
  {
    TraceSpan span("test/main-thread");
  }
  std::vector<TraceEvent> events = TraceLog::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceEventsTest, DrainJsonIsChromeTraceShaped) {
  TraceLog::Global().Enable();
  {
    TraceSpan span("test/json");
  }
  std::string json = TraceLog::Global().DrainJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"test/json\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_TRUE(TraceLog::Global().Drain().empty());  // DrainJson also drains
}

TEST_F(TraceEventsTest, ConcurrentSpansAllLand) {
  TraceLog::Global().Enable(/*ring_capacity=*/4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("test/concurrent");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(TraceLog::Global().Drain().size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace rc::obs
