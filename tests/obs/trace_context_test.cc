// Trace-context layer: the thread-local context stack under nested
// TraceSpans, deterministic 1-in-N root sampling, synthetic spans and
// follows-from links, and the TraceStore lifecycle (finish classification,
// per-bucket reservoir, late spans after retention, bounded active map).
#include "src/obs/trace_context.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/trace_events.h"

namespace rc::obs {
namespace {

class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceStore::Global().Configure({});  // defaults
    TraceStore::Global().Clear();
    Tracer::Global().SetSampleEvery(0);
  }
  void TearDown() override {
    Tracer::Global().SetSampleEvery(0);
    TraceStore::Global().Clear();
  }
};

TEST_F(TraceContextTest, NoContextByDefault) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceSpan span("test/untracked");
  EXPECT_FALSE(CurrentTraceContext().valid());
  EXPECT_FALSE(span.context().valid());
}

TEST_F(TraceContextTest, SamplingIsDeterministicOneInN) {
  Tracer::Global().SetSampleEvery(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (Tracer::Global().StartTrace().valid()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);
  Tracer::Global().SetSampleEvery(0);
  EXPECT_FALSE(Tracer::Global().StartTrace().valid());
}

TEST_F(TraceContextTest, NestedSpansFormParentLinkedTree) {
  Tracer::Global().SetSampleEvery(1);
  TraceContext root_ctx = Tracer::Global().StartTrace();
  ASSERT_TRUE(root_ctx.valid());
  EXPECT_EQ(root_ctx.span_id, 0u);  // root span will be parentless

  uint64_t root_span_id = 0;
  {
    TraceSpan root("test/root", root_ctx);
    root_span_id = root.context().span_id;
    EXPECT_EQ(CurrentTraceContext().span_id, root_span_id);
    {
      TraceSpan child("test/child");
      EXPECT_EQ(CurrentTraceContext().span_id, child.context().span_id);
      TraceSpan grandchild("test/grandchild");
      EXPECT_EQ(grandchild.context().trace_id, root_ctx.trace_id);
    }
    // Stack unwound back to the root span.
    EXPECT_EQ(CurrentTraceContext().span_id, root_span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());

  // The finished (root ended => trace finished) tree is on /tracez.
  std::string json = TraceStore::Global().TracezJson();
  EXPECT_NE(json.find("test/root"), std::string::npos);
  EXPECT_NE(json.find("test/child"), std::string::npos);
  EXPECT_NE(json.find("test/grandchild"), std::string::npos);
  EXPECT_EQ(TraceStore::Global().finished_count(), 1u);
}

TEST_F(TraceContextTest, ScopedContextInstallsAndRestores) {
  TraceContext wire{0x1234, 0x5678, true};
  {
    ScopedTraceContext scope(wire);
    EXPECT_EQ(CurrentTraceContext().trace_id, 0x1234u);
    TraceSpan span("test/handler");
    EXPECT_EQ(span.context().trace_id, 0x1234u);
    EXPECT_NE(span.context().span_id, 0x5678u);  // own id, parented under wire
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST_F(TraceContextTest, RecordSpanUnderAndLinksRenderInJson) {
  TraceContext parent{0xABC, 0xDEF, true};
  uint64_t id = RecordSpanUnder("test/synthetic", parent, 1000, 500,
                                /*link_trace_id=*/0x77, /*link_span_id=*/0x99);
  EXPECT_NE(id, 0u);
  TraceStore::Global().FinishTrace(parent.trace_id, 123'000);
  std::string json = TraceStore::Global().TracezJson();
  EXPECT_NE(json.find("test/synthetic"), std::string::npos);
  EXPECT_NE(json.find("\"link_trace_id\":\"0x77\""), std::string::npos);
  EXPECT_NE(json.find("\"link_span_id\":\"0x99\""), std::string::npos);

  // Unsampled parents record nothing.
  EXPECT_EQ(RecordSpanUnder("test/nope", TraceContext{}, 0, 0), 0u);
}

TEST_F(TraceContextTest, FinishClassifiesIntoLatencyBuckets) {
  // 50us -> first bucket (<=100us); 50ms -> fourth (<=100ms).
  TraceContext fast{0x1, 0x0, true};
  RecordSpanUnder("test/fast", fast, 0, 50'000);
  TraceStore::Global().FinishTrace(0x1, 50'000);
  TraceContext slow{0x2, 0x0, true};
  RecordSpanUnder("test/slow", slow, 0, 50'000'000);
  TraceStore::Global().FinishTrace(0x2, 50'000'000);

  std::string json = TraceStore::Global().TracezJson();
  // Both buckets show one seen trace; ids render in their bucket.
  EXPECT_NE(json.find("\"le_us\":100,\"seen\":1"), std::string::npos);
  EXPECT_NE(json.find("\"le_us\":100000,\"seen\":1"), std::string::npos);
  EXPECT_EQ(TraceStore::Global().finished_count(), 2u);
}

TEST_F(TraceContextTest, FinishIsIdempotentPerTrace) {
  TraceContext ctx{0x9, 0x0, true};
  RecordSpanUnder("test/span", ctx, 0, 1000);
  TraceStore::Global().FinishTrace(0x9, 10'000);      // first caller classifies
  TraceStore::Global().FinishTrace(0x9, 99'000'000);  // loopback double-finish
  EXPECT_EQ(TraceStore::Global().finished_count(), 1u);
  std::string json = TraceStore::Global().TracezJson();
  // Classified by the first finish (10us bucket), not the second.
  EXPECT_NE(json.find("\"le_us\":100,\"seen\":1"), std::string::npos);
}

TEST_F(TraceContextTest, RetainedTracesAbsorbLateSpans) {
  TraceContext ctx{0x42, 0x0, true};
  RecordSpanUnder("test/early", ctx, 0, 1000);
  TraceStore::Global().FinishTrace(0x42, 5'000);
  // The response-write span lands after the finish (server flushes last).
  RecordSpanUnder("test/late", ctx, 2000, 700);
  std::string json = TraceStore::Global().TracezJson();
  EXPECT_NE(json.find("test/early"), std::string::npos);
  EXPECT_NE(json.find("test/late"), std::string::npos);
}

TEST_F(TraceContextTest, ReservoirKeepsAtMostKPerBucket) {
  TraceStore::Options options;
  options.traces_per_bucket = 2;
  TraceStore::Global().Configure(options);
  TraceStore::Global().Clear();
  for (uint64_t i = 1; i <= 20; ++i) {
    TraceContext ctx{i, 0x0, true};
    RecordSpanUnder("test/one", ctx, 0, 1000);
    TraceStore::Global().FinishTrace(i, 1'000);  // all in the first bucket
  }
  std::string json = TraceStore::Global().TracezJson();
  EXPECT_NE(json.find("\"seen\":20"), std::string::npos);
  // Exactly K retained trace objects render.
  size_t count = 0;
  for (size_t pos = json.find("\"trace_id\""); pos != std::string::npos;
       pos = json.find("\"trace_id\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST_F(TraceContextTest, ActiveMapIsBounded) {
  TraceStore::Options options;
  options.max_active_traces = 8;
  TraceStore::Global().Configure(options);
  TraceStore::Global().Clear();
  // 100 traces that never finish: the active map must not grow unboundedly.
  for (uint64_t i = 1; i <= 100; ++i) {
    TraceContext ctx{i, 0x0, true};
    RecordSpanUnder("test/leak", ctx, 0, 1000);
  }
  std::string json = TraceStore::Global().TracezJson();
  size_t active_pos = json.find("\"active\":");
  ASSERT_NE(active_pos, std::string::npos);
  int active = std::stoi(json.substr(active_pos + 9));  // strlen("\"active\":")
  EXPECT_LE(active, 8);
}

TEST_F(TraceContextTest, SpanIdsUniqueAcrossThreads) {
  Tracer::Global().SetSampleEvery(1);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceContext ctx = Tracer::Global().StartTrace();
        TraceSpan span("test/mt", ctx);
        ids[static_cast<size_t>(t)].push_back(span.context().span_id);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace rc::obs
