#include "src/analysis/periodicity.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/trace/utilization.h"
#include "src/trace/workload_model.h"

namespace rc::analysis {
namespace {

using rc::trace::UtilizationParams;
using rc::trace::VmRecord;
using rc::trace::WorkloadClass;

std::vector<double> Diurnal(int days, double amp, double noise_amp, uint64_t seed) {
  rc::Rng rng(seed);
  std::vector<double> series(static_cast<size_t>(days) * kSlotsPerDay);
  for (size_t i = 0; i < series.size(); ++i) {
    double hours = static_cast<double>(i) * 5.0 / 60.0;
    series[i] = 0.3 + amp * 0.5 * (1.0 + std::sin(2.0 * std::numbers::pi * hours / 24.0)) +
                noise_amp * (rng.NextDouble() - 0.5);
  }
  return series;
}

TEST(PeriodicityTest, DetectsDiurnalSeries) {
  EXPECT_EQ(ClassifySeries(Diurnal(3, 0.3, 0.02, 1)), WorkloadClass::kInteractive);
  EXPECT_EQ(ClassifySeries(Diurnal(5, 0.2, 0.05, 2)), WorkloadClass::kInteractive);
}

TEST(PeriodicityTest, FlatAndNoisySeriesAreDelayInsensitive) {
  rc::Rng rng(3);
  std::vector<double> flat(3 * kSlotsPerDay, 0.4);
  EXPECT_EQ(ClassifySeries(flat), WorkloadClass::kDelayInsensitive);
  std::vector<double> noise(3 * kSlotsPerDay);
  for (auto& v : noise) v = rng.NextDouble();
  EXPECT_EQ(ClassifySeries(noise), WorkloadClass::kDelayInsensitive);
}

TEST(PeriodicityTest, ShortSeriesUnknown) {
  // Under 3 days of slots -> Unknown regardless of shape.
  EXPECT_EQ(ClassifySeries(Diurnal(2, 0.4, 0.0, 4)), WorkloadClass::kUnknown);
  EXPECT_EQ(ClassifySeries({}), WorkloadClass::kUnknown);
}

TEST(PeriodicityTest, TwelveHourHarmonicCounts) {
  // Workday patterns often put power at the 12h harmonic.
  std::vector<double> series(3 * kSlotsPerDay);
  for (size_t i = 0; i < series.size(); ++i) {
    double hours = static_cast<double>(i) * 5.0 / 60.0;
    series[i] = 0.3 + 0.2 * std::sin(2.0 * std::numbers::pi * hours / 12.0);
  }
  EXPECT_EQ(ClassifySeries(series), WorkloadClass::kInteractive);
}

TEST(PeriodicityTest, HighFrequencyOscillationNotDiurnal) {
  // A 1-hour cycle is periodic but not at the diurnal scale.
  std::vector<double> series(3 * kSlotsPerDay);
  for (size_t i = 0; i < series.size(); ++i) {
    double hours = static_cast<double>(i) * 5.0 / 60.0;
    series[i] = 0.3 + 0.2 * std::sin(2.0 * std::numbers::pi * hours / 1.0);
  }
  EXPECT_EQ(ClassifySeries(series), WorkloadClass::kDelayInsensitive);
}

TEST(PeriodicityTest, ClassifyVmShortLifetimeUnknown) {
  VmRecord vm;
  vm.created = 0;
  vm.deleted = 2 * kDay;
  vm.util.diurnal_amp = 0.4;
  EXPECT_EQ(ClassifyVm(vm), WorkloadClass::kUnknown);
}

TEST(PeriodicityTest, ClassifyVmFromSynthesizedTelemetry) {
  VmRecord interactive;
  interactive.created = kHour;
  interactive.deleted = interactive.created + 10 * kDay;
  interactive.util.seed = 99;
  interactive.util.base = 0.1;
  interactive.util.diurnal_amp = 0.3;
  interactive.util.noise_amp = 0.02;
  EXPECT_EQ(ClassifyVm(interactive), WorkloadClass::kInteractive);

  VmRecord batch = interactive;
  batch.util.diurnal_amp = 0.0;
  batch.util.base = 0.6;
  EXPECT_EQ(ClassifyVm(batch), WorkloadClass::kDelayInsensitive);
}

TEST(PeriodicityTest, AgreesWithGenerativeGroundTruth) {
  // End-to-end agreement on a real trace: recall for interactive must be
  // ~1 (the conservative direction); precision should be high after the
  // threshold tuning.
  rc::trace::WorkloadConfig config;
  config.target_vm_count = 12000;
  config.num_subscriptions = 500;
  config.seed = 321;
  rc::trace::Trace t = rc::trace::WorkloadModel(config).Generate();
  int64_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (const auto& vm : t.vms()) {
    if (vm.true_class == WorkloadClass::kUnknown) continue;
    bool truth = vm.true_class == WorkloadClass::kInteractive;
    bool pred = ClassifyVm(vm) == WorkloadClass::kInteractive;
    if (truth && pred) ++tp;
    if (!truth && pred) ++fp;
    if (truth && !pred) ++fn;
    if (!truth && !pred) ++tn;
  }
  ASSERT_GT(tp + fn, 10);  // the trace must contain interactive VMs
  EXPECT_GE(static_cast<double>(tp) / static_cast<double>(tp + fn), 0.95);
  EXPECT_GE(static_cast<double>(tp) / static_cast<double>(tp + fp), 0.8);
}

}  // namespace
}  // namespace rc::analysis
