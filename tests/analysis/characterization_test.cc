#include "src/analysis/characterization.h"

#include <gtest/gtest.h>

#include "src/trace/workload_model.h"

namespace rc::analysis {
namespace {

using rc::trace::Party;
using rc::trace::Trace;
using rc::trace::VmRecord;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

const Trace& SharedTrace() {
  static const Trace* trace = [] {
    WorkloadConfig config;
    config.target_vm_count = 25000;
    config.num_subscriptions = 1200;
    config.seed = 11;
    return new Trace(WorkloadModel(config).Generate());
  }();
  return *trace;
}

TEST(CharacterizationTest, UtilizationCdfsFig1Shape) {
  auto all = BuildUtilizationCdfs(SharedTrace(), PartyFilter::kAll);
  // Fig. 1: ~60% of VMs have average utilization below 20%.
  EXPECT_NEAR(all.avg.Eval(0.20), 0.66, 0.12);
  // ~40% have P95 below 50%.
  EXPECT_NEAR(all.p95_max.Eval(0.50), 0.40, 0.12);
  // First-party sits above third-party (lower utilization).
  auto first = BuildUtilizationCdfs(SharedTrace(), PartyFilter::kFirst);
  auto third = BuildUtilizationCdfs(SharedTrace(), PartyFilter::kThird);
  EXPECT_GT(first.avg.Eval(0.25), third.avg.Eval(0.25));
  EXPECT_GT(first.p95_max.Eval(0.8), third.p95_max.Eval(0.8));
}

TEST(CharacterizationTest, SizeBreakdownsFig2And3) {
  auto cores = CoreBreakdown(SharedTrace(), PartyFilter::kAll);
  double small = cores.Fraction("1") + cores.Fraction("2");
  EXPECT_NEAR(small, 0.8, 0.1);
  auto memory = MemoryBreakdown(SharedTrace(), PartyFilter::kAll);
  double tiny = memory.Fraction("0.75") + memory.Fraction("1.75") + memory.Fraction("3.5");
  EXPECT_NEAR(tiny, 0.7, 0.12);
}

TEST(CharacterizationTest, DeploymentGroupsPartitionVms) {
  auto groups = GroupDeployments(SharedTrace());
  int64_t total = 0;
  for (const auto& g : groups) {
    EXPECT_GE(g.vm_count, 1);
    EXPECT_GE(g.cores, g.vm_count);  // at least one core per VM
    total += g.vm_count;
  }
  EXPECT_EQ(total, static_cast<int64_t>(SharedTrace().vm_count()));
}

TEST(CharacterizationTest, DeploymentSizeCdfFig4) {
  auto cdf = DeploymentSizeCdf(SharedTrace(), PartyFilter::kAll);
  // Fig. 4: ~40% single-VM deployments, ~80% at most 5 VMs. Our generator
  // calibrates buckets {1} and (1,10]; assert the qualitative shape.
  EXPECT_GT(cdf.Eval(1.0), 0.30);
  EXPECT_GT(cdf.Eval(5.0), 0.65);
  EXPECT_GT(cdf.Eval(100.0), 0.97);
}

TEST(CharacterizationTest, LifetimeCdfFig5) {
  auto cdf = LifetimeCdf(SharedTrace(), PartyFilter::kAll);
  // Knee around one day.
  EXPECT_GT(cdf.Eval(static_cast<double>(kDay)), 0.85);
  // A broad spectrum below it.
  EXPECT_GT(cdf.Eval(static_cast<double>(kHour)), 0.4);
  EXPECT_LT(cdf.Eval(static_cast<double>(15 * kMinute)), 0.55);
}

TEST(CharacterizationTest, CoreHoursByClassFig6) {
  auto truth = CoreHoursByClass(SharedTrace(), PartyFilter::kAll, /*use_fft=*/false);
  ASSERT_GT(truth.total(), 0.0);
  // Delay-insensitive dominates; interactive is a meaningful minority.
  EXPECT_GT(truth.delay_insensitive / truth.total(), 0.4);
  EXPECT_GT(truth.interactive / truth.total(), 0.03);
  // FFT-derived classification approximately agrees with ground truth.
  auto fft = CoreHoursByClass(SharedTrace(), PartyFilter::kAll, /*use_fft=*/true);
  EXPECT_NEAR(fft.interactive / fft.total(), truth.interactive / truth.total(), 0.05);
  EXPECT_NEAR(fft.unknown, truth.unknown, truth.total() * 0.02);
}

TEST(CharacterizationTest, HourlyArrivalsFig7) {
  auto bins = HourlyArrivals(SharedTrace(), /*region=*/0, 7 * kDay, 14 * kDay);
  ASSERT_EQ(bins.size(), 168u);
  int64_t total = 0, day_total = 0, night_total = 0;
  for (size_t h = 0; h < bins.size(); ++h) {
    total += bins[h];
    int hour = static_cast<int>(h % 24);
    if (hour >= 10 && hour < 18) day_total += bins[h];
    if (hour < 6) night_total += bins[h];
  }
  ASSERT_GT(total, 100);
  // Diurnal: work hours busier than night (same 8h vs 6h window adjusted).
  EXPECT_GT(day_total / 8.0, night_total / 6.0);
}

TEST(CharacterizationTest, SubscriptionCovMostlyBelowOne) {
  const Trace& t = SharedTrace();
  auto avg_covs = SubscriptionCoVs(t, [](const VmRecord& vm) { return vm.avg_cpu; });
  // Section 3.2: ~80% of subscriptions have CoV of avg utilization < 1.
  EXPECT_GT(FractionBelow(avg_covs, 1.0), 0.75);
  auto core_covs = SubscriptionCoVs(
      t, [](const VmRecord& vm) { return static_cast<double>(vm.cores); });
  // Section 3.3: nearly all subscriptions have core CoV < 1.
  EXPECT_GT(FractionBelow(core_covs, 1.0), 0.9);
  auto lifetime_covs = SubscriptionCoVs(
      t, [](const VmRecord& vm) { return static_cast<double>(vm.lifetime()); });
  // Section 3.5: ~75% of subscriptions have lifetime CoV < 1.
  EXPECT_GT(FractionBelow(lifetime_covs, 1.0), 0.55);
}

TEST(CharacterizationTest, SingleTypeSubscriptionsSection31) {
  // Paper: 96% of subscriptions create VMs of a single type.
  EXPECT_NEAR(SingleTypeSubscriptionFraction(SharedTrace()), 0.96, 0.04);
}

TEST(CharacterizationTest, MetricCorrelationsFig8) {
  auto m = MetricCorrelations(SharedTrace(), PartyFilter::kAll);
  ASSERT_EQ(m.names.size(), 7u);
  auto idx = [&](const std::string& name) {
    for (size_t i = 0; i < m.names.size(); ++i) {
      if (m.names[i] == name) return i;
    }
    ADD_FAILURE() << "missing column " << name;
    return size_t{0};
  };
  size_t avg = idx("avg util"), p95 = idx("p95 util"), cores = idx("cores"),
         mem = idx("memory");
  // Fig. 8: the two utilization metrics strongly positively correlated.
  EXPECT_GT(m.at(avg, p95), 0.5);
  // Cores and memory strongly positively correlated (size catalog).
  EXPECT_GT(m.at(cores, mem), 0.8);
  // Diagonal is 1, matrix symmetric.
  for (size_t i = 0; i < m.names.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 1.0);
    for (size_t j = 0; j < m.names.size(); ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
    }
  }
}

TEST(CharacterizationTest, PartyFilters) {
  const Trace& t = SharedTrace();
  size_t first = 0, third = 0;
  for (const auto& vm : t.vms()) {
    if (Matches(vm, PartyFilter::kFirst)) ++first;
    if (Matches(vm, PartyFilter::kThird)) ++third;
    EXPECT_TRUE(Matches(vm, PartyFilter::kAll));
  }
  EXPECT_EQ(first + third, t.vm_count());
  EXPECT_STREQ(ToString(PartyFilter::kFirst), "first-party");
}

}  // namespace
}  // namespace rc::analysis
