// Golden-value regression tests for the Section 3 characterization figures.
// Unlike characterization_test.cc, which asserts the qualitative shapes the
// paper reports, these pin the exact numbers produced from one fixed trace
// seed. The workload generator and every analysis routine are deterministic
// (seeded xoshiro RNG, no wall-clock), so any drift here means a behavioural
// change to the generator or the analyses — intentional changes must update
// the goldens consciously.
#include <gtest/gtest.h>

#include "src/analysis/characterization.h"
#include "src/trace/workload_model.h"

namespace rc::analysis {
namespace {

using rc::trace::Trace;
using rc::trace::VmRecord;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

// Smaller than the shape-test trace to keep runtime down; the values are
// pinned to this exact configuration.
const Trace& GoldenTrace() {
  static const Trace* trace = [] {
    WorkloadConfig config;
    config.target_vm_count = 8000;
    config.num_subscriptions = 500;
    config.seed = 4242;
    return new Trace(WorkloadModel(config).Generate());
  }();
  return *trace;
}

// CDF evaluations are counts/n on a deterministic trace; the tolerance only
// absorbs libm differences that could nudge a borderline sample across a
// boundary, not real drift.
constexpr double kTol = 0.015;

TEST(GoldenCharacterizationTest, TraceShapeIsPinned) {
  const Trace& t = GoldenTrace();
  EXPECT_EQ(t.vm_count(), 8000u);
  EXPECT_EQ(t.subscriptions().size(), 500u);
}

TEST(GoldenCharacterizationTest, UtilizationCdfFig1) {
  auto cdfs = BuildUtilizationCdfs(GoldenTrace(), PartyFilter::kAll);
  EXPECT_NEAR(cdfs.avg.Eval(0.10), 0.427875, kTol);
  EXPECT_NEAR(cdfs.avg.Eval(0.20), 0.641875, kTol);
  EXPECT_NEAR(cdfs.avg.Eval(0.50), 0.913500, kTol);
  EXPECT_NEAR(cdfs.p95_max.Eval(0.50), 0.470125, kTol);
  EXPECT_NEAR(cdfs.p95_max.Eval(0.90), 0.841625, kTol);
}

TEST(GoldenCharacterizationTest, LifetimeCdfFig5) {
  auto cdf = LifetimeCdf(GoldenTrace(), PartyFilter::kAll);
  EXPECT_NEAR(cdf.Eval(static_cast<double>(15 * kMinute)), 0.356872, kTol);
  EXPECT_NEAR(cdf.Eval(static_cast<double>(kHour)), 0.631739, kTol);
  EXPECT_NEAR(cdf.Eval(static_cast<double>(kDay)), 0.940521, kTol);
}

TEST(GoldenCharacterizationTest, DeploymentSizeCdfFig4) {
  auto cdf = DeploymentSizeCdf(GoldenTrace(), PartyFilter::kAll);
  EXPECT_NEAR(cdf.Eval(1.0), 0.511310, kTol);
  EXPECT_NEAR(cdf.Eval(10.0), 0.958969, kTol);
  EXPECT_NEAR(cdf.Eval(100.0), 1.000000, kTol);
}

TEST(GoldenCharacterizationTest, CoreHoursByClassFig6) {
  auto split = CoreHoursByClass(GoldenTrace(), PartyFilter::kAll, /*use_fft=*/false);
  ASSERT_GT(split.total(), 0.0);
  EXPECT_NEAR(split.delay_insensitive / split.total(), 0.650662, kTol);
  EXPECT_NEAR(split.interactive / split.total(), 0.185652, kTol);
}

TEST(GoldenCharacterizationTest, SubscriptionCovSection32) {
  const Trace& t = GoldenTrace();
  auto avg_covs = SubscriptionCoVs(t, [](const VmRecord& vm) { return vm.avg_cpu; });
  EXPECT_NEAR(FractionBelow(avg_covs, 1.0), 0.777778, kTol);
  auto lifetime_covs = SubscriptionCoVs(
      t, [](const VmRecord& vm) { return static_cast<double>(vm.lifetime()); });
  EXPECT_NEAR(FractionBelow(lifetime_covs, 1.0), 0.611111, kTol);
}

TEST(GoldenCharacterizationTest, SingleTypeSubscriptionsSection31) {
  EXPECT_NEAR(SingleTypeSubscriptionFraction(GoldenTrace()), 0.956284, kTol);
}

}  // namespace
}  // namespace rc::analysis
