#include "src/analysis/spearman.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc::analysis {
namespace {

TEST(FractionalRanksTest, SimpleOrdering) {
  auto ranks = FractionalRanks(std::vector<double>{30.0, 10.0, 20.0});
  EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(FractionalRanksTest, TiesGetAverageRank) {
  auto ranks = FractionalRanks(std::vector<double>{5.0, 1.0, 5.0});
  // 1.0 -> rank 1; the two 5.0s share ranks 2 and 3 -> 2.5 each.
  EXPECT_EQ(ranks, (std::vector<double>{2.5, 1.0, 2.5}));
}

TEST(SpearmanTest, PerfectMonotone) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {10, 100, 1000, 10000, 100000};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {5, 4, 3, 2, 1};
  EXPECT_NEAR(SpearmanCorrelation(x, z), -1.0, 1e-12);
}

TEST(SpearmanTest, RobustToMonotoneTransforms) {
  Rng rng(3);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = std::exp(2.0 * x[i]);  // monotone transform
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, IndependentNearZero) {
  Rng rng(5);
  std::vector<double> x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 0.0, 0.05);
}

TEST(SpearmanTest, DegenerateInputs) {
  EXPECT_EQ(SpearmanCorrelation(std::vector<double>{1.0}, std::vector<double>{2.0}), 0.0);
  std::vector<double> constant = {3.0, 3.0, 3.0};
  std::vector<double> varying = {1.0, 2.0, 3.0};
  EXPECT_EQ(SpearmanCorrelation(constant, varying), 0.0);
  EXPECT_THROW(
      SpearmanCorrelation(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      std::invalid_argument);
}

TEST(SpearmanMatrixTest, SymmetricWithUnitDiagonal) {
  Rng rng(7);
  std::vector<std::vector<double>> cols(3, std::vector<double>(200));
  for (auto& col : cols) {
    for (auto& v : col) v = rng.Normal();
  }
  // Make column 2 correlated with column 0.
  for (size_t i = 0; i < 200; ++i) cols[2][i] = cols[0][i] + 0.1 * cols[2][i];
  auto m = SpearmanMatrix({"a", "b", "c"}, cols);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 1.0);
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
  }
  EXPECT_GT(m.at(0, 2), 0.9);
}

TEST(SpearmanMatrixTest, ValidatesShape) {
  EXPECT_THROW(SpearmanMatrix({"a"}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rc::analysis
