#include "src/sched/scheduler.h"

#include <gtest/gtest.h>

#include "src/sched/policies.h"

namespace rc::sched {
namespace {

VmRequest Vm(uint64_t id, int cores, bool production, double util = 1.0) {
  VmRequest vm;
  vm.vm_id = id;
  vm.cores = cores;
  vm.memory_gb = 1.0;
  vm.production = production;
  vm.predicted_util_fraction = util;
  return vm;
}

std::vector<std::unique_ptr<Rule>> BaselineRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<StrictFitRule>());
  rules.push_back(std::make_unique<PreferNonEmptyRule>());
  return rules;
}

TEST(SchedulerTest, PacksTightly) {
  Cluster cluster(ClusterConfig{3, 16, 112.0});
  Scheduler scheduler(&cluster, BaselineRules());
  // First VM opens a server; subsequent VMs pile onto it (best fit).
  EXPECT_TRUE(scheduler.Schedule(Vm(1, 4, true)).has_value());
  auto second = scheduler.Schedule(Vm(2, 4, true));
  ASSERT_TRUE(second.has_value());
  auto third = scheduler.Schedule(Vm(3, 4, true));
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(cluster.server(*second).alloc_cores, cluster.server(*third).alloc_cores);
  int used = 0;
  for (int i = 0; i < cluster.size(); ++i) {
    if (!cluster.server(i).empty()) ++used;
  }
  EXPECT_EQ(used, 1);
}

TEST(SchedulerTest, FailsWhenFull) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  Scheduler scheduler(&cluster, BaselineRules());
  EXPECT_TRUE(scheduler.Schedule(Vm(1, 16, true)).has_value());
  EXPECT_FALSE(scheduler.Schedule(Vm(2, 1, true)).has_value());
}

TEST(SchedulerTest, CompleteFreesCapacity) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  Scheduler scheduler(&cluster, BaselineRules());
  VmRequest big = Vm(1, 16, true);
  auto server = scheduler.Schedule(big);
  ASSERT_TRUE(server.has_value());
  scheduler.Complete(big, *server);
  EXPECT_TRUE(scheduler.Schedule(Vm(2, 16, true)).has_value());
}

TEST(SchedulerTest, SoftRuleSkippedWhenItWouldEmpty) {
  // Chain: strict fit (hard) + prefer-non-empty (soft). With an empty
  // cluster the soft rule would eliminate everything; it must be skipped.
  Cluster cluster(ClusterConfig{2, 16, 112.0});
  Scheduler scheduler(&cluster, BaselineRules());
  EXPECT_TRUE(scheduler.Schedule(Vm(1, 2, true)).has_value());
}

TEST(PolicyTest, BaselineNeverOversubscribes) {
  Cluster cluster(ClusterConfig{2, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kBaseline;
  SchedulingPolicy policy(config, &cluster, nullptr);
  int placed = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    VmRequest vm = Vm(i, 2, i % 2 == 0);
    if (policy.Place(vm).has_value()) ++placed;
  }
  EXPECT_EQ(placed, 16);  // 32 cores / 2
  for (int s = 0; s < cluster.size(); ++s) {
    EXPECT_LE(cluster.server(s).alloc_cores, 16.0);
  }
}

TEST(PolicyTest, NaiveOversubscribesToAllocationCap) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kNaive;
  SchedulingPolicy policy(config, &cluster, nullptr);
  int placed = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    VmRequest vm = Vm(i, 2, /*production=*/false);
    if (policy.Place(vm).has_value()) ++placed;
  }
  EXPECT_EQ(placed, 10);  // 125% of 16 = 20 cores
}

TEST(PolicyTest, RcInformedHardRespectsUtilizationCap) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcInformedHard;
  // Predictor: always bucket 3 (75-100%) with high confidence -> books
  // 100% of allocation; cap binds at 16 booked cores.
  SchedulingPolicy policy(config, &cluster, [](const VmRequest&) {
    return rc::core::Prediction::Of(3, 0.9);
  });
  int placed = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    VmRequest vm = Vm(i, 2, false);
    if (policy.Place(vm).has_value()) ++placed;
  }
  EXPECT_EQ(placed, 8);  // util cap (16 cores at 1.0) binds before alloc cap
}

TEST(PolicyTest, RcInformedUsesBucketHighValue) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcInformedSoft;
  SchedulingPolicy policy(config, &cluster, [](const VmRequest&) {
    return rc::core::Prediction::Of(0, 0.95);  // 0-25% bucket
  });
  VmRequest vm = Vm(1, 4, false);
  EXPECT_DOUBLE_EQ(policy.UtilFractionFor(vm), 0.25);
}

TEST(PolicyTest, LowConfidenceAssumesFullUtilization) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcInformedSoft;
  config.confidence_threshold = 0.6;
  SchedulingPolicy policy(config, &cluster, [](const VmRequest&) {
    return rc::core::Prediction::Of(0, 0.59);
  });
  EXPECT_DOUBLE_EQ(policy.UtilFractionFor(Vm(1, 4, false)), 1.0);
}

TEST(PolicyTest, NoPredictionAssumesFullUtilization) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcInformedSoft;
  SchedulingPolicy policy(config, &cluster, [](const VmRequest&) {
    return rc::core::Prediction::None();
  });
  EXPECT_DOUBLE_EQ(policy.UtilFractionFor(Vm(1, 4, false)), 1.0);
}

TEST(PolicyTest, OracleUsesTrueBucket) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcSoftRight;
  SchedulingPolicy policy(config, &cluster, nullptr);
  rc::trace::VmRecord record;
  record.p95_max_cpu = 0.6;  // bucket 2 -> high value 0.75
  VmRequest vm = Vm(1, 4, false);
  vm.source = &record;
  EXPECT_DOUBLE_EQ(policy.UtilFractionFor(vm), 0.75);
}

TEST(PolicyTest, WrongPolicyNeverPicksTrueBucket) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcSoftWrong;
  SchedulingPolicy policy(config, &cluster, nullptr);
  rc::trace::VmRecord record;
  record.p95_max_cpu = 0.6;  // true bucket 2 -> high value 0.75
  VmRequest vm = Vm(1, 4, false);
  vm.source = &record;
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(policy.UtilFractionFor(vm), 0.75);
  }
}

TEST(PolicyTest, BucketShiftSensitivity) {
  Cluster cluster(ClusterConfig{1, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcSoftRight;
  config.bucket_shift = 1;
  SchedulingPolicy policy(config, &cluster, nullptr);
  rc::trace::VmRecord record;
  record.p95_max_cpu = 0.3;  // bucket 1, shifted to 2 -> 0.75
  VmRequest vm = Vm(1, 4, false);
  vm.source = &record;
  EXPECT_DOUBLE_EQ(policy.UtilFractionFor(vm), 0.75);
  record.p95_max_cpu = 0.99;  // bucket 3 stays 3 (clamped)
  EXPECT_DOUBLE_EQ(policy.UtilFractionFor(vm), 1.0);
}

TEST(PolicyTest, ProductionAndNonProductionSegregated) {
  Cluster cluster(ClusterConfig{2, 16, 112.0});
  PolicyConfig config;
  config.kind = PolicyKind::kRcInformedSoft;
  SchedulingPolicy policy(config, &cluster, [](const VmRequest&) {
    return rc::core::Prediction::Of(0, 0.9);
  });
  VmRequest prod = Vm(1, 4, true);
  VmRequest nonprod = Vm(2, 4, false);
  auto s1 = policy.Place(prod);
  auto s2 = policy.Place(nonprod);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(cluster.server(*s1).kind, ServerKind::kNonOversubscribable);
  EXPECT_EQ(cluster.server(*s2).kind, ServerKind::kOversubscribable);
}

TEST(PolicyTest, ToStringNames) {
  EXPECT_STREQ(ToString(PolicyKind::kBaseline), "Baseline");
  EXPECT_STREQ(ToString(PolicyKind::kRcInformedSoft), "RC-informed-soft");
  EXPECT_STREQ(ToString(PolicyKind::kRcSoftWrong), "RC-soft-wrong");
}

}  // namespace
}  // namespace rc::sched
