#include "src/sched/simulator.h"

#include <gtest/gtest.h>

#include "src/trace/workload_model.h"

namespace rc::sched {
namespace {

using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

// Compact scheduler-study workload: first-party only, light tail (see
// bench/sched_* for the full-size version).
WorkloadConfig SimWorkload(int64_t vms) {
  WorkloadConfig config;
  config.target_vm_count = vms;
  config.duration = 7 * kDay;
  config.num_subscriptions = 400;
  config.frac_first_party = 1.0;
  config.first_party_production_prob = 0.71;
  config.lifetime_cap_days = 5.0;
  config.lifetime_tail_alpha = 1.0;
  config.popularity_cap = 0.0015;
  config.resident_interactive_vm_frac = 0.002;
  config.deploy_vms_marginal = {0.49, 0.41, 0.10, 0.0};
  // Hotter than the default first-party mix so oversubscription actually
  // produces >100% readings at this miniature scale.
  config.first_avg_util_marginal = {0.55, 0.3, 0.1, 0.05};
  config.first_p95_given_low_avg = {0.1, 0.1, 0.2, 0.6};
  config.seed = 4242;
  return config;
}

const Trace& SimTrace() {
  static const Trace* trace =
      new Trace(WorkloadModel(SimWorkload(30000)).Generate());
  return *trace;
}

SimConfig SmallSim() {
  SimConfig config;
  config.cluster = ClusterConfig{96, 16, 112.0};
  config.horizon = 7 * kDay;
  return config;
}

SimResult RunPolicy(PolicyKind kind, const SimConfig& sim_config,
                    OversubParams oversub = {}) {
  Cluster cluster(sim_config.cluster);
  PolicyConfig config;
  config.kind = kind;
  config.oversub = oversub;
  SchedulingPolicy policy(config, &cluster, nullptr);
  ClusterSimulator sim(sim_config);
  return sim.Run(RequestsFromTrace(SimTrace(), sim_config.horizon), policy);
}

TEST(SimulatorTest, RequestsSortedAndTagged) {
  auto requests = RequestsFromTrace(SimTrace(), 7 * kDay);
  ASSERT_FALSE(requests.empty());
  SimTime prev = -1;
  int64_t nonprod = 0;
  for (const auto& r : requests) {
    ASSERT_GE(r.arrival, prev);
    prev = r.arrival;
    ASSERT_NE(r.source, nullptr);
    ASSERT_GT(r.departure, r.arrival);
    if (!r.production) ++nonprod;
  }
  // ~29% non-production (paper: 71% production tags).
  double frac = static_cast<double>(nonprod) / static_cast<double>(requests.size());
  EXPECT_NEAR(frac, 0.29, 0.08);
}

TEST(SimulatorTest, BaselineNeverExceedsPhysical) {
  SimResult result = RunPolicy(PolicyKind::kBaseline, SmallSim());
  EXPECT_EQ(result.overload_readings, 0);
  EXPECT_EQ(result.oversub_placements, 0);
  EXPECT_GT(result.occupied_readings, 0);
  EXPECT_GT(result.mean_occupied_utilization, 0.0);
  EXPECT_LE(result.p99_utilization, 1.0 + 1e-9);
}

TEST(SimulatorTest, CountsAllArrivals) {
  SimResult result = RunPolicy(PolicyKind::kBaseline, SmallSim());
  EXPECT_EQ(result.total_vms,
            static_cast<int64_t>(RequestsFromTrace(SimTrace(), 7 * kDay).size()));
}

TEST(SimulatorTest, OverCapacityClusterFails) {
  SimConfig tiny = SmallSim();
  tiny.cluster.num_servers = 4;
  SimResult result = RunPolicy(PolicyKind::kBaseline, tiny);
  EXPECT_GT(result.failures, 0);
  EXPECT_GT(result.failure_rate(), 0.5);
}

TEST(SimulatorTest, OracleBeatsWrongOnOverloads) {
  // The §6.2 headline, in miniature: with a cluster sized so that
  // oversubscription happens, correct P95 predictions produce far fewer
  // >100% readings than adversarially wrong ones.
  // A low-failure regime (like the paper's study): in a saturated cluster
  // the soft utilization cap is constantly disregarded and every policy
  // degenerates to the same packing. MAX_UTIL at 90% leaves slack for the
  // max-over-p95 tail, which can overload even under perfect predictions
  // when many high percentiles align — an effect the paper itself notes.
  SimConfig hot = SmallSim();
  hot.cluster.num_servers = 240;
  OversubParams slack{1.25, 0.9};
  SimResult right = RunPolicy(PolicyKind::kRcSoftRight, hot, slack);
  SimResult wrong = RunPolicy(PolicyKind::kRcSoftWrong, hot, slack);
  SimResult naive = RunPolicy(PolicyKind::kNaive, hot, slack);
  EXPECT_GT(naive.oversub_placements, 0);
  EXPECT_GT(wrong.overload_readings, 0);
  EXPECT_LT(right.overload_readings, wrong.overload_readings);
  EXPECT_LT(right.overload_readings, naive.overload_readings);
}

TEST(SimulatorTest, UtilizationInflationSensitivity) {
  SimConfig plain = SmallSim();
  SimConfig inflated = SmallSim();
  inflated.util_inflation = 0.25;
  SimResult base = RunPolicy(PolicyKind::kNaive, plain);
  SimResult hot = RunPolicy(PolicyKind::kNaive, inflated);
  EXPECT_GT(hot.mean_occupied_utilization, base.mean_occupied_utilization + 0.2);
  EXPECT_GE(hot.overload_readings, base.overload_readings);
}

TEST(SimulatorTest, DeterministicForSameInputs) {
  SimResult a = RunPolicy(PolicyKind::kRcSoftRight, SmallSim());
  SimResult b = RunPolicy(PolicyKind::kRcSoftRight, SmallSim());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.overload_readings, b.overload_readings);
  EXPECT_EQ(a.occupied_readings, b.occupied_readings);
}

TEST(SimulatorTest, MaxOversubSweepMonotoneOversubscription) {
  // Lower MAX_OVERSUB -> fewer oversubscribed placements.
  SimConfig hot = SmallSim();
  hot.cluster.num_servers = 72;
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (double oversub : {1.25, 1.15, 1.0}) {
    Cluster cluster(hot.cluster);
    PolicyConfig config;
    config.kind = PolicyKind::kRcSoftRight;
    config.oversub.max_oversub = oversub;
    SchedulingPolicy policy(config, &cluster, nullptr);
    ClusterSimulator sim(hot);
    SimResult result = sim.Run(RequestsFromTrace(SimTrace(), hot.horizon), policy);
    EXPECT_LE(result.oversub_placements, prev);
    prev = result.oversub_placements;
    if (oversub == 1.0) {
      EXPECT_EQ(result.oversub_placements, 0);
    }
  }
}

}  // namespace
}  // namespace rc::sched
