#include "src/sched/cluster.h"

#include <gtest/gtest.h>

namespace rc::sched {
namespace {

VmRequest Vm(int cores, double mem, bool production, double util = 1.0) {
  VmRequest vm;
  vm.cores = cores;
  vm.memory_gb = mem;
  vm.production = production;
  vm.predicted_util_fraction = util;
  return vm;
}

ClusterConfig SmallCluster() { return ClusterConfig{4, 16, 112.0}; }

TEST(ClusterTest, PlaceTagsEmptyServer) {
  Cluster cluster(SmallCluster());
  cluster.PlaceVm(Vm(2, 7, /*production=*/true), 0);
  EXPECT_EQ(cluster.server(0).kind, ServerKind::kNonOversubscribable);
  cluster.PlaceVm(Vm(2, 7, /*production=*/false), 1);
  EXPECT_EQ(cluster.server(1).kind, ServerKind::kOversubscribable);
}

TEST(ClusterTest, LedgersTrackPlacements) {
  Cluster cluster(SmallCluster());
  VmRequest a = Vm(4, 14, false, 0.5);
  VmRequest b = Vm(2, 7, false, 0.25);
  cluster.PlaceVm(a, 0);
  cluster.PlaceVm(b, 0);
  const Server& s = cluster.server(0);
  EXPECT_DOUBLE_EQ(s.alloc_cores, 6.0);
  EXPECT_DOUBLE_EQ(s.alloc_mem, 21.0);
  EXPECT_DOUBLE_EQ(s.util_cores, 0.5 * 4 + 0.25 * 2);
  EXPECT_EQ(s.active_vms, 2);
  cluster.CompleteVm(a, 0);
  EXPECT_DOUBLE_EQ(cluster.server(0).alloc_cores, 2.0);
  EXPECT_DOUBLE_EQ(cluster.server(0).util_cores, 0.5);
}

TEST(ClusterTest, ProductionServersSkipUtilLedger) {
  Cluster cluster(SmallCluster());
  cluster.PlaceVm(Vm(4, 14, /*production=*/true, 0.5), 0);
  EXPECT_DOUBLE_EQ(cluster.server(0).util_cores, 0.0);
}

TEST(ClusterTest, DrainResetsToEmpty) {
  Cluster cluster(SmallCluster());
  VmRequest vm = Vm(4, 14, false, 0.3);
  cluster.PlaceVm(vm, 2);
  EXPECT_FALSE(cluster.server(2).empty());
  cluster.CompleteVm(vm, 2);
  EXPECT_TRUE(cluster.server(2).empty());
  EXPECT_DOUBLE_EQ(cluster.server(2).alloc_cores, 0.0);
  // A drained server can be re-tagged by the next placement.
  cluster.PlaceVm(Vm(1, 2, true), 2);
  EXPECT_EQ(cluster.server(2).kind, ServerKind::kNonOversubscribable);
}

TEST(ClusterTest, FitChecks) {
  Cluster cluster(SmallCluster());
  cluster.PlaceVm(Vm(14, 100, true), 0);
  EXPECT_TRUE(cluster.FitsStrict(Vm(2, 12, true), cluster.server(0)));
  EXPECT_FALSE(cluster.FitsStrict(Vm(4, 4, true), cluster.server(0)));   // cores
  EXPECT_FALSE(cluster.FitsStrict(Vm(2, 13, true), cluster.server(0)));  // memory
  EXPECT_TRUE(cluster.FitsMemory(Vm(16, 12, true), cluster.server(0)));
}

}  // namespace
}  // namespace rc::sched
