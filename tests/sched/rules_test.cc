#include "src/sched/rules.h"

#include <numeric>

#include <gtest/gtest.h>

namespace rc::sched {
namespace {

VmRequest Vm(int cores, bool production, double util = 1.0) {
  VmRequest vm;
  vm.cores = cores;
  vm.memory_gb = 1.0;
  vm.production = production;
  vm.predicted_util_fraction = util;
  return vm;
}

std::vector<int> AllServers(const Cluster& cluster) {
  std::vector<int> ids(static_cast<size_t>(cluster.size()));
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

class RulesTest : public ::testing::Test {
 protected:
  RulesTest() : cluster_(ClusterConfig{4, 16, 112.0}) {
    // Server 0: production, half full. Server 1: oversubscribable with low
    // booked utilization. Server 2: oversubscribable near the allocation
    // cap. Server 3: empty.
    cluster_.PlaceVm(Vm(8, true), 0);
    cluster_.PlaceVm(Vm(8, false, 0.25), 1);
    VmRequest big = Vm(16, false, 0.5);
    cluster_.PlaceVm(big, 2);
    cluster_.PlaceVm(Vm(3, false, 0.5), 2);  // alloc 19 of max 20 (125%)
  }
  Cluster cluster_;
};

TEST_F(RulesTest, StrictFitRule) {
  StrictFitRule rule;
  auto candidates = AllServers(cluster_);
  rule.Filter(Vm(8, true), cluster_, candidates);
  // Fits on 0 (8+8=16), 1 (8+8=16), 3 (empty); not 2 (19+8).
  EXPECT_EQ(candidates, (std::vector<int>{0, 1, 3}));
}

TEST_F(RulesTest, OversubFitProductionSide) {
  OversubFitRule rule(OversubParams{}, /*enforce_util_check=*/true);
  auto candidates = AllServers(cluster_);
  rule.Filter(Vm(4, true), cluster_, candidates);
  // Production VMs: non-oversubscribable (0) or empty (3) with strict fit.
  EXPECT_EQ(candidates, (std::vector<int>{0, 3}));
}

TEST_F(RulesTest, OversubFitNonProductionAllocationCap) {
  OversubFitRule rule(OversubParams{1.25, 1.0}, /*enforce_util_check=*/false);
  auto candidates = AllServers(cluster_);
  rule.Filter(Vm(2, false, 0.5), cluster_, candidates);
  // Oversubscribable (1: 8+2 <= 20; 2: 19+2 > 20) or empty (3).
  EXPECT_EQ(candidates, (std::vector<int>{1, 3}));
}

TEST_F(RulesTest, OversubFitUtilizationCheckHardMode) {
  OversubFitRule rule(OversubParams{1.25, 1.0}, /*enforce_util_check=*/true);
  // A VM predicted to use 8 physical cores: server 1 has 2 booked -> 10 <=
  // 16 OK; a VM predicted to use 16 cores would exceed MAX_UTIL on 1.
  auto candidates = AllServers(cluster_);
  rule.Filter(Vm(8, false, 1.0), cluster_, candidates);
  EXPECT_EQ(candidates, (std::vector<int>{1, 3}));
  candidates = AllServers(cluster_);
  VmRequest hot = Vm(16, false, 1.0);  // 16 booked + 2 existing > 16
  rule.Filter(hot, cluster_, candidates);
  EXPECT_EQ(candidates, (std::vector<int>{3}));  // only the empty server
}

TEST_F(RulesTest, UtilizationCapRuleSoft) {
  UtilizationCapRule rule(OversubParams{1.25, 1.0});
  auto candidates = std::vector<int>{1, 2, 3};
  rule.Filter(Vm(4, false, 1.0), cluster_, candidates);
  // Server 2 has 9.5 booked cores; +4 = 13.5 <= 16 passes. Server 1: 2+4 ok.
  EXPECT_EQ(candidates, (std::vector<int>{1, 2, 3}));
  candidates = {1, 2, 3};
  rule.Filter(Vm(8, false, 1.0), cluster_, candidates);
  // Server 2: 9.5 + 8 = 17.5 > 16 dropped.
  EXPECT_EQ(candidates, (std::vector<int>{1, 3}));
}

TEST_F(RulesTest, UtilizationCapIgnoresProduction) {
  UtilizationCapRule rule(OversubParams{1.25, 1.0});
  auto candidates = std::vector<int>{0, 1, 2, 3};
  rule.Filter(Vm(16, true, 1.0), cluster_, candidates);
  EXPECT_EQ(candidates.size(), 4u);  // untouched
}

TEST_F(RulesTest, AvoidOversubscriptionRule) {
  AvoidOversubscriptionRule rule;
  auto candidates = std::vector<int>{1, 2, 3};
  rule.Filter(Vm(8, false, 0.5), cluster_, candidates);
  // Server 1: 8+8=16 <= 16 (not oversubscribing); server 2: 19+8 would; 3 ok.
  EXPECT_EQ(candidates, (std::vector<int>{1, 3}));
}

TEST_F(RulesTest, PreferNonEmptyRule) {
  PreferNonEmptyRule rule;
  auto candidates = AllServers(cluster_);
  rule.Filter(Vm(1, true), cluster_, candidates);
  EXPECT_EQ(candidates, (std::vector<int>{0, 1, 2}));
}

TEST_F(RulesTest, RuleHardness) {
  EXPECT_TRUE(StrictFitRule().hard());
  EXPECT_TRUE(OversubFitRule(OversubParams{}, true).hard());
  EXPECT_FALSE(UtilizationCapRule(OversubParams{}).hard());
  EXPECT_FALSE(AvoidOversubscriptionRule().hard());
  EXPECT_FALSE(PreferNonEmptyRule().hard());
}

}  // namespace
}  // namespace rc::sched
