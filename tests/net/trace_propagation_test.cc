// End-to-end trace propagation: a sampled PredictSingle through the pooled
// TCP client against a live server (combiner on, fast path off so the lone
// caller parks) must produce ONE connected span tree on /tracez — client
// send, server frame read, combiner park/dispatch, engine execute, response
// write — with the coalesced marker carrying a follows-from link to the
// dispatch span. Also pins v1 wire compatibility: a hand-built v1 frame
// round-trips against the v2 server and the reply parses as v1.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/obs/trace_context.h"
#include "src/store/kv_store.h"
#include "src/trace/workload_model.h"

namespace rc::net {
namespace {

using rc::core::ClientInputs;
using rc::core::OfflinePipeline;
using rc::core::PipelineConfig;
using rc::core::TrainedModels;
using rc::store::KvStore;
using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

struct SpanInfo {
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t link_span_id = 0;
};

// Pulls every span object out of a TracezJson rendering, keyed by name.
// Duplicate names keep the first occurrence (one trace, one request here).
std::map<std::string, SpanInfo> ParseSpans(const std::string& json) {
  std::map<std::string, SpanInfo> spans;
  auto hex_after = [&json](size_t from, const char* key) -> uint64_t {
    size_t k = json.find(key, from);
    if (k == std::string::npos) return 0;
    return std::stoull(json.substr(k + std::strlen(key), 20), nullptr, 16);
  };
  for (size_t pos = json.find("{\"name\":\""); pos != std::string::npos;
       pos = json.find("{\"name\":\"", pos + 1)) {
    size_t name_start = pos + std::strlen("{\"name\":\"");
    size_t name_end = json.find('"', name_start);
    std::string name = json.substr(name_start, name_end - name_start);
    size_t obj_end = json.find('}', name_end);
    if (spans.contains(name)) continue;
    SpanInfo info;
    size_t link = json.find("\"link_span_id\":\"0x", name_end);
    info.span_id = hex_after(name_end, "\"span_id\":\"0x");
    info.parent_span_id = hex_after(name_end, "\"parent_span_id\":\"0x");
    if (link != std::string::npos && link < obj_end) {
      info.link_span_id = hex_after(name_end, "\"link_span_id\":\"0x");
    }
    spans[name] = info;
  }
  return spans;
}

class TracePropagationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 2000;
    config.num_subscriptions = 100;
    config.seed = 99;
    trace_ = new Trace(WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 4;
    pipeline_config.gbt.num_rounds = 4;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override {
    rc::obs::TraceStore::Global().Configure({});
    rc::obs::TraceStore::Global().Clear();
    store_ = std::make_unique<KvStore>();
    OfflinePipeline::Publish(*trained_, *store_);
    core_client_ = std::make_unique<rc::core::Client>(store_.get(), rc::core::ClientConfig{});
    ASSERT_TRUE(core_client_->Initialize());
    ServerConfig server_config;
    server_config.num_workers = 2;
    server_config.combiner_mode = CombinerMode::kShared;
    server_config.combiner_fast_path_when_idle = false;  // lone callers park
    server_ = std::make_unique<Server>(core_client_.get(), server_config);
    ASSERT_TRUE(server_->Start());
  }

  void TearDown() override {
    rc::obs::Tracer::Global().SetSampleEvery(0);
    server_.reset();
    core_client_.reset();
    store_.reset();
    rc::obs::TraceStore::Global().Clear();
  }

  ClientInputs KnownInputs() const {
    static const rc::trace::VmSizeCatalog catalog;
    for (const auto& vm : trace_->vms()) {
      if (trained_->feature_data.contains(vm.subscription_id)) {
        return rc::core::InputsFromVm(vm, catalog);
      }
    }
    ADD_FAILURE() << "no known subscription";
    return {};
  }

  // The write span and server finish land on server threads that may still
  // be running when the client call returns; poll until the tree is whole.
  std::string WaitForSpans(const std::vector<std::string>& names,
                           int attempts = 200) {
    std::string json;
    for (int i = 0; i < attempts; ++i) {
      json = rc::obs::TraceStore::Global().TracezJson();
      bool all = true;
      for (const auto& name : names) {
        if (json.find(name) == std::string::npos) all = false;
      }
      if (all) return json;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return json;
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  std::unique_ptr<KvStore> store_;
  std::unique_ptr<rc::core::Client> core_client_;
  std::unique_ptr<Server> server_;
};

const Trace* TracePropagationTest::trace_ = nullptr;
const TrainedModels* TracePropagationTest::trained_ = nullptr;

TEST_F(TracePropagationTest, SampledRequestFormsOneConnectedTree) {
  rc::obs::Tracer::Global().SetSampleEvery(1);
  ClientConfig config;
  config.port = server_->port();
  config.pool_size = 1;
  config.default_deadline_us = 5'000'000;
  Client client(config);
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);

  const std::vector<std::string> expected = {
      "netclient/call",     "net/read_frame",    "net/predict",
      "combiner/predict",   "combiner/park",     "combiner/dispatch",
      "combiner/coalesced", "client/predict",    "client/exec_batch",
      "net/write_frame"};
  std::string json = WaitForSpans(expected);
  auto spans = ParseSpans(json);
  for (const auto& name : expected) {
    ASSERT_TRUE(spans.contains(name)) << "missing " << name << " in\n" << json;
  }

  // One retained trace: every span in one tree, rooted at the client call.
  EXPECT_EQ(spans["netclient/call"].parent_span_id, 0u);
  const uint64_t root = spans["netclient/call"].span_id;
  EXPECT_EQ(spans["net/read_frame"].parent_span_id, root);
  EXPECT_EQ(spans["net/predict"].parent_span_id, root);
  EXPECT_EQ(spans["net/write_frame"].parent_span_id, root);
  EXPECT_EQ(spans["combiner/predict"].parent_span_id, spans["net/predict"].span_id);
  EXPECT_EQ(spans["combiner/park"].parent_span_id, spans["combiner/predict"].span_id);
  // The lone caller self-dispatches: the dispatch runs under its park span,
  // and the coalesced marker links back to the dispatch that did the work.
  EXPECT_EQ(spans["combiner/dispatch"].parent_span_id, spans["combiner/park"].span_id);
  EXPECT_EQ(spans["combiner/coalesced"].parent_span_id, spans["combiner/park"].span_id);
  EXPECT_EQ(spans["combiner/coalesced"].link_span_id, spans["combiner/dispatch"].span_id);
  // Execution happened inside the dispatch, not on some orphan context.
  EXPECT_EQ(spans["client/predict"].parent_span_id, spans["combiner/dispatch"].span_id);
  EXPECT_EQ(spans["client/exec_batch"].parent_span_id, spans["client/predict"].span_id);

  EXPECT_GE(rc::obs::TraceStore::Global().finished_count(), 1u);
}

TEST_F(TracePropagationTest, UnsampledRequestsRecordNothing) {
  rc::obs::Tracer::Global().SetSampleEvery(0);
  ClientConfig config;
  config.port = server_->port();
  config.pool_size = 1;
  Client client(config);
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  EXPECT_EQ(rc::obs::TraceStore::Global().finished_count(), 0u);
  std::string json = rc::obs::TraceStore::Global().TracezJson();
  EXPECT_EQ(json.find("netclient/call"), std::string::npos);
}

// A legacy v1 peer: 16-byte header, no flags byte, no trace block. The v2
// server must parse the request and answer in v1 so the peer can parse the
// reply. Driven over a raw socket because the pooled client always speaks v2.
TEST_F(TracePropagationTest, V1FrameRoundTripsAgainstV2Server) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A health request as a v1 peer would frame it: empty body, v1 header.
  std::vector<uint8_t> v1_frame;
  AppendFrame(v1_frame, Opcode::kHealth, 424242, {}, kProtocolVersionV1);
  ASSERT_EQ(v1_frame.size(), kLengthPrefixBytes + kHeaderBytesV1);
  ASSERT_EQ(::send(fd, v1_frame.data(), v1_frame.size(), 0),
            static_cast<ssize_t>(v1_frame.size()));

  // Read length prefix, then the payload.
  auto read_exact = [fd](void* buf, size_t n) {
    uint8_t* out = static_cast<uint8_t*>(buf);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::recv(fd, out + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  };
  uint32_t payload_len = 0;
  ASSERT_TRUE(read_exact(&payload_len, sizeof(payload_len)));
  std::vector<uint8_t> payload(payload_len);
  ASSERT_TRUE(read_exact(payload.data(), payload_len));
  ::close(fd);

  rc::ml::ByteReader r(payload.data(), payload.size());
  FrameHeader header;
  ASSERT_EQ(DecodeHeader(r, &header), WireStatus::kOk);
  EXPECT_EQ(header.version, kProtocolVersionV1);  // reply echoes the version
  EXPECT_EQ(header.request_id, 424242u);
  WireStatus remote;
  HealthResponse health;
  std::string error;
  ASSERT_TRUE(DecodeHealthResponse(r, &remote, &health, &error));
  EXPECT_EQ(remote, WireStatus::kOk);
  EXPECT_EQ(health.num_models, 6u);
}

}  // namespace
}  // namespace rc::net
