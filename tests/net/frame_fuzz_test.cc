// Frame fuzzer against a live server over raw sockets: truncation at every
// frame boundary, bit flips across the length prefix + header + body, and
// random garbage streams. The contract under fuzz (see server.h): the
// server never crashes, answers every structurally-malformed-but-framed
// request with a protocol-error response on the SAME connection (no
// disconnect), and keeps serving well-formed requests afterwards. Only an
// untrustworthy length prefix (announced payload above the ceiling) may
// close the connection — after flushing the error response.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/client.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/store/kv_store.h"

namespace rc::net {
namespace {

// An empty store is enough: protocol handling never needs a real model
// (prediction requests for unknown models answer no-prediction).
class FrameFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<rc::store::KvStore>();
    core_client_ = std::make_unique<rc::core::Client>(store_.get(), rc::core::ClientConfig{});
    ASSERT_TRUE(core_client_->Initialize());
    ServerConfig config;
    config.num_workers = 2;
    config.max_frame_bytes = 1 << 20;
    server_ = std::make_unique<Server>(core_client_.get(), config);
    ASSERT_TRUE(server_->Start());
  }

  int Connect() {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }

  static void SendAll(int fd, const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t w = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      ASSERT_GT(w, 0);
      off += static_cast<size_t>(w);
    }
  }

  // Reads exactly n bytes with a poll deadline. False on timeout/EOF.
  static bool RecvExact(int fd, uint8_t* buf, size_t n, int timeout_ms = 3000) {
    size_t off = 0;
    while (off < n) {
      pollfd p{fd, POLLIN, 0};
      int ready = ::poll(&p, 1, timeout_ms);
      if (ready <= 0 && errno == EINTR) continue;
      if (ready <= 0) return false;
      ssize_t r = ::read(fd, buf + off, n - off);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      off += static_cast<size_t>(r);
    }
    return true;
  }

  // Reads one complete frame (length prefix + payload). nullopt on
  // timeout/EOF/over-sized announcement.
  static std::optional<std::vector<uint8_t>> RecvFrame(int fd) {
    uint32_t payload_len;
    if (!RecvExact(fd, reinterpret_cast<uint8_t*>(&payload_len), sizeof(payload_len))) {
      return std::nullopt;
    }
    if (payload_len < kHeaderBytes || payload_len > kDefaultMaxFrameBytes) return std::nullopt;
    std::vector<uint8_t> payload(payload_len);
    if (!RecvExact(fd, payload.data(), payload.size())) return std::nullopt;
    return payload;
  }

  // Decodes the status a response payload carries.
  static std::optional<WireStatus> ResponseStatus(const std::vector<uint8_t>& payload) {
    rc::ml::ByteReader r(payload.data(), payload.size());
    FrameHeader header;
    if (r.remaining() < kHeaderBytes) return std::nullopt;
    (void)DecodeHeader(r, &header);
    if (r.remaining() < 2) return std::nullopt;
    return static_cast<WireStatus>(r.Pod<uint16_t>());
  }

  // The liveness probe: a fresh connection must still be answered.
  void ExpectServerAlive() {
    int fd = Connect();
    std::vector<uint8_t> frame;
    AppendHealthRequest(frame, 424242);
    SendAll(fd, frame);
    auto payload = RecvFrame(fd);
    ASSERT_TRUE(payload.has_value()) << "server stopped answering";
    EXPECT_EQ(ResponseStatus(*payload), WireStatus::kOk);
    ::close(fd);
  }

  static std::vector<uint8_t> ValidSingleRequest(uint64_t id = 1) {
    core::ClientInputs inputs;
    inputs.subscription_id = 7;
    std::vector<uint8_t> frame;
    AppendPredictSingleRequest(frame, id, "VM_AVGUTIL", inputs);
    return frame;
  }

  std::unique_ptr<rc::store::KvStore> store_;
  std::unique_ptr<rc::core::Client> core_client_;
  std::unique_ptr<Server> server_;
};

// Truncate a valid request at every possible byte boundary; the server must
// never crash and must keep serving fresh connections.
TEST_F(FrameFuzzTest, TruncationAtEveryBoundary) {
  std::vector<uint8_t> frame = ValidSingleRequest();
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    int fd = Connect();
    std::vector<uint8_t> prefix(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(cut));
    if (!prefix.empty()) SendAll(fd, prefix);
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the server says (nothing expected for a partial frame);
    // EOF/timeout are both acceptable — crashing or hanging is not.
    uint8_t sink[256];
    while (RecvExact(fd, sink, sizeof(sink), 100)) {
    }
    ::close(fd);
  }
  ExpectServerAlive();
}

// A structurally complete frame with a malformed body must be answered with
// a protocol error on the same connection, which then keeps working.
TEST_F(FrameFuzzTest, MalformedBodyAnsweredWithoutDisconnect) {
  std::vector<uint8_t> valid = ValidSingleRequest(55);
  // Keep the header but chop the body: re-frame so the length prefix is
  // consistent with the truncated bytes (a framed-but-short body).
  std::vector<uint8_t> body(valid.begin() + kLengthPrefixBytes + kHeaderBytes,
                            valid.end() - 10);
  std::vector<uint8_t> frame;
  AppendFrame(frame, Opcode::kPredictSingle, 55, body);

  int fd = Connect();
  SendAll(fd, frame);
  auto payload = RecvFrame(fd);
  ASSERT_TRUE(payload.has_value()) << "malformed body must be answered, not dropped";
  EXPECT_EQ(ResponseStatus(*payload), WireStatus::kMalformed);

  // Same connection, now a valid request: the stream resynchronized.
  SendAll(fd, ValidSingleRequest(56));
  payload = RecvFrame(fd);
  ASSERT_TRUE(payload.has_value()) << "connection must survive a malformed frame";
  EXPECT_EQ(ResponseStatus(*payload), WireStatus::kOk);
  ::close(fd);
}

// Bad magic / version / opcode frames: error response, no disconnect.
TEST_F(FrameFuzzTest, HeaderFieldCorruptionAnswered) {
  struct Case {
    size_t offset;  // into the payload (after the length prefix)
    WireStatus expect;
  };
  const Case cases[] = {
      {0, WireStatus::kBadMagic},    // magic byte
      {4, WireStatus::kBadVersion},  // version byte
      {6, WireStatus::kBadOpcode},   // opcode byte
  };
  for (const Case& c : cases) {
    std::vector<uint8_t> frame = ValidSingleRequest(77);
    frame[kLengthPrefixBytes + c.offset] ^= 0x5A;
    int fd = Connect();
    SendAll(fd, frame);
    auto payload = RecvFrame(fd);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(ResponseStatus(*payload), c.expect);
    // Connection still serves.
    SendAll(fd, ValidSingleRequest(78));
    payload = RecvFrame(fd);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(ResponseStatus(*payload), WireStatus::kOk);
    ::close(fd);
  }
}

// An announced payload length above the server ceiling: the error response
// is flushed, then the connection closes (the stream cannot be trusted).
TEST_F(FrameFuzzTest, OversizedLengthAnsweredThenClosed) {
  std::vector<uint8_t> frame = ValidSingleRequest(88);
  uint32_t huge = (2u << 20);  // above the 1 MiB test ceiling
  std::memcpy(frame.data(), &huge, sizeof(huge));
  int fd = Connect();
  SendAll(fd, frame);
  auto payload = RecvFrame(fd);
  ASSERT_TRUE(payload.has_value()) << "oversize announcement must still be answered";
  EXPECT_EQ(ResponseStatus(*payload), WireStatus::kFrameTooLarge);
  // Then EOF: the server closed after flushing.
  uint8_t sink;
  EXPECT_FALSE(RecvExact(fd, &sink, 1, 2000));
  ::close(fd);
  ExpectServerAlive();
}

// Random single-bit flips anywhere in the frame. Every outcome is legal
// except a crash or an unframed response: we either get a well-formed frame
// back, or nothing (flip landed in the length prefix and left the server
// waiting / closing). The server must stay alive throughout.
TEST_F(FrameFuzzTest, RandomBitFlipsNeverKillTheServer) {
  rc::Rng rng(20260807);
  std::vector<uint8_t> base = ValidSingleRequest(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> frame = base;
    size_t byte = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(frame.size()) - 1));
    frame[byte] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    int fd = Connect();
    SendAll(fd, frame);
    auto payload = RecvFrame(fd);
    if (payload.has_value()) {
      // Whatever came back must be a complete, magic-stamped frame.
      rc::ml::ByteReader r(payload->data(), payload->size());
      FrameHeader header;
      (void)DecodeHeader(r, &header);
      EXPECT_EQ(header.magic, kMagic);
    }
    ::close(fd);
  }
  ExpectServerAlive();
}

// Pure garbage streams (no framing at all) in several sizes.
TEST_F(FrameFuzzTest, GarbageStreamsSurvived) {
  rc::Rng rng(7);
  for (size_t size : {1u, 3u, 4u, 17u, 128u, 4096u}) {
    std::vector<uint8_t> junk(size);
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.NextU64());
    // Force a small length prefix so the junk parses as framed garbage
    // rather than an over-sized announcement half the time.
    if (size >= 4 && (size % 2) == 0) {
      uint32_t len = static_cast<uint32_t>(size - 4);
      std::memcpy(junk.data(), &len, sizeof(len));
    }
    int fd = Connect();
    SendAll(fd, junk);
    ::shutdown(fd, SHUT_WR);
    uint8_t sink[256];
    while (RecvExact(fd, sink, sizeof(sink), 100)) {
    }
    ::close(fd);
  }
  ExpectServerAlive();
}

// Two requests coalesced into one TCP segment and one request dribbled a
// byte at a time: framing is independent of segmentation.
TEST_F(FrameFuzzTest, CoalescedAndDribbledFrames) {
  int fd = Connect();
  std::vector<uint8_t> two = ValidSingleRequest(1);
  std::vector<uint8_t> second = ValidSingleRequest(2);
  two.insert(two.end(), second.begin(), second.end());
  SendAll(fd, two);
  auto a = RecvFrame(fd);
  auto b = RecvFrame(fd);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(ResponseStatus(*a), WireStatus::kOk);
  EXPECT_EQ(ResponseStatus(*b), WireStatus::kOk);

  std::vector<uint8_t> dribble = ValidSingleRequest(3);
  for (uint8_t byte : dribble) {
    SendAll(fd, {byte});
  }
  auto c = RecvFrame(fd);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(ResponseStatus(*c), WireStatus::kOk);
  ::close(fd);
}

}  // namespace
}  // namespace rc::net
