// Loopback integration for the prediction service: server + pooled client
// round-trips for every opcode, wire results matching in-process results,
// hot model republish under concurrent network clients (no dropped
// connections), deadline expiry, and reconnect-with-backoff through the
// rc::faults sites.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/faults.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/store/kv_store.h"
#include "src/trace/workload_model.h"

namespace rc::net {
namespace {

using rc::core::ClientInputs;
using rc::core::OfflinePipeline;
using rc::core::PipelineConfig;
using rc::core::TrainedModels;
using rc::store::KvStore;
using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

class NetLoopbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 3000;
    config.num_subscriptions = 150;
    config.seed = 1234;
    trace_ = new Trace(WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 8;
    pipeline_config.gbt.num_rounds = 8;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override {
    store_ = std::make_unique<KvStore>();
    OfflinePipeline::Publish(*trained_, *store_);
    core_client_ = std::make_unique<rc::core::Client>(store_.get(), rc::core::ClientConfig{});
    ASSERT_TRUE(core_client_->Initialize());
    ServerConfig server_config;
    server_config.num_workers = 2;
    server_ = std::make_unique<Server>(core_client_.get(), server_config);
    ASSERT_TRUE(server_->Start());
  }

  void TearDown() override {
    rc::faults::Registry::Global().DisarmAll();
    server_.reset();
    core_client_.reset();
    store_.reset();
  }

  ClientConfig PoolConfig(int pool_size = 2) const {
    ClientConfig config;
    config.port = server_->port();
    config.pool_size = pool_size;
    config.default_deadline_us = 2'000'000;  // generous for sanitizer builds
    return config;
  }

  ClientInputs KnownInputs() const {
    static const rc::trace::VmSizeCatalog catalog;
    for (const auto& vm : trace_->vms()) {
      if (trained_->feature_data.contains(vm.subscription_id)) {
        return rc::core::InputsFromVm(vm, catalog);
      }
    }
    ADD_FAILURE() << "no known subscription";
    return {};
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  std::unique_ptr<KvStore> store_;
  std::unique_ptr<rc::core::Client> core_client_;
  std::unique_ptr<Server> server_;
};

const Trace* NetLoopbackTest::trace_ = nullptr;
const TrainedModels* NetLoopbackTest::trained_ = nullptr;

TEST_F(NetLoopbackTest, PredictSingleMatchesInProcess) {
  Client client(PoolConfig());
  ClientInputs inputs = KnownInputs();
  core::Prediction over_wire;
  ASSERT_EQ(client.PredictSingle("VM_P95UTIL", inputs, &over_wire), Status::kOk);
  core::Prediction local = core_client_->PredictSingle("VM_P95UTIL", inputs);
  EXPECT_EQ(over_wire.valid, local.valid);
  EXPECT_EQ(over_wire.bucket, local.bucket);
  EXPECT_DOUBLE_EQ(over_wire.score, local.score);
}

TEST_F(NetLoopbackTest, PredictSingleUnknownModelIsNoPrediction) {
  Client client(PoolConfig());
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("NO_SUCH_MODEL", KnownInputs(), &p), Status::kOk);
  EXPECT_FALSE(p.valid);
}

TEST_F(NetLoopbackTest, PredictManyMatchesSingles) {
  Client client(PoolConfig());
  ClientInputs base = KnownInputs();
  std::vector<ClientInputs> batch;
  for (int i = 0; i < 8; ++i) {
    ClientInputs in = base;
    in.deploy_hour = i;
    batch.push_back(in);
  }
  batch.push_back(base);  // duplicate of an earlier key once hours collide
  std::vector<core::Prediction> many;
  ASSERT_EQ(client.PredictMany("VM_AVGUTIL", batch, &many), Status::kOk);
  ASSERT_EQ(many.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    core::Prediction single;
    ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", batch[i], &single), Status::kOk);
    EXPECT_EQ(many[i].valid, single.valid) << "row " << i;
    EXPECT_EQ(many[i].bucket, single.bucket) << "row " << i;
  }
}

TEST_F(NetLoopbackTest, EmptyBatchRoundTrips) {
  Client client(PoolConfig());
  std::vector<core::Prediction> many;
  ASSERT_EQ(client.PredictMany("VM_AVGUTIL", {}, &many), Status::kOk);
  EXPECT_TRUE(many.empty());
}

TEST_F(NetLoopbackTest, HealthReportsServerState) {
  Client client(PoolConfig());
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  HealthResponse health;
  ASSERT_EQ(client.Health(&health), Status::kOk);
  EXPECT_EQ(health.num_models, 6u);
  EXPECT_GE(health.requests, 1u);
  EXPECT_GE(health.predictions, 1u);
  EXPECT_EQ(health.protocol_errors, 0u);
  EXPECT_GE(health.active_connections, 1u);
}

TEST_F(NetLoopbackTest, ServerMetricsExported) {
  Client client(PoolConfig());
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  auto snapshot = server_->metrics().Collect();
  bool saw_requests = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.info.name == "rc_net_requests") {
      saw_requests = true;
      EXPECT_GE(counter.value, 1u);
    }
  }
  EXPECT_TRUE(saw_requests);
}

// The paper's hot-swap requirement carried over the network: republish the
// models (new versions pushed through the store) while network clients
// hammer the server. Every request must succeed and no connection may drop.
// Wall-clock holdout: the 10ms sleeps only pace the republishes against real
// network round-trips; correctness never depends on the overlap happening
// (the assertions hold even if the storm and the publishes don't interleave),
// so this stays on real time rather than an injected clock.
TEST_F(NetLoopbackTest, ConcurrentClientsDuringRepublish) {
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 150;
  std::atomic<int> failures{0};
  std::atomic<bool> start{false};
  Client client(PoolConfig(kThreads));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  ClientInputs base = KnownInputs();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kRequestsPerThread; ++i) {
        ClientInputs in = base;
        in.deploy_hour = (t * kRequestsPerThread + i) % 24;
        in.deploy_dow = i % 7;
        core::Prediction p;
        if (client.PredictSingle("VM_AVGUTIL", in, &p) != Status::kOk) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  // Republish the full model set twice mid-storm: clients hot-swap state.
  for (int round = 0; round < 2; ++round) {
    OfflinePipeline::Publish(*trained_, *store_);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // No reconnects beyond the initial pool connects: nothing dropped.
  auto snapshot = client.metrics().Collect();
  for (const auto& counter : snapshot.counters) {
    if (counter.info.name == "rc_net_client_reconnects") {
      EXPECT_LE(counter.value, static_cast<uint64_t>(kThreads));
    }
    if (counter.info.name == "rc_net_client_errors") {
      EXPECT_EQ(counter.value, 0u);
    }
  }
}

// A server stalled past the caller's deadline: the call returns kTimeout
// (not a hang, not a crash), and the pool recovers for the next request.
// Wall-clock holdout: the stall is a latency fault on the server's handler
// thread and the expiry fires inside poll(2), neither of which a
// VirtualClock can drive — socket readiness is kernel time. The deadline
// (20ms) and stall (300ms) are far enough apart to stay robust under
// sanitizers.
TEST_F(NetLoopbackTest, DeadlineExpiryReturnsTimeout) {
  Client client(PoolConfig(1));
  {
    rc::faults::FaultSpec spec;
    spec.kind = rc::faults::FaultKind::kLatency;
    spec.latency_us = 300'000;  // well past the 20ms deadline below
    spec.max_fires = 1;
    rc::faults::ScopedFault fault("net/handle", spec);
    core::Prediction p;
    EXPECT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p, /*deadline_us=*/20'000),
              Status::kTimeout);
  }
  // The timed-out connection was abandoned; the pool reconnects and serves.
  core::Prediction p;
  EXPECT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  EXPECT_TRUE(p.valid);
}

// First connect attempts fail (injected at the "net/connect" site): the
// client retries with backoff inside the same call and still succeeds. The
// backoff naps run on a VirtualClock (auto-advance: they execute inline on
// the calling thread), so the doubling schedule is asserted exactly instead
// of waiting it out in real time.
TEST_F(NetLoopbackTest, ReconnectWithBackoffThroughFaultSite) {
  rc::common::VirtualClock clock(
      rc::common::VirtualClock::Options{.auto_advance_on_sleep = true});
  ClientConfig config = PoolConfig(1);
  config.max_connect_attempts = 4;
  config.reconnect_backoff_us = 500;
  config.clock = &clock;
  Client client(config);
  rc::faults::FaultSpec spec;
  spec.kind = rc::faults::FaultKind::kError;
  spec.max_fires = 2;  // fail the first two attempts, then connect cleanly
  rc::faults::ScopedFault fault("net/connect", spec);
  core::Prediction p;
  EXPECT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  EXPECT_TRUE(p.valid);
  EXPECT_EQ(rc::faults::Registry::Global().fires("net/connect"), 2u);
  // Exactly the doubling schedule: 500 before attempt 2, 1000 before attempt 3.
  EXPECT_EQ(clock.slept_us(), 1500);
}

// Exhausted connect attempts surface as kConnectFailed, never a hang.
TEST_F(NetLoopbackTest, ConnectFailureAfterExhaustedBackoff) {
  rc::common::VirtualClock clock(
      rc::common::VirtualClock::Options{.auto_advance_on_sleep = true});
  ClientConfig config = PoolConfig(1);
  config.max_connect_attempts = 2;
  config.reconnect_backoff_us = 200;
  config.clock = &clock;
  Client client(config);
  rc::faults::FaultSpec spec;
  spec.kind = rc::faults::FaultKind::kError;
  rc::faults::ScopedFault fault("net/connect", spec);  // every attempt fails
  core::Prediction p;
  EXPECT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kConnectFailed);
  EXPECT_EQ(clock.slept_us(), 200);  // the one backoff before the second attempt
}

// Send/recv faults mark the connection dead; the next call reconnects.
TEST_F(NetLoopbackTest, RecvFaultClosesAndRecovers) {
  Client client(PoolConfig(1));
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  {
    rc::faults::FaultSpec spec;
    spec.kind = rc::faults::FaultKind::kError;
    spec.max_fires = 1;
    rc::faults::ScopedFault fault("net/recv", spec);
    EXPECT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kRecvFailed);
  }
  EXPECT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
}

// Stopping the server with live pooled connections: in-flight and follow-up
// requests fail with a clean status; restarting serving requires a new
// server (the client object itself stays usable).
TEST_F(NetLoopbackTest, ServerStopFailsRequestsCleanly) {
  ClientConfig config = PoolConfig(1);
  config.default_deadline_us = 200'000;
  config.max_connect_attempts = 1;
  Client client(config);
  core::Prediction p;
  ASSERT_EQ(client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p), Status::kOk);
  server_->Stop();
  Status status = client.PredictSingle("VM_AVGUTIL", KnownInputs(), &p);
  EXPECT_NE(status, Status::kOk);
}

}  // namespace
}  // namespace rc::net
