// AdminServer: HTTP/1.0 introspection endpoint driven over raw sockets —
// happy-path GETs, malformed request lines, oversized and dribbled
// requests, non-GET methods, unknown paths — and above all that the
// listener survives every abuse (the next well-formed request still works).
#include "src/net/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace rc::net {
namespace {

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AdminServerConfig config;
    config.max_request_bytes = 1024;  // small so the 414 test is cheap
    server_ = std::make_unique<AdminServer>(config);
    server_->Handle("/ping", [] {
      return AdminServer::Response{200, "text/plain", "pong\n"};
    });
    server_->Handle("/fail", [] {
      return AdminServer::Response{503, "text/plain", "down\n"};
    });
    ASSERT_TRUE(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  int Connect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  // Sends `request` (optionally in `chunks` pieces) and reads the full
  // response until the server closes the connection.
  std::string RoundTrip(const std::string& request, size_t chunks = 1) {
    int fd = Connect();
    size_t per = (request.size() + chunks - 1) / chunks;
    for (size_t off = 0; off < request.size(); off += per) {
      size_t n = std::min(per, request.size() - off);
      EXPECT_EQ(::send(fd, request.data() + off, n, 0), static_cast<ssize_t>(n));
    }
    std::string response = ReadAll(fd);
    ::close(fd);
    return response;
  }

  static std::string ReadAll(int fd) {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    return out;
  }

  std::unique_ptr<AdminServer> server_;
};

TEST_F(AdminServerTest, ServesRegisteredRoute) {
  std::string response = RoundTrip("GET /ping HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong\n"), std::string::npos);
}

TEST_F(AdminServerTest, HandlerStatusPropagates) {
  EXPECT_NE(RoundTrip("GET /fail HTTP/1.0\r\n\r\n").find("503 Service Unavailable"),
            std::string::npos);
}

TEST_F(AdminServerTest, QueryStringIsStripped) {
  EXPECT_NE(RoundTrip("GET /ping?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").find("200 OK"),
            std::string::npos);
}

TEST_F(AdminServerTest, BareLfHeaderEndAccepted) {
  EXPECT_NE(RoundTrip("GET /ping HTTP/1.0\n\n").find("200 OK"), std::string::npos);
}

TEST_F(AdminServerTest, UnknownPathIs404) {
  EXPECT_NE(RoundTrip("GET /nope HTTP/1.0\r\n\r\n").find("404 Not Found"),
            std::string::npos);
}

TEST_F(AdminServerTest, NonGetIs405) {
  EXPECT_NE(RoundTrip("POST /ping HTTP/1.0\r\n\r\n").find("405 Method Not Allowed"),
            std::string::npos);
}

TEST_F(AdminServerTest, MalformedRequestLineIs400) {
  EXPECT_NE(RoundTrip("garbage\r\n\r\n").find("400 Bad Request"), std::string::npos);
  EXPECT_NE(RoundTrip("GET /ping\r\n\r\n").find("400 Bad Request"), std::string::npos);
  EXPECT_NE(RoundTrip("GET /ping FTP/9\r\n\r\n").find("400 Bad Request"),
            std::string::npos);
}

TEST_F(AdminServerTest, OversizedRequestIs414) {
  // Headers never complete and exceed max_request_bytes (1024).
  std::string huge = "GET /ping HTTP/1.0\r\nX-Pad: " + std::string(2000, 'a');
  EXPECT_NE(RoundTrip(huge).find("414 URI Too Long"), std::string::npos);
}

TEST_F(AdminServerTest, DribbledRequestStillServed) {
  // One byte per send: the server buffers until the blank line arrives.
  std::string response = RoundTrip("GET /ping HTTP/1.0\r\n\r\n", /*chunks=*/22);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("pong\n"), std::string::npos);
}

TEST_F(AdminServerTest, ListenerSurvivesAbuse) {
  // A barrage of every abuse in sequence, then a clean request must work.
  RoundTrip("garbage\r\n\r\n");
  RoundTrip("GET /ping HTTP/1.0\r\nX-Pad: " + std::string(2000, 'a'));
  RoundTrip("DELETE /ping HTTP/1.0\r\n\r\n");
  {
    int fd = Connect();  // connect and slam shut mid-request
    ASSERT_EQ(::send(fd, "GET /pi", 7, 0), 7);
    ::close(fd);
  }
  EXPECT_NE(RoundTrip("GET /ping HTTP/1.0\r\n\r\n").find("200 OK"), std::string::npos);
}

TEST_F(AdminServerTest, StopIsIdempotentAndRestartable) {
  server_->Stop();
  server_->Stop();
  // A fresh server on a fresh port serves again (routes re-registered).
  AdminServer second{AdminServerConfig{}};
  second.Handle("/ping", [] {
    return AdminServer::Response{200, "text/plain", "pong\n"};
  });
  ASSERT_TRUE(second.Start());
  EXPECT_GT(second.port(), 0);
  second.Stop();
}

}  // namespace
}  // namespace rc::net
