// Wire protocol: frame layout, encode/decode round-trips for every opcode,
// and the validate-before-allocate guarantees of the request decoders.
#include "src/net/protocol.h"

#include <cstring>

#include <gtest/gtest.h>

namespace rc::net {
namespace {

core::ClientInputs SampleInputs(uint64_t sub = 42) {
  core::ClientInputs in;
  in.subscription_id = sub;
  in.vm_type = 1;
  in.guest_os = 1;
  in.role = 2;
  in.cores = 8;
  in.memory_gb = 28.0;
  in.size_index = 3;
  in.region = 5;
  in.deploy_hour = 13;
  in.deploy_dow = 4;
  in.service_id = 7;
  return in;
}

// Splits a full frame into (header+body) payload, checking the length prefix.
std::pair<FrameHeader, rc::ml::ByteReader> OpenFrame(const std::vector<uint8_t>& frame) {
  EXPECT_GE(frame.size(), kLengthPrefixBytes + kHeaderBytes);
  uint32_t payload_len;
  std::memcpy(&payload_len, frame.data(), sizeof(payload_len));
  EXPECT_EQ(payload_len + kLengthPrefixBytes, frame.size());
  rc::ml::ByteReader r(frame.data() + kLengthPrefixBytes, payload_len);
  FrameHeader header;
  EXPECT_EQ(DecodeHeader(r, &header), WireStatus::kOk);
  return {header, r};
}

TEST(NetProtocolTest, InputsWireSizeMatchesConstant) {
  rc::ml::ByteWriter w;
  EncodeInputs(w, SampleInputs());
  EXPECT_EQ(w.size(), kInputsWireBytes);
}

TEST(NetProtocolTest, PredictSingleRequestRoundTrip) {
  std::vector<uint8_t> frame;
  AppendPredictSingleRequest(frame, 77, "VM_AVGUTIL", SampleInputs(99));
  auto [header, r] = OpenFrame(frame);
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kPredictSingle));
  EXPECT_EQ(header.request_id, 77u);
  PredictSingleRequest req;
  ASSERT_EQ(DecodePredictSingleRequest(r, &req), WireStatus::kOk);
  EXPECT_EQ(req.model, "VM_AVGUTIL");
  EXPECT_EQ(req.inputs.subscription_id, 99u);
  EXPECT_EQ(req.inputs.cores, 8);
  EXPECT_DOUBLE_EQ(req.inputs.memory_gb, 28.0);
}

TEST(NetProtocolTest, PredictManyRequestRoundTrip) {
  std::vector<core::ClientInputs> inputs = {SampleInputs(1), SampleInputs(2), SampleInputs(3)};
  std::vector<uint8_t> frame;
  AppendPredictManyRequest(frame, 5, "VM_LIFETIME", inputs);
  auto [header, r] = OpenFrame(frame);
  EXPECT_EQ(header.opcode, static_cast<uint16_t>(Opcode::kPredictMany));
  PredictManyRequest req;
  ASSERT_EQ(DecodePredictManyRequest(r, kMaxBatch, &req), WireStatus::kOk);
  ASSERT_EQ(req.inputs.size(), 3u);
  EXPECT_EQ(req.inputs[2].subscription_id, 3u);
}

TEST(NetProtocolTest, PredictSingleResponseRoundTrip) {
  std::vector<uint8_t> frame;
  AppendPredictSingleResponse(frame, 12, core::Prediction::Of(2, 0.875));
  auto [header, r] = OpenFrame(frame);
  WireStatus remote;
  core::Prediction p;
  std::string error;
  ASSERT_TRUE(DecodePredictSingleResponse(r, &remote, &p, &error));
  EXPECT_EQ(remote, WireStatus::kOk);
  EXPECT_TRUE(p.valid);
  EXPECT_EQ(p.bucket, 2);
  EXPECT_DOUBLE_EQ(p.score, 0.875);
}

TEST(NetProtocolTest, PredictManyResponseRoundTrip) {
  std::vector<core::Prediction> predictions = {core::Prediction::Of(0, 0.5),
                                               core::Prediction::None()};
  std::vector<uint8_t> frame;
  AppendPredictManyResponse(frame, 9, predictions);
  auto [header, r] = OpenFrame(frame);
  WireStatus remote;
  std::vector<core::Prediction> out;
  std::string error;
  ASSERT_TRUE(DecodePredictManyResponse(r, kMaxBatch, &remote, &out, &error));
  EXPECT_EQ(remote, WireStatus::kOk);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].valid);
  EXPECT_FALSE(out[1].valid);
}

TEST(NetProtocolTest, HealthRoundTrip) {
  HealthResponse health;
  health.requests = 100;
  health.predictions = 250;
  health.protocol_errors = 3;
  health.active_connections = 7;
  health.num_models = 6;
  std::vector<uint8_t> frame;
  AppendHealthResponse(frame, 1, health);
  auto [header, r] = OpenFrame(frame);
  WireStatus remote;
  HealthResponse out;
  std::string error;
  ASSERT_TRUE(DecodeHealthResponse(r, &remote, &out, &error));
  EXPECT_EQ(out.requests, 100u);
  EXPECT_EQ(out.predictions, 250u);
  EXPECT_EQ(out.protocol_errors, 3u);
  EXPECT_EQ(out.active_connections, 7u);
  EXPECT_EQ(out.num_models, 6u);
}

TEST(NetProtocolTest, ErrorResponseCarriesStatusAndMessage) {
  std::vector<uint8_t> frame;
  AppendErrorResponse(frame, Opcode::kPredictMany, 33, WireStatus::kBatchTooLarge,
                      "batch too large");
  auto [header, r] = OpenFrame(frame);
  EXPECT_EQ(header.request_id, 33u);
  WireStatus remote;
  std::vector<core::Prediction> out;
  std::string error;
  ASSERT_TRUE(DecodePredictManyResponse(r, kMaxBatch, &remote, &out, &error));
  EXPECT_EQ(remote, WireStatus::kBatchTooLarge);
  EXPECT_EQ(error, "batch too large");
  EXPECT_TRUE(out.empty());
}

TEST(NetProtocolTest, HeaderRejectsBadMagicVersionOpcode) {
  std::vector<uint8_t> frame;
  AppendHealthRequest(frame, 1);
  // Flip the magic.
  {
    std::vector<uint8_t> bad = frame;
    bad[kLengthPrefixBytes] ^= 0xFF;
    rc::ml::ByteReader r(bad.data() + kLengthPrefixBytes, bad.size() - kLengthPrefixBytes);
    FrameHeader h;
    EXPECT_EQ(DecodeHeader(r, &h), WireStatus::kBadMagic);
  }
  // Bump the version.
  {
    std::vector<uint8_t> bad = frame;
    bad[kLengthPrefixBytes + 4] = 0x7F;
    rc::ml::ByteReader r(bad.data() + kLengthPrefixBytes, bad.size() - kLengthPrefixBytes);
    FrameHeader h;
    EXPECT_EQ(DecodeHeader(r, &h), WireStatus::kBadVersion);
  }
  // Unknown opcode still yields the request id so the error can echo it.
  {
    std::vector<uint8_t> bad = frame;
    bad[kLengthPrefixBytes + 6] = 0x77;
    rc::ml::ByteReader r(bad.data() + kLengthPrefixBytes, bad.size() - kLengthPrefixBytes);
    FrameHeader h;
    EXPECT_EQ(DecodeHeader(r, &h), WireStatus::kBadOpcode);
    EXPECT_EQ(h.request_id, 1u);
  }
}

TEST(NetProtocolTest, PredictManyCountValidatedBeforeAllocation) {
  std::vector<core::ClientInputs> inputs = {SampleInputs(1), SampleInputs(2)};
  std::vector<uint8_t> frame;
  AppendPredictManyRequest(frame, 5, "M", inputs);
  // Inflate the announced count without providing the bytes: the decoder
  // must reject instead of resizing to the bogus count.
  size_t count_off = kLengthPrefixBytes + kHeaderBytes + 4 + 1;  // strlen("M") == 1
  uint32_t bogus = 0x00FFFFFF;
  std::memcpy(frame.data() + count_off, &bogus, sizeof(bogus));
  rc::ml::ByteReader r(frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes);
  FrameHeader h;
  ASSERT_EQ(DecodeHeader(r, &h), WireStatus::kOk);
  PredictManyRequest req;
  EXPECT_EQ(DecodePredictManyRequest(r, kMaxBatch, &req), WireStatus::kBatchTooLarge);
  EXPECT_TRUE(req.inputs.empty());

  // A count within kMaxBatch but inconsistent with the actual bytes is
  // malformed, not a crash or an over-allocation.
  uint32_t inconsistent = 100;
  std::memcpy(frame.data() + count_off, &inconsistent, sizeof(inconsistent));
  rc::ml::ByteReader r2(frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes);
  ASSERT_EQ(DecodeHeader(r2, &h), WireStatus::kOk);
  EXPECT_EQ(DecodePredictManyRequest(r2, kMaxBatch, &req), WireStatus::kMalformed);
}

TEST(NetProtocolTest, TrailingGarbageIsMalformed) {
  std::vector<uint8_t> frame;
  AppendPredictSingleRequest(frame, 1, "M", SampleInputs());
  // Rebuild the frame with two extra bytes inside the declared payload.
  std::vector<uint8_t> body(frame.begin() + kLengthPrefixBytes + kHeaderBytes, frame.end());
  body.push_back(0xAA);
  body.push_back(0xBB);
  std::vector<uint8_t> padded;
  AppendFrame(padded, Opcode::kPredictSingle, 1, body);
  rc::ml::ByteReader r(padded.data() + kLengthPrefixBytes, padded.size() - kLengthPrefixBytes);
  FrameHeader h;
  ASSERT_EQ(DecodeHeader(r, &h), WireStatus::kOk);
  PredictSingleRequest req;
  EXPECT_EQ(DecodePredictSingleRequest(r, &req), WireStatus::kMalformed);
}

TEST(NetProtocolTest, TraceContextRoundTrips) {
  rc::obs::TraceContext trace{0xDEADBEEF12345678ull, 0xCAFE000000000042ull, true};
  std::vector<uint8_t> frame;
  AppendPredictSingleRequest(frame, 7, "VM_AVGUTIL", SampleInputs(), trace);
  auto [header, r] = OpenFrame(frame);
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.flags, kFlagTraceContext);
  EXPECT_EQ(header.trace.trace_id, trace.trace_id);
  EXPECT_EQ(header.trace.span_id, trace.span_id);
  EXPECT_TRUE(header.trace.sampled);
  PredictSingleRequest req;  // the body still decodes after the trace block
  ASSERT_EQ(DecodePredictSingleRequest(r, &req), WireStatus::kOk);
  EXPECT_EQ(req.model, "VM_AVGUTIL");
}

TEST(NetProtocolTest, UntracedV2FrameHasNoTraceBlock) {
  std::vector<uint8_t> frame;
  AppendPredictSingleRequest(frame, 7, "M", SampleInputs());
  auto [header, r] = OpenFrame(frame);
  EXPECT_EQ(header.flags, 0);
  EXPECT_EQ(header.trace.trace_id, 0u);
  EXPECT_FALSE(header.trace.valid());
}

// A legacy v1 peer's frame (16-byte header, no flags byte) must still parse
// against a v2 server — the compatibility promise of the version bump.
TEST(NetProtocolTest, V1FrameStillDecodes) {
  std::vector<uint8_t> frame;
  AppendFrame(frame, Opcode::kHealth, 88, {}, kProtocolVersionV1);
  rc::ml::ByteReader r(frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes);
  FrameHeader h;
  ASSERT_EQ(DecodeHeader(r, &h), WireStatus::kOk);
  EXPECT_EQ(h.version, kProtocolVersionV1);
  EXPECT_EQ(h.request_id, 88u);
  EXPECT_EQ(h.flags, 0);
  EXPECT_FALSE(h.trace.valid());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(frame.size(), kLengthPrefixBytes + kHeaderBytesV1);
}

// Flags announce a trace block the payload doesn't contain: the header
// decoder must reject before reading past the end (validate-before-read).
TEST(NetProtocolTest, TruncatedTraceBlockIsMalformed) {
  rc::obs::TraceContext trace{1, 2, true};
  std::vector<uint8_t> frame;
  AppendFrame(frame, Opcode::kHealth, 5, {}, kProtocolVersion, trace);
  for (size_t chop = 1; chop <= kTraceWireBytes; ++chop) {
    std::vector<uint8_t> bad(frame.begin(), frame.end() - static_cast<long>(chop));
    uint32_t payload_len = static_cast<uint32_t>(bad.size() - kLengthPrefixBytes);
    std::memcpy(bad.data(), &payload_len, sizeof(payload_len));
    rc::ml::ByteReader r(bad.data() + kLengthPrefixBytes, payload_len);
    FrameHeader h;
    EXPECT_EQ(DecodeHeader(r, &h), WireStatus::kMalformed) << "chop " << chop;
  }
}

// Unknown v2 flag bits are rejected rather than skipped: a future flag may
// change the layout after the flags byte, so guessing would misparse.
TEST(NetProtocolTest, UnknownFlagBitsAreMalformed) {
  std::vector<uint8_t> frame;
  AppendHealthRequest(frame, 3);
  ASSERT_EQ(frame.size(), kLengthPrefixBytes + kHeaderBytes);
  frame[kLengthPrefixBytes + kHeaderBytesV1] = 0x02;  // the flags byte
  rc::ml::ByteReader r(frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes);
  FrameHeader h;
  EXPECT_EQ(DecodeHeader(r, &h), WireStatus::kMalformed);
}

// Responses can echo the v1 layout so a legacy client can parse its reply.
TEST(NetProtocolTest, V1ResponseEchoParses) {
  std::vector<uint8_t> frame;
  AppendPredictSingleResponse(frame, 12, core::Prediction::Of(1, 0.25), kProtocolVersionV1);
  rc::ml::ByteReader r(frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes);
  FrameHeader h;
  ASSERT_EQ(DecodeHeader(r, &h), WireStatus::kOk);
  EXPECT_EQ(h.version, kProtocolVersionV1);
  WireStatus remote;
  core::Prediction p;
  std::string error;
  ASSERT_TRUE(DecodePredictSingleResponse(r, &remote, &p, &error));
  EXPECT_EQ(remote, WireStatus::kOk);
  EXPECT_EQ(p.bucket, 1);
}

}  // namespace
}  // namespace rc::net
