// Random Forest and Gradient Boosted Trees behaviour, serialization, and the
// classifier registry.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"

namespace rc::ml {
namespace {

// Noisy 3-class problem over 3 features.
Dataset MakeMulticlass(uint64_t seed, int n) {
  Rng rng(seed);
  Dataset d({"x0", "x1", "x2"});
  for (int i = 0; i < n; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    int label = row[0] + 0.5 * row[1] > 0.8 ? (row[2] > 0.5 ? 2 : 1) : 0;
    if (rng.Bernoulli(0.05)) label = static_cast<int>(rng.UniformInt(0, 2));
    d.AddRow(row, label);
  }
  return d;
}

double Accuracy(const Classifier& model, const Dataset& test) {
  int correct = 0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    if (model.PredictScored(test.Row(i)).label == test.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.num_rows());
}

TEST(RandomForestTest, LearnsMulticlass) {
  Dataset train = MakeMulticlass(1, 6000);
  Dataset test = MakeMulticlass(2, 2000);
  RandomForestConfig config;
  config.num_trees = 30;
  RandomForest forest = RandomForest::Fit(train, config);
  EXPECT_EQ(forest.num_classes(), 3);
  EXPECT_EQ(forest.num_features(), 3);
  EXPECT_EQ(forest.tree_count(), 30u);
  EXPECT_GT(Accuracy(forest, test), 0.9);
}

TEST(RandomForestTest, ProbabilitiesNormalized) {
  Dataset train = MakeMulticlass(3, 2000);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest = RandomForest::Fit(train, config);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto probs = forest.PredictProba(row);
    double sum = probs[0] + probs[1] + probs[2];
    ASSERT_NEAR(sum, 1.0, 1e-6);  // leaf distributions are floats
    for (double p : probs) ASSERT_GE(p, 0.0);
  }
}

TEST(RandomForestTest, DeterministicAcrossThreadCounts) {
  Dataset train = MakeMulticlass(5, 1500);
  RandomForestConfig one_thread;
  one_thread.num_trees = 8;
  one_thread.num_threads = 1;
  RandomForestConfig two_threads = one_thread;
  two_threads.num_threads = 2;
  RandomForest a = RandomForest::Fit(train, one_thread);
  RandomForest b = RandomForest::Fit(train, two_threads);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto pa = a.PredictProba(row);
    auto pb = b.PredictProba(row);
    for (size_t c = 0; c < pa.size(); ++c) ASSERT_EQ(pa[c], pb[c]);
  }
}

TEST(RandomForestTest, SerializationRoundTrip) {
  Dataset train = MakeMulticlass(7, 2000);
  RandomForestConfig config;
  config.num_trees = 12;
  RandomForest forest = RandomForest::Fit(train, config);
  auto bytes = forest.SerializeTagged();
  auto restored = Classifier::DeserializeTagged(bytes);
  EXPECT_STREQ(restored->type_name(), "random_forest");
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto pa = forest.PredictProba(row);
    auto pb = restored->PredictProba(row);
    for (size_t c = 0; c < pa.size(); ++c) ASSERT_EQ(pa[c], pb[c]);
  }
}

TEST(RandomForestTest, FeatureImportanceIdentifiesSignal) {
  Rng rng(9);
  Dataset d({"noise0", "signal", "noise1"});
  for (int i = 0; i < 4000; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    d.AddRow(row, row[1] > 0.55 ? 1 : 0);
  }
  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest forest = RandomForest::Fit(d, config);
  auto importance = forest.FeatureImportance();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[1], 0.7);
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
}

TEST(RandomForestTest, EmptyDataThrows) {
  Dataset d({"x"});
  EXPECT_THROW(RandomForest::Fit(d, RandomForestConfig{}), std::invalid_argument);
}

TEST(GbtTest, LearnsMulticlass) {
  Dataset train = MakeMulticlass(11, 6000);
  Dataset test = MakeMulticlass(12, 2000);
  GbtConfig config;
  config.num_rounds = 40;
  GradientBoostedTrees model = GradientBoostedTrees::Fit(train, config);
  EXPECT_EQ(model.num_classes(), 3);
  EXPECT_EQ(model.tree_count(), 40u * 3u);  // K trees per round
  EXPECT_GT(Accuracy(model, test), 0.9);
}

TEST(GbtTest, BinaryUsesSingleTreePerRound) {
  Rng rng(13);
  Dataset train({"a", "b"});
  for (int i = 0; i < 3000; ++i) {
    double row[2] = {rng.NextDouble(), rng.NextDouble()};
    train.AddRow(row, row[0] * row[0] + row[1] > 0.9 ? 1 : 0);
  }
  GbtConfig config;
  config.num_rounds = 30;
  GradientBoostedTrees model = GradientBoostedTrees::Fit(train, config);
  EXPECT_EQ(model.tree_count(), 30u);
  EXPECT_GT(Accuracy(model, train), 0.97);
}

TEST(GbtTest, ProbabilitiesNormalized) {
  Dataset train = MakeMulticlass(14, 1500);
  GbtConfig config;
  config.num_rounds = 10;
  GradientBoostedTrees model = GradientBoostedTrees::Fit(train, config);
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto probs = model.PredictProba(row);
    ASSERT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-9);
  }
}

TEST(GbtTest, MoreRoundsReduceTrainLoss) {
  Dataset train = MakeMulticlass(16, 3000);
  GbtConfig short_config;
  short_config.num_rounds = 3;
  GbtConfig long_config;
  long_config.num_rounds = 40;
  auto short_model = GradientBoostedTrees::Fit(train, short_config);
  auto long_model = GradientBoostedTrees::Fit(train, long_config);
  EXPECT_GT(Accuracy(long_model, train), Accuracy(short_model, train));
}

TEST(GbtTest, ClassWeightBoostsMinorityRecall) {
  // Imbalanced binary problem with overlapping classes: upweighting the
  // rare class must increase its recall.
  Rng rng(17);
  Dataset train({"x"});
  auto make = [&](Dataset& d, int n) {
    for (int i = 0; i < n; ++i) {
      bool rare = rng.Bernoulli(0.03);
      double v = rare ? rng.Normal(0.6, 0.2) : rng.Normal(0.4, 0.2);
      d.AddRow({&v, 1}, rare ? 1 : 0);
    }
  };
  make(train, 8000);
  Dataset test({"x"});
  make(test, 4000);

  GbtConfig plain;
  plain.num_rounds = 20;
  GbtConfig weighted = plain;
  weighted.class_weights = {1.0, 25.0};

  auto recall = [&](const Classifier& m) {
    int tp = 0, fn = 0;
    for (size_t i = 0; i < test.num_rows(); ++i) {
      if (test.Label(i) != 1) continue;
      if (m.PredictScored(test.Row(i)).label == 1) {
        ++tp;
      } else {
        ++fn;
      }
    }
    return static_cast<double>(tp) / static_cast<double>(tp + fn);
  };
  auto m_plain = GradientBoostedTrees::Fit(train, plain);
  auto m_weighted = GradientBoostedTrees::Fit(train, weighted);
  EXPECT_GT(recall(m_weighted), recall(m_plain) + 0.2);
}

TEST(GbtTest, ClassWeightSizeValidated) {
  Dataset train = MakeMulticlass(18, 100);
  GbtConfig config;
  config.class_weights = {1.0, 2.0};  // 3 classes
  EXPECT_THROW(GradientBoostedTrees::Fit(train, config), std::invalid_argument);
}

TEST(GbtTest, SerializationRoundTrip) {
  Dataset train = MakeMulticlass(19, 2000);
  GbtConfig config;
  config.num_rounds = 15;
  auto model = GradientBoostedTrees::Fit(train, config);
  auto restored = Classifier::DeserializeTagged(model.SerializeTagged());
  EXPECT_STREQ(restored->type_name(), "gbt");
  Rng rng(20);
  for (int i = 0; i < 200; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto pa = model.PredictProba(row);
    auto pb = restored->PredictProba(row);
    for (size_t c = 0; c < pa.size(); ++c) ASSERT_EQ(pa[c], pb[c]);
  }
}

TEST(ClassifierRegistryTest, UnknownTagThrows) {
  ByteWriter w;
  w.String("mystery_model");
  auto bytes = w.TakeBytes();
  EXPECT_THROW(Classifier::DeserializeTagged(bytes), std::runtime_error);
}

TEST(ClassifierTest, PredictScoredPicksArgmax) {
  Dataset train = MakeMulticlass(21, 3000);
  RandomForestConfig config;
  config.num_trees = 10;
  RandomForest forest = RandomForest::Fit(train, config);
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    auto probs = forest.PredictProba(row);
    auto scored = forest.PredictScored(row);
    double max_p = *std::max_element(probs.begin(), probs.end());
    ASSERT_EQ(scored.score, max_p);
    ASSERT_EQ(probs[static_cast<size_t>(scored.label)], max_p);
  }
}

}  // namespace
}  // namespace rc::ml
