// Fuzz-style corruption tests for every deserializer that consumes bytes
// from the store or the disk cache. The contract under corruption is:
// decoding either throws (std::exception) or yields an object that is safe
// to query — it must never crash, read out of bounds, loop forever, or
// attempt an absurd allocation from a corrupt length field.
#include <cstring>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/feature_data.h"
#include "src/core/model_spec.h"
#include "src/ml/classifier.h"
#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"

namespace rc::ml {
namespace {

Dataset MakeDataset(uint64_t seed, int n) {
  Rng rng(seed);
  Dataset d({"x0", "x1", "x2"});
  for (int i = 0; i < n; ++i) {
    double row[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    int label = row[0] + 0.5 * row[1] > 0.8 ? (row[2] > 0.5 ? 2 : 1) : 0;
    d.AddRow(row, label);
  }
  return d;
}

std::vector<uint8_t> SmallForestBytes() {
  RandomForestConfig config;
  config.num_trees = 4;
  config.tree.max_depth = 4;
  config.seed = 11;
  return RandomForest::Fit(MakeDataset(1, 300), config).SerializeTagged();
}

std::vector<uint8_t> SmallGbtBytes() {
  GbtConfig config;
  config.num_rounds = 4;
  config.tree.max_depth = 3;
  config.seed = 12;
  return GradientBoostedTrees::Fit(MakeDataset(2, 300), config).SerializeTagged();
}

// Decoding corrupted bytes must either throw or produce a model that can be
// queried without touching invalid memory. Returns true if decode succeeded.
bool DecodeAndExercise(const std::vector<uint8_t>& bytes) {
  std::unique_ptr<Classifier> model;
  try {
    model = Classifier::DeserializeTagged(bytes);
  } catch (const std::exception&) {
    return false;  // rejection is the expected outcome for most corruptions
  }
  // Survived decode: every query below must be memory-safe because the
  // deserializers validated node children, leaf payloads, and feature
  // indices against the ensemble header.
  int k = model->num_classes();
  int f = model->num_features();
  EXPECT_GE(k, 0);
  EXPECT_GE(f, 0);
  std::vector<double> x(static_cast<size_t>(f), 0.5);
  if (k > 0) {
    auto scored = model->PredictScored(x);
    EXPECT_GE(scored.label, 0);
    EXPECT_LT(scored.label, k);
  }
  return true;
}

TEST(BytesFuzzTest, ForestTruncationAtEveryBoundaryThrows) {
  std::vector<uint8_t> bytes = SmallForestBytes();
  ASSERT_GT(bytes.size(), 100u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(Classifier::DeserializeTagged(prefix), std::exception)
        << "truncation to " << len << " bytes decoded successfully";
  }
  EXPECT_TRUE(DecodeAndExercise(bytes));  // the untruncated buffer is fine
}

TEST(BytesFuzzTest, GbtTruncationAtEveryBoundaryThrows) {
  std::vector<uint8_t> bytes = SmallGbtBytes();
  ASSERT_GT(bytes.size(), 100u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(Classifier::DeserializeTagged(prefix), std::exception)
        << "truncation to " << len << " bytes decoded successfully";
  }
  EXPECT_TRUE(DecodeAndExercise(bytes));
}

TEST(BytesFuzzTest, ForestRandomByteFlipsNeverCrash) {
  std::vector<uint8_t> clean = SmallForestBytes();
  Rng rng(99);
  int decoded = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> bytes = clean;
    int flips = 1 + static_cast<int>(rng.UniformInt(0, 7));
    for (int i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(0, 254));
    }
    if (DecodeAndExercise(bytes)) ++decoded;
  }
  // Most flips land in float payloads (thresholds, probabilities) and decode
  // fine; the point is that *no* flip pattern crashes. Sanity-check both
  // outcomes occur so the test is actually exercising the reject paths.
  EXPECT_GT(decoded, 0);
  EXPECT_LT(decoded, 300);
}

TEST(BytesFuzzTest, GbtRandomByteFlipsNeverCrash) {
  std::vector<uint8_t> clean = SmallGbtBytes();
  Rng rng(101);
  int decoded = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> bytes = clean;
    int flips = 1 + static_cast<int>(rng.UniformInt(0, 7));
    for (int i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(0, 254));
    }
    if (DecodeAndExercise(bytes)) ++decoded;
  }
  EXPECT_GT(decoded, 0);
  EXPECT_LT(decoded, 300);
}

TEST(BytesFuzzTest, OversizedTreeCountRejectedWithoutAllocating) {
  ByteWriter w;
  w.String("random_forest");
  w.I32(3);            // num_classes
  w.I32(3);            // num_features
  w.U32(0xFFFFFFFFu);  // tree count far beyond what 0 remaining bytes can back
  EXPECT_THROW(Classifier::DeserializeTagged(w.TakeBytes()), std::exception);
}

TEST(BytesFuzzTest, OversizedNodeCountRejectedWithoutAllocating) {
  ByteWriter w;
  w.I32(2);            // num_classes
  w.U32(0x40000000u);  // ~1B nodes -> 24 GiB; must throw before resize()
  std::vector<uint8_t> bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_THROW(DecisionTree::Deserialize(r), std::exception);
}

TEST(BytesFuzzTest, OversizedPodVectorRejected) {
  ByteWriter w;
  w.String("gbt");
  w.I32(2);            // num_classes
  w.I32(3);            // num_features
  w.F64(0.1);          // learning rate
  w.U32(0xFFFFFFF0u);  // base_score element count with no bytes behind it
  EXPECT_THROW(Classifier::DeserializeTagged(w.TakeBytes()), std::exception);
}

TEST(BytesFuzzTest, UnknownClassifierTagRejected) {
  ByteWriter w;
  w.String("linear_regression");
  EXPECT_THROW(Classifier::DeserializeTagged(w.TakeBytes()), std::exception);
}

TEST(BytesFuzzTest, TreeWithBackEdgeRejected) {
  // Handcraft a 3-node tree whose root points back at itself: without the
  // child-follows-parent check, prediction would loop forever.
  ByteWriter w;
  w.I32(2);  // num_classes
  w.U32(3);  // node count
  // node 0: internal, left points back to 0
  w.I32(0); w.F64(0.5); w.I32(0); w.I32(2); w.I32(-1);
  // nodes 1, 2: leaves
  w.I32(-1); w.F64(0.0); w.I32(-1); w.I32(-1); w.I32(0);
  w.I32(-1); w.F64(0.0); w.I32(-1); w.I32(-1); w.I32(1);
  w.PodVector(std::vector<float>{1.0f, 0.0f, 0.0f, 1.0f});  // 2 leaf rows
  w.PodVector(std::vector<double>{});
  std::vector<uint8_t> bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_THROW(DecisionTree::Deserialize(r), std::exception);
}

TEST(BytesFuzzTest, TreeLeafPayloadOutOfRangeRejected) {
  ByteWriter w;
  w.I32(2);  // num_classes
  w.U32(1);  // single leaf
  w.I32(-1); w.F64(0.0); w.I32(-1); w.I32(-1); w.I32(7);  // payload row 7 of 1
  w.PodVector(std::vector<float>{0.5f, 0.5f});
  w.PodVector(std::vector<double>{});
  std::vector<uint8_t> bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_THROW(DecisionTree::Deserialize(r), std::exception);
}

TEST(BytesFuzzTest, TreeSplitFeatureBeyondEnsembleWidthRejected) {
  // A structurally valid tree whose split feature exceeds the ensemble's
  // feature count must be rejected when the ensemble contract is supplied.
  ByteWriter w;
  w.I32(2);  // num_classes
  w.U32(3);
  w.I32(250); w.F64(0.5); w.I32(1); w.I32(2); w.I32(-1);  // split on feature 250
  w.I32(-1); w.F64(0.0); w.I32(-1); w.I32(-1); w.I32(0);
  w.I32(-1); w.F64(0.0); w.I32(-1); w.I32(-1); w.I32(1);
  w.PodVector(std::vector<float>{1.0f, 0.0f, 0.0f, 1.0f});
  w.PodVector(std::vector<double>{});
  std::vector<uint8_t> bytes = w.TakeBytes();
  {
    ByteReader r(bytes);
    EXPECT_THROW(DecisionTree::Deserialize(r, 2, 3), std::exception);
  }
  {
    ByteReader r(bytes);  // without the contract the tree is self-consistent
    EXPECT_NO_THROW(DecisionTree::Deserialize(r));
  }
}

TEST(BytesFuzzTest, ModelSpecCorruptionRejected) {
  rc::core::ModelSpec spec;
  spec.name = "lifetime";
  spec.metric = rc::Metric::kLifetime;
  spec.model_family = "gbt";
  spec.num_features = 17;
  spec.version = 3;
  std::vector<uint8_t> clean = spec.Serialize();

  // Round-trips cleanly.
  EXPECT_NO_THROW(rc::core::ModelSpec::Deserialize(clean));

  // Truncation at every boundary throws.
  for (size_t len = 0; len < clean.size(); ++len) {
    std::vector<uint8_t> prefix(clean.begin(), clean.begin() + static_cast<long>(len));
    EXPECT_THROW(rc::core::ModelSpec::Deserialize(prefix), std::exception);
  }

  // Out-of-range metric enum: a Featurizer built from it would index out of
  // bounds, so Deserialize must reject it.
  {
    rc::ml::ByteWriter w;
    w.String("lifetime");
    w.I32(999);  // metric
    w.I32(0);    // encoding
    w.String("gbt");
    w.U32(17);
    w.U64(3);
    EXPECT_THROW(rc::core::ModelSpec::Deserialize(w.TakeBytes()), std::exception);
  }
  {
    rc::ml::ByteWriter w;
    w.String("lifetime");
    w.I32(0);
    w.I32(-5);  // encoding below range
    w.String("gbt");
    w.U32(17);
    w.U64(3);
    EXPECT_THROW(rc::core::ModelSpec::Deserialize(w.TakeBytes()), std::exception);
  }
}

TEST(BytesFuzzTest, SubscriptionFeaturesTruncationThrowsFlipsAreSafe) {
  rc::core::SubscriptionFeatures f;
  f.subscription_id = 42;
  f.vm_count = 10;
  f.deployment_count = 2;
  f.mean_avg_cpu = 0.3;
  std::vector<uint8_t> clean = f.Serialize();

  for (size_t len = 0; len < clean.size(); ++len) {
    std::vector<uint8_t> prefix(clean.begin(), clean.begin() + static_cast<long>(len));
    EXPECT_THROW(rc::core::SubscriptionFeatures::Deserialize(prefix), std::exception);
  }

  // The record is fixed-width, so bit flips change values but can never make
  // decoding unsafe.
  Rng rng(55);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<uint8_t> bytes = clean;
    size_t pos =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(0, 254));
    EXPECT_NO_THROW(rc::core::SubscriptionFeatures::Deserialize(bytes));
  }
}

}  // namespace
}  // namespace rc::ml
