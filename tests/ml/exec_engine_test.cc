// Bit-exactness parity suite for the compiled execution engine: across
// randomized forests / GBTs, feature counts, depths, class counts, and
// NaN/infinity inputs, ExecEngine output must be EXACTLY equal (EXPECT_EQ on
// doubles, no tolerance) to the legacy per-tree AoS traversal. The engine is
// a pure representation change; any ULP of drift is a compile bug.
#include "src/ml/exec_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"

namespace rc::ml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Random dataset whose labels loosely depend on the features, so the trees
// grow real structure instead of collapsing to the root.
Dataset RandomDataset(size_t rows, size_t features, int classes, Rng& rng) {
  std::vector<std::string> names;
  for (size_t f = 0; f < features; ++f) names.push_back("f" + std::to_string(f));
  Dataset data(std::move(names));
  std::vector<double> row(features);
  for (size_t i = 0; i < rows; ++i) {
    double signal = 0.0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Uniform(-5.0, 5.0);
      if (f % 3 == 0) signal += row[f];
    }
    int label = static_cast<int>(std::fmod(std::fabs(signal), classes));
    if (rng.Bernoulli(0.1)) label = static_cast<int>(rng.UniformInt(0, classes - 1));
    data.AddRow(row, label);
  }
  // Guarantee every class appears so NumClasses() == classes.
  for (int c = 0; c < classes; ++c) {
    for (size_t f = 0; f < features; ++f) row[f] = static_cast<double>(c);
    data.AddRow(row, c);
  }
  return data;
}

// Test vectors: random rows plus adversarial NaN / infinity patterns (NaN
// compares false against every threshold, so it must always go right —
// in both traversals).
std::vector<std::vector<double>> TestRows(size_t features, Rng& rng) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 64; ++i) {
    std::vector<double> row(features);
    for (auto& v : row) v = rng.Uniform(-6.0, 6.0);
    rows.push_back(std::move(row));
  }
  rows.push_back(std::vector<double>(features, kNaN));
  rows.push_back(std::vector<double>(features, kInf));
  rows.push_back(std::vector<double>(features, -kInf));
  std::vector<double> mixed(features);
  for (size_t f = 0; f < features; ++f) {
    mixed[f] = f % 3 == 0 ? kNaN : (f % 3 == 1 ? kInf : -1.5);
  }
  rows.push_back(std::move(mixed));
  return rows;
}

void ExpectExactlyEqual(std::span<const double> legacy, std::span<const double> engine) {
  ASSERT_EQ(legacy.size(), engine.size());
  for (size_t c = 0; c < legacy.size(); ++c) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: bit-exact, zero ULP of tolerance.
    EXPECT_EQ(legacy[c], engine[c]) << "class " << c;
  }
}

TEST(ExecEngineParityTest, RandomForestAcrossShapes) {
  Rng rng(101);
  struct Shape {
    size_t features;
    int classes;
    int trees;
    int depth;
  };
  for (const Shape& s : {Shape{1, 2, 3, 2}, Shape{7, 3, 8, 4}, Shape{23, 4, 16, 9},
                         Shape{64, 4, 12, 14}}) {
    Dataset data = RandomDataset(600, s.features, s.classes, rng);
    RandomForestConfig config;
    config.num_trees = s.trees;
    config.tree.max_depth = s.depth;
    config.seed = rng.NextU64();
    RandomForest forest = RandomForest::Fit(data, config);
    ASSERT_NE(forest.engine(), nullptr);
    EXPECT_EQ(forest.engine()->family(), ExecEngine::Family::kAveragedForest);
    EXPECT_EQ(forest.engine()->tree_count(), forest.tree_count());

    std::vector<double> engine_out(static_cast<size_t>(s.classes));
    for (const auto& row : TestRows(s.features, rng)) {
      auto legacy = forest.PredictProbaLegacy(row);
      forest.engine()->PredictInto(row, engine_out);
      ExpectExactlyEqual(legacy, engine_out);
    }
  }
}

TEST(ExecEngineParityTest, GbtBinaryAndMulticlass) {
  Rng rng(202);
  struct Shape {
    size_t features;
    int classes;
    int rounds;
    int depth;
  };
  for (const Shape& s : {Shape{2, 2, 6, 3}, Shape{11, 2, 12, 6}, Shape{9, 3, 8, 5},
                         Shape{31, 4, 10, 6}}) {
    Dataset data = RandomDataset(600, s.features, s.classes, rng);
    GbtConfig config;
    config.num_rounds = s.rounds;
    config.tree.max_depth = s.depth;
    config.seed = rng.NextU64();
    GradientBoostedTrees model = GradientBoostedTrees::Fit(data, config);
    ASSERT_NE(model.engine(), nullptr);
    EXPECT_EQ(model.engine()->family(), ExecEngine::Family::kBoosted);

    std::vector<double> engine_out(static_cast<size_t>(s.classes));
    for (const auto& row : TestRows(s.features, rng)) {
      auto legacy = model.PredictProbaLegacy(row);
      model.engine()->PredictInto(row, engine_out);
      ExpectExactlyEqual(legacy, engine_out);
    }
  }
}

TEST(ExecEngineParityTest, BatchMatchesSingleAtEveryIndexAndStride) {
  Rng rng(303);
  const size_t features = 13;
  Dataset data = RandomDataset(500, features, 3, rng);
  RandomForestConfig rf_config;
  rf_config.num_trees = 10;
  rf_config.tree.max_depth = 8;
  RandomForest forest = RandomForest::Fit(data, rf_config);
  GbtConfig gbt_config;
  gbt_config.num_rounds = 6;
  GradientBoostedTrees gbt = GradientBoostedTrees::Fit(data, gbt_config);

  for (const Classifier* model : {static_cast<const Classifier*>(&forest),
                                  static_cast<const Classifier*>(&gbt)}) {
    const size_t k = static_cast<size_t>(model->num_classes());
    for (size_t n : {size_t{1}, size_t{2}, size_t{8}, size_t{65}}) {
      // stride > features exercises the padded-row form the client arena uses.
      for (size_t stride : {features, features + 3}) {
        std::vector<double> X(n * stride, 0.25);
        for (size_t i = 0; i < n; ++i) {
          for (size_t f = 0; f < features; ++f) {
            X[i * stride + f] = rng.Uniform(-4.0, 4.0);
          }
        }
        if (n > 2) X[2 * stride] = kNaN;  // a NaN row inside the batch
        std::vector<double> batch_out(n * k);
        model->engine()->PredictBatch(X.data(), n, stride, batch_out.data());
        std::vector<double> single(k);
        for (size_t i = 0; i < n; ++i) {
          model->engine()->PredictInto({X.data() + i * stride, features}, single);
          ExpectExactlyEqual(single, {batch_out.data() + i * k, k});
          auto legacy = model->PredictProba({X.data() + i * stride, features});
          ExpectExactlyEqual(legacy, {batch_out.data() + i * k, k});
        }
      }
    }
  }
}

TEST(ExecEngineParityTest, SurvivesSerializationRoundTrip) {
  Rng rng(404);
  Dataset data = RandomDataset(400, 9, 4, rng);
  RandomForestConfig config;
  config.num_trees = 6;
  RandomForest forest = RandomForest::Fit(data, config);
  auto restored = Classifier::DeserializeTagged(forest.SerializeTagged());
  ASSERT_NE(restored->engine(), nullptr);
  std::vector<double> a(4), b(4);
  for (const auto& row : TestRows(9, rng)) {
    forest.engine()->PredictInto(row, a);
    restored->engine()->PredictInto(row, b);
    ExpectExactlyEqual(a, b);
  }
}

TEST(ExecEngineTest, ScoredMatchesClassifierScored) {
  Rng rng(505);
  Dataset data = RandomDataset(400, 6, 3, rng);
  GbtConfig config;
  config.num_rounds = 5;
  GradientBoostedTrees model = GradientBoostedTrees::Fit(data, config);
  std::vector<double> scratch(3);
  for (const auto& row : TestRows(6, rng)) {
    auto via_classifier = model.PredictScored(row);
    auto via_engine = model.engine()->PredictScored(row, scratch);
    EXPECT_EQ(via_classifier.label, via_engine.label);
    EXPECT_EQ(via_classifier.score, via_engine.score);
  }
}

TEST(ExecEngineTest, PoolAccountingMatchesTreeStructure) {
  Rng rng(606);
  Dataset data = RandomDataset(500, 8, 3, rng);
  RandomForestConfig config;
  config.num_trees = 7;
  config.tree.max_depth = 6;
  RandomForest forest = RandomForest::Fit(data, config);
  size_t nodes = 0, leaves = 0;
  for (size_t t = 0; t < forest.tree_count(); ++t) {
    nodes += forest.tree(t).node_count();
    leaves += forest.tree(t).leaf_count();
  }
  const ExecEngine& engine = *forest.engine();
  EXPECT_EQ(engine.internal_node_count(), nodes - leaves);
  EXPECT_EQ(engine.leaf_payload_count(), leaves);
  EXPECT_EQ(engine.num_features(), forest.num_features());
  EXPECT_EQ(engine.num_classes(), forest.num_classes());
}

TEST(ExecEngineTest, TryCompileDispatchesOnConcreteType) {
  Rng rng(707);
  Dataset data = RandomDataset(300, 4, 2, rng);
  RandomForestConfig config;
  config.num_trees = 3;
  RandomForest forest = RandomForest::Fit(data, config);
  auto engine = ExecEngine::TryCompile(forest);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->family(), ExecEngine::Family::kAveragedForest);

  class Opaque final : public Classifier {
   public:
    int num_classes() const override { return 2; }
    int num_features() const override { return 1; }
    std::vector<double> PredictProba(std::span<const double>) const override {
      return {0.5, 0.5};
    }
    const char* type_name() const override { return "opaque"; }
    void Serialize(ByteWriter&) const override {}
  };
  Opaque opaque;
  EXPECT_EQ(ExecEngine::TryCompile(opaque), nullptr);
  // The virtual batch fallback still serves custom classifiers.
  double x = 0.0, out[4] = {};
  opaque.PredictBatch(&x, 2, 0, out);
  EXPECT_EQ(out[0], 0.5);
  EXPECT_EQ(out[3], 0.5);
}

}  // namespace
}  // namespace rc::ml
