// Mode-dispatch, AVX2, and quantized-pool suites for ExecEngine.
//
//  * kScalar vs kAvx2 must be EXACTLY equal (EXPECT_EQ on doubles) for every
//    batch size around the SIMD block boundaries and for NaN / infinity /
//    denormal inputs — the AVX2 kernel only selects leaves, it performs no
//    arithmetic, so any drift is a kernel bug, not rounding.
//  * The quantized walk is held to a tolerance (its leaf tables are u16/f32)
//    but its SPLIT DECISIONS must match f64 exactly: the binning property
//    test probes every training threshold of every feature at the cut, one
//    ULP either side, and the usual adversarial specials.
//
// Suites are named ExecEngine* so tools/check_all.sh's --gtest_filter
// ('ExecEngine*') and the sanitizer scripts pick them up automatically.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/exec_engine.h"
#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"

namespace rc::ml {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

Dataset RandomDataset(size_t rows, size_t features, int classes, Rng& rng) {
  std::vector<std::string> names;
  for (size_t f = 0; f < features; ++f) names.push_back("f" + std::to_string(f));
  Dataset data(std::move(names));
  std::vector<double> row(features);
  for (size_t i = 0; i < rows; ++i) {
    double signal = 0.0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Uniform(-5.0, 5.0);
      if (f % 3 == 0) signal += row[f];
    }
    int label = static_cast<int>(std::fmod(std::fabs(signal), classes));
    if (rng.Bernoulli(0.1)) label = static_cast<int>(rng.UniformInt(0, classes - 1));
    data.AddRow(row, label);
  }
  for (int c = 0; c < classes; ++c) {
    for (size_t f = 0; f < features; ++f) row[f] = static_cast<double>(c);
    data.AddRow(row, c);
  }
  return data;
}

// Row-major batch with adversarial rows mixed in: every fourth row is all
// NaN / +inf / -inf / denormal so SIMD blocks contain special lanes next to
// ordinary ones, not just whole-batch specials.
std::vector<double> AdversarialBatch(size_t n, size_t stride, size_t features,
                                     Rng& rng) {
  std::vector<double> X(n * stride, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double* row = X.data() + i * stride;
    switch (i % 8) {
      case 3:
        for (size_t f = 0; f < features; ++f) row[f] = kNaN;
        break;
      case 5:
        for (size_t f = 0; f < features; ++f) row[f] = (f % 2) ? kInf : -kInf;
        break;
      case 7:
        for (size_t f = 0; f < features; ++f) row[f] = (f % 2) ? kDenorm : -kDenorm;
        break;
      default:
        for (size_t f = 0; f < features; ++f) row[f] = rng.Uniform(-6.0, 6.0);
    }
  }
  return X;
}

TEST(ExecEngineModesTest, ParseModeAndModeNameRoundTrip) {
  using Mode = ExecEngine::Mode;
  for (Mode m : {Mode::kAuto, Mode::kScalar, Mode::kAvx2, Mode::kQuantized}) {
    auto parsed = ExecEngine::ParseMode(ExecEngine::ModeName(m));
    ASSERT_TRUE(parsed.has_value()) << ExecEngine::ModeName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ExecEngine::ParseMode("").has_value());
  EXPECT_FALSE(ExecEngine::ParseMode("AVX2").has_value());
  EXPECT_FALSE(ExecEngine::ParseMode("auto ").has_value());
}

TEST(ExecEngineModesTest, ResolveHonoursHostAndModel) {
  using Mode = ExecEngine::Mode;
  Rng rng(11);
  Dataset data = RandomDataset(300, 6, 2, rng);
  RandomForestConfig config;
  config.num_trees = 4;
  RandomForest forest = RandomForest::Fit(data, config);
  const ExecEngine& engine = *forest.engine();

  const Mode fastest_exact =
      ExecEngine::Avx2Available() ? Mode::kAvx2 : Mode::kScalar;
  EXPECT_EQ(engine.Resolve(Mode::kAuto), fastest_exact);
  EXPECT_EQ(engine.Resolve(Mode::kScalar), Mode::kScalar);
  EXPECT_EQ(engine.Resolve(Mode::kAvx2), fastest_exact);
  // This model fits the u16 representation, so kQuantized sticks.
  ASSERT_TRUE(engine.has_quantized());
  EXPECT_EQ(engine.Resolve(Mode::kQuantized), Mode::kQuantized);
}

// Scalar and AVX2 walks must agree bit-for-bit at every batch size spanning
// the 32-row SIMD block, the 16-lane half block, and ragged tails on both
// sides — with special-value rows landing inside full SIMD blocks. When the
// host has no AVX2 kernel, kAvx2 resolves to kScalar and the test still
// (trivially) holds, so it runs everywhere.
TEST(ExecEngineModesTest, Avx2BitExactAcrossBlockBoundaries) {
  Rng rng(22);
  const size_t features = 19;
  Dataset data = RandomDataset(700, features, 3, rng);
  RandomForestConfig rf_config;
  rf_config.num_trees = 9;
  rf_config.tree.max_depth = 9;
  RandomForest forest = RandomForest::Fit(data, rf_config);
  GbtConfig gbt_config;
  gbt_config.num_rounds = 7;
  gbt_config.tree.max_depth = 5;
  GradientBoostedTrees gbt = GradientBoostedTrees::Fit(data, gbt_config);

  for (const Classifier* model : {static_cast<const Classifier*>(&forest),
                                  static_cast<const Classifier*>(&gbt)}) {
    const ExecEngine& engine = *model->engine();
    const size_t k = static_cast<size_t>(model->num_classes());
    for (size_t n : {size_t{1}, size_t{8}, size_t{15}, size_t{16}, size_t{17},
                     size_t{31}, size_t{32}, size_t{33}, size_t{48}, size_t{64},
                     size_t{65}, size_t{100}}) {
      for (size_t stride : {features, features + 5}) {
        std::vector<double> X = AdversarialBatch(n, stride, features, rng);
        std::vector<double> scalar_out(n * k), avx2_out(n * k, -1.0);
        engine.PredictBatch(X.data(), n, stride, scalar_out.data(),
                            ExecEngine::Mode::kScalar);
        engine.PredictBatch(X.data(), n, stride, avx2_out.data(),
                            ExecEngine::Mode::kAvx2);
        for (size_t i = 0; i < n * k; ++i) {
          // EXPECT_EQ, not NEAR: zero ULP of tolerance.
          EXPECT_EQ(scalar_out[i], avx2_out[i])
              << model->type_name() << " n=" << n << " stride=" << stride
              << " slot=" << i;
        }
      }
    }
  }
}

// The quantized walk re-derives every split through the bin tables; its
// probabilities come from u16 (forest) / f32 (boosted) leaf payloads, so the
// comparison is tolerance-based — but the answers must stay calibrated
// probabilities, and the pool must deliver the promised footprint win.
TEST(ExecEngineQuantizedTest, ToleranceParityAndFootprint) {
  Rng rng(33);
  struct Case {
    bool boosted;
    size_t features;
    int classes;
    int trees;
    int depth;
  };
  for (const Case& c : {Case{false, 40, 3, 16, 10}, Case{true, 24, 2, 24, 6}}) {
    Dataset data = RandomDataset(1200, c.features, c.classes, rng);
    const ExecEngine* engine = nullptr;
    RandomForest forest = [&] {
      RandomForestConfig config;
      config.num_trees = c.trees;
      config.tree.max_depth = c.depth;
      return RandomForest::Fit(data, config);
    }();
    GradientBoostedTrees gbt = [&] {
      GbtConfig config;
      config.num_rounds = c.trees;
      config.tree.max_depth = c.depth;
      return GradientBoostedTrees::Fit(data, config);
    }();
    engine = c.boosted ? gbt.engine() : forest.engine();
    ASSERT_TRUE(engine->has_quantized());
    // The footprint acceptance: u16 pool at most half the f64 pool.
    EXPECT_LE(engine->quantized_bytes(), engine->bytes() / 2)
        << "quantized " << engine->quantized_bytes() << " vs f64 "
        << engine->bytes();

    const size_t k = static_cast<size_t>(engine->num_classes());
    const size_t n = 96;
    std::vector<double> X = AdversarialBatch(n, c.features, c.features, rng);
    std::vector<double> exact(n * k), quant(n * k);
    engine->PredictBatch(X.data(), n, c.features, exact.data(),
                         ExecEngine::Mode::kScalar);
    engine->PredictBatch(X.data(), n, c.features, quant.data(),
                         ExecEngine::Mode::kQuantized);
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t cls = 0; cls < k; ++cls) {
        const double q = quant[i * k + cls];
        EXPECT_NEAR(exact[i * k + cls], q, 1e-3) << "row " << i << " class " << cls;
        EXPECT_GE(q, 0.0);
        sum += q;
      }
      EXPECT_NEAR(sum, 1.0, 1e-3) << "row " << i;
    }
  }
}

// The invariant that makes quantization split-exact: the node for sorted cut
// i stores rank i+1, and the walk descends left iff bin(x) < i+1, so
//   bin(x) <= i  <=>  x < cuts[i]
// must hold for EVERY feature, EVERY training threshold, and every probe —
// at the cut, one ULP either side, and the adversarial specials.
TEST(ExecEngineQuantizedTest, BinningNeverFlipsASplit) {
  Rng rng(44);
  Dataset data = RandomDataset(900, 15, 3, rng);
  RandomForestConfig config;
  config.num_trees = 12;
  config.tree.max_depth = 9;
  RandomForest forest = RandomForest::Fit(data, config);
  const ExecEngine& engine = *forest.engine();
  ASSERT_TRUE(engine.has_quantized());

  const double specials[] = {kNaN,  kInf,    -kInf,   0.0,
                             -0.0,  kDenorm, -kDenorm,
                             std::numeric_limits<double>::lowest(),
                             std::numeric_limits<double>::max()};
  size_t cut_total = 0;
  for (int f = 0; f < engine.num_features(); ++f) {
    const std::span<const double> cuts = engine.QuantizedCuts(f);
    cut_total += cuts.size();
    auto check = [&](double x) {
      const uint16_t bin = engine.QuantizeValue(f, x);
      for (size_t i = 0; i < cuts.size(); ++i) {
        // bin <= i must be exactly "x < cuts[i]" — NaN bins past every cut.
        EXPECT_EQ(bin <= i, x < cuts[i])
            << "feature " << f << " cut " << i << " (" << cuts[i] << ") x=" << x;
      }
    };
    for (size_t i = 0; i < cuts.size(); ++i) {
      check(cuts[i]);
      check(std::nextafter(cuts[i], -kInf));
      check(std::nextafter(cuts[i], kInf));
    }
    for (double s : specials) check(s);
  }
  ASSERT_GT(cut_total, 0u) << "forest grew no splits; test is vacuous";
}

// A model outside the u16 representation limits (here: more features than
// kMaxQuantFeatures) must simply not build a quantized pool — and requests
// for kQuantized must fall back to the exact walk, bit-for-bit.
TEST(ExecEngineQuantizedTest, UnrepresentableModelFallsBackExactly) {
  Rng rng(55);
  const size_t features = 520;  // > kMaxQuantFeatures (512)
  Dataset data = RandomDataset(120, features, 2, rng);
  RandomForestConfig config;
  config.num_trees = 2;
  config.tree.max_depth = 3;
  RandomForest forest = RandomForest::Fit(data, config);
  const ExecEngine& engine = *forest.engine();
  EXPECT_FALSE(engine.has_quantized());
  EXPECT_EQ(engine.quantized_bytes(), 0u);
  EXPECT_EQ(engine.bin_table_bytes(), 0u);
  EXPECT_TRUE(engine.QuantizedCuts(0).empty());

  const size_t n = 40, k = 2;
  std::vector<double> X = AdversarialBatch(n, features, features, rng);
  std::vector<double> exact(n * k), fallback(n * k, -1.0);
  engine.PredictBatch(X.data(), n, features, exact.data());
  engine.PredictBatch(X.data(), n, features, fallback.data(),
                      ExecEngine::Mode::kQuantized);
  for (size_t i = 0; i < n * k; ++i) EXPECT_EQ(exact[i], fallback[i]);
}

TEST(ExecEngineModesTest, BytesAccountsForEveryPoolArray) {
  Rng rng(66);
  Dataset data = RandomDataset(500, 10, 3, rng);
  RandomForestConfig config;
  config.num_trees = 5;
  config.tree.max_depth = 7;
  RandomForest forest = RandomForest::Fit(data, config);
  const ExecEngine& engine = *forest.engine();
  // Per internal node: i32 feature + f64 threshold + packed i64 child pair;
  // per forest leaf: num_classes() f32 probabilities.
  const size_t expected =
      engine.internal_node_count() * (sizeof(int32_t) + sizeof(double) + sizeof(int64_t)) +
      engine.leaf_payload_count() * static_cast<size_t>(engine.num_classes()) *
          sizeof(float);
  EXPECT_EQ(engine.bytes(), expected);
  if (engine.has_quantized()) {
    // u16 per node for feature/threshold/left/right, u16 per leaf slot.
    const size_t q_expected =
        engine.internal_node_count() * 4 * sizeof(uint16_t) +
        engine.leaf_payload_count() * static_cast<size_t>(engine.num_classes()) *
            sizeof(uint16_t);
    EXPECT_EQ(engine.quantized_bytes(), q_expected);
  }
}

}  // namespace
}  // namespace rc::ml
