#include "src/ml/tree.h"

#include <numeric>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc::ml {
namespace {

struct Binned {
  Dataset data;
  FeatureBinner binner;
  std::vector<uint8_t> bins;

  explicit Binned(Dataset d) : data(std::move(d)), binner(FeatureBinner::Fit(data, 64)) {
    bins = binner.Transform(data);
  }
  BinnedView view() const {
    return BinnedView{bins.data(), data.num_rows(), data.num_features(), &binner};
  }
};

std::vector<uint32_t> AllRows(size_t n) {
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  Dataset d({"x"});
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble();
    d.AddRow({&v, 1}, v < 0.4 ? 0 : 1);
  }
  Binned b(std::move(d));
  Rng train_rng(2);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(),
                                                  AllRows(b.data.num_rows()), 2,
                                                  TreeConfig{}, train_rng);
  std::vector<double> probs(2);
  double lo = 0.1, hi = 0.9;
  tree.PredictProba({&lo, 1}, probs);
  EXPECT_GT(probs[0], 0.95);
  tree.PredictProba({&hi, 1}, probs);
  EXPECT_GT(probs[1], 0.95);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) {
    double v = static_cast<double>(i);
    d.AddRow({&v, 1}, 1);
  }
  Binned b(std::move(d));
  Rng rng(3);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(), AllRows(20), 2,
                                                  TreeConfig{}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.depth(), 1);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(5);
  Dataset d({"x", "y"});
  for (int i = 0; i < 2000; ++i) {
    double row[2] = {rng.NextDouble(), rng.NextDouble()};
    int label = (static_cast<int>(row[0] * 8) + static_cast<int>(row[1] * 8)) % 2;
    d.AddRow(row, label);
  }
  Binned b(std::move(d));
  TreeConfig config;
  config.max_depth = 3;
  Rng train_rng(6);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(), AllRows(2000),
                                                  2, config, train_rng);
  EXPECT_LE(tree.depth(), 4);  // root at depth 1, so max_depth splits => depth 4
}

TEST(DecisionTreeTest, MinSamplesLeafHonored) {
  Rng rng(7);
  Dataset d({"x"});
  for (int i = 0; i < 64; ++i) {
    double v = rng.NextDouble();
    d.AddRow({&v, 1}, rng.Bernoulli(0.5) ? 1 : 0);
  }
  Binned b(std::move(d));
  TreeConfig config;
  config.min_samples_leaf = 40;  // only 64 samples => at most a root split is barred
  Rng train_rng(8);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(), AllRows(64), 2,
                                                  config, train_rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(DecisionTreeTest, BaggedRowsRespected) {
  // Duplicate row indices (bootstrap) should weight the distribution.
  Dataset d({"x"});
  double v0 = 0.0, v1 = 1.0;
  d.AddRow({&v0, 1}, 0);
  d.AddRow({&v1, 1}, 1);
  Binned b(std::move(d));
  std::vector<uint32_t> rows = {0, 1, 1, 1};  // class 1 x3
  Rng rng(9);
  TreeConfig config;
  config.min_samples_leaf = 4;  // force a single leaf
  DecisionTree tree =
      DecisionTree::FitClassifier(b.view(), b.data.labels(), rows, 2, config, rng);
  std::vector<double> probs(2);
  tree.PredictProba({&v0, 1}, probs);
  EXPECT_NEAR(probs[1], 0.75, 1e-6);
}

TEST(DecisionTreeTest, GainImportanceOnInformativeFeature) {
  Rng rng(11);
  Dataset d({"noise", "signal"});
  for (int i = 0; i < 2000; ++i) {
    double row[2] = {rng.NextDouble(), rng.NextDouble()};
    d.AddRow(row, row[1] > 0.5 ? 1 : 0);
  }
  Binned b(std::move(d));
  Rng train_rng(12);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(), AllRows(2000),
                                                  2, TreeConfig{}, train_rng);
  const auto& gains = tree.gain_importance();
  ASSERT_EQ(gains.size(), 2u);
  EXPECT_GT(gains[1], gains[0] * 10);
}

TEST(DecisionTreeTest, SerializationRoundTrip) {
  Rng rng(13);
  Dataset d({"x", "y"});
  for (int i = 0; i < 1000; ++i) {
    double row[2] = {rng.NextDouble(), rng.NextDouble()};
    d.AddRow(row, row[0] + row[1] > 1.0 ? 1 : 0);
  }
  Binned b(std::move(d));
  Rng train_rng(14);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(), AllRows(1000),
                                                  2, TreeConfig{}, train_rng);
  ByteWriter w;
  tree.Serialize(w);
  std::vector<uint8_t> bytes = w.TakeBytes();
  ByteReader r(bytes);
  DecisionTree restored = DecisionTree::Deserialize(r);
  EXPECT_TRUE(r.AtEnd());

  std::vector<double> pa(2), pb(2);
  for (int i = 0; i < 100; ++i) {
    double row[2] = {rng.NextDouble(), rng.NextDouble()};
    tree.PredictProba(row, pa);
    restored.PredictProba(row, pb);
    ASSERT_EQ(pa[0], pb[0]);
    ASSERT_EQ(pa[1], pb[1]);
  }
}

TEST(DecisionTreeTest, RegressionFitsStepFunction) {
  // Newton step with constant hessian 1: leaf value = mean(-grad).
  // Fit to residuals of y: grad = -(y), hess = 1 => leaf predicts mean(y).
  Rng rng(15);
  Dataset d({"x"});
  std::vector<double> grad, hess;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    d.AddRow({&v, 1}, 0);
    double y = v < 0.5 ? 2.0 : -1.0;
    grad.push_back(-y);
    hess.push_back(1.0);
  }
  Binned b(std::move(d));
  TreeConfig config;
  config.lambda = 0.0;
  Rng train_rng(16);
  DecisionTree tree =
      DecisionTree::FitRegressor(b.view(), grad, hess, AllRows(1000), config, train_rng);
  double lo = 0.2, hi = 0.8;
  EXPECT_NEAR(tree.PredictValue({&lo, 1}), 2.0, 0.05);
  EXPECT_NEAR(tree.PredictValue({&hi, 1}), -1.0, 0.05);
}

TEST(DecisionTreeTest, RegressionLambdaShrinksLeaves) {
  Dataset d({"x"});
  std::vector<double> grad, hess;
  for (int i = 0; i < 10; ++i) {
    double v = 0.0;
    d.AddRow({&v, 1}, 0);
    grad.push_back(-1.0);
    hess.push_back(1.0);
  }
  Binned b(std::move(d));
  Rng rng(17);
  TreeConfig no_reg;
  no_reg.lambda = 0.0;
  TreeConfig reg;
  reg.lambda = 10.0;
  double x = 0.0;
  DecisionTree t0 = DecisionTree::FitRegressor(b.view(), grad, hess, AllRows(10), no_reg, rng);
  DecisionTree t1 = DecisionTree::FitRegressor(b.view(), grad, hess, AllRows(10), reg, rng);
  EXPECT_NEAR(t0.PredictValue({&x, 1}), 1.0, 1e-9);
  EXPECT_NEAR(t1.PredictValue({&x, 1}), 0.5, 1e-9);
}

TEST(DecisionTreeTest, EmptyRowsThrows) {
  Dataset d({"x"});
  double v = 0.0;
  d.AddRow({&v, 1}, 0);
  Binned b(std::move(d));
  Rng rng(18);
  EXPECT_THROW(DecisionTree::FitClassifier(b.view(), b.data.labels(), {}, 2, TreeConfig{},
                                           rng),
               std::invalid_argument);
}

class TreeDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeDepthSweep, DeeperTreesFitTighter) {
  int depth = GetParam();
  Rng rng(19);
  Dataset d({"x", "y"});
  for (int i = 0; i < 4000; ++i) {
    double row[2] = {rng.NextDouble(), rng.NextDouble()};
    bool interval = (row[0] > 0.25 && row[0] < 0.5) || row[0] > 0.75;
    int label = interval && row[1] > 0.3 ? 1 : 0;
    d.AddRow(row, label);
  }
  Binned b(std::move(d));
  TreeConfig config;
  config.max_depth = depth;
  Rng train_rng(20);
  DecisionTree tree = DecisionTree::FitClassifier(b.view(), b.data.labels(), AllRows(4000),
                                                  2, config, train_rng);
  // The target needs ~4 axis-aligned cuts; deep trees should recover it up
  // to quantile-binning resolution, a depth-1 stump cannot.
  int correct = 0;
  std::vector<double> probs(2);
  for (size_t i = 0; i < b.data.num_rows(); ++i) {
    tree.PredictProba(b.data.Row(i), probs);
    if ((probs[1] > 0.5 ? 1 : 0) == b.data.Label(i)) ++correct;
  }
  double acc = static_cast<double>(correct) / static_cast<double>(b.data.num_rows());
  if (depth >= 6) {
    EXPECT_GT(acc, 0.96);
  } else if (depth <= 1) {
    EXPECT_LT(acc, 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep, ::testing::Values(1, 2, 4, 6, 10));

}  // namespace
}  // namespace rc::ml
