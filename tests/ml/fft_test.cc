#include "src/ml/fft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc::ml {
namespace {

TEST(FftTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> a(3);
  EXPECT_THROW(Fft(a), std::invalid_argument);
  std::vector<std::complex<double>> empty;
  EXPECT_THROW(Fft(empty), std::invalid_argument);
}

TEST(FftTest, DeltaTransformsToFlatSpectrum) {
  std::vector<std::complex<double>> a(8, {0.0, 0.0});
  a[0] = {1.0, 0.0};
  Fft(a);
  for (const auto& x : a) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ForwardInverseIdentity) {
  Rng rng(3);
  std::vector<std::complex<double>> a(256);
  std::vector<std::complex<double>> orig(256);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = {rng.Normal(), rng.Normal()};
    orig[i] = a[i];
  }
  Fft(a, false);
  Fft(a, true);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].real(), orig[i].real(), 1e-9);
    ASSERT_NEAR(a[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(5);
  const size_t n = 128;
  std::vector<std::complex<double>> a(n);
  double time_energy = 0.0;
  for (auto& x : a) {
    x = {rng.Normal(), 0.0};
    time_energy += std::norm(x);
  }
  Fft(a);
  double freq_energy = 0.0;
  for (const auto& x : a) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n), 1e-6);
}

TEST(FftTest, PureToneLandsInCorrectBin) {
  const size_t n = 512;
  std::vector<std::complex<double>> a(n);
  const size_t k = 37;
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * std::numbers::pi * static_cast<double>(k * i) / n;
    a[i] = {std::cos(phase), 0.0};
  }
  Fft(a);
  // Energy splits between bins k and n-k for a real cosine.
  for (size_t b = 0; b < n; ++b) {
    if (b == k || b == n - k) {
      EXPECT_NEAR(std::abs(a[b]), n / 2.0, 1e-6);
    } else {
      EXPECT_LT(std::abs(a[b]), 1e-6);
    }
  }
}

TEST(PowerSpectrumTest, SinusoidPeaksAtFrequency) {
  const size_t n = 1000;  // not a power of two: exercises padding
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = 5.0 + std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 100.0);
  }
  auto power = PowerSpectrum(signal, /*hann_window=*/true);
  // Padded to 1024; one cycle per 100 samples -> bin ~10.24.
  size_t peak = 1;
  for (size_t b = 2; b < power.size(); ++b) {
    if (power[b] > power[peak]) peak = b;
  }
  EXPECT_NEAR(static_cast<double>(peak), 1024.0 / 100.0, 1.5);
  // DC suppressed by mean removal.
  EXPECT_LT(power[0], power[peak] * 1e-6);
}

TEST(PowerSpectrumTest, WhiteNoiseHasNoDominantPeak) {
  Rng rng(7);
  std::vector<double> signal(1024);
  for (auto& x : signal) x = rng.NextDouble();
  auto power = PowerSpectrum(signal);
  double total = 0.0, max_bin = 0.0;
  for (size_t b = 1; b < power.size(); ++b) {
    total += power[b];
    max_bin = std::max(max_bin, power[b]);
  }
  EXPECT_LT(max_bin / total, 0.05);
}

TEST(PowerSpectrumTest, EmptySignal) {
  EXPECT_TRUE(PowerSpectrum({}).empty());
}

}  // namespace
}  // namespace rc::ml
