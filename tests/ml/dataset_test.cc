#include "src/ml/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc::ml {
namespace {

TEST(DatasetTest, AddAndAccess) {
  Dataset d({"a", "b"});
  double r1[] = {1.0, 2.0};
  double r2[] = {3.0, 4.0};
  d.AddRow(r1, 0);
  d.AddRow(r2, 1);
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.Value(1, 0), 3.0);
  EXPECT_EQ(d.Label(1), 1);
  EXPECT_EQ(d.Row(0)[1], 2.0);
  EXPECT_EQ(d.NumClasses(), 2);
}

TEST(DatasetTest, RejectsWrongArity) {
  Dataset d({"a", "b"});
  double r[] = {1.0};
  EXPECT_THROW(d.AddRow(r, 0), std::invalid_argument);
}

TEST(DatasetTest, RejectsNaN) {
  Dataset d({"a"});
  double r[] = {std::nan("")};
  EXPECT_THROW(d.AddRow(r, 0), std::invalid_argument);
}

TEST(DatasetTest, NumClassesFromMaxLabel) {
  Dataset d({"a"});
  double r[] = {0.0};
  d.AddRow(r, 3);
  EXPECT_EQ(d.NumClasses(), 4);
}

TEST(FeatureBinnerTest, LowCardinalityGetsExactBins) {
  Dataset d({"cat"});
  for (int i = 0; i < 100; ++i) {
    double v = static_cast<double>(i % 3);  // values 0, 1, 2
    d.AddRow({&v, 1}, 0);
  }
  FeatureBinner binner = FeatureBinner::Fit(d, 64);
  EXPECT_EQ(binner.NumBins(0), 3);
  EXPECT_EQ(binner.Bin(0, 0.0), 0);
  EXPECT_EQ(binner.Bin(0, 1.0), 1);
  EXPECT_EQ(binner.Bin(0, 2.0), 2);
  EXPECT_EQ(binner.Bin(0, 99.0), 2);
  EXPECT_EQ(binner.Bin(0, -5.0), 0);
}

TEST(FeatureBinnerTest, SplitThresholdConsistentWithBinning) {
  Rng rng(3);
  Dataset d({"x"});
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(0.0, 1.0);
    d.AddRow({&v, 1}, 0);
  }
  FeatureBinner binner = FeatureBinner::Fit(d, 16);
  for (int b = 0; b + 1 < binner.NumBins(0); ++b) {
    double threshold = binner.SplitThreshold(0, b);
    // Invariant: bin(v) <= b  <=>  v < threshold.
    EXPECT_GT(binner.Bin(0, threshold), b);
    EXPECT_LE(binner.Bin(0, std::nextafter(threshold, -1e9)), b);
  }
}

TEST(FeatureBinnerTest, BinsRoughlyEqualFrequency) {
  Rng rng(5);
  Dataset d({"x"});
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    values.push_back(v);
    d.AddRow({&v, 1}, 0);
  }
  FeatureBinner binner = FeatureBinner::Fit(d, 10);
  std::vector<int> counts(static_cast<size_t>(binner.NumBins(0)), 0);
  for (double v : values) counts[static_cast<size_t>(binner.Bin(0, v))]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(FeatureBinnerTest, ConstantFeatureSingleBin) {
  Dataset d({"const"});
  for (int i = 0; i < 50; ++i) {
    double v = 7.0;
    d.AddRow({&v, 1}, 0);
  }
  FeatureBinner binner = FeatureBinner::Fit(d, 8);
  EXPECT_EQ(binner.NumBins(0), 1);
}

TEST(FeatureBinnerTest, TransformColumnMajor) {
  Dataset d({"x", "y"});
  double r1[] = {0.0, 10.0};
  double r2[] = {1.0, 20.0};
  double r3[] = {2.0, 30.0};
  d.AddRow(r1, 0);
  d.AddRow(r2, 0);
  d.AddRow(r3, 0);
  FeatureBinner binner = FeatureBinner::Fit(d, 8);
  std::vector<uint8_t> bins = binner.Transform(d);
  ASSERT_EQ(bins.size(), 6u);
  // Column 0 occupies the first num_rows entries.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bins[i], static_cast<uint8_t>(binner.Bin(0, d.Value(i, 0))));
    EXPECT_EQ(bins[3 + i], static_cast<uint8_t>(binner.Bin(1, d.Value(i, 1))));
  }
}

TEST(FeatureBinnerTest, RejectsBadMaxBins) {
  Dataset d({"x"});
  double v = 0.0;
  d.AddRow({&v, 1}, 0);
  EXPECT_THROW(FeatureBinner::Fit(d, 1), std::invalid_argument);
  EXPECT_THROW(FeatureBinner::Fit(d, 300), std::invalid_argument);
}

}  // namespace
}  // namespace rc::ml
