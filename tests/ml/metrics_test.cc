#include "src/ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/ml/bytes.h"

namespace rc::ml {
namespace {

TEST(ConfusionMatrixTest, PerfectPredictions) {
  ConfusionMatrix m(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) m.Add(c, c);
  }
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(m.Precision(c), 1.0);
    EXPECT_DOUBLE_EQ(m.Recall(c), 1.0);
    EXPECT_NEAR(m.Prevalence(c), 1.0 / 3.0, 1e-12);
  }
}

TEST(ConfusionMatrixTest, KnownValues) {
  // true=0: predicted 0 x8, 1 x2. true=1: predicted 1 x5, 0 x5.
  ConfusionMatrix m(2);
  for (int i = 0; i < 8; ++i) m.Add(0, 0);
  for (int i = 0; i < 2; ++i) m.Add(0, 1);
  for (int i = 0; i < 5; ++i) m.Add(1, 1);
  for (int i = 0; i < 5; ++i) m.Add(1, 0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 13.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.Precision(0), 8.0 / 13.0);
  EXPECT_DOUBLE_EQ(m.Recall(0), 0.8);
  EXPECT_DOUBLE_EQ(m.Precision(1), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(m.Recall(1), 0.5);
  EXPECT_DOUBLE_EQ(m.Prevalence(1), 0.5);
  EXPECT_EQ(m.count(1, 0), 5);
}

TEST(ConfusionMatrixTest, EmptyClassZeroes) {
  ConfusionMatrix m(3);
  m.Add(0, 0);
  EXPECT_DOUBLE_EQ(m.Precision(2), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(2), 0.0);
  EXPECT_DOUBLE_EQ(m.Prevalence(2), 0.0);
}

TEST(ConfusionMatrixTest, Validation) {
  EXPECT_THROW(ConfusionMatrix(1), std::invalid_argument);
  ConfusionMatrix m(2);
  EXPECT_THROW(m.Add(2, 0), std::out_of_range);
  EXPECT_THROW(m.Add(0, -1), std::out_of_range);
}

TEST(ThresholdedAccumulatorTest, FiltersLowConfidence) {
  ThresholdedAccumulator acc(0.6);
  acc.Add(0, 0, 0.9);   // served, correct
  acc.Add(0, 1, 0.8);   // served, wrong
  acc.Add(1, 1, 0.59);  // not served
  acc.Add(1, 1, 0.6);   // served, correct (boundary inclusive)
  auto q = acc.Result();
  EXPECT_EQ(q.total, 4);
  EXPECT_EQ(q.served, 3);
  EXPECT_DOUBLE_EQ(q.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.coverage, 0.75);
}

TEST(ThresholdedAccumulatorTest, EmptyResult) {
  ThresholdedAccumulator acc(0.5);
  auto q = acc.Result();
  EXPECT_EQ(q.precision, 0.0);
  EXPECT_EQ(q.coverage, 0.0);
}

TEST(LogLossTest, KnownValue) {
  std::vector<std::vector<double>> probs = {{0.9, 0.1}, {0.2, 0.8}};
  std::vector<int> labels = {0, 1};
  double expected = -(std::log(0.9) + std::log(0.8)) / 2.0;
  EXPECT_NEAR(LogLoss(probs, labels), expected, 1e-12);
}

TEST(LogLossTest, ClampsZeroProbability) {
  std::vector<std::vector<double>> probs = {{0.0, 1.0}};
  std::vector<int> labels = {0};
  EXPECT_LT(LogLoss(probs, labels), 40.0);  // clamped, not inf
}

TEST(LogLossTest, Validation) {
  EXPECT_THROW(LogLoss({}, {}), std::invalid_argument);
  EXPECT_THROW(LogLoss({{1.0}}, {0, 1}), std::invalid_argument);
}

TEST(BytesTest, PodRoundTrip) {
  ByteWriter w;
  w.U32(7);
  w.U64(1ull << 40);
  w.I32(-5);
  w.F64(3.25);
  w.F32(1.5f);
  w.String("hello");
  w.PodVector(std::vector<double>{1.0, 2.0});
  auto bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 1ull << 40);
  EXPECT_EQ(r.I32(), -5);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.F32(), 1.5f);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_EQ(r.PodVector<double>(), (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncationDetected) {
  ByteWriter w;
  w.String("abcdef");
  auto bytes = w.TakeBytes();
  bytes.resize(bytes.size() - 2);
  ByteReader r(bytes);
  EXPECT_THROW(r.String(), std::runtime_error);
}

TEST(BytesTest, EmptyStringAndVector) {
  ByteWriter w;
  w.String("");
  w.PodVector(std::vector<int32_t>{});
  auto bytes = w.TakeBytes();
  ByteReader r(bytes);
  EXPECT_EQ(r.String(), "");
  EXPECT_TRUE(r.PodVector<int32_t>().empty());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace rc::ml
