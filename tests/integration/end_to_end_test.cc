// Full-system integration: generate a workload, run the offline pipeline,
// publish to the store, serve predictions through the client library, and
// drive the oversubscribing scheduler with them — the complete Figure 9
// loop plus the Section 5 case study.
#include <gtest/gtest.h>

#include "src/core/client.h"
#include "src/core/evaluation.h"
#include "src/core/offline_pipeline.h"
#include "src/sched/simulator.h"
#include "src/store/kv_store.h"
#include "src/trace/workload_model.h"

namespace rc {
namespace {

using core::Client;
using core::ClientConfig;
using core::ClientInputs;
using core::InputsFromVm;
using core::OfflinePipeline;
using core::PipelineConfig;
using core::Prediction;
using core::TrainedModels;
using trace::Trace;
using trace::WorkloadConfig;
using trace::WorkloadModel;

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 20000;
    config.num_subscriptions = 800;
    config.duration = 90 * kDay;
    config.seed = 31337;
    trace_ = new Trace(WorkloadModel(config).Generate());

    PipelineConfig pipeline_config;
    pipeline_config.train_begin = 0;
    pipeline_config.train_end = 60 * kDay;
    pipeline_config.rf.num_trees = 16;
    pipeline_config.gbt.num_rounds = 20;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));

    store_ = new store::KvStore();
    OfflinePipeline::Publish(*trained_, *store_);
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  static store::KvStore* store_;
};

const Trace* EndToEndTest::trace_ = nullptr;
const TrainedModels* EndToEndTest::trained_ = nullptr;
store::KvStore* EndToEndTest::store_ = nullptr;

TEST_F(EndToEndTest, PublishedArtifactsComplete) {
  EXPECT_EQ(store_->ListKeys("model/").size(), 6u);
  EXPECT_EQ(store_->ListKeys("spec/").size(), 6u);
  EXPECT_EQ(store_->ListKeys("features/").size(), trained_->feature_data.size());
  EXPECT_GT(trained_->feature_data.size(), 100u);
}

TEST_F(EndToEndTest, ClientPredictionsMatchDirectModelExecution) {
  Client client(store_, ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  static const trace::VmSizeCatalog catalog;
  int compared = 0;
  for (const auto* vm : trace_->VmsCreatedIn(60 * kDay, 61 * kDay)) {
    if (!trained_->feature_data.contains(vm->subscription_id)) continue;
    ClientInputs inputs = InputsFromVm(*vm, catalog);
    Prediction via_client = client.PredictSingle("VM_P95UTIL", inputs);
    ASSERT_TRUE(via_client.valid);
    // Direct execution with the same features as the client sees them —
    // feature data reaches the client through its (float-precision)
    // serialized form, so round-trip before encoding.
    core::Featurizer featurizer(Metric::kP95Cpu,
                                OfflinePipeline::EncodingFor(Metric::kP95Cpu));
    auto features = core::SubscriptionFeatures::Deserialize(
        trained_->feature_data.at(vm->subscription_id).Serialize());
    auto row = featurizer.Encode(inputs, features);
    auto direct = trained_->models.at("VM_P95UTIL")->PredictScored(row);
    ASSERT_EQ(via_client.bucket, direct.label);
    ASSERT_NEAR(via_client.score, direct.score, 1e-12);
    if (++compared >= 50) break;
  }
  EXPECT_GE(compared, 10);
}

TEST_F(EndToEndTest, HeldOutAccuracyInPaperBand) {
  // Table 4 reports 79-90% accuracy; on a trace this small we accept a
  // slightly wider band but the models must be clearly predictive.
  for (Metric m : {Metric::kAvgCpu, Metric::kP95Cpu, Metric::kLifetime}) {
    auto examples =
        OfflinePipeline::BuildExamples(*trace_, m, 60 * kDay, 90 * kDay, true);
    ASSERT_GT(examples.size(), 500u);
    core::Featurizer featurizer(m, OfflinePipeline::EncodingFor(m));
    auto quality = core::EvaluateModel(*trained_->models.at(MetricModelName(m)),
                                       featurizer, examples);
    EXPECT_GT(quality.accuracy, 0.65) << MetricName(m);
    EXPECT_LE(quality.accuracy, 1.0) << MetricName(m);
    // Confidence filtering must not reduce precision.
    EXPECT_GE(quality.p_theta, quality.accuracy - 0.02) << MetricName(m);
  }
}

TEST_F(EndToEndTest, SchedulerConsumesClientPredictions) {
  Client client(store_, ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  static const trace::VmSizeCatalog catalog;

  sched::SimConfig sim_config;
  sim_config.cluster = sched::ClusterConfig{96, 16, 112.0};
  sim_config.horizon = 14 * kDay;

  sched::Cluster cluster(sim_config.cluster);
  sched::PolicyConfig policy_config;
  policy_config.kind = sched::PolicyKind::kRcInformedSoft;
  int64_t predictions = 0, served = 0;
  sched::SchedulingPolicy policy(
      policy_config, &cluster,
      [&](const sched::VmRequest& vm) {
        ++predictions;
        Prediction p = client.PredictSingle("VM_P95UTIL", InputsFromVm(*vm.source, catalog));
        if (p.valid) ++served;
        return p;
      });

  // Schedule the tail month of the trace against the trained models.
  std::vector<sched::VmRequest> requests;
  for (auto& req : sched::RequestsFromTrace(*trace_, 74 * kDay)) {
    if (req.arrival >= 60 * kDay) {
      req.arrival -= 60 * kDay;
      req.departure -= 60 * kDay;
      requests.push_back(req);
    }
  }
  ASSERT_GT(requests.size(), 1000u);
  sched::ClusterSimulator sim(sim_config);
  auto result = sim.Run(std::move(requests), policy);

  // Non-production VMs triggered prediction requests, and most were served
  // from the trained feature data.
  EXPECT_GT(predictions, 100);
  EXPECT_GT(static_cast<double>(served) / static_cast<double>(predictions), 0.5);
  // The cluster is sized for the load; a burst-driven failure tail is
  // acceptable but must stay small.
  EXPECT_LT(result.failure_rate(), 0.02);
  // Result-cache effectiveness (paper Section 6.1: entries are reused many
  // times per model execution).
  auto stats = client.stats();
  EXPECT_GT(stats.result_hits, 0u);
}

TEST_F(EndToEndTest, FeatureImportanceIsHistoryDominated) {
  // Paper Section 6.1: "the most important attributes are the percentage of
  // VMs classified into each bucket to date in the subscription".
  auto importance = trained_->models.at("VM_AVGUTIL")->FeatureImportance();
  core::Featurizer featurizer(Metric::kAvgCpu,
                              OfflinePipeline::EncodingFor(Metric::kAvgCpu));
  ASSERT_EQ(importance.size(), featurizer.num_features());
  double history = 0.0, total = 0.0;
  for (size_t i = 0; i < importance.size(); ++i) {
    total += importance[i];
    const std::string& name = featurizer.feature_names()[i];
    if (name.rfind("hist_", 0) == 0 || name.rfind("mean_", 0) == 0) {
      history += importance[i];
    }
  }
  ASSERT_GT(total, 0.0);
  EXPECT_GT(history / total, 0.5);
}

}  // namespace
}  // namespace rc
