#include "src/common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace rc {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32(Bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Bytes("")), 0u);
  EXPECT_EQ(Crc32(Bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data = Bytes("the quick brown fox jumps over the lazy dog");
  uint32_t whole = Crc32(data);
  uint32_t running = 0;
  for (size_t split = 0; split <= data.size(); split += 7) {
    running = Crc32(data.data(), std::min<size_t>(7, data.size() - (split)), running);
    if (split + 7 >= data.size()) break;
  }
  // Recompute cleanly in two halves to avoid the loop arithmetic above
  // obscuring the property.
  uint32_t halves = Crc32(data.data() + 20, data.size() - 20, Crc32(data.data(), 20));
  EXPECT_EQ(halves, whole);
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> data(256);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); i += 17) {
    std::vector<uint8_t> flipped = data;
    flipped[i] ^= 0x01;
    EXPECT_NE(Crc32(flipped), clean) << "flip at byte " << i << " went undetected";
  }
}

}  // namespace
}  // namespace rc
