// Property-based tests for Histogram / CategoricalHistogram: mass
// conservation (bins + underflow + overflow == total), bin-edge geometry,
// and fraction normalization, across many seeded random inputs.
#include "src/common/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc {
namespace {

TEST(HistogramPropertyTest, MassIsConserved) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    double lo = -10.0 + 20.0 * rng.NextDouble();
    double hi = lo + 0.5 + 20.0 * rng.NextDouble();
    size_t bins = 1 + static_cast<size_t>(rng.UniformInt(0, 30));
    Histogram h(lo, hi, bins);

    uint64_t added = 0;
    int n = 1 + static_cast<int>(rng.UniformInt(0, 500));
    for (int i = 0; i < n; ++i) {
      // Deliberately sample beyond [lo, hi) to exercise under/overflow.
      double x = lo - 5.0 + (hi - lo + 10.0) * rng.NextDouble();
      uint64_t w = 1 + static_cast<uint64_t>(rng.UniformInt(0, 4));
      h.Add(x, w);
      added += w;
    }

    uint64_t binned = 0;
    for (size_t b = 0; b < h.bins(); ++b) binned += h.count(b);
    ASSERT_EQ(binned + h.underflow() + h.overflow(), h.total());
    ASSERT_EQ(h.total(), added);
  }
}

TEST(HistogramPropertyTest, BinEdgesAreContiguousAndSpanTheRange) {
  Rng rng(72);
  for (int trial = 0; trial < 30; ++trial) {
    double lo = -5.0 + 10.0 * rng.NextDouble();
    double hi = lo + 0.1 + 10.0 * rng.NextDouble();
    size_t bins = 1 + static_cast<size_t>(rng.UniformInt(0, 20));
    Histogram h(lo, hi, bins);
    ASSERT_DOUBLE_EQ(h.bin_lo(0), lo);
    for (size_t b = 1; b < h.bins(); ++b) {
      ASSERT_DOUBLE_EQ(h.bin_lo(b), h.bin_hi(b - 1)) << "edge gap at bin " << b;
      ASSERT_LT(h.bin_lo(b), h.bin_hi(b));
    }
    ASSERT_NEAR(h.bin_hi(h.bins() - 1), hi, 1e-9 * std::abs(hi - lo));
  }
}

TEST(HistogramPropertyTest, EverySampleLandsInItsOwnBin) {
  Rng rng(73);
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 300; ++i) {
    double x = rng.NextDouble();
    uint64_t before_total = h.total();
    h.Add(x);
    ASSERT_EQ(h.total(), before_total + 1);
    // Find the bin whose [lo, hi) range contains x; its count must be > 0.
    bool found = false;
    for (size_t b = 0; b < h.bins(); ++b) {
      if (x >= h.bin_lo(b) && x < h.bin_hi(b)) {
        ASSERT_GT(h.count(b), 0u);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "x=" << x << " not covered by any bin range";
  }
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramPropertyTest, FractionsSumToOneWhenNoOutliers) {
  Rng rng(74);
  for (int trial = 0; trial < 20; ++trial) {
    size_t bins = 1 + static_cast<size_t>(rng.UniformInt(0, 15));
    Histogram h(0.0, 1.0, bins);
    int n = 1 + static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < n; ++i) h.Add(rng.NextDouble());
    double sum = 0.0;
    for (size_t b = 0; b < h.bins(); ++b) sum += h.Fraction(b);
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(HistogramPropertyTest, EmptyHistogramFractionsAreZero) {
  Histogram h(0.0, 1.0, 5);
  for (size_t b = 0; b < h.bins(); ++b) EXPECT_EQ(h.Fraction(b), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

TEST(CategoricalHistogramPropertyTest, CountsAndFractionsAreConsistent) {
  Rng rng(75);
  const std::vector<std::string> keys = {"small", "medium", "large", "xlarge"};
  for (int trial = 0; trial < 20; ++trial) {
    CategoricalHistogram h;
    std::map<std::string, double> expected;
    double total = 0.0;
    int n = 1 + static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < n; ++i) {
      const std::string& key =
          keys[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1))];
      double w = 0.1 + rng.NextDouble();
      h.Add(key, w);
      expected[key] += w;
      total += w;
    }
    ASSERT_NEAR(h.total(), total, 1e-9);
    double frac_sum = 0.0;
    for (const auto& [key, want] : expected) {
      ASSERT_NEAR(h.count(key), want, 1e-9);
      frac_sum += h.Fraction(key);
    }
    ASSERT_NEAR(frac_sum, 1.0, 1e-9);
    EXPECT_EQ(h.count("never_added"), 0.0);
  }
}

}  // namespace
}  // namespace rc
