#include "src/common/buckets.h"

#include <gtest/gtest.h>

namespace rc {
namespace {

TEST(BucketsTest, UtilizationBucketBoundaries) {
  EXPECT_EQ(UtilizationBucket(0.0), 0);
  EXPECT_EQ(UtilizationBucket(0.2499), 0);
  EXPECT_EQ(UtilizationBucket(0.25), 1);
  EXPECT_EQ(UtilizationBucket(0.4999), 1);
  EXPECT_EQ(UtilizationBucket(0.50), 2);
  EXPECT_EQ(UtilizationBucket(0.75), 3);
  EXPECT_EQ(UtilizationBucket(1.0), 3);
}

TEST(BucketsTest, DeploymentSizeBucketsMatchTable3) {
  EXPECT_EQ(DeploymentSizeBucket(1), 0);
  EXPECT_EQ(DeploymentSizeBucket(2), 1);
  EXPECT_EQ(DeploymentSizeBucket(10), 1);
  EXPECT_EQ(DeploymentSizeBucket(11), 2);
  EXPECT_EQ(DeploymentSizeBucket(100), 2);
  EXPECT_EQ(DeploymentSizeBucket(101), 3);
  EXPECT_EQ(DeploymentSizeBucket(100000), 3);
}

TEST(BucketsTest, LifetimeBucketsMatchTable3) {
  EXPECT_EQ(LifetimeBucket(1), 0);
  EXPECT_EQ(LifetimeBucket(15 * kMinute), 0);
  EXPECT_EQ(LifetimeBucket(15 * kMinute + 1), 1);
  EXPECT_EQ(LifetimeBucket(60 * kMinute), 1);
  EXPECT_EQ(LifetimeBucket(60 * kMinute + 1), 2);
  EXPECT_EQ(LifetimeBucket(24 * kHour), 2);
  EXPECT_EQ(LifetimeBucket(24 * kHour + 1), 3);
  EXPECT_EQ(LifetimeBucket(90 * kDay), 3);
}

TEST(BucketsTest, NumBuckets) {
  for (Metric m : kAllMetrics) {
    EXPECT_EQ(NumBuckets(m), m == Metric::kClass ? 2 : 4);
  }
}

TEST(BucketsTest, UtilizationBucketRangeRoundTrips) {
  for (int b = 0; b < 4; ++b) {
    BucketRange range = UtilizationBucketRange(b);
    double mid = (range.lo + range.hi) / 2.0;
    EXPECT_EQ(UtilizationBucket(mid), b);
  }
  EXPECT_THROW(UtilizationBucketRange(4), std::out_of_range);
  EXPECT_THROW(UtilizationBucketRange(-1), std::out_of_range);
}

TEST(BucketsTest, NamesAreDistinct) {
  std::set<std::string> names, models;
  for (Metric m : kAllMetrics) {
    names.insert(MetricName(m));
    models.insert(MetricModelName(m));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumMetrics));
  EXPECT_EQ(models.size(), static_cast<size_t>(kNumMetrics));
}

TEST(BucketsTest, Labels) {
  EXPECT_EQ(BucketLabel(Metric::kAvgCpu, 0), "0-25%");
  EXPECT_EQ(BucketLabel(Metric::kLifetime, 3), ">24 h");
  EXPECT_EQ(BucketLabel(Metric::kClass, 1), "Interactive");
  EXPECT_EQ(BucketLabel(Metric::kDeployVms, 0), "1");
}

TEST(SimTimeTest, SlotHelpers) {
  EXPECT_EQ(SlotIndex(0), 0);
  EXPECT_EQ(SlotIndex(kSlot - 1), 0);
  EXPECT_EQ(SlotIndex(kSlot), 1);
  EXPECT_EQ(SlotStart(3), 3 * kSlot);
  EXPECT_EQ(kSlotsPerDay, 288);
  EXPECT_EQ(kSlotsPerHour, 12);
}

TEST(SimTimeTest, CalendarHelpers) {
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(13 * kHour + 30 * kMinute), 13);
  EXPECT_EQ(DayOfWeek(0), 0);
  EXPECT_EQ(DayOfWeek(6 * kDay), 6);
  EXPECT_EQ(DayOfWeek(7 * kDay), 0);
  EXPECT_FALSE(IsWeekend(4 * kDay));
  EXPECT_TRUE(IsWeekend(5 * kDay));
  EXPECT_TRUE(IsWeekend(6 * kDay + 3 * kHour));
}

}  // namespace
}  // namespace rc
