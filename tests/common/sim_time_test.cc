// Slot and calendar helpers: floor semantics pinned on both sides of t = 0.
// Negative SimTime happens in practice (events dated before trace start after
// arrival-jitter subtraction); truncating division used to map those to the
// wrong slot/hour/day, so both the positive behavior and the negative floor
// behavior are pinned here.
#include "src/common/sim_time.h"

#include <gtest/gtest.h>

namespace rc {
namespace {

TEST(SimTimeTest, FloorDivMatchesTruncationForNonNegative) {
  EXPECT_EQ(FloorDiv(0, 300), 0);
  EXPECT_EQ(FloorDiv(299, 300), 0);
  EXPECT_EQ(FloorDiv(300, 300), 1);
  EXPECT_EQ(FloorDiv(86400, 86400), 1);
}

TEST(SimTimeTest, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(FloorDiv(-1, 300), -1);
  EXPECT_EQ(FloorDiv(-300, 300), -1);
  EXPECT_EQ(FloorDiv(-301, 300), -2);
  // Exhaustive continuity check across zero: each step of b advances the
  // quotient exactly once, with no double-width bucket at the origin.
  for (int64_t t = -1000; t < 1000; ++t) {
    EXPECT_EQ(FloorDiv(t, 7), (t - FloorMod(t, 7)) / 7) << "t=" << t;
  }
}

TEST(SimTimeTest, FloorModAlwaysInHalfOpenRange) {
  for (int64_t t = -5000; t < 5000; t += 13) {
    int64_t m = FloorMod(t, 300);
    EXPECT_GE(m, 0) << "t=" << t;
    EXPECT_LT(m, 300) << "t=" << t;
    EXPECT_EQ(FloorDiv(t, 300) * 300 + m, t) << "t=" << t;
  }
}

TEST(SimTimeTest, SlotIndexPositive) {
  EXPECT_EQ(SlotIndex(0), 0);
  EXPECT_EQ(SlotIndex(kSlot - 1), 0);
  EXPECT_EQ(SlotIndex(kSlot), 1);
  EXPECT_EQ(SlotStart(SlotIndex(12345)), 12300);
}

TEST(SimTimeTest, SlotIndexNegativeUsesFloor) {
  // A time one second before trace start belongs to slot -1, not slot 0.
  EXPECT_EQ(SlotIndex(-1), -1);
  EXPECT_EQ(SlotIndex(-kSlot), -1);
  EXPECT_EQ(SlotIndex(-kSlot - 1), -2);
  // SlotStart(SlotIndex(t)) <= t < SlotStart(SlotIndex(t) + 1) for all t.
  for (SimTime t = -3 * kSlot; t <= 3 * kSlot; t += 17) {
    int64_t s = SlotIndex(t);
    EXPECT_LE(SlotStart(s), t) << "t=" << t;
    EXPECT_LT(t, SlotStart(s + 1)) << "t=" << t;
  }
}

TEST(SimTimeTest, HourOfDayPositive) {
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(13 * kHour + 30 * kMinute), 13);
  EXPECT_EQ(HourOfDay(kDay), 0);
}

TEST(SimTimeTest, HourOfDayNegativeWrapsBackward) {
  // One second before midnight of day 0 is 23:59:59 of the previous day.
  EXPECT_EQ(HourOfDay(-1), 23);
  EXPECT_EQ(HourOfDay(-kHour), 23);
  EXPECT_EQ(HourOfDay(-kHour - 1), 22);
  EXPECT_EQ(HourOfDay(-kDay), 0);
  for (SimTime t = -2 * kDay; t <= 2 * kDay; t += 97) {
    int h = HourOfDay(t);
    EXPECT_GE(h, 0) << "t=" << t;
    EXPECT_LT(h, 24) << "t=" << t;
    EXPECT_EQ(HourOfDay(t + kDay), h) << "t=" << t;  // 24h-periodic everywhere
  }
}

TEST(SimTimeTest, DayOfWeekPositive) {
  EXPECT_EQ(DayOfWeek(0), 0);
  EXPECT_EQ(DayOfWeek(6 * kDay), 6);
  EXPECT_EQ(DayOfWeek(7 * kDay), 0);
}

TEST(SimTimeTest, DayOfWeekNegativeWrapsBackward) {
  // The day before day 0 (a Monday) is a Sunday: day 6, a weekend.
  EXPECT_EQ(DayOfWeek(-1), 6);
  EXPECT_TRUE(IsWeekend(-1));
  EXPECT_EQ(DayOfWeek(-kDay), 6);
  EXPECT_EQ(DayOfWeek(-kDay - 1), 5);
  EXPECT_EQ(DayOfWeek(-kWeek), 0);
  for (SimTime t = -2 * kWeek; t <= 2 * kWeek; t += 4001) {
    int d = DayOfWeek(t);
    EXPECT_GE(d, 0) << "t=" << t;
    EXPECT_LT(d, 7) << "t=" << t;
    EXPECT_EQ(DayOfWeek(t + kWeek), d) << "t=" << t;  // 7d-periodic everywhere
  }
}

}  // namespace
}  // namespace rc
