#include "src/common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc {
namespace {

TEST(OnlineStatsTest, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cov(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  std::vector<double> xs = {1.0, 2.5, -3.0, 7.0, 0.25, 9.5};
  OnlineStats s;
  for (double x : xs) s.Add(x);
  EXPECT_NEAR(s.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), Variance(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), StdDev(xs), 1e-12);
}

TEST(OnlineStatsTest, MergeEqualsCombined) {
  Rng rng(3);
  OnlineStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Normal(1.0, 2.0);
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 300; ++i) {
    double x = rng.Normal(-4.0, 0.5);
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  double mean = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(OnlineStatsTest, CovIsScaleFree) {
  OnlineStats a, b;
  for (double x : {1.0, 2.0, 3.0}) a.Add(x);
  for (double x : {10.0, 20.0, 30.0}) b.Add(x);
  EXPECT_NEAR(a.cov(), b.cov(), 1e-12);
}

TEST(StatsTest, CoefficientOfVariationZeroMean) {
  EXPECT_EQ(CoefficientOfVariation({-1.0, 1.0}), 0.0);
  EXPECT_EQ(CoefficientOfVariation({}), 0.0);
}

TEST(PercentileTest, Endpoints) {
  std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 3.0);
}

TEST(PercentileTest, LinearInterpolation) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.5);
}

TEST(PercentileTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(PercentileTest, ThrowsOnEmpty) {
  EXPECT_THROW(Percentile({}, 50.0), std::invalid_argument);
}

TEST(PercentileTest, SortedVariantAgrees) {
  Rng rng(9);
  std::vector<double> xs(1001);
  for (auto& x : xs) x = rng.NextDouble();
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {1.0, 5.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(Percentile(xs, p), PercentileSorted(sorted, p));
  }
}

class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, NonDecreasingInP) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.Normal(0.0, 5.0);
  std::sort(xs.begin(), xs.end());
  double prev = PercentileSorted(xs, 0.0);
  for (double p = 1.0; p <= 100.0; p += 1.0) {
    double cur = PercentileSorted(xs, p);
    ASSERT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace rc
