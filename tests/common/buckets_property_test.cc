// Property-based tests for the Table 3 bucketization: the buckets must
// partition each metric's domain (every value maps to exactly one in-range
// bucket), be monotone in the underlying value, and agree with the
// BucketRange inverses the client uses to turn predictions back into numbers.
#include "src/common/buckets.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace rc {
namespace {

TEST(BucketsPropertyTest, UtilizationBucketPartitionsAndIsMonotone) {
  Rng rng(31);
  int prev = 0;
  for (int i = 0; i <= 1000; ++i) {
    double u = static_cast<double>(i) / 1000.0;
    int b = UtilizationBucket(u);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, NumBuckets(Metric::kAvgCpu));
    ASSERT_GE(b, prev) << "bucket decreased at u=" << u;
    prev = b;
  }
  // Random draws also stay in range (including values beyond the nominal
  // domain, which real traces do produce via measurement noise).
  for (int i = 0; i < 500; ++i) {
    double u = -0.5 + 2.0 * rng.NextDouble();
    int b = UtilizationBucket(u);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
  }
}

TEST(BucketsPropertyTest, UtilizationBucketMatchesItsRange) {
  // For every utilization in (0,1], the value must lie inside the range
  // reported for its own bucket — the round-trip the client relies on.
  for (int i = 1; i <= 1000; ++i) {
    double u = static_cast<double>(i) / 1000.0;
    int b = UtilizationBucket(u);
    BucketRange range = UtilizationBucketRange(b);
    ASSERT_GE(u, range.lo) << "u=" << u << " below its bucket " << b;
    ASSERT_LE(u, range.hi) << "u=" << u << " above its bucket " << b;
  }
}

TEST(BucketsPropertyTest, UtilizationRangesTileTheUnitInterval) {
  BucketRange prev = UtilizationBucketRange(0);
  EXPECT_DOUBLE_EQ(prev.lo, 0.0);
  for (int b = 1; b < 4; ++b) {
    BucketRange r = UtilizationBucketRange(b);
    ASSERT_DOUBLE_EQ(r.lo, prev.hi) << "gap or overlap between buckets";
    ASSERT_LT(r.lo, r.hi);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev.hi, 1.0);
}

TEST(BucketsPropertyTest, DeploymentSizeBucketPartitionsAndIsMonotone) {
  int prev = 0;
  for (int64_t size = 1; size <= 2000; ++size) {
    int b = DeploymentSizeBucket(size);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, NumBuckets(Metric::kDeployVms));
    ASSERT_GE(b, prev) << "bucket decreased at size=" << size;
    prev = b;
  }
  // Table 3 boundary cases: {1} (1,10] (10,100] (100, inf).
  EXPECT_EQ(DeploymentSizeBucket(1), 0);
  EXPECT_EQ(DeploymentSizeBucket(2), 1);
  EXPECT_EQ(DeploymentSizeBucket(10), 1);
  EXPECT_EQ(DeploymentSizeBucket(11), 2);
  EXPECT_EQ(DeploymentSizeBucket(100), 2);
  EXPECT_EQ(DeploymentSizeBucket(101), 3);
  EXPECT_EQ(DeploymentSizeBucket(1'000'000), 3);
}

TEST(BucketsPropertyTest, LifetimeBucketPartitionsAndIsMonotone) {
  int prev = 0;
  for (SimDuration t = 0; t <= 3 * kDay; t += 61) {
    int b = LifetimeBucket(t);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, NumBuckets(Metric::kLifetime));
    ASSERT_GE(b, prev) << "bucket decreased at t=" << t;
    prev = b;
  }
  // Table 3 boundaries: <=15 min, (15,60] min, (1,24] h, >24 h.
  EXPECT_EQ(LifetimeBucket(15 * kMinute), 0);
  EXPECT_EQ(LifetimeBucket(15 * kMinute + 1), 1);
  EXPECT_EQ(LifetimeBucket(kHour), 1);
  EXPECT_EQ(LifetimeBucket(kHour + 1), 2);
  EXPECT_EQ(LifetimeBucket(24 * kHour), 2);
  EXPECT_EQ(LifetimeBucket(24 * kHour + 1), 3);
  EXPECT_EQ(LifetimeBucket(30 * kDay), 3);
}

TEST(BucketsPropertyTest, EveryMetricBucketHasADistinctLabel) {
  for (Metric m : kAllMetrics) {
    std::vector<std::string> labels;
    for (int b = 0; b < NumBuckets(m); ++b) {
      std::string label = BucketLabel(m, b);
      ASSERT_FALSE(label.empty());
      for (const auto& seen : labels) ASSERT_NE(label, seen);
      labels.push_back(std::move(label));
    }
  }
}

}  // namespace
}  // namespace rc
