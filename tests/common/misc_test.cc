#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/common/hashing.h"
#include "src/common/table_printer.h"

namespace rc {
namespace {

TEST(HashingTest, Fnv1aStableKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a(""), kFnvOffset);
  // Stability across calls (process-independence is by construction: pure
  // arithmetic on bytes).
  EXPECT_EQ(Fnv1a("resource-central"), Fnv1a("resource-central"));
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
}

TEST(HashingTest, HashCombineOrderSensitive) {
  uint64_t a = HashCombine(Fnv1a("x"), 1);
  uint64_t b = HashCombine(Fnv1a("x"), 2);
  EXPECT_NE(a, b);
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashingTest, HashU64Bijective) {
  // Distinct small inputs map to distinct outputs (spot check).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(HashU64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NO_THROW(table.ToString());
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Pct(0.815, 1), "81.5%");
}

}  // namespace
}  // namespace rc
