// Property-based tests for EmpiricalCdf: invariants that must hold for any
// sample set, checked over many seeded random distributions rather than a
// handful of hand-picked examples.
#include "src/common/cdf.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc {
namespace {

// A mix of shapes: uniform, lognormal-ish, heavy ties, tiny sets.
std::vector<double> RandomSamples(Rng& rng, int shape) {
  size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 200));
  std::vector<double> samples;
  samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    switch (shape % 4) {
      case 0: samples.push_back(u); break;
      case 1: samples.push_back(std::exp(4.0 * u - 2.0)); break;
      case 2: samples.push_back(std::floor(u * 5.0)); break;  // heavy ties
      default: samples.push_back(-50.0 + 100.0 * u); break;
    }
  }
  return samples;
}

TEST(CdfPropertyTest, EvalIsMonotoneAndBounded) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    EmpiricalCdf cdf(RandomSamples(rng, trial));
    double lo = cdf.min(), hi = cdf.max();
    double prev = -1.0;
    for (int i = -2; i <= 22; ++i) {
      double x = lo + (hi - lo) * static_cast<double>(i) / 20.0;
      double p = cdf.Eval(x);
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
      ASSERT_GE(p, prev) << "CDF decreased at x=" << x << " (trial " << trial << ")";
      prev = p;
    }
    EXPECT_EQ(cdf.Eval(lo - 1.0), 0.0);
    EXPECT_EQ(cdf.Eval(hi), 1.0);
  }
}

TEST(CdfPropertyTest, QuantileEvalGaloisInequalities) {
  // For any q: Eval(Quantile(q)) >= q, and Quantile is the *smallest* sample
  // achieving that, so Quantile(Eval(x)) <= x for any sample x.
  Rng rng(2025);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> samples = RandomSamples(rng, trial);
    EmpiricalCdf cdf(samples);
    for (int i = 0; i <= 20; ++i) {
      double q = static_cast<double>(i) / 20.0;
      double v = cdf.Quantile(q);
      ASSERT_GE(cdf.Eval(v), q) << "trial " << trial << " q=" << q;
    }
    for (double x : samples) {
      ASSERT_LE(cdf.Quantile(cdf.Eval(x)), x) << "trial " << trial << " x=" << x;
    }
  }
}

TEST(CdfPropertyTest, QuantileIsMonotoneAndHitsExtremes) {
  Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    EmpiricalCdf cdf(RandomSamples(rng, trial));
    double prev = cdf.Quantile(0.0);
    for (int i = 1; i <= 20; ++i) {
      double v = cdf.Quantile(static_cast<double>(i) / 20.0);
      ASSERT_GE(v, prev);
      prev = v;
    }
    EXPECT_EQ(cdf.Quantile(1.0), cdf.max());
    EXPECT_GE(cdf.Quantile(0.0), cdf.min());
  }
}

TEST(CdfPropertyTest, EvalMatchesDirectCount) {
  // Eval(x) must equal (#samples <= x) / n exactly.
  Rng rng(2027);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> samples = RandomSamples(rng, trial);
    EmpiricalCdf cdf(samples);
    for (int i = 0; i < 10; ++i) {
      double x = samples[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(samples.size()) - 1))];
      double expected =
          static_cast<double>(std::count_if(samples.begin(), samples.end(),
                                            [&](double s) { return s <= x; })) /
          static_cast<double>(samples.size());
      ASSERT_DOUBLE_EQ(cdf.Eval(x), expected);
    }
  }
}

TEST(CdfPropertyTest, CurveIsNondecreasingInBothCoordinates) {
  Rng rng(2028);
  for (int trial = 0; trial < 20; ++trial) {
    EmpiricalCdf cdf(RandomSamples(rng, trial));
    auto curve = cdf.Curve(50);
    ASSERT_FALSE(curve.empty());
    for (size_t i = 1; i < curve.size(); ++i) {
      ASSERT_GE(curve[i].first, curve[i - 1].first);
      ASSERT_GE(curve[i].second, curve[i - 1].second);
    }
    EXPECT_GE(curve.front().second, 0.0);
    EXPECT_LE(curve.back().second, 1.0 + 1e-12);
  }
}

TEST(CdfPropertyTest, IncrementalAddMatchesBulkConstruction) {
  Rng rng(2029);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> samples = RandomSamples(rng, trial);
    EmpiricalCdf bulk(samples);
    EmpiricalCdf incremental;
    for (double s : samples) incremental.Add(s);
    incremental.Finalize();
    for (int i = 0; i <= 10; ++i) {
      double q = static_cast<double>(i) / 10.0;
      ASSERT_DOUBLE_EQ(incremental.Quantile(q), bulk.Quantile(q));
    }
  }
}

}  // namespace
}  // namespace rc
