// VirtualClock is the foundation of every deterministic timing test in the
// repo (combiner windows, client backoff, net deadlines), so its own
// semantics are pinned exactly here: registration/wake ordering, predicate
// re-checks, sleep accounting, and the no-lost-wakeup guarantee.
#include "src/common/clock.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

namespace rc::common {
namespace {

TEST(MonotonicClockTest, NowAdvancesAndSleepElapses) {
  MonotonicClock* clock = MonotonicClock::Instance();
  int64_t a = clock->NowUs();
  clock->SleepUs(1000);
  int64_t b = clock->NowUs();
  EXPECT_GE(b - a, 1000);
  clock->SleepUs(0);    // no-ops must return immediately
  clock->SleepUs(-10);
}

TEST(MonotonicClockTest, WaitUntilHonorsPredicateAndDeadline) {
  MonotonicClock* clock = MonotonicClock::Instance();
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;

  {
    // Already-true predicate returns immediately.
    std::unique_lock<std::mutex> lock(mu);
    ready = true;
    EXPECT_TRUE(clock->WaitUntil(lock, cv, clock->NowUs() + 1'000'000, [&] { return ready; }));
    ready = false;
  }
  {
    // Expired deadline with a false predicate returns false without waiting.
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_FALSE(clock->WaitUntil(lock, cv, clock->NowUs() - 1, [&] { return ready; }));
  }
  // A notify with the predicate satisfied ends the wait before the deadline.
  std::thread writer([&] {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(clock->WaitUntil(lock, cv, clock->NowUs() + 5'000'000, [&] { return ready; }));
  }
  writer.join();
}

TEST(VirtualClockTest, TimeMovesOnlyWhenAdvanced) {
  VirtualClock clock(VirtualClock::Options{.start_us = 100});
  EXPECT_EQ(clock.NowUs(), 100);
  clock.AdvanceUs(40);
  EXPECT_EQ(clock.NowUs(), 140);
  clock.AdvanceUs(0);    // <= 0 is a no-op
  clock.AdvanceUs(-5);
  EXPECT_EQ(clock.NowUs(), 140);
  clock.AdvanceToUs(200);
  EXPECT_EQ(clock.NowUs(), 200);
  clock.AdvanceToUs(150);  // already past: no-op
  EXPECT_EQ(clock.NowUs(), 200);
}

TEST(VirtualClockTest, SleeperWakesExactlyAtDeadline) {
  VirtualClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepUs(500);
    woke.store(true);
  });
  clock.AwaitWaiters(1);
  EXPECT_EQ(clock.waiters(), 1u);
  clock.AdvanceUs(499);
  EXPECT_FALSE(woke.load());  // deterministic: time has provably not reached 500
  clock.AdvanceUs(1);
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(clock.slept_us(), 500);
}

TEST(VirtualClockTest, AutoAdvanceOnSleepRunsInline) {
  VirtualClock clock(VirtualClock::Options{.auto_advance_on_sleep = true});
  // Synchronous backoff naps (e.g. the store-retry schedule 500, 1000) run on
  // the calling thread; auto-advance keeps them from deadlocking and records
  // the exact schedule.
  clock.SleepUs(500);
  clock.SleepUs(1000);
  EXPECT_EQ(clock.NowUs(), 1500);
  EXPECT_EQ(clock.slept_us(), 1500);
}

TEST(VirtualClockTest, WaitUntilWakesOnDeadlineWithFinalPredicate) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::atomic<bool> returned{false};
  bool result = true;
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    result = clock.WaitUntil(lock, cv, 250, [&] { return ready; });
    returned.store(true);
  });
  clock.AwaitWaiters(1);
  clock.AdvanceUs(249);
  EXPECT_FALSE(returned.load());
  clock.AdvanceUs(1);  // crosses the deadline; predicate still false
  waiter.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result);
}

TEST(VirtualClockTest, WaitUntilWakesEarlyOnNotify) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  bool result = false;
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    result = clock.WaitUntil(lock, cv, 1'000'000, [&] { return ready; });
  });
  clock.AwaitWaiters(1);
  {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
    cv.notify_all();
  }
  waiter.join();
  EXPECT_TRUE(result);
  EXPECT_EQ(clock.NowUs(), 0);  // no virtual time passed
  EXPECT_EQ(clock.waiters(), 0u);
}

TEST(VirtualClockTest, SpuriousNotifyReparksUntilDeadline) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    clock.WaitUntil(lock, cv, 100, [&] { return ready; });
    returned.store(true);
  });
  clock.AwaitWaiters(1);
  {
    // A notify whose predicate is still false must re-park the waiter.
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_all();
  }
  clock.AwaitWaiters(1);
  EXPECT_FALSE(returned.load());
  clock.AdvanceUs(100);
  waiter.join();
  EXPECT_TRUE(returned.load());
}

TEST(VirtualClockTest, ManyWaitersAllReleasedByOneAdvance) {
  VirtualClock clock;
  constexpr int kThreads = 8;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::unique_lock<std::mutex> lock(mu);
      clock.WaitUntil(lock, cv, 10 * (i + 1), [] { return false; });
      done.fetch_add(1);
    });
  }
  clock.AwaitWaiters(kThreads);
  clock.AdvanceUs(10 * kThreads);  // crosses every deadline at once
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), kThreads);
  EXPECT_EQ(clock.waiters(), 0u);
}

}  // namespace
}  // namespace rc::common
