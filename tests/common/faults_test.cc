// The fault-injection substrate itself must be deterministic: every trigger
// mode (always, one-shot, every-Nth, window, Bernoulli) is counted and
// seeded, so a test that arms a spec twice sees the identical fire pattern.
#include "src/common/faults.h"

#include <gtest/gtest.h>

namespace rc::faults {
namespace {

class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().DisarmAll(); }
  void TearDown() override { Registry::Global().DisarmAll(); }
};

TEST_F(FaultsTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(Registry::Global().armed());
  EXPECT_FALSE(InjectError("kv/get"));
  std::vector<uint8_t> bytes{1, 2, 3};
  EXPECT_FALSE(InjectMutation("kv/get", bytes));
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(FaultsTest, DefaultSpecFiresOnEveryCall) {
  ScopedFault fault("site", FaultSpec{});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(InjectError("site"));
  EXPECT_EQ(Registry::Global().calls("site"), 5u);
  EXPECT_EQ(Registry::Global().fires("site"), 5u);
}

TEST_F(FaultsTest, OneShot) {
  FaultSpec spec;
  spec.max_fires = 1;
  ScopedFault fault("site", spec);
  EXPECT_TRUE(InjectError("site"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(InjectError("site"));
  EXPECT_EQ(Registry::Global().fires("site"), 1u);
}

TEST_F(FaultsTest, EveryNth) {
  FaultSpec spec;
  spec.every_nth = 3;
  ScopedFault fault("site", spec);
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) pattern.push_back(InjectError("site"));
  EXPECT_EQ(pattern, (std::vector<bool>{true, false, false, true, false, false, true,
                                        false, false}));
}

TEST_F(FaultsTest, OutageWindow) {
  FaultSpec spec;
  spec.skip_first = 2;
  spec.max_fires = 3;
  ScopedFault fault("site", spec);
  std::vector<bool> pattern;
  for (int i = 0; i < 8; ++i) pattern.push_back(InjectError("site"));
  // Calls 2, 3, 4 fail; before and after the window the site is healthy.
  EXPECT_EQ(pattern, (std::vector<bool>{false, false, true, true, true, false, false,
                                        false}));
}

TEST_F(FaultsTest, BernoulliIsSeededAndReproducible) {
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 1234;
  auto run = [&] {
    Registry::Global().DisarmAll();
    ScopedFault fault("site", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(InjectError("site"));
    return pattern;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // Sanity: with p=0.5 over 64 calls, both outcomes must appear.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FaultsTest, KindMismatchDoesNotFire) {
  FaultSpec spec;
  spec.kind = FaultKind::kCorrupt;
  ScopedFault fault("site", spec);
  EXPECT_FALSE(InjectError("site"));  // armed kind is kCorrupt, not kError
  std::vector<uint8_t> bytes{1, 2, 3, 4};
  EXPECT_TRUE(InjectMutation("site", bytes));
}

TEST_F(FaultsTest, CorruptionIsDeterministicAndAlwaysChangesBytes) {
  FaultSpec spec;
  spec.kind = FaultKind::kCorrupt;
  spec.seed = 77;
  std::vector<uint8_t> original(64, 0xAB);
  auto corrupt_once = [&] {
    Registry::Global().DisarmAll();
    ScopedFault fault("site", spec);
    std::vector<uint8_t> bytes = original;
    EXPECT_TRUE(InjectMutation("site", bytes));
    return bytes;
  };
  std::vector<uint8_t> first = corrupt_once();
  std::vector<uint8_t> second = corrupt_once();
  EXPECT_EQ(first, second);  // same seed, same flips
  EXPECT_NE(first, original);
}

TEST_F(FaultsTest, TruncationShortensPayload) {
  FaultSpec spec;
  spec.kind = FaultKind::kTruncate;
  spec.truncate_to = 3;
  ScopedFault fault("site", spec);
  std::vector<uint8_t> bytes{1, 2, 3, 4, 5};
  EXPECT_TRUE(InjectMutation("site", bytes));
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3}));
  // Already shorter than the target: no mutation reported.
  std::vector<uint8_t> shorter{9};
  EXPECT_FALSE(InjectMutation("site", shorter));
  EXPECT_EQ(shorter, (std::vector<uint8_t>{9}));
}

TEST_F(FaultsTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("site", FaultSpec{});
    EXPECT_TRUE(Registry::Global().armed());
  }
  EXPECT_FALSE(Registry::Global().armed());
  EXPECT_FALSE(InjectError("site"));
}

TEST_F(FaultsTest, RearmReplacesSpecWithoutLeakingArmCount) {
  Registry::Global().Arm("site", FaultSpec{});
  FaultSpec one_shot;
  one_shot.max_fires = 1;
  Registry::Global().Arm("site", one_shot);  // re-arm same site
  EXPECT_TRUE(InjectError("site"));
  EXPECT_FALSE(InjectError("site"));
  Registry::Global().Disarm("site");
  EXPECT_FALSE(Registry::Global().armed());
}

}  // namespace
}  // namespace rc::faults
