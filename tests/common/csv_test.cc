#include "src/common/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rc {
namespace {

TEST(CsvTest, SplitBasic) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, SplitEmptyFields) {
  auto fields = SplitCsvLine(",x,");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::stringstream ss;
  CsvWriter writer(ss);
  writer.WriteRow({"id", "name"});
  writer.WriteRow({"1", "alpha"});
  writer.WriteRow({"2", "beta"});

  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row, (std::vector<std::string>{"id", "name"}));
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row[1], "alpha");
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_FALSE(reader.ReadRow(row));
}

TEST(CsvTest, WriterRejectsFieldsNeedingQuotes) {
  std::stringstream ss;
  CsvWriter writer(ss);
  EXPECT_THROW(writer.WriteRow({"a,b"}), std::invalid_argument);
  EXPECT_THROW(writer.WriteRow({"a\nb"}), std::invalid_argument);
}

TEST(CsvTest, ReaderSkipsBlankLinesAndCrLf) {
  std::stringstream ss("a,b\r\n\r\n\nc,d\r\n");
  CsvReader reader(ss);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row[1], "b");
  ASSERT_TRUE(reader.ReadRow(row));
  EXPECT_EQ(row[0], "c");
  EXPECT_FALSE(reader.ReadRow(row));
}

}  // namespace
}  // namespace rc
