#include "src/common/cdf.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace rc {
namespace {

TEST(EmpiricalCdfTest, EvalBasics) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Eval(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Eval(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Eval(100.0), 1.0);
}

TEST(EmpiricalCdfTest, AddThenFinalize) {
  EmpiricalCdf cdf;
  cdf.Add(3.0);
  cdf.Add(1.0);
  cdf.Add(2.0);
  cdf.Finalize();
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_NEAR(cdf.Eval(1.5), 1.0 / 3.0, 1e-12);
}

TEST(EmpiricalCdfTest, EvalBeforeFinalizeThrows) {
  EmpiricalCdf cdf;
  cdf.Add(1.0);
  EXPECT_THROW(cdf.Eval(0.0), std::logic_error);
}

TEST(EmpiricalCdfTest, QuantileInverseRelationship) {
  Rng rng(5);
  EmpiricalCdf cdf;
  for (int i = 0; i < 5000; ++i) cdf.Add(rng.Normal(0.0, 1.0));
  cdf.Finalize();
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double x = cdf.Quantile(q);
    EXPECT_NEAR(cdf.Eval(x), q, 0.01) << "q=" << q;
  }
}

TEST(EmpiricalCdfTest, QuantileEdges) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 20.0);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  Rng rng(7);
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.Add(rng.LogNormal(0.0, 1.0));
  cdf.Finalize();
  auto curve = cdf.Curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (size_t i = 1; i < curve.size(); ++i) {
    ASSERT_GE(curve[i].first, curve[i - 1].first);
    ASSERT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, TabulateAtFormatsLines) {
  EmpiricalCdf cdf({1.0, 2.0});
  std::string out = cdf.TabulateAt({1.0, 2.0});
  EXPECT_EQ(out, "1\t0.5\n2\t1\n");
}

TEST(EmpiricalCdfTest, UniformSamplesMatchUniformCdf) {
  Rng rng(11);
  EmpiricalCdf cdf;
  for (int i = 0; i < 20000; ++i) cdf.Add(rng.NextDouble());
  cdf.Finalize();
  for (double x = 0.1; x < 1.0; x += 0.1) {
    EXPECT_NEAR(cdf.Eval(x), x, 0.02);
  }
}

}  // namespace
}  // namespace rc
