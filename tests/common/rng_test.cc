#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace rc {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 42;
  uint64_t a = SplitMix64(s);
  uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformIntUnbiased) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[rng.UniformInt(0, kBuckets - 1)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.01);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, WeibullMeanMatchesClosedForm) {
  Rng rng(19);
  double shape = 0.6, scale = 10.0;
  double sum = 0.0;
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) sum += rng.Weibull(shape, scale);
  double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(sum / kN, expected, expected * 0.03);
}

TEST(RngTest, WeibullShapeOneIsExponential) {
  // Weibull(k=1, lambda) == Exponential(rate = 1/lambda).
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Weibull(1.0, 4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(RngTest, ParetoTailAndSupport) {
  Rng rng(29);
  double below = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.Pareto(2.0, 1.5);
    ASSERT_GE(x, 2.0);
    // P(X <= 4) = 1 - (2/4)^1.5
    if (x <= 4.0) ++below;
  }
  EXPECT_NEAR(below / kN, 1.0 - std::pow(0.5, 1.5), 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.01);
}

TEST(RngTest, CategoricalThrowsOnAllZero) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.Categorical(weights), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(51);
  Rng child = a.Fork();
  // Child's stream should not replicate the parent's next outputs.
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(DiscreteSamplerTest, MatchesCategorical) {
  DiscreteSampler sampler({2.0, 1.0, 1.0});
  Rng rng(53);
  int counts[3] = {};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.25, 0.01);
}

TEST(DiscreteSamplerTest, NegativeWeightsTreatedAsZero) {
  DiscreteSampler sampler({-5.0, 1.0});
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(sampler.Sample(rng), 1u);
}

TEST(DiscreteSamplerTest, ThrowsWithoutPositiveWeight) {
  EXPECT_THROW(DiscreteSampler({0.0, -1.0}), std::invalid_argument);
}

// Property sweep: sampled distributions should match their analytic CDF at
// a few probe points (coarse Kolmogorov-style check).
class WeibullSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeibullSweep, MedianMatchesClosedForm) {
  double shape = GetParam();
  Rng rng(61);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.Weibull(shape, 1.0);
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  double median = xs[xs.size() / 2];
  double expected = std::pow(std::log(2.0), 1.0 / shape);
  EXPECT_NEAR(median, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullSweep, ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.5));

}  // namespace
}  // namespace rc
