#include "src/common/histogram.h"

#include <gtest/gtest.h>

namespace rc {
namespace {

TEST(HistogramTest, BinEdgesAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);    // bin 0 (inclusive lower edge)
  h.Add(1.99);   // bin 0
  h.Add(2.0);    // bin 1
  h.Add(9.99);   // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.1);
  h.Add(1.0);  // hi is exclusive
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, WeightedAdds) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.5, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.Fraction(1), 1.0);
}

TEST(HistogramTest, BinBounds) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 12.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(CategoricalHistogramTest, CountsAndFractions) {
  CategoricalHistogram h;
  h.Add("a");
  h.Add("a", 2.0);
  h.Add("b");
  EXPECT_DOUBLE_EQ(h.count("a"), 3.0);
  EXPECT_DOUBLE_EQ(h.count("b"), 1.0);
  EXPECT_DOUBLE_EQ(h.count("missing"), 0.0);
  EXPECT_DOUBLE_EQ(h.Fraction("a"), 0.75);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(CategoricalHistogramTest, EmptyFractionIsZero) {
  CategoricalHistogram h;
  EXPECT_DOUBLE_EQ(h.Fraction("x"), 0.0);
}

}  // namespace
}  // namespace rc
