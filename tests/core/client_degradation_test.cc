// Graceful-degradation scenarios (the acceptance bar for the fault-injection
// layer): Client::PredictSingle must never throw, crash, or silently serve
// corrupt data during store outages, injected I/O error storms, or
// corrupt-blob storms — it serves its last-good snapshot, surfaces the
// degraded window in ClientStats, and recovers when the store heals.
#include "src/core/client.h"

#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/faults.h"
#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

namespace faults = rc::faults;
using rc::store::KvStore;
using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

class ClientDegradationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 2000;
    config.num_subscriptions = 100;
    config.seed = 1313;
    trace_ = new Trace(WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 4;
    pipeline_config.gbt.num_rounds = 4;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override {
    // The fault registry is process-global: never let one test's faults leak
    // into another (or into the pipeline publish in this fixture).
    faults::Registry::Global().DisarmAll();
    store_ = std::make_unique<KvStore>();
    OfflinePipeline::Publish(*trained_, *store_);
    disk_dir_ = ::testing::TempDir() + "/rc_degradation_test_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(disk_dir_);
  }

  void TearDown() override {
    faults::Registry::Global().DisarmAll();
    std::filesystem::remove_all(disk_dir_);
  }

  // A spread of inputs over known subscriptions, for comparing prediction
  // sets before/during/after a degraded window.
  std::vector<ClientInputs> KnownInputSet(size_t count) const {
    static const rc::trace::VmSizeCatalog catalog;
    std::vector<ClientInputs> inputs;
    for (const auto& vm : trace_->vms()) {
      if (trained_->feature_data.contains(vm.subscription_id)) {
        inputs.push_back(InputsFromVm(vm, catalog));
        if (inputs.size() == count) break;
      }
    }
    EXPECT_EQ(inputs.size(), count);
    return inputs;
  }

  static std::vector<Prediction> PredictAll(Client& client,
                                            const std::vector<ClientInputs>& inputs) {
    std::vector<Prediction> out;
    out.reserve(inputs.size());
    for (const auto& in : inputs) out.push_back(client.PredictSingle("VM_P95UTIL", in));
    return out;
  }

  static void ExpectSamePredictions(const std::vector<Prediction>& got,
                                    const std::vector<Prediction>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].valid) << "prediction " << i << " became no-prediction";
      EXPECT_EQ(got[i].bucket, want[i].bucket) << "prediction " << i;
      EXPECT_DOUBLE_EQ(got[i].score, want[i].score) << "prediction " << i;
    }
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  std::unique_ptr<KvStore> store_;
  std::string disk_dir_;
};

const Trace* ClientDegradationTest::trace_ = nullptr;
const TrainedModels* ClientDegradationTest::trained_ = nullptr;

// The headline scenario: a store outage followed by a corrupt-blob storm.
// The client must keep serving its last-good predictions through both, count
// and surface every rejected blob, and recover the moment clean data lands.
TEST_F(ClientDegradationTest, ServesLastGoodThroughOutageAndCorruptStorm) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  auto inputs = KnownInputSet(20);
  auto baseline = PredictAll(client, inputs);
  for (const auto& p : baseline) ASSERT_TRUE(p.valid);
  EXPECT_FALSE(client.stats().degraded());

  // Phase 1: full outage. Reload attempts fail; last-good keeps serving.
  store_->SetAvailable(false);
  client.ForceReloadCache();
  ExpectSamePredictions(PredictAll(client, inputs), baseline);
  EXPECT_EQ(client.stats().degraded_reason, DegradedReason::kStoreOutage);

  // Phase 2: the store comes back but every republished blob is corrupted in
  // flight (bit flips between CRC stamping and storage). The push listener
  // must reject every one by checksum and keep the last-good snapshot.
  store_->SetAvailable(true);
  {
    faults::FaultSpec corrupt;
    corrupt.kind = faults::FaultKind::kCorrupt;
    faults::ScopedFault storm("kv/put", corrupt);
    OfflinePipeline::Publish(*trained_, *store_);
    ExpectSamePredictions(PredictAll(client, inputs), baseline);
    auto stats = client.stats();
    EXPECT_GT(stats.corrupt_blobs, 0u);
    EXPECT_EQ(stats.degraded_reason, DegradedReason::kCorruptData);
  }

  // Phase 3: clean republish heals the degraded window.
  OfflinePipeline::Publish(*trained_, *store_);
  ExpectSamePredictions(PredictAll(client, inputs), baseline);
  EXPECT_EQ(client.stats().degraded_reason, DegradedReason::kNone);
}

TEST_F(ClientDegradationTest, TornPushesAreRejectedToo) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  auto inputs = KnownInputSet(5);
  auto baseline = PredictAll(client, inputs);

  faults::FaultSpec torn;
  torn.kind = faults::FaultKind::kTruncate;
  torn.truncate_to = 8;
  faults::ScopedFault storm("kv/put", torn);
  OfflinePipeline::Publish(*trained_, *store_);
  ExpectSamePredictions(PredictAll(client, inputs), baseline);
  EXPECT_GT(client.stats().corrupt_blobs, 0u);
}

TEST_F(ClientDegradationTest, PullModeFallsBackToDiskMirrorDuringErrorStorm) {
  // Client A (push, with a disk dir) mirrors everything to disk.
  {
    ClientConfig config;
    config.disk_cache_dir = disk_dir_;
    Client warmup(store_.get(), config);
    ASSERT_TRUE(warmup.Initialize());
  }

  // Client B (pull, same disk dir) starts cold while every store read
  // errors: fetches must retry, then fall back to the disk mirror.
  ClientConfig config;
  config.mode = CacheMode::kPull;
  config.disk_cache_dir = disk_dir_;
  config.store_max_retries = 1;
  config.store_retry_backoff_us = 10;
  config.breaker_failure_threshold = 0;  // isolate retry+fallback behaviour
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());

  faults::FaultSpec err;
  err.kind = faults::FaultKind::kError;
  faults::ScopedFault storm("client/store_read", err);

  auto inputs = KnownInputSet(5);
  for (const auto& in : inputs) {
    Prediction p = client.PredictSingle("VM_P95UTIL", in);
    ASSERT_TRUE(p.valid) << "disk fallback failed";
  }
  auto stats = client.stats();
  EXPECT_GT(stats.store_errors, 0u);
  EXPECT_GT(stats.store_retries, 0u);
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_EQ(stats.degraded_reason, DegradedReason::kStoreErrors);
}

TEST_F(ClientDegradationTest, CircuitBreakerStopsContactingTheStore) {
  ClientConfig config;
  config.mode = CacheMode::kPull;
  config.store_max_retries = 0;
  config.breaker_failure_threshold = 3;
  config.breaker_open_us = 60'000'000;  // far beyond the test's lifetime
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());

  faults::FaultSpec err;
  err.kind = faults::FaultKind::kError;
  faults::ScopedFault storm("client/store_read", err);

  auto inputs = KnownInputSet(1);
  // Drive misses until the breaker trips (every store attempt pings the
  // client/store_read fault site, so the registry's call counter tells us
  // exactly how many times the store was contacted).
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(client.PredictSingle("VM_P95UTIL", inputs[0]).valid);
  }
  auto stats = client.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.degraded_reason, DegradedReason::kStoreErrors);

  uint64_t attempts_at_trip = faults::Registry::Global().calls("client/store_read");
  ASSERT_GE(attempts_at_trip, 3u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(client.PredictSingle("VM_P95UTIL", inputs[0]).valid);
  }
  // Breaker open: not a single additional store contact.
  EXPECT_EQ(faults::Registry::Global().calls("client/store_read"), attempts_at_trip);
  EXPECT_EQ(client.stats().breaker_trips, 1u);
}

TEST_F(ClientDegradationTest, BreakerHalfOpenProbeRecovers) {
  ClientConfig config;
  config.store_max_retries = 0;
  config.breaker_failure_threshold = 2;
  config.breaker_open_us = 50'000;  // 50 ms cooldown
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  auto inputs = KnownInputSet(5);
  auto baseline = PredictAll(client, inputs);

  {
    faults::FaultSpec err;
    err.kind = faults::FaultKind::kError;
    faults::ScopedFault storm("client/store_read", err);
    client.ForceReloadCache();  // trips the breaker partway through
  }
  auto mid = client.stats();
  EXPECT_GE(mid.breaker_trips, 1u);
  EXPECT_EQ(mid.degraded_reason, DegradedReason::kStoreErrors);
  // Still serving last-good.
  ExpectSamePredictions(PredictAll(client, inputs), baseline);

  // After the cooldown the half-open probe succeeds (faults are gone) and a
  // clean reload closes the breaker and clears the degraded flag.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  client.ForceReloadCache();
  ExpectSamePredictions(PredictAll(client, inputs), baseline);
  EXPECT_EQ(client.stats().degraded_reason, DegradedReason::kNone);
}

TEST_F(ClientDegradationTest, ReloadDeadlineCutsSlowReloadsShort) {
  ClientConfig config;
  config.reload_timeout_us = 500'000;  // 0.5 s budget for a full reload
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());  // fast: no injected latency yet
  auto inputs = KnownInputSet(5);
  auto baseline = PredictAll(client, inputs);

  faults::FaultSpec slow;
  slow.kind = faults::FaultKind::kLatency;
  slow.latency_us = 200'000;  // 200 ms per store read
  faults::ScopedFault fault("kv/get", slow);

  auto start = std::chrono::steady_clock::now();
  client.ForceReloadCache();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // Without the deadline this reload would take (keys x 200ms) >> 5 s; the
  // budget plus at most one in-flight read bounds it.
  EXPECT_LT(elapsed, 2000);
  auto stats = client.stats();
  EXPECT_EQ(stats.reload_timeouts, 1u);
  EXPECT_EQ(stats.degraded_reason, DegradedReason::kStoreErrors);
  // The partial reload never replaced good entries with nothing.
  ExpectSamePredictions(PredictAll(client, inputs), baseline);
}

TEST_F(ClientDegradationTest, ColdStartWithCorruptDiskAndDeadStoreIsSafe) {
  // Warm a disk mirror, then start a fresh client during an outage while
  // every disk read returns corrupted frames: the client must come up empty
  // (no-prediction) rather than crash or decode garbage.
  {
    ClientConfig config;
    config.disk_cache_dir = disk_dir_;
    Client warmup(store_.get(), config);
    ASSERT_TRUE(warmup.Initialize());
  }
  store_->SetAvailable(false);

  faults::FaultSpec corrupt;
  corrupt.kind = faults::FaultKind::kCorrupt;
  faults::ScopedFault rot("disk/read", corrupt);

  ClientConfig config;
  config.disk_cache_dir = disk_dir_;
  Client client(store_.get(), config);
  EXPECT_TRUE(client.Initialize());  // usable, just empty
  auto inputs = KnownInputSet(3);
  for (const auto& in : inputs) {
    EXPECT_FALSE(client.PredictSingle("VM_P95UTIL", in).valid);
  }
  EXPECT_GT(client.stats().no_predictions, 0u);
}

}  // namespace
}  // namespace rc::core
