#include "src/core/featurizer.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

ClientInputs SampleInputs() {
  ClientInputs in;
  in.subscription_id = 9;
  in.vm_type = 1;
  in.guest_os = 1;
  in.role = 2;
  in.cores = 4;
  in.memory_gb = 14.0;
  in.size_index = 7;
  in.region = 3;
  in.deploy_hour = 15;
  in.deploy_dow = 2;
  in.service_id = 5;
  return in;
}

TEST(FeaturizerTest, ExpandedFeatureCountInPaperBallpark) {
  // Table 1 reports 127 features for the Random Forest utilization models;
  // the expanded encoding should land in that neighbourhood.
  Featurizer f(Metric::kAvgCpu, FeatureEncoding::kExpanded);
  EXPECT_GE(f.num_features(), 100u);
  EXPECT_LE(f.num_features(), 150u);
  EXPECT_EQ(f.feature_names().size(), f.num_features());
}

TEST(FeaturizerTest, CompactFeatureCountsInPaperBallpark) {
  // Table 1: 24 features for the deployment models, 33-34 for lifetime and
  // class.
  EXPECT_NEAR(Featurizer(Metric::kDeployVms, FeatureEncoding::kCompact).num_features(),
              24.0, 8.0);
  EXPECT_NEAR(Featurizer(Metric::kLifetime, FeatureEncoding::kCompact).num_features(),
              33.0, 10.0);
  EXPECT_NEAR(Featurizer(Metric::kClass, FeatureEncoding::kCompact).num_features(),
              34.0, 10.0);
}

TEST(FeaturizerTest, NamesUniqueWithinEncoding) {
  for (Metric m : kAllMetrics) {
    for (FeatureEncoding enc : {FeatureEncoding::kExpanded, FeatureEncoding::kCompact}) {
      Featurizer f(m, enc);
      std::set<std::string> names(f.feature_names().begin(), f.feature_names().end());
      EXPECT_EQ(names.size(), f.num_features());
    }
  }
}

TEST(FeaturizerTest, OneHotBlocksAreOneHot) {
  Featurizer f(Metric::kP95Cpu, FeatureEncoding::kExpanded);
  SubscriptionFeatures history;
  auto row = f.Encode(SampleInputs(), history);
  ASSERT_EQ(row.size(), f.num_features());
  // Every one-hot block sums to exactly 1; block boundaries are encoded in
  // the feature names (prefix before the final underscore).
  std::map<std::string, double> block_sums;
  for (size_t i = 0; i < row.size(); ++i) {
    const std::string& name = f.feature_names()[i];
    size_t us = name.rfind('_');
    if (us == std::string::npos) continue;
    std::string prefix = name.substr(0, us);
    if (prefix == "vm_type" || prefix == "os" || prefix == "role" || prefix == "size" ||
        prefix == "region" || prefix == "service" || prefix == "hour" || prefix == "dow") {
      block_sums[prefix] += row[i];
      EXPECT_TRUE(row[i] == 0.0 || row[i] == 1.0) << name;
    }
  }
  for (const auto& [prefix, sum] : block_sums) {
    EXPECT_DOUBLE_EQ(sum, 1.0) << prefix;
  }
}

TEST(FeaturizerTest, HistoryFlowsIntoFeatures) {
  Featurizer f(Metric::kAvgCpu, FeatureEncoding::kCompact);
  SubscriptionFeatures empty;
  SubscriptionFeatures history;
  history.vm_count = 10;
  history.bucket_frac[static_cast<size_t>(Metric::kAvgCpu)][2] = 0.7;
  history.mean_avg_cpu = 0.55;
  auto row_empty = f.Encode(SampleInputs(), empty);
  auto row_hist = f.Encode(SampleInputs(), history);
  EXPECT_NE(row_empty, row_hist);
  // The hist_avg_b2 feature must carry the 0.7.
  for (size_t i = 0; i < f.num_features(); ++i) {
    if (f.feature_names()[i] == "hist_avg_b2") {
      EXPECT_DOUBLE_EQ(row_hist[i], 0.7);
      EXPECT_DOUBLE_EQ(row_empty[i], 0.0);
    }
  }
}

TEST(FeaturizerTest, EncodeToValidatesSize) {
  Featurizer f(Metric::kClass, FeatureEncoding::kCompact);
  SubscriptionFeatures history;
  std::vector<double> wrong(f.num_features() + 1);
  EXPECT_THROW(f.EncodeTo(SampleInputs(), history, wrong), std::invalid_argument);
}

TEST(FeaturizerTest, DeterministicEncoding) {
  Featurizer f(Metric::kLifetime, FeatureEncoding::kCompact);
  SubscriptionFeatures history;
  history.vm_count = 3;
  EXPECT_EQ(f.Encode(SampleInputs(), history), f.Encode(SampleInputs(), history));
}

TEST(RoleServiceIdTest, Mappings) {
  EXPECT_EQ(RoleId("IaaS"), 0);
  EXPECT_EQ(RoleId("WebRole"), 1);
  EXPECT_EQ(RoleId("DbRole"), 4);
  EXPECT_EQ(RoleId("Mystery"), 0);
  EXPECT_EQ(ServiceId("unknown"), 0);
  EXPECT_EQ(ServiceId("svc-0"), 1);
  EXPECT_EQ(ServiceId("svc-19"), 20);
  EXPECT_EQ(ServiceId("svc-25"), 0);  // out of catalog
  EXPECT_EQ(ServiceId("other"), 0);
}

TEST(InputsFromVmTest, MapsAllFields) {
  rc::trace::VmSizeCatalog catalog;
  rc::trace::VmRecord vm;
  vm.subscription_id = 77;
  vm.vm_type = rc::trace::VmType::kPaas;
  vm.guest_os = rc::trace::GuestOs::kWindows;
  vm.role_name = "WorkerRole";
  vm.service_name = "svc-3";
  vm.cores = 2;
  vm.memory_gb = 3.5;  // A2
  vm.region = 4;
  vm.created = 2 * kDay + 9 * kHour + 30 * kMinute;

  ClientInputs in = InputsFromVm(vm, catalog);
  EXPECT_EQ(in.subscription_id, 77u);
  EXPECT_EQ(in.vm_type, 1);
  EXPECT_EQ(in.guest_os, 1);
  EXPECT_EQ(in.role, 2);
  EXPECT_EQ(in.service_id, 4);
  EXPECT_EQ(in.cores, 2);
  EXPECT_EQ(in.size_index, catalog.IndexOf("A2"));
  EXPECT_EQ(in.region, 4);
  EXPECT_EQ(in.deploy_hour, 9);
  EXPECT_EQ(in.deploy_dow, 2);
}

TEST(ClientInputsTest, CacheKeySensitivity) {
  ClientInputs a = SampleInputs();
  uint64_t base = a.CacheKey("VM_P95UTIL");
  EXPECT_EQ(base, a.CacheKey("VM_P95UTIL"));          // stable
  EXPECT_NE(base, a.CacheKey("VM_AVGUTIL"));          // model name matters
  ClientInputs b = a;
  b.subscription_id += 1;
  EXPECT_NE(base, b.CacheKey("VM_P95UTIL"));
  ClientInputs c = a;
  c.deploy_hour += 1;
  EXPECT_NE(base, c.CacheKey("VM_P95UTIL"));
}

TEST(PredictionTest, BucketValuePolicies) {
  EXPECT_DOUBLE_EQ(UtilizationBucketValue(1, BucketValuePolicy::kLow), 0.25);
  EXPECT_DOUBLE_EQ(UtilizationBucketValue(1, BucketValuePolicy::kMid), 0.375);
  EXPECT_DOUBLE_EQ(UtilizationBucketValue(1, BucketValuePolicy::kHigh), 0.5);
  EXPECT_DOUBLE_EQ(UtilizationBucketValue(3, BucketValuePolicy::kHigh), 1.0);
}

TEST(PredictionTest, NoneAndOf) {
  Prediction none = Prediction::None();
  EXPECT_FALSE(none.valid);
  Prediction p = Prediction::Of(2, 0.8);
  EXPECT_TRUE(p.valid);
  EXPECT_EQ(p.bucket, 2);
  EXPECT_DOUBLE_EQ(p.score, 0.8);
}

}  // namespace
}  // namespace rc::core
