#include "src/core/offline_pipeline.h"

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/evaluation.h"
#include "src/core/model_spec.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

const Trace& SharedTrace() {
  static const Trace* trace = [] {
    WorkloadConfig config;
    config.target_vm_count = 12000;
    config.num_subscriptions = 600;
    config.seed = 5150;
    return new Trace(WorkloadModel(config).Generate());
  }();
  return *trace;
}

PipelineConfig FastConfig() {
  PipelineConfig config;
  config.rf.num_trees = 20;
  config.rf.tree.max_depth = 12;
  config.gbt.num_rounds = 20;
  return config;
}

const TrainedModels& SharedModels() {
  static const TrainedModels* models = [] {
    OfflinePipeline pipeline(FastConfig());
    return new TrainedModels(pipeline.Run(SharedTrace()));
  }();
  return *models;
}

TEST(ModelSpecTest, SerializationRoundTrip) {
  ModelSpec spec;
  spec.name = "VM_P95UTIL";
  spec.metric = Metric::kP95Cpu;
  spec.encoding = FeatureEncoding::kExpanded;
  spec.model_family = "random_forest";
  spec.num_features = 127;
  spec.version = 9;
  ModelSpec restored = ModelSpec::Deserialize(spec.Serialize());
  EXPECT_EQ(restored.name, spec.name);
  EXPECT_EQ(restored.metric, spec.metric);
  EXPECT_EQ(restored.encoding, spec.encoding);
  EXPECT_EQ(restored.model_family, spec.model_family);
  EXPECT_EQ(restored.num_features, 127u);
  EXPECT_EQ(restored.version, 9u);
}

TEST(ModelSpecTest, KeyHelpers) {
  EXPECT_EQ(SpecKey("M"), "spec/M");
  EXPECT_EQ(ModelKey("M"), "model/M");
  EXPECT_EQ(FeatureKey(12), "features/12");
  uint64_t id = 0;
  EXPECT_TRUE(ParseFeatureKey("features/987", id));
  EXPECT_EQ(id, 987u);
  EXPECT_FALSE(ParseFeatureKey("model/987", id));
  EXPECT_FALSE(ParseFeatureKey("features/abc", id));
  EXPECT_FALSE(ParseFeatureKey("features/12x", id));
}

TEST(PipelineTest, TrainsAllSixModels) {
  const TrainedModels& trained = SharedModels();
  EXPECT_EQ(trained.models.size(), 6u);
  EXPECT_EQ(trained.specs.size(), 6u);
  for (Metric m : kAllMetrics) {
    std::string name = MetricModelName(m);
    ASSERT_TRUE(trained.models.contains(name)) << name;
    const ModelSpec& spec = trained.specs.at(name);
    EXPECT_EQ(spec.metric, m);
    EXPECT_EQ(spec.encoding, OfflinePipeline::EncodingFor(m));
    const auto& model = trained.models.at(name);
    EXPECT_EQ(model->num_classes(), NumBuckets(m));
    EXPECT_EQ(static_cast<uint32_t>(model->num_features()), spec.num_features);
    // Table 1: Random Forest for utilization, boosted trees for the rest.
    if (OfflinePipeline::UsesRandomForest(m)) {
      EXPECT_STREQ(model->type_name(), "random_forest");
    } else {
      EXPECT_STREQ(model->type_name(), "gbt");
    }
  }
  EXPECT_FALSE(trained.feature_data.empty());
}

TEST(PipelineTest, ExamplesChronologicalAndWindowed) {
  auto examples = OfflinePipeline::BuildExamples(SharedTrace(), Metric::kAvgCpu,
                                                 10 * kDay, 20 * kDay, false);
  ASSERT_FALSE(examples.empty());
  auto in_window = SharedTrace().VmsCreatedIn(10 * kDay, 20 * kDay);
  EXPECT_EQ(examples.size(), in_window.size());
}

TEST(PipelineTest, HistoryGrowsOverTime) {
  // A late window must see strictly more accumulated history than an early
  // one for the same (high-volume) subscription.
  auto early = OfflinePipeline::BuildExamples(SharedTrace(), Metric::kAvgCpu, 0,
                                              5 * kDay, false);
  auto late = OfflinePipeline::BuildExamples(SharedTrace(), Metric::kAvgCpu, 60 * kDay,
                                             65 * kDay, false);
  ASSERT_FALSE(early.empty());
  ASSERT_FALSE(late.empty());
  double early_hist = 0, late_hist = 0;
  for (const auto& e : early) early_hist += static_cast<double>(e.history.vm_count);
  for (const auto& e : late) late_hist += static_cast<double>(e.history.vm_count);
  EXPECT_GT(late_hist / static_cast<double>(late.size()),
            early_hist / static_cast<double>(early.size()));
}

TEST(PipelineTest, NoFutureLeakageInHistory) {
  // At any example's emission, the history can only contain VMs whose
  // observation time predates the emission; in particular a subscription's
  // very first VM sees an empty history.
  auto examples = OfflinePipeline::BuildExamples(SharedTrace(), Metric::kAvgCpu, 0,
                                                 30 * kDay, false);
  std::set<uint64_t> seen_subs;
  int first_vm_checked = 0;
  for (const auto& e : examples) {
    if (seen_subs.insert(e.inputs.subscription_id).second) {
      // First example of this subscription in the trace.
      const auto& vm_indices =
          SharedTrace().VmsOfSubscription(e.inputs.subscription_id);
      // Only check subscriptions whose first VM is this one (not resident
      // services created before window start).
      if (!vm_indices.empty() &&
          SharedTrace().vms()[vm_indices[0]].created >= 0 && e.history.vm_count == 0) {
        ++first_vm_checked;
      }
    }
  }
  EXPECT_GT(first_vm_checked, 10);
}

TEST(PipelineTest, LifetimeExamplesOnlyWhenLabelKnown) {
  // VMs created at the very end of the window whose lifetime cannot be
  // established (still running, < 24h old at window end) must be skipped.
  SimTime window = SharedTrace().observation_window();
  auto examples = OfflinePipeline::BuildExamples(SharedTrace(), Metric::kLifetime,
                                                 window - 12 * kHour, window, false);
  for (const auto& e : examples) {
    (void)e;
  }
  auto all_late = SharedTrace().VmsCreatedIn(window - 12 * kHour, window);
  // Some late VMs are excluded (those still running with < 24h of age).
  size_t undeterminable = 0;
  for (const auto* vm : all_late) {
    if (vm->deleted > window && (window - vm->created) <= 24 * kHour) ++undeterminable;
  }
  EXPECT_EQ(examples.size() + undeterminable, all_late.size());
}

TEST(PipelineTest, DeploymentExamplesOnePerGroup) {
  auto examples = OfflinePipeline::BuildExamples(SharedTrace(), Metric::kDeployVms, 0,
                                                 SharedTrace().observation_window(),
                                                 false);
  // One example per (subscription, region, day) group.
  std::set<std::tuple<uint64_t, int, int64_t>> groups;
  for (const auto& vm : SharedTrace().vms()) {
    groups.insert({vm.subscription_id, vm.region, vm.created / kDay});
  }
  EXPECT_EQ(examples.size(), groups.size());
}

TEST(PipelineTest, FeatureSnapshotMonotone) {
  auto early = OfflinePipeline::BuildFeatureSnapshot(SharedTrace(), 10 * kDay, false);
  auto late = OfflinePipeline::BuildFeatureSnapshot(SharedTrace(), 60 * kDay, false);
  EXPECT_GE(late.size(), early.size());
  int64_t early_total = 0, late_total = 0;
  for (const auto& [id, f] : early) early_total += f.vm_count;
  for (const auto& [id, f] : late) late_total += f.vm_count;
  EXPECT_GT(late_total, early_total);
}

TEST(PipelineTest, ModelsBeatPriorBaseline) {
  // Core claim: learned models beat always-predict-the-majority-bucket on
  // the held-out month, for every metric.
  const TrainedModels& trained = SharedModels();
  for (Metric m : {Metric::kAvgCpu, Metric::kP95Cpu, Metric::kLifetime}) {
    auto examples = OfflinePipeline::BuildExamples(SharedTrace(), m, 60 * kDay,
                                                   90 * kDay, true);
    ASSERT_GT(examples.size(), 100u) << MetricName(m);
    Featurizer featurizer(m, OfflinePipeline::EncodingFor(m));
    auto quality =
        EvaluateModel(*trained.models.at(MetricModelName(m)), featurizer, examples);
    // Majority-bucket accuracy.
    std::array<int64_t, 4> counts{};
    for (const auto& e : examples) counts[static_cast<size_t>(e.label)]++;
    double majority = static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
                      static_cast<double>(examples.size());
    EXPECT_GT(quality.accuracy, majority + 0.02) << MetricName(m);
    // Absolute floor is modest here: this fixture is deliberately small
    // (12k VMs); the full-scale Table 4 bench lands in the paper's band.
    EXPECT_GT(quality.accuracy, 0.5) << MetricName(m);
  }
}

TEST(EvaluationTest, FormatContainsKeyFields) {
  MetricQuality q;
  q.metric = Metric::kLifetime;
  q.accuracy = 0.79;
  q.buckets.resize(4);
  q.p_theta = 0.85;
  q.r_theta = 0.80;
  std::string s = FormatMetricQuality(q);
  EXPECT_NE(s.find("Lifetime"), std::string::npos);
  EXPECT_NE(s.find("0.79"), std::string::npos);
  EXPECT_NE(s.find("P^t"), std::string::npos);
}

}  // namespace
}  // namespace rc::core
