// Verifies the Table-4 arithmetic exactly, using a scripted classifier.
#include "src/core/evaluation.h"

#include <gtest/gtest.h>

namespace rc::core {
namespace {

// Returns a fixed (label, score) per row, keyed by the first feature value.
class ScriptedClassifier final : public rc::ml::Classifier {
 public:
  struct Entry {
    int label;
    double score;
  };
  explicit ScriptedClassifier(std::vector<Entry> script, int num_classes)
      : script_(std::move(script)), num_classes_(num_classes) {}

  int num_classes() const override { return num_classes_; }
  int num_features() const override { return 1; }
  std::vector<double> PredictProba(std::span<const double> x) const override {
    const Entry& e = script_.at(static_cast<size_t>(x[0]));
    // Top class carries `score`; the rest is spread uniformly.
    std::vector<double> probs(static_cast<size_t>(num_classes_),
                              (1.0 - e.score) / (num_classes_ - 1));
    probs[static_cast<size_t>(e.label)] = e.score;
    return probs;
  }
  const char* type_name() const override { return "scripted"; }
  void Serialize(rc::ml::ByteWriter&) const override {}

 private:
  std::vector<Entry> script_;
  int num_classes_;
};

// Drives EvaluateModel through the real featurizer: each example's `cores`
// input (feature 0 of the compact encoding) indexes the script.
TEST(EvaluationTest, Table4ArithmeticExact) {
  // 4 examples for the class metric (2 buckets):
  //   idx cores true predicted score
  //   0   0     0    0         0.9   served, correct
  //   1   1     0    1         0.8   served, wrong
  //   2   2     1    1         0.55  not served (theta 0.6), correct
  //   3   3     1    0         0.7   served, wrong
  ScriptedClassifier model({{0, 0.9}, {1, 0.8}, {1, 0.55}, {0, 0.7}}, 2);
  Featurizer featurizer(Metric::kClass, FeatureEncoding::kCompact);
  // EncodeTo writes `cores` into feature 0 (see Featurizer::BuildNames).
  ASSERT_EQ(featurizer.feature_names()[0], "cores");

  std::vector<LabeledExample> examples(4);
  int truths[4] = {0, 0, 1, 1};
  for (int i = 0; i < 4; ++i) {
    examples[static_cast<size_t>(i)].inputs.cores = i;
    examples[static_cast<size_t>(i)].label = truths[i];
  }
  MetricQuality q = EvaluateModel(model, featurizer, examples, 0.6);

  EXPECT_EQ(q.examples, 4);
  EXPECT_DOUBLE_EQ(q.accuracy, 0.5);  // rows 0 and 2 correct
  ASSERT_EQ(q.buckets.size(), 2u);
  // Bucket 0: prevalence 2/4; predicted-0 set = rows {0, 3} -> precision 1/2;
  // actual-0 set = rows {0, 1} -> recall 1/2.
  EXPECT_DOUBLE_EQ(q.buckets[0].prevalence, 0.5);
  EXPECT_DOUBLE_EQ(q.buckets[0].precision, 0.5);
  EXPECT_DOUBLE_EQ(q.buckets[0].recall, 0.5);
  // Bucket 1: predicted-1 = rows {1, 2} -> precision 1/2; actual-1 = {2, 3}
  // -> recall 1/2.
  EXPECT_DOUBLE_EQ(q.buckets[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(q.buckets[1].recall, 0.5);
  // Thresholded at 0.6: rows {0, 1, 3} served, 1 correct -> P=1/3, R=3/4.
  EXPECT_NEAR(q.p_theta, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.r_theta, 0.75);
}

TEST(EvaluationTest, PerfectModelPerfectQuality) {
  ScriptedClassifier model({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}}, 4);
  Featurizer featurizer(Metric::kLifetime, FeatureEncoding::kCompact);
  ASSERT_EQ(featurizer.feature_names()[0], "cores");
  std::vector<LabeledExample> examples(4);
  for (int i = 0; i < 4; ++i) {
    examples[static_cast<size_t>(i)].inputs.cores = i;
    examples[static_cast<size_t>(i)].label = i;
  }
  MetricQuality q = EvaluateModel(model, featurizer, examples, 0.6);
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(q.p_theta, 1.0);
  EXPECT_DOUBLE_EQ(q.r_theta, 1.0);
  for (const auto& bucket : q.buckets) {
    EXPECT_DOUBLE_EQ(bucket.precision, 1.0);
    EXPECT_DOUBLE_EQ(bucket.recall, 1.0);
    EXPECT_DOUBLE_EQ(bucket.prevalence, 0.25);
  }
}

}  // namespace
}  // namespace rc::core
