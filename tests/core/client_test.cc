// Client library ("client DLL") behaviour: Table 2 API, caching regimes,
// no-prediction handling, outage fallbacks.
#include "src/core/client.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

using rc::store::KvStore;
using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

class ClientTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 6000;
    config.num_subscriptions = 300;
    config.seed = 909;
    trace_ = new Trace(WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 8;
    pipeline_config.gbt.num_rounds = 8;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override {
    store_ = std::make_unique<KvStore>();
    OfflinePipeline::Publish(*trained_, *store_);
    disk_dir_ = ::testing::TempDir() + "/rc_client_test_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(disk_dir_);
  }

  void TearDown() override { std::filesystem::remove_all(disk_dir_); }

  // Inputs for a subscription that exists in the published feature data.
  ClientInputs KnownInputs() const {
    static const rc::trace::VmSizeCatalog catalog;
    for (const auto& vm : trace_->vms()) {
      if (trained_->feature_data.contains(vm.subscription_id)) {
        return InputsFromVm(vm, catalog);
      }
    }
    ADD_FAILURE() << "no known subscription";
    return {};
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  std::unique_ptr<KvStore> store_;
  std::string disk_dir_;
};

const Trace* ClientTest::trace_ = nullptr;
const TrainedModels* ClientTest::trained_ = nullptr;

TEST_F(ClientTest, InitializeAndListModels) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  auto models = client.GetAvailableModels();
  ASSERT_EQ(models.size(), 6u);
  EXPECT_TRUE(std::find(models.begin(), models.end(), "VM_P95UTIL") != models.end());
}

TEST_F(ClientTest, PredictSingleKnownSubscription) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  Prediction p = client.PredictSingle("VM_P95UTIL", KnownInputs());
  ASSERT_TRUE(p.valid);
  EXPECT_GE(p.bucket, 0);
  EXPECT_LT(p.bucket, 4);
  EXPECT_GT(p.score, 0.0);
  EXPECT_LE(p.score, 1.0);
}

TEST_F(ClientTest, ResultCacheHitsOnRepeat) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  Prediction first = client.PredictSingle("VM_AVGUTIL", inputs);
  Prediction second = client.PredictSingle("VM_AVGUTIL", inputs);
  EXPECT_EQ(first.bucket, second.bucket);
  auto stats = client.stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_EQ(stats.model_executions, 1u);
}

TEST_F(ClientTest, UnknownModelNoPrediction) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  Prediction p = client.PredictSingle("NOT_A_MODEL", KnownInputs());
  EXPECT_FALSE(p.valid);
  EXPECT_EQ(client.stats().no_predictions, 1u);
}

TEST_F(ClientTest, UnknownSubscriptionNoPredictionInPushMode) {
  // Paper: a prediction request for a recently created subscription returns
  // no-prediction until feature data is pushed.
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  inputs.subscription_id = 999'999'999;
  Prediction p = client.PredictSingle("VM_P95UTIL", inputs);
  EXPECT_FALSE(p.valid);
}

TEST_F(ClientTest, MissingFeatureDataAllowedWhenConfigured) {
  ClientConfig config;
  config.allow_missing_feature_data = true;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  inputs.subscription_id = 999'999'999;
  Prediction p = client.PredictSingle("VM_P95UTIL", inputs);
  EXPECT_TRUE(p.valid);
}

TEST_F(ClientTest, PushUpdatesInvalidateResults) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  client.PredictSingle("VM_P95UTIL", inputs);
  EXPECT_EQ(client.stats().result_misses, 1u);
  // Publish a fresh feature-data record for this subscription: the push
  // must reach the client's caches and clear cached results.
  SubscriptionFeatures features;
  features.subscription_id = inputs.subscription_id;
  features.vm_count = 1;
  store_->Put(FeatureKey(inputs.subscription_id), features.Serialize());
  client.PredictSingle("VM_P95UTIL", inputs);
  auto stats = client.stats();
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.result_misses, 2u);
}

TEST_F(ClientTest, PushModeNewSubscriptionAppearsAfterPush) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  inputs.subscription_id = 123'456'789;
  EXPECT_FALSE(client.PredictSingle("VM_P95UTIL", inputs).valid);
  SubscriptionFeatures features;
  features.subscription_id = inputs.subscription_id;
  features.vm_count = 4;
  store_->Put(FeatureKey(inputs.subscription_id), features.Serialize());
  EXPECT_TRUE(client.PredictSingle("VM_P95UTIL", inputs).valid);
}

TEST_F(ClientTest, PullModeLazyLoads) {
  ClientConfig config;
  config.mode = CacheMode::kPull;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  // Nothing loaded yet.
  EXPECT_TRUE(client.GetAvailableModels().empty());
  Prediction p = client.PredictSingle("VM_P95UTIL", KnownInputs());
  EXPECT_TRUE(p.valid);
  EXPECT_GT(client.stats().store_fetches, 0u);
  EXPECT_EQ(client.GetAvailableModels().size(), 1u);
}

TEST_F(ClientTest, PullNeverBlocksReturnsNoPredictionThenServes) {
  ClientConfig config;
  config.mode = CacheMode::kPull;
  config.pull_never_blocks = true;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  // First request: caches cold -> no-prediction, warms in the background.
  EXPECT_FALSE(client.PredictSingle("VM_P95UTIL", inputs).valid);
  // Second request: warm -> served.
  EXPECT_TRUE(client.PredictSingle("VM_P95UTIL", inputs).valid);
}

TEST_F(ClientTest, OutageFallsBackToDisk) {
  ClientConfig config;
  config.mode = CacheMode::kPull;
  config.disk_cache_dir = disk_dir_;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  ASSERT_TRUE(client.PredictSingle("VM_P95UTIL", inputs).valid);  // warms disk

  // Second client starts during an outage: disk mirror must serve.
  store_->SetAvailable(false);
  Client cold(store_.get(), config);
  ASSERT_TRUE(cold.Initialize());
  Prediction p = cold.PredictSingle("VM_P95UTIL", inputs);
  EXPECT_TRUE(p.valid);
  EXPECT_GT(cold.stats().disk_hits, 0u);
}

TEST_F(ClientTest, ExpiredDiskCacheIgnored) {
  ClientConfig config;
  config.mode = CacheMode::kPull;
  config.disk_cache_dir = disk_dir_;
  config.disk_expiry_seconds = 1;
  {
    Client warm(store_.get(), config);
    ASSERT_TRUE(warm.Initialize());
    warm.PredictSingle("VM_P95UTIL", KnownInputs());
  }
  // Timestamps are whole seconds; sleep past expiry + rounding.
  std::this_thread::sleep_for(std::chrono::milliseconds(2300));
  store_->SetAvailable(false);
  Client cold(store_.get(), config);
  cold.Initialize();
  // Disk entries are expired; during the outage there is no data.
  EXPECT_FALSE(cold.PredictSingle("VM_P95UTIL", KnownInputs()).valid);
}

TEST_F(ClientTest, PushModeColdStartDuringOutageUsesDiskIndex) {
  ClientConfig config;
  config.disk_cache_dir = disk_dir_;
  {
    Client warm(store_.get(), config);
    ASSERT_TRUE(warm.Initialize());  // push mode: mirrors everything to disk
  }
  store_->SetAvailable(false);
  Client cold(store_.get(), config);
  ASSERT_TRUE(cold.Initialize());
  EXPECT_EQ(cold.GetAvailableModels().size(), 6u);
  EXPECT_TRUE(cold.PredictSingle("VM_P95UTIL", KnownInputs()).valid);
}

TEST_F(ClientTest, FlushCacheDropsEverything) {
  ClientConfig config;
  config.disk_cache_dir = disk_dir_;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ASSERT_TRUE(client.PredictSingle("VM_P95UTIL", KnownInputs()).valid);
  client.FlushCache();
  EXPECT_TRUE(client.GetAvailableModels().empty());
  // Push mode after flush: no reload until ForceReloadCache.
  EXPECT_FALSE(client.PredictSingle("VM_P95UTIL", KnownInputs()).valid);
  client.ForceReloadCache();
  EXPECT_TRUE(client.PredictSingle("VM_P95UTIL", KnownInputs()).valid);
}

TEST_F(ClientTest, PredictManyMatchesSingles) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  std::vector<ClientInputs> batch(3, KnownInputs());
  batch[1].deploy_hour = (batch[1].deploy_hour + 1) % 24;
  batch[2].subscription_id = 999'999'999;  // unknown
  auto results = client.PredictMany("VM_AVGUTIL", batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].valid);
  EXPECT_TRUE(results[1].valid);
  EXPECT_FALSE(results[2].valid);
  EXPECT_EQ(results[0].bucket, client.PredictSingle("VM_AVGUTIL", batch[0]).bucket);
}

// Regression: a batch of identical inputs used to featurize and score every
// duplicate row and re-insert the same result-cache entry N times. Duplicate
// keys must collapse to one model execution, fanned out to every row.
TEST_F(ClientTest, PredictManyDeduplicatesIdenticalInputs) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  std::vector<ClientInputs> batch(16, KnownInputs());
  auto results = client.PredictMany("VM_AVGUTIL", batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const Prediction& p : results) {
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.bucket, results[0].bucket);
    EXPECT_EQ(p.score, results[0].score);
  }
  auto stats = client.stats();
  EXPECT_EQ(stats.model_executions, 1u);
  EXPECT_EQ(stats.result_misses, batch.size());  // every probe missed...
  EXPECT_EQ(stats.result_hits, 0u);              // ...before the single execute
  // The cached entry serves the whole batch on repeat.
  client.PredictMany("VM_AVGUTIL", batch);
  stats = client.stats();
  EXPECT_EQ(stats.model_executions, 1u);
  EXPECT_EQ(stats.result_hits, batch.size());
}

// Mixed batch: duplicates of two distinct keys -> exactly two executions,
// and each row gets the prediction for its own key.
TEST_F(ClientTest, PredictManyDeduplicatesMixedBatch) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  ClientInputs a = KnownInputs();
  ClientInputs b = a;
  b.deploy_hour = (b.deploy_hour + 1) % 24;
  std::vector<ClientInputs> batch = {a, b, a, b, a, a};
  auto results = client.PredictMany("VM_AVGUTIL", batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(client.stats().model_executions, 2u);
  Prediction pa = client.PredictSingle("VM_AVGUTIL", a);
  Prediction pb = client.PredictSingle("VM_AVGUTIL", b);
  for (size_t i : {0u, 2u, 4u, 5u}) {
    EXPECT_EQ(results[i].bucket, pa.bucket) << "row " << i;
    EXPECT_EQ(results[i].score, pa.score) << "row " << i;
  }
  for (size_t i : {1u, 3u}) {
    EXPECT_EQ(results[i].bucket, pb.bucket) << "row " << i;
    EXPECT_EQ(results[i].score, pb.score) << "row " << i;
  }
  // The singles above were cache hits, not new executions.
  EXPECT_EQ(client.stats().model_executions, 2u);
}

TEST_F(ClientTest, ResultCacheCapacityBounded) {
  ClientConfig config;
  config.result_cache_capacity = 8;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  for (int hour = 0; hour < 24; ++hour) {
    inputs.deploy_hour = hour;
    client.PredictSingle("VM_AVGUTIL", inputs);
  }
  // The cache was flushed at least once but predictions kept flowing.
  EXPECT_EQ(client.stats().model_executions, 24u);
}

TEST_F(ClientTest, NoStoreNoDiskFailsInitialize) {
  Client client(nullptr, ClientConfig{});
  EXPECT_FALSE(client.Initialize());
}

// Every engine mode must serve valid predictions through the full client
// path (featurize -> engine walk -> argmax), and the exact modes must agree
// with each other bucket-for-bucket (scalar and AVX2 are bit-identical;
// quantized may differ only when two classes are within leaf-table
// tolerance, which a trained model's argmax almost never is — we assert the
// prediction is valid rather than equal for it).
TEST_F(ClientTest, EngineModeServesPredictionsInEveryMode) {
  using Mode = rc::ml::ExecEngine::Mode;
  ClientInputs inputs = KnownInputs();
  Prediction scalar;
  for (Mode mode : {Mode::kScalar, Mode::kAuto, Mode::kAvx2, Mode::kQuantized}) {
    ClientConfig config;
    config.engine_mode = mode;
    Client client(store_.get(), config);
    ASSERT_TRUE(client.Initialize());
    Prediction p = client.PredictSingle("VM_P95UTIL", inputs);
    ASSERT_TRUE(p.valid) << rc::ml::ExecEngine::ModeName(mode);
    EXPECT_GT(p.score, 0.0);
    EXPECT_LE(p.score, 1.0);
    if (mode == Mode::kScalar) {
      scalar = p;
    } else if (mode != Mode::kQuantized) {
      EXPECT_EQ(p.bucket, scalar.bucket) << rc::ml::ExecEngine::ModeName(mode);
      EXPECT_EQ(p.score, scalar.score) << rc::ml::ExecEngine::ModeName(mode);
    }

    // PredictMany runs the batched walk under the same stamped mode.
    std::vector<ClientInputs> batch(5, inputs);
    auto many = client.PredictMany("VM_P95UTIL", batch);
    ASSERT_EQ(many.size(), batch.size());
    for (const Prediction& m : many) {
      ASSERT_TRUE(m.valid);
      EXPECT_EQ(m.bucket, p.bucket);
    }
  }
}

TEST_F(ClientTest, EngineModeOverridesPinSingleModels) {
  using Mode = rc::ml::ExecEngine::Mode;
  ClientConfig config;
  config.engine_mode = Mode::kScalar;
  config.engine_mode_overrides["VM_AVGUTIL"] = Mode::kQuantized;
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs inputs = KnownInputs();
  // Both models serve; the override only changes which walk runs.
  EXPECT_TRUE(client.PredictSingle("VM_P95UTIL", inputs).valid);
  EXPECT_TRUE(client.PredictSingle("VM_AVGUTIL", inputs).valid);
}

TEST_F(ClientTest, ModelBytesGaugeExportedPerModel) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  auto snapshot = client.metrics().Collect();
  size_t f64_series = 0, quantized_series = 0;
  for (const auto& g : snapshot.gauges) {
    if (g.info.name != "rc_client_model_bytes") continue;
    EXPECT_GT(g.value, 0.0) << g.info.labels;
    EXPECT_NE(g.info.labels.find("model="), std::string::npos) << g.info.labels;
    if (g.info.labels.find("pool=\"f64\"") != std::string::npos) ++f64_series;
    if (g.info.labels.find("pool=\"quantized\"") != std::string::npos) {
      ++quantized_series;
    }
  }
  // Six published models, each with a compiled engine; the quantized series
  // exists for every model the u16 pool can represent (all of them here).
  EXPECT_EQ(f64_series, 6u);
  EXPECT_EQ(quantized_series, 6u);
}

}  // namespace
}  // namespace rc::core
