// rc::obs integration at the client boundary: the registry-backed
// instruments must mirror ClientStats exactly, the degraded-reason gauge and
// breaker-trip counter must move through an injected outage, and a shared
// registry must keep two clients' series apart via labels.
#include "src/core/client.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/faults.h"
#include "src/core/offline_pipeline.h"
#include "src/obs/export.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

namespace faults = rc::faults;
using rc::store::KvStore;
using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

class ClientMetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 1000;
    config.num_subscriptions = 60;
    config.seed = 4242;
    trace_ = new Trace(WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 4;
    pipeline_config.gbt.num_rounds = 4;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override {
    faults::Registry::Global().DisarmAll();
    store_ = std::make_unique<KvStore>();
    OfflinePipeline::Publish(*trained_, *store_);
  }

  void TearDown() override { faults::Registry::Global().DisarmAll(); }

  ClientInputs KnownInput() const {
    static const rc::trace::VmSizeCatalog catalog;
    for (const auto& vm : trace_->vms()) {
      if (trained_->feature_data.contains(vm.subscription_id)) {
        return InputsFromVm(vm, catalog);
      }
    }
    ADD_FAILURE() << "no VM with feature data";
    return {};
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  std::unique_ptr<KvStore> store_;
};

const Trace* ClientMetricsTest::trace_ = nullptr;
const TrainedModels* ClientMetricsTest::trained_ = nullptr;

TEST_F(ClientMetricsTest, InstrumentsMirrorClientStats) {
  ClientConfig config;
  config.predict_latency_sample_every = 1;  // time every call
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs input = KnownInput();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.PredictSingle("VM_P95UTIL", input).valid);
  }

  ClientStats stats = client.stats();
  EXPECT_EQ(stats.result_hits, 4u);
  EXPECT_EQ(stats.result_misses, 1u);

  rc::obs::MetricsRegistry& reg = client.metrics();
  EXPECT_EQ(reg.GetCounter("rc_client_result_hits").Value(), stats.result_hits);
  EXPECT_EQ(reg.GetCounter("rc_client_result_misses").Value(), stats.result_misses);
  EXPECT_EQ(reg.GetCounter("rc_client_model_executions").Value(), stats.model_executions);
  EXPECT_EQ(reg.GetCounter("rc_client_store_fetches").Value(), stats.store_fetches);
  // Every prediction was timed (sample_every = 1).
  EXPECT_EQ(reg.GetHistogram("rc_client_predict_latency_us").TakeSnapshot().count, 5u);
  // Store reads happened during Initialize and are timed unconditionally.
  EXPECT_GT(reg.GetHistogram("rc_client_store_read_latency_us").TakeSnapshot().count, 0u);
}

TEST_F(ClientMetricsTest, DegradedGaugeAndBreakerTripsMoveThroughAnOutage) {
  ClientConfig config;
  config.store_max_retries = 0;
  config.breaker_failure_threshold = 2;
  config.breaker_open_us = 1000;  // short cooldown so the window can heal
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  rc::obs::Gauge& degraded = client.metrics().GetGauge("rc_client_degraded_reason");
  rc::obs::Counter& trips = client.metrics().GetCounter("rc_client_breaker_trips");
  EXPECT_DOUBLE_EQ(degraded.Value(), 0.0);
  EXPECT_EQ(trips.Value(), 0u);

  // Injected store-read error storm: reload fails, breaker trips, gauge
  // reports DegradedReason::kStoreErrors (2).
  {
    faults::FaultSpec err;
    err.kind = faults::FaultKind::kError;
    faults::ScopedFault storm("client/store_read", err);
    client.ForceReloadCache();
  }
  EXPECT_DOUBLE_EQ(degraded.Value(), 2.0);
  EXPECT_GE(trips.Value(), 1u);
  EXPECT_EQ(trips.Value(), client.stats().breaker_trips);

  // Store outage: gauge moves to kStoreOutage (1).
  store_->SetAvailable(false);
  client.ForceReloadCache();
  EXPECT_DOUBLE_EQ(degraded.Value(), 1.0);

  // Heal: wait out the breaker cooldown, clean reload clears the gauge.
  store_->SetAvailable(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  client.ForceReloadCache();
  EXPECT_DOUBLE_EQ(degraded.Value(), 0.0);

  // The whole story is visible in the exposition text.
  std::string text = rc::obs::PrometheusText(client.metrics());
  EXPECT_NE(text.find("rc_client_breaker_trips"), std::string::npos);
  EXPECT_NE(text.find("rc_client_degraded_reason 0"), std::string::npos) << text;
}

TEST_F(ClientMetricsTest, SharedRegistrySplitsClientsByLabel) {
  rc::obs::MetricsRegistry shared;
  ClientConfig a_config;
  a_config.metrics = &shared;
  a_config.metric_labels = {{"client", "a"}};
  ClientConfig b_config;
  b_config.metrics = &shared;
  b_config.metric_labels = {{"client", "b"}};
  Client a(store_.get(), a_config);
  Client b(store_.get(), b_config);
  ASSERT_TRUE(a.Initialize());
  ASSERT_TRUE(b.Initialize());

  ClientInputs input = KnownInput();
  ASSERT_TRUE(a.PredictSingle("VM_P95UTIL", input).valid);

  EXPECT_EQ(shared.GetCounter("rc_client_result_misses", {{"client", "a"}}).Value(), 1u);
  EXPECT_EQ(shared.GetCounter("rc_client_result_misses", {{"client", "b"}}).Value(), 0u);
  // Per-client stats() views stay isolated despite the shared registry.
  EXPECT_EQ(a.stats().result_misses, 1u);
  EXPECT_EQ(b.stats().result_misses, 0u);
}

TEST_F(ClientMetricsTest, LatencySamplingCanBeDisabled) {
  ClientConfig config;
  config.predict_latency_sample_every = 0;  // never time the hot path
  Client client(store_.get(), config);
  ASSERT_TRUE(client.Initialize());
  ClientInputs input = KnownInput();
  for (int i = 0; i < 10; ++i) client.PredictSingle("VM_P95UTIL", input);
  EXPECT_EQ(
      client.metrics().GetHistogram("rc_client_predict_latency_us").TakeSnapshot().count,
      0u);
}

}  // namespace
}  // namespace rc::core
