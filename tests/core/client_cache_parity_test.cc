// Parity oracle for the rc::cache result cache (ISSUE 10): a client with
// the admission-controlled cache must return bit-identical Predictions to a
// cache-off client over the same store state, epoch invalidation semantics
// must hold under a republish storm, and the warm hit path must perform
// zero shard-mutex acquisitions (rc::cache::ShardLockAcquisitions hook).
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/sharded_cache.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

using rc::store::KvStore;
using rc::trace::Trace;
using rc::trace::WorkloadConfig;
using rc::trace::WorkloadModel;

bool BitIdentical(const Prediction& a, const Prediction& b) {
  return a.valid == b.valid && a.bucket == b.bucket &&
         std::memcmp(&a.score, &b.score, sizeof(double)) == 0;
}

class ClientCacheParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.target_vm_count = 4000;
    config.num_subscriptions = 200;
    config.seed = 1234;
    trace_ = new Trace(WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 8;
    pipeline_config.gbt.num_rounds = 8;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override {
    store_ = std::make_unique<KvStore>();
    OfflinePipeline::Publish(*trained_, *store_);
  }

  // Inputs for subscriptions present in the published feature data.
  std::vector<ClientInputs> KnownInputSet(size_t limit) const {
    static const rc::trace::VmSizeCatalog catalog;
    std::vector<ClientInputs> inputs;
    for (const auto& vm : trace_->vms()) {
      if (inputs.size() >= limit) break;
      if (trained_->feature_data.contains(vm.subscription_id)) {
        inputs.push_back(InputsFromVm(vm, catalog));
      }
    }
    EXPECT_FALSE(inputs.empty());
    return inputs;
  }

  static const Trace* trace_;
  static const TrainedModels* trained_;
  std::unique_ptr<KvStore> store_;
};

const Trace* ClientCacheParityTest::trace_ = nullptr;
const TrainedModels* ClientCacheParityTest::trained_ = nullptr;

TEST_F(ClientCacheParityTest, CachedResultsBitIdenticalToCacheOff) {
  ClientConfig cached_config;  // default: W-TinyLFU cache on
  Client cached(store_.get(), cached_config);
  ASSERT_TRUE(cached.Initialize());

  ClientConfig uncached_config;
  uncached_config.result_cache_capacity = 0;  // every call executes
  Client uncached(store_.get(), uncached_config);
  ASSERT_TRUE(uncached.Initialize());

  const std::vector<ClientInputs> inputs = KnownInputSet(200);
  const std::vector<std::string> models = {"VM_P95UTIL", "VM_AVGUTIL"};
  // Two passes: pass 0 fills the cache, pass 1 serves hits — both must be
  // bit-identical to the always-execute client.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& model : models) {
      for (const auto& in : inputs) {
        const Prediction a = cached.PredictSingle(model, in);
        const Prediction b = uncached.PredictSingle(model, in);
        ASSERT_TRUE(BitIdentical(a, b))
            << "pass " << pass << " model " << model << " valid " << a.valid
            << "/" << b.valid << " bucket " << a.bucket << "/" << b.bucket;
      }
    }
  }
  // The second pass actually exercised the cache.
  EXPECT_GT(cached.stats().result_hits, 0u);
  EXPECT_EQ(uncached.stats().result_hits, 0u);
}

TEST_F(ClientCacheParityTest, AdmissionOffParityHolds) {
  ClientConfig config;
  config.result_cache_admission = false;  // plain-LRU arm, same oracle
  Client cached(store_.get(), config);
  ASSERT_TRUE(cached.Initialize());

  ClientConfig uncached_config;
  uncached_config.result_cache_capacity = 0;
  Client uncached(store_.get(), uncached_config);
  ASSERT_TRUE(uncached.Initialize());

  const std::vector<ClientInputs> inputs = KnownInputSet(100);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& in : inputs) {
      ASSERT_TRUE(BitIdentical(cached.PredictSingle("VM_P95UTIL", in),
                               uncached.PredictSingle("VM_P95UTIL", in)));
    }
  }
}

TEST_F(ClientCacheParityTest, RepublishStormPreservesEpochSemantics) {
  // Readers hammer predictions while feature data republishes churn the
  // snapshot and invalidate the result cache. Afterwards, every cached
  // answer must match a cache-off client built on the final store state —
  // i.e. no pre-invalidation result survived an invalidation.
  Client cached(store_.get(), ClientConfig{});
  ASSERT_TRUE(cached.Initialize());
  const std::vector<ClientInputs> inputs = KnownInputSet(64);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        cached.PredictSingle("VM_P95UTIL", inputs[i % inputs.size()]);
        ++i;
      }
    });
  }
  // The storm: republish feature data for the subscriptions under test with
  // changing contents, so a stale cached result is actually wrong.
  for (int round = 0; round < 30; ++round) {
    for (size_t i = 0; i < 8 && i < inputs.size(); ++i) {
      SubscriptionFeatures features;
      features.subscription_id = inputs[i].subscription_id;
      features.vm_count = 1 + (round % 5);
      store_->Put(FeatureKey(features.subscription_id), features.Serialize());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  ClientConfig reference_config;
  reference_config.result_cache_capacity = 0;
  Client reference(store_.get(), reference_config);
  ASSERT_TRUE(reference.Initialize());
  for (const auto& in : inputs) {
    const Prediction a = cached.PredictSingle("VM_P95UTIL", in);
    const Prediction b = reference.PredictSingle("VM_P95UTIL", in);
    ASSERT_TRUE(BitIdentical(a, b)) << "stale result survived invalidation";
  }
}

TEST_F(ClientCacheParityTest, WarmHitPathTakesZeroShardLocks) {
  Client client(store_.get(), ClientConfig{});
  ASSERT_TRUE(client.Initialize());
  const std::vector<ClientInputs> inputs = KnownInputSet(32);
  // Warm: every key inserted (insert takes the shard writer lock, once).
  for (const auto& in : inputs) client.PredictSingle("VM_P95UTIL", in);
  const uint64_t hits_before = client.stats().result_hits;
  const uint64_t locks_before = rc::cache::ShardLockAcquisitions();
  for (int round = 0; round < 50; ++round) {
    for (const auto& in : inputs) client.PredictSingle("VM_P95UTIL", in);
  }
  EXPECT_EQ(rc::cache::ShardLockAcquisitions(), locks_before)
      << "a warm PredictSingle hit acquired a cache shard mutex";
  EXPECT_EQ(client.stats().result_hits, hits_before + 50 * inputs.size());
}

}  // namespace
}  // namespace rc::core
