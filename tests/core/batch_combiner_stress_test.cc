// Concurrency stress for BatchCombiner: real threads hammering the coalesced
// path while models republish mid-storm, a park/flush shutdown race aimed at
// TSan (tools/check_tsan.sh runs this file explicitly), and a property test
// that random interleavings produce bit-identical results to the
// combiner-off path. No test here sleeps real time to coordinate: storms are
// bounded by iteration counts and state spins, and the property test runs on
// a VirtualClock.
#include "src/core/batch_combiner.h"

#include <atomic>
#include <cstdint>
#include <latch>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

constexpr char kModel[] = "VM_P95UTIL";

class BatchCombinerStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rc::trace::WorkloadConfig config;
    config.target_vm_count = 3000;
    config.num_subscriptions = 150;
    config.seed = 90210;
    trace_ = new rc::trace::Trace(rc::trace::WorkloadModel(config).Generate());
    // Two model versions over the same trace (identical feature data,
    // different forests) so a mid-storm republish flips predictions in a way
    // the snapshot-consistency check can observe.
    PipelineConfig config_a;
    config_a.rf.num_trees = 6;
    config_a.gbt.num_rounds = 6;
    trained_a_ = new TrainedModels(OfflinePipeline(config_a).Run(*trace_));
    PipelineConfig config_b;
    config_b.rf.num_trees = 12;
    config_b.gbt.num_rounds = 3;
    trained_b_ = new TrainedModels(OfflinePipeline(config_b).Run(*trace_));
  }

  static std::vector<ClientInputs> ServableInputs(size_t n) {
    static const rc::trace::VmSizeCatalog catalog;
    std::vector<ClientInputs> inputs;
    for (const auto& vm : trace_->vms()) {
      if (trained_a_->feature_data.contains(vm.subscription_id)) {
        inputs.push_back(InputsFromVm(vm, catalog));
        inputs.back().deploy_hour = static_cast<int>(inputs.size()) % 24;
      }
      if (inputs.size() == n) break;
    }
    EXPECT_EQ(inputs.size(), n);
    return inputs;
  }

  static std::vector<Prediction> References(const TrainedModels& trained,
                                            const std::vector<ClientInputs>& inputs) {
    rc::store::KvStore store;
    OfflinePipeline::Publish(trained, store);
    ClientConfig config;
    config.result_cache_capacity = 0;
    Client client(&store, config);
    EXPECT_TRUE(client.Initialize());
    std::vector<Prediction> refs;
    refs.reserve(inputs.size());
    for (const auto& in : inputs) refs.push_back(client.PredictSingle(kModel, in));
    return refs;
  }

  static const rc::trace::Trace* trace_;
  static const TrainedModels* trained_a_;
  static const TrainedModels* trained_b_;
};

const rc::trace::Trace* BatchCombinerStressTest::trace_ = nullptr;
const TrainedModels* BatchCombinerStressTest::trained_a_ = nullptr;
const TrainedModels* BatchCombinerStressTest::trained_b_ = nullptr;

TEST_F(BatchCombinerStressTest, StormDuringRepublishServesEachBatchFromOneSnapshot) {
  auto inputs = ServableInputs(48);
  std::vector<Prediction> ref_a = References(*trained_a_, inputs);
  std::vector<Prediction> ref_b = References(*trained_b_, inputs);
  // The two versions must actually disagree somewhere or the consistency
  // check below would be vacuous.
  bool versions_differ = false;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (ref_a[i].bucket != ref_b[i].bucket) versions_differ = true;
  }
  ASSERT_TRUE(versions_differ);

  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_a_, store);
  ClientConfig config;
  config.result_cache_capacity = 0;  // a cache hit would bypass the combiner
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 50;
  cc.max_batch = 8;
  // A lone 2µs prediction rarely overlaps another; force every caller to
  // park so the storm actually forms multi-row batches to check.
  cc.fast_path_when_idle = false;
  BatchCombiner combiner(&client, cc);

  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 1200;
  struct Observation {
    size_t input_idx;
    uint64_t batch_id;
    int bucket;
  };
  std::vector<std::vector<Observation>> per_thread(kThreads);
  std::latch start(kThreads + 2);  // workers + republisher + main
  std::atomic<int> running{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 11);
      per_thread[static_cast<size_t>(t)].reserve(kItersPerThread);
      start.arrive_and_wait();
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        size_t idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(inputs.size()) - 1));
        CombineResult r = combiner.Predict(kModel, inputs[idx]);
        ASSERT_TRUE(r.ok);
        ASSERT_TRUE(r.prediction.valid);
        per_thread[static_cast<size_t>(t)].push_back({idx, r.batch_id, r.prediction.bucket});
      }
      running.fetch_sub(1);
    });
  }
  std::thread republisher([&] {
    start.arrive_and_wait();
    bool publish_a = false;
    while (running.load() > 0) {
      OfflinePipeline::Publish(publish_a ? *trained_a_ : *trained_b_, store);
      publish_a = !publish_a;
      std::this_thread::yield();
    }
  });
  start.arrive_and_wait();
  for (auto& t : threads) t.join();
  republisher.join();
  combiner.Shutdown();

  // Every batch must be explainable by a single model version: the combiner
  // dispatches one PredictMany per batch, which pins one model snapshot, so
  // rows coalesced into the same batch_id can never mix versions.
  std::map<uint64_t, std::vector<Observation>> batches;
  for (const auto& obs_list : per_thread) {
    for (const auto& obs : obs_list) batches[obs.batch_id].push_back(obs);
  }
  size_t multi_row_batches = 0;
  for (const auto& [batch_id, rows] : batches) {
    if (rows.size() > 1) ++multi_row_batches;
    bool all_a = true, all_b = true;
    for (const auto& obs : rows) {
      if (obs.bucket != ref_a[obs.input_idx].bucket) all_a = false;
      if (obs.bucket != ref_b[obs.input_idx].bucket) all_b = false;
    }
    EXPECT_TRUE(all_a || all_b)
        << "batch " << batch_id << " (" << rows.size()
        << " rows) mixes model versions";
  }
  // With 6 threads funneling through one combiner some coalescing must have
  // happened, or the test exercised nothing.
  EXPECT_GT(multi_row_batches, 0u);
}

TEST_F(BatchCombinerStressTest, ParkFlushShutdownRace) {
  // TSan target: threads parking and flushing while Shutdown tears the open
  // batch down, repeatedly. Callers that lose the race observe ok=false and
  // fall back (as Client::PredictSingleImpl does) to the direct path.
  auto inputs = ServableInputs(8);
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_a_, store);
  ClientConfig config;
  config.result_cache_capacity = 0;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  constexpr int kCycles = 25;
  constexpr int kThreads = 8;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    BatchCombinerConfig cc;
    cc.max_wait_us = 5'000;  // long enough that shutdown usually finds parked callers
    cc.max_batch = kThreads + 1;  // never flushes full: window/handoff/shutdown only
    cc.fast_path_when_idle = (cycle % 2 == 0);
    BatchCombiner combiner(&client, cc);
    std::latch start(kThreads + 1);
    std::atomic<int> drained{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        start.arrive_and_wait();
        for (int iter = 0;; ++iter) {
          CombineResult r = combiner.Predict(kModel, inputs[static_cast<size_t>(t) % inputs.size()]);
          if (!r.ok) {
            // Shut down mid-park: the caller still gets its answer directly.
            Prediction p = client.PredictSingle(kModel, inputs[static_cast<size_t>(t) % inputs.size()]);
            EXPECT_TRUE(p.valid);
            drained.fetch_add(1);
            return;
          }
          EXPECT_TRUE(r.prediction.valid);
        }
      });
    }
    start.arrive_and_wait();
    // Let the storm park at least one caller, then yank the combiner away.
    while (combiner.pending() == 0) std::this_thread::yield();
    combiner.Shutdown();
    for (auto& t : threads) t.join();
    EXPECT_EQ(drained.load(), kThreads);
    EXPECT_EQ(combiner.pending(), 0u);
  }
}

TEST_F(BatchCombinerStressTest, RandomInterleavingsMatchUncoalescedBitExactly) {
  // Property: whatever batches the scheduler happens to form, every caller's
  // result is bit-identical to the combiner-off PredictSingle answer. Runs
  // on a VirtualClock; window expiries are driven by the main thread, so the
  // interleaving (not time) is the only source of randomness.
  auto inputs = ServableInputs(32);
  std::vector<Prediction> reference = References(*trained_a_, inputs);

  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_a_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 40;
  cc.max_batch = 4;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  Rng rng(20260807);
  constexpr int kRounds = 60;
  for (int round = 0; round < kRounds; ++round) {
    int wave = static_cast<int>(rng.UniformInt(1, 6));
    std::vector<size_t> picked;
    for (int i = 0; i < wave; ++i) {
      picked.push_back(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inputs.size()) - 1)));
    }
    std::vector<CombineResult> results(picked.size());
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    for (size_t i = 0; i < picked.size(); ++i) {
      threads.emplace_back([&, i] {
        results[i] = combiner.Predict(kModel, inputs[picked[i]]);
        done.fetch_add(1);
      });
    }
    // Drive the clock until the wave drains: any parked leader is released
    // by expiring its window. (Callers on the fast path or flushed by a full
    // batch never park and need no time at all.)
    while (done.load() < wave) {
      if (clock.waiters() > 0) {
        clock.AdvanceUs(cc.max_wait_us);
      } else {
        std::this_thread::yield();
      }
    }
    for (auto& t : threads) t.join();
    for (size_t i = 0; i < picked.size(); ++i) {
      ASSERT_TRUE(results[i].ok);
      const Prediction& got = results[i].prediction;
      const Prediction& want = reference[picked[i]];
      EXPECT_EQ(got.valid, want.valid);
      EXPECT_EQ(got.bucket, want.bucket);
      EXPECT_EQ(got.score, want.score) << "round " << round << " caller " << i
                                       << " (batch of " << results[i].batch_size << ")";
    }
  }
  combiner.Shutdown();
}

}  // namespace
}  // namespace rc::core
