// Deterministic BatchCombiner suite. Every test drives a VirtualClock, so
// window expiries and the backoff-driven choreography are exact: there is no
// real sleeping anywhere in this file (tools/check_all.sh lints for it), and
// thread coordination uses VirtualClock::AwaitWaiters / slept_us milestones
// plus pending() spins — all of which observe provable states, never timing.
#include "src/core/batch_combiner.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/faults.h"
#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

constexpr char kModel[] = "VM_P95UTIL";

class BatchCombinerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rc::trace::WorkloadConfig config;
    config.target_vm_count = 3000;
    config.num_subscriptions = 150;
    config.seed = 4242;
    trace_ = new rc::trace::Trace(rc::trace::WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 6;
    pipeline_config.gbt.num_rounds = 6;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  void SetUp() override { rc::faults::Registry::Global().DisarmAll(); }
  void TearDown() override { rc::faults::Registry::Global().DisarmAll(); }

  // Distinct inputs whose feature data is present in the trained set.
  static std::vector<ClientInputs> ServableInputs(size_t n) {
    static const rc::trace::VmSizeCatalog catalog;
    std::vector<ClientInputs> inputs;
    for (const auto& vm : trace_->vms()) {
      if (trained_->feature_data.contains(vm.subscription_id)) {
        inputs.push_back(InputsFromVm(vm, catalog));
        // Vary deploy_hour so every input has a distinct cache key even when
        // VMs collide on the other fields.
        inputs.back().deploy_hour = static_cast<int>(inputs.size()) % 24;
      }
      if (inputs.size() == n) break;
    }
    EXPECT_EQ(inputs.size(), n);
    return inputs;
  }

  // Spin (real time, no virtual time) until the combiner holds `n` parked
  // requests. pending() counts parked + dispatching slots, so reaching n
  // proves every caller has joined its batch.
  static void AwaitPending(const BatchCombiner& combiner, size_t n) {
    while (combiner.pending() < n) std::this_thread::yield();
  }

  static const rc::trace::Trace* trace_;
  static const TrainedModels* trained_;
};

const rc::trace::Trace* BatchCombinerTest::trace_ = nullptr;
const TrainedModels* BatchCombinerTest::trained_ = nullptr;

TEST_F(BatchCombinerTest, WindowExpiryFlushesAccumulatedBatch) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;  // keep every call observable
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 40;
  cc.max_batch = 64;
  cc.fast_path_when_idle = false;  // force even the first caller to park
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  auto inputs = ServableInputs(3);
  std::vector<Prediction> reference;
  for (const auto& in : inputs) reference.push_back(client.PredictSingle(kModel, in));

  std::vector<CombineResult> results(3);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 3; ++i) {
    threads.emplace_back(
        [&, i] { results[i] = combiner.Predict(kModel, inputs[i]); });
  }
  AwaitPending(combiner, 3);  // all three joined the batch...
  clock.AwaitWaiters(1);      // ...and the leader is parked on the window
  clock.AdvanceUs(39);
  EXPECT_EQ(combiner.pending(), 3u);  // window is 40: one µs short must hold
  clock.AdvanceUs(1);
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].flush, CombineFlush::kWindow) << i;
    EXPECT_EQ(results[i].batch_size, 3u) << i;
    EXPECT_EQ(results[i].batch_id, results[0].batch_id) << i;
    // Per-caller routing: each caller gets exactly its own prediction.
    EXPECT_EQ(results[i].prediction.bucket, reference[i].bucket) << i;
    EXPECT_DOUBLE_EQ(results[i].prediction.score, reference[i].score) << i;
  }
  EXPECT_EQ(combiner.pending(), 0u);
  EXPECT_EQ(clock.NowUs(), 40);
}

TEST_F(BatchCombinerTest, FlushOnFullDispatchesWithoutAnyTimePassing) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 1'000'000;  // the window must never be the flush reason
  cc.max_batch = 4;
  cc.fast_path_when_idle = false;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  auto inputs = ServableInputs(4);
  std::vector<CombineResult> results(4);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&, i] { results[i] = combiner.Predict(kModel, inputs[i]); });
  }
  // No clock advance at all: the 4th arrival must flush the full batch.
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].flush, CombineFlush::kFull) << i;
    EXPECT_EQ(results[i].batch_size, 4u) << i;
    EXPECT_EQ(results[i].batch_id, results[0].batch_id) << i;
    EXPECT_TRUE(results[i].prediction.valid) << i;
  }
  EXPECT_EQ(clock.NowUs(), 0);  // flush-on-full needed zero virtual time
}

TEST_F(BatchCombinerTest, LoneCallerTakesFastPathWithoutParking) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 40;
  cc.fast_path_when_idle = true;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  auto inputs = ServableInputs(1);
  Prediction reference = client.PredictSingle(kModel, inputs[0]);
  CombineResult r = combiner.Predict(kModel, inputs[0]);

  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.flush, CombineFlush::kFastPath);
  EXPECT_EQ(r.batch_size, 1u);
  EXPECT_EQ(r.prediction.bucket, reference.bucket);
  EXPECT_DOUBLE_EQ(r.prediction.score, reference.score);
  // The call never parked and never consumed virtual time: a lone caller
  // pays nothing for the combiner being enabled.
  EXPECT_EQ(clock.NowUs(), 0);
  EXPECT_EQ(combiner.pending(), 0u);
}

TEST_F(BatchCombinerTest, DuplicateKeysRouteToEveryCaller) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 1'000'000;
  cc.max_batch = 3;
  cc.fast_path_when_idle = false;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  // Two callers share one input (and thus one cache key); PredictMany
  // deduplicates them into a single scored row that must fan back out.
  auto inputs = ServableInputs(2);
  const ClientInputs& dup = inputs[0];
  const ClientInputs& other = inputs[1];
  Prediction dup_ref = client.PredictSingle(kModel, dup);
  Prediction other_ref = client.PredictSingle(kModel, other);

  std::vector<CombineResult> results(3);
  std::vector<std::thread> threads;
  threads.emplace_back([&] { results[0] = combiner.Predict(kModel, dup); });
  threads.emplace_back([&] { results[1] = combiner.Predict(kModel, other); });
  threads.emplace_back([&] { results[2] = combiner.Predict(kModel, dup); });
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].flush, CombineFlush::kFull) << i;
    EXPECT_EQ(results[i].batch_size, 3u) << i;
  }
  EXPECT_EQ(results[0].prediction.bucket, dup_ref.bucket);
  EXPECT_DOUBLE_EQ(results[0].prediction.score, dup_ref.score);
  EXPECT_EQ(results[2].prediction.bucket, dup_ref.bucket);
  EXPECT_DOUBLE_EQ(results[2].prediction.score, dup_ref.score);
  EXPECT_EQ(results[1].prediction.bucket, other_ref.bucket);
  EXPECT_DOUBLE_EQ(results[1].prediction.score, other_ref.score);
}

TEST_F(BatchCombinerTest, HandoffFlushesBatchFormedDuringDispatch) {
  // Choreography: a full batch of two feature-less inputs dispatches and
  // blocks inside the store-retry backoff (faults + VirtualClock sleeps);
  // a third caller parks meanwhile; when the dispatch completes it must
  // flush that open batch immediately (kHandoff) with no window wait.
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.mode = CacheMode::kPull;  // misses consult the store (and its faults)
  config.result_cache_capacity = 0;
  config.store_max_retries = 1;
  config.store_retry_backoff_us = 500;
  config.breaker_failure_threshold = 0;  // keep every read's backoff schedule
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  auto inputs = ServableInputs(1);
  // Pre-warm the snapshot (pull mode) so the handed-off row executes without
  // touching the store, and PredictMiss skips the model fetch for the
  // feature-less rows (model already ready).
  ASSERT_TRUE(client.PredictSingle(kModel, inputs[0]).valid);

  BatchCombinerConfig cc;
  cc.max_wait_us = 1'000'000;  // flushes below must come from full + handoff
  cc.max_batch = 2;
  cc.fast_path_when_idle = false;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  rc::faults::FaultSpec err;
  err.kind = rc::faults::FaultKind::kError;
  rc::faults::ScopedFault storm("client/store_read", err);

  ClientInputs missing_a = inputs[0];
  missing_a.subscription_id = 9'000'000'001;  // no feature data anywhere
  ClientInputs missing_b = inputs[0];
  missing_b.subscription_id = 9'000'000'002;

  std::vector<CombineResult> results(3);
  std::thread ta([&] { results[0] = combiner.Predict(kModel, missing_a); });
  AwaitPending(combiner, 1);
  clock.AwaitWaiters(1);  // leader parked on the (never-expiring) window
  // The filler dispatches the now-full batch on its own thread and blocks in
  // the feature fetch: one 500µs backoff nap per row.
  std::thread tb([&] { results[1] = combiner.Predict(kModel, missing_b); });
  while (clock.slept_us() < 500) std::this_thread::yield();  // row A napping
  // Dispatch is provably in flight: park the third caller behind it.
  std::thread tc([&] { results[2] = combiner.Predict(kModel, inputs[0]); });
  AwaitPending(combiner, 3);
  clock.AdvanceUs(500);  // release row A's nap; row B's read then naps
  while (clock.slept_us() < 1000) std::this_thread::yield();
  clock.AdvanceUs(500);  // release row B; the dispatch completes
  // No further advance: the handoff must flush the third caller's batch.
  ta.join();
  tb.join();
  tc.join();

  EXPECT_EQ(results[0].flush, CombineFlush::kFull);
  EXPECT_EQ(results[1].flush, CombineFlush::kFull);
  EXPECT_EQ(results[0].batch_size, 2u);
  EXPECT_FALSE(results[0].prediction.valid);  // feature-less rows answer None
  EXPECT_FALSE(results[1].prediction.valid);
  ASSERT_TRUE(results[2].ok);
  EXPECT_EQ(results[2].flush, CombineFlush::kHandoff);
  EXPECT_EQ(results[2].batch_size, 1u);
  EXPECT_TRUE(results[2].prediction.valid);
  EXPECT_EQ(clock.NowUs(), 1000);  // exactly the two released backoff naps
}

TEST_F(BatchCombinerTest, DegradedStateRidesAlongWithResults) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.fast_path_when_idle = true;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  auto inputs = ServableInputs(1);
  EXPECT_EQ(combiner.Predict(kModel, inputs[0]).degraded, DegradedReason::kNone);

  // An outage marks the client degraded; predictions still flow from the
  // last-good snapshot and the combiner surfaces the reason per result.
  store.SetAvailable(false);
  client.ForceReloadCache();
  CombineResult r = combiner.Predict(kModel, inputs[0]);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.prediction.valid);
  EXPECT_EQ(r.degraded, DegradedReason::kStoreOutage);
}

TEST_F(BatchCombinerTest, ShutdownDrainsParkedCallersWithError) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.result_cache_capacity = 0;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 1'000'000;
  cc.fast_path_when_idle = false;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  auto inputs = ServableInputs(2);
  std::vector<CombineResult> results(2);
  std::thread ta([&] { results[0] = combiner.Predict(kModel, inputs[0]); });
  std::thread tb([&] { results[1] = combiner.Predict(kModel, inputs[1]); });
  AwaitPending(combiner, 2);
  clock.AwaitWaiters(1);
  combiner.Shutdown();
  ta.join();
  tb.join();

  for (size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(results[i].ok) << i;
    EXPECT_EQ(results[i].flush, CombineFlush::kShutdown) << i;
  }
  EXPECT_EQ(combiner.pending(), 0u);
  // Post-shutdown calls fail fast instead of parking forever.
  EXPECT_FALSE(combiner.Predict(kModel, inputs[0]).ok);
  combiner.Shutdown();  // idempotent
}

TEST_F(BatchCombinerTest, ClientOwnedCombinerCoalescesPredictSingle) {
  // End-to-end through Client::PredictSingle: misses route into the client's
  // own combiner; cache hits (second round) bypass it entirely.
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.clock = &clock;
  config.combiner.enabled = true;
  config.combiner.max_batch = 3;
  config.combiner.max_wait_us = 1'000'000;
  config.combiner.fast_path_when_idle = false;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());
  ASSERT_NE(client.combiner(), nullptr);

  auto inputs = ServableInputs(3);
  std::vector<Prediction> first(3);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] { first[i] = client.PredictSingle(kModel, inputs[i]); });
  }
  for (auto& t : threads) t.join();  // third caller flushed the full batch
  for (const auto& p : first) EXPECT_TRUE(p.valid);
  // Each call probes once in PredictSingle and once more inside the batched
  // PredictMany dispatch: 6 misses for 3 requests, 0 hits.
  EXPECT_EQ(client.stats().result_misses, 6u);
  EXPECT_EQ(client.stats().result_hits, 0u);

  // Round two: all hits, combiner untouched (pending stays empty, and the
  // calls return without any clock interaction).
  for (size_t i = 0; i < 3; ++i) {
    Prediction p = client.PredictSingle(kModel, inputs[i]);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.bucket, first[i].bucket);
  }
  EXPECT_EQ(client.stats().result_hits, 3u);
  EXPECT_EQ(clock.NowUs(), 0);
}

TEST_F(BatchCombinerTest, ProbeResultCacheAnswersHitsWithoutParking) {
  // A server-owned combiner (probe_result_cache) fronts PredictSingle: the
  // first call executes, the second is a cache hit that must never park even
  // with the fast path disabled.
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  rc::common::VirtualClock clock;
  ClientConfig config;
  config.clock = &clock;
  Client client(&store, config);
  ASSERT_TRUE(client.Initialize());

  BatchCombinerConfig cc;
  cc.max_wait_us = 40;
  cc.fast_path_when_idle = true;
  cc.probe_result_cache = true;
  cc.clock = &clock;
  BatchCombiner combiner(&client, cc);

  auto inputs = ServableInputs(1);
  CombineResult miss = combiner.Predict(kModel, inputs[0]);
  ASSERT_TRUE(miss.ok);
  EXPECT_EQ(miss.flush, CombineFlush::kFastPath);
  CombineResult hit = combiner.Predict(kModel, inputs[0]);
  ASSERT_TRUE(hit.ok);
  EXPECT_EQ(hit.flush, CombineFlush::kCacheHit);
  EXPECT_EQ(hit.prediction.bucket, miss.prediction.bucket);
  EXPECT_EQ(clock.NowUs(), 0);
  EXPECT_EQ(client.stats().result_hits, 1u);
  EXPECT_EQ(client.stats().result_misses, 1u);
}

}  // namespace
}  // namespace rc::core
