#include "src/core/feature_data.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rc::core {
namespace {

using rc::trace::VmRecord;
using rc::trace::WorkloadClass;

TEST(SubscriptionFeaturesTest, SerializationRoundTrip) {
  SubscriptionFeatures f;
  f.subscription_id = 42;
  f.vm_count = 17;
  f.deployment_count = 5;
  f.bucket_frac[0][1] = 0.25;
  f.bucket_frac[5][0] = 0.75;
  f.mean_avg_cpu = 0.31;
  f.mean_log_lifetime = 9.5;
  f.mean_deploy_vms = 3.5;

  auto bytes = f.Serialize();
  SubscriptionFeatures g = SubscriptionFeatures::Deserialize(bytes);
  EXPECT_EQ(g.subscription_id, 42u);
  EXPECT_EQ(g.vm_count, 17);
  EXPECT_EQ(g.deployment_count, 5);
  EXPECT_NEAR(g.bucket_frac[0][1], 0.25, 1e-6);
  EXPECT_NEAR(g.bucket_frac[5][0], 0.75, 1e-6);
  EXPECT_NEAR(g.mean_avg_cpu, 0.31, 1e-6);
  EXPECT_NEAR(g.mean_log_lifetime, 9.5, 1e-6);
  EXPECT_NEAR(g.mean_deploy_vms, 3.5, 1e-6);
}

TEST(SubscriptionFeaturesTest, RecordSizeInPaperBallpark) {
  // The paper reports ~850 bytes of feature data per subscription; our
  // compact record must be the same order of magnitude (and stable).
  SubscriptionFeatures f;
  size_t size = f.Serialize().size();
  EXPECT_GT(size, 80u);
  EXPECT_LT(size, 900u);
}

TEST(FeatureDataBuilderTest, EmptySnapshot) {
  FeatureDataBuilder builder;
  EXPECT_FALSE(builder.Has(7));
  SubscriptionFeatures f = builder.Snapshot(7);
  EXPECT_EQ(f.subscription_id, 7u);
  EXPECT_EQ(f.vm_count, 0);
}

TEST(FeatureDataBuilderTest, UtilizationFractions) {
  FeatureDataBuilder builder;
  builder.ObserveUtilization(1, 0.1, 0.3, 2);   // avg b0, p95 b1
  builder.ObserveUtilization(1, 0.1, 0.9, 2);   // avg b0, p95 b3
  builder.ObserveUtilization(1, 0.6, 0.95, 4);  // avg b2, p95 b3
  SubscriptionFeatures f = builder.Snapshot(1);
  EXPECT_EQ(f.vm_count, 3);
  auto avg = f.bucket_frac[static_cast<size_t>(Metric::kAvgCpu)];
  EXPECT_NEAR(avg[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(avg[2], 1.0 / 3.0, 1e-9);
  auto p95 = f.bucket_frac[static_cast<size_t>(Metric::kP95Cpu)];
  EXPECT_NEAR(p95[3], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.mean_avg_cpu, (0.1 + 0.1 + 0.6) / 3.0, 1e-9);
  EXPECT_NEAR(f.mean_cores, (2 + 2 + 4) / 3.0, 1e-9);
}

TEST(FeatureDataBuilderTest, LifetimeIndependentDenominator) {
  FeatureDataBuilder builder;
  // Two utilization observations but only one lifetime observation (the
  // second VM is still running).
  builder.ObserveUtilization(1, 0.1, 0.2, 1);
  builder.ObserveUtilization(1, 0.1, 0.2, 1);
  builder.ObserveLifetime(1, 30 * kMinute);
  SubscriptionFeatures f = builder.Snapshot(1);
  auto life = f.bucket_frac[static_cast<size_t>(Metric::kLifetime)];
  EXPECT_NEAR(life[1], 1.0, 1e-9);  // denominator is lifetime_observed = 1
  EXPECT_NEAR(f.mean_log_lifetime, std::log(30.0 * kMinute), 1e-9);
}

TEST(FeatureDataBuilderTest, ClassUnknownIgnored) {
  FeatureDataBuilder builder;
  builder.ObserveClass(1, WorkloadClass::kUnknown);
  EXPECT_FALSE(builder.Has(1));
  builder.ObserveClass(1, WorkloadClass::kInteractive);
  builder.ObserveClass(1, WorkloadClass::kDelayInsensitive);
  builder.ObserveClass(1, WorkloadClass::kDelayInsensitive);
  auto cls = builder.Snapshot(1).bucket_frac[static_cast<size_t>(Metric::kClass)];
  EXPECT_NEAR(cls[kClassInteractive], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(cls[kClassDelayInsensitive], 2.0 / 3.0, 1e-9);
}

TEST(FeatureDataBuilderTest, DeploymentObservations) {
  FeatureDataBuilder builder;
  builder.ObserveDeployment(1, 1, 2);      // vms b0, cores b1
  builder.ObserveDeployment(1, 50, 200);   // vms b2, cores b3
  SubscriptionFeatures f = builder.Snapshot(1);
  EXPECT_EQ(f.deployment_count, 2);
  auto dv = f.bucket_frac[static_cast<size_t>(Metric::kDeployVms)];
  EXPECT_NEAR(dv[0], 0.5, 1e-9);
  EXPECT_NEAR(dv[2], 0.5, 1e-9);
  auto dc = f.bucket_frac[static_cast<size_t>(Metric::kDeployCores)];
  EXPECT_NEAR(dc[1], 0.5, 1e-9);
  EXPECT_NEAR(dc[3], 0.5, 1e-9);
  EXPECT_NEAR(f.mean_deploy_vms, 25.5, 1e-9);
}

TEST(FeatureDataBuilderTest, SubscriptionsIsolated) {
  FeatureDataBuilder builder;
  builder.ObserveUtilization(1, 0.9, 0.95, 1);
  builder.ObserveUtilization(2, 0.1, 0.15, 1);
  EXPECT_NEAR(builder.Snapshot(1).mean_avg_cpu, 0.9, 1e-9);
  EXPECT_NEAR(builder.Snapshot(2).mean_avg_cpu, 0.1, 1e-9);
  EXPECT_EQ(builder.data().size(), 2u);
}

TEST(FeatureDataBuilderTest, ObserveVmComposition) {
  VmRecord vm;
  vm.subscription_id = 3;
  vm.avg_cpu = 0.4;
  vm.p95_max_cpu = 0.8;
  vm.cores = 4;
  vm.created = 0;
  vm.deleted = 2 * kHour;
  FeatureDataBuilder builder;
  builder.ObserveVm(vm, WorkloadClass::kDelayInsensitive);
  SubscriptionFeatures f = builder.Snapshot(3);
  EXPECT_EQ(f.vm_count, 1);
  EXPECT_NEAR(f.bucket_frac[static_cast<size_t>(Metric::kAvgCpu)][1], 1.0, 1e-9);
  EXPECT_NEAR(f.bucket_frac[static_cast<size_t>(Metric::kP95Cpu)][3], 1.0, 1e-9);
  EXPECT_NEAR(f.bucket_frac[static_cast<size_t>(Metric::kLifetime)][2], 1.0, 1e-9);
  EXPECT_NEAR(f.bucket_frac[static_cast<size_t>(Metric::kClass)][0], 1.0, 1e-9);
}

}  // namespace
}  // namespace rc::core
