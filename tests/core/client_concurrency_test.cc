// The paper's client is "a single, general, and thread-safe" library shared
// by all callers in a process; these tests hammer one client from multiple
// threads while the store pushes updates.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

class ClientConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rc::trace::WorkloadConfig config;
    config.target_vm_count = 4000;
    config.num_subscriptions = 200;
    config.seed = 777;
    trace_ = new rc::trace::Trace(rc::trace::WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 6;
    pipeline_config.gbt.num_rounds = 6;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  static const rc::trace::Trace* trace_;
  static const TrainedModels* trained_;
};

const rc::trace::Trace* ClientConcurrencyTest::trace_ = nullptr;
const TrainedModels* ClientConcurrencyTest::trained_ = nullptr;

TEST_F(ClientConcurrencyTest, ParallelPredictionsConsistent) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  Client client(&store, ClientConfig{});
  ASSERT_TRUE(client.Initialize());

  static const rc::trace::VmSizeCatalog catalog;
  std::vector<ClientInputs> inputs;
  for (const auto& vm : trace_->vms()) {
    if (trained_->feature_data.contains(vm.subscription_id)) {
      inputs.push_back(InputsFromVm(vm, catalog));
    }
    if (inputs.size() == 64) break;
  }
  ASSERT_FALSE(inputs.empty());

  // Reference results, single-threaded.
  std::vector<Prediction> expected;
  for (const auto& in : inputs) expected.push_back(client.PredictSingle("VM_P95UTIL", in));

  std::atomic<int> mismatches{0};
  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    for (int iter = 0; iter < 2000; ++iter) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inputs.size()) - 1));
      Prediction p = client.PredictSingle("VM_P95UTIL", inputs[idx]);
      if (!p.valid || p.bucket != expected[idx].bucket) mismatches.fetch_add(1);
    }
  };
  std::thread t1(worker, 1), t2(worker, 2), t3(worker, 3);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ClientConcurrencyTest, PredictionsDuringPushes) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  Client client(&store, ClientConfig{});
  ASSERT_TRUE(client.Initialize());

  static const rc::trace::VmSizeCatalog catalog;
  ClientInputs inputs;
  for (const auto& vm : trace_->vms()) {
    if (trained_->feature_data.contains(vm.subscription_id)) {
      inputs = InputsFromVm(vm, catalog);
      break;
    }
  }

  std::atomic<bool> stop{false};
  std::thread pusher([&] {
    // Republishing feature data exercises the push listener + result-cache
    // invalidation path concurrently with predictions.
    for (int i = 0; i < 300; ++i) {
      store.Put(FeatureKey(inputs.subscription_id),
                trained_->feature_data.at(inputs.subscription_id).Serialize());
    }
    stop = true;
  });
  int64_t valid = 0, total = 0;
  while (!stop) {
    Prediction p = client.PredictSingle("VM_P95UTIL", inputs);
    ++total;
    if (p.valid) ++valid;
  }
  pusher.join();
  EXPECT_EQ(valid, total);  // feature data never disappears mid-push
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace rc::core
