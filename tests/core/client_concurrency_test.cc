// The paper's client is "a single, general, and thread-safe" library shared
// by all callers in a process; these tests hammer one client from multiple
// threads while the store pushes updates.
//
// Timing audit (DESIGN.md "Cross-request batching", testing notes): every
// test here coordinates with latches, atomics, and bounded iteration counts —
// no real sleeps, no virtual clock needed. Overlap is forced structurally
// (e.g. kMinPredictions keeps the predictor running past the pusher) rather
// than by racing wall-clock delays.
#include <atomic>
#include <latch>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/trace/workload_model.h"

namespace rc::core {
namespace {

class ClientConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rc::trace::WorkloadConfig config;
    config.target_vm_count = 4000;
    config.num_subscriptions = 200;
    config.seed = 777;
    trace_ = new rc::trace::Trace(rc::trace::WorkloadModel(config).Generate());
    PipelineConfig pipeline_config;
    pipeline_config.rf.num_trees = 6;
    pipeline_config.gbt.num_rounds = 6;
    OfflinePipeline pipeline(pipeline_config);
    trained_ = new TrainedModels(pipeline.Run(*trace_));
  }

  static const rc::trace::Trace* trace_;
  static const TrainedModels* trained_;
};

const rc::trace::Trace* ClientConcurrencyTest::trace_ = nullptr;
const TrainedModels* ClientConcurrencyTest::trained_ = nullptr;

TEST_F(ClientConcurrencyTest, ParallelPredictionsConsistent) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  Client client(&store, ClientConfig{});
  ASSERT_TRUE(client.Initialize());

  static const rc::trace::VmSizeCatalog catalog;
  std::vector<ClientInputs> inputs;
  for (const auto& vm : trace_->vms()) {
    if (trained_->feature_data.contains(vm.subscription_id)) {
      inputs.push_back(InputsFromVm(vm, catalog));
    }
    if (inputs.size() == 64) break;
  }
  ASSERT_FALSE(inputs.empty());

  // Reference results, single-threaded.
  std::vector<Prediction> expected;
  for (const auto& in : inputs) expected.push_back(client.PredictSingle("VM_P95UTIL", in));

  std::atomic<int> mismatches{0};
  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    for (int iter = 0; iter < 2000; ++iter) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inputs.size()) - 1));
      Prediction p = client.PredictSingle("VM_P95UTIL", inputs[idx]);
      if (!p.valid || p.bucket != expected[idx].bucket) mismatches.fetch_add(1);
    }
  };
  std::thread t1(worker, 1), t2(worker, 2), t3(worker, 3);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ClientConcurrencyTest, PredictionsDuringPushes) {
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  Client client(&store, ClientConfig{});
  ASSERT_TRUE(client.Initialize());

  static const rc::trace::VmSizeCatalog catalog;
  ClientInputs inputs;
  for (const auto& vm : trace_->vms()) {
    if (trained_->feature_data.contains(vm.subscription_id)) {
      inputs = InputsFromVm(vm, catalog);
      break;
    }
  }

  // Start pusher and predictor together, and keep predicting for a minimum
  // iteration count so the loops deterministically overlap — the pusher
  // finishing all its Puts before the predictor's first iteration must not
  // produce total == 0.
  std::latch start(2);
  std::atomic<bool> stop{false};
  std::thread pusher([&] {
    start.arrive_and_wait();
    // Republishing feature data exercises the push listener + result-cache
    // invalidation path concurrently with predictions.
    for (int i = 0; i < 300; ++i) {
      store.Put(FeatureKey(inputs.subscription_id),
                trained_->feature_data.at(inputs.subscription_id).Serialize());
    }
    stop = true;
  });
  constexpr int64_t kMinPredictions = 2000;
  int64_t valid = 0, total = 0;
  start.arrive_and_wait();
  while (!stop.load() || total < kMinPredictions) {
    Prediction p = client.PredictSingle("VM_P95UTIL", inputs);
    ++total;
    if (p.valid) ++valid;
  }
  pusher.join();
  EXPECT_EQ(valid, total);  // feature data never disappears mid-push
  EXPECT_GE(total, kMinPredictions);
}

TEST_F(ClientConcurrencyTest, ClientDestructionDuringPushes) {
  // Regression for a use-after-free: KvStore::Put copies listeners out of
  // the store lock before invoking them, so an in-flight invocation could
  // outlive Unsubscribe and fire into a destroyed Client. Unsubscribe now
  // drains in-flight invocations, making construct/predict/destroy safe
  // while another thread spams Put.
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);

  static const rc::trace::VmSizeCatalog catalog;
  ClientInputs inputs;
  for (const auto& vm : trace_->vms()) {
    if (trained_->feature_data.contains(vm.subscription_id)) {
      inputs = InputsFromVm(vm, catalog);
      break;
    }
  }
  const std::string feature_key = FeatureKey(inputs.subscription_id);
  const std::vector<uint8_t> feature_blob =
      trained_->feature_data.at(inputs.subscription_id).Serialize();

  std::latch start(2);
  std::atomic<bool> stop{false};
  std::thread pusher([&] {
    start.arrive_and_wait();
    while (!stop.load()) {
      std::vector<uint8_t> copy = feature_blob;
      store.Put(feature_key, std::move(copy));
    }
  });
  start.arrive_and_wait();
  for (int i = 0; i < 50; ++i) {
    Client client(&store, ClientConfig{});
    ASSERT_TRUE(client.Initialize());
    Prediction p = client.PredictSingle("VM_P95UTIL", inputs);
    EXPECT_TRUE(p.valid);
  }  // ~Client races with listener dispatch on every iteration
  stop = true;
  pusher.join();
}

TEST_F(ClientConcurrencyTest, ManyReadersWithPusherAndReloader) {
  // Full-system hammer: four predictor threads on the lock-free snapshot
  // path, one pusher republishing feature data (state swap + result-cache
  // invalidation), and foreground ForceReloadCache calls (full state
  // rebuild). Every prediction must stay valid throughout.
  rc::store::KvStore store;
  OfflinePipeline::Publish(*trained_, store);
  Client client(&store, ClientConfig{});
  ASSERT_TRUE(client.Initialize());

  static const rc::trace::VmSizeCatalog catalog;
  std::vector<ClientInputs> inputs;
  for (const auto& vm : trace_->vms()) {
    if (trained_->feature_data.contains(vm.subscription_id)) {
      inputs.push_back(InputsFromVm(vm, catalog));
    }
    if (inputs.size() == 32) break;
  }
  ASSERT_FALSE(inputs.empty());

  constexpr int kReaders = 4;
  std::latch start(kReaders + 2);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> invalid{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      start.arrive_and_wait();
      for (int iter = 0; iter < 3000; ++iter) {
        size_t idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(inputs.size()) - 1));
        Prediction p = client.PredictSingle("VM_P95UTIL", inputs[idx]);
        if (!p.valid) invalid.fetch_add(1);
      }
    });
  }
  std::thread pusher([&] {
    start.arrive_and_wait();
    while (!stop.load()) {
      store.Put(FeatureKey(inputs[0].subscription_id),
                trained_->feature_data.at(inputs[0].subscription_id).Serialize());
    }
  });
  start.arrive_and_wait();
  for (int i = 0; i < 5; ++i) client.ForceReloadCache();
  for (auto& t : readers) t.join();
  stop = true;
  pusher.join();
  EXPECT_EQ(invalid.load(), 0);
}

}  // namespace
}  // namespace rc::core
