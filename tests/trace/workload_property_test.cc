// Seed-parameterized invariants of the workload model: structural
// well-formedness must hold for every seed and scale, not just the
// calibration fixture.
#include <gtest/gtest.h>

#include "src/common/buckets.h"
#include "src/trace/utilization.h"
#include "src/trace/workload_model.h"

namespace rc::trace {
namespace {

class WorkloadProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  WorkloadProperty() {
    WorkloadConfig config;
    config.target_vm_count = 5000;
    config.num_subscriptions = 250;
    config.duration = 45 * kDay;
    config.seed = GetParam();
    trace_ = WorkloadModel(config).Generate();
  }
  Trace trace_;
};

TEST_P(WorkloadProperty, StructuralInvariants) {
  ASSERT_GT(trace_.vm_count(), 4000u);
  std::set<uint64_t> vm_ids;
  for (const auto& vm : trace_.vms()) {
    ASSERT_TRUE(vm_ids.insert(vm.vm_id).second) << "duplicate vm id";
    ASSERT_GE(vm.created, 0);
    ASSERT_GT(vm.deleted, vm.created);
    ASSERT_GE(vm.lifetime(), 20);
    ASSERT_GT(vm.cores, 0);
    ASSERT_LE(vm.cores, 16);
    ASSERT_GE(vm.memory_gb, 0.75);
    ASSERT_LE(vm.memory_gb, 112.0);
    ASSERT_GE(vm.avg_cpu, 0.0);
    ASSERT_LE(vm.p95_max_cpu, 1.0);
    ASSERT_LE(vm.avg_cpu, vm.p95_max_cpu + 1e-9);
    ASSERT_FALSE(vm.role_name.empty());
    ASSERT_FALSE(vm.service_name.empty());
    // Third-party VMs never carry named first-party services or non-prod tags.
    if (vm.party == Party::kThird) {
      ASSERT_EQ(vm.service_name, "unknown");
      ASSERT_EQ(vm.tag, DeploymentTag::kProduction);
    }
    // Class labels consistent with lifetime and diurnal amplitude.
    if (vm.lifetime() < 3 * kDay) {
      ASSERT_EQ(vm.true_class, WorkloadClass::kUnknown);
    } else {
      ASSERT_NE(vm.true_class, WorkloadClass::kUnknown);
    }
  }
}

TEST_P(WorkloadProperty, DeploymentsGroupConsistently) {
  // VMs sharing a deployment id share subscription, region, and party, and
  // arrive within the same burst window.
  std::map<uint64_t, const VmRecord*> first_of;
  for (const auto& vm : trace_.vms()) {
    auto [it, inserted] = first_of.try_emplace(vm.deployment_id, &vm);
    if (inserted) continue;
    const VmRecord* first = it->second;
    ASSERT_EQ(vm.subscription_id, first->subscription_id);
    ASSERT_EQ(vm.region, first->region);
    ASSERT_EQ(vm.party, first->party);
    ASSERT_LE(std::abs(vm.created - first->created), 10 * kMinute);
  }
}

TEST_P(WorkloadProperty, TelemetryMatchesStoredSummaries) {
  for (size_t i = 0; i < trace_.vm_count(); i += 501) {
    const VmRecord& vm = trace_.vms()[i];
    auto summary = UtilizationModel::Summarize(vm);
    ASSERT_NEAR(summary.avg_cpu, vm.avg_cpu, 1e-9);
    ASSERT_NEAR(summary.p95_max_cpu, vm.p95_max_cpu, 1e-9);
  }
}

TEST_P(WorkloadProperty, BucketsCoverAllMetrics) {
  // Every bucket function maps every VM into range.
  for (const auto& vm : trace_.vms()) {
    ASSERT_GE(UtilizationBucket(vm.avg_cpu), 0);
    ASSERT_LT(UtilizationBucket(vm.avg_cpu), 4);
    ASSERT_GE(LifetimeBucket(vm.lifetime()), 0);
    ASSERT_LT(LifetimeBucket(vm.lifetime()), 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace rc::trace
