#include "src/trace/vm_size_catalog.h"

#include <gtest/gtest.h>

namespace rc::trace {
namespace {

TEST(VmSizeCatalogTest, CatalogWellFormed) {
  VmSizeCatalog catalog;
  EXPECT_EQ(catalog.size_count(), 14);
  for (const auto& spec : catalog.sizes()) {
    EXPECT_GT(spec.cores, 0);
    EXPECT_GT(spec.memory_gb, 0.0);
    EXPECT_FALSE(spec.name.empty());
  }
}

TEST(VmSizeCatalogTest, IndexOf) {
  VmSizeCatalog catalog;
  int a1 = catalog.IndexOf("A1");
  ASSERT_GE(a1, 0);
  EXPECT_EQ(catalog.at(a1).cores, 1);
  EXPECT_DOUBLE_EQ(catalog.at(a1).memory_gb, 1.75);
  EXPECT_EQ(catalog.IndexOf("Z99"), -1);
}

TEST(VmSizeCatalogTest, MixReproducesFig2And3) {
  VmSizeCatalog catalog;
  Rng rng(5);
  for (Party party : {Party::kFirst, Party::kThird}) {
    double small_cores = 0, small_mem = 0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) {
      const VmSizeSpec& spec = catalog.at(catalog.SampleIndex(party, rng));
      if (spec.cores <= 2) ++small_cores;
      if (spec.memory_gb < 4.0) ++small_mem;
    }
    // Fig. 2: ~80% of VMs have 1-2 cores; Fig. 3: ~70% under 4 GB.
    EXPECT_NEAR(small_cores / kN, 0.8, 0.08);
    EXPECT_NEAR(small_mem / kN, 0.72, 0.08);
  }
}

TEST(VmSizeCatalogTest, ThirdPartyFavorsTinyAndD1) {
  // Fig. 3: third-party users create more 0.75 GB and 3.5 GB VMs.
  VmSizeCatalog catalog;
  Rng rng(9);
  double first_a0 = 0, third_a0 = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (catalog.at(catalog.SampleIndex(Party::kFirst, rng)).memory_gb == 0.75) ++first_a0;
    if (catalog.at(catalog.SampleIndex(Party::kThird, rng)).memory_gb == 0.75) ++third_a0;
  }
  EXPECT_GT(third_a0, first_a0 * 1.4);
}

}  // namespace
}  // namespace rc::trace
