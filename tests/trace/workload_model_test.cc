// Validates the synthetic workload against the paper's published
// distributions (Section 3 and the "%" columns of Table 4). One mid-size
// trace is generated once and shared across the suite.
#include "src/trace/workload_model.h"

#include <gtest/gtest.h>

#include "src/common/buckets.h"
#include "src/trace/utilization.h"

namespace rc::trace {
namespace {

const Trace& SharedTrace() {
  static const Trace* trace = [] {
    // Marginals are asserted against paper values below; per-subscription
    // behavioural clustering gives them substantial seed-to-seed variance,
    // so the suite pins a configuration with enough subscriptions to keep
    // that variance inside the stated tolerances.
    WorkloadConfig config;
    config.target_vm_count = 40000;
    config.num_subscriptions = 2000;
    config.seed = 42;
    return new Trace(WorkloadModel(config).Generate());
  }();
  return *trace;
}

TEST(WorkloadModelTest, GeneratesRequestedScale) {
  const Trace& t = SharedTrace();
  EXPECT_GE(t.vm_count(), 40000u);
  EXPECT_LE(t.vm_count(), 41000u);
  EXPECT_EQ(t.subscriptions().size(), 2000u);
}

TEST(WorkloadModelTest, Deterministic) {
  WorkloadConfig config;
  config.target_vm_count = 2000;
  config.num_subscriptions = 100;
  Trace a = WorkloadModel(config).Generate();
  Trace b = WorkloadModel(config).Generate();
  ASSERT_EQ(a.vm_count(), b.vm_count());
  for (size_t i = 0; i < a.vm_count(); ++i) {
    ASSERT_EQ(a.vms()[i].vm_id, b.vms()[i].vm_id);
    ASSERT_EQ(a.vms()[i].created, b.vms()[i].created);
    ASSERT_EQ(a.vms()[i].avg_cpu, b.vms()[i].avg_cpu);
  }
}

TEST(WorkloadModelTest, VmsSortedAndWellFormed) {
  const Trace& t = SharedTrace();
  SimTime prev = -1;
  for (const auto& vm : t.vms()) {
    ASSERT_GE(vm.created, prev);
    prev = vm.created;
    ASSERT_GT(vm.deleted, vm.created);
    ASSERT_GT(vm.cores, 0);
    ASSERT_GT(vm.memory_gb, 0.0);
    ASSERT_GE(vm.avg_cpu, 0.0);
    ASSERT_LE(vm.avg_cpu, 1.0);
    ASSERT_LE(vm.avg_cpu, vm.p95_max_cpu + 1e-9);
    ASSERT_NE(t.FindSubscription(vm.subscription_id), nullptr);
  }
}

TEST(WorkloadModelTest, VmTypeSplitMatchesSection31) {
  const Trace& t = SharedTrace();
  double iaas = 0;
  for (const auto& vm : t.vms()) {
    if (vm.vm_type == VmType::kIaas) ++iaas;
  }
  // Paper: 52% IaaS / 48% PaaS overall.
  EXPECT_NEAR(iaas / static_cast<double>(t.vm_count()), 0.52, 0.06);
}

TEST(WorkloadModelTest, AvgUtilBucketMarginalMatchesTable4) {
  const Trace& t = SharedTrace();
  double buckets[4] = {};
  for (const auto& vm : t.vms()) buckets[UtilizationBucket(vm.avg_cpu)]++;
  double n = static_cast<double>(t.vm_count());
  // Paper Table 4 row 1: {74%, 19%, 6%, 2%}.
  EXPECT_NEAR(buckets[0] / n, 0.74, 0.06);
  EXPECT_NEAR(buckets[1] / n, 0.19, 0.06);
  EXPECT_NEAR(buckets[2] / n, 0.06, 0.04);
  EXPECT_NEAR(buckets[3] / n, 0.02, 0.02);
}

TEST(WorkloadModelTest, P95BucketMarginalMatchesTable4) {
  const Trace& t = SharedTrace();
  double buckets[4] = {};
  for (const auto& vm : t.vms()) buckets[UtilizationBucket(vm.p95_max_cpu)]++;
  double n = static_cast<double>(t.vm_count());
  // Paper Table 4 row 2: {25%, 15%, 14%, 46%}. Tolerances are wide: the
  // high-P95 mass rides on the subscription draws of a given seed.
  EXPECT_NEAR(buckets[0] / n, 0.25, 0.12);
  EXPECT_NEAR(buckets[3] / n, 0.46, 0.15);
  // The qualitative Fig.-1 shape: substantial mass at both extremes.
  EXPECT_GT(buckets[3] / n, buckets[1] / n);
  EXPECT_GT(buckets[3] / n, buckets[2] / n);
}

TEST(WorkloadModelTest, LifetimeBucketMarginalMatchesTable4) {
  const Trace& t = SharedTrace();
  double buckets[4] = {};
  for (const auto& vm : t.vms()) buckets[LifetimeBucket(vm.lifetime())]++;
  double n = static_cast<double>(t.vm_count());
  // Paper Table 4 lifetime row: {29%, 32%, 32%, 7%}.
  EXPECT_NEAR(buckets[0] / n, 0.29, 0.10);
  EXPECT_NEAR(buckets[1] / n, 0.32, 0.10);
  EXPECT_NEAR(buckets[2] / n, 0.32, 0.10);
  EXPECT_NEAR(buckets[3] / n, 0.07, 0.07);
}

TEST(WorkloadModelTest, LifetimeKneeAtOneDay) {
  // Fig. 5: >90% of lifetimes are shorter than one day, with a long tail.
  const Trace& t = SharedTrace();
  double below_day = 0;
  for (const auto& vm : t.vms()) {
    if (vm.lifetime() <= kDay) ++below_day;
  }
  EXPECT_GT(below_day / static_cast<double>(t.vm_count()), 0.80);
}

TEST(WorkloadModelTest, LongRunnersDominateCoreHours) {
  // Paper: VMs running >= 3 days consume the vast majority of core-hours
  // (94% in the paper; we require a clear majority).
  const Trace& t = SharedTrace();
  double long_ch = 0, total_ch = 0;
  for (const auto& vm : t.vms()) {
    double ch = vm.CoreHours();
    total_ch += ch;
    if (vm.lifetime() >= 3 * kDay) long_ch += ch;
  }
  EXPECT_GT(long_ch / total_ch, 0.75);
}

TEST(WorkloadModelTest, FirstPartyShorterLived) {
  // Fig. 5: first-party VMs skew shorter (creation-test workloads).
  const Trace& t = SharedTrace();
  double first_short = 0, first_n = 0, third_short = 0, third_n = 0;
  for (const auto& vm : t.vms()) {
    bool is_short = vm.lifetime() <= 15 * kMinute;
    if (vm.party == Party::kFirst) {
      ++first_n;
      if (is_short) ++first_short;
    } else {
      ++third_n;
      if (is_short) ++third_short;
    }
  }
  EXPECT_GT(first_short / first_n, third_short / third_n);
}

TEST(WorkloadModelTest, FirstPartyLowerUtilization) {
  // Fig. 1: first-party utilization distributions sit below third-party.
  const Trace& t = SharedTrace();
  double first_sum = 0, first_n = 0, third_sum = 0, third_n = 0;
  for (const auto& vm : t.vms()) {
    if (vm.party == Party::kFirst) {
      first_sum += vm.avg_cpu;
      ++first_n;
    } else {
      third_sum += vm.avg_cpu;
      ++third_n;
    }
  }
  EXPECT_LT(first_sum / first_n, third_sum / third_n);
}

TEST(WorkloadModelTest, ProductionTagFractionMatchesSchedulerStudy) {
  const Trace& t = SharedTrace();
  double prod = 0;
  for (const auto& vm : t.vms()) {
    if (vm.tag == DeploymentTag::kProduction) ++prod;
  }
  // Paper Section 6.2: 71% production VMs.
  EXPECT_NEAR(prod / static_cast<double>(t.vm_count()), 0.71, 0.08);
}

TEST(WorkloadModelTest, InteractiveRareByCountButHeavyInCoreHours) {
  const Trace& t = SharedTrace();
  double interactive_n = 0, classified_n = 0;
  double ch_interactive = 0, ch_total = 0;
  for (const auto& vm : t.vms()) {
    SimTime end = std::min(vm.deleted, t.observation_window());
    double ch = vm.cores * static_cast<double>(end - vm.created) / kHour;
    ch_total += ch;
    if (vm.true_class == WorkloadClass::kUnknown) continue;
    if (vm.true_class == WorkloadClass::kInteractive) ch_interactive += ch;
    // Count prevalence among *newly created* classifiable VMs (after the
    // day-0 resident-service bootstrap), the population Table 4 predicts.
    if (vm.created < 3 * kDay) continue;
    ++classified_n;
    if (vm.true_class == WorkloadClass::kInteractive) ++interactive_n;
  }
  // Table 4: ~99% of newly created classifiable VMs are delay-insensitive.
  EXPECT_LT(interactive_n / classified_n, 0.12);
  // Fig. 6: interactive holds an outsized share of core hours relative to
  // its VM count (the paper reports ~28%; the realized share swings with
  // the resident-service draw at this trace size).
  EXPECT_GT(ch_interactive / ch_total, (interactive_n / classified_n) * 2.0);
  EXPECT_GT(ch_interactive / ch_total, 0.04);
  EXPECT_LT(ch_interactive / ch_total, 0.5);
}

TEST(WorkloadModelTest, InteractiveVmsRunAtLeastThreeDays) {
  const Trace& t = SharedTrace();
  for (const auto& vm : t.vms()) {
    if (vm.true_class == WorkloadClass::kInteractive) {
      ASSERT_GE(vm.lifetime(), 3 * kDay);
      ASSERT_GT(vm.util.diurnal_amp, 0.05);
    }
    if (vm.true_class == WorkloadClass::kUnknown) {
      ASSERT_LT(vm.lifetime(), 3 * kDay);
    }
  }
}

TEST(WorkloadModelTest, GroundTruthSummariesMatchTelemetry) {
  // Spot-check: the stored avg_cpu/p95_max_cpu must agree with re-derived
  // summaries of the synthesized telemetry.
  const Trace& t = SharedTrace();
  for (size_t i = 0; i < t.vm_count(); i += 997) {
    const VmRecord& vm = t.vms()[i];
    auto summary = UtilizationModel::Summarize(vm);
    EXPECT_NEAR(summary.avg_cpu, vm.avg_cpu, 1e-9);
    EXPECT_NEAR(summary.p95_max_cpu, vm.p95_max_cpu, 1e-9);
  }
}

TEST(WorkloadModelTest, SubscriptionsMostlySingleParty) {
  const Trace& t = SharedTrace();
  for (const auto& sub : t.subscriptions()) {
    for (size_t idx : t.VmsOfSubscription(sub.subscription_id)) {
      ASSERT_EQ(t.vms()[idx].party, sub.party);
      ASSERT_EQ(t.vms()[idx].subscription_id, sub.subscription_id);
    }
  }
}

}  // namespace
}  // namespace rc::trace
