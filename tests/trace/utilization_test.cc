#include "src/trace/utilization.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace rc::trace {
namespace {

UtilizationParams Params(double base, double diurnal = 0.0, double burst = 0.2,
                         uint64_t seed = 99) {
  UtilizationParams p;
  p.seed = seed;
  p.base = base;
  p.diurnal_amp = diurnal;
  p.noise_amp = 0.02;
  p.burst_amp = burst;
  return p;
}

TEST(UtilizationModelTest, DeterministicRandomAccess) {
  UtilizationParams p = Params(0.3);
  CpuReading a = UtilizationModel::ReadingAt(p, 12345);
  CpuReading b = UtilizationModel::ReadingAt(p, 12345);
  EXPECT_EQ(a.avg_cpu, b.avg_cpu);
  EXPECT_EQ(a.max_cpu, b.max_cpu);
  EXPECT_EQ(a.min_cpu, b.min_cpu);
  // Order independence.
  UtilizationModel::ReadingAt(p, 1);
  CpuReading c = UtilizationModel::ReadingAt(p, 12345);
  EXPECT_EQ(a.avg_cpu, c.avg_cpu);
}

TEST(UtilizationModelTest, ReadingsOrderedAndBounded) {
  UtilizationParams p = Params(0.5, 0.2, 0.4);
  for (int64_t slot = 0; slot < 2000; ++slot) {
    CpuReading r = UtilizationModel::ReadingAt(p, slot);
    ASSERT_GE(r.min_cpu, 0.0);
    ASSERT_LE(r.min_cpu, r.avg_cpu);
    ASSERT_LE(r.avg_cpu, r.max_cpu);
    ASSERT_LE(r.max_cpu, 1.0);
  }
}

TEST(UtilizationModelTest, MeanTracksBase) {
  for (double base : {0.05, 0.2, 0.5, 0.8}) {
    UtilizationParams p = Params(base);
    OnlineStats stats;
    for (int64_t slot = 0; slot < kSlotsPerDay * 3; ++slot) {
      stats.Add(UtilizationModel::ReadingAt(p, slot).avg_cpu);
    }
    EXPECT_NEAR(stats.mean(), base, 0.01) << "base=" << base;
  }
}

TEST(UtilizationModelTest, DiurnalComponentRaisesMean) {
  UtilizationParams flat = Params(0.2);
  UtilizationParams diurnal = Params(0.2, 0.4);
  OnlineStats sf, sd;
  for (int64_t slot = 0; slot < kSlotsPerDay * 3; ++slot) {
    sf.Add(UtilizationModel::ReadingAt(flat, slot).avg_cpu);
    sd.Add(UtilizationModel::ReadingAt(diurnal, slot).avg_cpu);
  }
  // Mean of the diurnal term is amp/2.
  EXPECT_NEAR(sd.mean() - sf.mean(), 0.2, 0.02);
  EXPECT_GT(sd.variance(), sf.variance() * 5);
}

TEST(UtilizationModelTest, DiurnalPeaksAtPhase) {
  UtilizationParams p = Params(0.1, 0.5);
  p.diurnal_phase_h = 14.0;
  p.noise_amp = 0.0;
  // Slot at hour 14 of day 2 vs hour 2 of day 2.
  int64_t peak_slot = 2 * kSlotsPerDay + 14 * kSlotsPerHour;
  int64_t trough_slot = 2 * kSlotsPerDay + 2 * kSlotsPerHour;
  EXPECT_GT(UtilizationModel::ReadingAt(p, peak_slot).avg_cpu,
            UtilizationModel::ReadingAt(p, trough_slot).avg_cpu + 0.3);
}

TEST(UtilizationModelTest, BurstP95NearAmplitude) {
  UtilizationParams p = Params(0.1, 0.0, 0.5);
  p.noise_amp = 0.0;
  std::vector<double> headroom;
  for (int64_t slot = 0; slot < 5000; ++slot) {
    CpuReading r = UtilizationModel::ReadingAt(p, slot);
    headroom.push_back(r.max_cpu - r.avg_cpu);
  }
  double p95 = rc::Percentile(std::move(headroom), 95.0);
  EXPECT_NEAR(p95, 0.5 * 0.97, 0.02);
}

TEST(UtilizationModelTest, SummarizeMatchesBruteForce) {
  VmRecord vm;
  vm.util = Params(0.35, 0.0, 0.3);
  vm.created = 3 * kHour;
  vm.deleted = vm.created + 2 * kDay;
  auto summary = UtilizationModel::Summarize(vm, /*max_samples=*/1 << 20);

  OnlineStats avg;
  std::vector<double> maxes;
  for (int64_t s = SlotIndex(vm.created); s < SlotIndex(vm.deleted); ++s) {
    CpuReading r = UtilizationModel::ReadingAt(vm.util, s);
    avg.Add(r.avg_cpu);
    maxes.push_back(r.max_cpu);
  }
  EXPECT_NEAR(summary.avg_cpu, avg.mean(), 1e-9);
  EXPECT_NEAR(summary.p95_max_cpu, rc::Percentile(std::move(maxes), 95.0), 1e-9);
}

TEST(UtilizationModelTest, SummarizeSampledCloseToExact) {
  VmRecord vm;
  vm.util = Params(0.25, 0.1, 0.4, 1234);
  vm.created = 0;
  vm.deleted = 20 * kDay;
  auto exact = UtilizationModel::Summarize(vm, 1 << 20);
  auto sampled = UtilizationModel::Summarize(vm, 512);
  EXPECT_NEAR(sampled.avg_cpu, exact.avg_cpu, 0.02);
  EXPECT_NEAR(sampled.p95_max_cpu, exact.p95_max_cpu, 0.05);
}

TEST(UtilizationModelTest, ShortVmHasAtLeastOneSample) {
  VmRecord vm;
  vm.util = Params(0.4);
  vm.created = 100;
  vm.deleted = 130;  // 30 seconds
  auto summary = UtilizationModel::Summarize(vm);
  EXPECT_GT(summary.avg_cpu, 0.0);
  EXPECT_GE(summary.p95_max_cpu, summary.avg_cpu);
}

TEST(UtilizationModelTest, AvgSeriesMatchesReadings) {
  UtilizationParams p = Params(0.3, 0.2);
  auto series = UtilizationModel::AvgSeries(p, 100, 50);
  ASSERT_EQ(series.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(series[static_cast<size_t>(i)],
              UtilizationModel::ReadingAt(p, 100 + i).avg_cpu);
  }
}

TEST(UtilizationModelTest, HashNoiseUniformish) {
  OnlineStats stats;
  for (int64_t k = 0; k < 20000; ++k) stats.Add(UtilizationModel::HashNoise(7, k));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
  EXPECT_GE(stats.min(), 0.0);
  EXPECT_LT(stats.max(), 1.0);
}

TEST(UtilizationModelTest, DistinctSeedsDecorrelated) {
  UtilizationParams a = Params(0.5, 0.0, 0.0, 1);
  UtilizationParams b = Params(0.5, 0.0, 0.0, 2);
  a.noise_amp = b.noise_amp = 0.2;
  double dot = 0.0;
  int64_t n = 5000;
  for (int64_t s = 0; s < n; ++s) {
    dot += (UtilizationModel::ReadingAt(a, s).avg_cpu - 0.5) *
           (UtilizationModel::ReadingAt(b, s).avg_cpu - 0.5);
  }
  EXPECT_NEAR(dot / static_cast<double>(n), 0.0, 0.002);
}

}  // namespace
}  // namespace rc::trace
