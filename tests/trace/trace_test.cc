#include "src/trace/trace.h"

#include <gtest/gtest.h>

namespace rc::trace {
namespace {

VmRecord MakeVm(uint64_t id, uint64_t sub, SimTime created, SimTime deleted) {
  VmRecord vm;
  vm.vm_id = id;
  vm.subscription_id = sub;
  vm.created = created;
  vm.deleted = deleted;
  vm.role_name = "IaaS";
  vm.service_name = "unknown";
  return vm;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    SubscriptionProfile s1, s2;
    s1.subscription_id = 1;
    s2.subscription_id = 2;
    std::vector<VmRecord> vms;
    vms.push_back(MakeVm(10, 1, 500, 900));
    vms.push_back(MakeVm(11, 2, 100, 2 * kDay));
    vms.push_back(MakeVm(12, 1, 300, kDay + 100));
    trace_ = Trace({s1, s2}, std::move(vms), kDay);
  }
  Trace trace_;
};

TEST_F(TraceTest, SortsByCreation) {
  ASSERT_EQ(trace_.vm_count(), 3u);
  EXPECT_EQ(trace_.vms()[0].vm_id, 11u);
  EXPECT_EQ(trace_.vms()[1].vm_id, 12u);
  EXPECT_EQ(trace_.vms()[2].vm_id, 10u);
}

TEST_F(TraceTest, SubscriptionIndex) {
  const auto& sub1 = trace_.VmsOfSubscription(1);
  ASSERT_EQ(sub1.size(), 2u);
  EXPECT_EQ(trace_.vms()[sub1[0]].vm_id, 12u);  // creation order
  EXPECT_EQ(trace_.vms()[sub1[1]].vm_id, 10u);
  EXPECT_TRUE(trace_.VmsOfSubscription(999).empty());
}

TEST_F(TraceTest, FindSubscription) {
  ASSERT_NE(trace_.FindSubscription(2), nullptr);
  EXPECT_EQ(trace_.FindSubscription(2)->subscription_id, 2u);
  EXPECT_EQ(trace_.FindSubscription(7), nullptr);
}

TEST_F(TraceTest, CompletedVmsRespectWindow) {
  auto completed = trace_.CompletedVms();
  // Window is 1 day: vm 10 (ends 900) completes; 11 and 12 do not.
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0]->vm_id, 10u);
}

TEST_F(TraceTest, VmsCreatedInWindow) {
  auto in_window = trace_.VmsCreatedIn(200, 400);
  ASSERT_EQ(in_window.size(), 1u);
  EXPECT_EQ(in_window[0]->vm_id, 12u);
  EXPECT_EQ(trace_.VmsCreatedIn(5000, 6000).size(), 0u);
}

TEST_F(TraceTest, TieBreakOnVmId) {
  std::vector<VmRecord> vms;
  vms.push_back(MakeVm(5, 1, 100, 200));
  vms.push_back(MakeVm(3, 1, 100, 200));
  Trace t({}, std::move(vms), kDay);
  EXPECT_EQ(t.vms()[0].vm_id, 3u);
}

}  // namespace
}  // namespace rc::trace
