#include "src/trace/arrival_process.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rc::trace {
namespace {

TEST(ArrivalProcessTest, StrictlyIncreasing) {
  ArrivalProcess proc(ArrivalConfig{}, 3);
  SimTime prev = 0;
  for (int i = 0; i < 1000; ++i) {
    SimTime t = proc.NextArrival();
    ASSERT_GT(t, prev);
    prev = t;
  }
}

TEST(ArrivalProcessTest, DeterministicPerSeed) {
  ArrivalProcess a(ArrivalConfig{}, 5), b(ArrivalConfig{}, 5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.NextArrival(), b.NextArrival());
}

TEST(ArrivalProcessTest, RateFactorDiurnalShape) {
  ArrivalConfig cfg;
  cfg.peak_hour = 14.0;
  cfg.night_level = 0.3;
  ArrivalProcess proc(cfg, 1);
  double peak = proc.RateFactor(14 * kHour);
  double night = proc.RateFactor(2 * kHour);
  EXPECT_NEAR(peak, 1.0, 1e-9);
  EXPECT_LT(night, 0.5);
  EXPECT_GE(night, cfg.night_level - 1e-9);
}

TEST(ArrivalProcessTest, WeekendsSlower) {
  ArrivalConfig cfg;
  cfg.weekend_level = 0.5;
  ArrivalProcess proc(cfg, 1);
  // Same hour, weekday (day 2) vs weekend (day 5).
  double weekday = proc.RateFactor(2 * kDay + 14 * kHour);
  double weekend = proc.RateFactor(5 * kDay + 14 * kHour);
  EXPECT_NEAR(weekend, weekday * 0.5, 1e-9);
}

TEST(ArrivalProcessTest, MoreArrivalsByDayThanNight) {
  ArrivalConfig cfg;
  cfg.peak_mean_interarrival_s = 30.0;
  ArrivalProcess proc(cfg, 7);
  int64_t day_arrivals = 0, night_arrivals = 0;
  // Count over one (non-weekend) day.
  while (proc.current() < kDay) {
    SimTime t = proc.NextArrival();
    if (t >= kDay) break;
    int hour = HourOfDay(t);
    if (hour >= 10 && hour < 18) ++day_arrivals;
    if (hour >= 0 && hour < 8) ++night_arrivals;
  }
  EXPECT_GT(day_arrivals, night_arrivals * 3 / 2);
}

TEST(ArrivalProcessTest, HeavyTailedGaps) {
  // With shape < 1, the gap distribution should have CoV > 1 (heavier than
  // exponential) — the burstiness observed in the paper's Fig. 7.
  ArrivalConfig cfg;
  cfg.weibull_shape = 0.6;
  cfg.night_level = 1.0;   // flatten the rate so gaps are i.i.d.
  cfg.weekend_level = 1.0;
  ArrivalProcess proc(cfg, 11);
  SimTime prev = 0;
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    SimTime t = proc.NextArrival();
    double gap = static_cast<double>(t - prev);
    prev = t;
    sum += gap;
    sq += gap * gap;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  double cov = std::sqrt(var) / mean;
  EXPECT_GT(cov, 1.2);
}

}  // namespace
}  // namespace rc::trace
