#include "src/trace/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/trace/utilization.h"
#include "src/trace/workload_model.h"

namespace rc::trace {
namespace {

Trace SmallTrace() {
  WorkloadConfig config;
  config.target_vm_count = 500;
  config.num_subscriptions = 40;
  config.seed = 77;
  return WorkloadModel(config).Generate();
}

TEST(TraceIoTest, RoundTripPreservesRecords) {
  Trace original = SmallTrace();
  std::stringstream ss;
  WriteVmTable(original, ss);
  Trace restored = ReadVmTable(ss, original.observation_window());

  ASSERT_EQ(restored.vm_count(), original.vm_count());
  for (size_t i = 0; i < original.vm_count(); ++i) {
    const VmRecord& a = original.vms()[i];
    const VmRecord& b = restored.vms()[i];
    ASSERT_EQ(a.vm_id, b.vm_id);
    ASSERT_EQ(a.deployment_id, b.deployment_id);
    ASSERT_EQ(a.subscription_id, b.subscription_id);
    ASSERT_EQ(a.party, b.party);
    ASSERT_EQ(a.vm_type, b.vm_type);
    ASSERT_EQ(a.guest_os, b.guest_os);
    ASSERT_EQ(a.tag, b.tag);
    ASSERT_EQ(a.role_name, b.role_name);
    ASSERT_EQ(a.service_name, b.service_name);
    ASSERT_EQ(a.cores, b.cores);
    ASSERT_EQ(a.created, b.created);
    ASSERT_EQ(a.deleted, b.deleted);
    ASSERT_EQ(a.true_class, b.true_class);
    ASSERT_EQ(a.util.seed, b.util.seed);
    ASSERT_NEAR(a.avg_cpu, b.avg_cpu, 1e-8);
    ASSERT_NEAR(a.p95_max_cpu, b.p95_max_cpu, 1e-8);
  }
}

TEST(TraceIoTest, TelemetryReplaysIdenticallyAfterRoundTrip) {
  // The whole point of serializing the latent parameters: telemetry is a
  // pure function of them, so a restored trace replays the same readings.
  Trace original = SmallTrace();
  std::stringstream ss;
  WriteVmTable(original, ss);
  Trace restored = ReadVmTable(ss, original.observation_window());
  const VmRecord& a = original.vms()[17];
  const VmRecord& b = restored.vms()[17];
  for (int64_t slot = SlotIndex(a.created); slot < SlotIndex(a.created) + 20; ++slot) {
    CpuReading ra = UtilizationModel::ReadingAt(a, slot);
    CpuReading rb = UtilizationModel::ReadingAt(b, slot);
    ASSERT_NEAR(ra.avg_cpu, rb.avg_cpu, 1e-9);
    ASSERT_NEAR(ra.max_cpu, rb.max_cpu, 1e-9);
  }
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream ss("not,a,header\n1,2,3\n");
  EXPECT_THROW(ReadVmTable(ss, kDay), std::runtime_error);
}

TEST(TraceIoTest, RejectsTruncatedRow) {
  Trace original = SmallTrace();
  std::stringstream ss;
  WriteVmTable(original, ss);
  std::string content = ss.str();
  // Drop the tail of the last line.
  content.resize(content.size() - 40);
  std::stringstream broken(content);
  EXPECT_THROW(ReadVmTable(broken, kDay), std::exception);
}

TEST(TraceIoTest, WriteReadingsHasHeaderAndRows) {
  Trace original = SmallTrace();
  const VmRecord* long_vm = nullptr;
  for (const auto& vm : original.vms()) {
    if (vm.lifetime() > 2 * kHour) {
      long_vm = &vm;
      break;
    }
  }
  ASSERT_NE(long_vm, nullptr);
  std::stringstream ss;
  WriteReadings(*long_vm, ss);
  std::string line;
  ASSERT_TRUE(std::getline(ss, line));
  EXPECT_EQ(line, "vm_id,timestamp,min_cpu,avg_cpu,max_cpu");
  int rows = 0;
  while (std::getline(ss, line)) ++rows;
  EXPECT_EQ(rows, SlotIndex(long_vm->deleted) - SlotIndex(long_vm->created));
}

TEST(TraceIoTest, FileRoundTrip) {
  Trace original = SmallTrace();
  std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  WriteVmTableFile(original, path);
  Trace restored = ReadVmTableFile(path, original.observation_window());
  EXPECT_EQ(restored.vm_count(), original.vm_count());
  EXPECT_THROW(ReadVmTableFile("/nonexistent/path.csv", kDay), std::runtime_error);
}

}  // namespace
}  // namespace rc::trace
