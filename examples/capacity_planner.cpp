// Cluster-selection use case (paper Section 4.1, "Smart cluster selection"):
// before creating a deployment, ask RC how large it is likely to grow and
// pick a cluster with enough headroom — avoiding eventual deployment
// failures without permanently reserving large growth buffers everywhere.
//
// Build: cmake --build build && ./build/examples/capacity_planner
#include <iostream>
#include <set>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/store/kv_store.h"
#include "src/common/table_printer.h"
#include "src/trace/workload_model.h"

using namespace rc;

namespace {

// Conservative core demand for a deployment-size bucket (upper edge).
int64_t BucketHighCores(int bucket) {
  switch (bucket) {
    case 0: return 1;
    case 1: return 10;
    case 2: return 100;
    default: return 400;
  }
}

}  // namespace

int main() {
  std::cout << "== Cluster selection with deployment-size predictions ==\n\n";

  trace::WorkloadConfig workload;
  workload.target_vm_count = 20'000;
  workload.num_subscriptions = 800;
  workload.seed = 37;
  trace::Trace trace = trace::WorkloadModel(workload).Generate();

  core::PipelineConfig pipeline_config;
  pipeline_config.train_end = 60 * kDay;
  pipeline_config.rf.num_trees = 12;
  pipeline_config.gbt.num_rounds = 25;
  core::OfflinePipeline pipeline(pipeline_config);
  core::TrainedModels trained = pipeline.Run(trace);
  store::KvStore store;
  core::OfflinePipeline::Publish(trained, store);
  core::Client client(&store, core::ClientConfig{});
  client.Initialize();

  // Three candidate clusters with different free capacity (cores).
  struct Candidate {
    const char* name;
    int64_t free_cores;
  };
  Candidate clusters[] = {{"cluster-A (nearly full)", 40},
                          {"cluster-B (moderate)", 160},
                          {"cluster-C (fresh)", 2'000}};

  // Incoming deployment requests: first VM of several test-month groups.
  static const trace::VmSizeCatalog catalog;
  std::vector<const trace::VmRecord*> first_vms;
  {
    std::set<uint64_t> seen_subs;
    for (const auto* vm : trace.VmsCreatedIn(61 * kDay, 90 * kDay)) {
      if (!trained.feature_data.contains(vm->subscription_id)) continue;
      if (seen_subs.insert(vm->subscription_id).second) first_vms.push_back(vm);
      if (first_vms.size() == 6) break;
    }
  }

  TablePrinter table({"deployment (subscription)", "predicted #cores bucket", "conf",
                      "reserve", "placed on"});
  for (const auto* vm : first_vms) {
    core::Prediction p =
        client.PredictSingle("DEPLOY_SIZE_CORES", core::InputsFromVm(*vm, catalog));
    // No or low-confidence prediction: reserve pessimistically.
    int bucket = (p.valid && p.score >= 0.6) ? p.bucket : 3;
    int64_t reserve = BucketHighCores(bucket);
    const char* placed = "rejected (no capacity)";
    for (const Candidate& c : clusters) {
      if (c.free_cores >= reserve) {
        placed = c.name;
        break;
      }
    }
    table.AddRow({std::to_string(vm->subscription_id),
                  p.valid ? BucketLabel(Metric::kDeployCores, p.bucket) : "no-prediction",
                  p.valid ? TablePrinter::Fmt(p.score, 2) : "-",
                  std::to_string(reserve) + " cores", placed});
  }
  table.Print(std::cout);
  std::cout << "\nsmall predicted deployments go to tight clusters; only the few\n"
            << "predicted-large ones need the fresh cluster's headroom — the paper's\n"
            << "point that growth buffers need not be reserved everywhere.\n";
  return 0;
}
