// Power-capping use case (paper Section 4.1, "Smart power oversubscription
// and capping"): during a power emergency, query RC for workload-class
// predictions and give interactive VMs their full power budget while
// throttling delay-insensitive ones — instead of capping everyone uniformly.
//
// Build: cmake --build build && ./build/examples/power_capping
#include <iostream>
#include <vector>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/store/kv_store.h"
#include "src/common/table_printer.h"
#include "src/trace/workload_model.h"

using namespace rc;

int main() {
  std::cout << "== Power capping with workload-class predictions ==\n\n";

  trace::WorkloadConfig workload;
  workload.target_vm_count = 20'000;
  workload.num_subscriptions = 800;
  workload.resident_interactive_vm_frac = 0.02;  // a service-heavy cluster
  workload.seed = 51;
  trace::Trace trace = trace::WorkloadModel(workload).Generate();

  core::PipelineConfig pipeline_config;
  pipeline_config.train_end = 60 * kDay;
  pipeline_config.rf.num_trees = 12;
  pipeline_config.gbt.num_rounds = 25;
  core::OfflinePipeline pipeline(pipeline_config);
  core::TrainedModels trained = pipeline.Run(trace);
  store::KvStore store;
  core::OfflinePipeline::Publish(trained, store);
  core::Client client(&store, core::ClientConfig{});
  client.Initialize();

  // A rack of long-running VMs alive at day 75, drawing power proportional
  // to cores. The breaker allows only 70% of the rack's peak draw.
  static const trace::VmSizeCatalog catalog;
  std::vector<const trace::VmRecord*> rack;
  for (const auto& vm : trace.vms()) {
    if (vm.created < 75 * kDay && vm.deleted > 75 * kDay && vm.lifetime() >= 3 * kDay) {
      rack.push_back(&vm);
    }
    if (rack.size() == 20) break;
  }

  double peak_power = 0.0;
  for (const auto* vm : rack) peak_power += vm->cores;  // 1 power unit / core
  double budget = 0.70 * peak_power;

  // Pass 1: interactive (or unpredicted -> conservative) VMs keep full power.
  double spent = 0.0;
  int interactive_count = 0;
  std::vector<bool> is_interactive(rack.size());
  for (size_t i = 0; i < rack.size(); ++i) {
    core::Prediction p = client.PredictSingle(
        "VM_WORKLOAD_CLASS", core::InputsFromVm(*rack[i], catalog));
    // Conservative: treat no-prediction / low confidence as interactive
    // (the paper's acceptable direction of error).
    is_interactive[i] = !p.valid || p.score < 0.6 || p.bucket == kClassInteractive;
    if (is_interactive[i]) {
      spent += rack[i]->cores;
      ++interactive_count;
    }
  }
  // Pass 2: the remainder is split across delay-insensitive VMs pro rata.
  double di_peak = peak_power - spent;
  double di_budget = std::max(0.0, budget - spent);
  double di_scale = di_peak > 0.0 ? std::min(1.0, di_budget / di_peak) : 1.0;

  TablePrinter table({"vm", "cores", "predicted class", "power granted"});
  for (size_t i = 0; i < rack.size(); ++i) {
    double granted = is_interactive[i]
                         ? static_cast<double>(rack[i]->cores)
                         : di_scale * static_cast<double>(rack[i]->cores);
    table.AddRow({std::to_string(rack[i]->vm_id), std::to_string(rack[i]->cores),
                  is_interactive[i] ? "interactive (full power)" : "delay-insensitive",
                  TablePrinter::Fmt(granted, 2) + " / " +
                      std::to_string(rack[i]->cores)});
  }
  table.Print(std::cout);

  std::cout << "\nrack peak " << peak_power << " units, breaker budget "
            << TablePrinter::Fmt(budget, 1) << "; " << interactive_count
            << " interactive VMs keep full power, delay-insensitive VMs run at "
            << TablePrinter::Pct(di_scale, 0) << " of peak\n"
            << "(uniform capping would have throttled everyone to 70%)\n";
  return 0;
}
