// Health-management use case (paper Section 4.1, "Scheduling server
// maintenance"): when a server starts to misbehave, query RC for the
// expected lifetimes of its VMs and decide whether maintenance can simply
// wait for them to drain — avoiding both live migration and VM downtime.
//
// Build: cmake --build build && ./build/examples/maintenance_planner
#include <algorithm>
#include <iostream>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/store/kv_store.h"
#include "src/common/table_printer.h"
#include "src/trace/workload_model.h"

using namespace rc;

namespace {

// Upper edge of a lifetime bucket in hours (conservative drain estimate);
// the top bucket is open-ended.
double LifetimeBucketHighHours(int bucket) {
  switch (bucket) {
    case 0: return 0.25;
    case 1: return 1.0;
    case 2: return 24.0;
    default: return -1.0;  // >24h: unbounded
  }
}

}  // namespace

int main() {
  std::cout << "== Maintenance planning with lifetime predictions ==\n\n";

  trace::WorkloadConfig workload;
  workload.target_vm_count = 20'000;
  workload.num_subscriptions = 800;
  workload.seed = 23;
  trace::Trace trace = trace::WorkloadModel(workload).Generate();

  core::PipelineConfig pipeline_config;
  pipeline_config.train_end = 60 * kDay;
  pipeline_config.rf.num_trees = 12;
  pipeline_config.gbt.num_rounds = 25;
  core::OfflinePipeline pipeline(pipeline_config);
  core::TrainedModels trained = pipeline.Run(trace);
  store::KvStore store;
  core::OfflinePipeline::Publish(trained, store);
  core::Client client(&store, core::ClientConfig{});
  client.Initialize();

  // Pretend a server hosts these eight currently-running VMs (sampled from
  // the test month), and the health monitor wants to schedule maintenance.
  static const trace::VmSizeCatalog catalog;
  std::vector<const trace::VmRecord*> hosted;
  for (const auto* vm : trace.VmsCreatedIn(61 * kDay, 90 * kDay)) {
    if (trained.feature_data.contains(vm->subscription_id)) hosted.push_back(vm);
    if (hosted.size() == 8) break;
  }

  TablePrinter table({"vm", "predicted lifetime", "confidence", "true lifetime",
                      "drain bound (h)"});
  double worst_bound_h = 0.0;
  bool unbounded = false;
  int64_t no_predictions = 0;
  for (const auto* vm : hosted) {
    core::Prediction p =
        client.PredictSingle("VM_LIFETIME", core::InputsFromVm(*vm, catalog));
    std::string label = "no-prediction", conf = "-", bound = "assume unbounded";
    if (p.valid) {
      label = BucketLabel(Metric::kLifetime, p.bucket);
      conf = TablePrinter::Fmt(p.score, 2);
      double hours = LifetimeBucketHighHours(p.bucket);
      if (hours < 0 || p.score < 0.6) {
        unbounded = true;
        bound = "unbounded";
      } else {
        worst_bound_h = std::max(worst_bound_h, hours);
        bound = TablePrinter::Fmt(hours, 2);
      }
    } else {
      ++no_predictions;
      unbounded = true;
    }
    table.AddRow({std::to_string(vm->vm_id), label, conf,
                  BucketLabel(Metric::kLifetime, LifetimeBucket(vm->lifetime())), bound});
  }
  table.Print(std::cout);

  std::cout << "\ndecision: ";
  if (unbounded) {
    std::cout << "at least one VM is long-lived (or unpredicted) — schedule\n"
              << "maintenance via live migration or wait for a maintenance window.\n";
  } else {
    std::cout << "all VMs should drain within ~" << worst_bound_h
              << " hours — defer maintenance and avoid live migration entirely.\n";
  }
  if (no_predictions > 0) {
    std::cout << "(" << no_predictions
              << " VMs had no feature data; clients must handle no-predictions)\n";
  }
  return 0;
}
