// The Section 5 case study as a runnable example: a VM scheduler that uses
// RC's P95-utilization predictions to oversubscribe servers safely
// (Algorithm 1). Trains on the first half of a first-party trace, then
// replays the second half through Baseline, Naive, and RC-informed policies
// and prints the comparison.
//
// Build: cmake --build build && ./build/examples/oversub_scheduling
#include <iostream>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/sched/simulator.h"
#include "src/store/kv_store.h"
#include "src/common/table_printer.h"
#include "src/trace/workload_model.h"

using namespace rc;

int main() {
  std::cout << "== RC-informed oversubscription (paper Section 5 / 6.2) ==\n\n";

  // A first-party cluster workload: the paper only oversubscribes with
  // first-party, non-production VMs (71% of VMs are production-tagged).
  trace::WorkloadConfig workload;
  workload.target_vm_count = 60'000;
  workload.duration = 28 * kDay;
  workload.num_subscriptions = 900;
  workload.frac_first_party = 1.0;
  workload.first_party_production_prob = 0.71;
  workload.lifetime_cap_days = 10.0;
  workload.lifetime_tail_alpha = 1.0;
  workload.popularity_cap = 0.0015;
  workload.deploy_vms_marginal = {0.49, 0.41, 0.10, 0.0};
  workload.seed = 11;
  trace::Trace trace = trace::WorkloadModel(workload).Generate();

  // Offline: train the P95 model on the first two weeks.
  core::PipelineConfig pipeline_config;
  pipeline_config.train_end = 14 * kDay;
  pipeline_config.rf.num_trees = 16;
  pipeline_config.gbt.num_rounds = 10;
  core::OfflinePipeline pipeline(pipeline_config);
  core::TrainedModels trained = pipeline.Run(trace);
  store::KvStore store;
  core::OfflinePipeline::Publish(trained, store);

  core::Client client(&store, core::ClientConfig{});
  client.Initialize();

  // Requests: the second two weeks, rebased to t=0.
  std::vector<sched::VmRequest> requests;
  for (sched::VmRequest req : sched::RequestsFromTrace(trace, 28 * kDay)) {
    if (req.arrival < 14 * kDay) continue;
    req.arrival -= 14 * kDay;
    req.departure -= 14 * kDay;
    requests.push_back(req);
  }
  std::cout << "replaying " << requests.size() << " VM arrivals over two weeks\n\n";

  sched::SimConfig sim_config;
  sim_config.cluster = sched::ClusterConfig{140, 16, 112.0};
  sim_config.horizon = 14 * kDay;

  static const trace::VmSizeCatalog catalog;
  TablePrinter table({"policy", "failures", "readings >100%", "mean server util"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kBaseline, sched::PolicyKind::kNaive,
        sched::PolicyKind::kRcInformedSoft}) {
    sched::Cluster cluster(sim_config.cluster);
    sched::PolicyConfig policy_config;
    policy_config.kind = kind;
    sched::SchedulingPolicy policy(
        policy_config, &cluster, [&](const sched::VmRequest& vm) {
          // This is the entire scheduler-side integration with RC: one
          // predict_single call per placement (Algorithm 1, line 9).
          return client.PredictSingle("VM_P95UTIL",
                                      core::InputsFromVm(*vm.source, catalog));
        });
    sched::ClusterSimulator simulator(sim_config);
    sched::SimResult result = simulator.Run(requests, policy);
    table.AddRow({ToString(kind), std::to_string(result.failures),
                  std::to_string(result.overload_readings),
                  TablePrinter::Pct(result.mean_occupied_utilization, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nRC-informed oversubscription packs non-production VMs beyond the\n"
            << "physical core count while the predicted-P95 ledger keeps actual\n"
            << "server utilization from exceeding capacity (Naive shows what happens\n"
            << "without predictions).\n";
  return 0;
}
