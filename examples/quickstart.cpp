// Quickstart: the complete Resource Central loop in one file.
//
//   1. Generate a synthetic Azure-like VM trace (stand-in for telemetry).
//   2. Run the offline pipeline: aggregate feature data, train the six
//      prediction models, validate.
//   3. Publish models + specs + feature data to the (simulated) highly
//      available store.
//   4. Initialize the client library and request predictions, exactly as a
//      resource manager would (Table 2 API).
//
// Build: cmake --build build && ./build/examples/quickstart
//
// Set RC_METRICS_DUMP=1 to print the full Prometheus-style metrics
// exposition (the client's private registry plus the process-global one) at
// exit.
#include <cstdlib>
#include <iostream>

#include "src/core/client.h"
#include "src/core/offline_pipeline.h"
#include "src/obs/export.h"
#include "src/store/kv_store.h"
#include "src/trace/workload_model.h"

using namespace rc;

int main() {
  std::cout << "== Resource Central quickstart ==\n\n";

  // 1. Workload: 20k VMs over three months, calibrated to the paper's
  //    published distributions (Section 3).
  trace::WorkloadConfig workload;
  workload.target_vm_count = 20'000;
  workload.num_subscriptions = 800;
  workload.seed = 7;
  trace::Trace trace = trace::WorkloadModel(workload).Generate();
  std::cout << "generated " << trace.vm_count() << " VMs across "
            << trace.subscriptions().size() << " subscriptions\n";

  // 2. Offline pipeline: train on the first two months.
  core::PipelineConfig pipeline_config;
  pipeline_config.train_end = 60 * kDay;
  pipeline_config.rf.num_trees = 16;   // quickstart-sized ensembles
  pipeline_config.gbt.num_rounds = 20;
  core::OfflinePipeline pipeline(pipeline_config);
  core::TrainedModels trained = pipeline.Run(trace);
  std::cout << "trained " << trained.models.size() << " models; feature data for "
            << trained.feature_data.size() << " subscriptions\n";

  // 3. Publish to the store (one per datacenter in production).
  store::KvStore store;
  core::OfflinePipeline::Publish(trained, store);
  std::cout << "published " << store.key_count() << " artifacts to the store\n\n";

  // 4. Client side: the "DLL" any resource manager links against.
  core::Client client(&store, core::ClientConfig{});
  if (!client.Initialize()) {
    std::cerr << "client initialization failed\n";
    return 1;
  }
  std::cout << "client models: ";
  for (const auto& name : client.GetAvailableModels()) std::cout << name << " ";
  std::cout << "\n\n";

  // Ask for predictions about a VM that just arrived (here: the first VM of
  // the third month, which the models have never seen).
  static const trace::VmSizeCatalog catalog;
  auto candidates = trace.VmsCreatedIn(60 * kDay, 90 * kDay);
  const trace::VmRecord& vm = *candidates.at(0);
  core::ClientInputs inputs = core::InputsFromVm(vm, catalog);
  std::cout << "new VM: subscription " << vm.subscription_id << ", " << vm.cores
            << " cores, " << vm.memory_gb << " GB, " << ToString(vm.vm_type) << "\n";

  for (Metric metric : kAllMetrics) {
    core::Prediction p = client.PredictSingle(MetricModelName(metric), inputs);
    std::cout << "  " << MetricName(metric) << ": ";
    if (!p.valid) {
      std::cout << "no-prediction (e.g. unseen subscription)\n";
      continue;
    }
    std::cout << "bucket '" << BucketLabel(metric, p.bucket) << "' (confidence "
              << p.score << ")\n";
  }

  // Ground truth for comparison.
  std::cout << "\nground truth: avg CPU bucket '"
            << BucketLabel(Metric::kAvgCpu, UtilizationBucket(vm.avg_cpu))
            << "', P95 bucket '"
            << BucketLabel(Metric::kP95Cpu, UtilizationBucket(vm.p95_max_cpu))
            << "', lifetime bucket '"
            << BucketLabel(Metric::kLifetime, LifetimeBucket(vm.lifetime())) << "'\n";

  auto stats = client.stats();
  std::cout << "\nclient stats: " << stats.model_executions << " model executions, "
            << stats.result_hits << " cache hits, " << stats.no_predictions
            << " no-predictions\n";

  if (const char* dump = std::getenv("RC_METRICS_DUMP"); dump != nullptr && *dump != '0') {
    // Client instruments live in the client's own registry; the store,
    // pipeline, and scheduler default to the process-global one.
    std::cout << "\n== metrics (client registry) ==\n"
              << rc::obs::PrometheusText(client.metrics())
              << "\n== metrics (global registry) ==\n"
              << rc::obs::PrometheusText(rc::obs::MetricsRegistry::Global());
  }
  return 0;
}
