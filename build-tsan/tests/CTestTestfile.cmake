# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/rc_common_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_trace_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_ml_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_analysis_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_store_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_core_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_sched_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rc_integration_tests[1]_include.cmake")
