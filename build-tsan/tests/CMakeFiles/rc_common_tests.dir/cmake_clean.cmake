file(REMOVE_RECURSE
  "CMakeFiles/rc_common_tests.dir/common/buckets_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/buckets_test.cc.o.d"
  "CMakeFiles/rc_common_tests.dir/common/cdf_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/cdf_test.cc.o.d"
  "CMakeFiles/rc_common_tests.dir/common/csv_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/csv_test.cc.o.d"
  "CMakeFiles/rc_common_tests.dir/common/histogram_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/rc_common_tests.dir/common/misc_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/misc_test.cc.o.d"
  "CMakeFiles/rc_common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/rc_common_tests.dir/common/stats_test.cc.o"
  "CMakeFiles/rc_common_tests.dir/common/stats_test.cc.o.d"
  "rc_common_tests"
  "rc_common_tests.pdb"
  "rc_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
