# Empty dependencies file for rc_common_tests.
# This may be replaced when dependencies are built.
