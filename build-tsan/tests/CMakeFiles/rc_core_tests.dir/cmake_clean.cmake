file(REMOVE_RECURSE
  "CMakeFiles/rc_core_tests.dir/core/client_concurrency_test.cc.o"
  "CMakeFiles/rc_core_tests.dir/core/client_concurrency_test.cc.o.d"
  "CMakeFiles/rc_core_tests.dir/core/client_test.cc.o"
  "CMakeFiles/rc_core_tests.dir/core/client_test.cc.o.d"
  "CMakeFiles/rc_core_tests.dir/core/evaluation_test.cc.o"
  "CMakeFiles/rc_core_tests.dir/core/evaluation_test.cc.o.d"
  "CMakeFiles/rc_core_tests.dir/core/feature_data_test.cc.o"
  "CMakeFiles/rc_core_tests.dir/core/feature_data_test.cc.o.d"
  "CMakeFiles/rc_core_tests.dir/core/featurizer_test.cc.o"
  "CMakeFiles/rc_core_tests.dir/core/featurizer_test.cc.o.d"
  "CMakeFiles/rc_core_tests.dir/core/pipeline_test.cc.o"
  "CMakeFiles/rc_core_tests.dir/core/pipeline_test.cc.o.d"
  "rc_core_tests"
  "rc_core_tests.pdb"
  "rc_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
