# Empty dependencies file for rc_core_tests.
# This may be replaced when dependencies are built.
