# Empty dependencies file for rc_store_tests.
# This may be replaced when dependencies are built.
