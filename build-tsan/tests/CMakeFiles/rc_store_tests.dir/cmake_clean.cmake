file(REMOVE_RECURSE
  "CMakeFiles/rc_store_tests.dir/store/disk_cache_test.cc.o"
  "CMakeFiles/rc_store_tests.dir/store/disk_cache_test.cc.o.d"
  "CMakeFiles/rc_store_tests.dir/store/kv_store_test.cc.o"
  "CMakeFiles/rc_store_tests.dir/store/kv_store_test.cc.o.d"
  "rc_store_tests"
  "rc_store_tests.pdb"
  "rc_store_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_store_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
