file(REMOVE_RECURSE
  "CMakeFiles/rc_analysis_tests.dir/analysis/characterization_test.cc.o"
  "CMakeFiles/rc_analysis_tests.dir/analysis/characterization_test.cc.o.d"
  "CMakeFiles/rc_analysis_tests.dir/analysis/periodicity_test.cc.o"
  "CMakeFiles/rc_analysis_tests.dir/analysis/periodicity_test.cc.o.d"
  "CMakeFiles/rc_analysis_tests.dir/analysis/spearman_test.cc.o"
  "CMakeFiles/rc_analysis_tests.dir/analysis/spearman_test.cc.o.d"
  "rc_analysis_tests"
  "rc_analysis_tests.pdb"
  "rc_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
