# Empty compiler generated dependencies file for rc_analysis_tests.
# This may be replaced when dependencies are built.
