file(REMOVE_RECURSE
  "CMakeFiles/rc_sched_tests.dir/sched/cluster_test.cc.o"
  "CMakeFiles/rc_sched_tests.dir/sched/cluster_test.cc.o.d"
  "CMakeFiles/rc_sched_tests.dir/sched/rules_test.cc.o"
  "CMakeFiles/rc_sched_tests.dir/sched/rules_test.cc.o.d"
  "CMakeFiles/rc_sched_tests.dir/sched/scheduler_test.cc.o"
  "CMakeFiles/rc_sched_tests.dir/sched/scheduler_test.cc.o.d"
  "CMakeFiles/rc_sched_tests.dir/sched/simulator_test.cc.o"
  "CMakeFiles/rc_sched_tests.dir/sched/simulator_test.cc.o.d"
  "rc_sched_tests"
  "rc_sched_tests.pdb"
  "rc_sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
