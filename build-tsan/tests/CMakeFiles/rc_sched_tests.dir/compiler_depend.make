# Empty compiler generated dependencies file for rc_sched_tests.
# This may be replaced when dependencies are built.
