# Empty dependencies file for rc_ml_tests.
# This may be replaced when dependencies are built.
