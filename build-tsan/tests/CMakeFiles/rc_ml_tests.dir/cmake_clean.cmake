file(REMOVE_RECURSE
  "CMakeFiles/rc_ml_tests.dir/ml/dataset_test.cc.o"
  "CMakeFiles/rc_ml_tests.dir/ml/dataset_test.cc.o.d"
  "CMakeFiles/rc_ml_tests.dir/ml/ensemble_test.cc.o"
  "CMakeFiles/rc_ml_tests.dir/ml/ensemble_test.cc.o.d"
  "CMakeFiles/rc_ml_tests.dir/ml/fft_test.cc.o"
  "CMakeFiles/rc_ml_tests.dir/ml/fft_test.cc.o.d"
  "CMakeFiles/rc_ml_tests.dir/ml/metrics_test.cc.o"
  "CMakeFiles/rc_ml_tests.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/rc_ml_tests.dir/ml/tree_test.cc.o"
  "CMakeFiles/rc_ml_tests.dir/ml/tree_test.cc.o.d"
  "rc_ml_tests"
  "rc_ml_tests.pdb"
  "rc_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
