# Empty dependencies file for rc_integration_tests.
# This may be replaced when dependencies are built.
