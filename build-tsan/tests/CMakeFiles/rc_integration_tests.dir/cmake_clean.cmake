file(REMOVE_RECURSE
  "CMakeFiles/rc_integration_tests.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/rc_integration_tests.dir/integration/end_to_end_test.cc.o.d"
  "rc_integration_tests"
  "rc_integration_tests.pdb"
  "rc_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
