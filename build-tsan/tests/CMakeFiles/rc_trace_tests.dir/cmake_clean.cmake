file(REMOVE_RECURSE
  "CMakeFiles/rc_trace_tests.dir/trace/arrival_process_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/arrival_process_test.cc.o.d"
  "CMakeFiles/rc_trace_tests.dir/trace/trace_io_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/trace_io_test.cc.o.d"
  "CMakeFiles/rc_trace_tests.dir/trace/trace_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/trace_test.cc.o.d"
  "CMakeFiles/rc_trace_tests.dir/trace/utilization_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/utilization_test.cc.o.d"
  "CMakeFiles/rc_trace_tests.dir/trace/vm_size_catalog_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/vm_size_catalog_test.cc.o.d"
  "CMakeFiles/rc_trace_tests.dir/trace/workload_model_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/workload_model_test.cc.o.d"
  "CMakeFiles/rc_trace_tests.dir/trace/workload_property_test.cc.o"
  "CMakeFiles/rc_trace_tests.dir/trace/workload_property_test.cc.o.d"
  "rc_trace_tests"
  "rc_trace_tests.pdb"
  "rc_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
