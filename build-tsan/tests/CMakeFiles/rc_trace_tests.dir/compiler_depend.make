# Empty compiler generated dependencies file for rc_trace_tests.
# This may be replaced when dependencies are built.
