# Empty compiler generated dependencies file for oversub_scheduling.
# This may be replaced when dependencies are built.
