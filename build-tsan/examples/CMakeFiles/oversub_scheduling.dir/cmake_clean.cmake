file(REMOVE_RECURSE
  "CMakeFiles/oversub_scheduling.dir/oversub_scheduling.cpp.o"
  "CMakeFiles/oversub_scheduling.dir/oversub_scheduling.cpp.o.d"
  "oversub_scheduling"
  "oversub_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversub_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
