file(REMOVE_RECURSE
  "CMakeFiles/rc_predict.dir/rc_predict.cc.o"
  "CMakeFiles/rc_predict.dir/rc_predict.cc.o.d"
  "rc_predict"
  "rc_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
