
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/rc_predict.cc" "tools/CMakeFiles/rc_predict.dir/rc_predict.cc.o" "gcc" "tools/CMakeFiles/rc_predict.dir/rc_predict.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/rc_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/store/CMakeFiles/rc_store.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/rc_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/rc_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
