# Empty dependencies file for rc_predict.
# This may be replaced when dependencies are built.
