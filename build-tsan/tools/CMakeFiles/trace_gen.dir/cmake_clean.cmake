file(REMOVE_RECURSE
  "CMakeFiles/trace_gen.dir/trace_gen.cc.o"
  "CMakeFiles/trace_gen.dir/trace_gen.cc.o.d"
  "trace_gen"
  "trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
