# Empty dependencies file for trace_gen.
# This may be replaced when dependencies are built.
