file(REMOVE_RECURSE
  "CMakeFiles/fig02_vm_cores.dir/fig02_vm_cores.cc.o"
  "CMakeFiles/fig02_vm_cores.dir/fig02_vm_cores.cc.o.d"
  "fig02_vm_cores"
  "fig02_vm_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_vm_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
