# Empty compiler generated dependencies file for fig02_vm_cores.
# This may be replaced when dependencies are built.
