# Empty compiler generated dependencies file for fig01_cpu_util_cdf.
# This may be replaced when dependencies are built.
