file(REMOVE_RECURSE
  "CMakeFiles/fig01_cpu_util_cdf.dir/fig01_cpu_util_cdf.cc.o"
  "CMakeFiles/fig01_cpu_util_cdf.dir/fig01_cpu_util_cdf.cc.o.d"
  "fig01_cpu_util_cdf"
  "fig01_cpu_util_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cpu_util_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
