file(REMOVE_RECURSE
  "CMakeFiles/sched_comparison.dir/sched_comparison.cc.o"
  "CMakeFiles/sched_comparison.dir/sched_comparison.cc.o.d"
  "sched_comparison"
  "sched_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
