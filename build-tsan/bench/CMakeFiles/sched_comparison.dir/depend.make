# Empty dependencies file for sched_comparison.
# This may be replaced when dependencies are built.
