file(REMOVE_RECURSE
  "CMakeFiles/ablation_confidence.dir/ablation_confidence.cc.o"
  "CMakeFiles/ablation_confidence.dir/ablation_confidence.cc.o.d"
  "ablation_confidence"
  "ablation_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
