# Empty compiler generated dependencies file for ablation_confidence.
# This may be replaced when dependencies are built.
