file(REMOVE_RECURSE
  "CMakeFiles/fig05_lifetime.dir/fig05_lifetime.cc.o"
  "CMakeFiles/fig05_lifetime.dir/fig05_lifetime.cc.o.d"
  "fig05_lifetime"
  "fig05_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
