# Empty compiler generated dependencies file for fig05_lifetime.
# This may be replaced when dependencies are built.
