# Empty dependencies file for ablation_model_size.
# This may be replaced when dependencies are built.
