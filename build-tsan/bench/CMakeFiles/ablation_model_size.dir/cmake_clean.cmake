file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_size.dir/ablation_model_size.cc.o"
  "CMakeFiles/ablation_model_size.dir/ablation_model_size.cc.o.d"
  "ablation_model_size"
  "ablation_model_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
