file(REMOVE_RECURSE
  "CMakeFiles/fig06_workload_class.dir/fig06_workload_class.cc.o"
  "CMakeFiles/fig06_workload_class.dir/fig06_workload_class.cc.o.d"
  "fig06_workload_class"
  "fig06_workload_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_workload_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
