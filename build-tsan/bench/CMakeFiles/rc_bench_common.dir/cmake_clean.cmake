file(REMOVE_RECURSE
  "CMakeFiles/rc_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/rc_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/rc_bench_common.dir/sched_common.cc.o"
  "CMakeFiles/rc_bench_common.dir/sched_common.cc.o.d"
  "librc_bench_common.a"
  "librc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
