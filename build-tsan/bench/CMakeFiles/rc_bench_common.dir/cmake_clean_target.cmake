file(REMOVE_RECURSE
  "librc_bench_common.a"
)
