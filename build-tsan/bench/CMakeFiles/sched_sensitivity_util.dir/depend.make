# Empty dependencies file for sched_sensitivity_util.
# This may be replaced when dependencies are built.
