file(REMOVE_RECURSE
  "CMakeFiles/sched_sensitivity_util.dir/sched_sensitivity_util.cc.o"
  "CMakeFiles/sched_sensitivity_util.dir/sched_sensitivity_util.cc.o.d"
  "sched_sensitivity_util"
  "sched_sensitivity_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sensitivity_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
