file(REMOVE_RECURSE
  "CMakeFiles/fig07_arrivals.dir/fig07_arrivals.cc.o"
  "CMakeFiles/fig07_arrivals.dir/fig07_arrivals.cc.o.d"
  "fig07_arrivals"
  "fig07_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
