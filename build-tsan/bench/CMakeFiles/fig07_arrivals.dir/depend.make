# Empty dependencies file for fig07_arrivals.
# This may be replaced when dependencies are built.
