file(REMOVE_RECURSE
  "CMakeFiles/ablation_buckets.dir/ablation_buckets.cc.o"
  "CMakeFiles/ablation_buckets.dir/ablation_buckets.cc.o.d"
  "ablation_buckets"
  "ablation_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
