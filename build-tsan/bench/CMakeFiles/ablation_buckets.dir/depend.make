# Empty dependencies file for ablation_buckets.
# This may be replaced when dependencies are built.
