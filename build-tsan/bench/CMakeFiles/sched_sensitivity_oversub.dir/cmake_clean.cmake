file(REMOVE_RECURSE
  "CMakeFiles/sched_sensitivity_oversub.dir/sched_sensitivity_oversub.cc.o"
  "CMakeFiles/sched_sensitivity_oversub.dir/sched_sensitivity_oversub.cc.o.d"
  "sched_sensitivity_oversub"
  "sched_sensitivity_oversub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sensitivity_oversub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
