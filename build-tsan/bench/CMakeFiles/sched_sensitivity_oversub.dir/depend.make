# Empty dependencies file for sched_sensitivity_oversub.
# This may be replaced when dependencies are built.
