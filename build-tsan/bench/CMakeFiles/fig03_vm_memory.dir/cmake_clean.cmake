file(REMOVE_RECURSE
  "CMakeFiles/fig03_vm_memory.dir/fig03_vm_memory.cc.o"
  "CMakeFiles/fig03_vm_memory.dir/fig03_vm_memory.cc.o.d"
  "fig03_vm_memory"
  "fig03_vm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_vm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
