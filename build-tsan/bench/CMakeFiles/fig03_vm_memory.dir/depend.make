# Empty dependencies file for fig03_vm_memory.
# This may be replaced when dependencies are built.
