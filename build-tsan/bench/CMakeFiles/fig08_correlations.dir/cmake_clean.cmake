file(REMOVE_RECURSE
  "CMakeFiles/fig08_correlations.dir/fig08_correlations.cc.o"
  "CMakeFiles/fig08_correlations.dir/fig08_correlations.cc.o.d"
  "fig08_correlations"
  "fig08_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
