# Empty compiler generated dependencies file for fig08_correlations.
# This may be replaced when dependencies are built.
