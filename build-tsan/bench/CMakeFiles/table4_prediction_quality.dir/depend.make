# Empty dependencies file for table4_prediction_quality.
# This may be replaced when dependencies are built.
