file(REMOVE_RECURSE
  "CMakeFiles/table4_prediction_quality.dir/table4_prediction_quality.cc.o"
  "CMakeFiles/table4_prediction_quality.dir/table4_prediction_quality.cc.o.d"
  "table4_prediction_quality"
  "table4_prediction_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_prediction_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
