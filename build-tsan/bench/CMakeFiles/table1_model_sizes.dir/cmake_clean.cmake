file(REMOVE_RECURSE
  "CMakeFiles/table1_model_sizes.dir/table1_model_sizes.cc.o"
  "CMakeFiles/table1_model_sizes.dir/table1_model_sizes.cc.o.d"
  "table1_model_sizes"
  "table1_model_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_model_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
