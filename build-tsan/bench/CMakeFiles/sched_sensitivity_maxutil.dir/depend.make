# Empty dependencies file for sched_sensitivity_maxutil.
# This may be replaced when dependencies are built.
