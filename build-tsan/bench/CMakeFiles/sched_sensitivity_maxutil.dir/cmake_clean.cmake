file(REMOVE_RECURSE
  "CMakeFiles/sched_sensitivity_maxutil.dir/sched_sensitivity_maxutil.cc.o"
  "CMakeFiles/sched_sensitivity_maxutil.dir/sched_sensitivity_maxutil.cc.o.d"
  "sched_sensitivity_maxutil"
  "sched_sensitivity_maxutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sensitivity_maxutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
