file(REMOVE_RECURSE
  "CMakeFiles/fig04_deployment_size.dir/fig04_deployment_size.cc.o"
  "CMakeFiles/fig04_deployment_size.dir/fig04_deployment_size.cc.o.d"
  "fig04_deployment_size"
  "fig04_deployment_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_deployment_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
