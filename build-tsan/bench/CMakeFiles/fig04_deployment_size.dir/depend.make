# Empty dependencies file for fig04_deployment_size.
# This may be replaced when dependencies are built.
