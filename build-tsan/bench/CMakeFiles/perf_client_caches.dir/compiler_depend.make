# Empty compiler generated dependencies file for perf_client_caches.
# This may be replaced when dependencies are built.
