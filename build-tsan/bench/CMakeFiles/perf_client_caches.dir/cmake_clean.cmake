file(REMOVE_RECURSE
  "CMakeFiles/perf_client_caches.dir/perf_client_caches.cc.o"
  "CMakeFiles/perf_client_caches.dir/perf_client_caches.cc.o.d"
  "perf_client_caches"
  "perf_client_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_client_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
