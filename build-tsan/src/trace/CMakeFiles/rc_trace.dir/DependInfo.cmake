
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/arrival_process.cc" "src/trace/CMakeFiles/rc_trace.dir/arrival_process.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/arrival_process.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/rc_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/rc_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/utilization.cc" "src/trace/CMakeFiles/rc_trace.dir/utilization.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/utilization.cc.o.d"
  "/root/repo/src/trace/vm_size_catalog.cc" "src/trace/CMakeFiles/rc_trace.dir/vm_size_catalog.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/vm_size_catalog.cc.o.d"
  "/root/repo/src/trace/vm_types.cc" "src/trace/CMakeFiles/rc_trace.dir/vm_types.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/vm_types.cc.o.d"
  "/root/repo/src/trace/workload_model.cc" "src/trace/CMakeFiles/rc_trace.dir/workload_model.cc.o" "gcc" "src/trace/CMakeFiles/rc_trace.dir/workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
