# Empty dependencies file for rc_trace.
# This may be replaced when dependencies are built.
