file(REMOVE_RECURSE
  "librc_trace.a"
)
