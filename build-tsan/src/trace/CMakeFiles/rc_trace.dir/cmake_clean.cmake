file(REMOVE_RECURSE
  "CMakeFiles/rc_trace.dir/arrival_process.cc.o"
  "CMakeFiles/rc_trace.dir/arrival_process.cc.o.d"
  "CMakeFiles/rc_trace.dir/trace.cc.o"
  "CMakeFiles/rc_trace.dir/trace.cc.o.d"
  "CMakeFiles/rc_trace.dir/trace_io.cc.o"
  "CMakeFiles/rc_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/rc_trace.dir/utilization.cc.o"
  "CMakeFiles/rc_trace.dir/utilization.cc.o.d"
  "CMakeFiles/rc_trace.dir/vm_size_catalog.cc.o"
  "CMakeFiles/rc_trace.dir/vm_size_catalog.cc.o.d"
  "CMakeFiles/rc_trace.dir/vm_types.cc.o"
  "CMakeFiles/rc_trace.dir/vm_types.cc.o.d"
  "CMakeFiles/rc_trace.dir/workload_model.cc.o"
  "CMakeFiles/rc_trace.dir/workload_model.cc.o.d"
  "librc_trace.a"
  "librc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
