file(REMOVE_RECURSE
  "CMakeFiles/rc_sched.dir/cluster.cc.o"
  "CMakeFiles/rc_sched.dir/cluster.cc.o.d"
  "CMakeFiles/rc_sched.dir/policies.cc.o"
  "CMakeFiles/rc_sched.dir/policies.cc.o.d"
  "CMakeFiles/rc_sched.dir/rules.cc.o"
  "CMakeFiles/rc_sched.dir/rules.cc.o.d"
  "CMakeFiles/rc_sched.dir/scheduler.cc.o"
  "CMakeFiles/rc_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/rc_sched.dir/simulator.cc.o"
  "CMakeFiles/rc_sched.dir/simulator.cc.o.d"
  "librc_sched.a"
  "librc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
