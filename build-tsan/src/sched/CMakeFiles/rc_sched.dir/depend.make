# Empty dependencies file for rc_sched.
# This may be replaced when dependencies are built.
