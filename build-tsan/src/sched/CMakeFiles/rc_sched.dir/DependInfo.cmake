
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cluster.cc" "src/sched/CMakeFiles/rc_sched.dir/cluster.cc.o" "gcc" "src/sched/CMakeFiles/rc_sched.dir/cluster.cc.o.d"
  "/root/repo/src/sched/policies.cc" "src/sched/CMakeFiles/rc_sched.dir/policies.cc.o" "gcc" "src/sched/CMakeFiles/rc_sched.dir/policies.cc.o.d"
  "/root/repo/src/sched/rules.cc" "src/sched/CMakeFiles/rc_sched.dir/rules.cc.o" "gcc" "src/sched/CMakeFiles/rc_sched.dir/rules.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/rc_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/rc_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/simulator.cc" "src/sched/CMakeFiles/rc_sched.dir/simulator.cc.o" "gcc" "src/sched/CMakeFiles/rc_sched.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/rc_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/rc_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/rc_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/store/CMakeFiles/rc_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
