file(REMOVE_RECURSE
  "librc_sched.a"
)
