file(REMOVE_RECURSE
  "librc_analysis.a"
)
