# Empty dependencies file for rc_analysis.
# This may be replaced when dependencies are built.
