
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/characterization.cc" "src/analysis/CMakeFiles/rc_analysis.dir/characterization.cc.o" "gcc" "src/analysis/CMakeFiles/rc_analysis.dir/characterization.cc.o.d"
  "/root/repo/src/analysis/periodicity.cc" "src/analysis/CMakeFiles/rc_analysis.dir/periodicity.cc.o" "gcc" "src/analysis/CMakeFiles/rc_analysis.dir/periodicity.cc.o.d"
  "/root/repo/src/analysis/spearman.cc" "src/analysis/CMakeFiles/rc_analysis.dir/spearman.cc.o" "gcc" "src/analysis/CMakeFiles/rc_analysis.dir/spearman.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/rc_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/rc_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
