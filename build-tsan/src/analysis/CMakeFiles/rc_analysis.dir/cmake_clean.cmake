file(REMOVE_RECURSE
  "CMakeFiles/rc_analysis.dir/characterization.cc.o"
  "CMakeFiles/rc_analysis.dir/characterization.cc.o.d"
  "CMakeFiles/rc_analysis.dir/periodicity.cc.o"
  "CMakeFiles/rc_analysis.dir/periodicity.cc.o.d"
  "CMakeFiles/rc_analysis.dir/spearman.cc.o"
  "CMakeFiles/rc_analysis.dir/spearman.cc.o.d"
  "librc_analysis.a"
  "librc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
