file(REMOVE_RECURSE
  "CMakeFiles/rc_store.dir/disk_cache.cc.o"
  "CMakeFiles/rc_store.dir/disk_cache.cc.o.d"
  "CMakeFiles/rc_store.dir/kv_store.cc.o"
  "CMakeFiles/rc_store.dir/kv_store.cc.o.d"
  "librc_store.a"
  "librc_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
