
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/disk_cache.cc" "src/store/CMakeFiles/rc_store.dir/disk_cache.cc.o" "gcc" "src/store/CMakeFiles/rc_store.dir/disk_cache.cc.o.d"
  "/root/repo/src/store/kv_store.cc" "src/store/CMakeFiles/rc_store.dir/kv_store.cc.o" "gcc" "src/store/CMakeFiles/rc_store.dir/kv_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
