file(REMOVE_RECURSE
  "librc_store.a"
)
