# Empty dependencies file for rc_store.
# This may be replaced when dependencies are built.
