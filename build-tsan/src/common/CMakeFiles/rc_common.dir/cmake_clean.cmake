file(REMOVE_RECURSE
  "CMakeFiles/rc_common.dir/buckets.cc.o"
  "CMakeFiles/rc_common.dir/buckets.cc.o.d"
  "CMakeFiles/rc_common.dir/cdf.cc.o"
  "CMakeFiles/rc_common.dir/cdf.cc.o.d"
  "CMakeFiles/rc_common.dir/csv.cc.o"
  "CMakeFiles/rc_common.dir/csv.cc.o.d"
  "CMakeFiles/rc_common.dir/histogram.cc.o"
  "CMakeFiles/rc_common.dir/histogram.cc.o.d"
  "CMakeFiles/rc_common.dir/rng.cc.o"
  "CMakeFiles/rc_common.dir/rng.cc.o.d"
  "CMakeFiles/rc_common.dir/stats.cc.o"
  "CMakeFiles/rc_common.dir/stats.cc.o.d"
  "CMakeFiles/rc_common.dir/table_printer.cc.o"
  "CMakeFiles/rc_common.dir/table_printer.cc.o.d"
  "librc_common.a"
  "librc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
