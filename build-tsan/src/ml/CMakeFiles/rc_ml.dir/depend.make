# Empty dependencies file for rc_ml.
# This may be replaced when dependencies are built.
