file(REMOVE_RECURSE
  "CMakeFiles/rc_ml.dir/classifier.cc.o"
  "CMakeFiles/rc_ml.dir/classifier.cc.o.d"
  "CMakeFiles/rc_ml.dir/dataset.cc.o"
  "CMakeFiles/rc_ml.dir/dataset.cc.o.d"
  "CMakeFiles/rc_ml.dir/fft.cc.o"
  "CMakeFiles/rc_ml.dir/fft.cc.o.d"
  "CMakeFiles/rc_ml.dir/gbt.cc.o"
  "CMakeFiles/rc_ml.dir/gbt.cc.o.d"
  "CMakeFiles/rc_ml.dir/metrics.cc.o"
  "CMakeFiles/rc_ml.dir/metrics.cc.o.d"
  "CMakeFiles/rc_ml.dir/random_forest.cc.o"
  "CMakeFiles/rc_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/rc_ml.dir/tree.cc.o"
  "CMakeFiles/rc_ml.dir/tree.cc.o.d"
  "librc_ml.a"
  "librc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
