file(REMOVE_RECURSE
  "librc_ml.a"
)
