file(REMOVE_RECURSE
  "CMakeFiles/rc_core.dir/client.cc.o"
  "CMakeFiles/rc_core.dir/client.cc.o.d"
  "CMakeFiles/rc_core.dir/evaluation.cc.o"
  "CMakeFiles/rc_core.dir/evaluation.cc.o.d"
  "CMakeFiles/rc_core.dir/feature_data.cc.o"
  "CMakeFiles/rc_core.dir/feature_data.cc.o.d"
  "CMakeFiles/rc_core.dir/featurizer.cc.o"
  "CMakeFiles/rc_core.dir/featurizer.cc.o.d"
  "CMakeFiles/rc_core.dir/model_spec.cc.o"
  "CMakeFiles/rc_core.dir/model_spec.cc.o.d"
  "CMakeFiles/rc_core.dir/offline_pipeline.cc.o"
  "CMakeFiles/rc_core.dir/offline_pipeline.cc.o.d"
  "CMakeFiles/rc_core.dir/prediction.cc.o"
  "CMakeFiles/rc_core.dir/prediction.cc.o.d"
  "librc_core.a"
  "librc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
