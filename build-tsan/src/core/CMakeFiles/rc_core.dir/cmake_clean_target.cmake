file(REMOVE_RECURSE
  "librc_core.a"
)
