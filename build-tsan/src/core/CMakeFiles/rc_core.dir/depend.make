# Empty dependencies file for rc_core.
# This may be replaced when dependencies are built.
