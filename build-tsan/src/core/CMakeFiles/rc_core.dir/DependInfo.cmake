
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/rc_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/client.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/rc_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/feature_data.cc" "src/core/CMakeFiles/rc_core.dir/feature_data.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/feature_data.cc.o.d"
  "/root/repo/src/core/featurizer.cc" "src/core/CMakeFiles/rc_core.dir/featurizer.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/featurizer.cc.o.d"
  "/root/repo/src/core/model_spec.cc" "src/core/CMakeFiles/rc_core.dir/model_spec.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/model_spec.cc.o.d"
  "/root/repo/src/core/offline_pipeline.cc" "src/core/CMakeFiles/rc_core.dir/offline_pipeline.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/offline_pipeline.cc.o.d"
  "/root/repo/src/core/prediction.cc" "src/core/CMakeFiles/rc_core.dir/prediction.cc.o" "gcc" "src/core/CMakeFiles/rc_core.dir/prediction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/rc_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/rc_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/analysis/CMakeFiles/rc_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/store/CMakeFiles/rc_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
