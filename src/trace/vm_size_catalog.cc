#include "src/trace/vm_size_catalog.h"

namespace rc::trace {

namespace {
// Catalog order must match the weight vectors below.
std::vector<VmSizeSpec> MakeSizes() {
  return {
      {"A0", 1, 0.75}, {"A1", 1, 1.75}, {"A2", 2, 3.5},  {"A3", 4, 7.0},
      {"A4", 8, 14.0}, {"D1", 1, 3.5},  {"D2", 2, 7.0},  {"D3", 4, 14.0},
      {"D4", 8, 28.0}, {"D5", 16, 56.0}, {"D11", 2, 14.0}, {"D12", 4, 28.0},
      {"D13", 8, 56.0}, {"D14", 16, 112.0},
  };
}

// Weights calibrated so that, pooled over both parties, ~78% of VMs have 1-2
// cores and ~70% have < 4 GB, with the first/third-party skews of Fig. 2-3.
//                          A0    A1    A2    A3   A4   D1    D2   D3   D4   D5   D11  D12  D13  D14
// (First-party VM-creation-test VMs are additionally forced to A0/A1 by the
// workload model, which lifts the realized first-party share of tiny sizes;
// the A0 weights below compensate so the *realized* mix keeps the paper's
// third-party skew toward 0.75 GB.)
const double kFirstMix[] = {2.0, 32.0, 21.0, 10.0, 3.0, 11.0, 8.0, 5.0, 1.6, 0.8, 2.5, 1.2, 0.5, 0.2};
const double kThirdMix[] = {12.0, 20.0, 17.0, 9.0, 2.5, 20.0, 9.0, 6.0, 2.0, 1.0, 2.5, 1.2, 0.6, 0.2};
}  // namespace

VmSizeCatalog::VmSizeCatalog()
    : sizes_(MakeSizes()),
      first_party_mix_(std::vector<double>(std::begin(kFirstMix), std::end(kFirstMix))),
      third_party_mix_(std::vector<double>(std::begin(kThirdMix), std::end(kThirdMix))) {}

int VmSizeCatalog::SampleIndex(Party party, Rng& rng) const {
  const DiscreteSampler& mix =
      party == Party::kFirst ? first_party_mix_ : third_party_mix_;
  return static_cast<int>(mix.Sample(rng));
}

int VmSizeCatalog::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < sizes_.size(); ++i) {
    if (sizes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rc::trace
