// Trace container: the synthetic analogue of the paper's three-month Azure
// dataset, with subscription profiles (latent) and per-VM records sorted by
// creation time.
#ifndef RC_SRC_TRACE_TRACE_H_
#define RC_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/trace/vm_types.h"

namespace rc::trace {

class Trace {
 public:
  Trace() = default;
  Trace(std::vector<SubscriptionProfile> subscriptions, std::vector<VmRecord> vms,
        SimDuration observation_window);

  const std::vector<SubscriptionProfile>& subscriptions() const { return subscriptions_; }
  const std::vector<VmRecord>& vms() const { return vms_; }
  std::vector<VmRecord>& mutable_vms() { return vms_; }
  SimDuration observation_window() const { return observation_window_; }

  size_t vm_count() const { return vms_.size(); }

  // Indices (into vms()) of the VMs of each subscription, in creation order.
  const std::vector<size_t>& VmsOfSubscription(uint64_t subscription_id) const;

  const SubscriptionProfile* FindSubscription(uint64_t subscription_id) const;

  // VMs whose whole lifetime falls within the observation window — the
  // population over which the paper states lifetime distributions (94% of
  // its dataset).
  std::vector<const VmRecord*> CompletedVms() const;

  // VMs created at or after `from` (e.g. the test month for Table 4).
  std::vector<const VmRecord*> VmsCreatedIn(SimTime from, SimTime to) const;

  // Rebuilds the subscription index; called by the constructor and after
  // external mutation of vms().
  void RebuildIndex();

 private:
  std::vector<SubscriptionProfile> subscriptions_;
  std::vector<VmRecord> vms_;  // sorted by created
  SimDuration observation_window_ = 0;
  std::unordered_map<uint64_t, std::vector<size_t>> by_subscription_;
  std::unordered_map<uint64_t, size_t> subscription_index_;
};

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_TRACE_H_
