// Generative model of an Azure-like VM workload, calibrated against every
// distribution the paper publishes (Section 3 figures and the bucket
// marginals in Table 4):
//
//  * VM type: ~52/48 IaaS/PaaS overall; 96% of subscriptions single-type.
//  * Avg CPU bucket marginal ~{74,19,6,2}% and P95-max marginal
//    ~{25,15,14,46}% (Table 4), with first-party lower than third (Fig. 1).
//  * Sizes: ~80% of VMs with 1-2 cores, ~70% under 4 GB (Figs. 2-3).
//  * Deployments: ~{49,40,10,1}% across the {1, 2-10, 11-100, >100} buckets
//    (Fig. 4 / Table 4).
//  * Lifetimes: ~{29,32,32,7}% across {<=15m, 15-60m, 1-24h, >24h}, Pareto
//    tail beyond one day so that a few percent of VMs dominate core-hours
//    (Fig. 5); 15% of first-party VMs are short-lived creation-test VMs.
//  * Workload class: interactive VMs are long-lived diurnal services; they
//    are ~1% of classifiable VMs by count but hold a large share (~28%) of
//    core-hours because resident interactive services span the window
//    (Fig. 6). Delay-insensitive VMs dominate.
//  * Arrivals: heavy-tailed (Weibull) and diurnal/weekly (Fig. 7).
//
// Crucially, behaviour is planted at the *subscription* level: each
// subscription has a dominant bucket per metric and a consistency parameter,
// which is exactly the "history predicts the future" structure the paper
// measures (CoV < 1 for most subscriptions) and that RC's per-subscription
// features exploit. Prediction accuracy in our Table 4 reproduction is an
// emergent property of this structure, not hard-wired.
#ifndef RC_SRC_TRACE_WORKLOAD_MODEL_H_
#define RC_SRC_TRACE_WORKLOAD_MODEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/trace/arrival_process.h"
#include "src/trace/trace.h"
#include "src/trace/vm_size_catalog.h"
#include "src/trace/vm_types.h"

namespace rc::trace {

struct WorkloadConfig {
  uint64_t seed = 42;
  // Approximate number of VMs to generate (the generator stops once reached).
  int64_t target_vm_count = 100'000;
  // Observation window (the paper's dataset spans three months).
  SimDuration duration = 90 * kDay;
  int num_subscriptions = 2'000;
  int num_regions = 6;

  double frac_first_party = 0.55;
  // Fraction of first-party VMs that are VM-creation test workloads
  // (created and quickly killed, near-zero utilization). Paper: 15%.
  double first_party_test_frac = 0.15;
  // P(first-party subscription is tagged production). Third-party
  // subscriptions are always treated as production. Tuned so ~71% of VMs
  // carry the production tag, matching the scheduler study.
  double first_party_production_prob = 0.55;

  // Dominant-VM-type probabilities (Section 3.1).
  double first_party_iaas_prob = 0.53;
  double third_party_iaas_prob = 0.47;
  double single_type_subscription_frac = 0.96;

  // Per-party avg-CPU bucket marginals (Table 4 row 1, split by party so the
  // pooled marginal lands at ~{74,19,6,2}% with first party lower, Fig. 1).
  std::array<double, 4> first_avg_util_marginal = {0.80, 0.15, 0.04, 0.01};
  std::array<double, 4> third_avg_util_marginal = {0.64, 0.25, 0.08, 0.03};
  // P(p95 bucket | avg bucket = 0), per party; rows for avg buckets 1..3 are
  // fixed in the implementation (mass shifts to high p95 as avg grows).
  std::array<double, 4> first_p95_given_low_avg = {0.40, 0.20, 0.15, 0.25};
  std::array<double, 4> third_p95_given_low_avg = {0.22, 0.18, 0.13, 0.47};

  // Per-party lifetime bucket marginals (pooled ~{29,32,32,7}%).
  std::array<double, 4> first_lifetime_marginal = {0.36, 0.30, 0.28, 0.06};
  std::array<double, 4> third_lifetime_marginal = {0.20, 0.31, 0.40, 0.09};
  // Pareto tail index for lifetimes beyond 24h and cap in days.
  double lifetime_tail_alpha = 0.68;
  double lifetime_cap_days = 150.0;

  // Deployment-size (#VMs) bucket marginal per deployment *event* (Fig. 4 /
  // Table 4). The realized per-(subscription, region, day) marginal lands
  // near the paper's {49, 40, 10, 1}% after same-day events merge and the
  // arrival weighting (see popularity_cap) is applied.
  std::array<double, 4> deploy_vms_marginal = {0.38, 0.50, 0.11, 0.01};

  // Subscription consistency: the probability that a VM realizes its
  // subscription's dominant bucket is drawn uniformly from this range, which
  // reproduces "80% of subscriptions have CoV < 1" style observations and
  // sets the ceiling for prediction accuracy.
  double min_metric_consistency = 0.72;
  double max_metric_consistency = 0.97;

  // Interactive residents: long-lived diurnal services created near the
  // start of the window (gaming / communication style first-party services).
  double resident_interactive_vm_frac = 0.008;
  // Probability that a non-resident subscription is interactive-leaning.
  // Interactive churn is rare: most interactive capacity is resident services
  // (which is why ~99% of newly created classifiable VMs are
  // delay-insensitive, Table 4, while interactive still holds a large share
  // of core-hours, Fig. 6).
  double interactive_subscription_frac = 0.004;

  // Cap on any single subscription's share of deployment arrivals. The
  // default reproduces the bursty, Zipf-skewed mix of Fig. 7; the scheduler
  // study lowers it so cluster-scale results are not dominated by one
  // subscription's lucky profile draw.
  double popularity_cap = 0.01;

  ArrivalConfig arrivals;  // peak inter-arrival is overridden; see .cc
};

class WorkloadModel {
 public:
  explicit WorkloadModel(WorkloadConfig config);

  // Generates the full trace: subscription profiles plus VM records sorted
  // by creation time. Deterministic for a given config.
  Trace Generate();

  const VmSizeCatalog& catalog() const { return catalog_; }

 private:
  SubscriptionProfile MakeSubscription(uint64_t id, Rng& rng);
  // Samples one VM of the given subscription, created at `created`.
  VmRecord MakeVm(const SubscriptionProfile& sub, uint64_t vm_id, uint64_t deployment_id,
                  int region, SimTime created, Rng& rng);

  int SampleVmBucket(int dominant, const std::array<double, 4>& marginal,
                     double consistency, Rng& rng) const;
  double SampleAvgUtil(int bucket, Party party, Rng& rng) const;
  int SampleP95Bucket(int avg_bucket, Party party, Rng& rng) const;
  SimDuration SampleLifetime(int bucket, double sub_pos, bool test_vm, Rng& rng) const;
  int64_t SampleDeploymentVmCount(int bucket, Rng& rng) const;

  WorkloadConfig config_;
  VmSizeCatalog catalog_;
};

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_WORKLOAD_MODEL_H_
