#include "src/trace/trace.h"

#include <algorithm>

namespace rc::trace {

Trace::Trace(std::vector<SubscriptionProfile> subscriptions, std::vector<VmRecord> vms,
             SimDuration observation_window)
    : subscriptions_(std::move(subscriptions)),
      vms_(std::move(vms)),
      observation_window_(observation_window) {
  std::sort(vms_.begin(), vms_.end(),
            [](const VmRecord& a, const VmRecord& b) {
              if (a.created != b.created) return a.created < b.created;
              return a.vm_id < b.vm_id;
            });
  RebuildIndex();
}

void Trace::RebuildIndex() {
  by_subscription_.clear();
  subscription_index_.clear();
  for (size_t i = 0; i < vms_.size(); ++i) {
    by_subscription_[vms_[i].subscription_id].push_back(i);
  }
  for (size_t i = 0; i < subscriptions_.size(); ++i) {
    subscription_index_[subscriptions_[i].subscription_id] = i;
  }
}

const std::vector<size_t>& Trace::VmsOfSubscription(uint64_t subscription_id) const {
  static const std::vector<size_t> kEmpty;
  auto it = by_subscription_.find(subscription_id);
  return it == by_subscription_.end() ? kEmpty : it->second;
}

const SubscriptionProfile* Trace::FindSubscription(uint64_t subscription_id) const {
  auto it = subscription_index_.find(subscription_id);
  return it == subscription_index_.end() ? nullptr : &subscriptions_[it->second];
}

std::vector<const VmRecord*> Trace::CompletedVms() const {
  std::vector<const VmRecord*> out;
  out.reserve(vms_.size());
  for (const auto& vm : vms_) {
    if (vm.created >= 0 && vm.deleted <= observation_window_) out.push_back(&vm);
  }
  return out;
}

std::vector<const VmRecord*> Trace::VmsCreatedIn(SimTime from, SimTime to) const {
  std::vector<const VmRecord*> out;
  for (const auto& vm : vms_) {
    if (vm.created >= from && vm.created < to) out.push_back(&vm);
  }
  return out;
}

}  // namespace rc::trace
