// Azure-like VM size catalog (A- and D-series circa 2016) with the
// population weights that reproduce Figures 2 and 3 of the paper: ~80% of
// VMs have 1-2 cores and ~70% have less than 4 GB of memory, with third-party
// customers favouring 0.75 GB and 3.5 GB sizes and first-party favouring
// 1.75 GB.
#ifndef RC_SRC_TRACE_VM_SIZE_CATALOG_H_
#define RC_SRC_TRACE_VM_SIZE_CATALOG_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/vm_types.h"

namespace rc::trace {

struct VmSizeSpec {
  std::string name;
  int cores;
  double memory_gb;
};

class VmSizeCatalog {
 public:
  VmSizeCatalog();

  const std::vector<VmSizeSpec>& sizes() const { return sizes_; }
  const VmSizeSpec& at(int index) const { return sizes_.at(static_cast<size_t>(index)); }
  int size_count() const { return static_cast<int>(sizes_.size()); }

  // Samples a size index from the party-specific population mix.
  int SampleIndex(Party party, Rng& rng) const;

  // Index of the spec with the given name; -1 if absent.
  int IndexOf(const std::string& name) const;

 private:
  std::vector<VmSizeSpec> sizes_;
  DiscreteSampler first_party_mix_;
  DiscreteSampler third_party_mix_;
};

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_VM_SIZE_CATALOG_H_
