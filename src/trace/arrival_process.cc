#include "src/trace/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace rc::trace {

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {}

double ArrivalProcess::RateFactor(SimTime t) const {
  double hour = static_cast<double>(t % kDay) / kHour;
  // Cosine day shape: 1 at peak_hour, night_level at the trough.
  double phase = std::cos(2.0 * std::numbers::pi * (hour - config_.peak_hour) / 24.0);
  double day_shape =
      config_.night_level + (1.0 - config_.night_level) * 0.5 * (1.0 + phase);
  double week = IsWeekend(t) ? config_.weekend_level : 1.0;
  return std::max(1e-3, day_shape * week);
}

SimTime ArrivalProcess::NextArrival() {
  // Weibull gap with mean equal to peak_mean_interarrival / current rate.
  // Mean of Weibull(k, lambda) is lambda * Gamma(1 + 1/k); solve for lambda.
  double rate = RateFactor(t_);
  double target_mean = config_.peak_mean_interarrival_s / rate;
  double k = config_.weibull_shape;
  double lambda = target_mean / std::tgamma(1.0 + 1.0 / k);
  double gap = rng_.Weibull(k, lambda);
  SimTime next = t_ + std::max<SimTime>(1, static_cast<SimTime>(std::llround(gap)));
  t_ = next;
  return next;
}

}  // namespace rc::trace
