#include "src/trace/workload_model.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/buckets.h"
#include "src/trace/utilization.h"

namespace rc::trace {

namespace {

// P(p95 bucket | avg bucket) rows for avg buckets 1..3 (bucket 0 is
// party-specific, see WorkloadConfig). As average utilization grows, the
// 95th percentile mass concentrates in the top bucket.
const std::array<double, 4> kP95GivenAvg1 = {0.0, 0.05, 0.15, 0.80};
const std::array<double, 4> kP95GivenAvg2 = {0.0, 0.00, 0.10, 0.90};
const std::array<double, 4> kP95GivenAvg3 = {0.0, 0.00, 0.00, 1.00};

// Mean #VMs per deployment implied by a bucket marginal; used to size the
// arrival process so the target VM count lands inside the window.
double MeanDeploymentVms(const std::array<double, 4>& marginal) {
  return marginal[0] * 1.0 + marginal[1] * 4.5 + marginal[2] * 30.0 + marginal[3] * 160.0;
}

size_t SampleFrom(const std::array<double, 4>& marginal, Rng& rng) {
  return rng.Categorical(std::vector<double>(marginal.begin(), marginal.end()));
}

// Uniform-in-log sample in [lo, hi].
double LogUniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
}

const char* kPaasRoles[] = {"WebRole", "WorkerRole", "CacheRole", "DbRole"};

}  // namespace

WorkloadModel::WorkloadModel(WorkloadConfig config) : config_(std::move(config)) {}

SubscriptionProfile WorkloadModel::MakeSubscription(uint64_t id, Rng& rng) {
  SubscriptionProfile sub;
  sub.subscription_id = id;
  sub.party = rng.Bernoulli(config_.frac_first_party) ? Party::kFirst : Party::kThird;

  double iaas_prob = sub.party == Party::kFirst ? config_.first_party_iaas_prob
                                                : config_.third_party_iaas_prob;
  sub.dominant_type = rng.Bernoulli(iaas_prob) ? VmType::kIaas : VmType::kPaas;
  sub.type_consistency =
      rng.Bernoulli(config_.single_type_subscription_frac) ? 1.0 : 0.7;

  sub.dominant_os =
      rng.Bernoulli(sub.party == Party::kFirst ? 0.45 : 0.55) ? GuestOs::kLinux
                                                              : GuestOs::kWindows;
  sub.tag = (sub.party == Party::kFirst &&
             !rng.Bernoulli(config_.first_party_production_prob))
                ? DeploymentTag::kNonProduction
                : DeploymentTag::kProduction;

  if (sub.party == Party::kFirst && rng.Bernoulli(0.6)) {
    // Zipf-ish assignment over 20 named top services.
    int svc = static_cast<int>(std::min<double>(19.0, std::floor(rng.Pareto(1.0, 1.2)) - 1.0));
    sub.service_name = "svc-" + std::to_string(svc);
  } else {
    sub.service_name = "unknown";
  }
  sub.home_region = static_cast<int32_t>(rng.UniformInt(0, config_.num_regions - 1));

  const auto& avg_marginal = sub.party == Party::kFirst ? config_.first_avg_util_marginal
                                                        : config_.third_avg_util_marginal;
  sub.avg_util_bucket = static_cast<int>(SampleFrom(avg_marginal, rng));
  sub.p95_util_bucket = SampleP95Bucket(sub.avg_util_bucket, sub.party, rng);
  const auto& life_marginal = sub.party == Party::kFirst ? config_.first_lifetime_marginal
                                                         : config_.third_lifetime_marginal;
  sub.lifetime_bucket = static_cast<int>(SampleFrom(life_marginal, rng));
  sub.lifetime_pos = rng.NextDouble();
  sub.deploy_vms_bucket = static_cast<int>(SampleFrom(config_.deploy_vms_marginal, rng));
  sub.metric_consistency =
      rng.Uniform(config_.min_metric_consistency, config_.max_metric_consistency);

  sub.size_index = catalog_.SampleIndex(sub.party, rng);
  sub.size_consistency = rng.Uniform(0.85, 0.98);

  sub.interactive_prob =
      rng.Bernoulli(config_.interactive_subscription_frac) ? 0.85 : 0.001;
  if (sub.interactive_prob > 0.5) {
    // Interactive services are long-running; their subscriptions' dominant
    // lifetime regime is the >24h bucket.
    sub.lifetime_bucket = 3;
  }
  sub.popularity = 1.0;
  return sub;
}

int WorkloadModel::SampleVmBucket(int dominant, const std::array<double, 4>& marginal,
                                  double consistency, Rng& rng) const {
  if (rng.Bernoulli(consistency)) return dominant;
  return static_cast<int>(SampleFrom(marginal, rng));
}

double WorkloadModel::SampleAvgUtil(int bucket, Party party, Rng& rng) const {
  double u = rng.NextDouble();
  // Skew toward the low end of the bucket; first party skews harder (Fig. 1).
  double power = party == Party::kFirst ? 1.7 : 1.2;
  double lo = 0.25 * bucket;
  return lo + 0.25 * std::pow(u, power);
}

int WorkloadModel::SampleP95Bucket(int avg_bucket, Party party, Rng& rng) const {
  switch (avg_bucket) {
    case 0: {
      const auto& row = party == Party::kFirst ? config_.first_p95_given_low_avg
                                               : config_.third_p95_given_low_avg;
      return static_cast<int>(SampleFrom(row, rng));
    }
    case 1: return static_cast<int>(SampleFrom(kP95GivenAvg1, rng));
    case 2: return static_cast<int>(SampleFrom(kP95GivenAvg2, rng));
    default: return static_cast<int>(SampleFrom(kP95GivenAvg3, rng));
  }
}

SimDuration WorkloadModel::SampleLifetime(int bucket, double sub_pos, bool test_vm,
                                          Rng& rng) const {
  // VMs cluster around their subscription's preferred log-position within
  // the bucket; the jitter keeps individual variety while holding most
  // subscriptions' lifetime CoV under 1 (Section 3.5).
  auto positioned = [&](double lo, double hi) {
    double pos = std::clamp(sub_pos + rng.Normal(0.0, 0.18), 0.0, 1.0);
    return std::exp(std::log(lo) + (std::log(hi) - std::log(lo)) * pos);
  };
  switch (bucket) {
    case 0:
      if (test_vm) return static_cast<SimDuration>(rng.Uniform(20.0, 8.0 * kMinute));
      return static_cast<SimDuration>(positioned(1.0 * kMinute, 15.0 * kMinute));
    case 1:
      return static_cast<SimDuration>(positioned(15.0 * kMinute, 60.0 * kMinute));
    case 2:
      return static_cast<SimDuration>(positioned(1.0 * kHour, 24.0 * kHour));
    default: {
      double days = rng.Pareto(1.0, config_.lifetime_tail_alpha);
      days = std::min(days, config_.lifetime_cap_days);
      return static_cast<SimDuration>(days * kDay);
    }
  }
}

int64_t WorkloadModel::SampleDeploymentVmCount(int bucket, Rng& rng) const {
  switch (bucket) {
    case 0: return 1;
    case 1: {
      double u = rng.NextDouble();
      return 1 + static_cast<int64_t>(std::ceil(9.0 * std::pow(u, 1.6)));
    }
    case 2: return static_cast<int64_t>(std::llround(LogUniform(rng, 11.0, 100.0)));
    default: return static_cast<int64_t>(std::llround(LogUniform(rng, 101.0, 400.0)));
  }
}

VmRecord WorkloadModel::MakeVm(const SubscriptionProfile& sub, uint64_t vm_id,
                               uint64_t deployment_id, int region, SimTime created,
                               Rng& rng) {
  VmRecord vm;
  vm.vm_id = vm_id;
  vm.deployment_id = deployment_id;
  vm.subscription_id = sub.subscription_id;
  vm.region = region;
  vm.party = sub.party;
  vm.tag = sub.tag;
  vm.service_name = sub.service_name;

  vm.vm_type = rng.Bernoulli(sub.type_consistency)
                   ? sub.dominant_type
                   : (sub.dominant_type == VmType::kIaas ? VmType::kPaas : VmType::kIaas);
  vm.role_name = vm.vm_type == VmType::kIaas
                     ? "IaaS"
                     : kPaasRoles[rng.UniformInt(0, 3)];
  vm.guest_os = rng.Bernoulli(0.93) ? sub.dominant_os
                                    : (sub.dominant_os == GuestOs::kLinux
                                           ? GuestOs::kWindows
                                           : GuestOs::kLinux);

  bool test_vm = sub.party == Party::kFirst && rng.Bernoulli(config_.first_party_test_frac);

  int size_index = rng.Bernoulli(sub.size_consistency)
                       ? sub.size_index
                       : catalog_.SampleIndex(sub.party, rng);
  if (test_vm) size_index = rng.Bernoulli(0.5) ? 0 : 1;  // A0/A1
  const VmSizeSpec& spec = catalog_.at(size_index);
  vm.cores = spec.cores;
  vm.memory_gb = spec.memory_gb;

  // --- Lifetime ---
  const auto& life_marginal = sub.party == Party::kFirst
                                  ? config_.first_lifetime_marginal
                                  : config_.third_lifetime_marginal;
  int life_bucket = test_vm ? 0
                            : SampleVmBucket(sub.lifetime_bucket, life_marginal,
                                             sub.metric_consistency, rng);
  SimDuration lifetime = SampleLifetime(life_bucket, sub.lifetime_pos, test_vm, rng);
  // Only VMs that actually run >= 3 days can express (and be classified by)
  // diurnal periodicity; interactive-ness is gated on the drawn lifetime
  // rather than distorting the lifetime distribution.
  bool interactive =
      !test_vm && lifetime >= 3 * kDay && rng.Bernoulli(sub.interactive_prob);
  vm.created = created;
  vm.deleted = created + std::max<SimDuration>(lifetime, 20);

  // --- Utilization ---
  const auto& avg_marginal = sub.party == Party::kFirst ? config_.first_avg_util_marginal
                                                        : config_.third_avg_util_marginal;
  int avg_bucket = SampleVmBucket(sub.avg_util_bucket, avg_marginal,
                                  sub.metric_consistency, rng);
  double avg_target = test_vm ? rng.Uniform(0.005, 0.03)
                              : SampleAvgUtil(avg_bucket, sub.party, rng);

  int p95_bucket = rng.Bernoulli(sub.metric_consistency)
                       ? sub.p95_util_bucket
                       : SampleP95Bucket(avg_bucket, sub.party, rng);
  p95_bucket = std::max(p95_bucket, avg_bucket);
  if (test_vm) p95_bucket = 0;
  BucketRange p95_range = UtilizationBucketRange(p95_bucket);
  // Couple the within-bucket position of the P95 target to the average's
  // position so the two utilization metrics correlate strongly across the
  // population (Fig. 8), not just at bucket granularity.
  double avg_pos = std::clamp((avg_target - 0.25 * avg_bucket) / 0.25, 0.0, 1.0);
  double pos = 0.5 * rng.NextDouble() + 0.5 * avg_pos;
  double p95_target = std::max(avg_target + 0.02,
                               p95_range.lo + (p95_range.hi - p95_range.lo) * pos);

  UtilizationParams& up = vm.util;
  up.seed = rng.NextU64();
  if (interactive) {
    double amp = std::clamp(avg_target, 0.12, 0.5);
    up.diurnal_amp = amp;
    up.base = std::max(0.02, avg_target - amp / 2.0);
    up.diurnal_phase_h = rng.Uniform(10.0, 18.0);  // peak in working hours
  } else {
    up.diurnal_amp = 0.0;
    up.base = avg_target;
  }
  up.noise_amp = std::max(0.005, 0.2 * avg_target * (1.1 - sub.metric_consistency) * 4.0);
  double avg_peak = up.base + up.diurnal_amp;
  // The burst term's own 95th percentile is ~0.97 * burst_amp (see
  // UtilizationModel); solve for the amplitude that places the per-slot max
  // P95 near the target.
  up.burst_amp = std::clamp((p95_target - avg_peak) / 0.97, 0.01, 1.0);

  auto summary = UtilizationModel::Summarize(vm);
  vm.avg_cpu = summary.avg_cpu;
  vm.p95_max_cpu = summary.p95_max_cpu;

  if (vm.lifetime() < 3 * kDay) {
    vm.true_class = WorkloadClass::kUnknown;
  } else {
    vm.true_class = interactive ? WorkloadClass::kInteractive
                                : WorkloadClass::kDelayInsensitive;
  }
  return vm;
}

Trace WorkloadModel::Generate() {
  Rng master(config_.seed);

  std::vector<SubscriptionProfile> subs;
  subs.reserve(static_cast<size_t>(config_.num_subscriptions));
  for (int i = 0; i < config_.num_subscriptions; ++i) {
    subs.push_back(MakeSubscription(static_cast<uint64_t>(i + 1), master));
  }

  std::vector<VmRecord> vms;
  vms.reserve(static_cast<size_t>(config_.target_vm_count) + 1024);
  uint64_t next_vm_id = 1;
  uint64_t next_deployment_id = 1;

  // --- Resident interactive services (long-lived diurnal, Fig. 6) ---
  // These subscriptions deploy their fleet once near the start of the window
  // and churn very little afterwards, which is also why so few interactive
  // VMs show up among newly created (test-month) VMs in Table 4.
  std::vector<size_t> service_subs;
  int64_t resident_target = static_cast<int64_t>(
      std::llround(config_.resident_interactive_vm_frac *
                   static_cast<double>(config_.target_vm_count)));
  if (resident_target > 0) {
    // Few services, each deploying several cohorts across the bootstrap
    // span, so a service's later deployments see its earlier ones in the
    // subscription history.
    int n_services = std::max<int>(1, static_cast<int>(resident_target / 150));
    // Mark a dedicated slice of subscriptions (either party: first-party
    // communication/gaming services and third-party customer-facing apps)
    // as resident services so their history is self-consistent.
    for (size_t i = 0; i < subs.size() && service_subs.size() < static_cast<size_t>(n_services); ++i) {
      subs[i].interactive_prob = 0.95;
      subs[i].lifetime_bucket = 3;
      subs[i].avg_util_bucket = 1;
      subs[i].p95_util_bucket = std::max(subs[i].p95_util_bucket, 2);
      // Customer-facing services are production workloads.
      subs[i].tag = DeploymentTag::kProduction;
      // Bias toward >=2-core sizes (front ends are slightly larger).
      if (catalog_.at(subs[i].size_index).cores < 2) {
        subs[i].size_index = catalog_.IndexOf("A2");
      }
      service_subs.push_back(i);
    }
  }

  // Zipf popularity (tempered, capped) over a random permutation of the
  // non-service subscriptions: a few subscriptions generate most deployments
  // (driving the arrival burstiness of Fig. 7) without letting any single
  // subscription's dominant buckets visibly distort the population marginals.
  {
    std::vector<size_t> ranks;
    ranks.reserve(subs.size());
    for (size_t i = 0; i < subs.size(); ++i) {
      if (subs[i].interactive_prob < 0.9) ranks.push_back(i);
    }
    master.Shuffle(ranks);
    double total = 0.0;
    std::vector<double> raw(ranks.size());
    for (size_t i = 0; i < ranks.size(); ++i) {
      raw[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.9);
      total += raw[i];
    }
    double cap = config_.popularity_cap * total;
    for (size_t i = 0; i < subs.size(); ++i) subs[i].popularity = 0.0;
    for (size_t i = 0; i < ranks.size(); ++i) {
      SubscriptionProfile& sub = subs[ranks[i]];
      // The cap bounds a subscription's share of *VMs*, not deployments: a
      // subscription whose dominant deployment bucket is large would
      // otherwise dwarf everyone (1% of arrivals x 160-VM deployments is a
      // quarter of the trace) and single-handedly distort the population
      // marginals. Deployment-arrival weight is therefore the capped VM
      // share divided by the subscription's expected deployment size.
      static constexpr double kBucketMeanVms[4] = {1.0, 4.5, 30.0, 160.0};
      double c = sub.metric_consistency;
      double expected_vms =
          c * kBucketMeanVms[sub.deploy_vms_bucket] +
          (1.0 - c) * MeanDeploymentVms(config_.deploy_vms_marginal);
      sub.popularity = std::min(raw[i], cap) / expected_vms;
      // Interactive services deploy occasionally and run for a long time;
      // they contribute few *new* VMs, which is why ~99% of newly created
      // classifiable VMs are delay-insensitive (Table 4) even though
      // interactive VMs hold a large share of core-hours (Fig. 6).
      if (sub.interactive_prob > 0.5) sub.popularity *= 0.3;
    }
  }
  std::vector<double> weights;
  weights.reserve(subs.size());
  for (const auto& s : subs) weights.push_back(s.popularity);
  DiscreteSampler sub_sampler(std::move(weights));

  if (resident_target > 0) {
    int64_t made = 0;
    // Service fleets bootstrap over the first weeks (not one instant), so
    // later service deployments see earlier ones in their subscription
    // history — the signal RC's class model learns from.
    double bootstrap_span = std::min(20.0 * kDay, 0.25 * static_cast<double>(config_.duration));
    for (size_t si = 0; made < resident_target && !service_subs.empty(); ++si) {
      const SubscriptionProfile& sub = subs[service_subs[si % service_subs.size()]];
      SimTime created = static_cast<SimTime>(master.Uniform(0.0, bootstrap_span));
      int region = sub.home_region;
      uint64_t dep = next_deployment_id++;
      int64_t n = std::min<int64_t>(resident_target - made,
                                    master.UniformInt(10, 40));
      for (int64_t k = 0; k < n; ++k) {
        VmRecord vm = MakeVm(sub, next_vm_id++, dep, region,
                             created + master.UniformInt(0, 5 * kMinute), master);
        // Residents span (most of) the window regardless of sampled bucket.
        vm.deleted = vm.created + static_cast<SimDuration>(master.Uniform(
                                      0.7 * static_cast<double>(config_.duration),
                                      1.3 * static_cast<double>(config_.duration)));
        auto summary = UtilizationModel::Summarize(vm);
        vm.avg_cpu = summary.avg_cpu;
        vm.p95_max_cpu = summary.p95_max_cpu;
        vm.true_class = vm.util.diurnal_amp > 0.05 ? WorkloadClass::kInteractive
                                                   : WorkloadClass::kDelayInsensitive;
        vms.push_back(std::move(vm));
        ++made;
      }
    }
  }

  // --- Churn: deployment arrivals over the window ---
  // Expected VMs per deployment under the realized arrival weights (the
  // popularity normalization above deliberately skews arrivals toward
  // small-deployment subscriptions).
  double mean_vms_per_deploy;
  {
    static constexpr double kBucketMeanVms[4] = {1.0, 4.5, 30.0, 160.0};
    double sum_w = 0.0, sum_we = 0.0;
    for (const auto& sub : subs) {
      if (sub.popularity <= 0.0) continue;
      double c = sub.metric_consistency;
      double e = c * kBucketMeanVms[sub.deploy_vms_bucket] +
                 (1.0 - c) * MeanDeploymentVms(config_.deploy_vms_marginal);
      sum_w += sub.popularity;
      sum_we += sub.popularity * e;
    }
    mean_vms_per_deploy = sum_w > 0.0 ? sum_we / sum_w
                                      : MeanDeploymentVms(config_.deploy_vms_marginal);
  }
  double est_deployments =
      static_cast<double>(config_.target_vm_count - resident_target) /
      std::max(1.0, mean_vms_per_deploy);
  // Average rate factor over a week (numerically), to size the peak gap.
  ArrivalConfig acfg = config_.arrivals;
  {
    ArrivalProcess probe(acfg, 1);
    double sum = 0.0;
    int n = 0;
    for (SimTime t = 0; t < kWeek; t += kHour, ++n) sum += probe.RateFactor(t);
    double avg_rf = sum / n;
    acfg.peak_mean_interarrival_s =
        static_cast<double>(config_.duration) * avg_rf / std::max(1.0, est_deployments);
  }
  ArrivalProcess arrivals(acfg, master.NextU64());

  while (static_cast<int64_t>(vms.size()) < config_.target_vm_count) {
    SimTime t = arrivals.NextArrival();
    if (t >= config_.duration) break;
    const SubscriptionProfile& sub = subs[sub_sampler.Sample(master)];
    int region = master.Bernoulli(0.85)
                     ? sub.home_region
                     : static_cast<int>(master.UniformInt(0, config_.num_regions - 1));
    int deploy_bucket = SampleVmBucket(sub.deploy_vms_bucket, config_.deploy_vms_marginal,
                                       sub.metric_consistency, master);
    int64_t n = SampleDeploymentVmCount(deploy_bucket, master);
    uint64_t dep = next_deployment_id++;
    for (int64_t k = 0; k < n; ++k) {
      SimTime created = t + master.UniformInt(0, 5 * kMinute);
      vms.push_back(MakeVm(sub, next_vm_id++, dep, region, created, master));
    }
  }

  return Trace(std::move(subs), std::move(vms), config_.duration);
}

}  // namespace rc::trace
