#include "src/trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/common/csv.h"
#include "src/common/sim_time.h"
#include "src/trace/utilization.h"

namespace rc::trace {

namespace {

const std::vector<std::string> kHeader = {
    "vm_id", "deployment_id", "subscription_id", "region", "party", "vm_type",
    "guest_os", "tag", "role_name", "service_name", "cores", "memory_gb",
    "created", "deleted", "avg_cpu", "p95_max_cpu", "class",
    // Latent generative parameters (for exact round-trip of telemetry).
    "util_seed", "util_base", "util_diurnal_amp", "util_phase_h", "util_noise_amp",
    "util_burst_amp"};

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

Party ParseParty(const std::string& s) {
  if (s == "first") return Party::kFirst;
  if (s == "third") return Party::kThird;
  throw std::runtime_error("bad party: " + s);
}

VmType ParseVmType(const std::string& s) {
  if (s == "IaaS") return VmType::kIaas;
  if (s == "PaaS") return VmType::kPaas;
  throw std::runtime_error("bad vm_type: " + s);
}

GuestOs ParseOs(const std::string& s) {
  if (s == "Linux") return GuestOs::kLinux;
  if (s == "Windows") return GuestOs::kWindows;
  throw std::runtime_error("bad guest_os: " + s);
}

DeploymentTag ParseTag(const std::string& s) {
  if (s == "production") return DeploymentTag::kProduction;
  if (s == "non-production") return DeploymentTag::kNonProduction;
  throw std::runtime_error("bad tag: " + s);
}

WorkloadClass ParseClass(const std::string& s) {
  if (s == "Delay-insensitive") return WorkloadClass::kDelayInsensitive;
  if (s == "Interactive") return WorkloadClass::kInteractive;
  if (s == "Unknown") return WorkloadClass::kUnknown;
  throw std::runtime_error("bad class: " + s);
}

}  // namespace

void WriteVmTable(const Trace& trace, std::ostream& out) {
  CsvWriter writer(out);
  writer.WriteRow(kHeader);
  for (const auto& vm : trace.vms()) {
    writer.WriteRow({
        std::to_string(vm.vm_id), std::to_string(vm.deployment_id),
        std::to_string(vm.subscription_id), std::to_string(vm.region),
        ToString(vm.party), ToString(vm.vm_type), ToString(vm.guest_os),
        ToString(vm.tag), vm.role_name, vm.service_name, std::to_string(vm.cores),
        Fmt(vm.memory_gb), std::to_string(vm.created), std::to_string(vm.deleted),
        Fmt(vm.avg_cpu), Fmt(vm.p95_max_cpu), ToString(vm.true_class),
        std::to_string(vm.util.seed), Fmt(vm.util.base), Fmt(vm.util.diurnal_amp),
        Fmt(vm.util.diurnal_phase_h), Fmt(vm.util.noise_amp), Fmt(vm.util.burst_amp),
    });
  }
}

void WriteReadings(const VmRecord& vm, std::ostream& out) {
  CsvWriter writer(out);
  writer.WriteRow({"vm_id", "timestamp", "min_cpu", "avg_cpu", "max_cpu"});
  for (int64_t slot = SlotIndex(vm.created); slot < SlotIndex(vm.deleted); ++slot) {
    CpuReading r = UtilizationModel::ReadingAt(vm, slot);
    writer.WriteRow({std::to_string(vm.vm_id), std::to_string(SlotStart(slot)),
                     Fmt(r.min_cpu), Fmt(r.avg_cpu), Fmt(r.max_cpu)});
  }
}

Trace ReadVmTable(std::istream& in, SimDuration observation_window) {
  CsvReader reader(in);
  std::vector<std::string> row;
  if (!reader.ReadRow(row) || row != kHeader) {
    throw std::runtime_error("ReadVmTable: missing or mismatched header");
  }
  std::vector<VmRecord> vms;
  while (reader.ReadRow(row)) {
    if (row.size() != kHeader.size()) {
      throw std::runtime_error("ReadVmTable: wrong field count");
    }
    VmRecord vm;
    size_t i = 0;
    vm.vm_id = std::stoull(row[i++]);
    vm.deployment_id = std::stoull(row[i++]);
    vm.subscription_id = std::stoull(row[i++]);
    vm.region = std::stoi(row[i++]);
    vm.party = ParseParty(row[i++]);
    vm.vm_type = ParseVmType(row[i++]);
    vm.guest_os = ParseOs(row[i++]);
    vm.tag = ParseTag(row[i++]);
    vm.role_name = row[i++];
    vm.service_name = row[i++];
    vm.cores = std::stoi(row[i++]);
    vm.memory_gb = std::stod(row[i++]);
    vm.created = std::stoll(row[i++]);
    vm.deleted = std::stoll(row[i++]);
    vm.avg_cpu = std::stod(row[i++]);
    vm.p95_max_cpu = std::stod(row[i++]);
    vm.true_class = ParseClass(row[i++]);
    vm.util.seed = std::stoull(row[i++]);
    vm.util.base = std::stod(row[i++]);
    vm.util.diurnal_amp = std::stod(row[i++]);
    vm.util.diurnal_phase_h = std::stod(row[i++]);
    vm.util.noise_amp = std::stod(row[i++]);
    vm.util.burst_amp = std::stod(row[i++]);
    vms.push_back(std::move(vm));
  }
  return Trace({}, std::move(vms), observation_window);
}

void WriteVmTableFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  WriteVmTable(trace, out);
}

Trace ReadVmTableFile(const std::string& path, SimDuration observation_window) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadVmTable(in, observation_window);
}

}  // namespace rc::trace
