// Core schema for the synthetic Azure-like VM trace. Field layout mirrors the
// AzurePublicDataset "vmtable" published alongside the paper: every VM carries
// identifiers (VM, deployment, subscription), size, creation/termination
// times, and utilization summaries, plus the latent generative parameters we
// use to synthesize its 5-minute telemetry deterministically.
#ifndef RC_SRC_TRACE_VM_TYPES_H_
#define RC_SRC_TRACE_VM_TYPES_H_

#include <cstdint>
#include <string>

#include "src/common/sim_time.h"

namespace rc::trace {

enum class Party : uint8_t { kFirst = 0, kThird = 1 };
enum class VmType : uint8_t { kIaas = 0, kPaas = 1 };
enum class GuestOs : uint8_t { kLinux = 0, kWindows = 1 };
// First-party subscriptions carry a production / non-production annotation;
// Algorithm 1 only oversubscribes with non-production VMs.
enum class DeploymentTag : uint8_t { kProduction = 0, kNonProduction = 1 };
enum class WorkloadClass : uint8_t {
  kDelayInsensitive = 0,
  kInteractive = 1,
  kUnknown = 2,  // lived < 3 days; periodicity cannot be established
};

const char* ToString(Party p);
const char* ToString(VmType t);
const char* ToString(GuestOs os);
const char* ToString(DeploymentTag t);
const char* ToString(WorkloadClass c);

// One 5-minute utilization reading: min/avg/max virtual CPU utilization as a
// fraction of the VM's allocation in [0, 1].
struct CpuReading {
  double min_cpu = 0.0;
  double avg_cpu = 0.0;
  double max_cpu = 0.0;
};

// Latent parameters of the per-VM utilization process. These are *generative*
// state, deterministic given the VM; the observable telemetry is derived from
// them by UtilizationModel. Resource Central never reads them directly.
struct UtilizationParams {
  uint64_t seed = 0;        // noise stream seed
  double base = 0.1;        // baseline average utilization (fraction)
  double diurnal_amp = 0.0; // amplitude of the 24h component (interactive VMs)
  double diurnal_phase_h = 0.0;  // peak offset in hours
  double noise_amp = 0.02;  // smooth value-noise amplitude
  double burst_amp = 0.1;   // spiky max-over-slot headroom above avg
};

struct VmRecord {
  uint64_t vm_id = 0;
  uint64_t deployment_id = 0;
  uint64_t subscription_id = 0;
  int32_t region = 0;

  Party party = Party::kFirst;
  VmType vm_type = VmType::kIaas;
  GuestOs guest_os = GuestOs::kLinux;
  DeploymentTag tag = DeploymentTag::kProduction;

  // PaaS role name ("WebRole", "WorkerRole", ...) or "IaaS".
  std::string role_name;
  // Top first-party service name, or "unknown" (third-party / small services).
  std::string service_name;

  int32_t cores = 1;
  double memory_gb = 1.75;

  SimTime created = 0;
  SimTime deleted = 0;  // termination time; may exceed the observation window

  UtilizationParams util;

  // Ground-truth summaries computed from the synthesized telemetry at
  // generation time (what the telemetry pipeline would aggregate).
  double avg_cpu = 0.0;      // lifetime average of avg readings
  double p95_max_cpu = 0.0;  // 95th percentile of per-slot max readings
  WorkloadClass true_class = WorkloadClass::kUnknown;

  SimDuration lifetime() const { return deleted - created; }
  double CoreHours() const {
    return static_cast<double>(cores) * static_cast<double>(lifetime()) / kHour;
  }
};

// Latent per-subscription profile. Subscriptions are the unit of behavioural
// consistency in the paper (Section 3): VMs of a subscription mostly share a
// type, size, utilization level, lifetime regime, and workload class.
struct SubscriptionProfile {
  uint64_t subscription_id = 0;
  Party party = Party::kFirst;
  VmType dominant_type = VmType::kIaas;
  double type_consistency = 1.0;  // probability a VM uses the dominant type
  GuestOs dominant_os = GuestOs::kLinux;
  DeploymentTag tag = DeploymentTag::kProduction;
  std::string service_name;  // "unknown" unless a top first-party service
  int32_t home_region = 0;

  // Dominant bucket + consistency per metric (see common/buckets.h).
  int avg_util_bucket = 0;
  int p95_util_bucket = 0;
  int lifetime_bucket = 0;
  // Preferred position within the lifetime bucket (0 = short end, 1 = long
  // end): VMs cluster around it, which is what keeps most subscriptions'
  // lifetime CoV below 1 (Section 3.5) despite buckets spanning decades.
  double lifetime_pos = 0.5;
  int deploy_vms_bucket = 0;
  double metric_consistency = 0.85;  // P(VM falls in the dominant bucket)

  // Preferred VM size (index into the size catalog) and stickiness.
  int size_index = 0;
  double size_consistency = 0.9;

  // Probability that a long-lived VM of this subscription is interactive.
  double interactive_prob = 0.0;

  double popularity = 1.0;  // relative deployment-arrival weight (Zipf)
};

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_VM_TYPES_H_
