#include "src/trace/vm_types.h"

namespace rc::trace {

const char* ToString(Party p) { return p == Party::kFirst ? "first" : "third"; }

const char* ToString(VmType t) { return t == VmType::kIaas ? "IaaS" : "PaaS"; }

const char* ToString(GuestOs os) { return os == GuestOs::kLinux ? "Linux" : "Windows"; }

const char* ToString(DeploymentTag t) {
  return t == DeploymentTag::kProduction ? "production" : "non-production";
}

const char* ToString(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kDelayInsensitive: return "Delay-insensitive";
    case WorkloadClass::kInteractive: return "Interactive";
    case WorkloadClass::kUnknown: return "Unknown";
  }
  return "?";
}

}  // namespace rc::trace
