// Deterministic, random-access synthesis of per-VM 5-minute CPU telemetry.
//
// Storing three doubles per VM per 5-minute slot for a month-scale trace
// would cost gigabytes, so instead each VM's telemetry is a pure function of
// its latent UtilizationParams and the slot index: the same (vm, slot) query
// always returns the same reading, in any order, with no per-VM state. The
// signal is base level + optional 24-hour diurnal component (interactive
// workloads) + smooth value-noise (hourly knots, linearly interpolated) +
// per-slot jitter; the max reading adds a heavy-tailed burst term and the min
// subtracts a dip term.
#ifndef RC_SRC_TRACE_UTILIZATION_H_
#define RC_SRC_TRACE_UTILIZATION_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/trace/vm_types.h"

namespace rc::trace {

class UtilizationModel {
 public:
  // Reading for the 5-minute slot with absolute index `slot`
  // (slot = time / kSlot). Valid for slots within the VM's lifetime;
  // callers are responsible for range checks.
  static CpuReading ReadingAt(const UtilizationParams& p, int64_t slot);
  static CpuReading ReadingAt(const VmRecord& vm, int64_t slot) {
    return ReadingAt(vm.util, slot);
  }

  // Average-CPU series for `n` consecutive slots starting at `from_slot`.
  static std::vector<double> AvgSeries(const UtilizationParams& p, int64_t from_slot,
                                       int64_t n);

  // Ground-truth summary over the VM's lifetime: mean of avg readings and
  // 95th percentile of max readings. For very long VMs the series is sampled
  // at up to `max_samples` evenly spaced slots; the paper's aggregation
  // pipeline similarly works from periodic telemetry.
  struct Summary {
    double avg_cpu;
    double p95_max_cpu;
  };
  static Summary Summarize(const VmRecord& vm, int64_t max_samples = 512);

  // Uniform [0,1) hash noise for (seed, k); exposed for tests.
  static double HashNoise(uint64_t seed, int64_t k);

 private:
  // Smooth noise in [-1, 1]: linear interpolation between hourly knot values.
  static double ValueNoise(uint64_t seed, int64_t slot);
};

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_UTILIZATION_H_
