// CSV import/export for traces, schema-compatible in spirit with the
// AzurePublicDataset "vmtable" released with the paper: one row per VM with
// identifiers, timestamps, size, utilization summaries — plus the latent
// generative parameters so a written trace round-trips exactly (telemetry is
// a pure function of those parameters).
#ifndef RC_SRC_TRACE_TRACE_IO_H_
#define RC_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"

namespace rc::trace {

// Writes the VM table as CSV with a header row.
void WriteVmTable(const Trace& trace, std::ostream& out);
// Writes per-slot utilization readings ("vm_id,timestamp,min,avg,max") for
// the given VM, mirroring the dataset's reading files.
void WriteReadings(const VmRecord& vm, std::ostream& out);

// Parses a VM table previously produced by WriteVmTable. Subscription
// profiles are not serialized; the returned trace has an empty profile list.
// Throws std::runtime_error on malformed input.
Trace ReadVmTable(std::istream& in, SimDuration observation_window);

// Convenience file-path wrappers. Throw std::runtime_error on I/O failure.
void WriteVmTableFile(const Trace& trace, const std::string& path);
Trace ReadVmTableFile(const std::string& path, SimDuration observation_window);

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_TRACE_IO_H_
