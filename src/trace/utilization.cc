#include "src/trace/utilization.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/hashing.h"
#include "src/common/stats.h"

namespace rc::trace {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

inline double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
}  // namespace

double UtilizationModel::HashNoise(uint64_t seed, int64_t k) {
  uint64_t h = HashU64(seed ^ HashU64(static_cast<uint64_t>(k)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double UtilizationModel::ValueNoise(uint64_t seed, int64_t slot) {
  // Knots every hour (kSlotsPerHour slots); piecewise-linear between them.
  int64_t knot = slot >= 0 ? slot / kSlotsPerHour : (slot - kSlotsPerHour + 1) / kSlotsPerHour;
  double frac = static_cast<double>(slot - knot * kSlotsPerHour) /
                static_cast<double>(kSlotsPerHour);
  double v0 = 2.0 * HashNoise(seed, knot) - 1.0;
  double v1 = 2.0 * HashNoise(seed, knot + 1) - 1.0;
  return v0 + (v1 - v0) * frac;
}

CpuReading UtilizationModel::ReadingAt(const UtilizationParams& p, int64_t slot) {
  double t_hours = static_cast<double>(slot) * static_cast<double>(kSlot) / kHour;
  // Diurnal component peaks at diurnal_phase_h and spans [0, diurnal_amp].
  double diurnal = 0.0;
  if (p.diurnal_amp > 0.0) {
    diurnal = p.diurnal_amp * 0.5 *
              (1.0 + std::cos(kTwoPi * (t_hours - p.diurnal_phase_h) / 24.0));
  }
  double smooth = p.noise_amp * ValueNoise(p.seed, slot);
  // Small per-slot jitter decorrelates adjacent readings.
  double jitter = 0.25 * p.noise_amp * (2.0 * HashNoise(p.seed ^ 0x5bd1e995, slot) - 1.0);

  double avg = Clamp01(p.base + diurnal + smooth + jitter);

  // Burst term for the max reading. Each reading is the maximum over a
  // 5-minute window of fine-grained samples, so it sits close to the VM's
  // short-term peak (avg + burst_amp) in nearly every slot, dipping on quiet
  // windows: burst = burst_amp * (1 - 0.35 u^2), mean ~0.88 * burst_amp and
  // 95th percentile ~0.999 * burst_amp even over few slots.
  double u = HashNoise(p.seed ^ 0x9e3779b9, slot);
  double burst = p.burst_amp * (1.0 - 0.35 * u * u);
  double max = Clamp01(avg + burst);

  double d = HashNoise(p.seed ^ 0x7f4a7c15, slot);
  double dip = 0.5 * (p.burst_amp * 0.3 + p.noise_amp) * d;
  double min = Clamp01(avg - dip);
  if (min > avg) min = avg;

  return CpuReading{min, avg, max};
}

std::vector<double> UtilizationModel::AvgSeries(const UtilizationParams& p,
                                                int64_t from_slot, int64_t n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(std::max<int64_t>(n, 0)));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(ReadingAt(p, from_slot + i).avg_cpu);
  }
  return out;
}

UtilizationModel::Summary UtilizationModel::Summarize(const VmRecord& vm,
                                                      int64_t max_samples) {
  int64_t first = SlotIndex(vm.created);
  int64_t last = SlotIndex(vm.deleted);
  int64_t slots = std::max<int64_t>(last - first, 1);
  int64_t stride = std::max<int64_t>(1, slots / max_samples);

  OnlineStats avg_stats;
  std::vector<double> maxes;
  maxes.reserve(static_cast<size_t>(slots / stride + 1));
  for (int64_t s = first; s < first + slots; s += stride) {
    CpuReading r = ReadingAt(vm.util, s);
    avg_stats.Add(r.avg_cpu);
    maxes.push_back(r.max_cpu);
  }
  double p95 = Percentile(std::move(maxes), 95.0);
  return Summary{avg_stats.mean(), p95};
}

}  // namespace rc::trace
