// Deployment arrival process. Section 3.7 of the paper observes that VM
// arrivals are (a) bursty, with heavy-tailed inter-arrival times that fit a
// Weibull distribution nearly perfectly, and (b) diurnal, with lower load at
// night and on weekends. We model arrivals as a Weibull renewal process
// (shape < 1 gives the heavy tail) whose scale is modulated by a smooth
// time-of-day x day-of-week rate profile.
#ifndef RC_SRC_TRACE_ARRIVAL_PROCESS_H_
#define RC_SRC_TRACE_ARRIVAL_PROCESS_H_

#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace rc::trace {

struct ArrivalConfig {
  // Mean inter-arrival time at the *peak* of the diurnal cycle, in seconds.
  double peak_mean_interarrival_s = 20.0;
  // Weibull shape; < 1 yields heavy-tailed (bursty) gaps.
  double weibull_shape = 0.6;
  // Night rate as a fraction of the daytime peak rate.
  double night_level = 0.35;
  // Weekend rate multiplier.
  double weekend_level = 0.55;
  // Local hour at which the rate peaks.
  double peak_hour = 14.0;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& config, uint64_t seed);

  // Relative rate multiplier in (0, 1] at time t.
  double RateFactor(SimTime t) const;

  // Advances the process and returns the next arrival time strictly after
  // the current one.
  SimTime NextArrival();

  SimTime current() const { return t_; }

 private:
  ArrivalConfig config_;
  Rng rng_;
  SimTime t_ = 0;
};

}  // namespace rc::trace

#endif  // RC_SRC_TRACE_ARRIVAL_PROCESS_H_
