// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum every
// blob that crosses a durability or transport boundary: store payloads, the
// client's disk mirror, and the on-disk cache frames. A stale or mismatched
// CRC is how the client detects corrupt and torn blobs and falls back to its
// last good snapshot instead of crashing (paper Section 4: "fail gracefully").
#ifndef RC_SRC_COMMON_CRC32_H_
#define RC_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rc {

// Running CRC: pass the previous result as `crc` to extend over more bytes.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc = 0);

inline uint32_t Crc32(const std::vector<uint8_t>& bytes, uint32_t crc = 0) {
  return Crc32(bytes.data(), bytes.size(), crc);
}

}  // namespace rc

#endif  // RC_SRC_COMMON_CRC32_H_
