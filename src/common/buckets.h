// The paper formulates every predicted metric as a classification problem
// over a small number of buckets (Table 3). The bucket definitions are shared
// by the workload model (which calibrates against the published bucket
// marginals), the offline training pipeline, the client library, and the
// benchmark harness, so they live in the common layer.
#ifndef RC_SRC_COMMON_BUCKETS_H_
#define RC_SRC_COMMON_BUCKETS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/sim_time.h"

namespace rc {

// The six predicted metrics of Table 1 / Table 4.
enum class Metric {
  kAvgCpu = 0,       // average CPU utilization, fraction of allocation
  kP95Cpu = 1,       // 95th percentile of per-slot max CPU utilization
  kDeployVms = 2,    // maximum deployment size in #VMs
  kDeployCores = 3,  // maximum deployment size in #cores
  kLifetime = 4,     // VM lifetime
  kClass = 5,        // workload class (delay-insensitive / interactive)
};
inline constexpr int kNumMetrics = 6;
inline constexpr std::array<Metric, kNumMetrics> kAllMetrics = {
    Metric::kAvgCpu,   Metric::kP95Cpu,   Metric::kDeployVms,
    Metric::kDeployCores, Metric::kLifetime, Metric::kClass};

// Human-readable metric names matching Table 4 rows.
const char* MetricName(Metric m);
// Model names as registered in the RC model store (e.g. "VM_P95UTIL" used by
// Algorithm 1 in the paper).
const char* MetricModelName(Metric m);

// Number of buckets for the metric: 4 for the numeric metrics, 2 for class.
int NumBuckets(Metric m);

// Workload class labels (bucket indices for Metric::kClass).
inline constexpr int kClassDelayInsensitive = 0;
inline constexpr int kClassInteractive = 1;

// Table 3 bucketization. All functions return a bucket index in
// [0, NumBuckets(m)).
//
// Avg / P95 utilization: [0,25%) [25,50%) [50,75%) [75,100%].
int UtilizationBucket(double utilization_fraction);
// Deployment size (#VMs and #cores): {1} (1,10] (10,100] (100, inf).
int DeploymentSizeBucket(int64_t size);
// Lifetime: <=15 min, (15,60] min, (1,24] h, >24 h.
int LifetimeBucket(SimDuration lifetime);

// Bucket boundary helpers used when a client converts a predicted bucket back
// to a number (the paper: "the client can assume the highest value for the
// predicted bucket, the middle value, or the lowest value").
struct BucketRange {
  double lo;
  double hi;
};
// Utilization bucket ranges as fractions (e.g. bucket 1 -> {0.25, 0.50}).
BucketRange UtilizationBucketRange(int bucket);

// Label for a bucket of a metric, e.g. "0-25%", ">24h", "Interactive".
std::string BucketLabel(Metric m, int bucket);

}  // namespace rc

#endif  // RC_SRC_COMMON_BUCKETS_H_
