#include "src/common/clock.h"

#include <chrono>
#include <thread>
#include <vector>

namespace rc::common {

namespace {

std::chrono::steady_clock::time_point ToTimePoint(int64_t us) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::microseconds(us)));
}

}  // namespace

MonotonicClock* MonotonicClock::Instance() {
  static MonotonicClock clock;
  return &clock;
}

int64_t MonotonicClock::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MonotonicClock::SleepUs(int64_t us) {
  if (us <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool MonotonicClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                               std::condition_variable& cv, int64_t deadline_us,
                               const std::function<bool()>& pred) {
  const auto deadline = ToTimePoint(deadline_us);
  while (!pred()) {
    if (cv.wait_until(lock, deadline) == std::cv_status::timeout) return pred();
  }
  return true;
}

VirtualClock::VirtualClock() : VirtualClock(Options{}) {}

VirtualClock::VirtualClock(Options options)
    : options_(options), now_us_(options.start_us) {}

int64_t VirtualClock::NowUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_us_;
}

int64_t VirtualClock::slept_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slept_us_;
}

size_t VirtualClock::waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size() + sleepers_;
}

void VirtualClock::AwaitWaiters(size_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  clock_cv_.wait(lock, [&] { return waiters_.size() + sleepers_ >= n; });
}

void VirtualClock::SleepUs(int64_t us) {
  if (us <= 0) return;
  if (options_.auto_advance_on_sleep) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      slept_us_ += us;
    }
    AdvanceUs(us);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t deadline = now_us_ + us;
  slept_us_ += us;
  ++sleepers_;
  clock_cv_.notify_all();  // a test may be blocked in AwaitWaiters
  clock_cv_.wait(lock, [&] { return now_us_ >= deadline; });
  --sleepers_;
}

bool VirtualClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv, int64_t deadline_us,
                             const std::function<bool()>& pred) {
  while (!pred()) {
    std::list<Waiter>::iterator it;
    {
      std::lock_guard<std::mutex> clock_lock(mu_);
      if (now_us_ >= deadline_us) return pred();
      // Register while still holding the caller's mutex: an Advance that
      // runs before we reach cv.wait blocks on that mutex when notifying,
      // so the wake cannot be lost.
      it = waiters_.insert(waiters_.end(), Waiter{&cv, lock.mutex()});
      clock_cv_.notify_all();
    }
    cv.wait(lock);
    {
      std::lock_guard<std::mutex> clock_lock(mu_);
      waiters_.erase(it);
    }
  }
  return true;
}

void VirtualClock::AdvanceUs(int64_t us) {
  if (us <= 0) return;
  std::vector<Waiter> to_wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_us_ += us;
    to_wake.assign(waiters_.begin(), waiters_.end());
    // Sleepers share mu_, so notifying under it is race-free for them.
    clock_cv_.notify_all();
  }
  // External waiters park on their own (mutex, cv) pair. Locking the
  // waiter's mutex before notifying guarantees the waiter is either already
  // inside cv.wait (wake delivered) or has not yet re-checked the time
  // (it will observe the new now_us_ when it does).
  for (const Waiter& w : to_wake) {
    std::lock_guard<std::mutex> waiter_lock(*w.mu);
    w.cv->notify_all();
  }
}

void VirtualClock::AdvanceToUs(int64_t deadline_us) {
  int64_t delta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delta = deadline_us - now_us_;
  }
  AdvanceUs(delta);
}

}  // namespace rc::common
