// Aligned ASCII table output used by the benchmark harness to print the
// paper's tables/figure series in a readable form.
#ifndef RC_SRC_COMMON_TABLE_PRINTER_H_
#define RC_SRC_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace rc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);  // 0.81 -> "81.0%"

  // Renders the table with a separator line under the header.
  void Print(std::ostream& out) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rc

#endif  // RC_SRC_COMMON_TABLE_PRINTER_H_
