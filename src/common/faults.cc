#include "src/common/faults.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rc::faults {

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

void Registry::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site entry;
  entry.spec = spec;
  entry.rng = Rng(spec.seed);
  auto [it, inserted] = sites_.insert_or_assign(site, std::move(entry));
  (void)it;
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

void Registry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(site) > 0) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Registry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_sites_.fetch_sub(sites_.size(), std::memory_order_relaxed);
  sites_.clear();
}

uint64_t Registry::calls(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

uint64_t Registry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

Registry::Site* Registry::FindLocked(const std::string& site, FaultKind kind) {
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.spec.kind != kind) return nullptr;
  return &it->second;
}

bool Registry::FireLocked(Site& site) {
  const FaultSpec& spec = site.spec;
  uint64_t index = site.calls++;  // 0-based position among matching calls
  if (index < spec.skip_first) return false;
  if (site.fires >= spec.max_fires) return false;
  uint64_t window_pos = index - spec.skip_first;
  if (spec.every_nth > 1 && window_pos % spec.every_nth != 0) return false;
  if (spec.probability < 1.0 && site.rng.NextDouble() >= spec.probability) return false;
  site.fires += 1;
  return true;
}

bool Registry::ShouldError(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site* entry = FindLocked(site, FaultKind::kError);
  return entry != nullptr && FireLocked(*entry);
}

double Registry::LatencyUs(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site* entry = FindLocked(site, FaultKind::kLatency);
  if (entry == nullptr || !FireLocked(*entry)) return 0.0;
  return entry->spec.latency_us;
}

bool Registry::MutateBytes(const std::string& site, std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Site* entry = FindLocked(site, FaultKind::kCorrupt);
  if (entry != nullptr) {
    if (!FireLocked(*entry) || bytes.empty()) return false;
    int flips = std::max(1, entry->spec.corrupt_flips);
    for (int i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(
          entry->rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      // XOR with a nonzero byte so a flip always changes the payload.
      bytes[pos] ^= static_cast<uint8_t>(entry->rng.UniformInt(1, 255));
    }
    return true;
  }
  entry = FindLocked(site, FaultKind::kTruncate);
  if (entry != nullptr) {
    if (!FireLocked(*entry)) return false;
    if (entry->spec.truncate_to >= bytes.size()) return false;
    bytes.resize(entry->spec.truncate_to);
    return true;
  }
  return false;
}

void InjectLatency(const std::string& site) {
  Registry& registry = Registry::Global();
  if (!registry.armed()) return;
  double us = registry.LatencyUs(site);
  if (us <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(static_cast<int64_t>(us)));
}

}  // namespace rc::faults
