#include "src/common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rc {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) {
    w = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Lemire-style rejection to avoid modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < span) {
    const uint64_t t = (0 - span) % span;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(m >> 64);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::Weibull(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 1.0 - NextDouble();
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Categorical: no positive weight");
  }
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("DiscreteSampler: no positive weight");
  }
  cum_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += (w > 0.0 ? w : 0.0) / total;
    cum_.push_back(acc);
  }
  cum_.back() = 1.0;
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  if (it == cum_.end()) --it;
  return static_cast<size_t>(it - cum_.begin());
}

}  // namespace rc
