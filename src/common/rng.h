// Deterministic pseudo-random number generation and the distribution samplers
// used throughout the workload model.
//
// We deliberately avoid <random>'s engines for the core generator: their exact
// output is implementation-defined for some distributions, and reproducibility
// across standard libraries matters for tests and benchmark comparability.
// The generator is xoshiro256** seeded via SplitMix64 (Blackman & Vigna).
#ifndef RC_SRC_COMMON_RNG_H_
#define RC_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rc {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** 1.0. Passes BigCrush; period 2^256 - 1.
class Rng {
 public:
  // Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second variate).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Exponential with given rate (lambda > 0).
  double Exponential(double rate);

  // Weibull with shape k > 0 and scale lambda > 0. Heavy-tailed for k < 1,
  // which is how the paper models VM inter-arrival times (Section 3.7).
  double Weibull(double shape, double scale);

  // Pareto (type I) with scale x_m > 0 and tail index alpha > 0.
  double Pareto(double xm, double alpha);

  // Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  // Weights need not be normalized; non-positive weights are treated as 0.
  // Requires at least one positive weight.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; useful for giving each
  // subscription or VM its own stream without cross-coupling.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Precomputed alias-free categorical sampler for repeated draws from the same
// distribution (inverse-CDF over cumulative weights, O(log n) per draw).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cum_.size(); }

 private:
  std::vector<double> cum_;  // normalized cumulative weights, last == 1.0
};

}  // namespace rc

#endif  // RC_SRC_COMMON_RNG_H_
