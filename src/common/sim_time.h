// Simulation time. All telemetry in the paper is reported in 5-minute
// intervals; we keep time as integral seconds since the start of the trace
// and provide slot helpers so utilization series index cleanly.
#ifndef RC_SRC_COMMON_SIM_TIME_H_
#define RC_SRC_COMMON_SIM_TIME_H_

#include <cstdint>

namespace rc {

using SimTime = int64_t;      // seconds since trace start
using SimDuration = int64_t;  // seconds

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60;
inline constexpr SimDuration kHour = 3600;
inline constexpr SimDuration kDay = 86400;
inline constexpr SimDuration kWeek = 7 * kDay;
// Telemetry reporting interval (paper: utilization reported every 5 minutes).
inline constexpr SimDuration kSlot = 5 * kMinute;
inline constexpr int64_t kSlotsPerHour = kHour / kSlot;
inline constexpr int64_t kSlotsPerDay = kDay / kSlot;

// Floor division/modulo for int64. C++ integer division truncates toward
// zero, so for negative times (events dated before trace start, e.g. after
// arrival-jitter subtraction) `t / kSlot` rounds the wrong way and `t % kDay`
// goes negative — silently mapping to the wrong slot/hour/day. All slot and
// calendar helpers below use floor semantics so the mapping is continuous
// across t = 0: FloorDiv(-1, 300) == -1, FloorMod(-1, 86400) == 86399.
inline constexpr int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}
inline constexpr int64_t FloorMod(int64_t a, int64_t b) {
  int64_t m = a % b;
  return (m != 0 && (m < 0) != (b < 0)) ? m + b : m;
}

// Index of the 5-minute slot containing time t (floor; negative t maps to
// negative slot indices, never to slot 0).
inline constexpr int64_t SlotIndex(SimTime t) { return FloorDiv(t, kSlot); }
// Start time of slot i.
inline constexpr SimTime SlotStart(int64_t i) { return i * kSlot; }

// Hour-of-day in [0, 24) for time t, assuming the trace starts at midnight.
inline constexpr int HourOfDay(SimTime t) {
  return static_cast<int>(FloorMod(t, kDay) / kHour);
}
// Day-of-week in [0, 7), day 0 being the trace's first day (a Monday by
// convention in the workload model).
inline constexpr int DayOfWeek(SimTime t) {
  return static_cast<int>(FloorMod(t, kWeek) / kDay);
}
inline constexpr bool IsWeekend(SimTime t) { return DayOfWeek(t) >= 5; }

}  // namespace rc

#endif  // RC_SRC_COMMON_SIM_TIME_H_
