// Fixed-bin and categorical histograms.
#ifndef RC_SRC_COMMON_HISTOGRAM_H_
#define RC_SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rc {

// Histogram over [lo, hi) with `bins` equal-width bins plus underflow and
// overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x, uint64_t weight = 1);

  uint64_t total() const { return total_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  size_t bins() const { return counts_.size(); }
  uint64_t count(size_t bin) const { return counts_.at(bin); }
  // Lower edge of bin i.
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  // Fraction of total mass in bin i (0 if empty histogram).
  double Fraction(size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

// Weighted counts keyed by string category (e.g. VM size names, buckets).
class CategoricalHistogram {
 public:
  void Add(const std::string& key, double weight = 1.0);
  double count(const std::string& key) const;
  double total() const { return total_; }
  double Fraction(const std::string& key) const;
  const std::map<std::string, double>& counts() const { return counts_; }

 private:
  std::map<std::string, double> counts_;
  double total_ = 0.0;
};

}  // namespace rc

#endif  // RC_SRC_COMMON_HISTOGRAM_H_
