#include "src/common/histogram.h"

#include <cmath>
#include <stdexcept>

namespace rc {

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::Add(double x, uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // guard fp edge
  counts_[bin] += weight;
}

double Histogram::bin_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::Fraction(size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

void CategoricalHistogram::Add(const std::string& key, double weight) {
  counts_[key] += weight;
  total_ += weight;
}

double CategoricalHistogram::count(const std::string& key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0.0 : it->second;
}

double CategoricalHistogram::Fraction(const std::string& key) const {
  if (total_ == 0.0) return 0.0;
  return count(key) / total_;
}

}  // namespace rc
