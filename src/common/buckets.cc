#include "src/common/buckets.h"

#include <stdexcept>

namespace rc {

const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kAvgCpu: return "Avg CPU utilization";
    case Metric::kP95Cpu: return "P95 CPU utilization";
    case Metric::kDeployVms: return "Deploy size (#VMs)";
    case Metric::kDeployCores: return "Deploy size (#cores)";
    case Metric::kLifetime: return "Lifetime";
    case Metric::kClass: return "Workload class";
  }
  return "?";
}

const char* MetricModelName(Metric m) {
  switch (m) {
    case Metric::kAvgCpu: return "VM_AVGUTIL";
    case Metric::kP95Cpu: return "VM_P95UTIL";
    case Metric::kDeployVms: return "DEPLOY_SIZE_VMS";
    case Metric::kDeployCores: return "DEPLOY_SIZE_CORES";
    case Metric::kLifetime: return "VM_LIFETIME";
    case Metric::kClass: return "VM_WORKLOAD_CLASS";
  }
  return "?";
}

int NumBuckets(Metric m) { return m == Metric::kClass ? 2 : 4; }

int UtilizationBucket(double utilization_fraction) {
  if (utilization_fraction < 0.25) return 0;
  if (utilization_fraction < 0.50) return 1;
  if (utilization_fraction < 0.75) return 2;
  return 3;
}

int DeploymentSizeBucket(int64_t size) {
  if (size <= 1) return 0;
  if (size <= 10) return 1;
  if (size <= 100) return 2;
  return 3;
}

int LifetimeBucket(SimDuration lifetime) {
  if (lifetime <= 15 * kMinute) return 0;
  if (lifetime <= 60 * kMinute) return 1;
  if (lifetime <= 24 * kHour) return 2;
  return 3;
}

BucketRange UtilizationBucketRange(int bucket) {
  switch (bucket) {
    case 0: return {0.0, 0.25};
    case 1: return {0.25, 0.50};
    case 2: return {0.50, 0.75};
    case 3: return {0.75, 1.0};
    default: throw std::out_of_range("UtilizationBucketRange: bad bucket");
  }
}

std::string BucketLabel(Metric m, int bucket) {
  switch (m) {
    case Metric::kAvgCpu:
    case Metric::kP95Cpu: {
      static const char* kLabels[] = {"0-25%", "25-50%", "50-75%", "75-100%"};
      return kLabels[bucket];
    }
    case Metric::kDeployVms:
    case Metric::kDeployCores: {
      static const char* kLabels[] = {"1", ">1 & <=10", ">10 & <=100", ">100"};
      return kLabels[bucket];
    }
    case Metric::kLifetime: {
      static const char* kLabels[] = {"<=15 min", ">15 & <=60 min", ">1 & <=24 h", ">24 h"};
      return kLabels[bucket];
    }
    case Metric::kClass: {
      static const char* kLabels[] = {"Delay-insensitive", "Interactive"};
      return kLabels[bucket];
    }
  }
  return "?";
}

}  // namespace rc
