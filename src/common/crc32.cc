#include "src/common/crc32.h"

#include <array>

namespace rc {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rc
