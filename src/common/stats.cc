#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rc {

void OnlineStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::cov() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double CoefficientOfVariation(const std::vector<double>& xs) {
  double m = Mean(xs);
  if (xs.empty() || m == 0.0) return 0.0;
  return StdDev(xs) / std::abs(m);
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("Percentile of empty data");
  }
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

}  // namespace rc
