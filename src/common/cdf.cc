#include "src/common/cdf.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rc {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : samples_(std::move(samples)) {
  Finalize();
}

void EmpiricalCdf::Add(double x) {
  samples_.push_back(x);
  finalized_ = false;
}

void EmpiricalCdf::Finalize() {
  if (!finalized_) {
    std::sort(samples_.begin(), samples_.end());
    finalized_ = true;
  }
}

double EmpiricalCdf::Eval(double x) const {
  if (!finalized_) {
    throw std::logic_error("EmpiricalCdf: Eval before Finalize");
  }
  if (samples_.empty()) return 0.0;
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  if (!finalized_ || samples_.empty()) {
    throw std::logic_error("EmpiricalCdf: Quantile on empty/unfinalized CDF");
  }
  q = std::clamp(q, 0.0, 1.0);
  // Smallest rank i with i/n >= q. The epsilon absorbs floating-point noise:
  // for q = k/n the product q*n can land a hair above k, and without the
  // guard ceil() would skip to the next sample, breaking the Galois
  // inequality Quantile(Eval(x)) <= x.
  size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples_.size()) - 1e-9));
  if (idx > 0) --idx;
  if (idx >= samples_.size()) idx = samples_.size() - 1;
  return samples_[idx];
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf: min of empty");
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf: max of empty");
  return samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalCdf::Curve(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double q = static_cast<double>(i + 1) / static_cast<double>(points);
    out.emplace_back(Quantile(q), q);
  }
  return out;
}

std::string EmpiricalCdf::TabulateAt(const std::vector<double>& xs) const {
  std::ostringstream os;
  for (double x : xs) {
    os << x << '\t' << Eval(x) << '\n';
  }
  return os.str();
}

}  // namespace rc
