#include "src/common/csv.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace rc {

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].find_first_of(",\n\r") != std::string::npos) {
      throw std::invalid_argument("CsvWriter: field needs quoting: " + fields[i]);
    }
    if (i > 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

bool CsvReader::ReadRow(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    fields = SplitCsvLine(line);
    return true;
  }
  return false;
}

}  // namespace rc
