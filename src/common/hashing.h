// Stable, fast non-cryptographic hashing. The RC client library keys its
// result cache on hash(model name, client inputs); the hash must be stable
// across processes (entries round-trip through the disk cache), so we do not
// use std::hash.
#ifndef RC_SRC_COMMON_HASHING_H_
#define RC_SRC_COMMON_HASHING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rc {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// FNV-1a over raw bytes.
inline uint64_t Fnv1a(std::string_view bytes, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

// Boost-style combine with the 64-bit golden-ratio constant.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace rc

#endif  // RC_SRC_COMMON_HASHING_H_
