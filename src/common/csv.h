// Minimal CSV reading/writing for trace import/export. Fields never contain
// commas in our schemas, so no quoting is implemented; the writer rejects
// fields that would need it rather than emit a corrupt file.
#ifndef RC_SRC_COMMON_CSV_H_
#define RC_SRC_COMMON_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rc {

// Splits one CSV line on commas. No quoting support.
std::vector<std::string> SplitCsvLine(std::string_view line);

class CsvWriter {
 public:
  // Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  // Writes one row. Throws std::invalid_argument if a field contains a comma
  // or newline.
  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  // Reads the next row into `fields`; returns false at end of input.
  // Skips blank lines.
  bool ReadRow(std::vector<std::string>& fields);

 private:
  std::istream& in_;
};

}  // namespace rc

#endif  // RC_SRC_COMMON_CSV_H_
