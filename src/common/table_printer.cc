#include "src/common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rc {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::Pct(double fraction, int precision) {
  return Fmt(fraction * 100.0, precision) + "%";
}

void TablePrinter::Print(std::ostream& out) const { out << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace rc
