// Empirical cumulative distribution functions. Used to regenerate the CDF
// figures of the paper (Figures 1, 4, 5) and to validate the workload model
// against the published distributions.
#ifndef RC_SRC_COMMON_CDF_H_
#define RC_SRC_COMMON_CDF_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rc {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  // Builds from samples; sorts internally.
  explicit EmpiricalCdf(std::vector<double> samples);

  void Add(double x);
  // Must be called after Add()s and before queries; idempotent.
  void Finalize();

  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  // P(X <= x) in [0, 1].
  double Eval(double x) const;
  // Inverse CDF: smallest sample value v such that P(X <= v) >= q, q in [0,1].
  double Quantile(double q) const;

  double min() const;
  double max() const;

  // Samples the CDF at `points` evenly spaced quantiles — the series a plot
  // of the figure would draw. Returns (x, cumulative-probability) pairs.
  std::vector<std::pair<double, double>> Curve(size_t points = 100) const;

  // Renders "x<TAB>P(X<=x)" lines at the given x values (one per line), for
  // direct comparison with the paper's figures.
  std::string TabulateAt(const std::vector<double>& xs) const;

 private:
  std::vector<double> samples_;
  bool finalized_ = false;
};

}  // namespace rc

#endif  // RC_SRC_COMMON_CDF_H_
