// Descriptive statistics helpers shared by the characterization toolkit, the
// ML substrate, and the benchmark harness.
#ifndef RC_SRC_COMMON_STATS_H_
#define RC_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace rc {

// Streaming mean/variance via Welford's algorithm. O(1) memory; numerically
// stable for long telemetry streams.
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance (divides by n).
  double variance() const;
  // Sample variance (divides by n-1); 0 when fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Coefficient of variation: stddev / mean; 0 when mean == 0.
  double cov() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // population variance
double StdDev(const std::vector<double>& xs);
// Coefficient of variation (stddev / mean). Returns 0 for empty input or
// zero mean — callers bucketing subscriptions by "CoV < 1" treat a constant
// series as perfectly consistent, which matches the paper's reading.
double CoefficientOfVariation(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> xs, double p);
// Percentile over data the caller has already sorted ascending.
double PercentileSorted(const std::vector<double>& sorted, double p);

double Median(std::vector<double> xs);

}  // namespace rc

#endif  // RC_SRC_COMMON_STATS_H_
