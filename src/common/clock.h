// rc::common::Clock — injectable time for every timing-sensitive component
// (combiner windows, client deadlines, retry/backoff naps, the circuit
// breaker). Production code uses MonotonicClock (a thin veneer over
// std::chrono::steady_clock); tests substitute VirtualClock, a
// step-controlled clock whose time only moves when the test advances it, so
// window expiries, backoff schedules, and deadline math are asserted exactly
// — no real sleeps, no flaky tolerances.
//
// The waiting model: components that park a thread until "time T or
// condition C" call Clock::WaitUntil with their own mutex (held), their own
// condition_variable (the one their writers notify), an absolute deadline in
// this clock's microseconds, and the predicate. MonotonicClock maps this to
// cv.wait_until; VirtualClock registers the waiter and wakes it when an
// Advance crosses the deadline (or the caller's cv is notified normally).
// This keeps the lost-wakeup window closed: VirtualClock::Advance locks each
// waiter's own mutex before notifying, so a waiter that has registered but
// not yet blocked cannot miss the wake.
#ifndef RC_SRC_COMMON_CLOCK_H_
#define RC_SRC_COMMON_CLOCK_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>

namespace rc::common {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic microseconds since an arbitrary fixed epoch. Deadlines passed
  // to WaitUntil are absolute values on this same scale.
  virtual int64_t NowUs() const = 0;

  // Blocks the calling thread for `us` of this clock's time (<= 0 returns
  // immediately). Used by backoff paths that have no condition to watch.
  virtual void SleepUs(int64_t us) = 0;

  // Blocks until pred() is true or the clock reaches deadline_us. `lock`
  // must hold the caller's own mutex (the one guarding pred's state) on
  // entry and holds it again on return; pred is only evaluated under it.
  // `cv` must be the condition variable the caller's writers notify when
  // pred's inputs change — external notifies wake the wait early exactly as
  // with std::condition_variable::wait_until. Returns the final pred().
  virtual bool WaitUntil(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                         int64_t deadline_us, const std::function<bool()>& pred) = 0;
};

// Production clock: steady_clock, real sleeps, cv.wait_until.
class MonotonicClock final : public Clock {
 public:
  // Shared process-wide instance (the default everywhere a Clock* is null).
  static MonotonicClock* Instance();

  int64_t NowUs() const override;
  void SleepUs(int64_t us) override;
  bool WaitUntil(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                 int64_t deadline_us, const std::function<bool()>& pred) override;
};

// Test clock: time is a counter that moves only via AdvanceUs/AdvanceToUs
// (or, with auto_advance_on_sleep, via SleepUs itself — for code whose
// backoff naps run on the test's own thread and would otherwise deadlock
// waiting for an advance that can never come). Sleepers and WaitUntil
// waiters are woken deterministically when an advance crosses their
// deadline.
class VirtualClock final : public Clock {
 public:
  struct Options {
    int64_t start_us = 0;
    // SleepUs(n) advances the clock by n instead of blocking the caller.
    bool auto_advance_on_sleep = false;
  };
  VirtualClock();
  explicit VirtualClock(Options options);

  int64_t NowUs() const override;
  void SleepUs(int64_t us) override;
  bool WaitUntil(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                 int64_t deadline_us, const std::function<bool()>& pred) override;

  // Moves time forward and wakes every sleeper/waiter whose deadline was
  // reached (plus every WaitUntil waiter, which re-checks its predicate and
  // deadline and re-parks if neither is met). Advancing by <= 0 is a no-op.
  void AdvanceUs(int64_t us);
  void AdvanceToUs(int64_t deadline_us);  // no-op when already past

  // Threads currently blocked in SleepUs or WaitUntil on this clock. A test
  // that must advance only once the thread under test is provably parked
  // spins on this (or calls AwaitWaiters).
  size_t waiters() const;
  // Blocks (in real time — no virtual time passes) until waiters() >= n.
  void AwaitWaiters(size_t n);

  // Total microseconds spent (or skipped, in auto-advance mode) inside
  // SleepUs — lets tests assert a backoff schedule exactly.
  int64_t slept_us() const;

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mu;
  };

  Options options_;
  mutable std::mutex mu_;
  // Signals sleepers (time moved) and AwaitWaiters (waiter count changed).
  std::condition_variable clock_cv_;
  int64_t now_us_;
  int64_t slept_us_ = 0;
  size_t sleepers_ = 0;
  std::list<Waiter> waiters_;
};

}  // namespace rc::common

#endif  // RC_SRC_COMMON_CLOCK_H_
