// Deterministic, seedable fault injection ("failpoints") for the store and
// client path. Production code declares named injection sites; tests arm a
// site with a FaultSpec describing WHAT goes wrong (I/O error, corrupt bytes,
// torn/partial write, injected latency) and WHEN it goes wrong (every call, a
// Bernoulli coin with a fixed seed, every Nth call, a one-shot, or an outage
// window of calls [skip_first, skip_first + max_fires)). Everything is
// reproducible: triggers are counted per site and randomness comes from a
// per-site xoshiro RNG seeded by the spec, never from global entropy.
//
// Cost when nothing is armed: a single relaxed atomic load per injection
// site, so sites are safe on hot paths.
//
// Registered sites (grep for the string to find the code):
//   kv/get            store read       error | corrupt | latency
//   kv/put            store write      error | corrupt | truncate | latency
//   disk/write        disk-cache write error | corrupt | truncate
//   disk/read         disk-cache read  error | corrupt
//   client/store_read client-side shim around store reads   error
//   client/persist_index  client disk-index writeback       error
//   pipeline/publish  offline pipeline publication          error
#ifndef RC_SRC_COMMON_FAULTS_H_
#define RC_SRC_COMMON_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"

namespace rc::faults {

enum class FaultKind : uint8_t {
  kError,     // the site reports failure (I/O error / unreachable store)
  kCorrupt,   // payload bytes are flipped (checksum must catch this)
  kTruncate,  // payload is cut short (torn / partial write)
  kLatency,   // the call is delayed by latency_us
};

struct FaultSpec {
  FaultKind kind = FaultKind::kError;

  // Trigger: a call to a site of the matching kind fires when, in order,
  //   (1) at least skip_first matching calls have already happened,
  //   (2) fewer than max_fires faults have fired so far,
  //   (3) the call's position within the window is a multiple of every_nth,
  //   (4) a seeded Bernoulli(probability) coin comes up heads.
  // Defaults fire on every call. One-shot: max_fires = 1. Outage window of
  // calls [a, a+n): skip_first = a, max_fires = n.
  uint64_t skip_first = 0;
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
  uint64_t every_nth = 1;
  double probability = 1.0;
  uint64_t seed = 0x5eedf417u;  // drives the coin and the corruption bytes

  double latency_us = 0.0;    // kLatency: injected delay
  size_t truncate_to = 0;     // kTruncate: bytes kept
  int corrupt_flips = 3;      // kCorrupt: number of byte flips per fire
};

class Registry {
 public:
  static Registry& Global();

  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  // True when any site is armed; one relaxed load, no lock.
  bool armed() const { return armed_sites_.load(std::memory_order_relaxed) > 0; }

  // Introspection for tests: matching-kind evaluations and actual fires.
  uint64_t calls(const std::string& site) const;
  uint64_t fires(const std::string& site) const;

  // Site evaluation; each consults the spec armed at `site` iff its kind
  // matches, advances the trigger state, and reports the decision.
  bool ShouldError(const std::string& site);
  double LatencyUs(const std::string& site);  // 0 when no latency fires
  // Applies kCorrupt byte flips or kTruncate shortening in place.
  bool MutateBytes(const std::string& site, std::vector<uint8_t>& bytes);

 private:
  struct Site {
    FaultSpec spec;
    uint64_t calls = 0;
    uint64_t fires = 0;
    Rng rng{0};
  };

  // nullptr unless `site` is armed with the given kind. Requires mu_ held.
  Site* FindLocked(const std::string& site, FaultKind kind);
  // Advances trigger state for one matching call; true if the fault fires.
  static bool FireLocked(Site& site);

  mutable std::mutex mu_;
  std::atomic<uint64_t> armed_sites_{0};
  std::unordered_map<std::string, Site> sites_;
};

// --- injection points (free functions used by production code) ---

// True if an armed kError fault fires at this site.
inline bool InjectError(const std::string& site) {
  Registry& r = Registry::Global();
  return r.armed() && r.ShouldError(site);
}

// Sleeps for the armed latency, if any. Defined in faults.cc (needs <thread>).
void InjectLatency(const std::string& site);

// Applies corruption/truncation to `bytes` in place; true if mutated.
inline bool InjectMutation(const std::string& site, std::vector<uint8_t>& bytes) {
  Registry& r = Registry::Global();
  return r.armed() && r.MutateBytes(site, bytes);
}

// RAII arm/disarm for tests; disarms its site on scope exit.
class ScopedFault {
 public:
  ScopedFault(std::string site, FaultSpec spec) : site_(std::move(site)) {
    Registry::Global().Arm(site_, spec);
  }
  ~ScopedFault() { Registry::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

}  // namespace rc::faults

#endif  // RC_SRC_COMMON_FAULTS_H_
