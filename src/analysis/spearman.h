// Spearman rank correlation (Figure 8 of the paper correlates the VM metrics
// pairwise with Spearman's method).
#ifndef RC_SRC_ANALYSIS_SPEARMAN_H_
#define RC_SRC_ANALYSIS_SPEARMAN_H_

#include <span>
#include <string>
#include <vector>

namespace rc::analysis {

// Ranks with ties receiving the average rank (1-based fractional ranks).
std::vector<double> FractionalRanks(std::span<const double> xs);

// Spearman's rho between two equal-length series; 0 for degenerate input.
double SpearmanCorrelation(std::span<const double> xs, std::span<const double> ys);

// Pairwise correlation matrix over named metric columns (all columns must
// have equal length).
struct CorrelationMatrix {
  std::vector<std::string> names;
  std::vector<double> rho;  // row-major names.size() x names.size()

  double at(size_t i, size_t j) const { return rho[i * names.size() + j]; }
};
CorrelationMatrix SpearmanMatrix(const std::vector<std::string>& names,
                                 const std::vector<std::vector<double>>& columns);

}  // namespace rc::analysis

#endif  // RC_SRC_ANALYSIS_SPEARMAN_H_
