#include "src/analysis/spearman.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rc::analysis {

std::vector<double> FractionalRanks(std::span<const double> xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return xs[a] < xs[b]; });

  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank across the tie group [i, j].
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("SpearmanCorrelation: length mismatch");
  }
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  std::vector<double> rx = FractionalRanks(xs);
  std::vector<double> ry = FractionalRanks(ys);
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += rx[i];
    my += ry[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0.0, dx = 0.0, dy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double a = rx[i] - mx;
    double b = ry[i] - my;
    num += a * b;
    dx += a * a;
    dy += b * b;
  }
  if (dx == 0.0 || dy == 0.0) return 0.0;
  return num / std::sqrt(dx * dy);
}

CorrelationMatrix SpearmanMatrix(const std::vector<std::string>& names,
                                 const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size()) {
    throw std::invalid_argument("SpearmanMatrix: names/columns mismatch");
  }
  const size_t k = names.size();
  CorrelationMatrix out;
  out.names = names;
  out.rho.assign(k * k, 1.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      double r = SpearmanCorrelation(columns[i], columns[j]);
      out.rho[i * k + j] = r;
      out.rho[j * k + i] = r;
    }
  }
  return out;
}

}  // namespace rc::analysis
