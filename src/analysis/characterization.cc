#include "src/analysis/characterization.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "src/common/stats.h"

namespace rc::analysis {

using rc::trace::Party;
using rc::trace::Trace;
using rc::trace::VmRecord;
using rc::trace::VmType;
using rc::trace::WorkloadClass;

const char* ToString(PartyFilter f) {
  switch (f) {
    case PartyFilter::kAll: return "all";
    case PartyFilter::kFirst: return "first-party";
    case PartyFilter::kThird: return "third-party";
  }
  return "?";
}

bool Matches(const VmRecord& vm, PartyFilter filter) {
  switch (filter) {
    case PartyFilter::kAll: return true;
    case PartyFilter::kFirst: return vm.party == Party::kFirst;
    case PartyFilter::kThird: return vm.party == Party::kThird;
  }
  return false;
}

UtilizationCdfs BuildUtilizationCdfs(const Trace& trace, PartyFilter filter) {
  UtilizationCdfs out;
  for (const auto& vm : trace.vms()) {
    if (!Matches(vm, filter)) continue;
    out.avg.Add(vm.avg_cpu);
    out.p95_max.Add(vm.p95_max_cpu);
  }
  out.avg.Finalize();
  out.p95_max.Finalize();
  return out;
}

rc::CategoricalHistogram CoreBreakdown(const Trace& trace, PartyFilter filter) {
  rc::CategoricalHistogram hist;
  for (const auto& vm : trace.vms()) {
    if (!Matches(vm, filter)) continue;
    hist.Add(std::to_string(vm.cores));
  }
  return hist;
}

rc::CategoricalHistogram MemoryBreakdown(const Trace& trace, PartyFilter filter) {
  rc::CategoricalHistogram hist;
  for (const auto& vm : trace.vms()) {
    if (!Matches(vm, filter)) continue;
    std::ostringstream key;
    key << vm.memory_gb;
    hist.Add(key.str());
  }
  return hist;
}

std::vector<DeploymentGroup> GroupDeployments(const Trace& trace) {
  struct Key {
    uint64_t sub;
    int32_t region;
    int64_t day;
    bool operator<(const Key& o) const {
      if (sub != o.sub) return sub < o.sub;
      if (region != o.region) return region < o.region;
      return day < o.day;
    }
  };
  std::map<Key, DeploymentGroup> groups;
  for (const auto& vm : trace.vms()) {
    Key key{vm.subscription_id, vm.region, vm.created / kDay};
    auto [it, inserted] = groups.try_emplace(key);
    DeploymentGroup& g = it->second;
    if (inserted) {
      g.subscription_id = vm.subscription_id;
      g.region = vm.region;
      g.day = key.day;
      g.party = vm.party;
    }
    g.vm_count += 1;
    g.cores += vm.cores;
  }
  std::vector<DeploymentGroup> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) out.push_back(g);
  return out;
}

rc::EmpiricalCdf DeploymentSizeCdf(const Trace& trace, PartyFilter filter) {
  rc::EmpiricalCdf cdf;
  for (const auto& g : GroupDeployments(trace)) {
    bool match = filter == PartyFilter::kAll ||
                 (filter == PartyFilter::kFirst && g.party == Party::kFirst) ||
                 (filter == PartyFilter::kThird && g.party == Party::kThird);
    if (match) cdf.Add(static_cast<double>(g.vm_count));
  }
  cdf.Finalize();
  return cdf;
}

rc::EmpiricalCdf LifetimeCdf(const Trace& trace, PartyFilter filter) {
  rc::EmpiricalCdf cdf;
  for (const VmRecord* vm : trace.CompletedVms()) {
    if (!Matches(*vm, filter)) continue;
    cdf.Add(static_cast<double>(vm->lifetime()));
  }
  cdf.Finalize();
  return cdf;
}

ClassCoreHours CoreHoursByClass(const Trace& trace, PartyFilter filter, bool use_fft) {
  ClassCoreHours out;
  for (const auto& vm : trace.vms()) {
    if (!Matches(vm, filter)) continue;
    SimTime end = std::min(vm.deleted, trace.observation_window());
    SimTime begin = std::max<SimTime>(vm.created, 0);
    if (end <= begin) continue;
    double core_hours =
        static_cast<double>(vm.cores) * static_cast<double>(end - begin) / kHour;
    WorkloadClass cls = use_fft ? ClassifyVm(vm) : vm.true_class;
    switch (cls) {
      case WorkloadClass::kDelayInsensitive: out.delay_insensitive += core_hours; break;
      case WorkloadClass::kInteractive: out.interactive += core_hours; break;
      case WorkloadClass::kUnknown: out.unknown += core_hours; break;
    }
  }
  return out;
}

std::vector<int64_t> HourlyArrivals(const Trace& trace, int region, SimTime from,
                                    SimTime to) {
  if (to <= from) return {};
  std::vector<int64_t> bins(static_cast<size_t>((to - from + kHour - 1) / kHour), 0);
  for (const auto& vm : trace.vms()) {
    if (vm.region != region) continue;
    if (vm.created < from || vm.created >= to) continue;
    bins[static_cast<size_t>((vm.created - from) / kHour)] += 1;
  }
  return bins;
}

std::vector<double> SubscriptionCoVs(
    const Trace& trace, const std::function<double(const VmRecord&)>& metric,
    size_t min_vms) {
  std::vector<double> covs;
  for (const auto& sub : trace.subscriptions()) {
    const auto& vm_indices = trace.VmsOfSubscription(sub.subscription_id);
    if (vm_indices.size() < min_vms) continue;
    rc::OnlineStats stats;
    for (size_t idx : vm_indices) stats.Add(metric(trace.vms()[idx]));
    covs.push_back(stats.cov());
  }
  return covs;
}

double FractionBelow(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  size_t below = 0;
  for (double x : xs) {
    if (x < threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(xs.size());
}

double SingleTypeSubscriptionFraction(const Trace& trace, size_t min_vms) {
  size_t total = 0, single = 0;
  for (const auto& sub : trace.subscriptions()) {
    const auto& vm_indices = trace.VmsOfSubscription(sub.subscription_id);
    if (vm_indices.size() < min_vms) continue;
    ++total;
    VmType first_type = trace.vms()[vm_indices[0]].vm_type;
    bool all_same = std::all_of(vm_indices.begin(), vm_indices.end(), [&](size_t idx) {
      return trace.vms()[idx].vm_type == first_type;
    });
    if (all_same) ++single;
  }
  return total == 0 ? 0.0 : static_cast<double>(single) / static_cast<double>(total);
}

CorrelationMatrix MetricCorrelations(const Trace& trace, PartyFilter filter) {
  // Deployment size of the VM's (subscription, region, day) group.
  std::unordered_map<uint64_t, int64_t> deploy_size;
  {
    std::vector<DeploymentGroup> groups = GroupDeployments(trace);
    std::map<std::tuple<uint64_t, int32_t, int64_t>, int64_t> sizes;
    for (const auto& g : groups) {
      sizes[{g.subscription_id, g.region, g.day}] = g.vm_count;
    }
    for (const auto& vm : trace.vms()) {
      deploy_size[vm.vm_id] = sizes[{vm.subscription_id, vm.region, vm.created / kDay}];
    }
  }

  // The six numeric metrics correlate over every VM; the class column only
  // exists for VMs that ran long enough to be classified (>= 3 days), so its
  // correlations are computed over that subpopulation, as the paper does.
  std::vector<std::string> names = {"avg util", "p95 util",   "cores", "memory",
                                    "lifetime", "deploy size", "class"};
  constexpr size_t kNumeric = 6;
  std::vector<std::vector<double>> cols(kNumeric);
  std::vector<std::vector<double>> classified(kNumeric + 1);
  for (const auto& vm : trace.vms()) {
    if (!Matches(vm, filter)) continue;
    double values[kNumeric] = {vm.avg_cpu,
                               vm.p95_max_cpu,
                               static_cast<double>(vm.cores),
                               vm.memory_gb,
                               static_cast<double>(vm.lifetime()),
                               static_cast<double>(deploy_size[vm.vm_id])};
    for (size_t c = 0; c < kNumeric; ++c) cols[c].push_back(values[c]);
    if (vm.true_class != WorkloadClass::kUnknown) {
      for (size_t c = 0; c < kNumeric; ++c) classified[c].push_back(values[c]);
      classified[kNumeric].push_back(
          vm.true_class == WorkloadClass::kInteractive ? 2.0 : 1.0);
    }
  }
  CorrelationMatrix numeric = SpearmanMatrix(
      std::vector<std::string>(names.begin(), names.begin() + kNumeric), cols);
  CorrelationMatrix out;
  out.names = names;
  out.rho.assign(names.size() * names.size(), 1.0);
  for (size_t i = 0; i < kNumeric; ++i) {
    for (size_t j = 0; j < kNumeric; ++j) {
      out.rho[i * names.size() + j] = numeric.at(i, j);
    }
  }
  for (size_t i = 0; i < kNumeric; ++i) {
    double r = SpearmanCorrelation(classified[i], classified[kNumeric]);
    out.rho[i * names.size() + kNumeric] = r;
    out.rho[kNumeric * names.size() + i] = r;
  }
  return out;
}

}  // namespace rc::analysis
