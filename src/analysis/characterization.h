// Workload characterization toolkit: builds, from a trace, every
// distribution Section 3 of the paper reports (Figures 1-8). The benchmark
// harness prints these; tests validate the synthetic workload against the
// published shapes.
#ifndef RC_SRC_ANALYSIS_CHARACTERIZATION_H_
#define RC_SRC_ANALYSIS_CHARACTERIZATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/analysis/periodicity.h"
#include "src/analysis/spearman.h"
#include "src/common/cdf.h"
#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/trace/trace.h"

namespace rc::analysis {

enum class PartyFilter { kAll, kFirst, kThird };
const char* ToString(PartyFilter f);
bool Matches(const rc::trace::VmRecord& vm, PartyFilter filter);

// --- Figure 1: CDFs of average and P95-of-max CPU utilization ---
struct UtilizationCdfs {
  rc::EmpiricalCdf avg;
  rc::EmpiricalCdf p95_max;
};
UtilizationCdfs BuildUtilizationCdfs(const rc::trace::Trace& trace, PartyFilter filter);

// --- Figures 2 and 3: VM size breakdowns ---
// Fractions keyed by core count ("1", "2", "4", ...).
rc::CategoricalHistogram CoreBreakdown(const rc::trace::Trace& trace, PartyFilter filter);
// Fractions keyed by memory size in GB ("0.75", "1.75", ...).
rc::CategoricalHistogram MemoryBreakdown(const rc::trace::Trace& trace, PartyFilter filter);

// --- Figure 4: deployments, redefined as in the paper ---
// "the set of VMs from each subscription that are deployed to a region
// during a day."
struct DeploymentGroup {
  uint64_t subscription_id = 0;
  int32_t region = 0;
  int64_t day = 0;
  rc::trace::Party party = rc::trace::Party::kFirst;
  int64_t vm_count = 0;
  int64_t cores = 0;
};
std::vector<DeploymentGroup> GroupDeployments(const rc::trace::Trace& trace);
rc::EmpiricalCdf DeploymentSizeCdf(const rc::trace::Trace& trace, PartyFilter filter);

// --- Figure 5: lifetime CDF over VMs that completed within the window ---
rc::EmpiricalCdf LifetimeCdf(const rc::trace::Trace& trace, PartyFilter filter);

// --- Figure 6: core-hours by workload class ---
struct ClassCoreHours {
  double delay_insensitive = 0.0;
  double interactive = 0.0;
  double unknown = 0.0;
  double total() const { return delay_insensitive + interactive + unknown; }
};
// Core-hours are clipped to the observation window. When `use_fft` is true
// the class is re-derived by the FFT detector (the paper's method);
// otherwise the generative ground-truth label is used.
ClassCoreHours CoreHoursByClass(const rc::trace::Trace& trace, PartyFilter filter,
                                bool use_fft);

// --- Figure 7: VM arrivals per hour at one region ---
std::vector<int64_t> HourlyArrivals(const rc::trace::Trace& trace, int region,
                                    SimTime from, SimTime to);

// --- Per-subscription consistency (CoV) ---
// CoV of `metric` across each subscription's VMs (subscriptions with at
// least `min_vms` VMs). Section 3 reports e.g. "80% of subscriptions exhibit
// a CoV of their average CPU utilizations smaller than 1".
std::vector<double> SubscriptionCoVs(
    const rc::trace::Trace& trace,
    const std::function<double(const rc::trace::VmRecord&)>& metric, size_t min_vms = 3);
// Fraction of values < threshold; convenience for the claims above.
double FractionBelow(const std::vector<double>& xs, double threshold);

// Fraction of subscriptions (with >= min_vms VMs) whose VMs all share one VM
// type (paper: 96%).
double SingleTypeSubscriptionFraction(const rc::trace::Trace& trace, size_t min_vms = 2);

// --- Figure 8: Spearman correlations across the VM metrics ---
// Columns: avg util, p95 util, cores, memory, lifetime, deployment size,
// class (1 = delay-insensitive, 2 = interactive; unknown-class VMs are
// excluded so all columns align).
CorrelationMatrix MetricCorrelations(const rc::trace::Trace& trace, PartyFilter filter);

}  // namespace rc::analysis

#endif  // RC_SRC_ANALYSIS_CHARACTERIZATION_H_
