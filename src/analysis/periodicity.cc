#include "src/analysis/periodicity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/ml/fft.h"
#include "src/trace/utilization.h"

namespace rc::analysis {

using rc::trace::UtilizationModel;
using rc::trace::VmRecord;
using rc::trace::WorkloadClass;

WorkloadClass ClassifySeries(std::span<const double> avg_series,
                             const PeriodicityConfig& config) {
  const size_t n = avg_series.size();
  if (static_cast<SimDuration>(n) * kSlot < config.min_span) {
    return WorkloadClass::kUnknown;
  }
  std::vector<double> power = rc::ml::PowerSpectrum(avg_series, /*hann_window=*/true);
  if (power.size() < 8) return WorkloadClass::kUnknown;
  const size_t padded = (power.size() - 1) * 2;

  double total = 0.0;
  for (size_t k = 1; k < power.size(); ++k) total += power[k];
  if (total <= 0.0) return WorkloadClass::kDelayInsensitive;

  // Median per-bin power (excluding DC) as the broadband noise floor.
  std::vector<double> sorted(power.begin() + 1, power.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
  double median = sorted[sorted.size() / 2];

  // Diurnal frequency in cycles/sample: one cycle per kSlotsPerDay samples.
  double diurnal_bin = static_cast<double>(padded) / static_cast<double>(kSlotsPerDay);
  auto band_power = [&](double center) {
    size_t lo = static_cast<size_t>(std::max(1.0, std::floor(center - 1.0)));
    size_t hi = static_cast<size_t>(std::min(static_cast<double>(power.size() - 1),
                                             std::ceil(center + 1.0)));
    double p = 0.0;
    for (size_t k = lo; k <= hi; ++k) p = std::max(p, power[k]);
    return p;
  };
  // Check the fundamental and its first harmonic (12 h), since workday
  // patterns often split power across both.
  double peak = std::max(band_power(diurnal_bin), band_power(2.0 * diurnal_bin));

  bool periodic = peak > config.peak_to_median * std::max(median, 1e-12) &&
                  peak > config.min_power_fraction * total;
  return periodic ? WorkloadClass::kInteractive : WorkloadClass::kDelayInsensitive;
}

WorkloadClass ClassifyVm(const VmRecord& vm, const PeriodicityConfig& config) {
  if (vm.lifetime() < config.min_span) return WorkloadClass::kUnknown;
  int64_t from = SlotIndex(vm.created) + 1;
  int64_t span_slots = std::min<int64_t>(vm.lifetime() / kSlot,
                                         config.analysis_days * kSlotsPerDay);
  std::vector<double> series = UtilizationModel::AvgSeries(vm.util, from, span_slots);
  return ClassifySeries(series, config);
}

}  // namespace rc::analysis
