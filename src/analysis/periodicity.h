// FFT-based workload-class detector (paper Section 3.6): a VM whose
// average-CPU series exhibits a dominant spectral peak at the diurnal
// frequency (or its first harmonic) over >= 3 days is classified as
// potentially interactive; everything else long-running is delay-insensitive;
// VMs that did not run 3 consecutive days are Unknown. The classification is
// deliberately conservative: false "interactive" labels are acceptable,
// false "delay-insensitive" labels are not.
#ifndef RC_SRC_ANALYSIS_PERIODICITY_H_
#define RC_SRC_ANALYSIS_PERIODICITY_H_

#include <span>

#include "src/common/sim_time.h"
#include "src/trace/vm_types.h"

namespace rc::analysis {

struct PeriodicityConfig {
  // Minimum series length to attempt classification.
  SimDuration min_span = 3 * kDay;
  // Number of days of telemetry analyzed (from VM creation).
  int analysis_days = 3;
  // A diurnal peak must carry at least this multiple of the median
  // per-bin spectral power to count as periodic...
  double peak_to_median = 40.0;
  // ...and at least this fraction of total signal power. (Still biased
  // toward recall: a periodic background VM may be flagged interactive,
  // which the paper deems the acceptable direction of error.)
  double min_power_fraction = 0.25;
};

// Classifies a raw average-CPU series sampled at 5-minute slots.
rc::trace::WorkloadClass ClassifySeries(std::span<const double> avg_series,
                                        const PeriodicityConfig& config = {});

// Convenience: synthesizes the VM's telemetry for the analysis window and
// classifies it. Returns Unknown for VMs shorter than min_span.
rc::trace::WorkloadClass ClassifyVm(const rc::trace::VmRecord& vm,
                                    const PeriodicityConfig& config = {});

}  // namespace rc::analysis

#endif  // RC_SRC_ANALYSIS_PERIODICITY_H_
