// TinyLFU frequency sketch (DESIGN.md "Admission-controlled caching"): a
// 4-bit count-min sketch with a doorkeeper bloom filter in front and
// periodic halving ("aging"), so an entry's estimated popularity tracks its
// *recent* request rate rather than its lifetime count. The admission policy
// (sharded_cache) compares the sketch frequency of an eviction candidate
// against the main region's victim; one-shot scan keys never accumulate
// enough frequency to displace the hot working set.
//
// Concurrency: Observe() is called from the cache's lock-free hit path, so
// every mutation is a relaxed/CAS atomic op — no mutex anywhere. Counter
// increments are bounded CAS loops that give up under contention and skip
// entirely once the nibble saturates at 15 (hot keys stop writing almost
// immediately, which is what keeps a Zipf-hot probe path cheap). Reset() is
// writer-only (the owning shard's insert path) and is lossy with respect to
// concurrent Observes — the sketch is an estimator, not a ledger.
#ifndef RC_SRC_CACHE_FREQUENCY_SKETCH_H_
#define RC_SRC_CACHE_FREQUENCY_SKETCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace rc::cache {

class FrequencySketch {
 public:
  FrequencySketch() = default;

  // Sizes the sketch for ~`capacity` cached entries: one 64-bit word of
  // sixteen 4-bit counters per entry (4x headroom over the 4 hashed rows)
  // and a 4-bits-per-entry doorkeeper. Must be called before any Observe;
  // the cache calls it while building the shard table, before the table is
  // published to readers.
  void Init(size_t capacity);
  bool initialized() const { return table_ != nullptr; }

  // Records one access. First-time keys only set doorkeeper bits; keys seen
  // again increment their four count-min nibbles (saturating at 15).
  void Observe(uint64_t hash);

  // Estimated access count: min of the four nibbles, plus one if the
  // doorkeeper remembers the key. Range [0, 16].
  int Frequency(uint64_t hash) const;

  // True once enough accesses accumulated that counts should be halved.
  bool ShouldReset() const {
    return sample_size_ > 0 &&
           additions_.load(std::memory_order_relaxed) >= sample_size_;
  }

  // Halves every counter and clears the doorkeeper. Writer-only; concurrent
  // Observes may be partially lost (by design — the sketch is approximate).
  void Reset();

  uint64_t resets() const { return resets_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kDepth = 4;  // count-min rows

  // Spreads `hash` into the i-th row's counter index.
  size_t CounterIndex(uint64_t hash, int row) const;

  std::unique_ptr<std::atomic<uint64_t>[]> table_;  // 16 nibbles per word
  size_t table_words_ = 0;                          // power of two
  std::unique_ptr<std::atomic<uint64_t>[]> door_;   // doorkeeper bitset
  size_t door_bits_ = 0;                            // power of two
  uint64_t sample_size_ = 0;                        // reset threshold
  std::atomic<uint64_t> additions_{0};
  std::atomic<uint64_t> resets_{0};
};

}  // namespace rc::cache

#endif  // RC_SRC_CACHE_FREQUENCY_SKETCH_H_
