#include "src/cache/sharded_cache.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "src/common/hashing.h"

namespace rc::cache {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;
constexpr auto kAcquire = std::memory_order_acquire;
constexpr auto kRelease = std::memory_order_release;

constexpr uint32_t kNil = 0xFFFFFFFFu;
constexpr uint8_t kCtrlEmpty = 0;
constexpr uint8_t kCtrlTombstone = 1;

std::atomic<uint64_t> g_shard_lock_count{0};

// Control byte for a present entry: high bit set plus 7 tag bits from the
// top of the mixed hash (disjoint from the probe-start bits), so a probe
// touches the 32-byte slot only when the tag already agrees.
uint8_t TagFor(uint64_t h) { return static_cast<uint8_t>(0x80u | (h >> 57)); }

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// One cached entry as readers see it. All fields are atomics so the seqlock
// read protocol is expressible without fences and visible to TSan as plain
// atomic traffic: writers bump `seq` odd (acq_rel RMW — later stores cannot
// hoist above it), store the fields with release, then bump `seq` even with
// release; readers load `seq` with acquire, load the fields with acquire
// (which pins the revalidating `seq` load after them), and retry on any
// mismatch or odd value.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> key{0};
  std::atomic<uint64_t> w0{0};
  std::atomic<uint64_t> w1{0};
};

enum Region : uint8_t { kFree = 0, kWindow = 1, kProbation = 2, kProtected = 3 };

// Writer-side per-slot policy metadata: intrusive LRU links + region tag.
struct Meta {
  uint32_t prev = kNil;
  uint32_t next = kNil;
  uint8_t region = kFree;
};

struct List {
  uint32_t head = kNil;  // LRU end (eviction candidates)
  uint32_t tail = kNil;  // MRU end
  size_t size = 0;
};

}  // namespace

uint64_t ShardLockAcquisitions() { return g_shard_lock_count.load(kRelaxed); }

struct Word2Cache::Shard {
  mutable std::mutex mu;  // writers only; the hit path never touches it

  // Reader-visible table, published with a release store of `ctrl` after
  // everything else is initialized under mu (lazy: a never-inserted shard
  // costs two null pointers).
  std::atomic<std::atomic<uint8_t>*> ctrl{nullptr};
  std::atomic<Slot*> slots{nullptr};
  size_t table_mask = 0;
  std::unique_ptr<std::atomic<uint8_t>[]> ctrl_storage;
  std::unique_ptr<Slot[]> slots_storage;

  FrequencySketch sketch;

  // Lossy access ring: readers append hit keys (one relaxed fetch_add + one
  // relaxed store), the writer drains on insert to update recency. Overruns
  // drop the oldest events — the policy is an approximation either way.
  static constexpr size_t kRingSize = 256;
  std::unique_ptr<std::atomic<uint64_t>[]> ring;
  std::atomic<uint64_t> ring_head{0};
  uint64_t ring_tail = 0;  // guarded by mu

  // W-TinyLFU policy state; all guarded by mu.
  std::vector<Meta> meta;
  List window, probation, prot;
  size_t capacity = 0;
  size_t window_cap = 0;
  size_t main_cap = 0;
  size_t protected_cap = 0;
  size_t entries = 0;
  size_t tombstones = 0;
};

Word2Cache::Word2Cache(const CacheOptions& options) : options_(options) {
  const size_t shard_count =
      NextPow2(std::clamp<size_t>(options_.shards, 1, 256));
  shard_mask_ = shard_count - 1;
  shard_capacity_ =
      options_.capacity == 0
          ? 0
          : std::max<size_t>(1, options_.capacity / shard_count);
  shards_ = std::make_unique<Shard[]>(shard_count);
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Shard& s = shards_[i];
    s.capacity = shard_capacity_;
    if (!options_.admission) {
      // Plain-LRU control arm: the window is the whole cache.
      s.window_cap = s.capacity;
    } else {
      s.window_cap = std::max<size_t>(
          1, static_cast<size_t>(
                 std::llround(static_cast<double>(s.capacity) *
                              options_.window_fraction)));
      s.window_cap = std::min(s.window_cap, s.capacity);
      s.main_cap = s.capacity - s.window_cap;
      s.protected_cap = static_cast<size_t>(
          std::llround(static_cast<double>(s.main_cap) *
                       options_.protected_fraction));
    }
  }
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<rc::obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  RegisterInstruments();
}

Word2Cache::~Word2Cache() = default;

void Word2Cache::RegisterInstruments() {
  auto labeled = [this](const char* key, const char* value) {
    rc::obs::Labels labels = options_.metric_labels;
    labels.emplace_back(key, value);
    return labels;
  };
  m_.entries = &metrics_->GetGauge("rc_cache_entries", options_.metric_labels,
                                   "live cached entries across shards");
  m_.admit_rejects =
      &metrics_->GetCounter("rc_cache_admit_rejects", options_.metric_labels,
                            "window candidates rejected by TinyLFU admission");
  m_.evictions_window = &metrics_->GetCounter(
      "rc_cache_evictions", labeled("region", "window"), "evictions by region");
  m_.evictions_probation =
      &metrics_->GetCounter("rc_cache_evictions", labeled("region", "probation"));
  m_.evictions_protected =
      &metrics_->GetCounter("rc_cache_evictions", labeled("region", "protected"));
  m_.sketch_resets =
      &metrics_->GetCounter("rc_cache_sketch_resets", options_.metric_labels,
                            "frequency-sketch halving events");
  m_.probe_retries = &metrics_->GetCounter(
      "rc_cache_probe_retries", options_.metric_labels,
      "seqlock validation failures on the lock-free probe path");
  m_.rebuilds =
      &metrics_->GetCounter("rc_cache_rebuilds", options_.metric_labels,
                            "tombstone-compaction table rebuilds");
}

Word2Cache::Shard& Word2Cache::ShardFor(uint64_t mixed_hash) const {
  return shards_[mixed_hash & shard_mask_];
}

namespace {

// --- intrusive LRU list helpers (writer lock held) ---

void ListPushBack(std::vector<Meta>& meta, List& list, uint32_t idx,
                  uint8_t region) {
  Meta& m = meta[idx];
  m.region = region;
  m.next = kNil;
  m.prev = list.tail;
  if (list.tail != kNil) meta[list.tail].next = idx;
  list.tail = idx;
  if (list.head == kNil) list.head = idx;
  list.size += 1;
}

void ListRemove(std::vector<Meta>& meta, List& list, uint32_t idx) {
  Meta& m = meta[idx];
  if (m.prev != kNil) meta[m.prev].next = m.next; else list.head = m.next;
  if (m.next != kNil) meta[m.next].prev = m.prev; else list.tail = m.prev;
  m.prev = m.next = kNil;
  list.size -= 1;
}

// Seqlock write cycle over one slot. Requires the shard writer lock.
void SeqlockWrite(Slot& slot, uint64_t key, uint64_t w0, uint64_t w1) {
  slot.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: readers back off
  slot.key.store(key, std::memory_order_release);
  slot.w0.store(w0, std::memory_order_release);
  slot.w1.store(w1, std::memory_order_release);
  slot.seq.fetch_add(1, std::memory_order_release);  // even: stable again
}

}  // namespace

bool Word2Cache::Lookup(uint64_t key, uint64_t out[2]) const {
  if (shard_capacity_ == 0) return false;
  const uint64_t h = HashU64(key);
  Shard& s = ShardFor(h);
  std::unique_lock<std::mutex> locked;
  if (options_.locked_probe) {
    // Bench arm only: reintroduce the old locked probe layout.
    g_shard_lock_count.fetch_add(1, kRelaxed);
    locked = std::unique_lock<std::mutex>(s.mu);
  }
  std::atomic<uint8_t>* ctrl = s.ctrl.load(kAcquire);
  if (ctrl == nullptr) return false;  // shard never written
  Slot* slots = s.slots.load(kRelaxed);  // published before ctrl
  const size_t mask = s.table_mask;
  const uint8_t tag = TagFor(h);
  size_t i = (h >> 8) & mask;
  for (size_t n = 0; n <= mask; ++n, i = (i + 1) & mask) {
    const uint8_t c = ctrl[i].load(kAcquire);
    if (c == kCtrlEmpty) return false;
    if (c != tag) continue;  // tombstone or different 7-bit tag
    Slot& slot = slots[i];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const uint64_t s1 = slot.seq.load(kAcquire);
      if (s1 & 1) {  // writer mid-cycle
        m_.probe_retries->Increment();
        continue;
      }
      const uint64_t k = slot.key.load(kAcquire);
      const uint64_t a = slot.w0.load(kAcquire);
      const uint64_t b = slot.w1.load(kAcquire);
      if (slot.seq.load(kRelaxed) != s1) {  // torn: slot changed under us
        m_.probe_retries->Increment();
        continue;
      }
      if (k != key) break;  // tag collision: keep probing the chain
      out[0] = a;
      out[1] = b;
      // Record the access for the admission policy: frequency now, recency
      // via the ring the next writer drains. Both lock-free and lossy.
      s.sketch.Observe(h);
      const uint64_t pos = s.ring_head.fetch_add(1, kRelaxed);
      s.ring[pos & (Shard::kRingSize - 1)].store(key, kRelaxed);
      return true;
    }
    // Retries exhausted under writer churn: treat as a miss for this slot
    // and keep probing — a false miss is safe, a torn value is not.
  }
  return false;
}

// --- write side; every method below requires the shard lock ---

void Word2Cache::Insert(uint64_t key, const uint64_t value[2],
                        uint64_t epoch_token) {
  if (shard_capacity_ == 0) return;
  const uint64_t h = HashU64(key);
  Shard& s = ShardFor(h);
  g_shard_lock_count.fetch_add(1, kRelaxed);
  std::lock_guard<std::mutex> lock(s.mu);
  // An invalidation ran after the caller read its token; dropping the insert
  // keeps stale values from outliving the invalidation. (If the epoch bumps
  // after this check, Invalidate's pending per-shard clear — which takes
  // this same lock — removes the entry.)
  if (epoch_.load(kAcquire) != epoch_token) return;
  EnsureTableLocked(s);
  DrainRingLocked(s);
  s.sketch.Observe(h);
  if (s.sketch.ShouldReset()) {
    s.sketch.Reset();
    m_.sketch_resets->Increment();
  }
  uint32_t idx = FindSlotLocked(s, key, h);
  if (idx != kNil) {  // present: update value in place, refresh recency
    SeqlockWrite(s.slots_storage[idx], key, value[0], value[1]);
    TouchLocked(s, idx);
    return;
  }
  idx = PlaceLocked(s, key, h, value);
  ListPushBack(s.meta, s.window, idx, kWindow);
  s.entries += 1;
  total_entries_.fetch_add(1, kRelaxed);
  // A new arrival always lands in the window; overflow sheds the window's
  // LRU candidate through TinyLFU admission — one entry per insert, never a
  // shard flush.
  while (s.window.size > s.window_cap) EvictFromWindowLocked(s);
  m_.entries->Set(static_cast<double>(total_entries_.load(kRelaxed)));
  MaybeRebuildLocked(s);
}

void Word2Cache::EnsureTableLocked(Shard& s) {
  if (s.ctrl.load(kRelaxed) != nullptr) return;
  const size_t table = NextPow2(std::max<size_t>(64, s.capacity * 2));
  s.table_mask = table - 1;
  s.ctrl_storage = std::make_unique<std::atomic<uint8_t>[]>(table);
  s.slots_storage = std::make_unique<Slot[]>(table);
  s.ring = std::make_unique<std::atomic<uint64_t>[]>(Word2Cache::Shard::kRingSize);
  s.meta.assign(table, Meta{});
  s.sketch.Init(s.capacity);
  s.slots.store(s.slots_storage.get(), kRelease);
  // Publishing ctrl last makes every prior write visible to the lock-free
  // reader that acquires it.
  s.ctrl.store(s.ctrl_storage.get(), kRelease);
}

uint32_t Word2Cache::FindSlotLocked(const Shard& s, uint64_t key, uint64_t h) {
  const std::atomic<uint8_t>* ctrl = s.ctrl.load(kRelaxed);
  const size_t mask = s.table_mask;
  const uint8_t tag = TagFor(h);
  size_t i = (h >> 8) & mask;
  for (size_t n = 0; n <= mask; ++n, i = (i + 1) & mask) {
    const uint8_t c = ctrl[i].load(kRelaxed);
    if (c == kCtrlEmpty) return kNil;
    if (c != tag) continue;
    if (s.slots_storage[i].key.load(kRelaxed) == key) {
      return static_cast<uint32_t>(i);
    }
  }
  return kNil;
}

uint32_t Word2Cache::PlaceLocked(Shard& s, uint64_t key, uint64_t h,
                                 const uint64_t value[2]) {
  const size_t mask = s.table_mask;
  size_t i = (h >> 8) & mask;
  size_t target = SIZE_MAX;
  for (size_t n = 0; n <= mask; ++n, i = (i + 1) & mask) {
    const uint8_t c = s.ctrl_storage[i].load(kRelaxed);
    if (c == kCtrlTombstone && target == SIZE_MAX) target = i;
    if (c == kCtrlEmpty) {
      if (target == SIZE_MAX) target = i;
      break;
    }
  }
  if (s.ctrl_storage[target].load(kRelaxed) == kCtrlTombstone) {
    s.tombstones -= 1;
  }
  SeqlockWrite(s.slots_storage[target], key, value[0], value[1]);
  // Tag after the slot write: a reader never sees a tagged, unwritten slot.
  s.ctrl_storage[target].store(TagFor(h), kRelease);
  s.meta[target] = Meta{};
  return static_cast<uint32_t>(target);
}

void Word2Cache::EvictSlotLocked(Shard& s, uint32_t idx) {
  SeqlockWrite(s.slots_storage[idx], 0, 0, 0);
  s.ctrl_storage[idx].store(kCtrlTombstone, kRelease);
  s.meta[idx].region = kFree;
  s.entries -= 1;
  s.tombstones += 1;
  total_entries_.fetch_sub(1, kRelaxed);
}

void Word2Cache::EvictFromWindowLocked(Shard& s) {
  const uint32_t cand = s.window.head;
  ListRemove(s.meta, s.window, cand);
  if (s.main_cap == 0) {  // plain-LRU mode (or degenerate tiny cache)
    EvictSlotLocked(s, cand);
    m_.evictions_window->Increment();
    return;
  }
  if (s.probation.size + s.prot.size < s.main_cap) {
    ListPushBack(s.meta, s.probation, cand, kProbation);
    return;
  }
  // Admission duel: the window candidate displaces the main region's victim
  // only if the sketch says it is the more frequent key.
  const uint32_t victim =
      s.probation.head != kNil ? s.probation.head : s.prot.head;
  const uint64_t cand_key = s.slots_storage[cand].key.load(kRelaxed);
  const uint64_t victim_key = s.slots_storage[victim].key.load(kRelaxed);
  const int cand_freq = s.sketch.Frequency(HashU64(cand_key));
  const int victim_freq = s.sketch.Frequency(HashU64(victim_key));
  if (cand_freq > victim_freq) {
    const bool from_protected = s.meta[victim].region == kProtected;
    ListRemove(s.meta, from_protected ? s.prot : s.probation, victim);
    EvictSlotLocked(s, victim);
    (from_protected ? m_.evictions_protected : m_.evictions_probation)
        ->Increment();
    ListPushBack(s.meta, s.probation, cand, kProbation);
  } else {
    EvictSlotLocked(s, cand);
    m_.evictions_window->Increment();
    m_.admit_rejects->Increment();
  }
}

void Word2Cache::TouchLocked(Shard& s, uint32_t idx) {
  switch (s.meta[idx].region) {
    case kWindow:
      ListRemove(s.meta, s.window, idx);
      ListPushBack(s.meta, s.window, idx, kWindow);
      break;
    case kProbation:
      // Re-accessed on probation: promote. The protected segment sheds its
      // own LRU back to probation when over budget (no eviction).
      ListRemove(s.meta, s.probation, idx);
      ListPushBack(s.meta, s.prot, idx, kProtected);
      while (s.prot.size > s.protected_cap && s.prot.head != kNil) {
        const uint32_t demoted = s.prot.head;
        ListRemove(s.meta, s.prot, demoted);
        ListPushBack(s.meta, s.probation, demoted, kProbation);
      }
      break;
    case kProtected:
      ListRemove(s.meta, s.prot, idx);
      ListPushBack(s.meta, s.prot, idx, kProtected);
      break;
    default:
      break;
  }
}

void Word2Cache::DrainRingLocked(Shard& s) {
  if (s.ring == nullptr) return;
  const uint64_t head = s.ring_head.load(kAcquire);
  if (head == s.ring_tail) return;
  if (head - s.ring_tail > Shard::kRingSize) {
    s.ring_tail = head - Shard::kRingSize;  // overrun: oldest events lost
  }
  while (s.ring_tail != head) {
    const uint64_t key =
        s.ring[s.ring_tail & (Shard::kRingSize - 1)].load(kRelaxed);
    s.ring_tail += 1;
    const uint32_t idx = FindSlotLocked(s, key, HashU64(key));
    if (idx != kNil) TouchLocked(s, idx);
  }
}

void Word2Cache::MaybeRebuildLocked(Shard& s) {
  const size_t table = s.table_mask + 1;
  if (s.tombstones <= table / 4) return;
  // Compact tombstones away: collect every live entry in LRU order per
  // region, wipe the control bytes, and replay the inserts. Readers racing
  // the rebuild see spurious misses at worst — the seqlock and key check
  // keep recycled slots from ever yielding a wrong value.
  struct Saved {
    uint64_t key, w0, w1;
    uint8_t region;
  };
  std::vector<Saved> saved;
  saved.reserve(s.entries);
  auto collect = [&](const List& list, uint8_t region) {
    for (uint32_t i = list.head; i != kNil; i = s.meta[i].next) {
      Slot& slot = s.slots_storage[i];
      saved.push_back({slot.key.load(kRelaxed), slot.w0.load(kRelaxed),
                       slot.w1.load(kRelaxed), region});
    }
  };
  collect(s.window, kWindow);
  collect(s.probation, kProbation);
  collect(s.prot, kProtected);
  for (size_t i = 0; i < table; ++i) {
    s.ctrl_storage[i].store(kCtrlEmpty, kRelease);
  }
  s.meta.assign(table, Meta{});
  s.window = s.probation = s.prot = List{};
  s.tombstones = 0;
  for (const Saved& e : saved) {
    const uint64_t value[2] = {e.w0, e.w1};
    const uint32_t idx = PlaceLocked(s, e.key, HashU64(e.key), value);
    switch (e.region) {
      case kWindow: ListPushBack(s.meta, s.window, idx, kWindow); break;
      case kProbation: ListPushBack(s.meta, s.probation, idx, kProbation); break;
      default: ListPushBack(s.meta, s.prot, idx, kProtected); break;
    }
  }
  m_.rebuilds->Increment();
}

void Word2Cache::Invalidate() {
  // Bump first: inserts racing this call fail their token check, and any
  // insert that squeaked past it is removed by the per-shard clears below
  // (which serialize on the same writer locks).
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (size_t sh = 0; sh <= shard_mask_; ++sh) {
    Shard& s = shards_[sh];
    g_shard_lock_count.fetch_add(1, kRelaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.ctrl.load(kRelaxed) == nullptr) continue;
    const size_t table = s.table_mask + 1;
    for (size_t i = 0; i < table; ++i) {
      if (s.meta[i].region != kFree) {
        SeqlockWrite(s.slots_storage[i], 0, 0, 0);
      }
      s.ctrl_storage[i].store(kCtrlEmpty, kRelease);
    }
    s.meta.assign(table, Meta{});
    s.window = s.probation = s.prot = List{};
    s.tombstones = 0;
    total_entries_.fetch_sub(static_cast<int64_t>(s.entries), kRelaxed);
    s.entries = 0;
    s.ring_tail = s.ring_head.load(kAcquire);  // drop queued recency events
    // The sketch survives: the invalidated keys are about to be re-requested
    // and their frequency history is exactly what admission needs.
  }
  m_.entries->Set(static_cast<double>(std::max<int64_t>(
      0, total_entries_.load(kRelaxed))));
}

size_t Word2Cache::size() const {
  return static_cast<size_t>(std::max<int64_t>(0, total_entries_.load(kRelaxed)));
}

CacheStats Word2Cache::Stats() const {
  CacheStats out;
  out.entries = size();
  out.admit_rejects = m_.admit_rejects->Value();
  out.evictions_window = m_.evictions_window->Value();
  out.evictions_probation = m_.evictions_probation->Value();
  out.evictions_protected = m_.evictions_protected->Value();
  out.sketch_resets = m_.sketch_resets->Value();
  out.probe_retries = m_.probe_retries->Value();
  out.rebuilds = m_.rebuilds->Value();
  return out;
}

}  // namespace rc::cache
