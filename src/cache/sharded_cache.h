// rc::cache — reusable admission-controlled, lock-free-on-hit result cache
// (DESIGN.md "Admission-controlled caching & sharded store").
//
// Layering: this library sits below src/core (core depends on cache, never
// the reverse — check_all.sh lints it). It knows nothing about predictions;
// it maps 64-bit keys to small trivially-copyable values.
//
// Structure (per shard):
//  * Read path — an open-addressed, power-of-two table of seqlock-stamped
//    fixed-size entries plus a SwissTable-style control-byte array (7-bit
//    key tag, empty, tombstone). A hit performs ZERO mutex acquisitions:
//    probe the control bytes, seqlock-read the slot (bounded retries; a
//    validation failure is counted and treated as a mismatch), then record
//    the access in the frequency sketch (lossy CAS) and a lossy ring buffer
//    that writers drain for recency updates. Every slot field readers touch
//    is an atomic, so the seqlock needs no fences and is visible to TSan as
//    plain atomics (no annotations, no suppressions).
//  * Write path — one mutex per shard serializes inserts/evictions and all
//    policy state: a W-TinyLFU arrangement of a small admission window
//    (LRU), a segmented main region (probation/protected LRUs), and the
//    4-bit count-min FrequencySketch with doorkeeper + periodic halving.
//    Capacity overflow evicts per insert — never a bulk flush: the window's
//    LRU candidate duels the probation victim on sketch frequency, so
//    one-shot scan keys cannot displace the Zipf-hot working set.
//  * Epoch invalidation — Insert carries the epoch token the caller read
//    before computing the value; Invalidate() bumps the epoch and then
//    clears each shard under its writer lock, so an insert racing an
//    invalidation can never resurrect a stale value (the same protocol the
//    client's old sharded map used, preserved exactly).
//
// Deletion uses tombstones; when they accumulate past a quarter of the
// table the writer rebuilds the shard in place. Readers racing a rebuild
// (or any eviction) can see a spurious miss — never a wrong value: the
// seqlock + key check reject torn or recycled slots, and for a cache a
// false miss is just a recompute.
#ifndef RC_SRC_CACHE_SHARDED_CACHE_H_
#define RC_SRC_CACHE_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>

#include "src/cache/frequency_sketch.h"
#include "src/obs/metrics.h"

namespace rc::cache {

// Test hook: process-wide count of shard writer-mutex acquisitions (every
// Insert / Invalidate / locked probe). Tests assert a warm hit storm leaves
// this unchanged — the "zero mutex acquisitions on the hit path" criterion.
uint64_t ShardLockAcquisitions();

struct CacheOptions {
  // Total entries across all shards. 0 disables the cache (lookups miss,
  // inserts drop).
  size_t capacity = 1 << 20;
  // Power of two; clamped to [1, 256].
  size_t shards = 16;
  // W-TinyLFU admission. false degrades the policy to a plain LRU over the
  // whole capacity (the window becomes the only region) — the control arm
  // for admission-quality tests and benches.
  bool admission = true;
  // Share of capacity held by the admission window (recency-biased region).
  double window_fraction = 0.01;
  // Share of the main region reserved for the protected segment.
  double protected_fraction = 0.80;
  // Bench arm: take the shard mutex around every lookup, turning the probe
  // into the old locked layout — isolates what lock-freedom itself buys.
  bool locked_probe = false;
  // Registry receiving the rc_cache_* instruments; null = a private one.
  rc::obs::MetricsRegistry* metrics = nullptr;
  rc::obs::Labels metric_labels;
};

struct CacheStats {
  uint64_t entries = 0;
  uint64_t admit_rejects = 0;        // window candidates the sketch rejected
  uint64_t evictions_window = 0;     // includes admission rejections
  uint64_t evictions_probation = 0;  // main victims displaced by admission
  uint64_t evictions_protected = 0;  // plain-LRU mode / clears only
  uint64_t sketch_resets = 0;
  uint64_t probe_retries = 0;  // seqlock validation failures on the read path
  uint64_t rebuilds = 0;       // tombstone-compaction table rebuilds
};

// The engine: keys are caller-provided 64-bit hashes, values are exactly two
// 64-bit words. Use ShardedCache<V> below for typed values.
class Word2Cache {
 public:
  explicit Word2Cache(const CacheOptions& options);
  ~Word2Cache();

  Word2Cache(const Word2Cache&) = delete;
  Word2Cache& operator=(const Word2Cache&) = delete;

  // Lock-free on hit (unless options.locked_probe). Fills out[2] and
  // records the access for the admission policy.
  bool Lookup(uint64_t key, uint64_t out[2]) const;

  // Inserts (or updates in place) unless the cache was invalidated after
  // `epoch_token` was read. At capacity this evicts per the policy — one
  // entry, never a shard flush.
  void Insert(uint64_t key, const uint64_t value[2], uint64_t epoch_token);

  // Read before computing a value destined for Insert.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Bumps the epoch, then clears every shard (entries only — the frequency
  // sketch survives, since the same keys are about to be re-requested).
  void Invalidate();

  size_t size() const;
  CacheStats Stats() const;

  size_t shard_count() const { return shard_mask_ + 1; }

 private:
  struct Shard;

  void RegisterInstruments();
  Shard& ShardFor(uint64_t mixed_hash) const;

  // Write-side helpers; all require the shard's writer lock.
  static void EnsureTableLocked(Shard& s);
  static uint32_t FindSlotLocked(const Shard& s, uint64_t key, uint64_t h);
  uint32_t PlaceLocked(Shard& s, uint64_t key, uint64_t h,
                       const uint64_t value[2]);
  void EvictSlotLocked(Shard& s, uint32_t idx);
  void EvictFromWindowLocked(Shard& s);
  void TouchLocked(Shard& s, uint32_t idx);
  void DrainRingLocked(Shard& s);
  void MaybeRebuildLocked(Shard& s);

  CacheOptions options_;
  std::unique_ptr<Shard[]> shards_;
  size_t shard_mask_ = 0;
  size_t shard_capacity_ = 0;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int64_t> total_entries_{0};

  std::unique_ptr<rc::obs::MetricsRegistry> owned_metrics_;
  rc::obs::MetricsRegistry* metrics_ = nullptr;
  struct Instruments {
    rc::obs::Gauge* entries;
    rc::obs::Counter* admit_rejects;
    rc::obs::Counter* evictions_window;
    rc::obs::Counter* evictions_probation;
    rc::obs::Counter* evictions_protected;
    rc::obs::Counter* sketch_resets;
    rc::obs::Counter* probe_retries;
    rc::obs::Counter* rebuilds;
  };
  Instruments m_{};
};

// Typed facade: V must be trivially copyable and at most 16 bytes. Values
// round-trip through two 64-bit words (memcpy both ways), so padding bytes
// are preserved but never interpreted.
template <typename V>
class ShardedCache {
  static_assert(std::is_trivially_copyable_v<V>,
                "cache values must be trivially copyable");
  static_assert(sizeof(V) <= 16, "cache values must fit in 16 bytes");

 public:
  explicit ShardedCache(const CacheOptions& options) : impl_(options) {}

  std::optional<V> Lookup(uint64_t key) const {
    uint64_t words[2];
    if (!impl_.Lookup(key, words)) return std::nullopt;
    V value;
    std::memcpy(&value, words, sizeof(V));
    return value;
  }

  void Insert(uint64_t key, const V& value, uint64_t epoch_token) {
    uint64_t words[2] = {0, 0};
    std::memcpy(words, &value, sizeof(V));
    impl_.Insert(key, words, epoch_token);
  }

  uint64_t epoch() const { return impl_.epoch(); }
  void Invalidate() { impl_.Invalidate(); }
  size_t size() const { return impl_.size(); }
  CacheStats Stats() const { return impl_.Stats(); }

 private:
  Word2Cache impl_;
};

}  // namespace rc::cache

#endif  // RC_SRC_CACHE_SHARDED_CACHE_H_
