#include "src/cache/frequency_sketch.h"

#include <algorithm>

namespace rc::cache {

namespace {

// Row seeds (large odd constants): each count-min row sees an independently
// mixed view of the key hash.
constexpr uint64_t kRowSeed[4] = {
    0xc3a5c85c97cb3127ULL,
    0xb492b66fbe98f273ULL,
    0x9ae16a3b2f90404fULL,
    0x85ebca6b27d4eb2fULL,
};

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t Mix(uint64_t h, uint64_t seed) {
  uint64_t x = h * seed;
  x ^= x >> 32;
  return x;
}

// Saturating 4-bit increment at `shift` inside `word`. Bounded CAS: gives up
// under contention (the sketch is lossy) and skips once saturated.
bool IncrementNibble(std::atomic<uint64_t>& word, int shift) {
  uint64_t cur = word.load(std::memory_order_relaxed);
  for (int tries = 0; tries < 4; ++tries) {
    if (((cur >> shift) & 0xF) == 0xF) return false;  // saturated
    if (word.compare_exchange_weak(cur, cur + (1ULL << shift),
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void FrequencySketch::Init(size_t capacity) {
  capacity = std::max<size_t>(capacity, 16);
  table_words_ = NextPow2(capacity);
  table_ = std::make_unique<std::atomic<uint64_t>[]>(table_words_);
  door_bits_ = NextPow2(capacity * 4);
  door_ = std::make_unique<std::atomic<uint64_t>[]>(door_bits_ / 64);
  sample_size_ = 10 * capacity;
  additions_.store(0, std::memory_order_relaxed);
}

size_t FrequencySketch::CounterIndex(uint64_t hash, int row) const {
  // 16 counters per word: the low 4 bits select the nibble, the rest the word.
  return static_cast<size_t>(Mix(hash, kRowSeed[row])) &
         (table_words_ * 16 - 1);
}

void FrequencySketch::Observe(uint64_t hash) {
  if (table_ == nullptr) return;
  // Doorkeeper: two probe bits. A never-seen key just sets its bits; the
  // count-min rows only see keys accessed at least twice, which keeps
  // one-shot scans out of the counters entirely.
  const size_t b1 = static_cast<size_t>(Mix(hash, kRowSeed[0] ^ kRowSeed[2])) &
                    (door_bits_ - 1);
  const size_t b2 = static_cast<size_t>(Mix(hash, kRowSeed[1] ^ kRowSeed[3])) &
                    (door_bits_ - 1);
  const uint64_t m1 = 1ULL << (b1 & 63);
  const uint64_t m2 = 1ULL << (b2 & 63);
  const uint64_t w1 =
      door_[b1 >> 6].load(std::memory_order_relaxed);
  const uint64_t w2 =
      door_[b2 >> 6].load(std::memory_order_relaxed);
  if ((w1 & m1) == 0 || (w2 & m2) == 0) {
    door_[b1 >> 6].fetch_or(m1, std::memory_order_relaxed);
    door_[b2 >> 6].fetch_or(m2, std::memory_order_relaxed);
    additions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool incremented = false;
  for (int row = 0; row < kDepth; ++row) {
    size_t idx = CounterIndex(hash, row);
    incremented |= IncrementNibble(table_[idx >> 4], (idx & 15) * 4);
  }
  if (incremented) additions_.fetch_add(1, std::memory_order_relaxed);
}

int FrequencySketch::Frequency(uint64_t hash) const {
  if (table_ == nullptr) return 0;
  int freq = 15;
  for (int row = 0; row < kDepth; ++row) {
    size_t idx = CounterIndex(hash, row);
    uint64_t word = table_[idx >> 4].load(std::memory_order_relaxed);
    freq = std::min(freq, static_cast<int>((word >> ((idx & 15) * 4)) & 0xF));
  }
  const size_t b1 = static_cast<size_t>(Mix(hash, kRowSeed[0] ^ kRowSeed[2])) &
                    (door_bits_ - 1);
  const size_t b2 = static_cast<size_t>(Mix(hash, kRowSeed[1] ^ kRowSeed[3])) &
                    (door_bits_ - 1);
  const bool in_door =
      (door_[b1 >> 6].load(std::memory_order_relaxed) & (1ULL << (b1 & 63))) != 0 &&
      (door_[b2 >> 6].load(std::memory_order_relaxed) & (1ULL << (b2 & 63))) != 0;
  return freq + (in_door ? 1 : 0);
}

void FrequencySketch::Reset() {
  if (table_ == nullptr) return;
  // Halve every nibble in place: shift the word right once and mask out the
  // bit that leaked in from the neighboring nibble.
  constexpr uint64_t kHalveMask = 0x7777777777777777ULL;
  for (size_t w = 0; w < table_words_; ++w) {
    uint64_t cur = table_[w].load(std::memory_order_relaxed);
    table_[w].store((cur >> 1) & kHalveMask, std::memory_order_relaxed);
  }
  for (size_t w = 0; w < door_bits_ / 64; ++w) {
    door_[w].store(0, std::memory_order_relaxed);
  }
  additions_.store(sample_size_ / 2, std::memory_order_relaxed);
  resets_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rc::cache
