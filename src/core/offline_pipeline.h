// RC's offline workflow (paper Figure 9): data extraction, cleanup,
// aggregation, feature-data generation, training, validation, and model
// generation — then publication (with version numbers) to the highly
// available store.
//
// Training examples are built chronologically: a VM's features are the
// snapshot of its subscription's history at the VM's creation instant, with
// outcome observations folded in only at the time the platform would learn
// them (utilization and class while the VM runs; lifetime at termination;
// deployment size at end of the deployment day). This avoids training-time
// leakage and matches how the online system sees the world.
#ifndef RC_SRC_CORE_OFFLINE_PIPELINE_H_
#define RC_SRC_CORE_OFFLINE_PIPELINE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/buckets.h"
#include "src/core/feature_data.h"
#include "src/core/featurizer.h"
#include "src/core/model_spec.h"
#include "src/core/prediction.h"
#include "src/ml/classifier.h"
#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"
#include "src/obs/metrics.h"
#include "src/store/kv_store.h"
#include "src/trace/trace.h"
#include "src/trace/vm_size_catalog.h"

namespace rc::core {

struct PipelineConfig {
  // Training window (the paper trains on two months, tests on the third).
  SimTime train_begin = 0;
  SimTime train_end = 60 * kDay;
  // Label the class metric with the FFT detector's output (the paper's
  // method) rather than the generator's ground truth.
  bool use_fft_labels = true;
  rc::ml::RandomForestConfig rf;  // utilization metrics
  rc::ml::GbtConfig gbt;          // deployment size, lifetime, class
  uint64_t seed = 17;
  // Registry receiving the rc_pipeline_* stage-duration instruments;
  // null = process-global.
  rc::obs::MetricsRegistry* metrics = nullptr;
};

// One labeled example: creation-time inputs + history snapshot + outcome.
struct LabeledExample {
  ClientInputs inputs;
  SubscriptionFeatures history;
  int label = 0;
};

struct TrainedModels {
  std::map<std::string, std::unique_ptr<rc::ml::Classifier>> models;  // by model name
  std::map<std::string, ModelSpec> specs;
  // Feature-data snapshot at train_end — what RC pushes to clients.
  std::unordered_map<uint64_t, SubscriptionFeatures> feature_data;
};

class OfflinePipeline {
 public:
  explicit OfflinePipeline(PipelineConfig config) : config_(std::move(config)) {}

  // Runs the full workflow over the trace and returns the six trained
  // models plus the feature-data snapshot.
  TrainedModels Run(const rc::trace::Trace& trace) const;

  // Builds chronological labeled examples for `metric` over VMs (or, for the
  // deployment metrics, deployment groups) created in [from, to). Exposed for
  // evaluation (Table 4 uses the third month) and for the ablation benches.
  static std::vector<LabeledExample> BuildExamples(const rc::trace::Trace& trace,
                                                   Metric metric, SimTime from, SimTime to,
                                                   bool use_fft_labels);

  // Feature-data snapshot with all observations up to `until` folded in.
  static std::unordered_map<uint64_t, SubscriptionFeatures> BuildFeatureSnapshot(
      const rc::trace::Trace& trace, SimTime until, bool use_fft_labels);

  // Converts examples to an ml::Dataset under the given encoding.
  static rc::ml::Dataset ToDataset(const std::vector<LabeledExample>& examples,
                                   const Featurizer& featurizer);

  // Publishes models, specs, and feature data to the store. Failed writes
  // (store outage, injected publish faults) are retried a bounded number of
  // times; returns how many records were durably published so callers can
  // detect a partial publication. `metrics` receives the publish counters and
  // stage-duration sample (null = process-global).
  static size_t Publish(const TrainedModels& trained, rc::store::KvStore& store,
                        rc::obs::MetricsRegistry* metrics = nullptr);

  // Default model family per metric (Table 1): Random Forest for the two
  // utilization metrics, boosted trees for the rest.
  static bool UsesRandomForest(Metric metric);
  static FeatureEncoding EncodingFor(Metric metric);

 private:
  PipelineConfig config_;
};

}  // namespace rc::core

#endif  // RC_SRC_CORE_OFFLINE_PIPELINE_H_
