// Prediction-quality evaluation in the shape of Table 4: overall accuracy,
// per-bucket prevalence / precision / recall, and the confidence-thresholded
// P-theta / R-theta columns (theta = 0.6 in the paper).
#ifndef RC_SRC_CORE_EVALUATION_H_
#define RC_SRC_CORE_EVALUATION_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/buckets.h"
#include "src/core/featurizer.h"
#include "src/core/offline_pipeline.h"
#include "src/ml/classifier.h"
#include "src/ml/metrics.h"

namespace rc::core {

struct BucketQuality {
  double prevalence = 0.0;  // fraction of instances truly in this bucket
  double precision = 0.0;
  double recall = 0.0;
};

struct MetricQuality {
  Metric metric = Metric::kAvgCpu;
  int64_t examples = 0;
  double accuracy = 0.0;
  std::vector<BucketQuality> buckets;
  double p_theta = 0.0;  // accuracy over predictions served at score >= theta
  double r_theta = 0.0;  // fraction of requests served at score >= theta
  double theta = 0.6;
};

MetricQuality EvaluateModel(const rc::ml::Classifier& model, const Featurizer& featurizer,
                            std::span<const LabeledExample> examples, double theta = 0.6);

// Renders a Table-4-style row block for one metric.
std::string FormatMetricQuality(const MetricQuality& q);

}  // namespace rc::core

#endif  // RC_SRC_CORE_EVALUATION_H_
