#include "src/core/featurizer.h"

#include <cmath>
#include <stdexcept>

#include "src/common/sim_time.h"

namespace rc::core {

namespace {

const char* kMetricShort[] = {"avg", "p95", "dvms", "dcores", "life", "class"};

// History blocks included in the compact encoding, per metric.
std::vector<Metric> CompactHistoryMetrics(Metric metric) {
  switch (metric) {
    case Metric::kAvgCpu:
    case Metric::kP95Cpu:
      return {Metric::kAvgCpu, Metric::kP95Cpu};
    case Metric::kDeployVms:
    case Metric::kDeployCores:
      return {Metric::kDeployVms, Metric::kDeployCores, Metric::kLifetime};
    case Metric::kLifetime:
      return {Metric::kLifetime, Metric::kAvgCpu, Metric::kP95Cpu, Metric::kClass};
    case Metric::kClass:
      return {Metric::kClass, Metric::kLifetime, Metric::kAvgCpu, Metric::kP95Cpu};
  }
  return {};
}

}  // namespace

Featurizer::Featurizer(Metric metric, FeatureEncoding encoding)
    : metric_(metric), encoding_(encoding) {
  BuildNames();
}

void Featurizer::BuildNames() {
  names_.clear();
  auto add = [&](const std::string& n) { names_.push_back(n); };

  // Shared numeric block.
  add("cores");
  add("memory_gb");
  add("log_vm_count");
  add("log_deployment_count");

  if (encoding_ == FeatureEncoding::kExpanded) {
    add("mean_avg_cpu");
    add("mean_p95_cpu");
    add("mean_log_lifetime");
    add("mean_cores");
    add("mean_deploy_vms");
    // Full history block: every metric's bucket fractions.
    for (int m = 0; m < kNumMetrics; ++m) {
      for (int b = 0; b < 4; ++b) {
        add(std::string("hist_") + kMetricShort[m] + "_b" + std::to_string(b));
      }
    }
    // One-hot categoricals.
    for (int i = 0; i < 2; ++i) add("vm_type_" + std::to_string(i));
    for (int i = 0; i < 2; ++i) add("os_" + std::to_string(i));
    for (int i = 0; i < kNumRoles; ++i) add("role_" + std::to_string(i));
    for (int i = 0; i < kNumSizes; ++i) add("size_" + std::to_string(i));
    for (int i = 0; i < kNumRegions; ++i) add("region_" + std::to_string(i));
    for (int i = 0; i <= kNumServices; ++i) add("service_" + std::to_string(i));
    for (int i = 0; i < 24; ++i) add("hour_" + std::to_string(i));
    for (int i = 0; i < 7; ++i) add("dow_" + std::to_string(i));
  } else {
    // Integer-coded categoricals.
    add("vm_type");
    add("os");
    add("role");
    add("size_index");
    add("region");
    add("service_id");
    add("deploy_hour");
    add("deploy_dow");
    // Metric-relevant history only.
    for (Metric m : CompactHistoryMetrics(metric_)) {
      int count = NumBuckets(m);
      for (int b = 0; b < count; ++b) {
        add(std::string("hist_") + kMetricShort[static_cast<int>(m)] + "_b" +
            std::to_string(b));
      }
    }
    switch (metric_) {
      case Metric::kAvgCpu:
      case Metric::kP95Cpu:
        add("mean_avg_cpu");
        add("mean_p95_cpu");
        break;
      case Metric::kDeployVms:
      case Metric::kDeployCores:
        add("mean_deploy_vms");
        add("mean_cores");
        break;
      case Metric::kLifetime:
        add("mean_log_lifetime");
        add("mean_avg_cpu");
        break;
      case Metric::kClass:
        add("mean_log_lifetime");
        add("mean_avg_cpu");
        add("mean_p95_cpu");
        break;
    }
  }
}

std::vector<double> Featurizer::Encode(const ClientInputs& inputs,
                                       const SubscriptionFeatures& history) const {
  std::vector<double> out(num_features());
  EncodeTo(inputs, history, out);
  return out;
}

void Featurizer::EncodeTo(const ClientInputs& inputs, const SubscriptionFeatures& history,
                          std::span<double> out) const {
  if (out.size() != num_features()) {
    throw std::invalid_argument("Featurizer::EncodeTo: wrong output size");
  }
  size_t i = 0;
  auto put = [&](double v) { out[i++] = v; };
  auto one_hot = [&](int value, int cardinality) {
    for (int c = 0; c < cardinality; ++c) put(value == c ? 1.0 : 0.0);
  };

  put(inputs.cores);
  put(inputs.memory_gb);
  put(std::log1p(static_cast<double>(history.vm_count)));
  put(std::log1p(static_cast<double>(history.deployment_count)));

  if (encoding_ == FeatureEncoding::kExpanded) {
    put(history.mean_avg_cpu);
    put(history.mean_p95_cpu);
    put(history.mean_log_lifetime);
    put(history.mean_cores);
    put(history.mean_deploy_vms);
    for (int m = 0; m < kNumMetrics; ++m) {
      for (int b = 0; b < 4; ++b) {
        put(history.bucket_frac[static_cast<size_t>(m)][static_cast<size_t>(b)]);
      }
    }
    one_hot(inputs.vm_type, 2);
    one_hot(inputs.guest_os, 2);
    one_hot(inputs.role, kNumRoles);
    one_hot(inputs.size_index, kNumSizes);
    one_hot(inputs.region, kNumRegions);
    one_hot(inputs.service_id, kNumServices + 1);
    one_hot(inputs.deploy_hour, 24);
    one_hot(inputs.deploy_dow, 7);
  } else {
    put(inputs.vm_type);
    put(inputs.guest_os);
    put(inputs.role);
    put(inputs.size_index);
    put(inputs.region);
    put(inputs.service_id);
    put(inputs.deploy_hour);
    put(inputs.deploy_dow);
    for (Metric m : CompactHistoryMetrics(metric_)) {
      int count = NumBuckets(m);
      for (int b = 0; b < count; ++b) {
        put(history.bucket_frac[static_cast<size_t>(m)][static_cast<size_t>(b)]);
      }
    }
    switch (metric_) {
      case Metric::kAvgCpu:
      case Metric::kP95Cpu:
        put(history.mean_avg_cpu);
        put(history.mean_p95_cpu);
        break;
      case Metric::kDeployVms:
      case Metric::kDeployCores:
        put(history.mean_deploy_vms);
        put(history.mean_cores);
        break;
      case Metric::kLifetime:
        put(history.mean_log_lifetime);
        put(history.mean_avg_cpu);
        break;
      case Metric::kClass:
        put(history.mean_log_lifetime);
        put(history.mean_avg_cpu);
        put(history.mean_p95_cpu);
        break;
    }
  }
  if (i != out.size()) {
    throw std::logic_error("Featurizer::EncodeTo: layout mismatch");
  }
}

int RoleId(const std::string& role_name) {
  if (role_name == "IaaS") return 0;
  if (role_name == "WebRole") return 1;
  if (role_name == "WorkerRole") return 2;
  if (role_name == "CacheRole") return 3;
  if (role_name == "DbRole") return 4;
  return 0;
}

int ServiceId(const std::string& service_name) {
  // "svc-N" -> N + 1; anything else (incl. "unknown") -> 0.
  if (service_name.rfind("svc-", 0) != 0) return 0;
  int n = std::atoi(service_name.c_str() + 4);
  if (n < 0 || n >= kNumServices) return 0;
  return n + 1;
}

ClientInputs InputsFromVm(const rc::trace::VmRecord& vm,
                          const rc::trace::VmSizeCatalog& catalog) {
  ClientInputs in;
  in.subscription_id = vm.subscription_id;
  in.vm_type = static_cast<int>(vm.vm_type);
  in.guest_os = static_cast<int>(vm.guest_os);
  in.role = RoleId(vm.role_name);
  in.cores = vm.cores;
  in.memory_gb = vm.memory_gb;
  in.size_index = 0;
  for (int s = 0; s < catalog.size_count(); ++s) {
    if (catalog.at(s).cores == vm.cores && catalog.at(s).memory_gb == vm.memory_gb) {
      in.size_index = s;
      break;
    }
  }
  in.region = vm.region;
  in.deploy_hour = HourOfDay(vm.created);
  in.deploy_dow = DayOfWeek(vm.created);
  in.service_id = ServiceId(vm.service_name);
  return in;
}

}  // namespace rc::core
