#include "src/core/model_spec.h"

#include <cstdlib>

namespace rc::core {

std::vector<uint8_t> ModelSpec::Serialize() const {
  rc::ml::ByteWriter w;
  w.String(name);
  w.I32(static_cast<int32_t>(metric));
  w.I32(static_cast<int32_t>(encoding));
  w.String(model_family);
  w.U32(num_features);
  w.U64(version);
  return w.TakeBytes();
}

ModelSpec ModelSpec::Deserialize(const std::vector<uint8_t>& bytes) {
  rc::ml::ByteReader r(bytes);
  ModelSpec spec;
  spec.name = r.String();
  int32_t metric = r.I32();
  int32_t encoding = r.I32();
  // Validate enums here rather than crashing downstream: a Featurizer built
  // from an out-of-range metric would index tables out of bounds.
  if (metric < 0 || metric >= kNumMetrics) {
    throw std::runtime_error("ModelSpec: metric out of range");
  }
  if (encoding < 0 || encoding > static_cast<int32_t>(FeatureEncoding::kCompact)) {
    throw std::runtime_error("ModelSpec: encoding out of range");
  }
  spec.metric = static_cast<Metric>(metric);
  spec.encoding = static_cast<FeatureEncoding>(encoding);
  spec.model_family = r.String();
  spec.num_features = r.U32();
  spec.version = r.U64();
  return spec;
}

std::string SpecKey(const std::string& model_name) { return kSpecKeyPrefix + model_name; }

std::string ModelKey(const std::string& model_name) { return kModelKeyPrefix + model_name; }

std::string FeatureKey(uint64_t subscription_id) {
  return kFeatureKeyPrefix + std::to_string(subscription_id);
}

bool ParseFeatureKey(const std::string& key, uint64_t& subscription_id) {
  constexpr size_t kPrefixLen = sizeof(kFeatureKeyPrefix) - 1;
  if (key.compare(0, kPrefixLen, kFeatureKeyPrefix) != 0) return false;
  char* end = nullptr;
  subscription_id = std::strtoull(key.c_str() + kPrefixLen, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace rc::core
