#include "src/core/prediction.h"

#include <stdexcept>

#include "src/common/hashing.h"

namespace rc::core {

double UtilizationBucketValue(int bucket, BucketValuePolicy policy) {
  BucketRange range = UtilizationBucketRange(bucket);
  switch (policy) {
    case BucketValuePolicy::kLow: return range.lo;
    case BucketValuePolicy::kMid: return (range.lo + range.hi) / 2.0;
    case BucketValuePolicy::kHigh: return range.hi;
  }
  throw std::invalid_argument("UtilizationBucketValue: bad policy");
}

uint64_t ClientInputs::CacheKey(std::string_view model_name) const {
  uint64_t h = Fnv1a(model_name);
  h = HashCombine(h, HashU64(subscription_id));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(vm_type)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(guest_os)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(role)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(cores)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(memory_gb * 100.0)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(size_index)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(region)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(deploy_hour)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(deploy_dow)));
  h = HashCombine(h, HashU64(static_cast<uint64_t>(service_id)));
  return h;
}

}  // namespace rc::core
