#include "src/core/feature_data.h"

#include <cmath>

namespace rc::core {

using rc::trace::VmRecord;
using rc::trace::WorkloadClass;

void SubscriptionFeatures::SerializeTo(rc::ml::ByteWriter& w) const {
  w.U64(subscription_id);
  w.U64(static_cast<uint64_t>(vm_count));
  w.U64(static_cast<uint64_t>(deployment_count));
  for (const auto& metric : bucket_frac) {
    for (double f : metric) w.F32(static_cast<float>(f));
  }
  w.F32(static_cast<float>(mean_avg_cpu));
  w.F32(static_cast<float>(mean_p95_cpu));
  w.F32(static_cast<float>(mean_log_lifetime));
  w.F32(static_cast<float>(mean_cores));
  w.F32(static_cast<float>(mean_deploy_vms));
}

SubscriptionFeatures SubscriptionFeatures::DeserializeFrom(rc::ml::ByteReader& r) {
  SubscriptionFeatures f;
  f.subscription_id = r.U64();
  f.vm_count = static_cast<int64_t>(r.U64());
  f.deployment_count = static_cast<int64_t>(r.U64());
  for (auto& metric : f.bucket_frac) {
    for (double& v : metric) v = r.F32();
  }
  f.mean_avg_cpu = r.F32();
  f.mean_p95_cpu = r.F32();
  f.mean_log_lifetime = r.F32();
  f.mean_cores = r.F32();
  f.mean_deploy_vms = r.F32();
  return f;
}

std::vector<uint8_t> SubscriptionFeatures::Serialize() const {
  rc::ml::ByteWriter w;
  SerializeTo(w);
  return w.TakeBytes();
}

SubscriptionFeatures SubscriptionFeatures::Deserialize(const std::vector<uint8_t>& bytes) {
  rc::ml::ByteReader r(bytes);
  return DeserializeFrom(r);
}

SubscriptionFeatures FeatureDataBuilder::Snapshot(uint64_t subscription_id) const {
  auto it = data_.find(subscription_id);
  if (it != data_.end()) return it->second;
  SubscriptionFeatures empty;
  empty.subscription_id = subscription_id;
  return empty;
}

bool FeatureDataBuilder::Has(uint64_t subscription_id) const {
  return data_.contains(subscription_id);
}

void FeatureDataBuilder::ObserveUtilization(uint64_t subscription_id, double avg_cpu,
                                            double p95_max_cpu, int cores) {
  Counters& c = counters_[subscription_id];
  c.bucket_counts[static_cast<size_t>(Metric::kAvgCpu)]
                 [static_cast<size_t>(UtilizationBucket(avg_cpu))] += 1;
  c.bucket_counts[static_cast<size_t>(Metric::kP95Cpu)]
                 [static_cast<size_t>(UtilizationBucket(p95_max_cpu))] += 1;
  c.util_observed += 1;
  c.sum_avg_cpu += avg_cpu;
  c.sum_p95_cpu += p95_max_cpu;
  c.sum_cores += cores;

  SubscriptionFeatures& f = data_[subscription_id];
  f.subscription_id = subscription_id;
  f.vm_count = c.util_observed;
  Recompute(subscription_id);
}

void FeatureDataBuilder::ObserveClass(uint64_t subscription_id,
                                      WorkloadClass workload_class) {
  if (workload_class == WorkloadClass::kUnknown) return;
  Counters& c = counters_[subscription_id];
  int cls = workload_class == WorkloadClass::kInteractive ? kClassInteractive
                                                          : kClassDelayInsensitive;
  c.bucket_counts[static_cast<size_t>(Metric::kClass)][static_cast<size_t>(cls)] += 1;
  c.class_observed += 1;
  SubscriptionFeatures& f = data_[subscription_id];
  f.subscription_id = subscription_id;
  Recompute(subscription_id);
}

void FeatureDataBuilder::ObserveLifetime(uint64_t subscription_id, SimDuration lifetime) {
  Counters& c = counters_[subscription_id];
  c.bucket_counts[static_cast<size_t>(Metric::kLifetime)]
                 [static_cast<size_t>(LifetimeBucket(lifetime))] += 1;
  c.lifetime_observed += 1;
  c.sum_log_lifetime += std::log(std::max<double>(static_cast<double>(lifetime), 1.0));
  SubscriptionFeatures& f = data_[subscription_id];
  f.subscription_id = subscription_id;
  Recompute(subscription_id);
}

void FeatureDataBuilder::ObserveVm(const VmRecord& vm, WorkloadClass workload_class) {
  ObserveUtilization(vm.subscription_id, vm.avg_cpu, vm.p95_max_cpu, vm.cores);
  ObserveClass(vm.subscription_id, workload_class);
  ObserveLifetime(vm.subscription_id, vm.lifetime());
}

void FeatureDataBuilder::ObserveDeployment(uint64_t subscription_id, int64_t vms,
                                           int64_t cores) {
  Counters& c = counters_[subscription_id];
  c.bucket_counts[static_cast<size_t>(Metric::kDeployVms)]
                 [static_cast<size_t>(DeploymentSizeBucket(vms))] += 1;
  c.bucket_counts[static_cast<size_t>(Metric::kDeployCores)]
                 [static_cast<size_t>(DeploymentSizeBucket(cores))] += 1;
  c.sum_deploy_vms += static_cast<double>(vms);

  SubscriptionFeatures& f = data_[subscription_id];
  f.subscription_id = subscription_id;
  f.deployment_count += 1;
  Recompute(subscription_id);
}

void FeatureDataBuilder::Recompute(uint64_t subscription_id) {
  const Counters& c = counters_[subscription_id];
  SubscriptionFeatures& f = data_[subscription_id];
  for (int m = 0; m < kNumMetrics; ++m) {
    Metric metric = kAllMetrics[static_cast<size_t>(m)];
    int64_t denom;
    if (metric == Metric::kDeployVms || metric == Metric::kDeployCores) {
      denom = f.deployment_count;
    } else if (metric == Metric::kClass) {
      denom = c.class_observed;
    } else if (metric == Metric::kLifetime) {
      denom = c.lifetime_observed;
    } else {
      denom = c.util_observed;
    }
    for (int b = 0; b < 4; ++b) {
      f.bucket_frac[static_cast<size_t>(m)][static_cast<size_t>(b)] =
          denom > 0 ? static_cast<double>(
                          c.bucket_counts[static_cast<size_t>(m)][static_cast<size_t>(b)]) /
                          static_cast<double>(denom)
                    : 0.0;
    }
  }
  if (c.util_observed > 0) {
    double n = static_cast<double>(c.util_observed);
    f.mean_avg_cpu = c.sum_avg_cpu / n;
    f.mean_p95_cpu = c.sum_p95_cpu / n;
    f.mean_cores = c.sum_cores / n;
  }
  if (c.lifetime_observed > 0) {
    f.mean_log_lifetime = c.sum_log_lifetime / static_cast<double>(c.lifetime_observed);
  }
  if (f.deployment_count > 0) {
    f.mean_deploy_vms = c.sum_deploy_vms / static_cast<double>(f.deployment_count);
  }
}

}  // namespace rc::core
