// Published model metadata. The paper's data analysts record, alongside each
// model, a "specification" describing the model's inputs; the client DLL
// reads it to interpret client inputs. The spec pins the metric, feature
// encoding, model family, and version, and is stored next to the model bytes.
#ifndef RC_SRC_CORE_MODEL_SPEC_H_
#define RC_SRC_CORE_MODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buckets.h"
#include "src/core/featurizer.h"
#include "src/ml/bytes.h"

namespace rc::core {

struct ModelSpec {
  std::string name;  // e.g. "VM_P95UTIL"
  Metric metric = Metric::kAvgCpu;
  FeatureEncoding encoding = FeatureEncoding::kCompact;
  std::string model_family;  // "random_forest" | "gbt"
  uint32_t num_features = 0;
  uint64_t version = 0;

  std::vector<uint8_t> Serialize() const;
  static ModelSpec Deserialize(const std::vector<uint8_t>& bytes);
};

// Store key conventions shared by the offline pipeline and the client.
inline constexpr char kSpecKeyPrefix[] = "spec/";
inline constexpr char kModelKeyPrefix[] = "model/";
inline constexpr char kFeatureKeyPrefix[] = "features/";

std::string SpecKey(const std::string& model_name);
std::string ModelKey(const std::string& model_name);
std::string FeatureKey(uint64_t subscription_id);
// Parses a subscription id back out of a feature key; returns false if the
// key is not a feature key.
bool ParseFeatureKey(const std::string& key, uint64_t& subscription_id);

}  // namespace rc::core

#endif  // RC_SRC_CORE_MODEL_SPEC_H_
