// Turns (client inputs, subscription feature data) into model feature
// vectors. Two encodings are provided, mirroring Table 1's feature counts:
//
//  * kExpanded — one-hot categorical attributes plus the full subscription
//    history block (~120 features); used by the Random Forest utilization
//    models (paper: 127 features).
//  * kCompact — integer-coded categoricals plus only the metric-relevant
//    history block (~20-30 features); used by the boosted-tree models
//    (paper: 24-34 features).
//
// The encoding is part of the published model spec, so the client library
// reconstructs the exact feature layout from the store.
#ifndef RC_SRC_CORE_FEATURIZER_H_
#define RC_SRC_CORE_FEATURIZER_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/buckets.h"
#include "src/core/feature_data.h"
#include "src/core/prediction.h"
#include "src/trace/vm_size_catalog.h"
#include "src/trace/vm_types.h"

namespace rc::core {

enum class FeatureEncoding { kExpanded = 0, kCompact = 1 };

inline constexpr int kNumServices = 20;  // "svc-00".."svc-19"; id 0 = unknown
inline constexpr int kNumRoles = 5;      // IaaS + 4 PaaS roles
inline constexpr int kNumRegions = 6;
inline constexpr int kNumSizes = 14;

class Featurizer {
 public:
  Featurizer(Metric metric, FeatureEncoding encoding);

  Metric metric() const { return metric_; }
  FeatureEncoding encoding() const { return encoding_; }
  size_t num_features() const { return names_.size(); }
  const std::vector<std::string>& feature_names() const { return names_; }

  std::vector<double> Encode(const ClientInputs& inputs,
                             const SubscriptionFeatures& history) const;
  // Zero-allocation variant; `out.size()` must equal num_features().
  void EncodeTo(const ClientInputs& inputs, const SubscriptionFeatures& history,
                std::span<double> out) const;

 private:
  void BuildNames();

  Metric metric_;
  FeatureEncoding encoding_;
  std::vector<std::string> names_;
};

// Client inputs as the scheduler (or any client) would assemble them for a
// VM at creation time — only creation-time-observable attributes.
ClientInputs InputsFromVm(const rc::trace::VmRecord& vm,
                          const rc::trace::VmSizeCatalog& catalog);

// Maps role/service names to the integer codes used in ClientInputs.
int RoleId(const std::string& role_name);
int ServiceId(const std::string& service_name);

}  // namespace rc::core

#endif  // RC_SRC_CORE_FEATURIZER_H_
