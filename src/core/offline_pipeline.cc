#include "src/core/offline_pipeline.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "src/analysis/periodicity.h"
#include "src/common/faults.h"
#include "src/common/sim_time.h"
#include "src/obs/trace_events.h"

namespace rc::core {

namespace {

// Stage-duration histogram shared by every pipeline stage; one label per
// stage so exposition groups them into a single rc_pipeline family.
rc::obs::Histogram& StageHistogram(rc::obs::MetricsRegistry* metrics, const char* stage) {
  rc::obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : rc::obs::MetricsRegistry::Global();
  return reg.GetHistogram("rc_pipeline_stage_duration_us", {}, {{"stage", stage}},
                          "offline pipeline stage wall time (us)");
}

}  // namespace

using rc::trace::Trace;
using rc::trace::VmRecord;
using rc::trace::WorkloadClass;

namespace {

// The point at which a running VM's behaviour is considered "learned": its
// telemetry summary and (if long-lived) its class are folded into the
// subscription history. Three days matches the classifier's minimum span.
constexpr SimDuration kRepresentativeAfter = 3 * kDay;

enum class ObsKind { kUtilization, kClass, kLifetime, kDeployment };

struct Observation {
  SimTime time = 0;
  ObsKind kind = ObsKind::kUtilization;
  const VmRecord* vm = nullptr;     // utilization / class / lifetime
  uint64_t subscription_id = 0;     // deployment
  int64_t deploy_vms = 0;
  int64_t deploy_cores = 0;
};

struct DeployGroup {
  const VmRecord* first_vm = nullptr;
  int64_t vms = 0;
  int64_t cores = 0;
};

// Deployment groups under the paper's redefinition (subscription x region x
// day), keyed for chronological emission by their first VM.
std::map<std::tuple<uint64_t, int32_t, int64_t>, DeployGroup> BuildDeployGroups(
    const Trace& trace) {
  std::map<std::tuple<uint64_t, int32_t, int64_t>, DeployGroup> groups;
  for (const auto& vm : trace.vms()) {
    auto key = std::make_tuple(vm.subscription_id, vm.region, vm.created / kDay);
    DeployGroup& g = groups[key];
    if (g.first_vm == nullptr || vm.created < g.first_vm->created) g.first_vm = &vm;
    g.vms += 1;
    g.cores += vm.cores;
  }
  return groups;
}

class ClassLabeler {
 public:
  ClassLabeler(bool use_fft) : use_fft_(use_fft) {}

  WorkloadClass Label(const VmRecord& vm) {
    if (!use_fft_) return vm.true_class;
    auto [it, inserted] = cache_.try_emplace(vm.vm_id, WorkloadClass::kUnknown);
    if (inserted) it->second = rc::analysis::ClassifyVm(vm);
    return it->second;
  }

 private:
  bool use_fft_;
  std::unordered_map<uint64_t, WorkloadClass> cache_;
};

std::vector<Observation> BuildObservations(const Trace& trace) {
  std::vector<Observation> obs;
  obs.reserve(trace.vms().size() * 3);
  for (const auto& vm : trace.vms()) {
    Observation util;
    util.time = std::min(vm.deleted, vm.created + kRepresentativeAfter);
    util.kind = ObsKind::kUtilization;
    util.vm = &vm;
    obs.push_back(util);
    if (vm.lifetime() >= kRepresentativeAfter) {
      Observation cls = util;
      cls.time = vm.created + kRepresentativeAfter;
      cls.kind = ObsKind::kClass;
      obs.push_back(cls);
    }
    Observation life;
    life.time = vm.deleted;
    life.kind = ObsKind::kLifetime;
    life.vm = &vm;
    obs.push_back(life);
  }
  for (const auto& [key, group] : BuildDeployGroups(trace)) {
    Observation dep;
    dep.time = (std::get<2>(key) + 1) * kDay;  // end of the deployment day
    dep.kind = ObsKind::kDeployment;
    dep.subscription_id = std::get<0>(key);
    dep.deploy_vms = group.vms;
    dep.deploy_cores = group.cores;
    obs.push_back(dep);
  }
  std::stable_sort(obs.begin(), obs.end(),
                   [](const Observation& a, const Observation& b) { return a.time < b.time; });
  return obs;
}

void Apply(const Observation& o, FeatureDataBuilder& builder, ClassLabeler& labeler) {
  switch (o.kind) {
    case ObsKind::kUtilization:
      builder.ObserveUtilization(o.vm->subscription_id, o.vm->avg_cpu, o.vm->p95_max_cpu,
                                 o.vm->cores);
      break;
    case ObsKind::kClass:
      builder.ObserveClass(o.vm->subscription_id, labeler.Label(*o.vm));
      break;
    case ObsKind::kLifetime:
      builder.ObserveLifetime(o.vm->subscription_id, o.vm->lifetime());
      break;
    case ObsKind::kDeployment:
      builder.ObserveDeployment(o.subscription_id, o.deploy_vms, o.deploy_cores);
      break;
  }
}

// The lifetime bucket is determinable once the VM has terminated inside the
// window or has provably crossed the 24h (top bucket) boundary.
bool LifetimeLabelKnown(const VmRecord& vm, SimTime window_end) {
  return vm.deleted <= window_end || (window_end - vm.created) > 24 * kHour;
}

}  // namespace

bool OfflinePipeline::UsesRandomForest(Metric metric) {
  return metric == Metric::kAvgCpu || metric == Metric::kP95Cpu;
}

FeatureEncoding OfflinePipeline::EncodingFor(Metric metric) {
  return UsesRandomForest(metric) ? FeatureEncoding::kExpanded : FeatureEncoding::kCompact;
}

std::vector<LabeledExample> OfflinePipeline::BuildExamples(const Trace& trace,
                                                           Metric metric, SimTime from,
                                                           SimTime to, bool use_fft_labels) {
  static const rc::trace::VmSizeCatalog catalog;
  std::vector<Observation> obs = BuildObservations(trace);
  FeatureDataBuilder builder;
  ClassLabeler labeler(use_fft_labels);
  std::vector<LabeledExample> out;

  const bool deployment_metric =
      metric == Metric::kDeployVms || metric == Metric::kDeployCores;

  // Emission points, chronological.
  struct Emission {
    SimTime time;
    const VmRecord* vm;
    int64_t deploy_vms = 0;
    int64_t deploy_cores = 0;
  };
  std::vector<Emission> emissions;
  if (deployment_metric) {
    for (const auto& [key, group] : BuildDeployGroups(trace)) {
      emissions.push_back(Emission{group.first_vm->created, group.first_vm, group.vms,
                                   group.cores});
    }
    std::sort(emissions.begin(), emissions.end(),
              [](const Emission& a, const Emission& b) { return a.time < b.time; });
  } else {
    for (const auto& vm : trace.vms()) emissions.push_back(Emission{vm.created, &vm});
  }

  size_t next_obs = 0;
  SimTime window_end = trace.observation_window();
  for (const Emission& e : emissions) {
    if (e.time >= to) break;
    while (next_obs < obs.size() && obs[next_obs].time <= e.time) {
      Apply(obs[next_obs], builder, labeler);
      ++next_obs;
    }
    if (e.time < from) continue;

    const VmRecord& vm = *e.vm;
    int label = 0;
    switch (metric) {
      case Metric::kAvgCpu:
        label = UtilizationBucket(vm.avg_cpu);
        break;
      case Metric::kP95Cpu:
        label = UtilizationBucket(vm.p95_max_cpu);
        break;
      case Metric::kLifetime:
        if (!LifetimeLabelKnown(vm, window_end)) continue;
        label = LifetimeBucket(vm.lifetime());
        break;
      case Metric::kClass: {
        if (vm.lifetime() < kRepresentativeAfter ||
            vm.created + kRepresentativeAfter > window_end) {
          continue;  // class unobservable within the window
        }
        WorkloadClass cls = labeler.Label(vm);
        if (cls == WorkloadClass::kUnknown) continue;
        label = cls == WorkloadClass::kInteractive ? kClassInteractive
                                                   : kClassDelayInsensitive;
        break;
      }
      case Metric::kDeployVms:
        label = DeploymentSizeBucket(e.deploy_vms);
        break;
      case Metric::kDeployCores:
        label = DeploymentSizeBucket(e.deploy_cores);
        break;
    }
    LabeledExample example;
    example.inputs = InputsFromVm(vm, catalog);
    example.history = builder.Snapshot(vm.subscription_id);
    example.label = label;
    out.push_back(std::move(example));
  }
  return out;
}

std::unordered_map<uint64_t, SubscriptionFeatures> OfflinePipeline::BuildFeatureSnapshot(
    const Trace& trace, SimTime until, bool use_fft_labels) {
  std::vector<Observation> obs = BuildObservations(trace);
  FeatureDataBuilder builder;
  ClassLabeler labeler(use_fft_labels);
  for (const Observation& o : obs) {
    if (o.time > until) break;
    Apply(o, builder, labeler);
  }
  return builder.TakeData();
}

rc::ml::Dataset OfflinePipeline::ToDataset(const std::vector<LabeledExample>& examples,
                                           const Featurizer& featurizer) {
  rc::ml::Dataset data(featurizer.feature_names());
  data.Reserve(examples.size());
  std::vector<double> row(featurizer.num_features());
  for (const auto& example : examples) {
    featurizer.EncodeTo(example.inputs, example.history, row);
    data.AddRow(row, example.label);
  }
  return data;
}

TrainedModels OfflinePipeline::Run(const Trace& trace) const {
  rc::obs::Histogram& build_hist = StageHistogram(config_.metrics, "build_examples");
  rc::obs::Histogram& train_hist = StageHistogram(config_.metrics, "train");
  TrainedModels trained;
  for (Metric metric : kAllMetrics) {
    std::vector<LabeledExample> examples;
    {
      rc::obs::ScopedTimer timer(&build_hist);
      examples = BuildExamples(trace, metric, config_.train_begin, config_.train_end,
                               config_.use_fft_labels);
    }
    if (examples.empty()) continue;
    rc::obs::ScopedTimer train_timer(&train_hist);
    Featurizer featurizer(metric, EncodingFor(metric));
    rc::ml::Dataset data = ToDataset(examples, featurizer);
    // Guarantee full label arity even if a rare bucket is absent from the
    // window: pad with a single neutral-feature row per missing class.
    int expected = NumBuckets(metric);
    if (data.NumClasses() < expected) {
      std::vector<double> zeros(featurizer.num_features(), 0.0);
      for (int c = data.NumClasses(); c < expected; ++c) data.AddRow(zeros, c);
    }

    std::unique_ptr<rc::ml::Classifier> model;
    if (UsesRandomForest(metric)) {
      rc::ml::RandomForestConfig cfg = config_.rf;
      cfg.seed = config_.seed + static_cast<uint64_t>(metric);
      model = std::make_unique<rc::ml::RandomForest>(rc::ml::RandomForest::Fit(data, cfg));
    } else {
      rc::ml::GbtConfig cfg = config_.gbt;
      cfg.seed = config_.seed + static_cast<uint64_t>(metric);
      if (metric == Metric::kClass) {
        // Recall-first for the rare interactive class (paper Section 6.1:
        // predicting interactive VMs as delay-insensitive is the costly
        // mistake, the reverse is acceptable).
        cfg.class_weights = {1.0, 25.0};
      }
      model = std::make_unique<rc::ml::GradientBoostedTrees>(
          rc::ml::GradientBoostedTrees::Fit(data, cfg));
    }

    ModelSpec spec;
    spec.name = MetricModelName(metric);
    spec.metric = metric;
    spec.encoding = EncodingFor(metric);
    spec.model_family = model->type_name();
    spec.num_features = static_cast<uint32_t>(featurizer.num_features());
    spec.version = 1;
    trained.specs[spec.name] = spec;
    trained.models[spec.name] = std::move(model);
  }
  {
    rc::obs::ScopedTimer timer(&StageHistogram(config_.metrics, "feature_snapshot"));
    trained.feature_data =
        BuildFeatureSnapshot(trace, config_.train_end, config_.use_fft_labels);
  }
  return trained;
}

size_t OfflinePipeline::Publish(const TrainedModels& trained, rc::store::KvStore& store,
                                rc::obs::MetricsRegistry* metrics) {
  rc::obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : rc::obs::MetricsRegistry::Global();
  rc::obs::Counter& records =
      reg.GetCounter("rc_pipeline_published_records", {}, "records durably published");
  rc::obs::Counter& failures = reg.GetCounter(
      "rc_pipeline_publish_failures", {}, "records dropped after exhausting retries");
  rc::obs::TraceSpan span("pipeline/publish");
  rc::obs::ScopedTimer timer(&StageHistogram(metrics, "publish"));
  // Transient publish failures (outage blips, injected faults) are retried;
  // a record that still fails after kAttempts is skipped, not fatal — the
  // next pipeline run republishes everything anyway.
  constexpr int kAttempts = 3;
  auto put = [&](const std::string& key, const std::vector<uint8_t>& bytes) -> bool {
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      if (rc::faults::InjectError("pipeline/publish")) continue;
      if (store.Put(key, bytes) != 0) {
        records.Increment();
        return true;
      }
    }
    failures.Increment();
    return false;
  };
  size_t published = 0;
  for (const auto& [name, spec] : trained.specs) {
    published += put(SpecKey(name), spec.Serialize()) ? 1 : 0;
  }
  for (const auto& [name, model] : trained.models) {
    published += put(ModelKey(name), model->SerializeTagged()) ? 1 : 0;
  }
  for (const auto& [sub_id, features] : trained.feature_data) {
    published += put(FeatureKey(sub_id), features.Serialize()) ? 1 : 0;
  }
  return published;
}

}  // namespace rc::core
