// The Resource Central client library (the paper's "client DLL", Table 2):
// a thread-safe, in-process prediction server. Given a model name and client
// inputs it returns a {bucket, confidence} prediction or a no-prediction
// flag. It caches prediction results (hash of model name + client inputs),
// models, and per-subscription feature data in memory, mirrors them to a
// local disk cache with expiry, and supports both caching regimes from the
// paper:
//
//  * push (default): RC pushes new models/feature data; a miss in the memory
//    caches is answered with no-prediction (e.g. a brand-new subscription).
//  * pull: misses fetch from the store on demand — either synchronously, or
//    (paper's configuration for latency-critical clients) returning
//    no-prediction immediately while the fetch fills the cache for next time.
//
// The disk cache is consulted only when the store is unavailable, and never
// when the entry has expired.
#ifndef RC_SRC_CORE_CLIENT_H_
#define RC_SRC_CORE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/featurizer.h"
#include "src/core/model_spec.h"
#include "src/core/prediction.h"
#include "src/ml/classifier.h"
#include "src/store/disk_cache.h"
#include "src/store/kv_store.h"

namespace rc::core {

enum class CacheMode { kPush, kPull };

struct ClientConfig {
  CacheMode mode = CacheMode::kPush;
  // Pull mode only: return no-prediction on a model/feature-data cache miss
  // and fill the cache as a side effect, keeping store latency off the
  // prediction critical path.
  bool pull_never_blocks = false;
  // Result-cache entries; when exceeded the cache is flushed (entries are
  // tiny — a bucket and a score — so the default is generous).
  size_t result_cache_capacity = 1 << 20;
  // Serve predictions with an empty history for subscriptions absent from
  // the feature data (off by default: the paper returns no-prediction).
  bool allow_missing_feature_data = false;
  // Local disk cache directory; empty disables the disk cache.
  std::string disk_cache_dir;
  int64_t disk_expiry_seconds = 7 * 24 * 3600;
};

struct ClientStats {
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t model_executions = 0;
  uint64_t store_fetches = 0;
  uint64_t disk_hits = 0;
  uint64_t no_predictions = 0;
};

class Client {
 public:
  // The store pointer may be null (fully offline client relying on its disk
  // cache). The store must outlive the client.
  Client(rc::store::KvStore* store, ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Loads specs/models/feature data (push mode eagerly; pull mode lazily)
  // and subscribes to store pushes. Returns true if the client is usable —
  // which includes a cold pull-mode start with an empty cache.
  bool Initialize();

  // Names of models currently available to this client.
  std::vector<std::string> GetAvailableModels() const;

  // One prediction; never throws on missing data — returns no-prediction.
  Prediction PredictSingle(const std::string& model_name, const ClientInputs& inputs);

  // Batched predictions (Table 2's predict_many).
  std::vector<Prediction> PredictMany(const std::string& model_name,
                                      std::span<const ClientInputs> inputs);

  // Refreshes memory and disk caches from the store.
  void ForceReloadCache();

  // Drops memory and disk caches.
  void FlushCache();

  ClientStats stats() const;

 private:
  struct LoadedModel {
    ModelSpec spec;
    std::unique_ptr<rc::ml::Classifier> model;
    std::unique_ptr<Featurizer> featurizer;
  };

  // All Locked methods require mu_ held.
  bool LoadModelLocked(const std::string& model_name, bool allow_store);
  bool LoadFeaturesLocked(uint64_t subscription_id, bool allow_store);
  std::optional<rc::store::VersionedBlob> FetchLocked(const std::string& key,
                                                      bool allow_store);
  void LoadAllFromStoreLocked();
  void IngestLocked(const std::string& key, const rc::store::VersionedBlob& blob);
  void PersistIndexLocked();
  Prediction ExecuteLocked(LoadedModel& model, const ClientInputs& inputs);

  rc::store::KvStore* store_;
  ClientConfig config_;
  std::unique_ptr<rc::store::DiskCache> disk_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Prediction> result_cache_;
  std::unordered_map<std::string, LoadedModel> models_;
  std::unordered_map<uint64_t, SubscriptionFeatures> features_;
  std::vector<std::string> known_keys_;  // for disk-index persistence
  int store_subscription_ = -1;
  ClientStats stats_;
};

}  // namespace rc::core

#endif  // RC_SRC_CORE_CLIENT_H_
