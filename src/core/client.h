// The Resource Central client library (the paper's "client DLL", Table 2):
// a thread-safe, in-process prediction server. Given a model name and client
// inputs it returns a {bucket, confidence} prediction or a no-prediction
// flag. It caches prediction results (hash of model name + client inputs),
// models, and per-subscription feature data in memory, mirrors them to a
// local disk cache with expiry, and supports both caching regimes from the
// paper:
//
//  * push (default): RC pushes new models/feature data; a miss in the memory
//    caches is answered with no-prediction (e.g. a brand-new subscription).
//  * pull: misses fetch from the store on demand — either synchronously, or
//    (paper's configuration for latency-critical clients) returning
//    no-prediction immediately while the fetch fills the cache for next time.
//
// The disk cache is consulted only when the store is unavailable, and never
// when the entry has expired.
//
// Concurrency model (see DESIGN.md "Client concurrency model"): the hot path
// executes against an immutable, atomically-published state snapshot.
// Models, featurizers, and feature data live in a `const ClientState`;
// writers (push listener, pull-mode fills, ForceReloadCache, FlushCache)
// copy the current state, mutate the copy under `writer_mu_`, and publish it
// to a striped snapshot holder. Readers never take `writer_mu_` or any
// shared lock: each reader thread pins one stripe and copies that stripe's
// shared_ptr under the stripe's (uncontended) mutex. The result cache is an
// rc::cache::ShardedCache — W-TinyLFU admission, per-insert eviction, and a
// lock-free (seqlock) hit path, so a result-cache hit performs zero mutex
// acquisitions (see src/cache/sharded_cache.h).
#ifndef RC_SRC_CORE_CLIENT_H_
#define RC_SRC_CORE_CLIENT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cache/sharded_cache.h"
#include "src/core/featurizer.h"
#include "src/core/model_spec.h"
#include "src/core/prediction.h"
#include "src/ml/classifier.h"
#include "src/ml/exec_engine.h"
#include "src/obs/metrics.h"
#include "src/store/disk_cache.h"
#include "src/store/kv_store.h"

namespace rc::common {
class Clock;
}  // namespace rc::common

namespace rc::core {

class BatchCombiner;

enum class CacheMode { kPush, kPull };

// Cross-request batching (DESIGN.md "Cross-request batching"): when enabled,
// concurrent PredictSingle calls that miss the result cache are coalesced by
// a BatchCombiner into one batched ExecEngine walk. Results are identical to
// the combiner-off path input-for-input; only scheduling changes.
struct CombinerOptions {
  bool enabled = false;
  int64_t max_wait_us = 40;  // coalescing window after the first parked caller
  size_t max_batch = 64;     // flush as soon as this many requests accumulate
  // Lone callers (no open batch, no dispatch in flight) execute immediately
  // instead of waiting out the window.
  bool fast_path_when_idle = true;
};

struct ClientConfig {
  CacheMode mode = CacheMode::kPush;
  // Pull mode only: return no-prediction on a model/feature-data cache miss
  // and fill the cache as a side effect, keeping store latency off the
  // prediction critical path.
  bool pull_never_blocks = false;
  // Result-cache entries (entries are tiny — a bucket and a score — so the
  // default is generous). The budget is split evenly across the cache
  // shards; overflow evicts one entry per insert via the admission policy —
  // never a flush. 0 disables the result cache entirely (every
  // PredictSingle executes).
  size_t result_cache_capacity = 1 << 20;
  // W-TinyLFU admission for the result cache (src/cache/sharded_cache.h):
  // one-shot scan keys cannot displace the frequently-requested working set.
  // false degrades the policy to a plain LRU (same per-insert eviction).
  bool result_cache_admission = true;
  // Serve predictions with an empty history for subscriptions absent from
  // the feature data (off by default: the paper returns no-prediction).
  bool allow_missing_feature_data = false;
  // Local disk cache directory; empty disables the disk cache.
  std::string disk_cache_dir;
  int64_t disk_expiry_seconds = 7 * 24 * 3600;

  // --- graceful degradation (the paper's "the client DLL must never impact
  // the caller") ---
  // Store read errors are retried with doubling backoff before the client
  // gives up and falls back to its disk mirror / last-good snapshot.
  int store_max_retries = 2;
  int64_t store_retry_backoff_us = 200;
  // Budget for a full reload (Initialize / ForceReloadCache) across all
  // keys; on expiry the reload stops and keeps what it has. 0 = unbounded.
  int64_t reload_timeout_us = 0;
  // Circuit breaker: after this many consecutive store failures the client
  // stops contacting the store for breaker_open_us, then lets one probe
  // through (half-open). <= 0 disables the breaker.
  int breaker_failure_threshold = 5;
  int64_t breaker_open_us = 100'000;

  // Injected time source for retry backoff, the circuit breaker, reload
  // deadlines, and the combiner window. Null uses MonotonicClock::Instance();
  // tests substitute a VirtualClock. Must outlive the client.
  rc::common::Clock* clock = nullptr;

  // Cross-request batching of PredictSingle cache misses (the tentpole knob;
  // see BatchCombiner).
  CombinerOptions combiner;

  // --- execution engine walk selection (DESIGN.md "Execution engine") ---
  // Which ExecEngine walk serves this client's predictions. kAuto (default)
  // picks the fastest exact walk the host supports — the AVX2 kernel when
  // compiled in and CPUID agrees, else the portable scalar walk; both return
  // bit-identical probabilities. kQuantized selects the u16 cache-resident
  // pool (~0.45x the f64 footprint; probabilities within leaf-table
  // quantization tolerance) and degrades to kAuto for models it cannot
  // represent. Stamped on each model once at ingest — never consulted on the
  // prediction hot path.
  rc::ml::ExecEngine::Mode engine_mode = rc::ml::ExecEngine::Mode::kAuto;
  // Per-model exceptions to engine_mode, keyed by model name (e.g. pin one
  // memory-heavy model to kQuantized while the rest stay exact).
  std::unordered_map<std::string, rc::ml::ExecEngine::Mode> engine_mode_overrides;

  // --- observability (DESIGN.md "Observability") ---
  // Registry receiving this client's `rc_client_*` instruments. Null (the
  // default) gives the client a private registry, so per-instance stats()
  // keeps its exact per-client semantics; point several clients at a shared
  // registry (e.g. obs::MetricsRegistry::Global()) to aggregate them —
  // get-or-create then merges same-named instruments.
  rc::obs::MetricsRegistry* metrics = nullptr;
  // Label set stamped on every instrument this client registers (lets
  // multiple clients share a registry without merging, e.g. {"client","a"}).
  rc::obs::Labels metric_labels;
  // Record PredictSingle latency into rc_client_predict_latency_us once per
  // N calls (per thread). Sampling keeps the two clock reads off most
  // hot-path calls; 1 times every call, 0 disables timing entirely.
  uint32_t predict_latency_sample_every = 64;
};

// Why the client is currently serving from stale/partial state. kNone means
// healthy; anything else marks a degraded window. The reason clears on the
// next fully successful store interaction (clean ingest or reload).
enum class DegradedReason : uint8_t {
  kNone = 0,
  kStoreOutage = 1,   // store reported unavailable
  kStoreErrors = 2,   // read errors / retries exhausted / reload timeout
  kCorruptData = 3,   // checksum or decode failure on a received blob
};
const char* ToString(DegradedReason reason);

// Point-in-time serving-health view for /healthz (DESIGN.md "Tracing &
// introspection"): the degradation state plus per-model snapshot identity,
// so an operator can see not just *that* the client is degraded but which
// models are stale and since when.
struct ModelHealth {
  std::string name;
  uint64_t spec_version = 0;   // ModelSpec.version of the active spec
  uint64_t blob_version = 0;   // store version of the last blob ingested
  uint64_t loaded_at_ns = 0;   // obs::NowNs() when that blob was published
  bool ready = false;          // model + featurizer both present
};

struct HealthSnapshot {
  DegradedReason degraded = DegradedReason::kNone;
  bool breaker_open = false;
  int consecutive_store_failures = 0;
  std::vector<ModelHealth> models;

  bool healthy() const { return degraded == DegradedReason::kNone && !breaker_open; }
};

struct ClientStats {
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t model_executions = 0;
  uint64_t store_fetches = 0;
  uint64_t disk_hits = 0;
  uint64_t no_predictions = 0;
  // Degradation counters: how often the store failed us and how we coped.
  uint64_t store_errors = 0;      // failed store reads (before retries)
  uint64_t store_retries = 0;     // retry attempts after an error
  uint64_t corrupt_blobs = 0;     // blobs rejected by checksum verification
  uint64_t decode_failures = 0;   // blobs with a valid CRC that failed decode
  uint64_t breaker_trips = 0;     // circuit-breaker open transitions
  uint64_t reload_timeouts = 0;   // full reloads cut short by the deadline
  DegradedReason degraded_reason = DegradedReason::kNone;

  bool degraded() const { return degraded_reason != DegradedReason::kNone; }
};

class Client {
 public:
  // The store pointer may be null (fully offline client relying on its disk
  // cache). The store must outlive the client.
  Client(rc::store::KvStore* store, ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Loads specs/models/feature data (push mode eagerly; pull mode lazily)
  // and subscribes to store pushes. Returns true if the client is usable —
  // which includes a cold pull-mode start with an empty cache.
  bool Initialize();

  // Names of models currently available to this client.
  std::vector<std::string> GetAvailableModels() const;

  // One prediction; never throws on missing data — returns no-prediction.
  Prediction PredictSingle(const std::string& model_name, const ClientInputs& inputs);

  // Batched predictions (Table 2's predict_many).
  std::vector<Prediction> PredictMany(const std::string& model_name,
                                      std::span<const ClientInputs> inputs);

  // Refreshes memory and disk caches from the store.
  void ForceReloadCache();

  // Drops memory and disk caches.
  void FlushCache();

  // Compatibility view over the registry-backed instruments below. With the
  // default private registry this is exactly this client's activity.
  ClientStats stats() const;

  // Serving-health snapshot for the admin /healthz endpoint: degradation
  // state, circuit-breaker position, and per-model version/age. Takes
  // writer_mu_ briefly for the breaker fields — admin path, not hot path.
  HealthSnapshot Health() const;

  // Current degradation state, lock-free (the same value stats() reports).
  DegradedReason degraded_reason() const {
    return static_cast<DegradedReason>(
        degraded_reason_.load(std::memory_order_relaxed));
  }

  // The client's combiner, or null when config.combiner.enabled is false.
  // Exposed for tests and for the server's shutdown sequencing.
  BatchCombiner* combiner() const { return combiner_.get(); }

  // The registry holding this client's instruments — the config-supplied one
  // or the private default. Export with obs::PrometheusText / obs::JsonText.
  rc::obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct LoadedModel {
    ModelSpec spec;
    std::shared_ptr<const rc::ml::Classifier> model;
    std::shared_ptr<const Featurizer> featurizer;
    // The model's compiled execution engine, resolved once at ingest so the
    // batched hot path needs no virtual dispatch. Owned by `model` (which
    // this entry holds); null for classifier types without a compiled form.
    const rc::ml::ExecEngine* engine = nullptr;
    // Engine walk for this model (config engine_mode / per-model override),
    // stamped at ingest; the engine resolves it to what the host supports.
    rc::ml::ExecEngine::Mode mode = rc::ml::ExecEngine::Mode::kAuto;
    // Snapshot identity for /healthz: the store version of the last blob
    // applied to this entry and when it was published.
    uint64_t blob_version = 0;
    uint64_t loaded_at_ns = 0;

    bool ready() const { return model != nullptr && featurizer != nullptr; }
  };

  // Everything the prediction hot path reads, as one immutable snapshot.
  // Entries are shared between successive snapshots (copy-on-write), so
  // publishing an update copies two maps of pointers, never a model.
  struct ClientState {
    std::unordered_map<std::string, std::shared_ptr<const LoadedModel>> models;
    std::unordered_map<uint64_t, std::shared_ptr<const SubscriptionFeatures>> features;

    const LoadedModel* FindReadyModel(const std::string& name) const;
    const SubscriptionFeatures* FindFeatures(uint64_t subscription_id) const;
  };
  using StatePtr = std::shared_ptr<const ClientState>;

  // Read-mostly snapshot holder. Each stripe replicates the current StatePtr
  // behind its own mutex; a reader thread is pinned to one stripe (assigned
  // round-robin on first use), so reader loads are an uncontended lock + a
  // shared_ptr copy and readers never serialize against each other. Writers
  // sweep all stripes, one at a time; a reader racing the sweep sees either
  // the old or the new snapshot — both fully consistent. (libstdc++'s
  // std::atomic<std::shared_ptr> would also work but is not lock-free
  // either, and its lock-bit internals are opaque to ThreadSanitizer.)
  class SnapshotHolder {
   public:
    StatePtr load() const;
    void store(StatePtr next);

   private:
    static constexpr size_t kStripes = 16;
    static size_t StripeIndex();

    struct alignas(64) Stripe {
      mutable std::mutex mu;
      StatePtr state;
    };
    std::array<Stripe, kStripes> stripes_;
  };

  // Registry-backed instruments (rc_client_* family). Pointers are resolved
  // once at construction and stable for the registry's lifetime; every write
  // is a relaxed shard increment, so the hot path and stats() need no lock.
  struct Instruments {
    rc::obs::Counter* result_hits;
    rc::obs::Counter* result_misses;
    rc::obs::Counter* model_executions;
    rc::obs::Counter* store_fetches;
    rc::obs::Counter* disk_hits;
    rc::obs::Counter* no_predictions;
    rc::obs::Counter* store_errors;
    rc::obs::Counter* store_retries;
    rc::obs::Counter* corrupt_blobs;
    rc::obs::Counter* decode_failures;
    rc::obs::Counter* breaker_trips;
    rc::obs::Counter* reload_timeouts;
    rc::obs::Gauge* degraded_reason;            // numeric DegradedReason
    rc::obs::Histogram* predict_latency_us;     // sampled PredictSingle latency
    rc::obs::Histogram* store_read_latency_us;  // per-attempt store reads
    rc::obs::Histogram* batch_size;             // inputs per PredictMany call
  };
  void RegisterInstruments();
  // True once per config_.predict_latency_sample_every calls on this thread.
  bool ShouldSampleLatency() const;

  // --- contention-free read side ---
  StatePtr LoadState() const { return snapshot_.load(); }
  // Lock-free on hit (rc::cache seqlock probe — zero mutex acquisitions).
  std::optional<Prediction> ResultCacheLookup(uint64_t key) const;
  // Inserts unless the cache was invalidated after `epoch` was read.
  void ResultCacheInsert(uint64_t key, const Prediction& prediction, uint64_t epoch);
  // Executes the model against the snapshot; no locks taken.
  Prediction Execute(const ClientState& state, const LoadedModel& model,
                     const ClientInputs& inputs) const;

  // --- write side; all Locked methods require writer_mu_ held ---
  void PublishLocked(std::shared_ptr<ClientState> next);
  void InvalidateResultCache();
  // Outcome of ingesting one blob. `ok` is false when the blob was rejected
  // (checksum mismatch, decode failure, unknown key family) — rejected blobs
  // never replace good state. `index_dirty` means the key was newly mirrored
  // to disk and the caller should persist the index (once per batch).
  struct IngestResult {
    bool ok = false;
    bool index_dirty = false;
  };
  IngestResult IngestLocked(ClientState& state, const std::string& key,
                            const rc::store::VersionedBlob& blob);
  // config_.engine_mode_overrides[name] if present, else config_.engine_mode.
  rc::ml::ExecEngine::Mode EngineModeFor(const std::string& name) const;
  // Exports rc_client_model_bytes{model,pool} for a freshly compiled engine.
  void ExportModelBytes(const std::string& name, const rc::ml::ExecEngine& engine);
  bool LoadModelLocked(ClientState& state, const std::string& model_name, bool allow_store);
  bool LoadFeaturesLocked(ClientState& state, uint64_t subscription_id, bool allow_store);
  std::optional<rc::store::VersionedBlob> FetchLocked(const std::string& key,
                                                      bool allow_store);
  // Store read with bounded retry + backoff behind the circuit breaker.
  // kHit fills `out`; kMiss is an authoritative absence (store healthy, key
  // not there); kFailed means the store could not answer — fall back.
  enum class StoreRead { kHit, kMiss, kFailed };
  StoreRead StoreReadLocked(const std::string& key, rc::store::VersionedBlob& out);
  // Circuit-breaker bookkeeping; all require writer_mu_ held.
  bool BreakerOpenLocked();
  void BreakerFailureLocked();
  void BreakerSuccessLocked();
  void SetDegraded(DegradedReason reason);
  void LoadAllFromStoreLocked(ClientState& state);
  void LoadAllFromDiskLocked(ClientState& state);
  void PersistIndexLocked();
  // PredictSingle body, separated so the public entry can wrap it with the
  // sampled latency measurement. Routes result-cache misses through the
  // combiner when one is configured.
  Prediction PredictSingleImpl(const std::string& model_name, const ClientInputs& inputs);
  // The post-cache-miss single-prediction path: snapshot load, execute (or
  // PredictMiss), result-cache insert. Never consults the result cache and
  // never re-enters the combiner — it is the combiner's fast-path callee.
  Prediction PredictUncoalesced(const std::string& model_name, const ClientInputs& inputs);
  // Result-cache probe with hit/miss accounting, for a combiner that fronts
  // PredictSingle itself (probe_result_cache mode).
  std::optional<Prediction> ProbeResultCache(const std::string& model_name,
                                             const ClientInputs& inputs);
  // Slow path: a model or feature record was missing from the snapshot.
  Prediction PredictMiss(const std::string& model_name, const ClientInputs& inputs,
                         uint64_t cache_key, uint64_t epoch);

  friend class BatchCombiner;  // calls PredictUncoalesced on its fast path

  rc::store::KvStore* store_;
  ClientConfig config_;
  rc::common::Clock* clock_;  // config_.clock or MonotonicClock::Instance()
  std::unique_ptr<rc::store::DiskCache> disk_;

  // Published snapshot; readers load from their own stripe only.
  SnapshotHolder snapshot_;
  // The latest published state, for writers; guarded by writer_mu_.
  StatePtr master_state_;
  // Admission-controlled result cache with a lock-free hit path. Its epoch
  // is bumped before every invalidation so a reader racing with an
  // invalidation never re-inserts a result computed from a stale snapshot.
  // Constructed after the metrics registry is resolved (rc_cache_* lands in
  // the same registry as this client's rc_client_* instruments).
  std::unique_ptr<rc::cache::ShardedCache<Prediction>> result_cache_;

  // Serializes all state transitions (push listener, pull fills, reloads)
  // and guards the disk mirror + known-key index below. Mutable so the
  // const Health() accessor can read the breaker fields it guards.
  mutable std::mutex writer_mu_;
  std::vector<std::string> known_keys_;             // disk-index persistence order
  std::unordered_set<std::string> known_keys_set_;  // O(1) duplicate check
  int store_subscription_ = -1;

  // Circuit-breaker state; guarded by writer_mu_ (all store access holds it).
  // The open-until deadline is in clock_->NowUs() microseconds.
  int consecutive_store_failures_ = 0;
  bool breaker_open_ = false;
  int64_t breaker_open_until_us_ = 0;

  // Current degradation reason, readable from stats() without a lock
  // (mirrored into the rc_client_degraded_reason gauge).
  std::atomic<uint8_t> degraded_reason_{0};

  std::unique_ptr<rc::obs::MetricsRegistry> owned_metrics_;  // when config has none
  rc::obs::MetricsRegistry* metrics_ = nullptr;
  Instruments m_{};

  // Cross-request batching; null unless config_.combiner.enabled. Declared
  // last so it is destroyed (draining parked callers) before the state it
  // predicts against.
  std::unique_ptr<BatchCombiner> combiner_;
};

}  // namespace rc::core

#endif  // RC_SRC_CORE_CLIENT_H_
