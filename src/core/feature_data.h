// Per-subscription "feature data" (paper Sections 4.2 and 6.1): rolling
// aggregates of each subscription's past VM behaviour — most importantly the
// fraction of its VMs observed in each bucket of each metric to date, which
// the paper identifies as the most predictive attributes. One record per
// subscription, serialized compactly (the paper measures ~850 bytes per
// subscription record); the full map is what RC pushes to client caches.
#ifndef RC_SRC_CORE_FEATURE_DATA_H_
#define RC_SRC_CORE_FEATURE_DATA_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/buckets.h"
#include "src/ml/bytes.h"
#include "src/trace/vm_types.h"

namespace rc::core {

struct SubscriptionFeatures {
  uint64_t subscription_id = 0;
  int64_t vm_count = 0;          // VMs observed to date
  int64_t deployment_count = 0;  // deployment groups observed to date

  // Fraction of past VMs per bucket, per metric (class uses buckets 0/1).
  std::array<std::array<double, 4>, kNumMetrics> bucket_frac{};

  // Running means of the raw metrics.
  double mean_avg_cpu = 0.0;
  double mean_p95_cpu = 0.0;
  double mean_log_lifetime = 0.0;  // log-seconds
  double mean_cores = 0.0;
  double mean_deploy_vms = 0.0;

  void SerializeTo(rc::ml::ByteWriter& w) const;
  static SubscriptionFeatures DeserializeFrom(rc::ml::ByteReader& r);
  std::vector<uint8_t> Serialize() const;
  static SubscriptionFeatures Deserialize(const std::vector<uint8_t>& bytes);
};

// Incrementally accumulates feature data from observed VM outcomes, in
// creation order. The offline pipeline uses snapshots of this state at each
// VM's creation time as training features (history-so-far), mirroring what
// the online system would have known.
class FeatureDataBuilder {
 public:
  // Current (possibly empty) state for a subscription.
  SubscriptionFeatures Snapshot(uint64_t subscription_id) const;
  bool Has(uint64_t subscription_id) const;

  // Granular observations, in the order the platform would actually learn
  // them: utilization summaries and workload class become observable while a
  // VM runs; its lifetime only at termination; deployment size at the end of
  // the deployment day. The offline pipeline schedules these as events so
  // training features never peek at outcomes that postdate the example.
  void ObserveUtilization(uint64_t subscription_id, double avg_cpu, double p95_max_cpu,
                          int cores);
  void ObserveClass(uint64_t subscription_id, rc::trace::WorkloadClass workload_class);
  void ObserveLifetime(uint64_t subscription_id, SimDuration lifetime);
  // Folds a deployment-group observation (size in #VMs and #cores).
  void ObserveDeployment(uint64_t subscription_id, int64_t vms, int64_t cores);

  // Convenience for tests and non-chronological aggregation: folds a
  // completed VM's utilization, class, and lifetime at once.
  void ObserveVm(const rc::trace::VmRecord& vm, rc::trace::WorkloadClass workload_class);

  const std::unordered_map<uint64_t, SubscriptionFeatures>& data() const { return data_; }
  std::unordered_map<uint64_t, SubscriptionFeatures> TakeData() { return std::move(data_); }

 private:
  struct Counters {
    std::array<std::array<int64_t, 4>, kNumMetrics> bucket_counts{};
    int64_t util_observed = 0;
    int64_t class_observed = 0;
    int64_t lifetime_observed = 0;
    double sum_avg_cpu = 0.0;
    double sum_p95_cpu = 0.0;
    double sum_log_lifetime = 0.0;
    double sum_cores = 0.0;
    double sum_deploy_vms = 0.0;
  };

  void Recompute(uint64_t subscription_id);

  std::unordered_map<uint64_t, SubscriptionFeatures> data_;
  std::unordered_map<uint64_t, Counters> counters_;
};

}  // namespace rc::core

#endif  // RC_SRC_CORE_FEATURE_DATA_H_
