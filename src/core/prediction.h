// Prediction types and client inputs for the RC client library (Table 2 of
// the paper). A prediction is a bucket plus a confidence score; clients must
// handle the no-prediction case (e.g. unknown subscription, low confidence,
// store outage at cold start).
#ifndef RC_SRC_CORE_PREDICTION_H_
#define RC_SRC_CORE_PREDICTION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/buckets.h"

namespace rc::core {

struct Prediction {
  bool valid = false;  // false => no-prediction
  int bucket = -1;
  double score = 0.0;  // model confidence in [0, 1]

  static Prediction None() { return Prediction{}; }
  static Prediction Of(int bucket, double score) { return Prediction{true, bucket, score}; }
};

// Which end of the predicted bucket to use when a client needs a number
// (paper Section 4.2).
enum class BucketValuePolicy { kLow, kMid, kHigh };
// Converts a utilization bucket to a fraction per the policy.
double UtilizationBucketValue(int bucket, BucketValuePolicy policy);

// The information a client passes alongside a model name (paper: subscription
// id, VM type and size, deployment size/time, ...). Everything RC knows about
// a VM at prediction time.
struct ClientInputs {
  uint64_t subscription_id = 0;
  int vm_type = 0;   // 0 = IaaS, 1 = PaaS
  int guest_os = 0;  // 0 = Linux, 1 = Windows
  int role = 0;      // 0 = IaaS, 1..4 = PaaS roles
  int cores = 1;
  double memory_gb = 1.75;
  int size_index = 0;  // index into the VM size catalog
  int region = 0;
  int deploy_hour = 0;  // hour-of-day at deployment
  int deploy_dow = 0;   // day-of-week at deployment
  int service_id = 0;   // 0 = "unknown", 1..N = top first-party services

  // Stable 64-bit key for the client result cache: hash(model name, inputs).
  uint64_t CacheKey(std::string_view model_name) const;
};

}  // namespace rc::core

#endif  // RC_SRC_CORE_PREDICTION_H_
