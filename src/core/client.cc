#include "src/core/client.h"

#include <algorithm>

namespace rc::core {

using rc::store::VersionedBlob;

namespace {
// Disk-cache key holding the list of blob keys the client has seen, so a
// restarted client can reload everything while the store is down.
constexpr char kIndexKey[] = "__rc_client_index__";

std::vector<uint8_t> SerializeKeys(const std::vector<std::string>& keys) {
  rc::ml::ByteWriter w;
  w.U32(static_cast<uint32_t>(keys.size()));
  for (const auto& key : keys) w.String(key);
  return w.TakeBytes();
}

std::vector<std::string> DeserializeKeys(const std::vector<uint8_t>& bytes) {
  rc::ml::ByteReader r(bytes);
  uint32_t n = r.U32();
  std::vector<std::string> keys;
  keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) keys.push_back(r.String());
  return keys;
}
}  // namespace

Client::Client(rc::store::KvStore* store, ClientConfig config)
    : store_(store), config_(std::move(config)) {
  if (!config_.disk_cache_dir.empty()) {
    disk_ = std::make_unique<rc::store::DiskCache>(config_.disk_cache_dir,
                                                   config_.disk_expiry_seconds);
  }
}

Client::~Client() {
  if (store_ != nullptr && store_subscription_ >= 0) {
    store_->Unsubscribe(store_subscription_);
  }
}

bool Client::Initialize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    if (config_.mode == CacheMode::kPush) {
      if (store_->available()) {
        LoadAllFromStoreLocked();
      } else if (disk_ != nullptr) {
        // Cold start during an outage: rebuild caches from the disk mirror.
        if (auto index = disk_->Get(kIndexKey)) {
          for (const std::string& key : DeserializeKeys(index->data)) {
            if (auto blob = disk_->Get(key)) {
              ++stats_.disk_hits;
              IngestLocked(key, *blob);
            }
          }
        }
      }
      // Keep caches fresh as RC publishes new artifacts.
      store_subscription_ = store_->Subscribe([this](const std::string& key,
                                                     const VersionedBlob& blob) {
        std::lock_guard<std::mutex> push_lock(mu_);
        IngestLocked(key, blob);
        // New artifacts can invalidate cached results.
        result_cache_.clear();
      });
    }
    return true;
  }
  // Store-less client: disk cache only.
  if (disk_ == nullptr) return false;
  if (auto index = disk_->Get(kIndexKey)) {
    for (const std::string& key : DeserializeKeys(index->data)) {
      if (auto blob = disk_->Get(key)) {
        ++stats_.disk_hits;
        IngestLocked(key, *blob);
      }
    }
    return true;
  }
  return false;
}

void Client::LoadAllFromStoreLocked() {
  for (const std::string& key : store_->ListKeys("")) {
    if (auto blob = store_->Get(key)) {
      ++stats_.store_fetches;
      IngestLocked(key, *blob);
    }
  }
  PersistIndexLocked();
}

void Client::IngestLocked(const std::string& key, const VersionedBlob& blob) {
  uint64_t subscription_id = 0;
  if (key.rfind(kModelKeyPrefix, 0) == 0) {
    std::string name = key.substr(sizeof(kModelKeyPrefix) - 1);
    LoadedModel& entry = models_[name];
    entry.model = rc::ml::Classifier::DeserializeTagged(blob.data);
    // The spec may arrive before or after the model; featurizer is built
    // when both are present.
    if (!entry.spec.name.empty() && entry.featurizer == nullptr) {
      entry.featurizer = std::make_unique<Featurizer>(entry.spec.metric, entry.spec.encoding);
    }
  } else if (key.rfind(kSpecKeyPrefix, 0) == 0) {
    ModelSpec spec = ModelSpec::Deserialize(blob.data);
    LoadedModel& entry = models_[spec.name];
    entry.spec = spec;
    entry.featurizer = std::make_unique<Featurizer>(spec.metric, spec.encoding);
  } else if (ParseFeatureKey(key, subscription_id)) {
    features_[subscription_id] = SubscriptionFeatures::Deserialize(blob.data);
  } else {
    return;  // unknown key family
  }
  if (disk_ != nullptr) {
    disk_->Put(key, blob);
    if (std::find(known_keys_.begin(), known_keys_.end(), key) == known_keys_.end()) {
      known_keys_.push_back(key);
      PersistIndexLocked();
    }
  }
}

void Client::PersistIndexLocked() {
  if (disk_ == nullptr) return;
  VersionedBlob blob;
  blob.version = 1;
  blob.data = SerializeKeys(known_keys_);
  disk_->Put(kIndexKey, blob);
}

std::optional<VersionedBlob> Client::FetchLocked(const std::string& key, bool allow_store) {
  if (store_ != nullptr && allow_store && store_->available()) {
    if (auto blob = store_->Get(key)) {
      ++stats_.store_fetches;
      return blob;
    }
    return std::nullopt;  // store up, key genuinely absent
  }
  // Store down (or absent): the disk cache is the fallback.
  if (disk_ != nullptr) {
    if (auto blob = disk_->Get(key)) {
      ++stats_.disk_hits;
      return blob;
    }
  }
  return std::nullopt;
}

bool Client::LoadModelLocked(const std::string& model_name, bool allow_store) {
  auto it = models_.find(model_name);
  if (it != models_.end() && it->second.model != nullptr && it->second.featurizer != nullptr) {
    return true;
  }
  auto spec_blob = FetchLocked(SpecKey(model_name), allow_store);
  auto model_blob = FetchLocked(ModelKey(model_name), allow_store);
  if (!spec_blob || !model_blob) return false;
  IngestLocked(SpecKey(model_name), *spec_blob);
  IngestLocked(ModelKey(model_name), *model_blob);
  it = models_.find(model_name);
  return it != models_.end() && it->second.model != nullptr && it->second.featurizer != nullptr;
}

bool Client::LoadFeaturesLocked(uint64_t subscription_id, bool allow_store) {
  if (features_.contains(subscription_id)) return true;
  auto blob = FetchLocked(FeatureKey(subscription_id), allow_store);
  if (!blob) return false;
  IngestLocked(FeatureKey(subscription_id), *blob);
  return features_.contains(subscription_id);
}

std::vector<std::string> Client::GetAvailableModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) {
    if (entry.model != nullptr) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Prediction Client::ExecuteLocked(LoadedModel& entry, const ClientInputs& inputs) {
  auto features_it = features_.find(inputs.subscription_id);
  SubscriptionFeatures empty;
  const SubscriptionFeatures* history = nullptr;
  if (features_it != features_.end()) {
    history = &features_it->second;
  } else if (config_.allow_missing_feature_data) {
    empty.subscription_id = inputs.subscription_id;
    history = &empty;
  } else {
    ++stats_.no_predictions;
    return Prediction::None();
  }
  std::vector<double> row = entry.featurizer->Encode(inputs, *history);
  ++stats_.model_executions;
  auto scored = entry.model->PredictScored(row);
  return Prediction::Of(scored.label, scored.score);
}

Prediction Client::PredictSingle(const std::string& model_name, const ClientInputs& inputs) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t key = inputs.CacheKey(model_name);
  auto cached = result_cache_.find(key);
  if (cached != result_cache_.end()) {
    ++stats_.result_hits;
    return cached->second;
  }
  ++stats_.result_misses;

  const bool pull = config_.mode == CacheMode::kPull;
  if (pull && config_.pull_never_blocks) {
    // Never-blocking pull: if either artifact is not already in memory,
    // answer no-prediction while warming the caches for subsequent requests.
    // (In production the warm-up happens on a background thread.)
    auto model_it = models_.find(model_name);
    bool model_present = model_it != models_.end() && model_it->second.model != nullptr &&
                         model_it->second.featurizer != nullptr;
    bool features_present = features_.contains(inputs.subscription_id) ||
                            config_.allow_missing_feature_data;
    if (!model_present || !features_present) {
      LoadModelLocked(model_name, /*allow_store=*/true);
      LoadFeaturesLocked(inputs.subscription_id, /*allow_store=*/true);
      ++stats_.no_predictions;
      return Prediction::None();
    }
  } else {
    bool model_ready = LoadModelLocked(model_name, /*allow_store=*/pull);
    if (!model_ready) {
      ++stats_.no_predictions;
      return Prediction::None();
    }
    LoadFeaturesLocked(inputs.subscription_id, /*allow_store=*/pull);
  }
  auto model_it = models_.find(model_name);
  if (model_it == models_.end() || model_it->second.model == nullptr) {
    ++stats_.no_predictions;
    return Prediction::None();
  }
  Prediction prediction = ExecuteLocked(model_it->second, inputs);
  if (prediction.valid) {
    if (result_cache_.size() >= config_.result_cache_capacity) result_cache_.clear();
    result_cache_.emplace(key, prediction);
  }
  return prediction;
}

std::vector<Prediction> Client::PredictMany(const std::string& model_name,
                                            std::span<const ClientInputs> inputs) {
  std::vector<Prediction> out;
  out.reserve(inputs.size());
  for (const ClientInputs& in : inputs) out.push_back(PredictSingle(model_name, in));
  return out;
}

void Client::ForceReloadCache() {
  std::lock_guard<std::mutex> lock(mu_);
  result_cache_.clear();
  if (store_ != nullptr && store_->available()) {
    models_.clear();
    features_.clear();
    LoadAllFromStoreLocked();
  }
}

void Client::FlushCache() {
  std::lock_guard<std::mutex> lock(mu_);
  result_cache_.clear();
  models_.clear();
  features_.clear();
  known_keys_.clear();
  if (disk_ != nullptr) disk_->Clear();
}

ClientStats Client::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rc::core
