#include "src/core/client.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "src/common/clock.h"
#include "src/common/crc32.h"
#include "src/common/faults.h"
#include "src/common/hashing.h"
#include "src/core/batch_combiner.h"
#include "src/ml/exec_engine.h"
#include "src/obs/trace_events.h"

namespace rc::core {

using rc::store::KvStore;
using rc::store::VersionedBlob;

const char* ToString(DegradedReason reason) {
  switch (reason) {
    case DegradedReason::kNone: return "none";
    case DegradedReason::kStoreOutage: return "store-outage";
    case DegradedReason::kStoreErrors: return "store-errors";
    case DegradedReason::kCorruptData: return "corrupt-data";
  }
  return "unknown";
}

namespace {
// Disk-cache key holding the list of blob keys the client has seen, so a
// restarted client can reload everything while the store is down.
constexpr char kIndexKey[] = "__rc_client_index__";

std::vector<uint8_t> SerializeKeys(const std::vector<std::string>& keys) {
  rc::ml::ByteWriter w;
  w.U32(static_cast<uint32_t>(keys.size()));
  for (const auto& key : keys) w.String(key);
  return w.TakeBytes();
}

std::vector<std::string> DeserializeKeys(const std::vector<uint8_t>& bytes) {
  rc::ml::ByteReader r(bytes);
  uint32_t n = r.U32();
  std::vector<std::string> keys;
  keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) keys.push_back(r.String());
  return keys;
}

constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

size_t Client::SnapshotHolder::StripeIndex() {
  static std::atomic<size_t> next_stripe{0};
  thread_local size_t index = next_stripe.fetch_add(1, kRelaxed) % kStripes;
  return index;
}

Client::StatePtr Client::SnapshotHolder::load() const {
  const Stripe& stripe = stripes_[StripeIndex()];
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.state;
}

void Client::SnapshotHolder::store(StatePtr next) {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.state = next;
  }
}

const Client::LoadedModel* Client::ClientState::FindReadyModel(
    const std::string& name) const {
  auto it = models.find(name);
  if (it == models.end() || !it->second->ready()) return nullptr;
  return it->second.get();
}

const SubscriptionFeatures* Client::ClientState::FindFeatures(
    uint64_t subscription_id) const {
  auto it = features.find(subscription_id);
  return it == features.end() ? nullptr : it->second.get();
}

Client::Client(rc::store::KvStore* store, ClientConfig config)
    : store_(store), config_(std::move(config)) {
  clock_ = config_.clock != nullptr ? config_.clock
                                    : rc::common::MonotonicClock::Instance();
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<rc::obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  RegisterInstruments();
  if (!config_.disk_cache_dir.empty()) {
    disk_ = std::make_unique<rc::store::DiskCache>(config_.disk_cache_dir,
                                                   config_.disk_expiry_seconds, metrics_);
  }
  // Admission-controlled result cache with a lock-free hit path (capacity 0
  // disables it: lookups miss, inserts drop). Shares this client's registry
  // so rc_cache_* shows up next to rc_client_* in /metrics and /varz.
  {
    rc::cache::CacheOptions cache_options;
    cache_options.capacity = config_.result_cache_capacity;
    cache_options.admission = config_.result_cache_admission;
    cache_options.metrics = metrics_;
    cache_options.metric_labels = config_.metric_labels;
    result_cache_ =
        std::make_unique<rc::cache::ShardedCache<Prediction>>(cache_options);
  }
  master_state_ = std::make_shared<const ClientState>();
  snapshot_.store(master_state_);
  if (config_.combiner.enabled) {
    BatchCombinerConfig cc;
    cc.max_wait_us = config_.combiner.max_wait_us;
    cc.max_batch = config_.combiner.max_batch;
    cc.fast_path_when_idle = config_.combiner.fast_path_when_idle;
    cc.clock = clock_;
    cc.metrics = metrics_;
    cc.metric_labels = config_.metric_labels;
    combiner_ = std::make_unique<BatchCombiner>(this, std::move(cc));
  }
}

void Client::RegisterInstruments() {
  auto counter = [this](std::string_view name, std::string_view help) {
    return &metrics_->GetCounter(name, config_.metric_labels, help);
  };
  m_.result_hits = counter("rc_client_result_hits", "result-cache hits");
  m_.result_misses = counter("rc_client_result_misses", "result-cache misses");
  m_.model_executions = counter("rc_client_model_executions", "model executions");
  m_.store_fetches = counter("rc_client_store_fetches", "successful store reads");
  m_.disk_hits = counter("rc_client_disk_hits", "disk-mirror fallback hits");
  m_.no_predictions = counter("rc_client_no_predictions", "no-prediction answers");
  m_.store_errors = counter("rc_client_store_errors", "failed store reads (pre-retry)");
  m_.store_retries = counter("rc_client_store_retries", "store read retry attempts");
  m_.corrupt_blobs = counter("rc_client_corrupt_blobs", "blobs rejected by checksum");
  m_.decode_failures =
      counter("rc_client_decode_failures", "valid-CRC blobs that failed decode");
  m_.breaker_trips = counter("rc_client_breaker_trips", "circuit-breaker open transitions");
  m_.reload_timeouts = counter("rc_client_reload_timeouts", "reloads cut short by deadline");
  m_.degraded_reason = &metrics_->GetGauge(
      "rc_client_degraded_reason", config_.metric_labels,
      "current DegradedReason (0 none, 1 outage, 2 errors, 3 corrupt)");
  m_.predict_latency_us = &metrics_->GetHistogram(
      "rc_client_predict_latency_us", rc::obs::HistogramOptions{}, config_.metric_labels,
      "sampled PredictSingle latency (us)");
  m_.store_read_latency_us = &metrics_->GetHistogram(
      "rc_client_store_read_latency_us", rc::obs::HistogramOptions{},
      config_.metric_labels, "per-call store read latency incl. retries (us)");
  m_.batch_size = &metrics_->GetHistogram(
      "rc_client_batch_size", rc::obs::HistogramOptions{}, config_.metric_labels,
      "inputs per PredictMany call");
}

bool Client::ShouldSampleLatency() const {
  uint32_t every = config_.predict_latency_sample_every;
  if (every == 0) return false;
  if (every == 1) return true;
  thread_local uint32_t calls = 0;
  return ++calls % every == 0;
}

Client::~Client() {
  // Drain parked combiner callers first: anything still blocked in Predict
  // gets ok=false instead of touching a half-destroyed client.
  if (combiner_ != nullptr) combiner_->Shutdown();
  // Unsubscribe drains in-flight listener invocations, so after this returns
  // no store thread can call back into this (soon-destroyed) client.
  if (store_ != nullptr && store_subscription_ >= 0) {
    store_->Unsubscribe(store_subscription_);
  }
}

bool Client::Initialize() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (store_ != nullptr) {
    if (config_.mode == CacheMode::kPush) {
      auto next = std::make_shared<ClientState>();
      if (store_->available()) {
        LoadAllFromStoreLocked(*next);
      } else if (disk_ != nullptr) {
        // Cold start during an outage: rebuild caches from the disk mirror.
        LoadAllFromDiskLocked(*next);
      }
      PublishLocked(std::move(next));
      // Keep caches fresh as RC publishes new artifacts.
      store_subscription_ = store_->Subscribe([this](const std::string& key,
                                                     const VersionedBlob& blob) {
        std::lock_guard<std::mutex> push_lock(writer_mu_);
        auto updated = std::make_shared<ClientState>(*master_state_);
        IngestResult ingest = IngestLocked(*updated, key, blob);
        // A corrupt push never replaces good state: keep serving the
        // last-good snapshot (and its cached results) untouched.
        if (!ingest.ok) return;
        if (ingest.index_dirty) PersistIndexLocked();
        PublishLocked(std::move(updated));
        // New artifacts can invalidate cached results.
        InvalidateResultCache();
      });
    }
    return true;
  }
  // Store-less client: disk cache only.
  if (disk_ == nullptr) return false;
  if (disk_->Get(kIndexKey) == std::nullopt) return false;
  auto next = std::make_shared<ClientState>();
  LoadAllFromDiskLocked(*next);
  PublishLocked(std::move(next));
  return true;
}

void Client::PublishLocked(std::shared_ptr<ClientState> next) {
  rc::obs::TraceSpan span("client/publish_state");
  master_state_ = StatePtr(std::move(next));
  snapshot_.store(master_state_);
}

std::optional<Prediction> Client::ResultCacheLookup(uint64_t key) const {
  // Seqlock probe: zero mutex acquisitions on a hit (sharded_cache.h).
  return result_cache_->Lookup(key);
}

void Client::ResultCacheInsert(uint64_t key, const Prediction& prediction,
                               uint64_t epoch) {
  // The cache drops the insert if an invalidation ran after this
  // prediction's snapshot was taken, so stale results never outlive the
  // invalidation. Overflow evicts one entry via W-TinyLFU — never a flush.
  result_cache_->Insert(key, prediction, epoch);
}

void Client::InvalidateResultCache() {
  result_cache_->Invalidate();
}

void Client::SetDegraded(DegradedReason reason) {
  degraded_reason_.store(static_cast<uint8_t>(reason), std::memory_order_relaxed);
  m_.degraded_reason->Set(static_cast<double>(static_cast<uint8_t>(reason)));
}

bool Client::BreakerOpenLocked() {
  if (!breaker_open_) return false;
  if (clock_->NowUs() < breaker_open_until_us_) return true;
  // Half-open: let one probe through. A success closes the breaker; one more
  // failure re-opens it immediately.
  breaker_open_ = false;
  consecutive_store_failures_ = std::max(0, config_.breaker_failure_threshold - 1);
  return false;
}

void Client::BreakerFailureLocked() {
  if (config_.breaker_failure_threshold <= 0) return;
  consecutive_store_failures_ += 1;
  if (!breaker_open_ && consecutive_store_failures_ >= config_.breaker_failure_threshold) {
    breaker_open_ = true;
    breaker_open_until_us_ = clock_->NowUs() + config_.breaker_open_us;
    m_.breaker_trips->Increment();
  }
}

void Client::BreakerSuccessLocked() {
  consecutive_store_failures_ = 0;
  breaker_open_ = false;
  // A healthy store interaction ends an outage/error window; a corrupt-data
  // window only ends on a clean ingest.
  uint8_t reason = degraded_reason_.load(std::memory_order_relaxed);
  if (reason == static_cast<uint8_t>(DegradedReason::kStoreOutage) ||
      reason == static_cast<uint8_t>(DegradedReason::kStoreErrors)) {
    SetDegraded(DegradedReason::kNone);
  }
}

Client::StoreRead Client::StoreReadLocked(const std::string& key, VersionedBlob& out) {
  if (store_ == nullptr) return StoreRead::kFailed;
  if (BreakerOpenLocked()) return StoreRead::kFailed;  // don't hammer a failing store
  rc::obs::TraceSpan span("client/store_read");
  rc::obs::ScopedTimer timer(m_.store_read_latency_us);
  int64_t backoff_us = std::max<int64_t>(1, config_.store_retry_backoff_us);
  for (int attempt = 0;; ++attempt) {
    KvStore::GetResult result = faults::InjectError("client/store_read")
                                    ? KvStore::GetResult{KvStore::GetStatus::kError, {}}
                                    : store_->TryGet(key);
    switch (result.status) {
      case KvStore::GetStatus::kOk:
        BreakerSuccessLocked();
        m_.store_fetches->Increment();
        out = std::move(result.blob);
        return StoreRead::kHit;
      case KvStore::GetStatus::kNotFound:
        BreakerSuccessLocked();
        return StoreRead::kMiss;
      case KvStore::GetStatus::kUnavailable:
        // A reported outage is not retried: backing off cannot outlast it
        // within one call, and the breaker stops subsequent attempts.
        SetDegraded(DegradedReason::kStoreOutage);
        BreakerFailureLocked();
        return StoreRead::kFailed;
      case KvStore::GetStatus::kError:
        m_.store_errors->Increment();
        SetDegraded(DegradedReason::kStoreErrors);
        if (attempt >= config_.store_max_retries) {
          BreakerFailureLocked();
          return StoreRead::kFailed;
        }
        m_.store_retries->Increment();
        clock_->SleepUs(backoff_us);
        backoff_us *= 2;
        break;
    }
  }
}

void Client::LoadAllFromStoreLocked(ClientState& state) {
  int64_t deadline_us = std::numeric_limits<int64_t>::max();
  if (config_.reload_timeout_us > 0) {
    deadline_us = clock_->NowUs() + config_.reload_timeout_us;
  }
  bool clean = true;
  for (const std::string& key : store_->ListKeys("")) {
    if (clock_->NowUs() > deadline_us) {
      // Out of budget: stop fetching and serve what we have.
      m_.reload_timeouts->Increment();
      SetDegraded(DegradedReason::kStoreErrors);
      clean = false;
      break;
    }
    VersionedBlob blob;
    StoreRead read = StoreReadLocked(key, blob);
    if (read == StoreRead::kHit) {
      clean &= IngestLocked(state, key, blob).ok;
    } else if (read == StoreRead::kFailed) {
      clean = false;
    }
  }
  // One index rewrite per batch, not one per newly seen key.
  PersistIndexLocked();
  if (clean) SetDegraded(DegradedReason::kNone);
}

void Client::LoadAllFromDiskLocked(ClientState& state) {
  auto index = disk_->Get(kIndexKey);
  if (!index) return;
  std::vector<std::string> keys;
  try {
    keys = DeserializeKeys(index->data);
  } catch (const std::exception&) {
    m_.decode_failures->Increment();
    return;  // corrupt index: nothing to restore
  }
  for (const std::string& key : keys) {
    if (auto blob = disk_->Get(key)) {
      m_.disk_hits->Increment();
      IngestLocked(state, key, *blob);
    }
  }
}

Client::IngestResult Client::IngestLocked(ClientState& state, const std::string& key,
                                          const VersionedBlob& blob) {
  IngestResult result;
  // Reject-and-fallback: a corrupt blob must never replace good state. The
  // checksum catches transport/at-rest corruption; the decode try-block
  // catches structurally invalid payloads that happen to carry a valid CRC.
  {
    rc::obs::TraceSpan verify_span("client/crc_verify");
    if (!rc::store::VerifyBlob(blob)) {
      m_.corrupt_blobs->Increment();
      SetDegraded(DegradedReason::kCorruptData);
      return result;
    }
  }
  std::optional<rc::obs::TraceSpan> decode_span;
  decode_span.emplace("client/decode");
  uint64_t subscription_id = 0;
  try {
    if (key.rfind(kModelKeyPrefix, 0) == 0) {
      std::string name = key.substr(sizeof(kModelKeyPrefix) - 1);
      auto entry = std::make_shared<LoadedModel>();
      if (auto it = state.models.find(name); it != state.models.end()) {
        entry->spec = it->second->spec;
        entry->featurizer = it->second->featurizer;
      }
      entry->model = rc::ml::Classifier::DeserializeTagged(blob.data);
      // DeserializeTagged compiled the engine on this (load) path; pin the
      // pointer so the batch hot path skips the virtual engine() lookup, and
      // stamp the configured walk mode so Execute never consults the config.
      entry->engine = entry->model->engine();
      entry->mode = EngineModeFor(name);
      entry->blob_version = blob.version;
      entry->loaded_at_ns = rc::obs::NowNs();
      if (entry->engine != nullptr) ExportModelBytes(name, *entry->engine);
      // The spec may arrive before or after the model; featurizer is built
      // when both are present.
      if (!entry->spec.name.empty() && entry->featurizer == nullptr) {
        entry->featurizer =
            std::make_shared<Featurizer>(entry->spec.metric, entry->spec.encoding);
      }
      state.models[name] = std::move(entry);
    } else if (key.rfind(kSpecKeyPrefix, 0) == 0) {
      ModelSpec spec = ModelSpec::Deserialize(blob.data);
      auto entry = std::make_shared<LoadedModel>();
      if (auto it = state.models.find(spec.name); it != state.models.end()) {
        entry->model = it->second->model;
        entry->engine = it->second->engine;
      }
      entry->mode = EngineModeFor(spec.name);
      entry->blob_version = blob.version;
      entry->loaded_at_ns = rc::obs::NowNs();
      entry->spec = spec;
      entry->featurizer = std::make_shared<Featurizer>(spec.metric, spec.encoding);
      state.models[spec.name] = std::move(entry);
    } else if (ParseFeatureKey(key, subscription_id)) {
      state.features[subscription_id] = std::make_shared<const SubscriptionFeatures>(
          SubscriptionFeatures::Deserialize(blob.data));
    } else {
      return result;  // unknown key family
    }
  } catch (const std::exception&) {
    m_.decode_failures->Increment();
    SetDegraded(DegradedReason::kCorruptData);
    return result;
  }
  decode_span.reset();
  result.ok = true;
  // A clean ingest ends a corrupt-data degradation window.
  if (degraded_reason_.load(std::memory_order_relaxed) ==
      static_cast<uint8_t>(DegradedReason::kCorruptData)) {
    SetDegraded(DegradedReason::kNone);
  }
  if (disk_ == nullptr) return result;
  disk_->Put(key, blob);
  if (known_keys_set_.insert(key).second) {
    known_keys_.push_back(key);
    result.index_dirty = true;  // caller persists the index (once per batch)
  }
  return result;
}

void Client::PersistIndexLocked() {
  if (disk_ == nullptr) return;
  if (faults::InjectError("client/persist_index")) return;  // mirror is best-effort
  VersionedBlob blob;
  blob.version = 1;
  blob.data = SerializeKeys(known_keys_);
  blob.crc = Crc32(blob.data);
  disk_->Put(kIndexKey, blob);
}

std::optional<VersionedBlob> Client::FetchLocked(const std::string& key, bool allow_store) {
  if (store_ != nullptr && allow_store) {
    VersionedBlob blob;
    switch (StoreReadLocked(key, blob)) {
      case StoreRead::kHit:
        return blob;
      case StoreRead::kMiss:
        return std::nullopt;  // store healthy, key genuinely absent
      case StoreRead::kFailed:
        break;  // outage / errors / open breaker: degrade to the disk mirror
    }
  }
  // Store down (or absent): the disk cache is the fallback.
  if (disk_ != nullptr) {
    if (auto blob = disk_->Get(key)) {
      m_.disk_hits->Increment();
      return blob;
    }
  }
  return std::nullopt;
}

bool Client::LoadModelLocked(ClientState& state, const std::string& model_name,
                             bool allow_store) {
  if (state.FindReadyModel(model_name) != nullptr) return true;
  auto spec_blob = FetchLocked(SpecKey(model_name), allow_store);
  auto model_blob = FetchLocked(ModelKey(model_name), allow_store);
  if (!spec_blob || !model_blob) return false;
  bool index_dirty = IngestLocked(state, SpecKey(model_name), *spec_blob).index_dirty;
  index_dirty |= IngestLocked(state, ModelKey(model_name), *model_blob).index_dirty;
  if (index_dirty) PersistIndexLocked();
  return state.FindReadyModel(model_name) != nullptr;
}

bool Client::LoadFeaturesLocked(ClientState& state, uint64_t subscription_id,
                                bool allow_store) {
  if (state.FindFeatures(subscription_id) != nullptr) return true;
  auto blob = FetchLocked(FeatureKey(subscription_id), allow_store);
  if (!blob) return false;
  if (IngestLocked(state, FeatureKey(subscription_id), *blob).index_dirty) {
    PersistIndexLocked();
  }
  return state.FindFeatures(subscription_id) != nullptr;
}

std::vector<std::string> Client::GetAvailableModels() const {
  StatePtr state = LoadState();
  std::vector<std::string> names;
  names.reserve(state->models.size());
  for (const auto& [name, entry] : state->models) {
    if (entry->model != nullptr) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Prediction Client::Execute(const ClientState& state, const LoadedModel& entry,
                           const ClientInputs& inputs) const {
  const SubscriptionFeatures* history = state.FindFeatures(inputs.subscription_id);
  SubscriptionFeatures empty;
  if (history == nullptr) {
    if (!config_.allow_missing_feature_data) {
      m_.no_predictions->Increment();
      return Prediction::None();
    }
    empty.subscription_id = inputs.subscription_id;
    history = &empty;
  }
  // Per-thread arenas for the feature row and probability scratch: resize is
  // a no-op once warm, so a steady-state prediction allocates nothing.
  thread_local std::vector<double> row;
  thread_local std::vector<double> proba;
  row.resize(entry.featurizer->num_features());
  proba.resize(static_cast<size_t>(entry.model->num_classes()));
  {
    rc::obs::TraceSpan featurize_span("client/featurize");
    entry.featurizer->EncodeTo(inputs, *history, row);
  }
  m_.model_executions->Increment();
  rc::obs::TraceSpan execute_span("client/execute");
  // Compiled models run the engine directly so the stamped walk mode
  // applies; the virtual path serves classifier types without an engine.
  const auto scored =
      entry.engine != nullptr
          ? entry.engine->PredictScored(row, proba, entry.mode)
          : entry.model->PredictScored(row, proba);
  return Prediction::Of(scored.label, scored.score);
}

rc::ml::ExecEngine::Mode Client::EngineModeFor(const std::string& name) const {
  if (auto it = config_.engine_mode_overrides.find(name);
      it != config_.engine_mode_overrides.end()) {
    return it->second;
  }
  return config_.engine_mode;
}

void Client::ExportModelBytes(const std::string& name,
                              const rc::ml::ExecEngine& engine) {
  // Ingest path (writer-locked, rare), so get-or-create per model is fine.
  auto labeled = [&](const char* pool) {
    rc::obs::Labels labels = config_.metric_labels;
    labels.emplace_back("model", name);
    labels.emplace_back("pool", pool);
    return labels;
  };
  metrics_->GetGauge("rc_client_model_bytes", labeled("f64"),
                     "compiled node pool + leaf table bytes")
      .Set(static_cast<double>(engine.bytes()));
  if (engine.has_quantized()) {
    metrics_->GetGauge("rc_client_model_bytes", labeled("quantized"),
                       "u16 quantized pool + leaf table bytes")
        .Set(static_cast<double>(engine.quantized_bytes()));
  }
}

Prediction Client::PredictSingle(const std::string& model_name, const ClientInputs& inputs) {
  // Sampled timing (config_.predict_latency_sample_every) keeps the two
  // clock reads off most calls; everything else on this path is relaxed
  // shard increments — no mutex beyond the result-cache shard lock.
  rc::obs::TraceSpan span("client/predict");
  const bool timed = ShouldSampleLatency();
  const uint64_t start_ns = timed ? rc::obs::NowNs() : 0;
  Prediction prediction = PredictSingleImpl(model_name, inputs);
  if (timed) {
    m_.predict_latency_us->Record(static_cast<double>(rc::obs::NowNs() - start_ns) /
                                  1000.0);
  }
  return prediction;
}

Prediction Client::PredictSingleImpl(const std::string& model_name,
                                     const ClientInputs& inputs) {
  uint64_t key = inputs.CacheKey(model_name);
  {
    rc::obs::TraceSpan cache_span("client/result_cache");
    if (auto cached = ResultCacheLookup(key)) {
      m_.result_hits->Increment();
      return *cached;
    }
  }
  m_.result_misses->Increment();

  // Cache miss: coalesce with concurrent misses when a combiner is
  // configured. ok=false only when the combiner is shut down (client
  // teardown); direct execution is the correct fallback then.
  if (combiner_ != nullptr) {
    CombineResult coalesced = combiner_->Predict(model_name, inputs);
    if (coalesced.ok) return coalesced.prediction;
  }
  return PredictUncoalesced(model_name, inputs);
}

std::optional<Prediction> Client::ProbeResultCache(const std::string& model_name,
                                                   const ClientInputs& inputs) {
  uint64_t key = inputs.CacheKey(model_name);
  if (auto cached = ResultCacheLookup(key)) {
    m_.result_hits->Increment();
    return cached;
  }
  m_.result_misses->Increment();
  return std::nullopt;
}

Prediction Client::PredictUncoalesced(const std::string& model_name,
                                      const ClientInputs& inputs) {
  uint64_t key = inputs.CacheKey(model_name);
  // Order matters: reading the epoch before the snapshot means a concurrent
  // publish+invalidate is always detected at insert time.
  uint64_t epoch = result_cache_->epoch();
  StatePtr state = LoadState();
  const LoadedModel* model = state->FindReadyModel(model_name);
  bool features_present = state->FindFeatures(inputs.subscription_id) != nullptr ||
                          config_.allow_missing_feature_data;
  if (model == nullptr || !features_present) {
    // Miss in the snapshot: fall back to the (serialized) fill path, which
    // may consult the store (pull mode) or the disk mirror.
    return PredictMiss(model_name, inputs, key, epoch);
  }
  Prediction prediction = Execute(*state, *model, inputs);
  if (prediction.valid) ResultCacheInsert(key, prediction, epoch);
  return prediction;
}

Prediction Client::PredictMiss(const std::string& model_name, const ClientInputs& inputs,
                               uint64_t cache_key, uint64_t epoch) {
  const bool pull = config_.mode == CacheMode::kPull;
  StatePtr state;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    // Another thread (or a push) may have filled the gap while we waited.
    StatePtr current = master_state_;
    const LoadedModel* model = current->FindReadyModel(model_name);
    bool features_present = current->FindFeatures(inputs.subscription_id) != nullptr ||
                            config_.allow_missing_feature_data;
    if (model == nullptr || !features_present) {
      auto next = std::make_shared<ClientState>(*current);
      if (pull && config_.pull_never_blocks) {
        // Never-blocking pull: answer no-prediction while warming the caches
        // for subsequent requests. (In production the warm-up happens on a
        // background thread.)
        LoadModelLocked(*next, model_name, /*allow_store=*/true);
        LoadFeaturesLocked(*next, inputs.subscription_id, /*allow_store=*/true);
        PublishLocked(std::move(next));
        m_.no_predictions->Increment();
        return Prediction::None();
      }
      bool model_ready = LoadModelLocked(*next, model_name, /*allow_store=*/pull);
      if (!model_ready) {
        PublishLocked(std::move(next));  // keep any partial artifacts (e.g. spec)
        m_.no_predictions->Increment();
        return Prediction::None();
      }
      LoadFeaturesLocked(*next, inputs.subscription_id, /*allow_store=*/pull);
      PublishLocked(next);
      state = std::move(next);
    } else {
      state = std::move(current);
    }
  }
  const LoadedModel* model = state->FindReadyModel(model_name);
  if (model == nullptr) {
    m_.no_predictions->Increment();
    return Prediction::None();
  }
  Prediction prediction = Execute(*state, *model, inputs);
  if (prediction.valid) ResultCacheInsert(cache_key, prediction, epoch);
  return prediction;
}

// Table 2's predict_many, batched for real: the result cache is probed per
// key first, and only the misses are featurized into one contiguous arena and
// scored through a single ExecEngine::PredictBatch walk (tree-major, so each
// tree's pool slice is read once for the whole batch). Inputs whose model or
// feature data are absent from the snapshot fall back to the same serialized
// PredictMiss path PredictSingle uses, so batch and single semantics are
// identical input-for-input.
std::vector<Prediction> Client::PredictMany(const std::string& model_name,
                                            std::span<const ClientInputs> inputs) {
  rc::obs::TraceSpan span("client/predict");
  m_.batch_size->Record(static_cast<double>(inputs.size()));
  std::vector<Prediction> out(inputs.size());
  if (inputs.empty()) return out;

  std::vector<uint64_t> keys(inputs.size());
  std::vector<size_t> misses;
  misses.reserve(inputs.size());
  {
    rc::obs::TraceSpan cache_span("client/result_cache");
    for (size_t i = 0; i < inputs.size(); ++i) {
      keys[i] = inputs[i].CacheKey(model_name);
      if (auto cached = ResultCacheLookup(keys[i])) {
        m_.result_hits->Increment();
        out[i] = *cached;
      } else {
        misses.push_back(i);
      }
    }
  }
  if (misses.empty()) return out;
  m_.result_misses->Increment(misses.size());

  // Epoch before snapshot, exactly as in PredictSingleImpl, so a concurrent
  // publish+invalidate is detected at insert time.
  uint64_t epoch = result_cache_->epoch();
  StatePtr state = LoadState();
  const LoadedModel* model = state->FindReadyModel(model_name);
  if (model == nullptr) {
    for (size_t i : misses) out[i] = PredictMiss(model_name, inputs[i], keys[i], epoch);
    return out;
  }

  // Partition the misses: rows answerable from this snapshot join the batch;
  // the rest (feature data absent, allow_missing off) take the slow path.
  std::vector<size_t> batched;
  batched.reserve(misses.size());
  std::vector<size_t> slow;
  for (size_t i : misses) {
    if (state->FindFeatures(inputs[i].subscription_id) != nullptr ||
        config_.allow_missing_feature_data) {
      batched.push_back(i);
    } else {
      slow.push_back(i);
    }
  }

  if (!batched.empty()) {
    // Dedup repeated cache keys within the batch: each distinct key is
    // featurized and scored once, then fanned out to every row that asked
    // for it (and inserted into the result cache once). Without this a batch
    // of N identical inputs would walk the ensemble N times.
    std::vector<size_t> unique_rows;  // representative input index per key
    unique_rows.reserve(batched.size());
    std::vector<size_t> slot_of(batched.size());  // batched row -> unique slot
    {
      std::unordered_map<uint64_t, size_t> slot_by_key;
      slot_by_key.reserve(batched.size());
      for (size_t b = 0; b < batched.size(); ++b) {
        auto [it, inserted] = slot_by_key.try_emplace(keys[batched[b]], unique_rows.size());
        if (inserted) unique_rows.push_back(batched[b]);
        slot_of[b] = it->second;
      }
    }

    const size_t nf = model->featurizer->num_features();
    const size_t k = static_cast<size_t>(model->model->num_classes());
    // Per-thread arenas (feature matrix + probability block): warm calls
    // featurize and score the whole batch without a single allocation.
    thread_local std::vector<double> X;
    thread_local std::vector<double> proba;
    X.resize(unique_rows.size() * nf);
    proba.resize(unique_rows.size() * k);
    SubscriptionFeatures empty;
    {
      rc::obs::TraceSpan featurize_span("client/featurize");
      for (size_t u = 0; u < unique_rows.size(); ++u) {
        const ClientInputs& in = inputs[unique_rows[u]];
        const SubscriptionFeatures* history = state->FindFeatures(in.subscription_id);
        if (history == nullptr) {
          empty.subscription_id = in.subscription_id;
          history = &empty;
        }
        model->featurizer->EncodeTo(in, *history, {X.data() + u * nf, nf});
      }
    }
    {
      rc::obs::TraceSpan exec_span("client/exec_batch");
      if (model->engine != nullptr) {
        model->engine->PredictBatch(X.data(), unique_rows.size(), nf,
                                    proba.data(), model->mode);
      } else {
        model->model->PredictBatch(X.data(), unique_rows.size(), nf, proba.data());
      }
    }
    m_.model_executions->Increment(unique_rows.size());
    std::vector<Prediction> scored(unique_rows.size());
    for (size_t u = 0; u < unique_rows.size(); ++u) {
      const double* p = proba.data() + u * k;
      size_t best = 0;
      for (size_t c = 1; c < k; ++c) {
        if (p[c] > p[best]) best = c;
      }
      scored[u] = Prediction::Of(static_cast<int>(best), p[best]);
      if (scored[u].valid) ResultCacheInsert(keys[unique_rows[u]], scored[u], epoch);
    }
    for (size_t b = 0; b < batched.size(); ++b) out[batched[b]] = scored[slot_of[b]];
  }

  for (size_t i : slow) out[i] = PredictMiss(model_name, inputs[i], keys[i], epoch);
  return out;
}

void Client::ForceReloadCache() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (store_ == nullptr) {
    InvalidateResultCache();
    return;
  }
  if (!store_->available()) {
    // Outage: keep serving the last-good snapshot and its cached results.
    SetDegraded(DegradedReason::kStoreOutage);
    BreakerFailureLocked();
    return;
  }
  // Overlay fresh artifacts onto the last-good state, so keys whose reads
  // fail mid-reload (errors, timeout) keep their previous value instead of
  // vanishing from the snapshot.
  auto next = std::make_shared<ClientState>(*master_state_);
  LoadAllFromStoreLocked(*next);
  PublishLocked(std::move(next));
  InvalidateResultCache();
}

void Client::FlushCache() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PublishLocked(std::make_shared<ClientState>());
  known_keys_.clear();
  known_keys_set_.clear();
  if (disk_ != nullptr) disk_->Clear();
  InvalidateResultCache();
}

ClientStats Client::stats() const {
  ClientStats out;
  out.result_hits = m_.result_hits->Value();
  out.result_misses = m_.result_misses->Value();
  out.model_executions = m_.model_executions->Value();
  out.store_fetches = m_.store_fetches->Value();
  out.disk_hits = m_.disk_hits->Value();
  out.no_predictions = m_.no_predictions->Value();
  out.store_errors = m_.store_errors->Value();
  out.store_retries = m_.store_retries->Value();
  out.corrupt_blobs = m_.corrupt_blobs->Value();
  out.decode_failures = m_.decode_failures->Value();
  out.breaker_trips = m_.breaker_trips->Value();
  out.reload_timeouts = m_.reload_timeouts->Value();
  out.degraded_reason =
      static_cast<DegradedReason>(degraded_reason_.load(std::memory_order_relaxed));
  return out;
}

HealthSnapshot Client::Health() const {
  HealthSnapshot out;
  out.degraded = degraded_reason();
  {
    // The breaker fields are only ever written under writer_mu_; a brief
    // admin-path lock beats widening them to atomics.
    std::lock_guard<std::mutex> lock(writer_mu_);
    out.breaker_open = breaker_open_;
    out.consecutive_store_failures = consecutive_store_failures_;
  }
  StatePtr state = LoadState();
  if (state != nullptr) {
    out.models.reserve(state->models.size());
    for (const auto& [name, entry] : state->models) {
      ModelHealth mh;
      mh.name = name;
      mh.spec_version = entry->spec.version;
      mh.blob_version = entry->blob_version;
      mh.loaded_at_ns = entry->loaded_at_ns;
      mh.ready = entry->ready();
      out.models.push_back(std::move(mh));
    }
    std::sort(out.models.begin(), out.models.end(),
              [](const ModelHealth& a, const ModelHealth& b) { return a.name < b.name; });
  }
  return out;
}

}  // namespace rc::core
