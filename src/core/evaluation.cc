#include "src/core/evaluation.h"

#include <sstream>

#include "src/obs/metrics.h"

namespace rc::core {

MetricQuality EvaluateModel(const rc::ml::Classifier& model, const Featurizer& featurizer,
                            std::span<const LabeledExample> examples, double theta) {
  // Evaluation is the "validate" stage of the offline workflow; it shares the
  // pipeline's stage-duration family (process-global registry).
  rc::obs::ScopedTimer timer(&rc::obs::MetricsRegistry::Global().GetHistogram(
      "rc_pipeline_stage_duration_us", {}, {{"stage", "validate"}},
      "offline pipeline stage wall time (us)"));
  MetricQuality q;
  q.metric = featurizer.metric();
  q.theta = theta;
  const int k = NumBuckets(featurizer.metric());
  rc::ml::ConfusionMatrix confusion(k);
  rc::ml::ThresholdedAccumulator thresholded(theta);

  std::vector<double> row(featurizer.num_features());
  for (const LabeledExample& example : examples) {
    featurizer.EncodeTo(example.inputs, example.history, row);
    auto scored = model.PredictScored(row);
    confusion.Add(example.label, scored.label);
    thresholded.Add(example.label, scored.label, scored.score);
  }

  q.examples = confusion.total();
  q.accuracy = confusion.Accuracy();
  q.buckets.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    q.buckets[static_cast<size_t>(c)] = BucketQuality{
        confusion.Prevalence(c), confusion.Precision(c), confusion.Recall(c)};
  }
  auto t = thresholded.Result();
  q.p_theta = t.precision;
  q.r_theta = t.coverage;
  return q;
}

std::string FormatMetricQuality(const MetricQuality& q) {
  std::ostringstream os;
  os << MetricName(q.metric) << ": acc=" << q.accuracy;
  for (size_t b = 0; b < q.buckets.size(); ++b) {
    const BucketQuality& bq = q.buckets[b];
    os << " | b" << (b + 1) << " %=" << bq.prevalence << " P=" << bq.precision
       << " R=" << bq.recall;
  }
  os << " | P^t=" << q.p_theta << " R^t=" << q.r_theta << " (n=" << q.examples << ")";
  return os.str();
}

}  // namespace rc::core
