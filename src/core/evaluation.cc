#include "src/core/evaluation.h"

#include <algorithm>
#include <sstream>

#include "src/obs/metrics.h"

namespace rc::core {

MetricQuality EvaluateModel(const rc::ml::Classifier& model, const Featurizer& featurizer,
                            std::span<const LabeledExample> examples, double theta) {
  // Evaluation is the "validate" stage of the offline workflow; it shares the
  // pipeline's stage-duration family (process-global registry).
  rc::obs::ScopedTimer timer(&rc::obs::MetricsRegistry::Global().GetHistogram(
      "rc_pipeline_stage_duration_us", {}, {{"stage", "validate"}},
      "offline pipeline stage wall time (us)"));
  MetricQuality q;
  q.metric = featurizer.metric();
  q.theta = theta;
  const int k = NumBuckets(featurizer.metric());
  rc::ml::ConfusionMatrix confusion(k);
  rc::ml::ThresholdedAccumulator thresholded(theta);

  // Validation scores through the batched engine path: featurize a chunk
  // into one row-major block, one PredictBatch walk per chunk. The chunk
  // size bounds the arena (512 rows x features doubles) while keeping each
  // tree's node-pool slice hot across the whole chunk.
  constexpr size_t kChunk = 512;
  const size_t nf = featurizer.num_features();
  const size_t kk = static_cast<size_t>(model.num_classes());
  std::vector<double> X(kChunk * nf);
  std::vector<double> proba(kChunk * kk);
  for (size_t begin = 0; begin < examples.size(); begin += kChunk) {
    const size_t n = std::min(kChunk, examples.size() - begin);
    for (size_t i = 0; i < n; ++i) {
      const LabeledExample& example = examples[begin + i];
      featurizer.EncodeTo(example.inputs, example.history, {X.data() + i * nf, nf});
    }
    model.PredictBatch(X.data(), n, nf, proba.data());
    for (size_t i = 0; i < n; ++i) {
      const double* p = proba.data() + i * kk;
      size_t best = 0;
      for (size_t c = 1; c < kk; ++c) {
        if (p[c] > p[best]) best = c;
      }
      const LabeledExample& example = examples[begin + i];
      confusion.Add(example.label, static_cast<int>(best));
      thresholded.Add(example.label, static_cast<int>(best), p[best]);
    }
  }

  q.examples = confusion.total();
  q.accuracy = confusion.Accuracy();
  q.buckets.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    q.buckets[static_cast<size_t>(c)] = BucketQuality{
        confusion.Prevalence(c), confusion.Precision(c), confusion.Recall(c)};
  }
  auto t = thresholded.Result();
  q.p_theta = t.precision;
  q.r_theta = t.coverage;
  return q;
}

std::string FormatMetricQuality(const MetricQuality& q) {
  std::ostringstream os;
  os << MetricName(q.metric) << ": acc=" << q.accuracy;
  for (size_t b = 0; b < q.buckets.size(); ++b) {
    const BucketQuality& bq = q.buckets[b];
    os << " | b" << (b + 1) << " %=" << bq.prevalence << " P=" << bq.precision
       << " R=" << bq.recall;
  }
  os << " | P^t=" << q.p_theta << " R^t=" << q.r_theta << " (n=" << q.examples << ")";
  return os.str();
}

}  // namespace rc::core
