// Cross-request batching combiner (DESIGN.md "Cross-request batching").
//
// PR 4's ExecEngine scores a batch of 64 rows 2.4-2.8x faster per row than
// single rows, but concurrent PredictSingle callers each walk the ensemble
// alone. The combiner closes that gap: post-cache-miss PredictSingle calls
// for the same model are parked for a bounded window and dispatched as ONE
// Client::PredictMany (one snapshot load, one batched ExecEngine walk), with
// each caller handed back exactly the prediction it would have computed
// alone — PredictMany is pinned input-for-input identical to PredictSingle,
// so enabling the combiner never changes results, only scheduling.
//
// Dispatch policy (per model; every rule below is pinned by the
// VirtualClock suite in tests/core/batch_combiner_test.cc):
//  * fast path — an arrival finding no open batch and no dispatch in flight
//    executes immediately; a lone caller never pays the window.
//  * park — otherwise the arrival joins the model's open batch. The first
//    joiner becomes the leader and arms the window (max_wait_us).
//  * flush-on-full — the arrival that fills the batch to max_batch
//    dispatches it immediately.
//  * handoff — when any dispatch for the model completes, the open batch is
//    flushed at once: the requests it holds arrived while an execution was
//    already running, so waiting out the rest of the window only adds
//    latency.
//  * window — the leader's window expires with the batch still open and no
//    dispatch executing: the leader dispatches whatever accumulated. If a
//    dispatch IS executing at expiry, the leader keeps parking until that
//    dispatch's handoff flush (continuous batching: batches never fragment
//    into overlapping partial executions, and the extra wait is bounded by
//    the in-flight execution, not by wall-clock).
//  * shutdown — parked callers are drained with ok=false (never a hang);
//    Client::PredictSingle falls back to direct execution in that case.
//
// Time is injected (rc::common::Clock): production uses MonotonicClock,
// tests drive a VirtualClock so window expiry and wait accounting are exact.
#ifndef RC_SRC_CORE_BATCH_COMBINER_H_
#define RC_SRC_CORE_BATCH_COMBINER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/client.h"
#include "src/core/prediction.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_context.h"

namespace rc::core {

// Why a request's batch was dispatched (mirrors the rc_combiner_flushes
// counter labels).
enum class CombineFlush : uint8_t {
  kFastPath = 0,  // executed immediately, no parking
  kWindow,        // leader's max_wait_us expired
  kFull,          // batch reached max_batch
  kHandoff,       // a completing dispatch flushed the open batch
  kShutdown,      // combiner shut down while the request was parked
  kCacheHit,      // answered from the result cache (probe_result_cache only)
};
const char* ToString(CombineFlush flush);

struct BatchCombinerConfig {
  // Coalescing window, armed by the first parked arrival for a model.
  int64_t max_wait_us = 40;
  // Flush as soon as a batch holds this many requests.
  size_t max_batch = 64;
  // Execute immediately when the model has no open batch and no dispatch in
  // flight. Disable to force every caller through the parked path (the
  // deterministic tests do, so a lone caller exercises the window).
  bool fast_path_when_idle = true;
  // Probe the client's result cache before parking, so cache hits never wait
  // out a window. On when the combiner fronts PredictSingle itself (the
  // rc::net server's combiner); off when the client routes its own misses
  // here (Client::PredictSingleImpl already probed).
  bool probe_result_cache = false;
  // Injected time source; null uses MonotonicClock::Instance().
  rc::common::Clock* clock = nullptr;
  // Registry for the rc_combiner_* instruments; null = the client's registry.
  rc::obs::MetricsRegistry* metrics = nullptr;
  rc::obs::Labels metric_labels;
};

// One coalesced prediction. `ok` is false only when the combiner was shut
// down while the request was parked (the prediction is None then).
struct CombineResult {
  Prediction prediction;
  bool ok = true;
  // The client's degradation state observed by this request's dispatch, so
  // network front-ends can surface serving-from-stale-state per response.
  DegradedReason degraded = DegradedReason::kNone;
  // Dispatch diagnostics (pinned by tests; stable across a batch).
  CombineFlush flush = CombineFlush::kFastPath;
  size_t batch_size = 1;
  // Identifies the PredictMany dispatch that produced this result. All
  // requests sharing a batch_id were scored against one state snapshot.
  uint64_t batch_id = 0;
};

class BatchCombiner {
 public:
  // The client must outlive the combiner. The combiner never re-enters
  // Client::PredictSingle (which may route back into it): the fast path uses
  // the client's direct post-cache-miss entry and batches use PredictMany.
  BatchCombiner(Client* client, BatchCombinerConfig config);
  ~BatchCombiner();  // implies Shutdown()

  BatchCombiner(const BatchCombiner&) = delete;
  BatchCombiner& operator=(const BatchCombiner&) = delete;

  // Coalescing equivalent of client->PredictSingle(model, inputs): blocks
  // until this request's batch is dispatched (bounded by max_wait_us plus
  // the dispatch itself). Thread-safe.
  CombineResult Predict(const std::string& model, const ClientInputs& inputs);

  // Drains every parked request with ok=false and makes all future Predict
  // calls return ok=false immediately. Idempotent; no request ever hangs.
  void Shutdown();

  // Requests currently parked across all models (test/ops visibility; also
  // exported as the rc_combiner_pending gauge).
  size_t pending() const;

 private:
  // One caller's parking slot. Lives on the caller's stack; pointers to it
  // are only held while the caller is blocked inside Predict.
  struct Slot {
    const ClientInputs* inputs;
    Prediction result;
    DegradedReason degraded = DegradedReason::kNone;
    CombineFlush flush = CombineFlush::kFastPath;
    size_t batch_size = 1;
    uint64_t batch_id = 0;
    bool done = false;
    bool aborted = false;
    // The caller's combiner/park span, captured at park time. The dispatching
    // thread records a follows-from marker under it and fills link_* with the
    // combiner/dispatch span's identity, so every coalesced caller's trace
    // points at the one dispatch that did its work (and vice versa).
    rc::obs::TraceContext trace;
    uint64_t link_trace_id = 0;
    uint64_t link_span_id = 0;
  };

  struct Batch {
    std::vector<Slot*> slots;
    int64_t deadline_us = 0;   // leader's window expiry
    bool flush_now = false;    // set by a completing dispatch (handoff)
    bool dispatched = false;
  };

  struct ModelQueue {
    std::shared_ptr<Batch> open;  // batch still accepting joiners
    int in_flight = 0;            // dispatches currently executing
  };

  // Detaches `batch`, runs PredictMany outside the lock, routes results back
  // to every slot, and flushes any batch that opened meanwhile (handoff).
  // Requires `lock` held on entry; holds it again on return.
  void DispatchLocked(std::unique_lock<std::mutex>& lock, ModelQueue& queue,
                      const std::string& model, const std::shared_ptr<Batch>& batch,
                      CombineFlush reason);
  // Fast path: direct single execution with handoff on completion.
  CombineResult FastPath(std::unique_lock<std::mutex>& lock, ModelQueue& queue,
                         const std::string& model, const ClientInputs& inputs);

  Client* client_;
  BatchCombinerConfig config_;
  rc::common::Clock* clock_;

  mutable std::mutex mu_;
  // One condition variable for every parked caller (leaders wait on it via
  // clock_->WaitUntil; followers wait directly). Dispatches notify_all.
  std::condition_variable cv_;
  std::unordered_map<std::string, ModelQueue> queues_;
  bool shutdown_ = false;
  size_t pending_ = 0;
  uint64_t next_batch_id_ = 1;

  struct Instruments {
    rc::obs::Counter* requests;        // calls entering the combiner
    rc::obs::Counter* fast_path;       // requests served on the fast path
    rc::obs::Counter* flush_window;    // batch dispatches by reason
    rc::obs::Counter* flush_full;
    rc::obs::Counter* flush_handoff;
    rc::obs::Counter* flush_shutdown;  // requests drained by Shutdown
    rc::obs::Histogram* batch_size;    // rows per coalesced dispatch
    rc::obs::Histogram* wait_us;       // per-request park time (clock units)
    rc::obs::Gauge* pending;           // currently parked requests
  } m_{};
};

}  // namespace rc::core

#endif  // RC_SRC_CORE_BATCH_COMBINER_H_
