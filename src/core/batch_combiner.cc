#include "src/core/batch_combiner.h"

#include <utility>

#include "src/obs/trace_events.h"

namespace rc::core {

const char* ToString(CombineFlush flush) {
  switch (flush) {
    case CombineFlush::kFastPath: return "fast-path";
    case CombineFlush::kWindow: return "window";
    case CombineFlush::kFull: return "full";
    case CombineFlush::kHandoff: return "handoff";
    case CombineFlush::kShutdown: return "shutdown";
    case CombineFlush::kCacheHit: return "cache-hit";
  }
  return "unknown";
}

namespace {

rc::obs::Labels WithReason(const rc::obs::Labels& base, const char* reason) {
  rc::obs::Labels labels = base;
  labels.emplace_back("reason", reason);
  return labels;
}

}  // namespace

BatchCombiner::BatchCombiner(Client* client, BatchCombinerConfig config)
    : client_(client), config_(std::move(config)) {
  clock_ = config_.clock != nullptr ? config_.clock
                                    : rc::common::MonotonicClock::Instance();
  rc::obs::MetricsRegistry* metrics =
      config_.metrics != nullptr ? config_.metrics : &client_->metrics();
  const rc::obs::Labels& labels = config_.metric_labels;
  m_.requests = &metrics->GetCounter("rc_combiner_requests", labels,
                                     "requests entering the combiner");
  m_.fast_path = &metrics->GetCounter("rc_combiner_fast_path", labels,
                                      "requests served on the idle fast path");
  auto flush_counter = [&](const char* reason, std::string_view help) {
    return &metrics->GetCounter("rc_combiner_flushes", WithReason(labels, reason), help);
  };
  m_.flush_window = flush_counter("window", "batches flushed by window expiry");
  m_.flush_full = flush_counter("full", "batches flushed at max_batch");
  m_.flush_handoff = flush_counter("handoff", "batches flushed by a completing dispatch");
  m_.flush_shutdown = flush_counter("shutdown", "requests drained by Shutdown");
  m_.batch_size = &metrics->GetHistogram("rc_combiner_batch_size",
                                         rc::obs::HistogramOptions{}, labels,
                                         "rows per coalesced dispatch");
  m_.wait_us = &metrics->GetHistogram("rc_combiner_wait_us",
                                      rc::obs::HistogramOptions{}, labels,
                                      "per-request park time before results (us)");
  m_.pending = &metrics->GetGauge("rc_combiner_pending", labels,
                                  "requests currently parked in the combiner");
}

BatchCombiner::~BatchCombiner() { Shutdown(); }

size_t BatchCombiner::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

CombineResult BatchCombiner::Predict(const std::string& model,
                                     const ClientInputs& inputs) {
  rc::obs::TraceSpan call_span("combiner/predict");
  m_.requests->Increment();
  if (config_.probe_result_cache) {
    // Lock-free re-probe (rc::cache seqlock path): a hit returns without
    // touching the combiner mutex or any cache shard mutex.
    if (auto cached = client_->ProbeResultCache(model, inputs)) {
      CombineResult hit;
      hit.prediction = *cached;
      hit.degraded = client_->degraded_reason();
      hit.flush = CombineFlush::kCacheHit;
      return hit;
    }
  }
  Slot slot;
  slot.inputs = &inputs;

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    CombineResult aborted;
    aborted.ok = false;
    aborted.flush = CombineFlush::kShutdown;
    return aborted;
  }
  ModelQueue& queue = queues_[model];
  if (config_.fast_path_when_idle && queue.open == nullptr && queue.in_flight == 0) {
    return FastPath(lock, queue, model, inputs);
  }

  const int64_t parked_at_us = clock_->NowUs();
  bool leader = false;
  if (queue.open == nullptr) {
    queue.open = std::make_shared<Batch>();
    queue.open->deadline_us = parked_at_us + config_.max_wait_us;
    leader = true;
  }
  std::shared_ptr<Batch> batch = queue.open;
  batch->slots.push_back(&slot);
  // The park span covers waiting plus result pickup; its context is
  // published on the slot (under mu_, so the dispatching thread sees it)
  // for the follows-from link to the batch dispatch.
  rc::obs::TraceSpan park_span("combiner/park");
  slot.trace = park_span.context();
  pending_ += 1;
  m_.pending->Set(static_cast<double>(pending_));

  if (batch->slots.size() >= config_.max_batch) {
    // The filler dispatches; the leader (and every other joiner) is woken
    // with its result already routed.
    DispatchLocked(lock, queue, model, batch, CombineFlush::kFull);
  } else if (leader) {
    // The leader owns the window: park until it expires, the batch is
    // flushed by someone else (full / handoff-marked / shutdown), or a
    // completing dispatch asks for an immediate flush.
    clock_->WaitUntil(lock, cv_, batch->deadline_us, [&] {
      return batch->dispatched || batch->flush_now || shutdown_;
    });
    // Window expiry while another dispatch is still executing does not cut
    // this batch loose: the in-flight dispatch flushes it on completion
    // (handoff), so rows keep accumulating for one full execution instead of
    // fragmenting into overlapping partial batches (continuous batching —
    // the wait is bounded by that execution, not by wall-clock).
    cv_.wait(lock, [&] {
      return batch->dispatched || batch->flush_now || shutdown_ ||
             queue.in_flight == 0;
    });
    if (!batch->dispatched && !shutdown_) {
      DispatchLocked(lock, queue, model, batch,
                     batch->flush_now ? CombineFlush::kHandoff : CombineFlush::kWindow);
    }
  }
  // Everyone (leader included — its dispatch set done synchronously) waits
  // for its own result. A batch detached by another thread may still be
  // executing when the leader's wait returns, hence the per-slot flag.
  cv_.wait(lock, [&] { return slot.done || slot.aborted; });

  if (slot.aborted) {
    CombineResult aborted;
    aborted.ok = false;
    aborted.flush = CombineFlush::kShutdown;
    return aborted;
  }
  m_.wait_us->Record(static_cast<double>(clock_->NowUs() - parked_at_us));
  park_span.SetLink(slot.link_trace_id, slot.link_span_id);
  CombineResult out;
  out.prediction = slot.result;
  out.degraded = slot.degraded;
  out.flush = slot.flush;
  out.batch_size = slot.batch_size;
  out.batch_id = slot.batch_id;
  return out;
}

CombineResult BatchCombiner::FastPath(std::unique_lock<std::mutex>& lock,
                                      ModelQueue& queue, const std::string& model,
                                      const ClientInputs& inputs) {
  queue.in_flight += 1;
  const uint64_t id = next_batch_id_++;
  lock.unlock();
  Prediction prediction = client_->PredictUncoalesced(model, inputs);
  DegradedReason degraded = client_->degraded_reason();
  lock.lock();
  queue.in_flight -= 1;
  m_.fast_path->Increment();
  // Handoff: requests that arrived during this execution are batched and
  // ready — flush them now instead of letting the window run out.
  if (queue.open != nullptr && !queue.open->flush_now && !queue.open->dispatched) {
    queue.open->flush_now = true;
    cv_.notify_all();
  }
  CombineResult out;
  out.prediction = prediction;
  out.degraded = degraded;
  out.flush = CombineFlush::kFastPath;
  out.batch_size = 1;
  out.batch_id = id;
  return out;
}

void BatchCombiner::DispatchLocked(std::unique_lock<std::mutex>& lock,
                                   ModelQueue& queue, const std::string& model,
                                   const std::shared_ptr<Batch>& batch,
                                   CombineFlush reason) {
  batch->dispatched = true;
  if (queue.open == batch) queue.open.reset();
  queue.in_flight += 1;
  const uint64_t id = next_batch_id_++;
  std::vector<ClientInputs> rows;
  rows.reserve(batch->slots.size());
  for (const Slot* s : batch->slots) rows.push_back(*s->inputs);

  lock.unlock();
  // One snapshot load, one batched ExecEngine walk, identical results to the
  // per-request path input-for-input (PredictMany's pinned guarantee).
  rc::obs::TraceContext dispatch_ctx;
  std::vector<Prediction> results;
  {
    // Parents under the dispatching caller's own park span; the other
    // coalesced callers reach it through follows-from links.
    rc::obs::TraceSpan dispatch_span("combiner/dispatch");
    results = client_->PredictMany(model, rows);
    dispatch_ctx = dispatch_span.context();
  }
  DegradedReason degraded = client_->degraded_reason();
  lock.lock();

  queue.in_flight -= 1;
  const size_t n = batch->slots.size();
  for (size_t i = 0; i < n; ++i) {
    Slot* s = batch->slots[i];
    s->result = results[i];
    s->degraded = degraded;
    s->flush = reason;
    s->batch_size = n;
    s->batch_id = id;
    s->link_trace_id = dispatch_ctx.trace_id;
    s->link_span_id = dispatch_ctx.span_id;
    if (s->trace.valid()) {
      // Zero-duration marker in the caller's trace pointing at the dispatch
      // that actually did its work (follows-from, not parent-child: the
      // dispatch ran on another caller's stack in a different trace).
      rc::obs::RecordSpanUnder("combiner/coalesced", s->trace, rc::obs::NowNs(), 0,
                               dispatch_ctx.trace_id, dispatch_ctx.span_id);
    }
    s->done = true;
  }
  pending_ -= n;
  m_.pending->Set(static_cast<double>(pending_));
  m_.batch_size->Record(static_cast<double>(n));
  switch (reason) {
    case CombineFlush::kWindow: m_.flush_window->Increment(); break;
    case CombineFlush::kFull: m_.flush_full->Increment(); break;
    case CombineFlush::kHandoff: m_.flush_handoff->Increment(); break;
    case CombineFlush::kFastPath:
    case CombineFlush::kShutdown:
    case CombineFlush::kCacheHit: break;  // not dispatch reasons
  }
  // Handoff: a batch that opened while we executed holds requests that have
  // already waited an execution's worth of time — flush it immediately.
  if (queue.open != nullptr && !queue.open->flush_now && !queue.open->dispatched) {
    queue.open->flush_now = true;
  }
  cv_.notify_all();
}

void BatchCombiner::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  shutdown_ = true;
  uint64_t drained = 0;
  for (auto& [model, queue] : queues_) {
    if (queue.open == nullptr) continue;
    for (Slot* s : queue.open->slots) {
      if (!s->done) {
        s->aborted = true;
        ++drained;
      }
    }
    queue.open.reset();
  }
  // Slots in batches already detached for dispatch are not aborted: their
  // PredictMany completes and delivers real results.
  pending_ -= drained;
  m_.pending->Set(static_cast<double>(pending_));
  if (drained > 0) m_.flush_shutdown->Increment(drained);
  // Wakes followers (slot.aborted) and leaders parked in clock_->WaitUntil
  // (their predicate checks shutdown_).
  cv_.notify_all();
}

}  // namespace rc::core
