#include "src/sched/scheduler.h"

#include <numeric>

namespace rc::sched {

Scheduler::Scheduler(Cluster* cluster, std::vector<std::unique_ptr<Rule>> rules)
    : cluster_(cluster), rules_(std::move(rules)) {}

std::optional<int> Scheduler::Schedule(const VmRequest& vm) {
  scratch_.resize(static_cast<size_t>(cluster_->size()));
  std::iota(scratch_.begin(), scratch_.end(), 0);

  std::vector<int> backup;
  for (const auto& rule : rules_) {
    if (rule->hard()) {
      rule->Filter(vm, *cluster_, scratch_);
      if (scratch_.empty()) return std::nullopt;
    } else {
      // Soft rule: enforce only if at least one candidate survives.
      backup = scratch_;
      rule->Filter(vm, *cluster_, scratch_);
      if (scratch_.empty()) scratch_ = std::move(backup);
    }
  }

  // Tightest packing among survivors.
  int best = scratch_.front();
  double best_alloc = cluster_->server(best).alloc_cores;
  for (int id : scratch_) {
    double alloc = cluster_->server(id).alloc_cores;
    if (alloc > best_alloc) {
      best = id;
      best_alloc = alloc;
    }
  }
  cluster_->PlaceVm(vm, best);
  return best;
}

void Scheduler::Complete(const VmRequest& vm, int server_id) {
  cluster_->CompleteVm(vm, server_id);
}

}  // namespace rc::sched
