#include "src/sched/scheduler.h"

#include <numeric>

namespace rc::sched {

Scheduler::Scheduler(Cluster* cluster, std::vector<std::unique_ptr<Rule>> rules,
                     rc::obs::MetricsRegistry* metrics)
    : cluster_(cluster), rules_(std::move(rules)) {
  rc::obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : rc::obs::MetricsRegistry::Global();
  rejections_.reserve(rules_.size());
  softened_.reserve(rules_.size());
  for (const auto& rule : rules_) {
    rejections_.push_back(&reg.GetCounter("rc_sched_rule_rejections",
                                          {{"rule", rule->name()}},
                                          "hard rule emptied the candidate set"));
    softened_.push_back(&reg.GetCounter("rc_sched_rule_softened",
                                        {{"rule", rule->name()}},
                                        "soft rule disregarded (would empty set)"));
  }
  place_latency_us_ = &reg.GetHistogram("rc_sched_place_latency_us", {}, {},
                                        "Schedule() wall time (us)");
}

std::optional<int> Scheduler::Schedule(const VmRequest& vm) {
  rc::obs::ScopedTimer timer(place_latency_us_);
  scratch_.resize(static_cast<size_t>(cluster_->size()));
  std::iota(scratch_.begin(), scratch_.end(), 0);

  std::vector<int> backup;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const auto& rule = rules_[i];
    if (rule->hard()) {
      rule->Filter(vm, *cluster_, scratch_);
      if (scratch_.empty()) {
        rejections_[i]->Increment();
        return std::nullopt;
      }
    } else {
      // Soft rule: enforce only if at least one candidate survives.
      backup = scratch_;
      rule->Filter(vm, *cluster_, scratch_);
      if (scratch_.empty()) {
        softened_[i]->Increment();
        scratch_ = std::move(backup);
      }
    }
  }

  // Tightest packing among survivors.
  int best = scratch_.front();
  double best_alloc = cluster_->server(best).alloc_cores;
  for (int id : scratch_) {
    double alloc = cluster_->server(id).alloc_cores;
    if (alloc > best_alloc) {
      best = id;
      best_alloc = alloc;
    }
  }
  cluster_->PlaceVm(vm, best);
  return best;
}

void Scheduler::Complete(const VmRequest& vm, int server_id) {
  cluster_->CompleteVm(vm, server_id);
}

}  // namespace rc::sched
