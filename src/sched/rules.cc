#include "src/sched/rules.h"

#include <algorithm>

namespace rc::sched {

namespace {

template <typename Pred>
void EraseIfNot(std::vector<int>& candidates, Pred eligible) {
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [&](int id) { return !eligible(id); }),
      candidates.end());
}

}  // namespace

void StrictFitRule::Filter(const VmRequest& vm, const Cluster& cluster,
                           std::vector<int>& candidates) const {
  EraseIfNot(candidates, [&](int id) { return cluster.FitsStrict(vm, cluster.server(id)); });
}

void OversubFitRule::Filter(const VmRequest& vm, const Cluster& cluster,
                            std::vector<int>& candidates) const {
  const double physical = cluster.physical_cores();
  if (vm.production) {
    EraseIfNot(candidates, [&](int id) {
      const Server& s = cluster.server(id);
      bool group_ok = s.empty() || s.kind == ServerKind::kNonOversubscribable;
      return group_ok && cluster.FitsStrict(vm, s);
    });
    return;
  }
  EraseIfNot(candidates, [&](int id) {
    const Server& s = cluster.server(id);
    bool group_ok = s.empty() || s.kind == ServerKind::kOversubscribable;
    if (!group_ok || !cluster.FitsMemory(vm, s)) return false;
    if (s.alloc_cores + vm.cores > params_.max_oversub * physical + 1e-9) return false;
    if (enforce_util_check_ &&
        s.util_cores + vm.predicted_util_fraction * vm.cores >
            params_.max_util * physical + 1e-9) {
      return false;
    }
    return true;
  });
}

void UtilizationCapRule::Filter(const VmRequest& vm, const Cluster& cluster,
                                std::vector<int>& candidates) const {
  if (vm.production) return;  // the cap only governs oversubscribable servers
  const double physical = cluster.physical_cores();
  EraseIfNot(candidates, [&](int id) {
    const Server& s = cluster.server(id);
    return s.util_cores + vm.predicted_util_fraction * vm.cores <=
           params_.max_util * physical + 1e-9;
  });
}

void AvoidOversubscriptionRule::Filter(const VmRequest& vm, const Cluster& cluster,
                                       std::vector<int>& candidates) const {
  if (vm.production) return;
  EraseIfNot(candidates, [&](int id) {
    const Server& s = cluster.server(id);
    return s.alloc_cores + vm.cores <= cluster.physical_cores() + 1e-9;
  });
}

void PreferNonEmptyRule::Filter(const VmRequest& vm, const Cluster& cluster,
                                std::vector<int>& candidates) const {
  (void)vm;
  EraseIfNot(candidates, [&](int id) { return !cluster.server(id).empty(); });
}

}  // namespace rc::sched
