#include "src/sched/policies.h"

#include <algorithm>

#include "src/common/buckets.h"

namespace rc::sched {

using rc::core::BucketValuePolicy;
using rc::core::Prediction;
using rc::core::UtilizationBucketValue;

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBaseline: return "Baseline";
    case PolicyKind::kNaive: return "Naive";
    case PolicyKind::kRcInformedSoft: return "RC-informed-soft";
    case PolicyKind::kRcInformedHard: return "RC-informed-hard";
    case PolicyKind::kRcSoftRight: return "RC-soft-right";
    case PolicyKind::kRcSoftWrong: return "RC-soft-wrong";
  }
  return "?";
}

namespace {

std::vector<std::unique_ptr<Rule>> BuildRules(const PolicyConfig& config) {
  std::vector<std::unique_ptr<Rule>> rules;
  switch (config.kind) {
    case PolicyKind::kBaseline:
      rules.push_back(std::make_unique<StrictFitRule>());
      rules.push_back(std::make_unique<PreferNonEmptyRule>());
      break;
    // For the oversubscribing policies the soft-rule order implements the
    // paper's preferences: respect the utilization cap first, then fill
    // partially-used servers before opening empty ones (compacting the
    // oversubscribable pool frees whole servers — the capacity gain), and
    // only then prefer a non-oversubscribing placement among what remains.
    case PolicyKind::kNaive:
      // Oversubscription without predictions: no utilization cap at all.
      rules.push_back(std::make_unique<OversubFitRule>(config.oversub,
                                                       /*enforce_util_check=*/false));
      rules.push_back(std::make_unique<PreferNonEmptyRule>());
      rules.push_back(std::make_unique<AvoidOversubscriptionRule>());
      break;
    case PolicyKind::kRcInformedHard:
      rules.push_back(std::make_unique<OversubFitRule>(config.oversub,
                                                       /*enforce_util_check=*/true));
      rules.push_back(std::make_unique<PreferNonEmptyRule>());
      rules.push_back(std::make_unique<AvoidOversubscriptionRule>());
      break;
    case PolicyKind::kRcInformedSoft:
    case PolicyKind::kRcSoftRight:
    case PolicyKind::kRcSoftWrong:
      rules.push_back(std::make_unique<OversubFitRule>(config.oversub,
                                                       /*enforce_util_check=*/false));
      rules.push_back(std::make_unique<UtilizationCapRule>(config.oversub));
      rules.push_back(std::make_unique<PreferNonEmptyRule>());
      rules.push_back(std::make_unique<AvoidOversubscriptionRule>());
      break;
  }
  return rules;
}

}  // namespace

SchedulingPolicy::SchedulingPolicy(PolicyConfig config, Cluster* cluster,
                                   UtilPredictor predictor,
                                   BatchUtilPredictor batch_predictor)
    : config_(config),
      predictor_(std::move(predictor)),
      batch_predictor_(std::move(batch_predictor)),
      scheduler_(std::make_unique<Scheduler>(cluster, BuildRules(config), config.metrics)),
      rng_(config.seed) {}

double SchedulingPolicy::FractionFromPrediction(const rc::core::Prediction& pred) const {
  if (!pred.valid || pred.score < config_.confidence_threshold) {
    // Low confidence or no prediction: conservatively assume the VM uses its
    // full allocation (Algorithm 1 lines 10-13).
    return 1.0;
  }
  int bucket = std::min(3, pred.bucket + config_.bucket_shift);
  return UtilizationBucketValue(bucket, BucketValuePolicy::kHigh);
}

double SchedulingPolicy::UtilFractionFor(const VmRequest& vm) {
  switch (config_.kind) {
    case PolicyKind::kBaseline:
      return 1.0;  // unused: Baseline never oversubscribes
    case PolicyKind::kNaive:
      return 0.0;  // no predictions; no utilization ledger
    case PolicyKind::kRcSoftRight: {
      int bucket = UtilizationBucket(vm.source != nullptr ? vm.source->p95_max_cpu : 1.0);
      bucket = std::min(3, bucket + config_.bucket_shift);
      return UtilizationBucketValue(bucket, BucketValuePolicy::kHigh);
    }
    case PolicyKind::kRcSoftWrong: {
      int true_bucket =
          UtilizationBucket(vm.source != nullptr ? vm.source->p95_max_cpu : 1.0);
      // An incorrect random bucket, uniform over the other three.
      int wrong = static_cast<int>(rng_.UniformInt(0, 2));
      if (wrong >= true_bucket) ++wrong;
      wrong = std::min(3, wrong + config_.bucket_shift);
      return UtilizationBucketValue(wrong, BucketValuePolicy::kHigh);
    }
    case PolicyKind::kRcInformedSoft:
    case PolicyKind::kRcInformedHard:
      return FractionFromPrediction(predictor_ ? predictor_(vm) : Prediction::None());
  }
  return 1.0;
}

void SchedulingPolicy::PrefetchUtil(std::span<VmRequest> vms) {
  // Only the informed kinds consult a predictor, and only a batched one can
  // beat per-VM calls. (RC-soft-wrong deliberately stays per-VM: its random
  // bucket draws must happen in Place order to stay reproducible.)
  if (vms.empty() || !batch_predictor_) return;
  if (config_.kind != PolicyKind::kRcInformedSoft &&
      config_.kind != PolicyKind::kRcInformedHard) {
    return;
  }
  std::vector<Prediction> predictions = batch_predictor_(vms);
  if (predictions.size() != vms.size()) return;  // malformed batch: fall back
  for (size_t i = 0; i < vms.size(); ++i) {
    vms[i].predicted_util_fraction = FractionFromPrediction(predictions[i]);
    vms[i].util_prefetched = true;
  }
}

std::optional<int> SchedulingPolicy::Place(VmRequest& vm) {
  if (vm.util_prefetched) {
    vm.util_prefetched = false;  // one prefetch serves one placement
  } else {
    vm.predicted_util_fraction = UtilFractionFor(vm);
  }
  return scheduler_->Schedule(vm);
}

void SchedulingPolicy::Complete(const VmRequest& vm, int server_id) {
  scheduler_->Complete(vm, server_id);
}

}  // namespace rc::sched
