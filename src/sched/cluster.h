// Cluster and server model for the VM scheduler (paper Section 5). Servers
// track two CPU ledgers, exactly as Algorithm 1's bookkeeping does:
// allocated virtual cores (c.alloc) and predicted-utilization cores (c.util,
// maintained only on oversubscribable servers). A server is logically split
// into the oversubscribable / non-oversubscribable groups by the first VM
// placed on it and returns to the empty pool when it drains.
#ifndef RC_SRC_SCHED_CLUSTER_H_
#define RC_SRC_SCHED_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/trace/vm_types.h"

namespace rc::sched {

// A VM placement request plus the policy-computed utilization estimate.
struct VmRequest {
  uint64_t vm_id = 0;
  int cores = 1;            // virtual core allocation
  double memory_gb = 1.75;
  bool production = true;   // production VMs are never used to oversubscribe
  SimTime arrival = 0;
  SimTime departure = 0;
  // Predicted P95 utilization as a fraction of the allocation, set by the
  // scheduling policy before placement (1.0 = assume full usage; Algorithm 1
  // line 13). Bookkept on oversubscribable servers as cores * fraction.
  double predicted_util_fraction = 1.0;
  // Set by SchedulingPolicy::PrefetchUtil when predicted_util_fraction was
  // already filled by a batched prediction lookup; Place consumes (and
  // clears) it instead of asking the predictor again.
  bool util_prefetched = false;
  // Source record for telemetry replay in the simulator.
  const rc::trace::VmRecord* source = nullptr;
};

enum class ServerKind : uint8_t { kNonOversubscribable = 0, kOversubscribable = 1 };

struct Server {
  double alloc_cores = 0.0;  // sum of hosted VMs' allocations
  double util_cores = 0.0;   // sum of predicted-utilization cores (oversub only)
  double alloc_mem = 0.0;
  int32_t active_vms = 0;
  ServerKind kind = ServerKind::kNonOversubscribable;

  bool empty() const { return active_vms == 0; }
};

struct ClusterConfig {
  int num_servers = 880;
  int cores_per_server = 16;
  double memory_per_server_gb = 112.0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  int size() const { return static_cast<int>(servers_.size()); }
  const Server& server(int id) const { return servers_[static_cast<size_t>(id)]; }

  // Algorithm 1's PlaceVM: tags empty servers by the VM's production status
  // and updates both ledgers. The caller must have validated the fit.
  void PlaceVm(const VmRequest& vm, int server_id);
  // Algorithm 1's VMCompleted.
  void CompleteVm(const VmRequest& vm, int server_id);

  // Fits ignoring oversubscription (production-side check): allocation and
  // memory within physical capacity.
  bool FitsStrict(const VmRequest& vm, const Server& s) const;
  // Memory always fits strictly (memory is never oversubscribed).
  bool FitsMemory(const VmRequest& vm, const Server& s) const;

  double physical_cores() const { return static_cast<double>(config_.cores_per_server); }

 private:
  ClusterConfig config_;
  std::vector<Server> servers_;
};

}  // namespace rc::sched

#endif  // RC_SRC_SCHED_CLUSTER_H_
