// Event-driven cluster simulator (paper Section 6.2): replays VM arrivals
// and departures through a scheduling policy and aggregates per-server CPU
// utilization in 5-minute slots by summing the co-located VMs' *max*
// readings — the paper's deliberately pessimistic aggregation, under which a
// server reading can exceed 100% (virtual cores would have timesliced a
// physical core). Reports scheduling failures and the count of readings
// above 100%.
#ifndef RC_SRC_SCHED_SIMULATOR_H_
#define RC_SRC_SCHED_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sched/policies.h"
#include "src/trace/trace.h"

namespace rc::sched {

struct SimConfig {
  ClusterConfig cluster;
  SimTime horizon = 30 * kDay;
  // Sensitivity study: added to every per-slot max utilization fraction
  // ("artificially adding 25% to all real utilization values").
  double util_inflation = 0.0;
  // Registry receiving the rc_sim_* instruments — per-slot processing
  // latency, oversubscription headroom gauge, and outcome counters (null =
  // process-global).
  rc::obs::MetricsRegistry* metrics = nullptr;
};

struct SimResult {
  int64_t total_vms = 0;
  int64_t failures = 0;
  int64_t overload_readings = 0;  // occupied-server readings above 100% CPU
  int64_t occupied_readings = 0;  // total occupied-server readings
  int64_t oversub_placements = 0; // placements that pushed alloc above physical
  double mean_occupied_utilization = 0.0;  // mean reading, fraction of physical
  double p99_utilization = 0.0;            // P99 reading

  double failure_rate() const {
    return total_vms > 0 ? static_cast<double>(failures) / static_cast<double>(total_vms)
                         : 0.0;
  }
};

// Builds placement requests from the trace: VMs arriving before `horizon`,
// with the production tag from the workload and the source record attached
// for telemetry replay.
std::vector<VmRequest> RequestsFromTrace(const rc::trace::Trace& trace, SimTime horizon);

class ClusterSimulator {
 public:
  explicit ClusterSimulator(const SimConfig& config) : config_(config) {}

  // Runs the full simulation. `requests` must be sorted by arrival time
  // (RequestsFromTrace returns them sorted). The policy must have been built
  // over a Cluster with config_.cluster.
  SimResult Run(std::vector<VmRequest> requests, SchedulingPolicy& policy) const;

  const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

}  // namespace rc::sched

#endif  // RC_SRC_SCHED_SIMULATOR_H_
